(** Per-client execution context.

    A [Ctx.t] bundles what every core operation needs: the shared arena, the
    layout, the client id, the client's {!Cxlshm_shmem.Stats} accumulator and
    its fault-injection plan. It is the OCaml-heap ("local memory") half of a
    client — everything that is lost when the client crashes. *)

type t = {
  mem : Cxlshm_shmem.Mem.t;
  lay : Layout.t;
  cid : int;
  home_dev : int;
      (** The client's home device in the pool ([cid mod num_devices]) —
          segment claims prefer segments served by it before spilling. *)
  st : Cxlshm_shmem.Stats.t;
  mutable fault : Fault.plan;
  rng : Random.State.t;  (** client-local randomness (segment probing) *)
}

val make : mem:Cxlshm_shmem.Mem.t -> lay:Layout.t -> cid:int -> t

val cfg : t -> Config.t

(** {1 Shared-memory shorthands} (attributed to this client's stats) *)

val load : t -> Cxlshm_shmem.Pptr.t -> int
val store : t -> Cxlshm_shmem.Pptr.t -> int -> unit
val cas : t -> Cxlshm_shmem.Pptr.t -> expected:int -> desired:int -> bool
val fetch_add : t -> Cxlshm_shmem.Pptr.t -> int -> int
val fence : t -> unit
val flush : t -> Cxlshm_shmem.Pptr.t -> unit
val crash_point : t -> Fault.point -> unit
