open Cxlshm

(* Log object: emb slots [0..cap-1] hold the ring's counted references;
   plain data words after them: +0 capacity, +1 published (total appends).
   Retired entries are parked with their hazard retire-epoch and freed only
   once every announced reader epoch has moved past it. *)
type writer = {
  ctx : Ctx.t;
  lref : Cxl_ref.t;
  cap : int;
  mutable parked : (int * int) list;  (** (retire epoch, obj) *)
}

type cursor = { cctx : Ctx.t; clref : Cxl_ref.t; ccap : int; mutable next : int }

let w_capacity = 0
let w_published = 1
let extra_words = 2

let lword (ctx : Ctx.t) lobj ~cap i =
  ignore ctx;
  Obj_header.data_of_obj lobj + cap + i

let create ctx ~capacity =
  if capacity < 1 then invalid_arg "Broadcast_log.create";
  let lref =
    Shm.cxl_malloc_words ctx ~data_words:(capacity + extra_words)
      ~emb_cnt:capacity ()
  in
  let lobj = Cxl_ref.obj lref in
  Ctx.store ctx (lword ctx lobj ~cap:capacity w_capacity) capacity;
  Ctx.store ctx (lword ctx lobj ~cap:capacity w_published) 0;
  { ctx; lref; cap = capacity; parked = [] }

let log_ref w = w.lref

let quiesce w =
  let safe = Hazard.min_announced w.ctx in
  let keep, free = List.partition (fun (e, _) -> e >= safe) w.parked in
  List.iter (fun (_, obj) -> Alloc.free_obj_block w.ctx obj) free;
  w.parked <- keep

let publish w payload =
  let lobj = Cxl_ref.obj w.lref in
  let seq = Ctx.load w.ctx (lword w.ctx lobj ~cap:w.cap w_published) in
  let slot = Obj_header.emb_slot lobj (seq mod w.cap) in
  let old = Ctx.load w.ctx slot in
  (if old = 0 then Refc.attach w.ctx ~ref_addr:slot ~refed:(Cxl_ref.obj payload)
   else begin
     let n =
       Refc.change w.ctx ~ref_addr:slot ~from_obj:old
         ~to_obj:(Cxl_ref.obj payload)
     in
     if n = 0 then begin
       (* no subscriber kept it alive: park until hazard-safe *)
       Reclaim.teardown_children w.ctx ~as_cid:w.ctx.Ctx.cid ~obj:old;
       w.parked <- (Hazard.retire_epoch w.ctx, old) :: w.parked
     end
   end);
  Ctx.fence w.ctx;
  Ctx.store w.ctx (lword w.ctx lobj ~cap:w.cap w_published) (seq + 1);
  quiesce w;
  seq

let close_writer w =
  (* parked entries are unreachable; free them (readers are gone or will
     fail their try_attach against count-zero headers) *)
  List.iter (fun (_, obj) -> Alloc.free_obj_block w.ctx obj) w.parked;
  w.parked <- [];
  Cxl_ref.drop w.lref

let subscribe ctx shared =
  let lobj = Cxl_ref.obj shared in
  let cap =
    Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj lobj))
  in
  let rr = Alloc.alloc_rootref ctx in
  Refc.attach ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:lobj;
  let clref = Cxl_ref.of_rootref ctx rr in
  let published = Ctx.load ctx (lword ctx lobj ~cap w_published) in
  { cctx = ctx; clref; ccap = cap; next = max 0 (published - cap) }

let rec poll c =
  let lobj = Cxl_ref.obj c.clref in
  let published = Ctx.load c.cctx (lword c.cctx lobj ~cap:c.ccap w_published) in
  let oldest = max 0 (published - c.ccap) in
  if c.next < oldest then begin
    let skipped = oldest - c.next in
    c.next <- oldest;
    `Lagged skipped
  end
  else if c.next >= published then `Empty
  else begin
    (* Hazard protection brackets the slot read + attach: the writer will
       not recycle a retired entry while our epoch is announced. *)
    Hazard.enter c.cctx;
    let result =
      let slot = Obj_header.emb_slot lobj (c.next mod c.ccap) in
      let obj = Ctx.load c.cctx slot in
      if obj = 0 then None
      else begin
        let rr = Alloc.alloc_rootref c.cctx in
        if Refc.try_attach c.cctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj
        then Some (Cxl_ref.of_rootref c.cctx rr)
        else begin
          Alloc.free_rootref c.cctx rr;
          None
        end
      end
    in
    Hazard.exit c.cctx;
    match result with
    | Some r ->
        let seq = c.next in
        c.next <- seq + 1;
        `Entry (seq, r)
    | None ->
        (* the entry was overwritten under us: re-evaluate (will lag) *)
        poll c
  end

let close_cursor c = Cxl_ref.drop c.clref
