(** YCSB-style workload generator (Fig 10 b/c).

    Generates read/update operation streams with configurable write ratio
    and Zipfian skew over a fixed key space (the paper's "own custom
    configuration (different zipf parameters)"). Deterministic per seed. *)

type t

val create :
  keys:int -> write_ratio:float -> theta:float -> seed:int -> t
(** [write_ratio] = writes / (reads + writes): 1:9 W/R → 0.1; 1:0 → 1.0. *)

val next : t -> Kv_intf.op
val load_ops : t -> Kv_intf.op list
(** Insert every key once (the load phase). *)

(** {1 Standard workload presets}

    The canonical YCSB core workloads, as write-ratio/skew presets:
    A = 50 % update, B = 5 % update, C = read-only, all zipf 0.99;
    D-style = 5 % insert over a recency-ish distribution (modelled here as
    zipf over the newest ids); F = 50 % read-modify-write (modelled as an
    update since CXL-KV updates are atomic in place). *)

type preset = A | B | C | D | F

val preset_name : preset -> string
val of_preset : keys:int -> seed:int -> preset -> t
