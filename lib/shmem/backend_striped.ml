(* A sharded multi-device pool: N devices behind the switch (Fig 1), global
   addresses interleaved across them in fixed-size stripes.

   Global stripe s = addr / stripe_words lives on device s mod N, at
   device-local stripe s / N. Only the last global stripe may be partial, so
   a device's stripes are contiguous in its local array and the local offset
   of a global address is a pure computation — no per-device index tables.

   Each device carries its own Latency.tier: the wrapper uses it to charge
   accesses that cross to a device of a different tier than the pool's base
   model (the paper's per-device latency asymmetry). *)

type t = {
  devs : int Atomic.t array array;
  tiers : Latency.tier array;
  stripe_words : int;
  n : int;
  total : int;
}

let create ?(tier = Latency.Cxl) ~devices ~stripe_words ?tiers ~words () =
  if devices < 1 then invalid_arg "Backend_striped.create: devices must be >= 1";
  if stripe_words < 1 then
    invalid_arg "Backend_striped.create: stripe_words must be >= 1";
  let tiers =
    match tiers with
    | None -> Array.make devices tier
    | Some a ->
        if Array.length a <> devices then
          invalid_arg "Backend_striped.create: one tier per device required";
        Array.copy a
  in
  (* Walk the stripes once to size each device; only the final stripe may be
     partial, which keeps locate's arithmetic exact. *)
  let lens = Array.make devices 0 in
  let s = ref 0 and remaining = ref words in
  while !remaining > 0 do
    let take = min stripe_words !remaining in
    lens.(!s mod devices) <- lens.(!s mod devices) + take;
    incr s;
    remaining := !remaining - take
  done;
  {
    devs = Array.map (fun len -> Array.init len (fun _ -> Atomic.make 0)) lens;
    tiers;
    stripe_words;
    n = devices;
    total = words;
  }

let name t = Printf.sprintf "striped-%dx%d" t.n t.stripe_words
let words t = t.total
let num_devices t = t.n
let device_of t p = p / t.stripe_words mod t.n

let device_tier t d =
  if d < 0 || d >= t.n then invalid_arg "Backend_striped.device_tier";
  t.tiers.(d)

(* (device, device-local offset) of a global address. *)
let locate t p =
  let s = p / t.stripe_words in
  (s mod t.n, ((s / t.n) * t.stripe_words) + (p mod t.stripe_words))

let cell t p =
  let d, off = locate t p in
  t.devs.(d).(off)

let load t p = Atomic.get (cell t p)
let store t p v = Atomic.set (cell t p) v
let cas t p ~expected ~desired = Atomic.compare_and_set (cell t p) expected desired
let fetch_add t p n = Atomic.fetch_and_add (cell t p) n
let fence _ = ()
let flush _ _ = ()

let fill t ~pos ~len v =
  for i = pos to pos + len - 1 do
    store t i v
  done

let blit t ~src ~dst ~len =
  if src < dst && src + len > dst then
    for i = len - 1 downto 0 do
      store t (dst + i) (load t (src + i))
    done
  else
    for i = 0 to len - 1 do
      store t (dst + i) (load t (src + i))
    done

(* Images are in global address order, so they interchange with every other
   backend's snapshot/restore. *)
let snapshot t = Array.init t.total (fun p -> load t p)
let restore t ws = Array.iteri (fun p v -> store t p v) ws
