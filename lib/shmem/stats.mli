(** Per-client memory-event counters.

    Every operation on {!Mem} is attributed to a [Stats.t]; the counters are
    combined with a {!Latency} cost model to compute modeled execution time.
    Counters distinguish sequential-ish accesses (within the same cache line
    as the previous access by this client) from random accesses, mirroring
    the seq/rand split of Table 1. *)

type t = {
  mutable cache_hits : int;
  mutable seq_accesses : int;
  mutable rand_accesses : int;
  mutable cas_ops : int;  (** CAS on cold lines *)
  mutable cas_hit_ops : int;  (** CAS on lines already cached *)
  mutable cas_failures : int;
  mutable fences : int;
  mutable flushes : int;
  mutable deferred_flushes : int;
      (** write-backs the epoch-batching layer queued instead of issuing
          immediately. A newly-queued line is {e also} counted in [flushes]
          at enqueue time — the op that dirtied the line owns the modeled
          write-back cost — and the batch-boundary drain issues the device
          flush against scratch stats, so {!breakdown_ns} prices each
          deferred line exactly once, on the op that deferred it. *)
  mutable xdev_accesses : int;
      (** accesses that landed on a pool device whose tier differs from the
          pool's base cost model — cross-device traffic in the Fig 1
          multi-device topology. Each such access is {e also} counted in the
          seq/rand/cas counters above; this field only annotates how many of
          them were re-priced. *)
  mutable xdev_ns : float;
      (** summed pricing adjustment (device-tier cost minus base-tier cost)
          for the [xdev_accesses]; {!modeled_ns} adds it so cross-device
          accesses are charged at their device's tier. *)
  mutable dev_faults : int;
      (** injected device faults ({!Mem.Device_error}) observed by this
          client — transient and persistent alike. *)
  mutable retries : int;
      (** primitive operations re-issued after a transient device fault *)
  mutable backoff_ns : float;
      (** summed simulated backoff delay spent between retries *)
  mutable fault_escalations : int;
      (** faults that exhausted the retry budget (or were persistent) and
          were escalated — the device gets marked degraded *)
  mutable last_line : int;  (** last cache line touched, for seq detection *)
  cache_tags : int array;
      (** direct-mapped recently-touched-line filter modelling the CPU
          cache in front of the (cacheable) CXL link *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val add : t -> t -> unit
(** [add acc s] accumulates [s] into [acc] (counter-wise sum). *)

val diff : t -> t -> t
(** [diff after before] is the per-counter difference. *)

val total_accesses : t -> int
(** Loads + stores + CAS (cache hits included). *)

val cache_lines : int
(** Size of the per-client line filter. *)

val note_line : t -> int -> bool
(** Record a touch of cache line [line]; [true] if it was already cached.
    Used by {!Mem}; exposed for tests. *)

val modeled_ns : Latency.t -> t -> float
(** Modeled execution time in nanoseconds under the given cost model,
    including the simulated retry backoff ({!t.backoff_ns}). *)

val breakdown_ns : Latency.t -> t -> float * float * float * float
(** [(access_ns, fence_ns, flush_ns, backoff_ns)] — the Fig 7
    decomposition plus the simulated retry-backoff stall; their sum is
    {!modeled_ns}. *)

(** {1 Span probes}

    A [probe] snapshots just the scalar counters {!modeled_ns} depends on
    (no cache-tag copy), so per-operation spans can price the traffic they
    bracket without perturbing the run. *)

type probe

val probe : t -> probe

val probe_ns : Latency.t -> t -> since:probe -> float
(** Modeled nanoseconds accumulated in [t] since the probe was taken. *)

val pp : Format.formatter -> t -> unit
