(** TATP (Telecom Application Transaction Processing) workload, mapped onto
    key-value operations (Fig 10d; the paper uses "only the read write
    workload" since CXL-KV has no transactions).

    Standard mix: GET_SUBSCRIBER_DATA 35 %, GET_NEW_DESTINATION 10 %,
    GET_ACCESS_DATA 35 %, UPDATE_SUBSCRIBER_DATA 2 %, UPDATE_LOCATION 14 %,
    INSERT_CALL_FORWARDING 2 %, DELETE_CALL_FORWARDING 2 %. Rows of the
    four tables map to disjoint key ranges. *)

type t

val create : subscribers:int -> seed:int -> t
val next : t -> Kv_intf.op list
(** One transaction = a short list of KV operations. *)

val load_ops : t -> Kv_intf.op list
val read_fraction : float
(** Fraction of read-only transactions in the standard mix (0.8). *)
