(** Ralloc-like persistent-memory allocator baseline (Fig 6, §6.2.1).

    Models Cai et al.'s lock-free pmem allocator: a mimalloc-style
    segment/page structure whose free-list updates must be persisted
    (flush + fence per allocation and per free), plus root registration
    ([set_root]) and a stop-the-world conservative garbage collection as
    crash recovery — whose cost is proportional to the {e whole heap},
    unlike CXL-SHM's recovery which is proportional to the dead client's
    RootRef count (the §6.2.1 contrast). *)

include Alloc_intf.S

val set_root : thread -> Cxlshm_shmem.Pptr.t -> unit
(** Register a root object (survives recovery). *)

val instance_of_thread : thread -> t

val recover : t -> st:Cxlshm_shmem.Stats.t -> int * int
(** Stop-the-world recovery: conservative mark from the registered roots
    over every word of every carved page, then sweep unreachable blocks
    back to free lists. Returns [(live, swept)]. The [st] counters expose
    the heap-proportional cost. *)

val words_scanned : t -> int
(** Heap words the last recovery scanned. *)
