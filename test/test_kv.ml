(* CXL-KV, the baselines, and the Fig 10 workload generators. *)

open Cxlshm
module Cxl_kv = Cxlshm_kv.Cxl_kv
module Tbb_kv = Cxlshm_kv.Tbb_kv
module Lightning_kv = Cxlshm_kv.Lightning_kv
module Zipf = Cxlshm_kv.Zipf
module Ycsb = Cxlshm_kv.Ycsb
module Tatp = Cxlshm_kv.Tatp
module Smallbank = Cxlshm_kv.Smallbank
module Kv_intf = Cxlshm_kv.Kv_intf
module Serve = Cxlshm_serve.Serve
module Load_gen = Cxlshm_serve.Load_gen

let kv_cfg = { Config.small with Config.num_segments = 32; pages_per_segment = 8 }

let fresh () =
  let arena = Shm.create ~cfg:kv_cfg () in
  let a = Shm.join arena () in
  let store, h = Cxl_kv.create a ~buckets:64 ~partitions:4 ~value_words:2 in
  Alcotest.(check bool) "claim p0" true (Cxl_kv.claim_partition h 0);
  Alcotest.(check bool) "claim p1" true (Cxl_kv.claim_partition h 1);
  Alcotest.(check bool) "claim p2" true (Cxl_kv.claim_partition h 2);
  Alcotest.(check bool) "claim p3" true (Cxl_kv.claim_partition h 3);
  (arena, a, store, h)

let test_put_get_delete () =
  let arena, _a, _store, h = fresh () in
  Alcotest.(check (option int)) "miss" None (Cxl_kv.get h ~key:5);
  Cxl_kv.put h ~key:5 ~value:500;
  Alcotest.(check (option int)) "hit" (Some 500) (Cxl_kv.get h ~key:5);
  Cxl_kv.put h ~key:5 ~value:777;
  Alcotest.(check (option int)) "in-place update" (Some 777) (Cxl_kv.get h ~key:5);
  Alcotest.(check bool) "delete" true (Cxl_kv.delete h ~key:5);
  Alcotest.(check (option int)) "gone" None (Cxl_kv.get h ~key:5);
  Alcotest.(check bool) "delete again" false (Cxl_kv.delete h ~key:5);
  Cxl_kv.close h;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v);
  Alcotest.(check int) "store fully reclaimed" 0 v.Validate.live_objects

let test_collision_chains () =
  let arena, _a, _store, h = fresh () in
  (* 64 buckets, 500 keys: plenty of collisions. *)
  for k = 0 to 499 do
    Cxl_kv.put h ~key:k ~value:(k * 3)
  done;
  Alcotest.(check int) "size" 500 (Cxl_kv.size_estimate h);
  for k = 0 to 499 do
    Alcotest.(check (option int)) (Printf.sprintf "key %d" k) (Some (k * 3))
      (Cxl_kv.get h ~key:k)
  done;
  (* delete every third key *)
  for k = 0 to 499 do
    if k mod 3 = 0 then Alcotest.(check bool) "del" true (Cxl_kv.delete h ~key:k)
  done;
  for k = 0 to 499 do
    let expect = if k mod 3 = 0 then None else Some (k * 3) in
    Alcotest.(check (option int)) (Printf.sprintf "after del %d" k) expect
      (Cxl_kv.get h ~key:k)
  done;
  Cxl_kv.quiesce h;
  Cxl_kv.close h;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_put_cow_relocates () =
  let arena, _a, _store, h = fresh () in
  Cxl_kv.put h ~key:3 ~value:30;
  let before = Cxl_kv.get_all_words h ~key:3 in
  (* in-place update keeps the record where it is *)
  Cxl_kv.put h ~key:3 ~value:31;
  Alcotest.(check (option int)) "in place" (Some 31) (Cxl_kv.get h ~key:3);
  (* copy-on-write replaces the record atomically *)
  Cxl_kv.put_cow h ~key:3 ~value:99;
  Alcotest.(check (option int)) "after cow" (Some 99) (Cxl_kv.get h ~key:3);
  ignore before;
  Cxl_kv.quiesce h;
  Cxl_kv.close h;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

let test_multi_value_words () =
  let arena, _a, _store, h = fresh () in
  Cxl_kv.put h ~key:9 ~value:100;
  (match Cxl_kv.get_all_words h ~key:9 with
  | Some [| a; b |] ->
      Alcotest.(check int) "word0" 100 a;
      Alcotest.(check int) "word1" 101 b
  | _ -> Alcotest.fail "expected 2 value words");
  Cxl_kv.close h;
  ignore arena

let test_single_writer_enforced () =
  let arena, _a, store, h = fresh () in
  let b = Shm.join arena () in
  let hb = Cxl_kv.open_store b store in
  (* b is not a writer of any partition. *)
  (try
     Cxl_kv.put hb ~key:1 ~value:1;
     Alcotest.fail "expected writer check to fire"
   with Failure _ -> ());
  (* but b reads everything (shared-everything). *)
  Cxl_kv.put h ~key:1 ~value:11;
  Alcotest.(check (option int)) "remote read" (Some 11) (Cxl_kv.get hb ~key:1);
  Cxl_kv.close hb;
  Cxl_kv.close h

let test_writer_failover () =
  (* §6.4.1: dead writer's partition is taken over with one CAS; no data
     moves; the new writer continues in place. *)
  let arena, a, store, h = fresh () in
  Cxl_kv.put h ~key:0 ~value:111;
  Cxl_kv.put h ~key:4 ~value:444;
  let b = Shm.join arena () in
  let hb = Cxl_kv.open_store b store in
  (* writer a dies *)
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  (* data survives: the index holds the records *)
  Alcotest.(check (option int)) "data survives crash" (Some 111)
    (Cxl_kv.get hb ~key:0);
  Alcotest.(check bool) "takeover" true (Cxl_kv.takeover_partition hb 0);
  Alcotest.(check (option int)) "writer id updated" (Some b.Ctx.cid)
    (Cxl_kv.writer_of_partition hb 0);
  Cxl_kv.put hb ~key:0 ~value:999;
  Alcotest.(check (option int)) "new writer writes" (Some 999)
    (Cxl_kv.get hb ~key:0);
  Cxl_kv.close hb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

let test_concurrent_readers () =
  let arena, _a, store, h = fresh () in
  for k = 0 to 199 do
    Cxl_kv.put h ~key:k ~value:k
  done;
  let reader () =
    let c = Shm.join arena () in
    let hr = Cxl_kv.open_store c store in
    let ok = ref true in
    for k = 0 to 199 do
      match Cxl_kv.get hr ~key:k with
      | Some v when v = k -> ()
      | _ -> ok := false
    done;
    Cxl_kv.close hr;
    Shm.leave c;
    !ok
  in
  let ds = List.init 3 (fun _ -> Domain.spawn reader) in
  let all = List.for_all Fun.id (List.map Domain.join ds) in
  Alcotest.(check bool) "all readers consistent" true all;
  Cxl_kv.close h

(* Model-based property: CXL-KV behaves like a Hashtbl under random op
   sequences. *)
let prop_kv_model =
  QCheck.Test.make ~name:"cxl-kv matches model" ~count:40
    QCheck.(list_of_size Gen.(1 -- 120) (pair (int_bound 60) (int_bound 2)))
    (fun ops ->
      let arena = Shm.create ~cfg:kv_cfg () in
      let a = Shm.join arena () in
      let _store, h = Cxl_kv.create a ~buckets:16 ~partitions:2 ~value_words:1 in
      ignore (Cxl_kv.claim_partition h 0);
      ignore (Cxl_kv.claim_partition h 1);
      let model = Hashtbl.create 64 in
      let ok =
        List.for_all
          (fun (key, kind) ->
            match kind with
            | 0 ->
                Cxl_kv.put h ~key ~value:(key * 7);
                Hashtbl.replace model key (key * 7);
                true
            | 1 ->
                let got = Cxl_kv.delete h ~key in
                let expect = Hashtbl.mem model key in
                Hashtbl.remove model key;
                got = expect
            | _ -> Cxl_kv.get h ~key = Hashtbl.find_opt model key)
          ops
      in
      Cxl_kv.close h;
      ignore (Shm.scan_leaking arena);
      ok && Validate.is_clean (Shm.validate arena))

let test_baselines_agree () =
  (* TBB-KV and Lightning-KV produce the same results as a model. *)
  let tbb = Tbb_kv.create ~buckets:32 ~value_words:1 ~capacity:1000 ~threads:1 in
  let th = Tbb_kv.handle tbb 0 in
  let lkv = Lightning_kv.create ~buckets:32 ~value_words:1 ~words:65_536 ~threads:1 in
  let lh = Lightning_kv.handle lkv 0 in
  let model = Hashtbl.create 64 in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 500 do
    let key = Random.State.int rng 50 in
    match Random.State.int rng 3 with
    | 0 ->
        let v = Random.State.int rng 10_000 in
        Tbb_kv.put th ~key ~value:v;
        Lightning_kv.put lh ~key ~value:v;
        Hashtbl.replace model key v
    | 1 ->
        let e = Hashtbl.mem model key in
        Hashtbl.remove model key;
        Alcotest.(check bool) "tbb delete" e (Tbb_kv.delete th ~key);
        Alcotest.(check bool) "lightning delete" e (Lightning_kv.delete lh ~key)
    | _ ->
        let e = Hashtbl.find_opt model key in
        Alcotest.(check (option int)) "tbb get" e (Tbb_kv.get th ~key);
        Alcotest.(check (option int)) "lightning get" e (Lightning_kv.get lh ~key)
  done

let test_zipf_shape () =
  let z = Zipf.create ~n:1000 ~theta:0.99 ~seed:1 in
  let counts = Array.make 1000 0 in
  let samples = 50_000 in
  for _ = 1 to samples do
    let k = Zipf.sample z in
    counts.(k) <- counts.(k) + 1
  done;
  let top1 = float_of_int counts.(0) /. float_of_int samples in
  let expected = Zipf.expected_top1_mass z in
  Alcotest.(check bool)
    (Printf.sprintf "top-1 mass %.3f ≈ %.3f" top1 expected)
    true
    (Float.abs (top1 -. expected) < 0.02);
  (* skew: hottest beats the tail decisively *)
  Alcotest.(check bool) "skewed" true (counts.(0) > 10 * counts.(500));
  let u = Zipf.create ~n:1000 ~theta:0.0 ~seed:1 in
  let uc = Array.make 1000 0 in
  for _ = 1 to samples do
    let k = Zipf.sample u in
    uc.(k) <- uc.(k) + 1
  done;
  Alcotest.(check bool) "uniform is flat-ish" true
    (uc.(0) < 3 * (samples / 1000))

let test_ycsb_presets () =
  List.iter
    (fun (preset, expect_writes) ->
      let w = Ycsb.of_preset ~keys:100 ~seed:5 preset in
      let n = 4_000 in
      let writes = ref 0 in
      for _ = 1 to n do
        if Kv_intf.is_write (Ycsb.next w) then incr writes
      done;
      let ratio = float_of_int !writes /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.3f ≈ %.2f" (Ycsb.preset_name preset) ratio
           expect_writes)
        true
        (Float.abs (ratio -. expect_writes) < 0.03))
    [ (Ycsb.A, 0.5); (Ycsb.B, 0.05); (Ycsb.C, 0.0); (Ycsb.F, 0.5) ]

let test_kv_iter () =
  let arena, _a, _store, h = fresh () in
  for k = 0 to 49 do
    Cxl_kv.put h ~key:k ~value:(k * 2)
  done;
  Alcotest.(check (list int)) "keys sorted" (List.init 50 Fun.id) (Cxl_kv.keys h);
  let sum = ref 0 in
  Cxl_kv.iter h (fun ~key:_ ~value -> sum := !sum + value);
  Alcotest.(check int) "value sum" (49 * 50) !sum;
  Cxl_kv.close h;
  ignore arena

let test_ycsb_mix () =
  let w = Ycsb.create ~keys:100 ~write_ratio:0.1 ~theta:0.5 ~seed:3 in
  let n = 10_000 in
  let writes = ref 0 in
  for _ = 1 to n do
    if Kv_intf.is_write (Ycsb.next w) then incr writes
  done;
  let ratio = float_of_int !writes /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "write ratio %.3f ≈ 0.1" ratio)
    true
    (Float.abs (ratio -. 0.1) < 0.02)

let test_tatp_mix () =
  let t = Tatp.create ~subscribers:100 ~seed:4 in
  let txns = 10_000 in
  let reads = ref 0 in
  for _ = 1 to txns do
    let ops = Tatp.next t in
    if List.for_all (fun o -> not (Kv_intf.is_write o)) ops then incr reads
  done;
  let frac = float_of_int !reads /. float_of_int txns in
  Alcotest.(check bool)
    (Printf.sprintf "read-only fraction %.3f ≈ 0.8" frac)
    true
    (Float.abs (frac -. Tatp.read_fraction) < 0.02)

let test_smallbank_runs () =
  let sb = Smallbank.create ~accounts:50 ~seed:5 in
  let tbb = Tbb_kv.create ~buckets:64 ~value_words:1 ~capacity:500 ~threads:1 in
  let th = Tbb_kv.handle tbb 0 in
  let apply = function
    | Kv_intf.Insert (k, v) | Kv_intf.Update (k, v) ->
        Tbb_kv.put th ~key:k ~value:v
    | Kv_intf.Rmw (k, v) ->
        let old = Option.value (Tbb_kv.get th ~key:k) ~default:0 in
        Tbb_kv.put th ~key:k ~value:(old + v)
    | Kv_intf.Read k -> ignore (Tbb_kv.get th ~key:k)
    | Kv_intf.Delete k -> ignore (Tbb_kv.delete th ~key:k)
  in
  List.iter apply (Smallbank.load_ops sb);
  for _ = 1 to 1000 do
    List.iter apply (Smallbank.next sb)
  done

(* ---- PR-8: generators, era-tied quiesce, handoff, serving harness ---- *)

(* The O(1) Gray sampler against the exact distribution: brute-force the
   normalizer and compare empirical rank frequencies at a fixed seed. *)
let test_zipf_reference () =
  let n = 200 and theta = 0.7 in
  let h = ref 0.0 in
  for i = 1 to n do
    h := !h +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  let z = Zipf.create ~n ~theta ~seed:7 in
  Alcotest.(check bool)
    (Printf.sprintf "top-1 closed form %.4f ≈ %.4f"
       (Zipf.expected_top1_mass z) (1.0 /. !h))
    true
    (Float.abs (Zipf.expected_top1_mass z -. (1.0 /. !h)) < 0.002);
  let samples = 100_000 in
  let counts = Array.make n 0 in
  for _ = 1 to samples do
    let k = Zipf.sample z in
    counts.(k) <- counts.(k) + 1
  done;
  List.iter
    (fun rank ->
      let expect =
        1.0 /. (Float.pow (float_of_int (rank + 1)) theta *. !h)
      in
      let got = float_of_int counts.(rank) /. float_of_int samples in
      Alcotest.(check bool)
        (Printf.sprintf "rank %d: %.4f ≈ %.4f" rank got expect)
        true
        (Float.abs (got -. expect) < 0.005 +. (0.1 *. expect)))
    [ 0; 1; 2; 9; 49 ];
  (* the closed form needs theta in [0, 1) *)
  (match Zipf.create ~n:10 ~theta:1.0 ~seed:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "theta = 1 accepted");
  match Zipf.create ~n:10 ~theta:(-0.1) ~seed:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative theta accepted"

let test_ycsb_load_stream () =
  let w = Ycsb.create ~keys:500 ~write_ratio:0.5 ~theta:0.5 ~seed:3 in
  let n = ref 0 in
  Ycsb.load_iter w (fun op ->
      (match op with
      | Kv_intf.Insert (k, v) ->
          Alcotest.(check int) "load key order" !n k;
          Alcotest.(check int) "load value" k v
      | _ -> Alcotest.fail "load phase must be all inserts");
      incr n);
  Alcotest.(check int) "streamed count" 500 !n;
  Alcotest.(check int) "list count" 500 (List.length (Ycsb.load_ops w));
  Alcotest.(check bool) "seq matches list" true
    (List.of_seq (Ycsb.load_seq w) = Ycsb.load_ops w)

let test_ycsb_latest_bias () =
  let w = Ycsb.of_preset ~keys:10_000 ~seed:9 Ycsb.D in
  Alcotest.(check bool) "D reads the latest" true (Ycsb.dist w = Ycsb.Latest);
  let reads = ref 0 and hot = ref 0 in
  for _ = 1 to 8_000 do
    match Ycsb.next w with
    | Kv_intf.Read k ->
        incr reads;
        if k >= Ycsb.keys w * 9 / 10 then incr hot
    | _ -> ()
  done;
  let frac = float_of_int !hot /. float_of_int !reads in
  (* uniform would put 10% of reads in the newest decile; latest-biased
     zipf(0.9) puts ~75% there *)
  Alcotest.(check bool)
    (Printf.sprintf "newest-decile read fraction %.2f > 0.5" frac)
    true (frac > 0.5)

let test_rmw_semantics () =
  let _arena, _a, _store, h = fresh () in
  Alcotest.(check (option int)) "rmw on missing inserts delta" None
    (Cxl_kv.rmw h ~key:9 ~delta:5);
  Alcotest.(check (option int)) "inserted" (Some 5) (Cxl_kv.get h ~key:9);
  Alcotest.(check (option int)) "rmw returns old" (Some 5)
    (Cxl_kv.rmw h ~key:9 ~delta:37);
  Alcotest.(check (option int)) "accumulated" (Some 42) (Cxl_kv.get h ~key:9);
  let w = Ycsb.of_preset ~keys:50 ~seed:2 Ycsb.F in
  let saw = ref false in
  for _ = 1 to 200 do
    match Ycsb.next w with Kv_intf.Rmw _ -> saw := true | _ -> ()
  done;
  Alcotest.(check bool) "preset F emits rmw ops" true !saw

(* A paused protected traversal must pin COW-displaced records across
   quiesce; releasing the era unpins them. *)
let test_quiesce_era_tied () =
  let arena, _a, store, h = fresh () in
  Cxl_kv.put h ~key:1 ~value:11;
  let rctx = Shm.join arena () in
  let hr = Cxl_kv.open_store rctx store in
  Hazard.enter rctx;
  Cxl_kv.put_cow h ~key:1 ~value:22;
  Alcotest.(check int) "parked" 1 (Cxl_kv.deferred_count h);
  Cxl_kv.quiesce h;
  Alcotest.(check int) "pinned by the announced era" 1
    (Cxl_kv.deferred_count h);
  Hazard.exit rctx;
  Cxl_kv.quiesce h;
  Alcotest.(check int) "freed once the reader moved on" 0
    (Cxl_kv.deferred_count h);
  Alcotest.(check (option int)) "new value" (Some 22) (Cxl_kv.get h ~key:1);
  Cxl_kv.close hr;
  Shm.leave rctx;
  Cxl_kv.close h;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

(* Planned shard handoff: parked records ride a transfer queue to a
   successor, stay pinned there, and reclaim once the era clears. *)
let test_handoff_adopt () =
  let arena, a, store, h = fresh () in
  for k = 0 to 9 do
    Cxl_kv.put h ~key:k ~value:k
  done;
  let rctx = Shm.join arena () in
  Hazard.enter rctx;
  for k = 0 to 9 do
    Cxl_kv.put_cow h ~key:k ~value:(100 + k)
  done;
  Alcotest.(check int) "ten parked" 10 (Cxl_kv.deferred_count h);
  let b = Shm.join arena () in
  let hb = Cxl_kv.open_store b store in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:16 in
  let sent = Cxl_kv.handoff_deferred h q in
  Alcotest.(check int) "all sent" 10 sent;
  Alcotest.(check int) "sender drained" 0 (Cxl_kv.deferred_count h);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Alcotest.(check int) "all adopted" 10 (Cxl_kv.adopt_deferred hb qb ~max:10);
  Alcotest.(check int) "parked at successor" 10 (Cxl_kv.deferred_count hb);
  Transfer.close qb;
  Transfer.close q;
  Cxl_kv.quiesce hb;
  Alcotest.(check int) "still pinned at successor" 10
    (Cxl_kv.deferred_count hb);
  Hazard.exit rctx;
  Cxl_kv.quiesce hb;
  Alcotest.(check int) "reclaimed" 0 (Cxl_kv.deferred_count hb);
  for k = 0 to 9 do
    Alcotest.(check (option int)) "value survives" (Some (100 + k))
      (Cxl_kv.get hb ~key:k)
  done;
  Cxl_kv.close hb;
  Shm.leave b;
  Shm.leave rctx;
  Cxl_kv.close h;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

(* ---- PR-9: crash-adoption of a dead writer's parked records ---- *)

module Mem = Cxlshm_shmem.Mem

(* The writer's persistent parked-record registry, as (obj, stamp) pairs —
   the objects recovery must never free while a reader era pins them. *)
let registry_snapshot arena cid =
  let lay = Shm.layout arena in
  let peek = Mem.unsafe_peek (Shm.mem arena) in
  let acc = ref [] in
  for k = 0 to Layout.park_capacity lay - 1 do
    let rr = peek (Layout.park_slot_rr lay cid k) in
    if rr <> 0 then
      acc :=
        (peek (Rootref.pptr_slot rr), peek (Layout.park_slot_stamp lay cid k))
        :: !acc
  done;
  !acc

(* Tentpole satellite (a): a writer dies with era-pinned parked records;
   recovery journals them (stamps intact) and a live successor adopts —
   nothing is freed until the pinned reader moves on. *)
let test_crash_adopt_successor () =
  let arena, a, store, h = fresh () in
  for k = 0 to 9 do
    Cxl_kv.put h ~key:k ~value:k
  done;
  let rctx = Shm.join arena () in
  let hr = Cxl_kv.open_store rctx store in
  Hazard.enter rctx;
  for k = 0 to 9 do
    Cxl_kv.put_cow h ~key:k ~value:(100 + k)
  done;
  Alcotest.(check int) "ten parked" 10 (Cxl_kv.deferred_count h);
  let parked = registry_snapshot arena a.Ctx.cid in
  Alcotest.(check int) "ten registered" 10 (List.length parked);
  let peek = Mem.unsafe_peek (Shm.mem arena) in
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  let rep = Recovery.recover svc ~failed_cid:a.Ctx.cid in
  Alcotest.(check int) "all ten journaled" 10 rep.Recovery.parked_journaled;
  Alcotest.(check int) "journal pending" 10 (Recovery.adopt_pending svc);
  List.iter
    (fun (obj, _) ->
      Alcotest.(check bool) "parked record survives recovery" true
        (peek obj <> 0))
    parked;
  let b = Shm.join arena () in
  let hb = Cxl_kv.open_store b store in
  Alcotest.(check bool) "takeover" true (Cxl_kv.takeover_partition hb 0);
  Alcotest.(check int) "successor adopts all" 10 (Cxl_kv.adopt_recovered hb);
  Alcotest.(check int) "journal drained" 0 (Recovery.adopt_pending svc);
  Alcotest.(check int) "re-parked at successor" 10 (Cxl_kv.deferred_count hb);
  Cxl_kv.quiesce hb;
  Alcotest.(check int) "stamps intact: still era-pinned" 10
    (Cxl_kv.deferred_count hb);
  List.iter
    (fun (obj, _) ->
      Alcotest.(check bool) "still live under the pin" true (peek obj <> 0))
    parked;
  (* the pinned reader still sees every post-COW value *)
  for k = 0 to 9 do
    Alcotest.(check (option int)) "reader value" (Some (100 + k))
      (Cxl_kv.get hr ~key:k)
  done;
  Hazard.exit rctx;
  Cxl_kv.quiesce hb;
  Alcotest.(check int) "reclaimed once the era passed" 0
    (Cxl_kv.deferred_count hb);
  Cxl_kv.close hr;
  Shm.leave rctx;
  Cxl_kv.close hb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

(* Tentpole satellite (b): no successor joins — the journal keeps the dead
   writer's records monitor-parked, era-gated, until the drain releases
   them once every announced era has passed. *)
let test_crash_no_successor_drain () =
  let arena, a, store, h = fresh () in
  for k = 0 to 5 do
    Cxl_kv.put h ~key:k ~value:k
  done;
  let rctx = Shm.join arena () in
  let hr = Cxl_kv.open_store rctx store in
  Hazard.enter rctx;
  for k = 0 to 5 do
    Cxl_kv.put_cow h ~key:k ~value:(100 + k)
  done;
  let parked = registry_snapshot arena a.Ctx.cid in
  let peek = Mem.unsafe_peek (Shm.mem arena) in
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  let rep = Recovery.recover svc ~failed_cid:a.Ctx.cid in
  Alcotest.(check int) "all journaled" 6 rep.Recovery.parked_journaled;
  (* the era still pins: the drain must release nothing *)
  Alcotest.(check int) "drain gated by the announced era" 0
    (Recovery.drain_adopt_journal svc);
  Alcotest.(check int) "still monitor-parked" 6 (Recovery.adopt_pending svc);
  List.iter
    (fun (obj, _) ->
      Alcotest.(check bool) "pinned record not freed" true (peek obj <> 0))
    parked;
  for k = 0 to 5 do
    Alcotest.(check (option int)) "reader value" (Some (100 + k))
      (Cxl_kv.get hr ~key:k)
  done;
  Hazard.exit rctx;
  Alcotest.(check int) "drained once the era passed" 6
    (Recovery.drain_adopt_journal svc);
  Alcotest.(check int) "journal empty" 0 (Recovery.adopt_pending svc);
  Cxl_kv.close hr;
  Shm.leave rctx;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

(* Tentpole satellite (c): kill the protocol at every labeled adoption
   crash point — the writer mid-park, the recovery service mid-journal and
   mid-phases, a successor between claim / registry append / journal clear
   — then resume; every parked record must end journaled exactly once,
   adopted, and never freed while the reader era pins. *)
let test_adoption_crash_windows () =
  let run_point point =
    let label suffix = Fault.point_name point ^ ": " ^ suffix in
    let arena = Shm.create ~cfg:kv_cfg () in
    let a = Shm.join arena () in
    let store, h = Cxl_kv.create a ~buckets:16 ~partitions:1 ~value_words:1 in
    Alcotest.(check bool) (label "claim") true (Cxl_kv.claim_partition h 0);
    let nkeys = 6 in
    for k = 0 to nkeys - 1 do
      Cxl_kv.put h ~key:k ~value:k
    done;
    let rctx = Shm.join arena () in
    let hr = Cxl_kv.open_store rctx store in
    Hazard.enter rctx;
    (* Park the displaced records; in the writer-side window the last COW
       dies right after its registry append — registered, but neither
       unlinked nor on the volatile deferred list. *)
    let cows_committed =
      if point = Fault.Park_after_append then begin
        for k = 0 to nkeys - 2 do
          Cxl_kv.put_cow h ~key:k ~value:(100 + k)
        done;
        a.Ctx.fault <- Fault.at point ~nth:1;
        (try
           Cxl_kv.put_cow h ~key:(nkeys - 1) ~value:(100 + nkeys - 1);
           Alcotest.fail (label "expected writer crash")
         with Fault.Crashed _ -> ());
        a.Ctx.fault <- Fault.none;
        nkeys - 1
      end
      else begin
        for k = 0 to nkeys - 1 do
          Cxl_kv.put_cow h ~key:k ~value:(100 + k)
        done;
        nkeys
      end
    in
    let parked = registry_snapshot arena a.Ctx.cid in
    Alcotest.(check int) (label "every park registered") nkeys
      (List.length parked);
    let peek = Mem.unsafe_peek (Shm.mem arena) in
    let svc = Shm.service_ctx arena in
    Client.declare_failed svc ~cid:a.Ctx.cid;
    (* Recovery-side windows: die mid-move (entry in registry AND journal)
       or after the move; a re-run resumes under the lock and must not
       journal anything twice. *)
    (match point with
    | Fault.Adopt_mid_journal | Fault.Recovery_mid_phases ->
        svc.Ctx.fault <- Fault.at point ~nth:1;
        (try
           ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
           Alcotest.fail (label "expected recovery crash")
         with Fault.Crashed _ -> ());
        svc.Ctx.fault <- Fault.none;
        ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid)
    | _ -> ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid));
    Alcotest.(check int) (label "journal holds every parked record") nkeys
      (Recovery.adopt_pending svc);
    List.iter
      (fun (obj, _) ->
        Alcotest.(check bool) (label "pinned record survives recovery") true
          (peek obj <> 0))
      parked;
    (* Successor-side windows: the first adopter dies between claim,
       registry append and journal clear; recovering IT resolves the
       half-done adoption (committed move re-journals from its registry, an
       uncommitted claim is voided) and a second successor takes over. *)
    let b1 = Shm.join arena () in
    let hb1 = Cxl_kv.open_store b1 store in
    let hb =
      if point = Fault.Adopt_after_claim || point = Fault.Adopt_after_append
      then begin
        b1.Ctx.fault <- Fault.at point ~nth:1;
        (try
           ignore (Cxl_kv.adopt_recovered hb1);
           Alcotest.fail (label "expected successor crash")
         with Fault.Crashed _ -> ());
        b1.Ctx.fault <- Fault.none;
        Client.declare_failed svc ~cid:b1.Ctx.cid;
        ignore (Recovery.recover svc ~failed_cid:b1.Ctx.cid);
        Alcotest.(check int) (label "journal intact after successor crash")
          nkeys
          (Recovery.adopt_pending svc);
        let b2 = Shm.join arena () in
        Cxl_kv.open_store b2 store
      end
      else hb1
    in
    Alcotest.(check bool) (label "takeover") true
      (Cxl_kv.takeover_partition hb 0);
    Alcotest.(check int) (label "adopted all") nkeys
      (Cxl_kv.adopt_recovered hb);
    Alcotest.(check int) (label "journal empty") 0 (Recovery.adopt_pending svc);
    Cxl_kv.quiesce hb;
    Alcotest.(check int) (label "stamps intact: still era-pinned") nkeys
      (Cxl_kv.deferred_count hb);
    List.iter
      (fun (obj, _) ->
        Alcotest.(check bool) (label "still live under the pin") true
          (peek obj <> 0))
      parked;
    (* the pinned reader sees a consistent store: committed COWs show the
       new value, the crashed COW kept the old record in the chain *)
    for k = 0 to nkeys - 1 do
      let expect = if k < cows_committed then 100 + k else k in
      Alcotest.(check (option int)) (label "reader value") (Some expect)
        (Cxl_kv.get hr ~key:k)
    done;
    Hazard.exit rctx;
    Cxl_kv.quiesce hb;
    Alcotest.(check int) (label "reclaimed once the era passed") 0
      (Cxl_kv.deferred_count hb);
    Cxl_kv.close hr;
    Shm.leave rctx;
    Cxl_kv.close hb;
    ignore (Shm.scan_leaking arena);
    let v = Shm.validate arena in
    Alcotest.(check bool)
      (label ("clean: " ^ String.concat ";" v.Validate.errors))
      true (Validate.is_clean v)
  in
  List.iter run_point
    [
      Fault.Park_after_append;
      Fault.Adopt_mid_journal;
      Fault.Recovery_mid_phases;
      Fault.Adopt_after_claim;
      Fault.Adopt_after_append;
    ]

(* Partial-handoff regression: a transfer ring too small for the parked
   list moves only a dense prefix; the retained suffix must keep its
   ORIGINAL retire stamps and registry slots (the historical bug re-handled
   the suffix, so a quiesce right after a partial send freed era-pinned
   records). *)
let test_partial_handoff_era_pinned () =
  let arena, a, store, h = fresh () in
  for k = 0 to 9 do
    Cxl_kv.put h ~key:k ~value:k
  done;
  let rctx = Shm.join arena () in
  let hr = Cxl_kv.open_store rctx store in
  Hazard.enter rctx;
  for k = 0 to 9 do
    Cxl_kv.put_cow h ~key:k ~value:(100 + k)
  done;
  let before = registry_snapshot arena a.Ctx.cid in
  let peek = Mem.unsafe_peek (Shm.mem arena) in
  let b = Shm.join arena () in
  let hb = Cxl_kv.open_store b store in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let sent = Cxl_kv.handoff_deferred h q in
  Alcotest.(check bool) "ring forced a partial send" true
    (sent > 0 && sent < 10);
  Alcotest.(check int) "suffix retained" (10 - sent) (Cxl_kv.deferred_count h);
  (* the retained entries keep their original stamps in the registry *)
  let after = registry_snapshot arena a.Ctx.cid in
  Alcotest.(check int) "registry matches the suffix" (10 - sent)
    (List.length after);
  List.iter
    (fun (obj, stamp) ->
      match List.assoc_opt obj before with
      | Some orig ->
          Alcotest.(check int) "original retire stamp kept" orig stamp
      | None -> Alcotest.fail "retained entry not in pre-handoff registry")
    after;
  (* quiesce right after the partial send: the era still pins, so nothing
     may be freed on either side *)
  Cxl_kv.quiesce h;
  Alcotest.(check int) "quiesce freed no pinned suffix" (10 - sent)
    (Cxl_kv.deferred_count h);
  List.iter
    (fun (obj, _) ->
      Alcotest.(check bool) "record still live" true (peek obj <> 0))
    before;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Alcotest.(check int) "prefix adopted" sent
    (Cxl_kv.adopt_deferred hb qb ~max:sent);
  Transfer.close qb;
  Transfer.close q;
  Cxl_kv.quiesce hb;
  Alcotest.(check int) "adopted prefix still pinned" sent
    (Cxl_kv.deferred_count hb);
  for k = 0 to 9 do
    Alcotest.(check (option int)) "reader value" (Some (100 + k))
      (Cxl_kv.get hr ~key:k)
  done;
  Hazard.exit rctx;
  Cxl_kv.quiesce h;
  Cxl_kv.quiesce hb;
  Alcotest.(check int) "suffix reclaimed" 0 (Cxl_kv.deferred_count h);
  Alcotest.(check int) "prefix reclaimed" 0 (Cxl_kv.deferred_count hb);
  Cxl_kv.close hr;
  Shm.leave rctx;
  Cxl_kv.close hb;
  Shm.leave b;
  Cxl_kv.close h;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

let test_load_gen_schedule () =
  let g1 = Load_gen.create ~rate_mops:2.0 ~seed:11 in
  let g2 = Load_gen.create ~rate_mops:2.0 ~seed:11 in
  let a1 = Array.init 1000 (fun _ -> Load_gen.next_arrival g1) in
  let a2 = Array.init 1000 (fun _ -> Load_gen.next_arrival g2) in
  Alcotest.(check bool) "deterministic" true (a1 = a2);
  Array.iteri
    (fun i t ->
      if i > 0 then
        Alcotest.(check bool) "strictly increasing" true (t > a1.(i - 1)))
    a1;
  let mean_gap = a1.(999) /. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.1f ns ≈ 500" mean_gap)
    true
    (Float.abs (mean_gap -. 500.0) < 50.0)

(* The serving harness end to end, twice: byte-identical reports, every
   crash recovered in-run, during-churn buckets populated, arena clean. *)
let test_serve_deterministic_churn () =
  let cfg = Serve.default_cfg ~keys:4_000 ~ops:3_000 in
  let cfg =
    { cfg with Serve.writers = 2; readers = 2; monitor_every = 60;
      hb_every = 30; final_check = true }
  in
  let r1 = Serve.run cfg in
  let r2 = Serve.run cfg in
  Alcotest.(check string) "identical reports" (Serve.report_to_json r1)
    (Serve.report_to_json r2);
  Alcotest.(check bool) "all recovered" true r1.Serve.all_recovered;
  Alcotest.(check int) "every crash recovered" r1.Serve.crashes
    r1.Serve.recoveries;
  Alcotest.(check bool) "crashes happened" true (r1.Serve.crashes >= 2);
  Alcotest.(check int) "one planned leave" 1 r1.Serve.leaves;
  Alcotest.(check int) "one join" 1 r1.Serve.joins;
  Alcotest.(check int) "validator clean" 0 r1.Serve.check_errors;
  Alcotest.(check int) "nothing left parked" 0 r1.Serve.deferred_left;
  Alcotest.(check bool) "during-churn buckets populated" true
    (List.exists
       (fun c -> c.Serve.during_churn && c.Serve.count > 0)
       r1.Serve.classes);
  let s = Serve.churn_to_string cfg.Serve.churn in
  (match Serve.churn_of_string s with
  | Ok c -> Alcotest.(check string) "schedule roundtrip" s
              (Serve.churn_to_string c)
  | Error e -> Alcotest.fail e);
  match Serve.churn_of_string "bogus@5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bogus churn action"

let suite =
  [
    Alcotest.test_case "put/get/delete" `Quick test_put_get_delete;
    Alcotest.test_case "collision chains" `Quick test_collision_chains;
    Alcotest.test_case "put_cow relocates" `Quick test_put_cow_relocates;
    Alcotest.test_case "multi-word values" `Quick test_multi_value_words;
    Alcotest.test_case "single-writer enforced" `Quick test_single_writer_enforced;
    Alcotest.test_case "writer failover (§6.4.1)" `Quick test_writer_failover;
    Alcotest.test_case "concurrent readers" `Quick test_concurrent_readers;
    Generators.to_alcotest prop_kv_model;
    Alcotest.test_case "baselines agree" `Quick test_baselines_agree;
    Alcotest.test_case "zipf shape" `Quick test_zipf_shape;
    Alcotest.test_case "ycsb mix" `Quick test_ycsb_mix;
    Alcotest.test_case "ycsb presets" `Quick test_ycsb_presets;
    Alcotest.test_case "kv iter/keys" `Quick test_kv_iter;
    Alcotest.test_case "tatp mix" `Quick test_tatp_mix;
    Alcotest.test_case "smallbank runs" `Quick test_smallbank_runs;
    Alcotest.test_case "zipf vs exact CDF" `Quick test_zipf_reference;
    Alcotest.test_case "ycsb streaming load" `Quick test_ycsb_load_stream;
    Alcotest.test_case "ycsb D latest bias" `Quick test_ycsb_latest_bias;
    Alcotest.test_case "rmw semantics (YCSB-F)" `Quick test_rmw_semantics;
    Alcotest.test_case "quiesce is era-tied" `Quick test_quiesce_era_tied;
    Alcotest.test_case "deferred handoff/adopt" `Quick test_handoff_adopt;
    Alcotest.test_case "crash adoption: live successor" `Quick
      test_crash_adopt_successor;
    Alcotest.test_case "crash adoption: monitor-parked drain" `Quick
      test_crash_no_successor_drain;
    Alcotest.test_case "adoption crash windows resume" `Quick
      test_adoption_crash_windows;
    Alcotest.test_case "partial handoff keeps era pins" `Quick
      test_partial_handoff_era_pinned;
    Alcotest.test_case "open-loop arrival schedule" `Quick
      test_load_gen_schedule;
    Alcotest.test_case "serve: deterministic churn run" `Quick
      test_serve_deterministic_churn;
  ]
