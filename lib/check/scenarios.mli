(** The built-in models: small concurrent protocols whose interleavings
    (and crash points) the explorer enumerates, each paired with the
    oracle that must hold afterwards.

    The arena models ([transfer], [refc]) recover every crashed client the
    way the monitor would, then require a leak-free, count-consistent,
    fsck-clean pool and a causally sane era matrix. *)

val spsc : ?capacity:int -> ?values:int -> unit -> Explore.model
(** Producer pushes [1..values] through a [capacity]-slot ring, consumer
    pops them. Branches at {e every} word access. Oracle: consecutive
    FIFO prefix, head/tail sanity. *)

val transfer :
  ?capacity:int -> ?values:int -> ?batched:bool -> unit -> Explore.model
(** Exactly-once reference handoff between two arena clients through a
    {!Cxlshm.Transfer} queue. Branches at labeled crash points and poll
    yields. With [~batched:true] (model name ["transfer-batch"]) the run
    moves through {!Cxlshm.Transfer.send_batch}/[receive_batch], exploring
    the single-commit-point batch publish. *)

val refc : ?rounds:int -> unit -> Explore.model
(** Two clients churning parent/child object graphs: era refcount
    transactions plus shared-allocator contention. Branches at labeled
    crash points and poll yields. *)

val huge : ?rounds:int -> unit -> Explore.model
(** Two clients allocating and freeing two-segment huge objects on a small
    segment pool: exercises the contiguous-run claim and the tail-first
    [free_huge] release through its crash windows. *)

val all : unit -> Explore.model list

val find : string -> Explore.model
(** Raises [Invalid_argument] for an unknown model name. *)
