(* CXL-KV, the baselines, and the Fig 10 workload generators. *)

open Cxlshm
module Cxl_kv = Cxlshm_kv.Cxl_kv
module Tbb_kv = Cxlshm_kv.Tbb_kv
module Lightning_kv = Cxlshm_kv.Lightning_kv
module Zipf = Cxlshm_kv.Zipf
module Ycsb = Cxlshm_kv.Ycsb
module Tatp = Cxlshm_kv.Tatp
module Smallbank = Cxlshm_kv.Smallbank
module Kv_intf = Cxlshm_kv.Kv_intf

let kv_cfg = { Config.small with Config.num_segments = 32; pages_per_segment = 8 }

let fresh () =
  let arena = Shm.create ~cfg:kv_cfg () in
  let a = Shm.join arena () in
  let store, h = Cxl_kv.create a ~buckets:64 ~partitions:4 ~value_words:2 in
  Alcotest.(check bool) "claim p0" true (Cxl_kv.claim_partition h 0);
  Alcotest.(check bool) "claim p1" true (Cxl_kv.claim_partition h 1);
  Alcotest.(check bool) "claim p2" true (Cxl_kv.claim_partition h 2);
  Alcotest.(check bool) "claim p3" true (Cxl_kv.claim_partition h 3);
  (arena, a, store, h)

let test_put_get_delete () =
  let arena, _a, _store, h = fresh () in
  Alcotest.(check (option int)) "miss" None (Cxl_kv.get h ~key:5);
  Cxl_kv.put h ~key:5 ~value:500;
  Alcotest.(check (option int)) "hit" (Some 500) (Cxl_kv.get h ~key:5);
  Cxl_kv.put h ~key:5 ~value:777;
  Alcotest.(check (option int)) "in-place update" (Some 777) (Cxl_kv.get h ~key:5);
  Alcotest.(check bool) "delete" true (Cxl_kv.delete h ~key:5);
  Alcotest.(check (option int)) "gone" None (Cxl_kv.get h ~key:5);
  Alcotest.(check bool) "delete again" false (Cxl_kv.delete h ~key:5);
  Cxl_kv.close h;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v);
  Alcotest.(check int) "store fully reclaimed" 0 v.Validate.live_objects

let test_collision_chains () =
  let arena, _a, _store, h = fresh () in
  (* 64 buckets, 500 keys: plenty of collisions. *)
  for k = 0 to 499 do
    Cxl_kv.put h ~key:k ~value:(k * 3)
  done;
  Alcotest.(check int) "size" 500 (Cxl_kv.size_estimate h);
  for k = 0 to 499 do
    Alcotest.(check (option int)) (Printf.sprintf "key %d" k) (Some (k * 3))
      (Cxl_kv.get h ~key:k)
  done;
  (* delete every third key *)
  for k = 0 to 499 do
    if k mod 3 = 0 then Alcotest.(check bool) "del" true (Cxl_kv.delete h ~key:k)
  done;
  for k = 0 to 499 do
    let expect = if k mod 3 = 0 then None else Some (k * 3) in
    Alcotest.(check (option int)) (Printf.sprintf "after del %d" k) expect
      (Cxl_kv.get h ~key:k)
  done;
  Cxl_kv.quiesce h;
  Cxl_kv.close h;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_put_cow_relocates () =
  let arena, _a, _store, h = fresh () in
  Cxl_kv.put h ~key:3 ~value:30;
  let before = Cxl_kv.get_all_words h ~key:3 in
  (* in-place update keeps the record where it is *)
  Cxl_kv.put h ~key:3 ~value:31;
  Alcotest.(check (option int)) "in place" (Some 31) (Cxl_kv.get h ~key:3);
  (* copy-on-write replaces the record atomically *)
  Cxl_kv.put_cow h ~key:3 ~value:99;
  Alcotest.(check (option int)) "after cow" (Some 99) (Cxl_kv.get h ~key:3);
  ignore before;
  Cxl_kv.quiesce h;
  Cxl_kv.close h;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

let test_multi_value_words () =
  let arena, _a, _store, h = fresh () in
  Cxl_kv.put h ~key:9 ~value:100;
  (match Cxl_kv.get_all_words h ~key:9 with
  | Some [| a; b |] ->
      Alcotest.(check int) "word0" 100 a;
      Alcotest.(check int) "word1" 101 b
  | _ -> Alcotest.fail "expected 2 value words");
  Cxl_kv.close h;
  ignore arena

let test_single_writer_enforced () =
  let arena, _a, store, h = fresh () in
  let b = Shm.join arena () in
  let hb = Cxl_kv.open_store b store in
  (* b is not a writer of any partition. *)
  (try
     Cxl_kv.put hb ~key:1 ~value:1;
     Alcotest.fail "expected writer check to fire"
   with Failure _ -> ());
  (* but b reads everything (shared-everything). *)
  Cxl_kv.put h ~key:1 ~value:11;
  Alcotest.(check (option int)) "remote read" (Some 11) (Cxl_kv.get hb ~key:1);
  Cxl_kv.close hb;
  Cxl_kv.close h

let test_writer_failover () =
  (* §6.4.1: dead writer's partition is taken over with one CAS; no data
     moves; the new writer continues in place. *)
  let arena, a, store, h = fresh () in
  Cxl_kv.put h ~key:0 ~value:111;
  Cxl_kv.put h ~key:4 ~value:444;
  let b = Shm.join arena () in
  let hb = Cxl_kv.open_store b store in
  (* writer a dies *)
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  (* data survives: the index holds the records *)
  Alcotest.(check (option int)) "data survives crash" (Some 111)
    (Cxl_kv.get hb ~key:0);
  Alcotest.(check bool) "takeover" true (Cxl_kv.takeover_partition hb 0);
  Alcotest.(check (option int)) "writer id updated" (Some b.Ctx.cid)
    (Cxl_kv.writer_of_partition hb 0);
  Cxl_kv.put hb ~key:0 ~value:999;
  Alcotest.(check (option int)) "new writer writes" (Some 999)
    (Cxl_kv.get hb ~key:0);
  Cxl_kv.close hb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

let test_concurrent_readers () =
  let arena, _a, store, h = fresh () in
  for k = 0 to 199 do
    Cxl_kv.put h ~key:k ~value:k
  done;
  let reader () =
    let c = Shm.join arena () in
    let hr = Cxl_kv.open_store c store in
    let ok = ref true in
    for k = 0 to 199 do
      match Cxl_kv.get hr ~key:k with
      | Some v when v = k -> ()
      | _ -> ok := false
    done;
    Cxl_kv.close hr;
    Shm.leave c;
    !ok
  in
  let ds = List.init 3 (fun _ -> Domain.spawn reader) in
  let all = List.for_all Fun.id (List.map Domain.join ds) in
  Alcotest.(check bool) "all readers consistent" true all;
  Cxl_kv.close h

(* Model-based property: CXL-KV behaves like a Hashtbl under random op
   sequences. *)
let prop_kv_model =
  QCheck.Test.make ~name:"cxl-kv matches model" ~count:40
    QCheck.(list_of_size Gen.(1 -- 120) (pair (int_bound 60) (int_bound 2)))
    (fun ops ->
      let arena = Shm.create ~cfg:kv_cfg () in
      let a = Shm.join arena () in
      let _store, h = Cxl_kv.create a ~buckets:16 ~partitions:2 ~value_words:1 in
      ignore (Cxl_kv.claim_partition h 0);
      ignore (Cxl_kv.claim_partition h 1);
      let model = Hashtbl.create 64 in
      let ok =
        List.for_all
          (fun (key, kind) ->
            match kind with
            | 0 ->
                Cxl_kv.put h ~key ~value:(key * 7);
                Hashtbl.replace model key (key * 7);
                true
            | 1 ->
                let got = Cxl_kv.delete h ~key in
                let expect = Hashtbl.mem model key in
                Hashtbl.remove model key;
                got = expect
            | _ -> Cxl_kv.get h ~key = Hashtbl.find_opt model key)
          ops
      in
      Cxl_kv.close h;
      ignore (Shm.scan_leaking arena);
      ok && Validate.is_clean (Shm.validate arena))

let test_baselines_agree () =
  (* TBB-KV and Lightning-KV produce the same results as a model. *)
  let tbb = Tbb_kv.create ~buckets:32 ~value_words:1 ~capacity:1000 ~threads:1 in
  let th = Tbb_kv.handle tbb 0 in
  let lkv = Lightning_kv.create ~buckets:32 ~value_words:1 ~words:65_536 ~threads:1 in
  let lh = Lightning_kv.handle lkv 0 in
  let model = Hashtbl.create 64 in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 500 do
    let key = Random.State.int rng 50 in
    match Random.State.int rng 3 with
    | 0 ->
        let v = Random.State.int rng 10_000 in
        Tbb_kv.put th ~key ~value:v;
        Lightning_kv.put lh ~key ~value:v;
        Hashtbl.replace model key v
    | 1 ->
        let e = Hashtbl.mem model key in
        Hashtbl.remove model key;
        Alcotest.(check bool) "tbb delete" e (Tbb_kv.delete th ~key);
        Alcotest.(check bool) "lightning delete" e (Lightning_kv.delete lh ~key)
    | _ ->
        let e = Hashtbl.find_opt model key in
        Alcotest.(check (option int)) "tbb get" e (Tbb_kv.get th ~key);
        Alcotest.(check (option int)) "lightning get" e (Lightning_kv.get lh ~key)
  done

let test_zipf_shape () =
  let z = Zipf.create ~n:1000 ~theta:0.99 ~seed:1 in
  let counts = Array.make 1000 0 in
  let samples = 50_000 in
  for _ = 1 to samples do
    let k = Zipf.sample z in
    counts.(k) <- counts.(k) + 1
  done;
  let top1 = float_of_int counts.(0) /. float_of_int samples in
  let expected = Zipf.expected_top1_mass z in
  Alcotest.(check bool)
    (Printf.sprintf "top-1 mass %.3f ≈ %.3f" top1 expected)
    true
    (Float.abs (top1 -. expected) < 0.02);
  (* skew: hottest beats the tail decisively *)
  Alcotest.(check bool) "skewed" true (counts.(0) > 10 * counts.(500));
  let u = Zipf.create ~n:1000 ~theta:0.0 ~seed:1 in
  let uc = Array.make 1000 0 in
  for _ = 1 to samples do
    let k = Zipf.sample u in
    uc.(k) <- uc.(k) + 1
  done;
  Alcotest.(check bool) "uniform is flat-ish" true
    (uc.(0) < 3 * (samples / 1000))

let test_ycsb_presets () =
  List.iter
    (fun (preset, expect_writes) ->
      let w = Ycsb.of_preset ~keys:100 ~seed:5 preset in
      let n = 4_000 in
      let writes = ref 0 in
      for _ = 1 to n do
        if Kv_intf.is_write (Ycsb.next w) then incr writes
      done;
      let ratio = float_of_int !writes /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.3f ≈ %.2f" (Ycsb.preset_name preset) ratio
           expect_writes)
        true
        (Float.abs (ratio -. expect_writes) < 0.03))
    [ (Ycsb.A, 0.5); (Ycsb.B, 0.05); (Ycsb.C, 0.0); (Ycsb.F, 0.5) ]

let test_kv_iter () =
  let arena, _a, _store, h = fresh () in
  for k = 0 to 49 do
    Cxl_kv.put h ~key:k ~value:(k * 2)
  done;
  Alcotest.(check (list int)) "keys sorted" (List.init 50 Fun.id) (Cxl_kv.keys h);
  let sum = ref 0 in
  Cxl_kv.iter h (fun ~key:_ ~value -> sum := !sum + value);
  Alcotest.(check int) "value sum" (49 * 50) !sum;
  Cxl_kv.close h;
  ignore arena

let test_ycsb_mix () =
  let w = Ycsb.create ~keys:100 ~write_ratio:0.1 ~theta:0.5 ~seed:3 in
  let n = 10_000 in
  let writes = ref 0 in
  for _ = 1 to n do
    if Kv_intf.is_write (Ycsb.next w) then incr writes
  done;
  let ratio = float_of_int !writes /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "write ratio %.3f ≈ 0.1" ratio)
    true
    (Float.abs (ratio -. 0.1) < 0.02)

let test_tatp_mix () =
  let t = Tatp.create ~subscribers:100 ~seed:4 in
  let txns = 10_000 in
  let reads = ref 0 in
  for _ = 1 to txns do
    let ops = Tatp.next t in
    if List.for_all (fun o -> not (Kv_intf.is_write o)) ops then incr reads
  done;
  let frac = float_of_int !reads /. float_of_int txns in
  Alcotest.(check bool)
    (Printf.sprintf "read-only fraction %.3f ≈ 0.8" frac)
    true
    (Float.abs (frac -. Tatp.read_fraction) < 0.02)

let test_smallbank_runs () =
  let sb = Smallbank.create ~accounts:50 ~seed:5 in
  let tbb = Tbb_kv.create ~buckets:64 ~value_words:1 ~capacity:500 ~threads:1 in
  let th = Tbb_kv.handle tbb 0 in
  List.iter
    (function
      | Kv_intf.Insert (k, v) | Kv_intf.Update (k, v) -> Tbb_kv.put th ~key:k ~value:v
      | Kv_intf.Read k -> ignore (Tbb_kv.get th ~key:k)
      | Kv_intf.Delete k -> ignore (Tbb_kv.delete th ~key:k))
    (Smallbank.load_ops sb);
  for _ = 1 to 1000 do
    List.iter
      (function
        | Kv_intf.Insert (k, v) | Kv_intf.Update (k, v) ->
            Tbb_kv.put th ~key:k ~value:v
        | Kv_intf.Read k -> ignore (Tbb_kv.get th ~key:k)
        | Kv_intf.Delete k -> ignore (Tbb_kv.delete th ~key:k))
      (Smallbank.next sb)
  done

let suite =
  [
    Alcotest.test_case "put/get/delete" `Quick test_put_get_delete;
    Alcotest.test_case "collision chains" `Quick test_collision_chains;
    Alcotest.test_case "put_cow relocates" `Quick test_put_cow_relocates;
    Alcotest.test_case "multi-word values" `Quick test_multi_value_words;
    Alcotest.test_case "single-writer enforced" `Quick test_single_writer_enforced;
    Alcotest.test_case "writer failover (§6.4.1)" `Quick test_writer_failover;
    Alcotest.test_case "concurrent readers" `Quick test_concurrent_readers;
    Generators.to_alcotest prop_kv_model;
    Alcotest.test_case "baselines agree" `Quick test_baselines_agree;
    Alcotest.test_case "zipf shape" `Quick test_zipf_shape;
    Alcotest.test_case "ycsb mix" `Quick test_ycsb_mix;
    Alcotest.test_case "ycsb presets" `Quick test_ycsb_presets;
    Alcotest.test_case "kv iter/keys" `Quick test_kv_iter;
    Alcotest.test_case "tatp mix" `Quick test_tatp_mix;
    Alcotest.test_case "smallbank runs" `Quick test_smallbank_runs;
  ]
