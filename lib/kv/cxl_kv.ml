open Cxlshm

type store = {
  index_obj : int;
  buckets : int;
  partitions : int;
  value_words : int;
}

type handle = {
  ctx : Ctx.t;
  store : store;
  index_rr : int;  (** our RootRef keeping the index alive *)
  mutable deferred : int list;  (** unlinked records awaiting quiesce *)
}

let name = "CXL-KV"

(* Index data layout (after the [buckets] embedded slots):
   +0 partitions, +1 value_words, +2.. writer table (cid+1 per partition).
   Record: emb slot 0 = next; data words +1 = key, +2.. = value. *)
let idx_word store i = Obj_header.data_of_obj store.index_obj + store.buckets + i
let writer_word store p = idx_word store (2 + p)
let bucket_slot store b = Obj_header.emb_slot store.index_obj b
let rec_next r = Obj_header.emb_slot r 0
let rec_key r = Obj_header.data_of_obj r + 1
let rec_val r i = Obj_header.data_of_obj r + 2 + i

(* Fibonacci hashing spreads dense integer keys. *)
let hash key = (key * 0x2545F4914F6CDD1D) land max_int

let bucket_of store key = hash key mod store.buckets
let partition_of_key store key = key mod store.partitions

let create ctx ~buckets ~partitions ~value_words =
  if buckets < 1 || partitions < 1 || value_words < 1 then
    invalid_arg "Cxl_kv.create";
  let data_words = buckets + 2 + partitions in
  let r = Shm.cxl_malloc_words ctx ~data_words ~emb_cnt:buckets () in
  let store =
    { index_obj = Cxl_ref.obj r; buckets; partitions; value_words }
  in
  Ctx.store ctx (idx_word store 0) partitions;
  Ctx.store ctx (idx_word store 1) value_words;
  for p = 0 to partitions - 1 do
    Ctx.store ctx (writer_word store p) 0
  done;
  let handle =
    { ctx; store; index_rr = Cxl_ref.rootref r; deferred = [] }
  in
  (store, handle)

let open_store ctx store =
  let rr = Alloc.alloc_rootref ctx in
  Refc.attach ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:store.index_obj;
  { ctx; store; index_rr = rr; deferred = [] }

let quiesce h =
  List.iter (fun r -> Alloc.free_obj_block h.ctx r) h.deferred;
  h.deferred <- []

let close h =
  quiesce h;
  Reclaim.release_rootref h.ctx h.index_rr

let claim_partition h p =
  Ctx.cas h.ctx (writer_word h.store p) ~expected:0 ~desired:(h.ctx.Ctx.cid + 1)

let takeover_partition h p =
  let w = writer_word h.store p in
  let rec loop () =
    let cur = Ctx.load h.ctx w in
    cur = h.ctx.Ctx.cid + 1
    || Ctx.cas h.ctx w ~expected:cur ~desired:(h.ctx.Ctx.cid + 1)
    || loop ()
  in
  loop ()

let writer_of_partition h p =
  let v = Ctx.load h.ctx (writer_word h.store p) in
  if v = 0 then None else Some (v - 1)

let check_writer h key =
  let p = partition_of_key h.store key in
  if Ctx.load h.ctx (writer_word h.store p) <> h.ctx.Ctx.cid + 1 then
    failwith
      (Printf.sprintf "Cxl_kv: client %d is not the writer of partition %d"
         h.ctx.Ctx.cid p)

let find h key =
  let rec walk r =
    if r = 0 then None
    else if Ctx.load h.ctx (rec_key r) = key then Some r
    else walk (Ctx.load h.ctx (rec_next r))
  in
  walk (Ctx.load h.ctx (bucket_slot h.store (bucket_of h.store key)))

let get h ~key =
  match find h key with
  | None -> None
  | Some r -> Some (Ctx.load h.ctx (rec_val r 0))

let get_all_words h ~key =
  match find h key with
  | None -> None
  | Some r ->
      Some (Array.init h.store.value_words (fun i -> Ctx.load h.ctx (rec_val r i)))

let write_value h r value =
  (* Full value width is written, modelling YCSB-size payload traffic. *)
  for i = 0 to h.store.value_words - 1 do
    Ctx.store h.ctx (rec_val r i) (value + i)
  done

let find_with_prev h key =
  let slot0 = bucket_slot h.store (bucket_of h.store key) in
  let rec walk prev_slot r =
    if r = 0 then None
    else if Ctx.load h.ctx (rec_key r) = key then Some (prev_slot, r)
    else walk (rec_next r) (Ctx.load h.ctx (rec_next r))
  in
  walk slot0 (Ctx.load h.ctx slot0)

let retire h r =
  Reclaim.teardown_children h.ctx ~as_cid:h.ctx.Ctx.cid ~obj:r;
  h.deferred <- r :: h.deferred

(* Insert a freshly allocated record for [key], either replacing [old]
   in-chain (§5.4 change) or prepending at the bucket. *)
let insert_fresh h ~key ~value ~existing =
  let rr, fresh =
    Alloc.alloc_obj h.ctx ~data_words:(2 + h.store.value_words) ~emb_cnt:1
  in
  Ctx.store h.ctx (rec_key fresh) key;
  write_value h fresh value;
  (match existing with
  | Some (prev_slot, old) ->
      let next = Ctx.load h.ctx (rec_next old) in
      if next <> 0 then Refc.attach h.ctx ~ref_addr:(rec_next fresh) ~refed:next;
      let n = Refc.change h.ctx ~ref_addr:prev_slot ~from_obj:old ~to_obj:fresh in
      if n = 0 then retire h old
  | None ->
      let slot = bucket_slot h.store (bucket_of h.store key) in
      let head = Ctx.load h.ctx slot in
      if head = 0 then Refc.attach h.ctx ~ref_addr:slot ~refed:fresh
      else begin
        Refc.attach h.ctx ~ref_addr:(rec_next fresh) ~refed:head;
        ignore (Refc.change h.ctx ~ref_addr:slot ~from_obj:head ~to_obj:fresh)
      end);
  (* The index keeps the record alive; drop our RootRef. *)
  Reclaim.release_rootref h.ctx rr

let put h ~key ~value =
  check_writer h key;
  match find h key with
  | Some r -> write_value h r value
  | None -> insert_fresh h ~key ~value ~existing:None

let put_cow h ~key ~value =
  check_writer h key;
  insert_fresh h ~key ~value ~existing:(find_with_prev h key)

let delete h ~key =
  check_writer h key;
  let slot0 = bucket_slot h.store (bucket_of h.store key) in
  let rec walk prev_slot r =
    if r = 0 then false
    else if Ctx.load h.ctx (rec_key r) = key then begin
      let next = Ctx.load h.ctx (rec_next r) in
      let n =
        if next = 0 then Refc.detach h.ctx ~ref_addr:prev_slot ~refed:r
        else Refc.change h.ctx ~ref_addr:prev_slot ~from_obj:r ~to_obj:next
      in
      if n = 0 then
        (* Unreachable from the index; tear down its next-link and park the
           block until quiesce (reader protection). *)
        retire h r;
      true
    end
    else walk (rec_next r) (Ctx.load h.ctx (rec_next r))
  in
  walk slot0 (Ctx.load h.ctx slot0)

let iter h f =
  for b = 0 to h.store.buckets - 1 do
    let rec walk r =
      if r <> 0 then begin
        f ~key:(Ctx.load h.ctx (rec_key r)) ~value:(Ctx.load h.ctx (rec_val r 0));
        walk (Ctx.load h.ctx (rec_next r))
      end
    in
    walk (Ctx.load h.ctx (bucket_slot h.store b))
  done

let keys h =
  let acc = ref [] in
  iter h (fun ~key ~value:_ -> acc := key :: !acc);
  List.sort compare !acc

let size_estimate h =
  let total = ref 0 in
  for b = 0 to h.store.buckets - 1 do
    let rec walk r = if r <> 0 then (incr total; walk (Ctx.load h.ctx (rec_next r))) in
    walk (Ctx.load h.ctx (bucket_slot h.store b))
  done;
  !total
