module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats

type t = {
  mem : Mem.t;
  lay : Layout.t;
  cid : int;
  home_dev : int;
  st : Stats.t;
  mutable fault : Fault.plan;
  rng : Random.State.t;
}

let make ~mem ~lay ~cid =
  if cid < 0 || cid >= lay.Layout.cfg.Config.max_clients then
    invalid_arg "Ctx.make: cid out of range";
  {
    mem;
    lay;
    cid;
    home_dev = cid mod Mem.num_devices mem;
    st = Stats.create ();
    fault = Fault.none;
    rng = Random.State.make [| 0x5eed; cid |];
  }

let cfg t = t.lay.Layout.cfg
let load t p = Mem.load t.mem ~st:t.st p
let store t p v = Mem.store t.mem ~st:t.st p v
let cas t p ~expected ~desired = Mem.cas t.mem ~st:t.st p ~expected ~desired
let fetch_add t p n = Mem.fetch_add t.mem ~st:t.st p n
let fence t = Mem.fence t.mem ~st:t.st
let flush t p = Mem.flush t.mem ~st:t.st p
let crash_point t point = Fault.maybe_crash t.fault point
