let next_slot_offset ~kind_rootref = if kind_rootref then 1 else Config.header_words

(* Page-meta accessors go through the client-local cache tier: reads of an
   owned page's metadata are served from the DRAM mirror, every store is
   write-through (see {!Ctx.load_pm}/{!Ctx.store_pm}). Mirror slot numbers
   match the layout order kind/block_words/capacity/free/used. *)

let kind (ctx : Ctx.t) ~gid =
  Ctx.load_pm ctx ~gid ~slot:0 (Layout.page_kind ctx.lay ~gid)

let set_kind (ctx : Ctx.t) ~gid k =
  Ctx.store_pm ctx ~gid ~slot:0 (Layout.page_kind ctx.lay ~gid) k

let block_words (ctx : Ctx.t) ~gid =
  Ctx.load_pm ctx ~gid ~slot:1 (Layout.page_block_words ctx.lay ~gid)

let capacity (ctx : Ctx.t) ~gid =
  Ctx.load_pm ctx ~gid ~slot:2 (Layout.page_capacity ctx.lay ~gid)

let free_head (ctx : Ctx.t) ~gid =
  Ctx.load_pm ctx ~gid ~slot:3 (Layout.page_free ctx.lay ~gid)

let set_free_head (ctx : Ctx.t) ~gid v =
  Ctx.store_pm ctx ~gid ~slot:3 (Layout.page_free ctx.lay ~gid) v

let used (ctx : Ctx.t) ~gid =
  Ctx.load_pm ctx ~gid ~slot:4 (Layout.page_used ctx.lay ~gid)

let set_used (ctx : Ctx.t) ~gid n =
  Ctx.store_pm ctx ~gid ~slot:4 (Layout.page_used ctx.lay ~gid) n
let incr_used ctx ~gid = set_used ctx ~gid (used ctx ~gid + 1)
let decr_used ctx ~gid = set_used ctx ~gid (used ctx ~gid - 1)

let init (ctx : Ctx.t) ~gid ~kind:k ~block_words:bw =
  if bw < 2 then invalid_arg "Page.init: block_words < 2";
  let cfg = Ctx.cfg ctx in
  let cap = cfg.Config.page_words / bw in
  if cap < 1 then invalid_arg "Page.init: block larger than page";
  let base = Layout.page_area ctx.lay ~gid in
  let rootref = k = Config.kind_rootref cfg in
  let off = next_slot_offset ~kind_rootref:rootref in
  (* Chain every block to its successor; zero the words recovery scans
     (header word for data blocks, the in_use word for RootRefs). *)
  for i = 0 to cap - 1 do
    let b = base + (i * bw) in
    Ctx.store ctx b 0;
    if not rootref then Ctx.store ctx (b + 1) 0;
    Ctx.store ctx (b + off) (if i = cap - 1 then 0 else base + ((i + 1) * bw))
  done;
  Ctx.store_pm ctx ~gid ~slot:1 (Layout.page_block_words ctx.lay ~gid) bw;
  Ctx.store_pm ctx ~gid ~slot:2 (Layout.page_capacity ctx.lay ~gid) cap;
  set_used ctx ~gid 0;
  Ctx.fence ctx;
  set_free_head ctx ~gid base;
  Ctx.fence ctx;
  (* kind is published last: kind <> unused implies the chain is complete. *)
  set_kind ctx ~gid k

let reset (ctx : Ctx.t) ~gid =
  (* A quarantined page records bad media, not allocation state: the mark
     survives segment recycling so the page never re-enters service. Its
     other metadata is already zeroed. *)
  if kind ctx ~gid <> Config.kind_quarantined (Ctx.cfg ctx) then begin
    set_kind ctx ~gid Config.kind_unused;
    Ctx.fence ctx;
    set_free_head ctx ~gid 0;
    set_used ctx ~gid 0;
    Ctx.store_pm ctx ~gid ~slot:2 (Layout.page_capacity ctx.lay ~gid) 0;
    Ctx.store_pm ctx ~gid ~slot:1 (Layout.page_block_words ctx.lay ~gid) 0;
    Ctx.store ctx (Layout.page_aux ctx.lay ~gid) 0;
    Ctx.store ctx (Layout.page_aux2 ctx.lay ~gid) 0
  end

let pop_free (ctx : Ctx.t) ~gid ~rootref =
  let head = free_head ctx ~gid in
  if head = 0 then None
  else begin
    let off = next_slot_offset ~kind_rootref:rootref in
    let next = Ctx.load ctx (head + off) in
    set_free_head ctx ~gid next;
    incr_used ctx ~gid;
    Some head
  end

let push_free (ctx : Ctx.t) ~gid ~rootref block =
  let off = next_slot_offset ~kind_rootref:rootref in
  Ctx.store ctx (block + off) (free_head ctx ~gid);
  set_free_head ctx ~gid block;
  decr_used ctx ~gid

let blocks (ctx : Ctx.t) ~gid =
  let bw = block_words ctx ~gid in
  let cap = capacity ctx ~gid in
  let base = Layout.page_area ctx.lay ~gid in
  List.init cap (fun i -> base + (i * bw))

let block_of_addr (ctx : Ctx.t) addr =
  let gid = Layout.page_gid_of_addr ctx.lay addr in
  let bw = block_words ctx ~gid in
  if bw = 0 then invalid_arg "Page.block_of_addr: page not initialised";
  let base = Layout.page_area ctx.lay ~gid in
  let idx = (addr - base) / bw in
  (base + (idx * bw), gid)
