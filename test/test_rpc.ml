(* CXL-RPC and the RDMA baseline: serialization, zero-copy calls with
   pointer isolation, concurrency, liveness under endpoint failure. *)

open Cxlshm
open Cxlshm_rpc

let mid_cfg =
  { Config.small with Config.num_segments = 16; pages_per_segment = 8 }

let test_serialize_roundtrip () =
  let e =
    { Serialize.func = 42; args = [ Bytes.of_string "alpha"; Bytes.of_string "" ] }
  in
  let d = Serialize.decode (Serialize.encode e) in
  Alcotest.(check int) "func" 42 d.Serialize.func;
  Alcotest.(check (list string)) "args" [ "alpha"; "" ]
    (List.map Bytes.to_string d.Serialize.args)

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialize roundtrip" ~count:200
    QCheck.(pair (int_bound 10_000) (list (string_of_size Gen.(0 -- 64))))
    (fun (func, args) ->
      let e = { Serialize.func; args = List.map Bytes.of_string args } in
      let d = Serialize.decode (Serialize.encode e) in
      d.Serialize.func = func
      && List.map Bytes.to_string d.Serialize.args = args)

let test_rdma_rpc () =
  let cl, sv = Rdma_rpc.pair () in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Rdma_rpc.serve_loop sv ~stop ~handler:(fun ~func ~args ->
            match args with
            | [ a ] ->
                Bytes.of_string
                  (Printf.sprintf "f%d:%s" func (Bytes.to_string a))
            | _ -> Bytes.of_string "bad"))
  in
  let r = Rdma_rpc.call cl ~func:7 ~args:[ Bytes.of_string "ping" ] in
  Alcotest.(check string) "reply" "f7:ping" (Bytes.to_string r);
  Alcotest.(check bool) "client clock advanced" true
    (Rdma_rpc.client_modeled_ns cl >= Rdma_sim.message_latency_ns);
  Atomic.set stop true;
  Domain.join server

let check_clean arena ~live =
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v);
  Alcotest.(check int) "live objects" live v.Validate.live_objects

let test_cxl_rpc_inline () =
  (* Client and server driven from one thread — deterministic. *)
  let arena = Shm.create ~cfg:mid_cfg () in
  let c = Shm.join arena () in
  let s = Shm.join arena () in
  let server = Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:8 in
  let client = Cxl_rpc.connect c ~server_cid:s.Ctx.cid ~capacity:8 in
  let arg = Cxl_rpc.alloc_arg client ~size_bytes:32 () in
  Cxl_ref.write_bytes arg (Bytes.of_string "zero copy!");
  let p = Cxl_rpc.call_async client ~func:5 ~args:[ arg ] ~output_bytes:32 in
  Alcotest.(check bool) "not done before serve" false (Cxl_rpc.is_done p);
  let served =
    Cxl_rpc.serve_one server ~handler:(fun ~func ~args ~output ->
        Alcotest.(check int) "func" 5 func;
        match args with
        | [ a ] ->
            let payload = Message.read_bytes a ~len:10 in
            Message.write_bytes output
              (Bytes.of_string (String.uppercase_ascii (Bytes.to_string payload)))
        | _ -> Alcotest.fail "one arg expected")
  in
  Alcotest.(check bool) "served" true served;
  Alcotest.(check int) "nothing rejected" 0 (Cxl_rpc.rejected_calls server);
  Alcotest.(check bool) "done after serve" true (Cxl_rpc.is_done p);
  let out = Cxl_rpc.finish p in
  Alcotest.(check string) "in-place result" "ZERO COPY!"
    (Bytes.to_string (Cxl_ref.read_bytes out ~len:10));
  Cxl_ref.drop arg;
  Cxl_ref.drop out;
  Cxl_rpc.close_server server;
  let segs = Cxl_rpc.channel_segments client in
  Cxl_rpc.close_client client;
  (* Revocation returned the emptied sub-heap to the arena. *)
  List.iter
    (fun seg ->
      Alcotest.(check bool)
        (Printf.sprintf "sub-heap segment %d released" seg)
        true
        (Segment.state c seg = Segment.Free))
    segs;
  check_clean arena ~live:0

let test_cxl_rpc_parallel () =
  let arena = Shm.create ~cfg:mid_cfg () in
  let c = Shm.join arena () in
  let stop = Atomic.make false in
  let server_cid = Atomic.make (-1) in
  let server =
    Domain.spawn (fun () ->
        let s = Shm.join arena () in
        Atomic.set server_cid s.Ctx.cid;
        let srv = Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:8 in
        Cxl_rpc.serve_until srv ~stop ~handler:(fun ~func ~args ~output ->
            match args with
            | [ a ] ->
                Message.write_word output 0 (func + Message.read_word a 0)
            | _ -> failwith "bad");
        Cxl_rpc.close_server srv)
  in
  let rec wait_cid () =
    let v = Atomic.get server_cid in
    if v < 0 then (Domain.cpu_relax (); wait_cid ()) else v
  in
  let client = Cxl_rpc.connect c ~server_cid:(wait_cid ()) ~capacity:8 in
  for i = 1 to 100 do
    let arg = Cxl_rpc.alloc_arg client ~size_bytes:8 () in
    Cxl_ref.write_word arg 0 (i * 10);
    let out = Cxl_rpc.call client ~func:3 ~args:[ arg ] ~output_bytes:8 in
    Alcotest.(check int)
      (Printf.sprintf "call %d" i)
      ((i * 10) + 3)
      (Cxl_ref.read_word out 0);
    Cxl_ref.drop arg;
    Cxl_ref.drop out
  done;
  Atomic.set stop true;
  Domain.join server;
  Cxl_rpc.close_client client

let test_out_of_channel_rejected () =
  (* An argument allocated outside the channel sub-heap must be refused by
     the server's validation walk — handler never runs, client sees
     Call_rejected — and leave the arena clean. *)
  let arena = Shm.create ~cfg:mid_cfg () in
  let c = Shm.join arena () in
  let s = Shm.join arena () in
  let server = Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:8 in
  let client = Cxl_rpc.connect c ~server_cid:s.Ctx.cid ~capacity:8 in
  let smuggled = Shm.cxl_malloc c ~size_bytes:16 () in
  let p =
    Cxl_rpc.call_async client ~func:9 ~args:[ smuggled ] ~output_bytes:8
  in
  let handled = ref false in
  let served =
    Cxl_rpc.serve_one server ~handler:(fun ~func:_ ~args:_ ~output:_ ->
        handled := true)
  in
  Alcotest.(check bool) "request consumed" true served;
  Alcotest.(check bool) "handler never ran" false !handled;
  Alcotest.(check int) "rejection counted" 1 (Cxl_rpc.rejected_calls server);
  (match Cxl_rpc.finish p with
  | exception Cxl_rpc.Call_rejected _ -> ()
  | _ -> Alcotest.fail "expected Call_rejected");
  Cxl_ref.drop smuggled;
  Cxl_rpc.close_server server;
  Cxl_rpc.close_client client;
  check_clean arena ~live:0

let test_wild_pointer_rejected () =
  (* A wild word planted in an in-channel argument's embedded slot: the walk
     must reject without dereferencing it, and disposal must neutralise the
     slot so teardown never chases it. *)
  let arena = Shm.create ~cfg:mid_cfg () in
  let c = Shm.join arena () in
  let s = Shm.join arena () in
  let server = Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:8 in
  let client = Cxl_rpc.connect c ~server_cid:s.Ctx.cid ~capacity:8 in
  let arg = Cxl_rpc.alloc_arg client ~size_bytes:16 ~emb_cnt:1 () in
  (* Raw poke, not set_emb: a corrupted/hostile pointer, no count behind it. *)
  Ctx.store c (Obj_header.emb_slot (Cxl_ref.obj arg) 0) 0xDEADBEEF;
  let p = Cxl_rpc.call_async client ~func:2 ~args:[ arg ] ~output_bytes:8 in
  let served =
    Cxl_rpc.serve_one server ~handler:(fun ~func:_ ~args:_ ~output:_ ->
        Alcotest.fail "handler must not run on a wild closure")
  in
  Alcotest.(check bool) "request consumed" true served;
  Alcotest.(check int) "rejection counted" 1 (Cxl_rpc.rejected_calls server);
  (match Cxl_rpc.finish p with
  | exception Cxl_rpc.Call_rejected _ -> ()
  | _ -> Alcotest.fail "expected Call_rejected");
  Cxl_ref.drop arg;
  Cxl_rpc.close_server server;
  Cxl_rpc.close_client client;
  check_clean arena ~live:0

let test_double_finish_rejected () =
  let arena = Shm.create ~cfg:mid_cfg () in
  let c = Shm.join arena () in
  let s = Shm.join arena () in
  let server = Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:8 in
  let client = Cxl_rpc.connect c ~server_cid:s.Ctx.cid ~capacity:8 in
  let arg = Cxl_rpc.alloc_arg client ~size_bytes:8 () in
  let p = Cxl_rpc.call_async client ~func:1 ~args:[ arg ] ~output_bytes:8 in
  ignore
    (Cxl_rpc.serve_one server ~handler:(fun ~func:_ ~args:_ ~output:_ -> ()));
  let out = Cxl_rpc.finish p in
  (match Cxl_rpc.finish p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "second finish must raise Invalid_argument");
  (match Cxl_rpc.try_finish p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "try_finish after finish must raise Invalid_argument");
  Cxl_ref.drop arg;
  Cxl_ref.drop out;
  Cxl_rpc.close_server server;
  Cxl_rpc.close_client client;
  check_clean arena ~live:0

let test_server_dies_mid_call () =
  (* The server dies with a request in flight: the client's finish must
     unblock with Peer_failed (bounded, not an infinite spin) and the arena
     must come back clean after revocation. *)
  let arena = Shm.create ~cfg:mid_cfg () in
  let c = Shm.join arena () in
  let s = Shm.join arena () in
  let _server = Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:8 in
  let client = Cxl_rpc.connect c ~server_cid:s.Ctx.cid ~capacity:8 in
  let arg = Cxl_rpc.alloc_arg client ~size_bytes:16 () in
  let p = Cxl_rpc.call_async client ~func:4 ~args:[ arg ] ~output_bytes:16 in
  (* Server crashes before serving; the membership layer notices. *)
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:s.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:s.Ctx.cid);
  (match Cxl_rpc.finish p with
  | exception Cxl_rpc.Peer_failed _ -> ()
  | _ -> Alcotest.fail "expected Peer_failed");
  Cxl_ref.drop arg;
  let segs = Cxl_rpc.channel_segments client in
  Cxl_rpc.close_client client;
  List.iter
    (fun seg ->
      Alcotest.(check bool)
        (Printf.sprintf "sub-heap segment %d released" seg)
        true
        (Segment.state c seg = Segment.Free))
    segs;
  check_clean arena ~live:0

let test_send_to_dead_server_unblocks () =
  (* Full ring + dead server used to spin forever in call_async; the lease
     check now bounds the wait with Peer_failed. *)
  let arena = Shm.create ~cfg:mid_cfg () in
  let c = Shm.join arena () in
  let s = Shm.join arena () in
  let _server = Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:2 in
  let client = Cxl_rpc.connect c ~server_cid:s.Ctx.cid ~capacity:2 in
  let fire () =
    let arg = Cxl_rpc.alloc_arg client ~size_bytes:8 () in
    let p = Cxl_rpc.call_async client ~func:1 ~args:[ arg ] ~output_bytes:8 in
    Cxl_ref.drop arg;
    p
  in
  (* Fill the ring while the server (which never serves) is still alive. *)
  let cap = 2 in
  let inflight = List.init cap (fun _ -> fire ()) in
  (* Server dies; the next send finds the ring full and must give up. *)
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:s.Ctx.cid;
  let arg = Cxl_rpc.alloc_arg client ~size_bytes:8 () in
  (match Cxl_rpc.call_async client ~func:1 ~args:[ arg ] ~output_bytes:8 with
  | exception Cxl_rpc.Peer_failed _ -> ()
  | _p -> Alcotest.fail "send into a full ring of a dead server must fail");
  Cxl_ref.drop arg;
  (* Abandoning the stuck calls also reports Peer_failed and releases the
     client-held handles. *)
  List.iter
    (fun p ->
      match Cxl_rpc.finish p with
      | exception Cxl_rpc.Peer_failed _ -> ()
      | _ -> Alcotest.fail "expected Peer_failed")
    inflight;
  ignore (Recovery.recover svc ~failed_cid:s.Ctx.cid);
  Cxl_rpc.close_client client;
  ignore (Shm.scan_leaking arena);
  check_clean arena ~live:0

let test_client_dies_mid_call () =
  (* Client fires a request then dies; recovery must reap the in-flight
     message, its argument and the output object. *)
  let arena = Shm.create ~cfg:mid_cfg () in
  let c = Shm.join arena () in
  let s = Shm.join arena () in
  let _server = Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:8 in
  let client = Cxl_rpc.connect c ~server_cid:s.Ctx.cid ~capacity:8 in
  let arg = Cxl_rpc.alloc_arg client ~size_bytes:16 () in
  let _p = Cxl_rpc.call_async client ~func:1 ~args:[ arg ] ~output_bytes:16 in
  (* c crashes before the server touches the queue. *)
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:c.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:c.Ctx.cid);
  (* server also exits *)
  Client.declare_failed svc ~cid:s.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:s.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  check_clean arena ~live:0

let suite =
  [
    Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
    Generators.to_alcotest prop_serialize_roundtrip;
    Alcotest.test_case "rdma rpc" `Quick test_rdma_rpc;
    Alcotest.test_case "cxl rpc inline" `Quick test_cxl_rpc_inline;
    Alcotest.test_case "cxl rpc parallel" `Quick test_cxl_rpc_parallel;
    Alcotest.test_case "out-of-channel arg rejected" `Quick
      test_out_of_channel_rejected;
    Alcotest.test_case "wild pointer rejected" `Quick
      test_wild_pointer_rejected;
    Alcotest.test_case "double finish rejected" `Quick
      test_double_finish_rejected;
    Alcotest.test_case "server dies mid-call" `Quick test_server_dies_mid_call;
    Alcotest.test_case "full ring, dead server unblocks" `Quick
      test_send_to_dead_server_unblocks;
    Alcotest.test_case "client dies mid-call" `Quick test_client_dies_mid_call;
  ]
