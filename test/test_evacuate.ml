(* Live segment evacuation: basic object moves off degraded devices,
   directory pinning, no-space behaviour, huge runs, client-side rootref
   relocation, and the crash-resume/identity-preservation path through the
   migration journal (Evac_* crash points). *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem

let striped_cfg ?(devices = 4) () =
  {
    Config.small with
    Config.backend = Mem.Striped { devices; stripe_words = 0; tiers = [||] };
  }

let seg_of arena addr = Layout.segment_of_addr (Shm.layout arena) addr
let dev_of arena ctx addr = Alloc.segment_device ctx (seg_of arena addr)

let check_clean arena label =
  Alcotest.(check bool) (label ^ ": validate clean") true
    (Validate.is_clean (Shm.validate arena));
  Alcotest.(check bool) (label ^ ": fsck clean") true
    (Fsck.clean (Shm.fsck arena))

(* ---- basic move: every holder lands on the same replacement ---- *)

let test_basic_move () =
  let arena = Shm.create ~cfg:(striped_cfg ()) () in
  let svc = Shm.service_ctx arena in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let child = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.write_word child 0 0xBEEF;
  let parent = Shm.cxl_malloc b ~size_bytes:8 ~emb_cnt:1 () in
  Cxl_ref.set_emb parent 0 child;
  let obj0 = Cxl_ref.obj child in
  let dev = dev_of arena a obj0 in
  Ctx.mark_degraded svc dev;
  let r = Shm.evacuate arena in
  Alcotest.(check bool) "moved something" true (r.Evacuate.moved >= 1);
  Alcotest.(check (list string)) "no errors" [] r.Evacuate.errors;
  let obj1 = Cxl_ref.obj child in
  Alcotest.(check bool) "object left the old block" true (obj1 <> obj0);
  Alcotest.(check bool) "replacement is on a healthy device" true
    (dev_of arena a obj1 <> dev);
  Alcotest.(check bool) "both holders agree on one copy" true
    (Cxl_ref.get_emb parent 0 = obj1);
  Alcotest.(check int) "payload intact" 0xBEEF (Cxl_ref.read_word child 0);
  Cxl_ref.drop parent;
  Cxl_ref.drop child;
  Ctx.clear_degraded svc;
  check_clean arena "basic move"

(* ---- directory-held objects are pinned, and stay functional ---- *)

let test_directory_pinned () =
  let arena = Shm.create ~cfg:(striped_cfg ()) () in
  let svc = Shm.service_ctx arena in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let qobj = Cxl_ref.obj (Transfer.queue_ref q) in
  Ctx.mark_degraded svc (dev_of arena a qobj);
  let r = Shm.evacuate arena in
  Alcotest.(check bool) "queue object pinned" true (r.Evacuate.pinned >= 1);
  Alcotest.(check bool) "queue object did not move" true
    (Cxl_ref.obj (Transfer.queue_ref q) = qobj);
  (* The queue still works across the sweep. *)
  let payload = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.write_word payload 0 77;
  Alcotest.(check bool) "send" true (Transfer.send q payload = Transfer.Sent);
  (match Transfer.open_from b ~sender:a.Ctx.cid with
  | None -> Alcotest.fail "receiver cannot open the queue"
  | Some qb -> (
      match Transfer.receive qb with
      | Transfer.Received got ->
          Alcotest.(check int) "payload through queue" 77
            (Cxl_ref.read_word got 0);
          Cxl_ref.drop got;
          Transfer.close qb
      | _ -> Alcotest.fail "receive failed"));
  Cxl_ref.drop payload;
  Transfer.close q;
  Ctx.clear_degraded svc;
  check_clean arena "directory pinned"

(* ---- every device degraded: nothing healthy to move to ---- *)

let test_no_space () =
  let arena = Shm.create ~cfg:(striped_cfg ~devices:2 ()) () in
  let svc = Shm.service_ctx arena in
  let a = Shm.join arena () in
  let h = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.write_word h 0 31337;
  let obj0 = Cxl_ref.obj h in
  Ctx.mark_degraded svc 0;
  Ctx.mark_degraded svc 1;
  let r = Shm.evacuate arena in
  Alcotest.(check int) "nothing moved" 0 r.Evacuate.moved;
  Alcotest.(check bool) "no-space reported" true (r.Evacuate.no_space >= 1);
  Alcotest.(check bool) "object untouched" true (Cxl_ref.obj h = obj0);
  Alcotest.(check int) "payload untouched" 31337 (Cxl_ref.read_word h 0);
  Cxl_ref.drop h;
  Ctx.clear_degraded svc;
  check_clean arena "no space"

(* ---- huge run off a degraded device ---- *)

let test_huge_move () =
  let arena = Shm.create ~cfg:(striped_cfg ()) () in
  let svc = Shm.service_ctx arena in
  let a = Shm.join arena () in
  (* keep the RootRef-page segment claimed across the churn *)
  let warm = Shm.cxl_malloc a ~size_bytes:8 () in
  let words = (Shm.layout arena).Layout.segment_words + 100 in
  let h = Shm.cxl_malloc_words a ~data_words:words () in
  Cxl_ref.write_word h 0 11;
  Cxl_ref.write_word h (words - 1) 22;
  let obj0 = Cxl_ref.obj h in
  let dev = dev_of arena a obj0 in
  Ctx.mark_degraded svc dev;
  let r = Shm.evacuate arena in
  Alcotest.(check bool) "run moved" true (r.Evacuate.moved >= 1);
  let obj1 = Cxl_ref.obj h in
  Alcotest.(check bool) "new run" true (obj1 <> obj0);
  Alcotest.(check int) "first word" 11 (Cxl_ref.read_word h 0);
  Alcotest.(check int) "last word" 22 (Cxl_ref.read_word h (words - 1));
  (* no segment of the replacement run touches the degraded device *)
  let head_seg = seg_of arena obj1 in
  for k = 0 to Alloc.huge_span a ~head_seg - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "run segment %d healthy" (head_seg + k))
      true
      (Alloc.segment_device a (head_seg + k) <> dev)
  done;
  Cxl_ref.drop h;
  Cxl_ref.drop warm;
  Ctx.clear_degraded svc;
  check_clean arena "huge move"

(* ---- client-side relocation fully drains the device ---- *)

let test_relocate_own_drains_device () =
  let arena = Shm.create ~cfg:(striped_cfg ()) () in
  let svc = Shm.service_ctx arena in
  let a = Shm.join arena () in
  let h = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.write_word h 0 4242;
  (* degrade the device holding the RootRef block itself: only the owner
     can move that (the monitor sweep pins it) *)
  let dev = dev_of arena a (Cxl_ref.rootref h) in
  Ctx.mark_degraded svc dev;
  let rep = Evacuate.relocate_own a in
  Alcotest.(check (list string)) "no errors" [] rep.Evacuate.errors;
  (* patch handles whose rootref moved *)
  let h =
    match List.assoc_opt (Cxl_ref.rootref h) rep.Evacuate.remapped with
    | Some rr2 -> Cxl_ref.of_rootref a rr2
    | None -> h
  in
  (* a monitor sweep mops up anything the client did not own *)
  ignore (Shm.evacuate arena);
  Alcotest.(check (list int)) "zero live segments on the degraded device" []
    (Evacuate.live_segments_on svc ~dev);
  Alcotest.(check int) "payload intact through the remapped handle" 4242
    (Cxl_ref.read_word h 0);
  Cxl_ref.drop h;
  Ctx.clear_degraded svc;
  check_clean arena "relocate own"

(* ---- evacuator crash at each Evac_* point: recovery cleans up, the next
   sweep breaks the dead claim, resumes the migration journal, and finishes
   the move without forking object identity ---- *)

let crash_resume point () =
  let arena = Shm.create ~cfg:(striped_cfg ()) () in
  let svc = Shm.service_ctx arena in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let child = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.write_word child 0 0xFACE;
  let parent = Shm.cxl_malloc b ~size_bytes:8 ~emb_cnt:1 () in
  Cxl_ref.set_emb parent 0 child;
  let obj0 = Cxl_ref.obj child in
  let dev = dev_of arena a obj0 in
  Ctx.mark_degraded svc dev;
  let w = Shm.join arena () in
  w.Ctx.fault <- Fault.at point ~nth:1;
  (match Evacuate.evacuate_obj w ~obj:obj0 with
  | exception Fault.Crashed _ -> ()
  | _ -> Alcotest.fail "evacuator did not crash");
  (* The dead evacuator's guard and bootstrap rootrefs are ordinary slot
     state: standard client recovery releases them. The sweep claim stays
     behind on purpose (a dead process cleans up nothing). *)
  Client.declare_failed svc ~cid:w.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:w.Ctx.cid);
  Alcotest.(check bool) "clean after evacuator recovery" true
    (Validate.is_clean (Shm.validate arena));
  ignore (Shm.evacuate arena);
  let obj1 = Cxl_ref.obj child in
  Alcotest.(check bool) "moved off the degraded device" true
    (dev_of arena a obj1 <> dev);
  Alcotest.(check bool) "holders agree on a single copy" true
    (Cxl_ref.get_emb parent 0 = obj1);
  Alcotest.(check int) "payload survived" 0xFACE (Cxl_ref.read_word child 0);
  Cxl_ref.drop parent;
  Cxl_ref.drop child;
  Ctx.clear_degraded svc;
  check_clean arena "crash resume"

(* ---- the evacuate model under the schedule explorer ---- *)

let test_sched_evacuate () =
  let module Explore = Cxlshm_check.Explore in
  let m = Cxlshm_check.Scenarios.evacuate () in
  let r =
    Explore.random ~seed:5 ~schedules:60 ~crash:true ~max_steps:60_000 m
  in
  (match r.Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "%s (replay: %s)" f.Explore.reason
        (Cxlshm_check.Schedule.to_string f.Explore.schedule));
  Alcotest.(check bool) "some schedules actually crashed" true
    (r.Explore.crashes_injected > 0)

let suite =
  [
    Alcotest.test_case "basic move re-points every holder" `Quick
      test_basic_move;
    Alcotest.test_case "directory objects pinned but functional" `Quick
      test_directory_pinned;
    Alcotest.test_case "all devices degraded: no space" `Quick test_no_space;
    Alcotest.test_case "huge run evacuation" `Quick test_huge_move;
    Alcotest.test_case "relocate_own drains the device" `Quick
      test_relocate_own_drains_device;
    Alcotest.test_case "crash after copy" `Quick
      (crash_resume Fault.Evac_after_copy);
    Alcotest.test_case "crash mid re-point (journal resume)" `Quick
      (crash_resume Fault.Evac_after_repoint);
    Alcotest.test_case "crash before release" `Quick
      (crash_resume Fault.Evac_before_release);
    Alcotest.test_case "evacuate model under the explorer" `Quick
      test_sched_evacuate;
  ]
