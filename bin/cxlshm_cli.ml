(* cxlshm — command-line driver for poking at a simulated CXL-SHM arena.

   Subcommands:
     demo      allocate / share / crash / recover walk-through
     drill     run the §6.2.2 crash-window drill for one or all points
     stats     print arena geometry for a given configuration
     validate  build a randomized workload and validate the arena
     fsck      verify (and optionally repair) a saved pool image
     soak      crash-point x device-fault sweep with a JSON report
     trace     replay a client's event ring from a saved image
     top       per-op latency summary over every ring in a saved image
     serve     open-loop KV serving run with churn and an SLO report *)

open Cxlshm
open Cmdliner

let geometry segments pages page_words clients backend =
  {
    Config.default with
    Config.num_segments = segments;
    pages_per_segment = pages;
    page_words;
    max_clients = clients;
    backend;
  }

let seg_arg =
  Arg.(value & opt int 64 & info [ "segments" ] ~doc:"Number of segments.")

let pages_arg =
  Arg.(value & opt int 16 & info [ "pages" ] ~doc:"Pages per segment.")

let pw_arg =
  Arg.(value & opt int 1024 & info [ "page-words" ] ~doc:"Words per page.")

let clients_arg =
  Arg.(value & opt int 16 & info [ "clients" ] ~doc:"Maximum clients (M).")

(* ---- memory backend selection ---- *)

let backend_kind_arg =
  Arg.(
    value
    & opt (enum [ ("flat", `Flat); ("striped", `Striped); ("counting", `Counting) ]) `Flat
    & info [ "backend" ]
        ~doc:
          "Memory backend: $(b,flat) (one device), $(b,striped) (sharded \
           multi-device pool) or $(b,counting) (fast non-atomic, \
           single-domain only).")

let devices_arg =
  Arg.(
    value & opt int 4
    & info [ "devices" ] ~doc:"Devices in the striped pool.")

let stripe_arg =
  Arg.(
    value & opt int 0
    & info [ "stripe-words" ]
        ~doc:"Stripe granularity in words (0 = one segment per stripe).")

let tier_enum =
  [
    ("local", Cxlshm_shmem.Latency.Local_numa);
    ("remote", Cxlshm_shmem.Latency.Remote_numa);
    ("cxl", Cxlshm_shmem.Latency.Cxl);
  ]

let tiers_arg =
  Arg.(
    value
    & opt (list (enum tier_enum)) []
    & info [ "device-tiers" ]
        ~doc:
          "Comma-separated per-device tiers (local|remote|cxl), one per \
           device; empty = every device at the pool tier.")

let backend_spec kind devices stripe tiers =
  match kind with
  | `Flat -> Cxlshm_shmem.Mem.Flat
  | `Counting -> Cxlshm_shmem.Mem.Counting_fast
  | `Striped ->
      Cxlshm_shmem.Mem.Striped
        { devices; stripe_words = stripe; tiers = Array.of_list tiers }

let backend_term =
  Term.(const backend_spec $ backend_kind_arg $ devices_arg $ stripe_arg $ tiers_arg)

(* ---- stats ---- *)

let stats segments pages page_words clients backend =
  let cfg = geometry segments pages page_words clients backend in
  let lay = Layout.make cfg in
  Printf.printf "arena geometry\n";
  Printf.printf "  total words        %d (%d MiB simulated)\n"
    lay.Layout.total_words
    (lay.Layout.total_words * 8 / 1024 / 1024);
  Printf.printf "  segments           %d x %d words\n" cfg.Config.num_segments
    lay.Layout.segment_words;
  Printf.printf "  segment header     %d words\n" lay.Layout.seg_hdr_words;
  Printf.printf "  size classes       %d (%d..%d words/block)\n"
    (Config.num_classes cfg)
    (Config.class_block_words cfg 0)
    (Config.class_block_words cfg (Config.num_classes cfg - 1));
  Printf.printf "  client state       %d words each\n" lay.Layout.client_state_words;
  Printf.printf "  era matrix         %dx%d\n" cfg.Config.max_clients
    cfg.Config.max_clients;
  Printf.printf "  queue directory    %d slots\n" cfg.Config.queue_slots;
  let arena = Shm.create ~cfg () in
  let mem = Shm.mem arena in
  let module Mem = Cxlshm_shmem.Mem in
  Printf.printf "  backend            %s\n" (Mem.backend_name mem);
  let ndev = Mem.num_devices mem in
  if ndev > 1 then begin
    (* how segments land on devices under the resolved stripe granularity *)
    let per_dev = Array.make ndev 0 in
    for s = 0 to cfg.Config.num_segments - 1 do
      let d = Mem.device_of mem (Layout.segment_base lay s) in
      per_dev.(d) <- per_dev.(d) + 1
    done;
    Array.iteri
      (fun d n ->
        Printf.printf "  device %-2d          %-6s %d segments\n" d
          (Cxlshm_shmem.Latency.tier_name (Mem.device_tier mem d))
          n)
      per_dev
  end;
  0

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the arena layout for a configuration.")
    Term.(const stats $ seg_arg $ pages_arg $ pw_arg $ clients_arg $ backend_term)

(* ---- demo ---- *)

let demo objects backend =
  let arena = Shm.create ~cfg:{ Config.default with Config.backend } () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  Printf.printf "joined clients %d and %d\n" a.Ctx.cid b.Ctx.cid;
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:16 in
  let qb = ref None in
  let received = ref 0 in
  for i = 1 to objects do
    let r = Shm.cxl_malloc a ~size_bytes:32 () in
    Cxl_ref.write_word r 0 (i * 11);
    (match Transfer.send q r with
    | Transfer.Sent -> ()
    | Transfer.Full | Transfer.Closed -> failwith "send failed");
    Cxl_ref.drop r;
    if !qb = None then qb := Transfer.open_from b ~sender:a.Ctx.cid;
    match !qb with
    | Some queue -> (
        match Transfer.receive queue with
        | Transfer.Received rb ->
            incr received;
            Cxl_ref.drop rb
        | Transfer.Empty | Transfer.Drained -> ())
    | None -> ()
  done;
  Printf.printf "sent %d objects, received %d\n" objects !received;
  Printf.printf "client A crashes with the queue open...\n";
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  let rep = Shm.recover arena ~failed_cid:a.Ctx.cid in
  Format.printf "recovery: %a@." Recovery.pp_report rep;
  (match !qb with Some queue -> Transfer.close queue | None -> ());
  Shm.leave b;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Format.printf "validation: %a@." Validate.pp v;
  if Validate.is_clean v then 0 else 1

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Allocate/share/crash/recover walk-through.")
    Term.(
      const demo
      $ Arg.(value & opt int 100 & info [ "objects" ] ~doc:"Objects to pass.")
      $ backend_term)

(* ---- drill ---- *)

let drill_one backend point =
  let arena = Shm.create ~cfg:{ Config.small with Config.backend } () in
  let a = Shm.join arena () in
  a.Ctx.fault <- Fault.at point ~nth:1;
  (try
     let p = Shm.cxl_malloc a ~size_bytes:16 ~emb_cnt:1 () in
     let c = Shm.cxl_malloc a ~size_bytes:16 () in
     Cxl_ref.set_emb p 0 c;
     Cxl_ref.clear_emb p 0;
     Cxl_ref.drop c;
     Cxl_ref.drop p
   with Fault.Crashed _ -> ());
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false));
  let v = Shm.validate arena in
  Printf.printf "%-32s %s\n" (Fault.point_name point)
    (if Validate.is_clean v then "clean" else "VIOLATION");
  Validate.is_clean v

let drill point_name backend =
  let points =
    match point_name with
    | None -> Fault.all_points
    | Some n -> (
        match
          List.find_opt (fun p -> Fault.point_name p = n) Fault.all_points
        with
        | Some p -> [ p ]
        | None ->
            Printf.eprintf "unknown crash point %s\n" n;
            exit 2)
  in
  if List.for_all (drill_one backend) points then 0 else 1

let drill_cmd =
  Cmd.v
    (Cmd.info "drill" ~doc:"Run crash-window drills (all points by default).")
    Term.(
      const drill
      $ Arg.(
          value
          & opt (some string) None
          & info [ "point" ] ~doc:"Single crash point name.")
      $ backend_term)

(* ---- rpc ---- *)

(* Endpoint-death drill for the zero-copy RPC channel: run a healthy call,
   then kill one endpoint and check the survivor's path — a client blocked
   in [finish] must get [Peer_failed] (never hang), a dead client's
   sub-heap must come back to the arena through the server's revocation —
   and the arena must audit clean afterwards. *)
let rpc_run kill_server kill_client backend =
  let module Rpc = Cxlshm_rpc.Cxl_rpc in
  let module Message = Cxlshm_rpc.Message in
  let arena = Shm.create ~cfg:{ Config.small with Config.backend } () in
  let c = Shm.join arena () in
  let s = Shm.join arena () in
  let server = Rpc.accept s ~client_cid:c.Ctx.cid ~capacity:4 in
  let client = Rpc.connect c ~server_cid:s.Ctx.cid ~capacity:4 in
  Printf.printf "channel sub-heap: segments %s\n"
    (String.concat ","
       (List.map string_of_int (Rpc.channel_segments client)));
  let handler ~func ~args ~output =
    let v = match args with a :: _ -> Message.read_word a 0 | [] -> 0 in
    Message.write_word output 0 (v + func)
  in
  let failed = ref [] in
  let check name ok = if not ok then failed := name :: !failed in
  (* healthy round trip *)
  let arg = Rpc.alloc_arg client ~size_bytes:8 () in
  Cxl_ref.write_word arg 0 41;
  let p = Rpc.call_async client ~func:1 ~args:[ arg ] ~output_bytes:8 in
  while not (Rpc.serve_one server ~handler) do () done;
  let out = Rpc.finish p in
  let ok = Cxl_ref.read_word out 0 = 42 in
  Cxl_ref.drop out;
  Printf.printf "healthy call: %s\n" (if ok then "ok" else "WRONG OUTPUT");
  check "healthy call" ok;
  let svc = Shm.service_ctx arena in
  let kill ctx =
    Client.declare_failed svc ~cid:ctx.Ctx.cid;
    let rep = Shm.recover arena ~failed_cid:ctx.Ctx.cid in
    Format.printf "recovery of client %d: %a@." ctx.Ctx.cid
      Recovery.pp_report rep
  in
  if kill_server then begin
    (* fire a call the server will never answer, then kill it: the client's
       bounded wait must surface Peer_failed, not spin *)
    let p = Rpc.call_async client ~func:1 ~args:[ arg ] ~output_bytes:8 in
    kill s;
    (match Rpc.finish p with
    | _ ->
        Printf.printf "kill-server: finish returned?!\n";
        check "kill-server finish" false
    | exception Rpc.Peer_failed _ ->
        Printf.printf "kill-server: finish raised Peer_failed (bounded)\n";
        Rpc.discard p);
    Cxl_ref.drop arg;
    Rpc.close_client client
  end
  else if kill_client then begin
    (* a call in flight when the client dies: recovery parks the sub-heap
       (orphaned, never recycled under the live server); the server's
       teardown reaps the message and returns the segments *)
    let _p = Rpc.call_async client ~func:1 ~args:[ arg ] ~output_bytes:8 in
    kill c;
    Rpc.close_server server;
    let all_free =
      List.for_all
        (fun seg -> Segment.owner svc seg = None)
        (Rpc.channel_segments client)
    in
    Printf.printf "kill-client: sub-heap %s\n"
      (if all_free then "revoked and returned" else "NOT RETURNED");
    check "kill-client revocation" all_free
  end
  else begin
    Cxl_ref.drop arg;
    Rpc.close_client client;
    Rpc.close_server server
  end;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Format.printf "validation: %a@." Validate.pp v;
  check "validation" (Validate.is_clean v);
  let f = Fsck.check (Shm.mem arena) (Shm.layout arena) in
  check "fsck" (Validate.is_clean f);
  match !failed with
  | [] -> 0
  | fs ->
      Printf.eprintf "FAILED: %s\n" (String.concat ", " (List.rev fs));
      1

let rpc_cmd =
  Cmd.v
    (Cmd.info "rpc"
       ~doc:
         "Zero-copy RPC endpoint-death drill: healthy call, then kill one \
          endpoint and verify the survivor unblocks (client) or revokes \
          the channel sub-heap (server), with a clean audit.")
    Term.(
      const rpc_run
      $ Arg.(
          value & flag
          & info [ "kill-server" ]
              ~doc:"Kill the server under an in-flight call.")
      $ Arg.(
          value & flag
          & info [ "kill-client" ]
              ~doc:"Kill the client under an in-flight call.")
      $ backend_term)

(* ---- validate ---- *)

let validate_run seed steps backend trace crash_point crash_nth out_image =
  let arena =
    Shm.create ~cfg:{ Config.small with Config.backend; trace } ()
  in
  let a = Shm.join arena () in
  (match crash_point with
  | None -> ()
  | Some n -> (
      match
        List.find_opt (fun p -> Fault.point_name p = n) Fault.all_points
      with
      | Some p -> a.Ctx.fault <- Fault.at p ~nth:crash_nth
      | None ->
          Printf.eprintf "unknown crash point %s\n" n;
          exit 2));
  let rng = Random.State.make [| seed |] in
  let held = ref [] in
  let crashed =
    try
      for _ = 1 to steps do
        match Random.State.int rng 3 with
        | 0 ->
            held :=
              Shm.cxl_malloc a ~size_bytes:(8 + Random.State.int rng 64) ()
              :: !held
        | 1 -> (
            match !held with
            | r :: rest ->
                held := rest;
                Cxl_ref.drop r
            | [] -> ())
        | _ -> (
            match !held with
            | r :: _ -> Cxl_ref.write_word r 0 (Random.State.int rng 1000)
            | [] -> ())
      done;
      List.iter Cxl_ref.drop !held;
      false
    with Fault.Crashed msg ->
      Printf.printf "client %d crashed at %s\n" a.Ctx.cid msg;
      true
  in
  (* Save before recovery so the image holds the crash-time ring. *)
  (match out_image with
  | None -> ()
  | Some path ->
      Shm.save arena path;
      Printf.printf "image saved to %s\n" path);
  if crashed then begin
    let svc = Shm.service_ctx arena in
    Client.declare_failed svc ~cid:a.Ctx.cid;
    ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
    ignore (Shm.scan_leaking arena)
  end;
  let v = Shm.validate arena in
  Format.printf "validation: %a@." Validate.pp v;
  if Validate.is_clean v then 0 else 1

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Random workload + whole-arena validation; optionally kill the \
          client at a crash point and save the pre-recovery image.")
    Term.(
      const validate_run
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")
      $ Arg.(value & opt int 1000 & info [ "steps" ] ~doc:"Workload steps.")
      $ backend_term
      $ Arg.(
          value & flag
          & info [ "trace" ] ~doc:"Enable the observability layer.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "crash-point" ]
              ~doc:"Kill the client at this crash point (see $(b,drill)).")
      $ Arg.(
          value & opt int 1
          & info [ "crash-nth" ]
              ~doc:"Crash at the n-th occurrence of the point (1-based).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out-image" ]
              ~doc:
                "Save the arena here before recovery runs (feed it to \
                 $(b,trace)/$(b,top)/$(b,fsck))."))

(* ---- trace / top ---- *)

let trace_view image cid last =
  let arena = Shm.load_raw image in
  let mem = Shm.mem arena and lay = Shm.layout arena in
  if cid < 0 || cid >= lay.Layout.cfg.Config.max_clients then begin
    Printf.eprintf "cid %d out of range\n" cid;
    exit 2
  end;
  let events = Trace.dump mem lay ~cid ?last () in
  if events = [] then begin
    Printf.printf "client %d: no trace events (tracing off?)\n" cid;
    0
  end
  else begin
    Printf.printf "client %d: %d events\n" cid (List.length events);
    List.iter (fun e -> Format.printf "%a@." Trace.pp_event e) events;
    0
  end

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a client's shared-memory event ring from a saved image \
          (works on crashed, unrecovered images).")
    Term.(
      const trace_view
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"IMAGE" ~doc:"Pool image from $(b,save).")
      $ Arg.(value & opt int 0 & info [ "cid" ] ~doc:"Client id.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "last" ] ~doc:"Only the most recent K events."))

let top image =
  let module Histogram = Cxlshm_shmem.Histogram in
  let arena = Shm.load_raw image in
  let mem = Shm.mem arena and lay = Shm.layout arena in
  let cfg = lay.Layout.cfg in
  let hists = Histogram.create_set () in
  let total = ref 0 in
  for cid = 0 to cfg.Config.max_clients - 1 do
    let events = Trace.dump mem lay ~cid () in
    if events <> [] then begin
      total := !total + List.length events;
      Printf.printf "client %-3d %d events\n" cid (List.length events);
      List.iter
        (fun e ->
          match e.Trace.phase with
          | Trace.End ->
              Histogram.record
                hists.(Histogram.op_index e.Trace.op)
                (float_of_int e.Trace.dur_ns)
          | Trace.Begin | Trace.Err -> ())
        events
    end
  done;
  if !total = 0 then begin
    Printf.printf "no trace events in %s (tracing off?)\n" image;
    0
  end
  else begin
    Printf.printf "%-14s %8s %10s %10s %10s %10s %10s\n" "op" "count"
      "mean ns" "p50 ns" "p95 ns" "p99 ns" "max ns";
    List.iter
      (fun op ->
        let h = hists.(Histogram.op_index op) in
        if Histogram.count h > 0 then
          Printf.printf "%-14s %8d %10.0f %10.0f %10.0f %10.0f %10.0f\n"
            (Histogram.op_name op) (Histogram.count h) (Histogram.mean_ns h)
            (Histogram.p50 h) (Histogram.p95 h) (Histogram.p99 h)
            (Histogram.max_ns h))
      Histogram.all_ops;
    0
  end

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Aggregate every client's event ring in a saved image into per-op \
          latency summaries (completed spans only).")
    Term.(
      const top
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"IMAGE" ~doc:"Pool image from $(b,save)."))

(* ---- dump ---- *)

let dump seed steps backend =
  let arena = Shm.create ~cfg:{ Config.small with Config.backend } () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let rng = Random.State.make [| seed |] in
  let held = ref [] in
  for _ = 1 to steps do
    match Random.State.int rng 3 with
    | 0 -> held := Shm.cxl_malloc a ~size_bytes:(8 + Random.State.int rng 64) () :: !held
    | 1 -> (
        match !held with
        | r :: rest ->
            held := rest;
            Cxl_ref.drop r
        | [] -> ())
    | _ -> Client.heartbeat b
  done;
  Format.printf "%a@." Debug.pp_arena (Shm.mem arena, Shm.layout arena);
  print_endline (Debug.summary (Shm.mem arena) (Shm.layout arena));
  0

let dump_cmd =
  Cmd.v
    (Cmd.info "dump" ~doc:"Run a small workload and dump the arena state.")
    Term.(
      const dump
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")
      $ Arg.(value & opt int 200 & info [ "steps" ] ~doc:"Workload steps.")
      $ backend_term)

(* ---- fsck ---- *)

let fsck image repair out =
  let arena = Shm.load_raw image in
  let v = Fsck.check (Shm.mem arena) (Shm.layout arena) in
  if Validate.is_clean v then begin
    Printf.printf "%s: clean\n" image;
    0
  end
  else begin
    Format.printf "%s: DIRTY@.%a@." image Validate.pp v;
    if not repair then 1
    else begin
      let report = Shm.fsck arena in
      Format.printf "repair: %a@." Fsck.pp report;
      let dest = Option.value out ~default:image in
      Shm.save arena dest;
      Printf.printf "repaired image written to %s\n" dest;
      if Fsck.clean report then 0 else 1
    end
  end

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify a saved pool image; with $(b,--repair), restore its \
          structural invariants and write the result back.")
    Term.(
      const fsck
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"IMAGE" ~doc:"Pool image from $(b,save).")
      $ Arg.(value & flag & info [ "repair" ] ~doc:"Repair, not just verify.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out" ]
              ~doc:"Write the repaired image here instead of in place."))

(* ---- soak ---- *)

let soak seed steps points schedules backends out =
  let points =
    match points with
    | "all" -> None :: List.map Option.some Fault.all_points
    | "none" -> [ None ]
    | names ->
        String.split_on_char ',' names
        |> List.map (fun n ->
               if n = "none" then None
               else
                 match
                   List.find_opt
                     (fun p -> Fault.point_name p = n)
                     Fault.all_points
                 with
                 | Some p -> Some p
                 | None ->
                     Printf.eprintf "unknown crash point %s\n" n;
                     exit 2)
  in
  let schedules =
    match schedules with
    | "all" -> Soak.default_schedules
    | names ->
        String.split_on_char ',' names
        |> List.map (fun n ->
               match
                 List.find_opt
                   (fun s -> s.Soak.sname = n)
                   Soak.default_schedules
               with
               | Some s -> s
               | None ->
                   Printf.eprintf "unknown schedule %s\n" n;
                   exit 2)
  in
  let backends =
    match backends with
    | "all" -> Soak.default_backends
    | names ->
        String.split_on_char ',' names
        |> List.map (fun n ->
               match
                 List.find_opt
                   (fun (bn, _) -> bn = n)
                   Soak.default_backends
               with
               | Some b -> b
               | None ->
                   Printf.eprintf "unknown backend %s\n" n;
                   exit 2)
  in
  let indexed l = List.mapi (fun i x -> (i, x)) l in
  let runs =
    List.concat_map
      (fun (bi, backend) ->
        List.concat_map
          (fun (si, schedule) ->
            List.map
              (fun (pi, point) ->
                let r =
                  Soak.run_one ~backend ~schedule ~point
                    ~seed:(Soak.mix_seed ~base:seed ~bi ~si ~pi)
                    ~steps
                in
                Format.eprintf "%a@." Soak.pp_run r;
                r)
              (indexed points))
          (indexed schedules))
      (indexed backends)
  in
  let json = Soak.matrix_to_json ~seed runs in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc
  | None -> print_endline json);
  let fails = Soak.failures runs in
  Printf.eprintf "soak: %d runs, %d failures\n" (List.length runs)
    (List.length fails);
  if fails = [] then 0 else 1

let soak_cmd =
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Sweep crash points x device-fault schedules x backends; recover \
          and fsck after each run and emit a JSON report.")
    Term.(
      const soak
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed.")
      $ Arg.(
          value & opt int 400
          & info [ "steps" ] ~doc:"Workload steps per run.")
      $ Arg.(
          value & opt string "all"
          & info [ "points" ]
              ~doc:
                "Crash points: $(b,all), $(b,none), or a comma-separated \
                 list of point names.")
      $ Arg.(
          value & opt string "all"
          & info [ "schedules" ]
              ~doc:
                "Fault schedules: $(b,all) or a comma-separated subset of \
                 quiet, transient, stuck, offline.")
      $ Arg.(
          value & opt string "all"
          & info [ "backends" ]
              ~doc:
                "Backends: $(b,all) or a comma-separated subset of flat, \
                 striped4.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out" ] ~doc:"Write the JSON report to this file."))

(* ---- monitor: replicated failure-monitor demo ---- *)

let monitor_demo replicas seconds interval kill_leader kill_writer seed =
  if replicas < 1 then begin
    Printf.eprintf "need at least one replica\n";
    2
  end
  else if kill_writer then begin
    (* Deterministic KV failover: writer killed mid-quiesce, registry
       journaled by recovery, parked records adopted by a successor. *)
    let k = Cxlshm_kv.Kv_soak.writer_kill_adopt ~seed () in
    Format.printf "writer-kill adoption: %a@." Cxlshm_kv.Kv_soak.pp_report k;
    if
      k.Cxlshm_kv.Kv_soak.ka_writer_crashed
      && k.ka_journaled > 0 && k.ka_adopted = k.ka_journaled
      && k.ka_pinned_freed = 0 && k.ka_clean
    then begin
      Printf.printf
        "monitor journaled the dead writer's parked records and the \
         successor adopted them era-gated\n";
      0
    end
    else 1
  end
  else if kill_leader then begin
    (* Deterministic control-plane failover: hung client, leader killed
       mid-recovery, follower takeover, full device drain. *)
    let f = Soak.monitor_kill ~seed () in
    Format.printf "monitor-kill failover: %a@." Soak.pp_failover f;
    if
      f.Soak.leader_crashed && f.Soak.follower_finished
      && f.Soak.live_segments_left = 0 && f.Soak.fo_clean
    then begin
      Printf.printf
        "follower deposed the dead leader, finished its recovery and \
         drained the degraded device\n";
      0
    end
    else 1
  end
  else begin
    (* Live replicas in their own domains racing to reap a silent client. *)
    let cfg =
      {
        Config.small with
        Config.backend =
          Cxlshm_shmem.Mem.Striped { devices = 4; stripe_words = 0; tiers = [||] };
      }
    in
    let arena = Shm.create ~cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    let _graph = List.init 5 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
    Printf.printf "clients %d (going silent) and %d (heartbeating), %d replica(s)\n"
      a.Ctx.cid b.Ctx.cid replicas;
    let mons = List.init replicas (fun i -> Shm.monitor arena ~id:i ()) in
    let handles = List.map (fun m -> Monitor.run_in_domain m ~interval) mons in
    let svc = Shm.service_ctx arena in
    let deadline = Unix.gettimeofday () +. seconds in
    let rec wait () =
      if Client.status svc ~cid:a.Ctx.cid = Client.Slot_free then true
      else if Unix.gettimeofday () > deadline then false
      else begin
        Client.heartbeat b;
        Unix.sleepf (interval /. 2.);
        wait ()
      end
    in
    let recovered = wait () in
    List.iter2 (fun h m -> ignore (Monitor.stop_and_join h m)) handles mons;
    List.iter
      (fun m ->
        Printf.printf
          "replica %d: leader=%b death-dumps=%d loop-errors=%d\n"
          (Monitor.id m) (Monitor.is_leader m)
          (List.length (Monitor.death_dumps m))
          (Monitor.error_count m))
      mons;
    Shm.leave b;
    ignore (Shm.scan_leaking arena);
    let v = Shm.validate arena in
    Printf.printf "silent client %s; validation %s\n"
      (if recovered then "recovered" else "NOT recovered")
      (if Validate.is_clean v then "clean" else "DIRTY");
    if recovered && Validate.is_clean v then 0 else 1
  end

let monitor_cmd =
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Run replicated failure monitors over a demo arena. By default \
          spawns $(b,--replicas) live replica loops that race to reap a \
          silent client. With $(b,--kill-leader), runs the deterministic \
          failover story instead: a hung client under load, the leader \
          replica killed mid-recovery, the follower deposing it, finishing \
          the recovery and draining a fully-degraded device. With \
          $(b,--kill-writer), runs the KV adoption drill: a writer killed \
          mid-quiesce, its parked-record registry journaled by recovery \
          and adopted era-gated by a successor.")
    Term.(
      const monitor_demo
      $ Arg.(
          value & opt int 2
          & info [ "replicas" ] ~doc:"Monitor replicas to run.")
      $ Arg.(
          value & opt float 5.0
          & info [ "seconds" ] ~doc:"Detection deadline (live mode).")
      $ Arg.(
          value & opt float 0.01
          & info [ "interval" ] ~doc:"Replica pass interval in seconds.")
      $ Arg.(
          value & flag
          & info [ "kill-leader" ]
              ~doc:"Deterministic leader-kill failover scenario.")
      $ Arg.(
          value & flag
          & info [ "kill-writer" ]
              ~doc:
                "Deterministic KV writer-kill adoption scenario (crash \
                 mid-quiesce, registry journaled, successor adopts).")
      $ Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Failover workload seed."))

(* ---- evacuate: drain live data off a degraded device ---- *)

let evacuate_demo objects devices degrade seed =
  if degrade < 0 || degrade >= devices then begin
    Printf.eprintf "--degrade must name one of the %d devices\n" devices;
    2
  end
  else begin
    let cfg =
      {
        Config.small with
        Config.backend =
          Cxlshm_shmem.Mem.Striped { devices; stripe_words = 0; tiers = [||] };
      }
    in
    let arena = Shm.create ~cfg () in
    let svc = Shm.service_ctx arena in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    let rng = Random.State.make [| 0x65766163; seed |] in
    let held = ref [] in
    for i = 1 to objects do
      let c = if i mod 2 = 0 then a else b in
      let r =
        Shm.cxl_malloc c
          ~size_bytes:(8 + Random.State.int rng 48)
          ~emb_cnt:(Random.State.int rng 2)
          ()
      in
      Cxl_ref.write_word r (Cxl_ref.emb_cnt r) i;
      (match !held with
      | (p, _) :: _
        when Cxl_ref.ctx p == c && Cxl_ref.emb_cnt p > 0
             && Cxl_ref.get_emb p 0 = 0 ->
          Cxl_ref.set_emb p 0 r
      | _ -> ());
      held := (r, i) :: !held
    done;
    let before = List.length (Evacuate.live_segments_on svc ~dev:degrade) in
    Printf.printf "%d objects over %d devices; device %d holds %d live segment(s)\n"
      objects devices degrade before;
    Ctx.mark_degraded svc degrade;
    (* owners move their own RootRef blocks, then the monitor-side sweep
       takes the data *)
    let patch c rep =
      held :=
        List.map
          (fun (r, i) ->
            if Cxl_ref.ctx r == c then
              match
                List.assoc_opt (Cxl_ref.rootref r) rep.Evacuate.remapped
              with
              | Some rr2 -> (Cxl_ref.of_rootref c rr2, i)
              | None -> (r, i)
            else (r, i))
          !held
    in
    List.iter
      (fun c ->
        let rep = Evacuate.relocate_own c in
        Format.printf "relocate cid %d: %a@." c.Ctx.cid Evacuate.pp_report rep;
        patch c rep)
      [ a; b ];
    let rep = Shm.evacuate arena in
    Format.printf "sweep: %a@." Evacuate.pp_report rep;
    let left = Evacuate.live_segments_on svc ~dev:degrade in
    Printf.printf "device %d live segments after drain: %d\n" degrade
      (List.length left);
    let intact =
      List.for_all (fun (r, i) -> Cxl_ref.read_word r (Cxl_ref.emb_cnt r) = i) !held
    in
    Printf.printf "payloads %s\n" (if intact then "intact" else "CORRUPTED");
    List.iter (fun (r, _) -> Cxl_ref.drop r) !held;
    Shm.leave a;
    Shm.leave b;
    Ctx.clear_degraded svc;
    ignore (Shm.scan_leaking arena);
    let v = Shm.validate arena in
    Printf.printf "validation %s\n" (if Validate.is_clean v then "clean" else "DIRTY");
    if left = [] && intact && Validate.is_clean v then 0 else 1
  end

let evacuate_cmd =
  Cmd.v
    (Cmd.info "evacuate"
       ~doc:
         "Populate a striped demo arena, mark one device degraded, and \
          drain every live block off it: owners relocate their RootRef \
          blocks, the monitor-side sweep moves the data, and the run \
          passes when zero live segments remain on the device and every \
          payload survived the move.")
    Term.(
      const evacuate_demo
      $ Arg.(
          value & opt int 60
          & info [ "objects" ] ~doc:"Objects to allocate before draining.")
      $ devices_arg
      $ Arg.(
          value & opt int 0 & info [ "degrade" ] ~doc:"Device to degrade.")
      $ Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload seed."))

(* ---- serve: production-style KV serving harness (SLO gate) ---- *)

module Serve = Cxlshm_serve.Serve

(* accepts 1_000_000 the way OCaml literals do *)
let uint_conv =
  let parse s =
    let stripped = String.concat "" (String.split_on_char '_' s) in
    match int_of_string_opt stripped with
    | Some v when v >= 0 -> Ok v
    | _ -> Error (`Msg (Printf.sprintf "invalid non-negative integer %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let serve keys ops rate writers readers value_words theta dist churn_s seed
    quiesce_every hb_every monitor_every read_f update_f insert_f rmw_f check
    out =
  let churn =
    match churn_s with
    | None -> Serve.default_churn ~ops
    | Some s -> (
        match Serve.churn_of_string s with
        | Ok c -> c
        | Error e ->
            prerr_endline e;
            exit 2)
  in
  let mix =
    { Cxlshm_kv.Ycsb.read = read_f; update = update_f; insert = insert_f;
      rmw = rmw_f }
  in
  let cfg =
    {
      Serve.keys;
      ops;
      rate_mops = rate;
      writers;
      readers;
      value_words;
      theta;
      mix;
      dist;
      quiesce_every;
      hb_every;
      monitor_every;
      churn;
      seed;
      final_check = check;
    }
  in
  match Serve.run cfg with
  | r ->
      Format.printf "%a@." Serve.pp_report r;
      Option.iter
        (fun f ->
          let oc = open_out f in
          output_string oc (Serve.report_to_json r);
          close_out oc;
          Printf.printf "report written to %s\n" f)
        out;
      if r.Serve.all_recovered && (not check || r.Serve.check_errors = 0) then 0
      else begin
        if not r.Serve.all_recovered then
          prerr_endline "serve: some crashed clients were never recovered";
        if check && r.Serve.check_errors > 0 then
          Printf.eprintf "serve: validator reported %d errors\n"
            r.Serve.check_errors;
        1
      end
  | exception Invalid_argument m ->
      prerr_endline m;
      2

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Production-style KV serving run with an SLO report: open-loop \
          arrivals at a fixed offered rate over a zipf key population, \
          sharded writers + readers, and a churn schedule (crashes, planned \
          departures, joins) recovered by the lease monitor while the SLO \
          clock keeps running. Prints p50/p95/p99 per op class, split into \
          steady-state and during-churn buckets; $(b,--out) writes the JSON \
          report CI gates on. Exit status 1 if any crashed client was never \
          recovered (or $(b,--check) found errors).")
    Term.(
      const serve
      $ Arg.(
          value & opt uint_conv 100_000
          & info [ "keys" ] ~doc:"Initial key population (underscores ok).")
      $ Arg.(
          value & opt uint_conv 50_000
          & info [ "ops" ] ~doc:"Request arrivals in the measured run.")
      $ Arg.(
          value & opt float 2.0
          & info [ "rate" ] ~doc:"Offered load in million ops per modeled \
                                  second.")
      $ Arg.(value & opt int 4 & info [ "writers" ] ~doc:"Writer clients \
                                                          (= partitions).")
      $ Arg.(value & opt int 2 & info [ "readers" ] ~doc:"Reader clients.")
      $ Arg.(
          value & opt int 2
          & info [ "value-words" ] ~doc:"Words per value.")
      $ Arg.(
          value & opt float 0.99
          & info [ "theta" ] ~doc:"Zipf skew in [0, 1).")
      $ Arg.(
          value
          & opt
              (enum
                 [ ("zipfian", Cxlshm_kv.Ycsb.Zipfian);
                   ("latest", Cxlshm_kv.Ycsb.Latest);
                   ("uniform", Cxlshm_kv.Ycsb.Uniform) ])
              Cxlshm_kv.Ycsb.Zipfian
          & info [ "dist" ] ~doc:"Key distribution: zipfian, latest, uniform.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "churn" ]
              ~doc:
                "Churn schedule, e.g. \
                 $(b,crash-writer@12500,join-reader@35000); actions: \
                 crash-writer, crash-reader, leave-writer, join-reader. \
                 Default: one of each, spread over the run. Empty string \
                 disables churn.")
      $ Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.")
      $ Arg.(
          value & opt int 256
          & info [ "quiesce-every" ]
              ~doc:"Writer ops between reclamation passes.")
      $ Arg.(
          value & opt int 100
          & info [ "hb-every" ] ~doc:"Arrivals between client heartbeats.")
      $ Arg.(
          value & opt int 250
          & info [ "monitor-every" ]
              ~doc:"Arrivals between failure-monitor passes.")
      $ Arg.(
          value & opt float 0.90
          & info [ "read" ] ~doc:"Read fraction of the op mix.")
      $ Arg.(
          value & opt float 0.05
          & info [ "update" ] ~doc:"Update (COW) fraction of the op mix.")
      $ Arg.(
          value & opt float 0.03
          & info [ "insert" ] ~doc:"Insert fraction of the op mix.")
      $ Arg.(
          value & opt float 0.02
          & info [ "rmw" ] ~doc:"Read-modify-write fraction of the op mix.")
      $ Arg.(
          value & flag
          & info [ "check" ]
              ~doc:"Run the arena validator before teardown; errors fail \
                    the run.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out" ] ~doc:"Write the JSON report to this file."))

(* ---- explore: model-checking schedule exploration ---- *)

module Check_explore = Cxlshm_check.Explore
module Check_scenarios = Cxlshm_check.Scenarios
module Check_schedule = Cxlshm_check.Schedule

let explore_model_of_name ~capacity ~values ~rounds name =
  match name with
  | "spsc" -> Check_scenarios.spsc ?capacity ?values ()
  | "transfer" -> Check_scenarios.transfer ?capacity ?values ()
  | "transfer-batch" ->
      Check_scenarios.transfer ?capacity ?values ~batched:true ()
  | "refc" -> Check_scenarios.refc ?rounds ()
  | "huge" -> Check_scenarios.huge ?rounds ()
  | "epoch-retire" -> Check_scenarios.epoch_retire ?rounds ()
  | "sharded-alloc" -> Check_scenarios.sharded_alloc ?values ()
  | "lease" -> Check_scenarios.lease ?passes:rounds ()
  | "dual-monitor" -> Check_scenarios.dual_monitor ?passes:rounds ()
  | "evacuate" -> Check_scenarios.evacuate ?rounds ()
  | "kv-serve" -> Check_scenarios.kv_serve ()
  | "kv-serve-recover" -> Check_scenarios.kv_serve_recover ()
  | "rpc-isolate" -> Check_scenarios.rpc_isolate ()
  | n ->
      Printf.eprintf
        "unknown model %s (have: spsc, transfer, transfer-batch, refc, huge, \
         epoch-retire, sharded-alloc, lease, dual-monitor, evacuate, \
         kv-serve, kv-serve-recover, rpc-isolate)\n"
        n;
      exit 2

let set_mutation = function
  | "none" -> ()
  | "spsc-pop" -> Cxlshm_spsc.Spsc_queue.mutation_unfenced_pop := true
  | "transfer-head" -> Cxlshm.Transfer.mutation_unfenced_advance := true
  | "kv-quiesce" -> Cxlshm_kv.Cxl_kv.mutation_unconditional_quiesce := true
  | "kv-crash-reap" -> Cxlshm.Recovery.mutation_crash_reap := true
  | "rpc-skip-validate" -> Cxlshm_rpc.Cxl_rpc.mutation_skip_validate := true
  | "rpc-unfenced-status" ->
      Cxlshm_rpc.Cxl_rpc.mutation_unfenced_status := true
  | m ->
      Printf.eprintf
        "unknown mutation %s (have: none, spsc-pop, transfer-head, \
         kv-quiesce, kv-crash-reap, rpc-skip-validate, rpc-unfenced-status)\n"
        m;
      exit 2

let explore models mode seed schedules preemptions no_crash max_steps capacity
    values rounds mutate replay log =
  let crash = not no_crash in
  set_mutation mutate;
  let log_oc =
    Option.map
      (fun f -> open_out_gen [ Open_append; Open_creat ] 0o644 f)
      log
  in
  let emit line =
    print_endline line;
    Option.iter
      (fun oc ->
        output_string oc line;
        output_char oc '\n')
      log_oc
  in
  let code =
    match replay with
    | Some sched_str ->
        let s = Check_schedule.of_string sched_str in
        let m =
          explore_model_of_name ~capacity ~values ~rounds s.Check_schedule.model
        in
        let r = Check_explore.replay m ~max_steps s in
        let replayed =
          Check_schedule.to_string
            { Check_schedule.model = m.Check_explore.name;
              decisions = r.Check_explore.decisions }
        in
        (match r.Check_explore.outcome with
        | Check_explore.Pass ->
            emit (Printf.sprintf "replay PASS (%d steps): %s"
                    r.Check_explore.steps replayed);
            0
        | Check_explore.Diverged ->
            emit (Printf.sprintf "replay DIVERGED (fuel %d): %s" max_steps
                    replayed);
            0
        | Check_explore.Fail reason ->
            emit (Printf.sprintf "replay FAIL: %s" reason);
            emit (Printf.sprintf "schedule: %s" replayed);
            1)
    | None ->
        let names = String.split_on_char ',' models in
        let failures = ref [] in
        List.iter
          (fun name ->
            let m = explore_model_of_name ~capacity ~values ~rounds name in
            let report =
              match mode with
              | "random" ->
                  Check_explore.random ~seed ~schedules ~crash ~max_steps m
              | "pct" -> Check_explore.pct ~seed ~schedules ~crash ~max_steps m
              | "exhaustive" ->
                  Check_explore.exhaustive ~preemptions ~crash ~max_steps m
              | other ->
                  Printf.eprintf
                    "unknown mode %s (have: random, pct, exhaustive)\n" other;
                  exit 2
            in
            emit (Format.asprintf "%a" Check_explore.pp_report report);
            Option.iter
              (fun f ->
                failures :=
                  Check_schedule.to_string f.Check_explore.schedule
                  :: !failures)
              report.Check_explore.failure)
          names;
        (match !failures with
        | [] -> 0
        | fs ->
            List.iter
              (fun f ->
                emit
                  (Printf.sprintf
                     "reproduce with: cxlshm explore --replay '%s'" f))
              (List.rev fs);
            1)
  in
  Option.iter close_out log_oc;
  code

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Model-check the concurrent protocols: run the built-in models \
          (spsc, transfer, transfer-batch, refc, huge, epoch-retire, \
          sharded-alloc, lease, dual-monitor, evacuate, kv-serve, \
          kv-serve-recover, rpc-isolate) under a controlled cooperative \
          scheduler \
          with seeded-random, PCT, or bounded-preemption exhaustive \
          exploration and optional crash injection at any yield point. \
          Every failure prints a schedule string that $(b,--replay) \
          reproduces deterministically.")
    Term.(
      const explore
      $ Arg.(
          value
          & opt string
              "spsc,transfer,transfer-batch,refc,huge,epoch-retire,sharded-alloc,lease,dual-monitor,evacuate,kv-serve,kv-serve-recover,rpc-isolate"
          & info [ "model" ] ~doc:"Comma-separated models to explore.")
      $ Arg.(
          value & opt string "random"
          & info [ "mode" ]
              ~doc:"Exploration mode: random, pct, or exhaustive.")
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed.")
      $ Arg.(
          value & opt int 500
          & info [ "schedules" ]
              ~doc:"Schedules to sample (random/pct modes).")
      $ Arg.(
          value & opt int 3
          & info [ "preemptions" ]
              ~doc:"Preemption bound (exhaustive mode).")
      $ Arg.(
          value & flag
          & info [ "no-crash" ] ~doc:"Disable crash injection at yields.")
      $ Arg.(
          value & opt int 20_000
          & info [ "max-steps" ]
              ~doc:"Yield-point fuel per run; beyond it a run is Diverged.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "capacity" ] ~doc:"Queue capacity override (spsc/transfer).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "values" ] ~doc:"Messages per run override (spsc/transfer).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "rounds" ] ~doc:"Alloc/free rounds override (refc).")
      $ Arg.(
          value & opt string "none"
          & info [ "mutate" ]
              ~doc:
                "Re-introduce a historical ordering bug before exploring: \
                 $(b,spsc-pop), $(b,transfer-head), $(b,kv-quiesce), \
                 $(b,kv-crash-reap), $(b,rpc-skip-validate) or \
                 $(b,rpc-unfenced-status) (self-check).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "replay" ]
              ~doc:"Replay one schedule string exactly and report its outcome.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "log" ] ~doc:"Append the report lines to this file."))

let () =
  let info = Cmd.info "cxlshm" ~doc:"CXL-SHM simulated-arena driver." in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            demo_cmd;
            drill_cmd;
            stats_cmd;
            validate_cmd;
            dump_cmd;
            fsck_cmd;
            soak_cmd;
            monitor_cmd;
            evacuate_cmd;
            trace_cmd;
            top_cmd;
            serve_cmd;
            rpc_cmd;
            explore_cmd;
          ]))
