(** Client registration and liveness (§3.2).

    Clients claim a ClientLocalState slot with a CAS on its flags word, so
    joining and leaving never block other clients (POSIX shm/mmap in the
    real system). A heartbeat counter lets the monitor detect silent
    failures; tests can also declare failures explicitly. *)

type status =
  | Slot_free
  | Alive
  | Failed      (** declared dead; recovery pending or in progress *)
  | Suspected
      (** lease expired; any peer may have made this transition (see
          {!Lease.try_suspect}). Still alive for every safety purpose —
          the owner's next {!heartbeat} cancels it, a further TTL of
          silence condemns it to [Failed]. *)

val status_name : status -> string

val register : mem:Cxlshm_shmem.Mem.t -> lay:Layout.t -> ?cid:int -> unit -> Ctx.t
(** Claim a client slot ([?cid] forces a specific one) and initialise the
    era row, redo log and page tables. Raises [Failure] when no slot is
    free or the requested slot is taken. *)

val unregister : Ctx.t -> unit
(** Clean exit: releases empty owned segments, orphans non-empty ones
    (their live blocks may still be referenced remotely) and frees the
    slot. The application must have dropped its CXLRefs first; remaining
    RootRefs are treated exactly like a crash (recovery will reap them). *)

val status : Ctx.t -> cid:int -> status

val is_alive : Ctx.t -> cid:int -> bool
(** True for [Alive] {e and} [Suspected] — suspicion is a cancellable
    liveness hint, so hazards, reachability and leak scans must keep
    treating the client as live until it is condemned. *)

val heartbeat : Ctx.t -> unit
(** Bump the progress counter, renew the caller's lease
    ({!Lease.renew}) and cancel a pending [Suspected]
    ({!Lease.self_heal}). A client already condemned to [Failed] is
    fenced; its heartbeat no longer rescues it. *)

val heartbeat_value : Ctx.t -> cid:int -> int

val declare_failed : Ctx.t -> cid:int -> unit
(** Transition a (presumed dead) client to [Failed]; the recovery service
    picks it up from there. Idempotent. *)

val mark_recovered : Ctx.t -> cid:int -> unit
(** Recovery epilogue: free the slot for reuse. *)
