(** Production-style KV serving harness with an SLO gate.

    Drives {!Cxlshm_kv.Cxl_kv} the way a serving fleet would: an open-loop
    arrival schedule ({!Load_gen}) at a configured offered rate over a
    zipf-distributed key population, N sharded writer clients (one
    partition set each, COW updates) and M reader clients — while a churn
    schedule crashes, retires and adds clients mid-run. Crashed clients
    are detected and recovered by the lease/monitor machinery
    ({!Cxlshm.Monitor}) with the SLO clock still running, so detection
    latency and backlog drain show up where they belong: in the
    during-churn tail percentiles.

    Everything is deterministic given [cfg.seed]: arrivals, the key/op
    stream, churn firing, detection and recovery. Two runs of the same
    [cfg] produce identical reports. *)

(** {1 Churn schedule} *)

type churn_action =
  | Crash_writer  (** kill the highest-indexed live writer mid-COW-update;
                      its partitions' writes queue until recovery *)
  | Crash_reader  (** kill a reader mid-traversal, leaving its era
                      announcement set — reclamation stays pinned until the
                      monitor condemns the slot *)
  | Leave_writer  (** planned departure: quiesce, hand parked records to a
                      successor ({!Cxlshm_kv.Cxl_kv.handoff_deferred}),
                      CAS partition ownership over, leave cleanly *)
  | Join_reader  (** a fresh reader joins the serving rotation *)

type churn_event = { at_op : int; action : churn_action }

val action_name : churn_action -> string
val action_of_name : string -> churn_action option

val churn_of_string : string -> (churn_event list, string) result
(** Parse ["crash-writer@2500,join-reader@7000"]. *)

val churn_to_string : churn_event list -> string

val default_churn : ops:int -> churn_event list
(** One event of each kind, spread over the run. *)

(** {1 Configuration} *)

type cfg = {
  keys : int;  (** initial key population (inserts grow it) *)
  ops : int;  (** arrivals in the measured run *)
  rate_mops : float;  (** offered load, million ops / modeled second *)
  writers : int;  (** writer clients = key partitions *)
  readers : int;  (** initial reader clients *)
  value_words : int;
  theta : float;  (** zipf skew, in [0, 1) *)
  mix : Cxlshm_kv.Ycsb.mix;
  dist : Cxlshm_kv.Ycsb.dist;
  quiesce_every : int;  (** writer ops between reclamation passes *)
  hb_every : int;  (** arrivals between client heartbeats *)
  monitor_every : int;  (** arrivals between monitor passes *)
  churn : churn_event list;
  seed : int;
  final_check : bool;  (** run {!Cxlshm.Shm.validate} before teardown *)
}

val default_mix : Cxlshm_kv.Ycsb.mix
(** 90% read / 5% update / 3% insert / 2% rmw. *)

val default_cfg : keys:int -> ops:int -> cfg

(** {1 Report} *)

type class_stats = {
  cls : string;  (** "read" | "update" | "insert" | "rmw" *)
  during_churn : bool;
      (** ops that arrived while a crashed client was still unrecovered
          (or just after a join/leave) land in separate buckets *)
  count : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

type report = {
  r_keys : int;
  r_ops : int;
  r_seed : int;
  r_rate_mops : float;
  r_churn : string;
  completed : int;
  failed : int;  (** ops lost in a crash (the request the victim died on) *)
  modeled_seconds : float;
  achieved_mops : float;
  crashes : int;
  recoveries : int;
  leaves : int;
  joins : int;
  all_recovered : bool;
      (** every crashed client was condemned and recovered before the
          report was cut — an SLO-gate requirement *)
  recovery_passes : int;  (** extra monitor passes spent draining *)
  handoff_records : int;  (** parked records sent at planned departures *)
  adopted_records : int;
  deferred_left : int;  (** parked records surviving the final quiesce *)
  check_errors : int;  (** validator errors when [final_check] *)
  classes : class_stats list;
}

val run : cfg -> report
(** Build an arena sized for [cfg.keys], preload the population, serve the
    arrival schedule with churn, drain recovery, and report. *)

val report_to_json : report -> string
val pp_report : Format.formatter -> report -> unit
