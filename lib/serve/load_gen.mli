(** Open-loop arrival schedule.

    A closed-loop bench issues the next request when the previous one
    finishes, which hides queueing delay — exactly the component an SLO
    cares about. This generator instead draws a deterministic Poisson
    arrival schedule (exponential inter-arrival gaps from a seeded RNG) at
    a configured offered rate; a request's latency is measured from its
    {e arrival} time, so time spent queued behind a slow (or dead) shard
    counts against the SLO. *)

type t

val create : rate_mops:float -> seed:int -> t
(** [rate_mops] is the offered load in million ops per modeled second. *)

val next_arrival : t -> float
(** Absolute arrival time (modeled ns) of the next request; strictly
    increasing. Deterministic given the seed. *)

val now_ns : t -> float
(** Arrival time of the most recently drawn request. *)

val rate_mops : t -> float
