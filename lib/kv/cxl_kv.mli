(** CXL-KV: the shared-everything distributed key-value store (§6.4).

    One latch-free fixed-size hash index lives in the shared pool; its
    buckets are embedded references to chains of key-value records (hash
    collisions as linked lists, §6.4.1). Readers from any client walk the
    whole store directly — no sharding of reads. Writers own disjoint key
    partitions (single-writer-multi-reader, required by the era algorithm);
    a partition can be taken over with one CAS on the writer table —
    repartitioning without data movement, because the data never moves.

    Record reclamation after delete is deferred to {!quiesce} (the paper
    points at hazard-era reclamation for reader protection; parking freed
    records until a quiescent point is the simulator's equivalent).
    Concurrent readers may transiently miss entries deleted mid-walk —
    standard latch-free list semantics. *)

type store = {
  index_obj : Cxlshm_shmem.Pptr.t;
  buckets : int;
  partitions : int;
  value_words : int;
}
(** Plain descriptor, shareable across domains. *)

type handle

val name : string

val create :
  Cxlshm.Ctx.t -> buckets:int -> partitions:int -> value_words:int ->
  store * handle
(** Allocate the index; the creator's handle holds a counted reference. *)

val open_store : Cxlshm.Ctx.t -> store -> handle
(** Attach another client to the store. *)

val close : handle -> unit
(** Quiesce and drop this client's reference; the index (and every record)
    is reclaimed when the last handle closes. A store meant to outlive its
    current clients should either keep a standby handle open or publish the
    index as a {!Cxlshm.Named_roots} entry. *)

val claim_partition : handle -> int -> bool
(** Become the writer of a partition (CAS on the writer table). *)

val takeover_partition : handle -> int -> bool
(** §6.4.1 writer failover: steal the partition whatever its current
    writer — no data transfer, one metadata CAS. *)

val writer_of_partition : handle -> int -> int option
val partition_of_key : store -> int -> int

val get : handle -> key:int -> int option
val get_all_words : handle -> key:int -> int array option
val put : handle -> key:int -> value:int -> unit
(** Insert-or-update; raises [Failure] if this client does not hold the
    key's partition. Existing keys are updated {e in place} (§2.2.2's
    "atomic in-place updates" — atomic per value word; multi-word values
    may be observed torn by concurrent readers). *)

val put_cow : handle -> key:int -> value:int -> unit
(** Copy-on-write variant: every write allocates a fresh record and swaps
    it into the chain atomically (§5.4 change), so readers never observe a
    torn multi-word value; the replaced record is parked until {!quiesce}.
    Costs an allocation (fence + flush) per write. *)

val delete : handle -> key:int -> bool
val quiesce : handle -> unit
(** Reclaim records parked by this handle's deletes. *)

val size_estimate : handle -> int
(** Walks every bucket (reader-side full scan — legal in the
    shared-everything design). *)

val iter : handle -> (key:int -> value:int -> unit) -> unit
(** Reader-side scan of the whole store (§6.4: "readers can directly read
    the entire store"). Concurrent single-writer mutations may be partially
    observed, as with any latch-free traversal. *)

val keys : handle -> int list
