(** Synthetic text corpus for the wordcount experiment (Fig 9 left).

    The paper uses a 1 GB text dataset; we generate a Zipf-distributed
    corpus over a fixed vocabulary (scaled by a size parameter) — word
    frequencies follow the same power law as natural text, which is what
    wordcount's shuffle/merge behaviour depends on. *)

val generate : words:int -> vocab:int -> seed:int -> string
(** A whitespace-separated corpus of [words] tokens. *)

val chunks : string -> chunk_bytes:int -> string list
(** Split at word boundaries into ≈[chunk_bytes] pieces. *)
