module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats

type status = Slot_free | Alive | Failed | Suspected

let status_name = function
  | Slot_free -> "free"
  | Alive -> "alive"
  | Failed -> "failed"
  | Suspected -> "suspected"

let status_of_int = function
  | 0 -> Slot_free
  | 1 -> Alive
  | 2 -> Failed
  | 3 -> Suspected
  | n -> invalid_arg (Printf.sprintf "Client.status_of_int: %d" n)

let status_to_int = function
  | Slot_free -> 0
  | Alive -> 1
  | Failed -> 2
  | Suspected -> 3

let init_slot (ctx : Ctx.t) =
  let lay = ctx.Ctx.lay in
  let cid = ctx.Ctx.cid in
  Era.init_row ctx;
  Redo_log.clear_for ctx ~cid;
  for k = 0 to lay.Layout.num_classes do
    Ctx.store ctx (Layout.class_head lay cid k) 0
  done;
  Ctx.store ctx (Layout.client_cur_segment lay cid) 0;
  Ctx.store ctx (Layout.retire_count lay cid) 0;
  Ctx.store ctx (Layout.retire_era lay cid) 0;
  Ctx.store ctx (Layout.client_heartbeat lay cid) 0;
  (* A previous occupant that died mid-traversal leaves its hazard
     announcement behind; a fresh incarnation starts not-reading, else the
     stale (small) era would pin reclamation forever. *)
  Ctx.store ctx (Layout.client_hazard lay cid) 0;
  Ctx.store ctx (Layout.client_machine lay cid) 0;
  Ctx.store ctx (Layout.client_process lay cid) (Unix.getpid ());
  (* Lease grant last: the deadline only starts mattering once the slot is
     live. The grant era is monotone across incarnations (never reset), so
     stale suspicion decisions and already-claimed death dumps from a
     previous occupant of this slot cannot apply to the new one. *)
  ignore (Lease.grant ctx ~cid)

let register ~mem ~lay ?cid () =
  (* The bootstrap context borrows cid 0 only to CAS registration flags;
     it must not mirror client 0's private words. *)
  let bootstrap = Ctx.make ~cache:false ~epoch:false ~mem ~lay ~cid:0 () in
  let try_claim c =
    Ctx.cas bootstrap (Layout.client_flags lay c) ~expected:0 ~desired:1
  in
  let claimed =
    match cid with
    | Some c -> if try_claim c then Some c else None
    | None ->
        let m = lay.Layout.cfg.Config.max_clients in
        let rec go c = if c >= m then None else if try_claim c then Some c else go (c + 1) in
        go 0
  in
  match claimed with
  | None -> failwith "Client.register: no free client slot"
  | Some c ->
      let ctx = Ctx.make ~mem ~lay ~cid:c () in
      init_slot ctx;
      ctx

let status (ctx : Ctx.t) ~cid =
  status_of_int (Ctx.load ctx (Layout.client_flags ctx.lay cid))

(* A Suspected client is still alive for every safety purpose (hazards,
   reachability, leak scans): suspicion is a liveness hint that the owner
   can cancel; only Failed fences it out. *)
let is_alive ctx ~cid =
  match status ctx ~cid with
  | Alive | Suspected -> true
  | Slot_free | Failed -> false

let heartbeat (ctx : Ctx.t) =
  let h = Layout.client_heartbeat ctx.lay ctx.cid in
  Ctx.store ctx h (Ctx.load ctx h + 1);
  Ctx.refresh_degraded_hint ctx;
  Lease.renew ctx ~cid:ctx.cid;
  (* Cancel a false-positive suspicion. If the CAS fails because the slot
     is already Failed the client is fenced — the renewed deadline is
     harmless (recovery ends in Slot_free and clears it) and the caller
     discovers the condemnation via [status]/its next operation. *)
  ignore (Lease.self_heal ctx ~cid:ctx.cid)

let heartbeat_value (ctx : Ctx.t) ~cid =
  Ctx.load ctx (Layout.client_heartbeat ctx.lay cid)

let set_status (ctx : Ctx.t) ~cid s =
  Ctx.store ctx (Layout.client_flags ctx.lay cid) (status_to_int s)

let declare_failed ctx ~cid = set_status ctx ~cid Failed

let mark_recovered ctx ~cid =
  Lease.release ctx ~cid;
  set_status ctx ~cid Slot_free

let segment_empty (ctx : Ctx.t) seg =
  let cfg = Ctx.cfg ctx in
  let rec go p =
    if p >= cfg.Config.pages_per_segment then true
    else
      let gid = Layout.page_gid ctx.lay ~seg ~page:p in
      (Page.kind ctx ~gid = Config.kind_unused || Page.used ctx ~gid = 0)
      && go (p + 1)
  in
  go 0

let unregister (ctx : Ctx.t) =
  (* Retirements parked in the volatile buffer must land before the slot
     is surrendered — nothing replays them for a cleanly-departed client. *)
  Reclaim.flush_retired ctx;
  Alloc.collect_deferred ctx;
  List.iter
    (fun seg ->
      match Segment.state ctx seg with
      (* An empty POTENTIAL_LEAKING segment is releasable here: [used] only
         reaches 0 once every carved block is back on a free list, and any
         release still in flight (ours completed before leave; a peer's
         keeps its block off-list) holds [used] above 0. *)
      | (Segment.Active | Segment.Leaking) when segment_empty ctx seg ->
          let cfg = Ctx.cfg ctx in
          for p = 0 to cfg.Config.pages_per_segment - 1 do
            Page.reset ctx ~gid:(Layout.page_gid ctx.lay ~seg ~page:p)
          done;
          Segment.release ctx seg
      | Segment.Active | Segment.Leaking -> Segment.orphan ctx ~cid:ctx.cid seg
      | Segment.Huge_head | Segment.Huge_cont ->
          (* Live huge object: leave owned; remote holders keep it alive and
             the leak scan recycles it once its count drops to zero. *)
          ()
      | Segment.Free | Segment.Orphaned -> ())
    (Segment.owned_by ctx ~cid:ctx.cid);
  (* Drop the lease before the slot: once the deadline is 0 a recycled slot
     cannot be instantly re-suspected off this incarnation's stale
     deadline, and the flags store below also clears a pending Suspected. *)
  Lease.release ctx ~cid:ctx.cid;
  set_status ctx ~cid:ctx.cid Slot_free
