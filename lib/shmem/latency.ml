type tier = Local_numa | Remote_numa | Cxl

let tier_name = function
  | Local_numa -> "local NUMA"
  | Remote_numa -> "remote NUMA"
  | Cxl -> "CXL"

let pp_tier ppf t = Format.pp_print_string ppf (tier_name t)
let all_tiers = [ Local_numa; Remote_numa; Cxl ]

type t = {
  hit_ns : float;
  seq_ns : float;
  rand_ns : float;
  rand_tp_ns : float;
  cas_ns : float;
  cas_hit_ns : float;
  fence_ns : float;
  flush_ns : float;
}

(* Calibrated to Table 1: sequential/random/CAS MOPS of 5200/562/3.3 (local),
   4312/350/3.3 (remote NUMA) and 1487/250/3.3 (CXL); random latencies
   110/200/390 ns. CAS throughput is latency-bound on all tiers in the
   paper's measurement, hence a flat ~303 ns. Fence and flush costs follow
   the Fig 7 breakdown where one clwb accounts for 27-50% of the CXL-SHM
   allocation fast path and the sfence for <5%. *)
let of_tier = function
  | Local_numa ->
      {
        hit_ns = 3.0;
        seq_ns = 1_000.0 /. 5200.0;
        rand_ns = 110.0;
        rand_tp_ns = 1_000.0 /. 562.0;
        cas_ns = 303.0;
        cas_hit_ns = 40.0;
        fence_ns = 6.0;
        flush_ns = 60.0;
      }
  | Remote_numa ->
      {
        hit_ns = 3.0;
        seq_ns = 1_000.0 /. 4312.0;
        rand_ns = 200.0;
        rand_tp_ns = 1_000.0 /. 350.0;
        cas_ns = 303.0;
        cas_hit_ns = 40.0;
        fence_ns = 6.0;
        (* this tier doubles as Optane-class pmem; a persist-grade
           write-back there costs several hundred ns *)
        flush_ns = 250.0;
      }
  | Cxl ->
      {
        hit_ns = 3.0;
        seq_ns = 1_000.0 /. 1487.0;
        rand_ns = 390.0;
        rand_tp_ns = 1_000.0 /. 250.0;
        cas_ns = 303.0;
        cas_hit_ns = 40.0;
        fence_ns = 6.0;
        flush_ns = 110.0;
      }

let table1_mops tier =
  let m = of_tier tier in
  (1_000.0 /. m.seq_ns, 1_000.0 /. m.rand_tp_ns, 1_000.0 /. m.cas_ns)

let table1_latency_ns tier = (of_tier tier).rand_ns
