exception Wild_pointer of { addr : int; words : int }

type fault_class = Backend_faulty.fault_class =
  | Read_poison
  | Torn_write
  | Stuck_word
  | Offline

exception Device_error = Backend_faulty.Device_error

let fault_class_name = Backend_faulty.fault_class_name
let all_fault_classes = Backend_faulty.all_fault_classes

type backend_spec =
  | Flat
  | Striped of { devices : int; stripe_words : int; tiers : Latency.tier array }
  | Counting_fast
  | Faulty of { base : backend_spec; fault_spec : Backend_faulty.spec }
  | Sched of backend_spec

type t = {
  b : Mem_intf.packed;
  words : int;
  tier : Latency.tier;
  model : Latency.t;
  dev_tiers : Latency.tier array;
  dev_models : Latency.t array;
  off_tier : bool array; (* device tier <> base tier *)
  multi : bool; (* any off-tier device: per-access device pricing needed *)
  counting : Backend_counting.t option;
  faulty : Backend_faulty.t option;
  sched : Backend_sched.t option;
}

let words_per_line = 8 (* 64-byte cache line / 8-byte words *)

let pack (type a) (module B : Mem_intf.S with type t = a) (v : a) =
  Mem_intf.Packed ((module B), v)

let create ?(tier = Latency.Cxl) ?(backend = Flat) ~words () =
  if words <= 0 then invalid_arg "Mem.create: words must be positive";
  let rec build = function
    | Flat ->
        ( pack (module Backend_flat) (Backend_flat.create ~tier ~words ()),
          [| tier |],
          None,
          None,
          None )
    | Striped { devices; stripe_words; tiers } ->
        let tiers =
          if Array.length tiers = 0 then None else Some tiers
        in
        let s =
          Backend_striped.create ~tier ~devices ~stripe_words ?tiers ~words ()
        in
        ( pack (module Backend_striped) s,
          Array.init devices (Backend_striped.device_tier s),
          None,
          None,
          None )
    | Counting_fast ->
        let c = Backend_counting.create ~tier ~words () in
        (pack (module Backend_counting) c, [| tier |], Some c, None, None)
    | Faulty { base; fault_spec } ->
        let bp, dev_tiers, counting, _, sched = build base in
        (* start disarmed: pool formatting and client registration happen on
           healthy devices; the driver arms the campaign once set up *)
        let f = Backend_faulty.create ~armed:false ~base:bp ~spec:fault_spec () in
        (pack (module Backend_faulty) f, dev_tiers, counting, Some f, sched)
    | Sched base ->
        let bp, dev_tiers, counting, faulty, _ = build base in
        let s = Backend_sched.create ~base:bp () in
        (pack (module Backend_sched) s, dev_tiers, counting, faulty, Some s)
  in
  let b, dev_tiers, counting, faulty, sched = build backend in
  let off_tier = Array.map (fun dt -> dt <> tier) dev_tiers in
  {
    b;
    words;
    tier;
    model = Latency.of_tier tier;
    dev_tiers;
    dev_models = Array.map Latency.of_tier dev_tiers;
    off_tier;
    multi = Array.exists Fun.id off_tier;
    counting;
    faulty;
    sched;
  }

let words t = t.words
let tier t = t.tier
let cost_model t = t.model
let in_bounds t p = p >= 0 && p < t.words

let check t p =
  if not (in_bounds t p) then raise (Wild_pointer { addr = p; words = t.words })

(* Backend dispatch shorthands. *)
let b_load t p =
  let (Mem_intf.Packed ((module B), bk)) = t.b in
  B.load bk p

let b_store t p v =
  let (Mem_intf.Packed ((module B), bk)) = t.b in
  B.store bk p v

let b_cas t p ~expected ~desired =
  let (Mem_intf.Packed ((module B), bk)) = t.b in
  B.cas bk p ~expected ~desired

let b_fetch_add t p n =
  let (Mem_intf.Packed ((module B), bk)) = t.b in
  B.fetch_add bk p n

let b_device_of t p =
  let (Mem_intf.Packed ((module B), bk)) = t.b in
  B.device_of bk p

let backend_name t =
  let (Mem_intf.Packed ((module B), bk)) = t.b in
  B.name bk

let num_devices t =
  let (Mem_intf.Packed ((module B), bk)) = t.b in
  B.num_devices bk

let device_of t p =
  check t p;
  b_device_of t p

let device_tier t d =
  if d < 0 || d >= Array.length t.dev_tiers then
    invalid_arg "Mem.device_tier: device out of range";
  t.dev_tiers.(d)

let op_count t = Option.map Backend_counting.ops t.counting
let op_breakdown t = Option.map Backend_counting.breakdown t.counting
let fault_injector t = t.faulty

let set_fault_injection t on =
  match t.faulty with
  | Some f -> Backend_faulty.arm f on
  | None -> ()

let fault_injection_armed t =
  match t.faulty with Some f -> Backend_faulty.is_armed f | None -> false

let injected_faults t =
  match t.faulty with Some f -> Backend_faulty.injected f | None -> []

(* Re-price an access that landed on a device of a different tier than the
   pool's base model: accumulate the per-kind cost delta so modeled_ns
   charges the access at its device's tier. CPU-cache hits and hit-CAS stay
   at base cost — the cache sits in front of the link, whichever device the
   line came from. *)
let charge t (st : Stats.t) p kind =
  if t.multi then begin
    let d = b_device_of t p in
    if t.off_tier.(d) then begin
      let dm = t.dev_models.(d) and m = t.model in
      let delta =
        match kind with
        | `Seq -> dm.Latency.seq_ns -. m.Latency.seq_ns
        | `Rand -> dm.Latency.rand_ns -. m.Latency.rand_ns
        | `Cas -> dm.Latency.cas_ns -. m.Latency.cas_ns
        | `Flush -> dm.Latency.flush_ns -. m.Latency.flush_ns
      in
      st.xdev_accesses <- st.xdev_accesses + 1;
      st.xdev_ns <- st.xdev_ns +. delta
    end
  end

(* Classify the access: CPU-cache hit (CXL memory is cacheable, so a
   recently-touched line costs an L1/L2 access), sequential (same or next
   line — the prefetcher hides stream crossings), or a random link round
   trip — mirroring Table 1's seq/rand split. *)
let count_access t (st : Stats.t) p =
  let line = p / words_per_line in
  let cached = Stats.note_line st line in
  (if line = st.last_line || line = st.last_line + 1 then begin
     (* streaming: same or next line — L1-resident or prefetched *)
     st.seq_accesses <- st.seq_accesses + 1;
     charge t st p `Seq
   end
   else if cached then st.cache_hits <- st.cache_hits + 1
   else begin
     st.rand_accesses <- st.rand_accesses + 1;
     charge t st p `Rand
   end);
  st.last_line <- line

let load t ~st:(st : Stats.t) p =
  check t p;
  count_access t st p;
  b_load t p

let store t ~st:(st : Stats.t) p v =
  check t p;
  count_access t st p;
  b_store t p v

let count_cas t (st : Stats.t) p =
  (* a CAS on a line this client already caches is a local atomic; a cold
     or stolen line pays the coherence round trip *)
  if Stats.note_line st (p / words_per_line) then
    st.cas_hit_ops <- st.cas_hit_ops + 1
  else begin
    st.cas_ops <- st.cas_ops + 1;
    charge t st p `Cas
  end;
  st.last_line <- p / words_per_line

let cas t ~st:(st : Stats.t) p ~expected ~desired =
  check t p;
  count_cas t st p;
  let ok = b_cas t p ~expected ~desired in
  if not ok then st.cas_failures <- st.cas_failures + 1;
  ok

let fetch_add t ~st:(st : Stats.t) p n =
  check t p;
  count_cas t st p;
  b_fetch_add t p n

(* Fence/flush only dispatch to the backend when the scheduler wrapper is
   present: the simulation backends treat them as no-ops, and skipping the
   dispatch keeps the faulty backend's op counter (and thus every existing
   fault-schedule seed) exactly as it was. The sched wrapper needs to see
   them because fences are ordering points the explorer schedules around. *)
let fence t ~st:(st : Stats.t) =
  st.fences <- st.fences + 1;
  (match t.counting with Some c -> Backend_counting.note_fence c | None -> ());
  match t.sched with Some s -> Backend_sched.fence s | None -> ()

let flush t ~st:(st : Stats.t) p =
  check t p;
  st.flushes <- st.flushes + 1;
  (match t.counting with Some c -> Backend_counting.note_flush c | None -> ());
  charge t st p `Flush;
  match t.sched with Some s -> Backend_sched.flush s p | None -> ()

let fill t ~st:(st : Stats.t) p ~len v =
  if len < 0 then invalid_arg "Mem.fill: negative length";
  check t p;
  if len > 0 then check t (p + len - 1);
  for i = p to p + len - 1 do
    count_access t st i;
    b_store t i v
  done

let bytes_words n = (n + 6) / 7

(* 7 payload bytes per 63-bit word keeps every stored word non-negative,
   which the rest of the system assumes of packed header words too. *)
let write_bytes t ~st:(st : Stats.t) p b =
  let n = Bytes.length b in
  let nwords = bytes_words n in
  if nwords > 0 then begin
    check t p;
    check t (p + nwords - 1)
  end;
  for w = 0 to nwords - 1 do
    let acc = ref 0 in
    for k = 6 downto 0 do
      let idx = (w * 7) + k in
      let byte = if idx < n then Char.code (Bytes.unsafe_get b idx) else 0 in
      acc := (!acc lsl 8) lor byte
    done;
    count_access t st (p + w);
    b_store t (p + w) !acc
  done

let read_bytes t ~st:(st : Stats.t) p ~len =
  if len < 0 then invalid_arg "Mem.read_bytes: negative length";
  let nwords = bytes_words len in
  if nwords > 0 then begin
    check t p;
    check t (p + nwords - 1)
  end;
  let b = Bytes.create len in
  for w = 0 to nwords - 1 do
    count_access t st (p + w);
    let v = b_load t (p + w) in
    for k = 0 to 6 do
      let idx = (w * 7) + k in
      if idx < len then
        Bytes.unsafe_set b idx (Char.chr ((v lsr (8 * k)) land 0xff))
    done
  done;
  b

let blit t ~st ~src ~dst ~len =
  if len < 0 then invalid_arg "Mem.blit: negative length";
  if len > 0 then begin
    check t src;
    check t (src + len - 1);
    check t dst;
    check t (dst + len - 1)
  end;
  (* memmove: when the destination overlaps past the source a forward copy
     would read already-overwritten words, so copy backward. *)
  if src < dst && src + len > dst then
    for i = len - 1 downto 0 do
      count_access t st (src + i);
      let v = b_load t (src + i) in
      count_access t st (dst + i);
      b_store t (dst + i) v
    done
  else
    for i = 0 to len - 1 do
      count_access t st (src + i);
      let v = b_load t (src + i) in
      count_access t st (dst + i);
      b_store t (dst + i) v
    done

let unsafe_peek t p =
  check t p;
  b_load t p

let unsafe_poke t p v =
  check t p;
  b_store t p v

(* Control-plane words (the degraded-device bitmap) are fabric-manager
   metadata reached out of band: they stay accessible while the data path
   faults, or escalation could be swallowed by the very fault it records. *)
let ctl_peek t p =
  check t p;
  match t.faulty with
  | Some f -> Backend_faulty.pristine_load f p
  | None -> b_load t p

let ctl_poke t p v =
  check t p;
  match t.faulty with
  | Some f -> Backend_faulty.pristine_store f p v
  | None -> b_store t p v

let snapshot t =
  let (Mem_intf.Packed ((module B), bk)) = t.b in
  B.snapshot bk

let restore t ws =
  if Array.length ws <> t.words then invalid_arg "Mem.restore: size mismatch";
  let (Mem_intf.Packed ((module B), bk)) = t.b in
  B.restore bk ws
