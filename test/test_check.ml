(* The model checker checking itself.

   Two layers: unit tests for the executor/schedule plumbing (round-trip
   parsing, deterministic replay, crash accounting), and the mutation
   self-check — re-introduce two real ordering bugs this repo has already
   fixed, behind test-only flags, and require the explorer to find each
   within a bounded, deterministic search. If these stay green the explorer
   is actually capable of catching the class of bug it exists for. *)

module Explore = Cxlshm_check.Explore
module Scenarios = Cxlshm_check.Scenarios
module Sched = Cxlshm_check.Sched
module Schedule = Cxlshm_check.Schedule

let with_flag flag f =
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) f

(* ---- schedule strings ---- *)

let test_schedule_roundtrip () =
  let cases =
    [
      "spsc:";
      "spsc:0";
      "transfer:0,1,0,c1";
      "refc:1,1,1,0,c0,1";
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Schedule.to_string (Schedule.of_string s)))
    cases;
  List.iter
    (fun s ->
      match Schedule.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed schedule %S" s)
    [ ""; "nocolon"; ":0,1"; "spsc:x"; "spsc:c"; "spsc:-1"; "spsc:0,,1" ]

(* ---- executor basics ---- *)

let test_replay_deterministic () =
  let m = Scenarios.spsc ~capacity:1 ~values:2 () in
  (* the empty schedule = pure default policy; must terminate and pass *)
  let empty = { Schedule.model = "spsc"; decisions = [] } in
  let r1 = Explore.replay m ~max_steps:5_000 empty in
  let r2 = Explore.replay m ~max_steps:5_000 empty in
  (match r1.Explore.outcome with
  | Explore.Pass -> ()
  | Explore.Fail reason -> Alcotest.failf "default policy failed: %s" reason
  | Explore.Diverged -> Alcotest.fail "default policy diverged");
  Alcotest.(check int) "same step count" r1.Explore.steps r2.Explore.steps;
  Alcotest.(check bool) "same decisions" true
    (r1.Explore.decisions = r2.Explore.decisions)

let test_random_is_reproducible () =
  let run () =
    Explore.random ~seed:42 ~schedules:50 ~crash:true ~max_steps:10_000
      (Scenarios.transfer ())
  in
  let a = run () and b = run () in
  Alcotest.(check int) "schedules" a.Explore.schedules b.Explore.schedules;
  Alcotest.(check int) "passed" a.Explore.passed b.Explore.passed;
  Alcotest.(check int) "crashes" a.Explore.crashes_injected
    b.Explore.crashes_injected

let test_crash_is_recorded () =
  (* Killing a client mid-protocol must surface in [crashed] and still
     leave a recoverable arena (the oracle runs recovery itself). *)
  let r =
    Explore.random ~seed:7 ~schedules:100 ~crash:true ~max_steps:20_000
      (Scenarios.refc ~rounds:1 ())
  in
  (match r.Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "refc with crashes failed: %s (replay: %s)"
        f.Explore.reason
        (Schedule.to_string f.Explore.schedule));
  Alcotest.(check bool) "some schedules actually crashed" true
    (r.Explore.crashes_injected > 0)

let test_exhaustive_covers_clean_models () =
  let m = Scenarios.spsc ~capacity:1 ~values:1 () in
  let r = Explore.exhaustive ~preemptions:2 ~crash:true ~max_steps:5_000 m in
  (match r.Explore.failure with
  | None -> ()
  | Some f -> Alcotest.failf "clean spsc failed: %s" f.Explore.reason);
  Alcotest.(check bool) "explored more than the default schedule" true
    (r.Explore.schedules > 10);
  Alcotest.(check bool) "crash schedules included" true
    (r.Explore.crashes_injected > 0)

(* ---- mutation self-check ---- *)

(* PR-3 regression, reintroduced: try_pop publishing the new head with no
   fence after the slot read. The explorer models the reorder the missing
   fence permits and must catch it with plain random search, fast. *)
let test_finds_spsc_pop_mutation () =
  with_flag Cxlshm_spsc.Spsc_queue.mutation_unfenced_pop @@ fun () ->
  let m = Scenarios.spsc () in
  let r = Explore.random ~seed:1 ~schedules:50 ~crash:true ~max_steps:20_000 m in
  match r.Explore.failure with
  | None -> Alcotest.fail "unfenced-pop mutation survived 50 random schedules"
  | Some f ->
      (* the replay string must reproduce the identical failure *)
      let rr = Explore.replay m ~max_steps:20_000 f.Explore.schedule in
      (match rr.Explore.outcome with
      | Explore.Fail reason ->
          Alcotest.(check string) "replay reproduces the same reason"
            f.Explore.reason reason
      | Explore.Pass | Explore.Diverged ->
          Alcotest.fail "replay did not reproduce the failure")

(* Pre-PR-3 Transfer bug, reintroduced: receive advancing the durable head
   before the slot is consumed. Bounded exhaustive search must find it —
   this is the acceptance bar for "verifies the transfer handoff". *)
let test_finds_transfer_head_mutation () =
  with_flag Cxlshm.Transfer.mutation_unfenced_advance @@ fun () ->
  let m = Scenarios.transfer ~values:2 () in
  let r = Explore.exhaustive ~preemptions:2 ~crash:true ~max_steps:40_000 m in
  match r.Explore.failure with
  | None -> Alcotest.fail "unfenced-advance mutation survived exhaustive search"
  | Some f ->
      let rr = Explore.replay m ~max_steps:40_000 f.Explore.schedule in
      (match rr.Explore.outcome with
      | Explore.Fail reason ->
          Alcotest.(check string) "replay reproduces the same reason"
            f.Explore.reason reason
      | Explore.Pass | Explore.Diverged ->
          Alcotest.fail "replay did not reproduce the failure")

(* The historical era-blind quiesce, reintroduced: reclamation ignoring
   announced reader eras frees a record a paused traversal still stands on;
   the decoy allocation then plants a poisoned value where the reader
   resumes. Bounded exhaustive search must observe the use-after-free. *)
let test_finds_kv_quiesce_mutation () =
  with_flag Cxlshm_kv.Cxl_kv.mutation_unconditional_quiesce @@ fun () ->
  let m = Scenarios.kv_serve () in
  let r = Explore.exhaustive ~preemptions:2 ~crash:true ~max_steps:40_000 m in
  match r.Explore.failure with
  | None ->
      Alcotest.fail "era-blind quiesce mutation survived exhaustive search"
  | Some f ->
      let rr = Explore.replay m ~max_steps:40_000 f.Explore.schedule in
      (match rr.Explore.outcome with
      | Explore.Fail reason ->
          Alcotest.(check string) "replay reproduces the same reason"
            f.Explore.reason reason
      | Explore.Pass | Explore.Diverged ->
          Alcotest.fail "replay did not reproduce the failure")

let string_contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* The era-blind crash reap, reintroduced: recovery of a dead writer frees
   its parked records through the live eager path instead of journaling
   them for adoption. The crash-then-recover model interleaves monitor
   recovery with a reader paused mid-bucket-walk; bounded exhaustive search
   must observe the 0xdead decoy through the paused reader, and the printed
   schedule must replay to the bit-identical failure. *)
let test_finds_crash_reap_mutation () =
  with_flag Cxlshm.Recovery.mutation_crash_reap @@ fun () ->
  let m = Scenarios.kv_serve_recover () in
  let r = Explore.exhaustive ~preemptions:1 ~crash:true ~max_steps:60_000 m in
  match r.Explore.failure with
  | None -> Alcotest.fail "era-blind crash reap survived exhaustive search"
  | Some f ->
      Alcotest.(check bool)
        ("failure is the use-after-free: " ^ f.Explore.reason)
        true
        (string_contains f.Explore.reason "0xdead");
      let rr = Explore.replay m ~max_steps:60_000 f.Explore.schedule in
      (match rr.Explore.outcome with
      | Explore.Fail reason ->
          Alcotest.(check string) "replay reproduces the same reason"
            f.Explore.reason reason
      | Explore.Pass | Explore.Diverged ->
          Alcotest.fail "replay did not reproduce the failure")

(* The pointer-isolation walk, disabled: with validation skipped the
   smuggled out-of-channel pointer reaches the handler, and the model's
   oracle must say exactly that — on the very first schedule, since no
   preemption is needed to smuggle. *)
let test_finds_rpc_skip_validate_mutation () =
  with_flag Cxlshm_rpc.Cxl_rpc.mutation_skip_validate @@ fun () ->
  let m = Scenarios.rpc_isolate () in
  let r = Explore.exhaustive ~preemptions:0 ~crash:true ~max_steps:60_000 m in
  match r.Explore.failure with
  | None -> Alcotest.fail "skip-validate mutation survived exhaustive search"
  | Some f ->
      Alcotest.(check bool)
        ("failure is the isolation breach: " ^ f.Explore.reason)
        true
        (string_contains f.Explore.reason "out-of-channel pointer");
      let rr = Explore.replay m ~max_steps:60_000 f.Explore.schedule in
      (match rr.Explore.outcome with
      | Explore.Fail reason ->
          Alcotest.(check string) "replay reproduces the same reason"
            f.Explore.reason reason
      | Explore.Pass | Explore.Diverged ->
          Alcotest.fail "replay did not reproduce the failure")

(* The completion fence, dropped: status published before the in-place
   output write lets the client read a stale output. One preemption (pause
   the handler between publish and write) exposes it. *)
let test_finds_rpc_unfenced_status_mutation () =
  with_flag Cxlshm_rpc.Cxl_rpc.mutation_unfenced_status @@ fun () ->
  let m = Scenarios.rpc_isolate () in
  let r = Explore.exhaustive ~preemptions:1 ~crash:true ~max_steps:60_000 m in
  match r.Explore.failure with
  | None -> Alcotest.fail "unfenced-status mutation survived exhaustive search"
  | Some f ->
      Alcotest.(check bool)
        ("failure is the stale read: " ^ f.Explore.reason)
        true
        (string_contains f.Explore.reason "completion published");
      let rr = Explore.replay m ~max_steps:60_000 f.Explore.schedule in
      (match rr.Explore.outcome with
      | Explore.Fail reason ->
          Alcotest.(check string) "replay reproduces the same reason"
            f.Explore.reason reason
      | Explore.Pass | Explore.Diverged ->
          Alcotest.fail "replay did not reproduce the failure")

(* The crash-then-recover model must also hold up under the seeded-random
   sweep (deeper interleavings than the bounded-exhaustive frontier). *)
let test_kv_recover_random_sweep () =
  let r =
    Explore.random ~seed:11 ~schedules:200 ~crash:true ~max_steps:60_000
      (Scenarios.kv_serve_recover ())
  in
  (match r.Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "kv-serve-recover failed under random sweep: %s (replay: %s)"
        f.Explore.reason
        (Schedule.to_string f.Explore.schedule));
  Alcotest.(check bool) "crash schedules included" true
    (r.Explore.crashes_injected > 0)

(* With the flags off, the very same searches must come back clean —
   otherwise the self-check proves nothing. *)
let test_unmutated_models_pass () =
  let r1 =
    Explore.random ~seed:1 ~schedules:50 ~crash:true ~max_steps:20_000
      (Scenarios.spsc ())
  in
  (match r1.Explore.failure with
  | None -> ()
  | Some f -> Alcotest.failf "unmutated spsc failed: %s" f.Explore.reason);
  let r2 =
    Explore.exhaustive ~preemptions:2 ~crash:true ~max_steps:40_000
      (Scenarios.transfer ~values:2 ())
  in
  (match r2.Explore.failure with
  | None -> ()
  | Some f -> Alcotest.failf "unmutated transfer failed: %s" f.Explore.reason);
  let r3 =
    Explore.exhaustive ~preemptions:2 ~crash:true ~max_steps:40_000
      (Scenarios.kv_serve ())
  in
  (match r3.Explore.failure with
  | None -> ()
  | Some f -> Alcotest.failf "unmutated kv-serve failed: %s" f.Explore.reason);
  (* the exact search that catches the era-blind crash reap *)
  let r4 =
    Explore.exhaustive ~preemptions:1 ~crash:true ~max_steps:60_000
      (Scenarios.kv_serve_recover ())
  in
  (match r4.Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "unmutated kv-serve-recover failed: %s" f.Explore.reason);
  (* the isolation model under a seeded sweep; the exhaustive p<=2 runs in CI *)
  let r5 =
    Explore.random ~seed:5 ~schedules:50 ~crash:true ~max_steps:60_000
      (Scenarios.rpc_isolate ())
  in
  match r5.Explore.failure with
  | None -> ()
  | Some f -> Alcotest.failf "unmutated rpc-isolate failed: %s" f.Explore.reason

let suite =
  [
    Alcotest.test_case "schedule string roundtrip" `Quick
      test_schedule_roundtrip;
    Alcotest.test_case "replay is deterministic" `Quick
      test_replay_deterministic;
    Alcotest.test_case "random mode is reproducible" `Quick
      test_random_is_reproducible;
    Alcotest.test_case "crash injection recovers" `Quick test_crash_is_recorded;
    Alcotest.test_case "exhaustive covers clean models" `Quick
      test_exhaustive_covers_clean_models;
    Alcotest.test_case "finds the unfenced-pop mutation" `Quick
      test_finds_spsc_pop_mutation;
    Alcotest.test_case "finds the unfenced-advance mutation" `Quick
      test_finds_transfer_head_mutation;
    Alcotest.test_case "finds the era-blind quiesce mutation" `Quick
      test_finds_kv_quiesce_mutation;
    Alcotest.test_case "finds the era-blind crash reap" `Quick
      test_finds_crash_reap_mutation;
    Alcotest.test_case "finds the rpc skip-validate mutation" `Quick
      test_finds_rpc_skip_validate_mutation;
    Alcotest.test_case "finds the rpc unfenced-status mutation" `Quick
      test_finds_rpc_unfenced_status_mutation;
    Alcotest.test_case "crash-then-recover random sweep" `Quick
      test_kv_recover_random_sweep;
    Alcotest.test_case "unmutated models pass the same searches" `Quick
      test_unmutated_models_pass;
  ]
