(* Market-data ticker: broadcast log + ordered index (lib/structures).

   One feed client publishes price updates into a broadcast log; two
   independent subscribers consume the same entries without copies or
   per-subscriber queues; one of them maintains an ordered index of the
   latest price per symbol and answers range queries. Then the feed dies
   mid-session and the recovery service cleans up while the subscribers'
   data stays intact.

   Run: dune exec examples/ticker.exe *)

open Cxlshm
module Bl = Cxlshm_structures.Broadcast_log
module Sl = Cxlshm_structures.Sorted_list

let () =
  let arena = Shm.create () in
  let feed = Shm.join arena () in
  let indexer = Shm.join arena () in
  let auditor = Shm.join arena () in

  let log = Bl.create feed ~capacity:16 in
  let cur_idx = Bl.subscribe indexer (Bl.log_ref log) in
  let cur_aud = Bl.subscribe auditor (Bl.log_ref log) in
  let index = Sl.create indexer ~value_words:1 in

  (* the feed publishes (symbol, price) ticks *)
  let ticks =
    [ (101, 570); (205, 131); (101, 572); (318, 94); (205, 129); (101, 575) ]
  in
  List.iter
    (fun (sym, price) ->
      let t = Shm.cxl_malloc feed ~size_bytes:16 () in
      Cxl_ref.write_word t 0 sym;
      Cxl_ref.write_word t 1 price;
      ignore (Bl.publish log t);
      Cxl_ref.drop t)
    ticks;

  (* the indexer folds ticks into the ordered index *)
  let rec drain_into_index () =
    match Bl.poll cur_idx with
    | `Entry (_, r) ->
        Sl.replace index ~key:(Cxl_ref.read_word r 0)
          ~value:(Cxl_ref.read_word r 1);
        Cxl_ref.drop r;
        drain_into_index ()
    | `Lagged _ -> drain_into_index ()
    | `Empty -> ()
  in
  drain_into_index ();
  Printf.printf "index holds %d symbols\n" (Sl.length index);
  print_endline "symbols in [100, 300):";
  List.iter
    (fun (sym, price) -> Printf.printf "  sym %d -> %d\n" sym price)
    (Sl.range index ~lo:100 ~hi:300);

  (* the auditor independently counts ticks from the same log *)
  let rec count n =
    match Bl.poll cur_aud with
    | `Entry (_, r) ->
        Cxl_ref.drop r;
        count (n + 1)
    | `Lagged k -> count (n + k)
    | `Empty -> n
  in
  Printf.printf "auditor accounted for %d ticks\n" (count 0);

  (* the feed dies mid-session *)
  print_endline "feed crashes...";
  Client.declare_failed (Shm.service_ctx arena) ~cid:feed.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:feed.Ctx.cid);
  Printf.printf "index still answers: sym 101 -> %s\n"
    (match Sl.find index ~key:101 with
    | Some p -> string_of_int p
    | None -> "lost!");

  (* orderly shutdown *)
  Bl.close_cursor cur_idx;
  Bl.close_cursor cur_aud;
  Sl.close index;
  Shm.leave indexer;
  Shm.leave auditor;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  assert (Validate.is_clean v);
  print_endline "ticker OK"
