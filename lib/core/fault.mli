(** Crash-point fault injection (§6.2.2).

    The paper validates recovery correctness by compiling the system with a
    flag that injects "randomly bring down the current client" snippets at
    every critical point of allocation, refcount maintenance and reference
    exchange, then checking post-crash invariants. We reproduce that: every
    critical point in the core calls {!maybe_crash} with a label; a
    {!plan} decides whether the client "dies" there, which raises
    {!Crashed}. The harness catches it, abandons the client's local state and
    runs the recovery service. *)

exception Crashed of string

(** Labels for every crash point in the core. One constructor per distinct
    window between two shared-memory effects, so a plan can target any
    interleaving the paper's fault test can reach. *)
type point =
  | Alloc_after_rootref          (** RootRef carved, nothing linked yet *)
  | Alloc_after_link             (** rr.pptr written, page free not advanced *)
  | Alloc_after_advance          (** free ptr advanced, header not initialised *)
  | Alloc_after_header           (** header written, CXLRef not yet returned *)
  | Txn_after_redo               (** redo record written, CAS not attempted *)
  | Txn_after_cas                (** ModifyRefCnt committed, ModifyRef pending *)
  | Txn_after_modify_ref         (** ModifyRef done, era not yet advanced *)
  | Change_after_first_cas       (** §5.4 step 2 done, era bump pending *)
  | Change_after_first_era       (** §5.4 step 3 done *)
  | Change_after_second_cas      (** §5.4 step 4 done *)
  | Change_after_modify_ref      (** §5.4 step 5 done *)
  | Release_before_reclaim       (** count hit zero, block not yet reclaimed *)
  | Release_mid_reclaim          (** block partially pushed to a free list *)
  | Send_after_attach            (** queue slot holds the ref, tail not moved *)
  | Recv_after_attach            (** local RootRef linked, slot not released *)
  | Recv_after_detach            (** slot released, head not advanced *)
  | Recv_after_advance           (** head advanced and flushed, result not
                                     yet returned to the caller *)
  | Slowpath_after_page_claim    (** page kind set, free chain incomplete *)
  | Slowpath_after_segment_claim (** segment CAS won, cursor not updated *)
  | Free_huge_mid_release        (** huge free: some tail segments released,
                                     head metadata still intact *)
  | Free_huge_after_reset        (** huge free: head pages wiped, head
                                     segment not yet released *)
  | Recovery_mid_phases          (** recovery service dies mid-recovery *)
  | Move_after_link              (** count-neutral move: destination linked,
                                     source slot not yet cleared *)
  | Move_after_clear             (** count-neutral move: source cleared, era
                                     not yet advanced *)
  | Retire_after_seal            (** retirement batch sealed in the journal,
                                     no entry processed yet *)
  | Retire_mid_batch             (** some retirement entries processed, the
                                     journal still sealed *)
  | Retire_after_batch           (** all entries processed and write-backs
                                     drained, journal not yet cleared *)
  | Lead_after_acquire           (** monitor won the leader CAS (election or
                                     deposition), no recovery started yet *)
  | Lead_after_depose            (** expired leader deposed and recovery
                                     resumed mid-flight, lease not yet
                                     renewed by the new leader *)
  | Evac_after_copy              (** evacuation: destination block allocated
                                     and payload copied, no holder
                                     re-pointed yet *)
  | Evac_after_repoint           (** evacuation: at least one holder
                                     re-pointed to the destination, source
                                     still guard-referenced *)
  | Evac_before_release          (** evacuation: all holders re-pointed,
                                     guard rootref not yet released (source
                                     block still alive) *)
  | Park_after_append            (** parked-record registry entry committed
                                     (stamp fenced, rr published), volatile
                                     deferred list not yet updated *)
  | Adopt_mid_journal            (** recovery moved a registry entry into
                                     the adoption journal, registry slot
                                     not yet cleared *)
  | Adopt_after_claim            (** successor won the adoption-journal
                                     claim CAS, nothing re-registered yet *)
  | Adopt_after_append           (** successor re-registered the adopted
                                     entry in its own registry, journal
                                     slot not yet cleared *)
  | Rpc_before_status            (** RPC server wrote the in-place outputs
                                     and fenced, completion status not yet
                                     raised *)

val point_name : point -> string
val all_points : point list

type plan

val none : plan
(** Never crash. *)

val at : point -> nth:int -> plan
(** Crash at the [nth] (1-based) occurrence of [point]. *)

val random : seed:int -> probability:float -> plan
(** Crash independently at each point with the given probability. When such
    a plan fires, the {!Crashed} message carries the seed and the overall
    hit number so the crash replays deterministically via {!nth_point}. *)

val nth_point : n:int -> plan
(** Crash at the [n]-th crash-point hit overall (1-based), whatever its
    label — the paper's "inject at all the critical points" sweep. The plan
    is a pure function of the execution, so it needs no seed. *)

val maybe_crash : plan -> point -> unit
(** Raises {!Crashed} if the plan fires at this point. *)

val on_point : (point -> unit) option ref
(** Observation hook called by {!maybe_crash} before the plan is consulted.
    The [lib/check] scheduler installs itself here so every labeled crash
    point is also a named preemption point; [None] (the default) costs one
    branch. Global process state — single-domain harnesses only. *)

val hits : plan -> int
(** Number of crash points evaluated so far (to size [nth_point] sweeps). *)
