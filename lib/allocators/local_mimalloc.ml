module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency

let name = "mimalloc"
let page_words = 512

(* Layout: +0 reserved, +1 page-bump counter, +2.. per-page free heads,
   then the thread tables (current page per class), then page areas. *)
type t = {
  mem : Mem.t;
  num_pages : int;
  meta_base : int;
  thread_base : int;
  pages_base : int;
  nclasses : int;
  threads : int;
}

type thread = {
  a : t;
  tid : int;
  st : Stats.t;
  pages : int list array;  (** per-class pages owned by this thread *)
}

let tier _ = Latency.Local_numa

let create ~words ~threads =
  let nclasses = Size_class.num_classes ~page_words in
  (* Solve for the page count that fits in [words]. *)
  let overhead np = 2 + np + (threads * nclasses) in
  let rec fit np = if overhead np + (np * page_words) > words then np - 1 else fit (np + 1) in
  let num_pages = fit 1 in
  if num_pages < threads then invalid_arg "Local_mimalloc.create: arena too small";
  let mem = Mem.create ~tier:Latency.Local_numa ~words () in
  {
    mem;
    num_pages;
    meta_base = 2;
    thread_base = 2 + num_pages;
    pages_base = overhead num_pages;
    nclasses;
    threads;
  }

let thread a tid =
  if tid < 0 || tid >= a.threads then invalid_arg "Local_mimalloc.thread";
  { a; tid; st = Stats.create (); pages = Array.make a.nclasses [] }

let stats th = th.st
let serial_stats _ = Stats.create ()

let page_area a p = a.pages_base + (p * page_words)
let free_head_addr a p = a.meta_base + p

(* Per-page size class is implicit: the thread that claimed the page carved
   it for one class; block size is recoverable from the thread table only,
   so frees must pass through the owner (true for our benchmarks, as in the
   paper's threadtest/shbench, which free what they allocated). We stash the
   class in the page's first meta bit-field instead: free head word packs
   {class:8, head:48}. *)
let pack ~cls ~head = cls lor (head lsl 8)
let cls_of w = w land 0xff
let head_of w = w lsr 8

let claim_page th ~cls =
  let a = th.a in
  let p = Mem.fetch_add a.mem ~st:th.st 1 1 in
  if p >= a.num_pages then raise Out_of_memory;
  ignore cls;
  let bw = Size_class.block_words cls in
  let cap = page_words / bw in
  let base = page_area a p in
  for i = 0 to cap - 1 do
    Mem.store a.mem ~st:th.st (base + (i * bw))
      (if i = cap - 1 then 0 else base + ((i + 1) * bw))
  done;
  Mem.store a.mem ~st:th.st (free_head_addr a p) (pack ~cls ~head:base);
  p

(* Walk this thread's page queue for the class; pages with room move to
   the front (mimalloc's page queues). Touching a page meta costs a load. *)
let alloc th ~size_bytes =
  let a = th.a in
  let c = Size_class.class_of_bytes ~page_words size_bytes in
  let pop_from p =
    let w = Mem.load a.mem ~st:th.st (free_head_addr a p) in
    let head = head_of w in
    if head = 0 then None
    else begin
      let next = Mem.load a.mem ~st:th.st head in
      Mem.store a.mem ~st:th.st (free_head_addr a p)
        (pack ~cls:(cls_of w) ~head:next);
      Some head
    end
  in
  let rec from_queue seen = function
    | [] ->
        let p = claim_page th ~cls:c in
        th.pages.(c) <- p :: List.rev_append seen [];
        Option.get (pop_from p)
    | p :: rest -> (
        match pop_from p with
        | Some b ->
            th.pages.(c) <- p :: List.rev_append seen rest;
            b
        | None -> from_queue (p :: seen) rest)
  in
  from_queue [] th.pages.(c)

let free th b =
  let a = th.a in
  let p = (b - a.pages_base) / page_words in
  let w = Mem.load a.mem ~st:th.st (free_head_addr a p) in
  Mem.store a.mem ~st:th.st b (head_of w);
  Mem.store a.mem ~st:th.st (free_head_addr a p) (pack ~cls:(cls_of w) ~head:b)

let write_word th b i v = Mem.store th.a.mem ~st:th.st (b + i) v
let read_word th b i = Mem.load th.a.mem ~st:th.st (b + i)
