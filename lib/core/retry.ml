(* Bounded retry with exponential backoff over transient device faults.

   The paper's RDSM hides most media errors behind the switch; what leaks
   through to a client is either transient (poisoned read, torn store,
   short offline window — a re-issue succeeds) or persistent (stuck media,
   long outage). This module is the client-side policy: re-issue transient
   faults a bounded number of times with exponentially growing (simulated)
   backoff, and escalate everything else so the monitor can mark the
   device degraded and steer allocation away from it.

   The one rule that keeps retries safe in a system built on CAS commit
   points: {e never retry across a commit}. A section hands its commit
   marker to the fault when its effects become visible to other clients
   (e.g. the ModifyRefCnt CAS landed); from then on a re-run would apply
   the effects twice, so a later fault in the same section escalates
   instead of retrying. Single-word primitives have no interior commit
   point and are always safe to re-issue. *)

module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats

type policy = {
  max_attempts : int; (* total attempts, first try included *)
  base_backoff_ns : float; (* simulated delay before the first retry *)
  max_backoff_ns : float; (* exponential growth cap *)
}

let default_policy =
  { max_attempts = 5; base_backoff_ns = 250.; max_backoff_ns = 64_000. }

let no_retry = { max_attempts = 1; base_backoff_ns = 0.; max_backoff_ns = 0. }

let backoff_ns policy attempt =
  Float.min policy.max_backoff_ns
    (policy.base_backoff_ns *. (2. ** float_of_int (attempt - 1)))

let with_retries ?(policy = default_policy) ~(st : Stats.t) ~on_escalate f =
  let committed = ref false in
  let commit () = committed := true in
  let rec go attempt =
    try f commit
    with Mem.Device_error { dev; transient; _ } as e ->
      st.Stats.dev_faults <- st.Stats.dev_faults + 1;
      if transient && (not !committed) && attempt < policy.max_attempts then begin
        st.Stats.retries <- st.Stats.retries + 1;
        st.Stats.backoff_ns <- st.Stats.backoff_ns +. backoff_ns policy attempt;
        go (attempt + 1)
      end
      else begin
        st.Stats.fault_escalations <- st.Stats.fault_escalations + 1;
        on_escalate ~dev;
        raise e
      end
  in
  go 1
