(* Fault injection at the application layer: CXL-KV writers crash at every
   reachable crash point mid-put/delete; a surviving writer takes over the
   partition and the store (and arena) must remain fully consistent. *)

open Cxlshm
module Kv = Cxlshm_kv.Cxl_kv

let kv_cfg = { Config.small with Config.num_segments = 16; pages_per_segment = 8 }

(* Run [steps] deterministic KV ops as the writer, with a crash plan; track
   the model only up to the *last completed* operation — an op interrupted
   by a crash may or may not have applied (both are legal outcomes the
   validator-level checks don't depend on; key-level checks below handle
   the ambiguity). *)
let run_with_crash ~seed ~n =
  let arena = Shm.create ~cfg:kv_cfg () in
  let w0 = Shm.join arena () in
  let w1 = Shm.join arena () in
  let store, h0 = Kv.create w0 ~buckets:32 ~partitions:1 ~value_words:2 in
  assert (Kv.claim_partition h0 0);
  (* the standby writer attaches up front: if the creator held the only
     reference, its death would (correctly!) reclaim the whole store —
     survivors must hold a reference, or the store must be a named root *)
  let h1 = Kv.open_store w1 store in
  (* preload survives outside the crash window *)
  for key = 0 to 19 do
    Kv.put h0 ~key ~value:(100 + key)
  done;
  let model = Hashtbl.create 32 in
  for key = 0 to 19 do
    Hashtbl.replace model key (100 + key)
  done;
  w0.Ctx.fault <- Fault.nth_point ~n;
  let rng = Random.State.make [| seed |] in
  let in_flight = ref None in
  let crashed = ref false in
  (try
     for _ = 1 to 60 do
       let key = Random.State.int rng 30 in
       match Random.State.int rng 4 with
       | 0 ->
           let v = Random.State.int rng 10_000 in
           in_flight := Some (`Put (key, v));
           Kv.put h0 ~key ~value:v;
           Hashtbl.replace model key v;
           in_flight := None
       | 1 ->
           let v = Random.State.int rng 10_000 in
           in_flight := Some (`Put (key, v));
           Kv.put_cow h0 ~key ~value:v;
           Hashtbl.replace model key v;
           in_flight := None
       | 2 ->
           in_flight := Some (`Delete key);
           ignore (Kv.delete h0 ~key);
           Hashtbl.remove model key;
           in_flight := None
       | _ -> ignore (Kv.get h0 ~key)
     done
   with Fault.Crashed _ -> crashed := true);
  (* writer 0 dies; recovery + takeover *)
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:w0.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:w0.Ctx.cid);
  assert (Kv.takeover_partition h1 0);
  (* key-level consistency: every key must read as the model value, except
     the in-flight op's key which may hold either old or new state *)
  let exempt =
    match !in_flight with
    | Some (`Put (k, _)) | Some (`Delete k) when !crashed -> Some k
    | _ -> None
  in
  for key = 0 to 29 do
    if exempt <> Some key then
      let expect = Hashtbl.find_opt model key in
      let got = Kv.get h1 ~key in
      if got <> expect then
        Alcotest.failf "key %d: expected %s, got %s (seed %d crash %d)" key
          (match expect with Some v -> string_of_int v | None -> "-")
          (match got with Some v -> string_of_int v | None -> "-")
          seed n
  done;
  (* the new writer operates normally *)
  Kv.put h1 ~key:0 ~value:31_337;
  Alcotest.(check (option int)) "post-takeover write" (Some 31_337)
    (Kv.get h1 ~key:0);
  Kv.quiesce h1;
  Kv.close h1;
  Client.declare_failed svc ~cid:w1.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:w1.Ctx.cid);
  ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false));
  let v = Shm.validate arena in
  if not (Validate.is_clean v) then
    Alcotest.failf "arena not clean after seed %d crash %d: %s" seed n
      (String.concat "; " v.Validate.errors);
  !crashed

let test_kv_crash_sweep () =
  List.iter
    (fun seed ->
      let rec sweep n =
        if n <= 300 && run_with_crash ~seed ~n then sweep (n + 11)
      in
      sweep 1)
    [ 21; 22; 23 ]

let test_kv_no_crash_baseline () =
  ignore (run_with_crash ~seed:99 ~n:1_000_000)

let suite =
  [
    Alcotest.test_case "kv crash sweep" `Slow test_kv_crash_sweep;
    Alcotest.test_case "kv baseline (no crash)" `Quick test_kv_no_crash_baseline;
  ]
