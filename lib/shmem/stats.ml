type t = {
  mutable cache_hits : int;
  mutable seq_accesses : int;
  mutable rand_accesses : int;
  mutable cas_ops : int;
  mutable cas_hit_ops : int;
  mutable cas_failures : int;
  mutable fences : int;
  mutable flushes : int;
  mutable deferred_flushes : int;
      (* write-backs enqueued by epoch batching; they cost nothing at
         enqueue time and surface as ordinary [flushes] on the op that
         drains the batch, so breakdown_ns charges the trigger, not the
         enqueuer *)
  mutable xdev_accesses : int;
  mutable xdev_ns : float;
  mutable dev_faults : int;
  mutable retries : int;
  mutable backoff_ns : float;
  mutable fault_escalations : int;
  mutable last_line : int;
  cache_tags : int array;
}

let cache_lines = 16_384 (* ~1 MB of 64-B lines, an L2-ish window *)

let create () =
  {
    cache_hits = 0;
    seq_accesses = 0;
    rand_accesses = 0;
    cas_ops = 0;
    cas_hit_ops = 0;
    cas_failures = 0;
    fences = 0;
    flushes = 0;
    deferred_flushes = 0;
    xdev_accesses = 0;
    xdev_ns = 0.0;
    dev_faults = 0;
    retries = 0;
    backoff_ns = 0.0;
    fault_escalations = 0;
    last_line = -1;
    cache_tags = Array.make cache_lines (-1);
  }

let note_line t line =
  let slot = line land (cache_lines - 1) in
  let hit = t.cache_tags.(slot) = line in
  t.cache_tags.(slot) <- line;
  hit

let reset t =
  t.cache_hits <- 0;
  t.seq_accesses <- 0;
  t.rand_accesses <- 0;
  t.cas_ops <- 0;
  t.cas_hit_ops <- 0;
  t.cas_failures <- 0;
  t.fences <- 0;
  t.flushes <- 0;
  t.deferred_flushes <- 0;
  t.xdev_accesses <- 0;
  t.xdev_ns <- 0.0;
  t.dev_faults <- 0;
  t.retries <- 0;
  t.backoff_ns <- 0.0;
  t.fault_escalations <- 0;
  t.last_line <- -1;
  Array.fill t.cache_tags 0 cache_lines (-1)

let copy t =
  {
    cache_hits = t.cache_hits;
    seq_accesses = t.seq_accesses;
    rand_accesses = t.rand_accesses;
    cas_ops = t.cas_ops;
    cas_hit_ops = t.cas_hit_ops;
    cas_failures = t.cas_failures;
    fences = t.fences;
    flushes = t.flushes;
    deferred_flushes = t.deferred_flushes;
    xdev_accesses = t.xdev_accesses;
    xdev_ns = t.xdev_ns;
    dev_faults = t.dev_faults;
    retries = t.retries;
    backoff_ns = t.backoff_ns;
    fault_escalations = t.fault_escalations;
    last_line = t.last_line;
    cache_tags = Array.copy t.cache_tags;
  }

let add acc s =
  acc.cache_hits <- acc.cache_hits + s.cache_hits;
  acc.seq_accesses <- acc.seq_accesses + s.seq_accesses;
  acc.rand_accesses <- acc.rand_accesses + s.rand_accesses;
  acc.cas_ops <- acc.cas_ops + s.cas_ops;
  acc.cas_hit_ops <- acc.cas_hit_ops + s.cas_hit_ops;
  acc.cas_failures <- acc.cas_failures + s.cas_failures;
  acc.fences <- acc.fences + s.fences;
  acc.flushes <- acc.flushes + s.flushes;
  acc.deferred_flushes <- acc.deferred_flushes + s.deferred_flushes;
  acc.xdev_accesses <- acc.xdev_accesses + s.xdev_accesses;
  acc.xdev_ns <- acc.xdev_ns +. s.xdev_ns;
  acc.dev_faults <- acc.dev_faults + s.dev_faults;
  acc.retries <- acc.retries + s.retries;
  acc.backoff_ns <- acc.backoff_ns +. s.backoff_ns;
  acc.fault_escalations <- acc.fault_escalations + s.fault_escalations

let diff after before =
  {
    cache_hits = after.cache_hits - before.cache_hits;
    seq_accesses = after.seq_accesses - before.seq_accesses;
    rand_accesses = after.rand_accesses - before.rand_accesses;
    cas_ops = after.cas_ops - before.cas_ops;
    cas_hit_ops = after.cas_hit_ops - before.cas_hit_ops;
    cas_failures = after.cas_failures - before.cas_failures;
    fences = after.fences - before.fences;
    flushes = after.flushes - before.flushes;
    deferred_flushes = after.deferred_flushes - before.deferred_flushes;
    xdev_accesses = after.xdev_accesses - before.xdev_accesses;
    xdev_ns = after.xdev_ns -. before.xdev_ns;
    dev_faults = after.dev_faults - before.dev_faults;
    retries = after.retries - before.retries;
    backoff_ns = after.backoff_ns -. before.backoff_ns;
    fault_escalations = after.fault_escalations - before.fault_escalations;
    last_line = after.last_line;
    cache_tags = Array.copy after.cache_tags;
  }

let total_accesses t =
  t.cache_hits + t.seq_accesses + t.rand_accesses + t.cas_ops + t.cas_hit_ops

(* Backoff is part of the modeled clock: a retried transient device fault
   really does stall the client for the simulated delay, so leaving it out
   of breakdown_ns/modeled_ns under-reports faulty-backend runs. *)
let breakdown_ns (m : Latency.t) t =
  let access =
    (float_of_int t.cache_hits *. m.hit_ns)
    +. (float_of_int t.seq_accesses *. m.seq_ns)
    +. (float_of_int t.rand_accesses *. m.rand_ns)
    +. (float_of_int t.cas_ops *. m.cas_ns)
    +. (float_of_int t.cas_hit_ops *. m.cas_hit_ns)
    +. t.xdev_ns
  in
  let fence = float_of_int t.fences *. m.fence_ns in
  let flush = float_of_int t.flushes *. m.flush_ns in
  (access, fence, flush, t.backoff_ns)

let modeled_ns m t =
  let access, fence, flush, backoff = breakdown_ns m t in
  access +. fence +. flush +. backoff

(* Scalar snapshot for spans: capturing the handful of counters modeled_ns
   depends on costs a record allocation, not a 16K-entry cache-tag copy, so
   the tracing layer can probe around every hot-path operation. *)
type probe = {
  p_cache_hits : int;
  p_seq : int;
  p_rand : int;
  p_cas : int;
  p_cas_hit : int;
  p_fences : int;
  p_flushes : int;
  p_xdev_ns : float;
  p_backoff_ns : float;
}

let probe t =
  {
    p_cache_hits = t.cache_hits;
    p_seq = t.seq_accesses;
    p_rand = t.rand_accesses;
    p_cas = t.cas_ops;
    p_cas_hit = t.cas_hit_ops;
    p_fences = t.fences;
    p_flushes = t.flushes;
    p_xdev_ns = t.xdev_ns;
    p_backoff_ns = t.backoff_ns;
  }

let probe_ns (m : Latency.t) t ~since:p =
  (float_of_int (t.cache_hits - p.p_cache_hits) *. m.hit_ns)
  +. (float_of_int (t.seq_accesses - p.p_seq) *. m.seq_ns)
  +. (float_of_int (t.rand_accesses - p.p_rand) *. m.rand_ns)
  +. (float_of_int (t.cas_ops - p.p_cas) *. m.cas_ns)
  +. (float_of_int (t.cas_hit_ops - p.p_cas_hit) *. m.cas_hit_ns)
  +. (t.xdev_ns -. p.p_xdev_ns)
  +. (float_of_int (t.fences - p.p_fences) *. m.fence_ns)
  +. (float_of_int (t.flushes - p.p_flushes) *. m.flush_ns)
  +. (t.backoff_ns -. p.p_backoff_ns)

let pp ppf t =
  Format.fprintf ppf
    "hit=%d seq=%d rand=%d cas=%d+%dh(fail %d) fence=%d flush=%d(+%dd) \
     xdev=%d(%+.0fns) faults=%d retries=%d(%.0fns backoff) esc=%d"
    t.cache_hits t.seq_accesses t.rand_accesses t.cas_ops t.cas_hit_ops
    t.cas_failures t.fences t.flushes t.deferred_flushes t.xdev_accesses
    t.xdev_ns t.dev_faults t.retries t.backoff_ns t.fault_escalations
