(* Persistent named roots (§6.4.1): data that outlives every client.

   A writer builds a small configuration tree, publishes its root under a
   name, and dies. Later — with not a single client left alive — a fresh
   client looks the name up and walks the tree. The §6.4.1 "special API"
   for data that must survive even if all clients are temporarily crashed.

   Run: dune exec examples/durable_roots.exe *)

open Cxlshm

let () =
  let arena = Shm.create () in

  (* ---- generation 1: build and publish ---- *)
  let w = Shm.join arena () in
  let root = Shm.cxl_malloc w ~size_bytes:16 ~emb_cnt:2 () in
  Cxl_ref.write_bytes root (Bytes.of_string "cluster-config");
  let replicas = Shm.cxl_malloc w ~size_bytes:8 () in
  Cxl_ref.write_word replicas 0 3;
  let quorum = Shm.cxl_malloc w ~size_bytes:8 () in
  Cxl_ref.write_word quorum 0 2;
  Cxl_ref.set_emb root 0 replicas;
  Cxl_ref.set_emb root 1 quorum;
  Named_roots.publish w ~name:"cluster/config" root;
  List.iter Cxl_ref.drop [ root; replicas; quorum ];
  print_endline "generation 1 published cluster/config";

  (* generation 1 dies without ceremony *)
  Client.declare_failed (Shm.service_ctx arena) ~cid:w.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:w.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  assert (Validate.is_clean v);
  Printf.printf "after total client loss: %d objects still alive (the tree)\n"
    v.Validate.live_objects;

  (* ---- generation 2: rediscover ---- *)
  let r = Shm.join arena () in
  (match Named_roots.lookup r ~name:"cluster/config" with
  | None -> failwith "configuration lost!"
  | Some cfg ->
      Printf.printf "generation 2 found %S\n"
        (Bytes.to_string (Cxl_ref.read_bytes cfg ~len:14));
      (* walk the embedded children zero-copy *)
      let replicas_obj = Cxl_ref.get_emb cfg 0 in
      let quorum_obj = Cxl_ref.get_emb cfg 1 in
      Printf.printf "replicas=%d quorum=%d\n"
        (Ctx.load r (Obj_header.data_of_obj replicas_obj))
        (Ctx.load r (Obj_header.data_of_obj quorum_obj));
      Cxl_ref.drop cfg);

  (* retire the configuration for good *)
  assert (Named_roots.unpublish r ~name:"cluster/config");
  Shm.leave r;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  assert (Validate.is_clean v && v.Validate.live_objects = 0);
  print_endline "durable_roots OK — published data survived all clients"
