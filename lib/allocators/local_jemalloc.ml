module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency

let name = "jemalloc"
let page_words = 512
let tcache_slots = 32

(* Layout: +0 reserved, +1 page bump, +2.. central bin heads (one per
   class, CAS'd), then per-thread tcaches (count + slots per class), then
   page areas. Central bins are Treiber stacks of blocks. *)
type t = {
  mem : Mem.t;
  num_pages : int;
  central_base : int;
  page_map_base : int;  (** class+1 of each carved page *)
  tcache_base : int;
  pages_base : int;
  nclasses : int;
  threads : int;
}

type thread = { a : t; tid : int; st : Stats.t }

let tier _ = Latency.Local_numa

(* +0 count, +1 overflow-chain head (thread-local, no CAS), +2.. slots *)
let tcache_words = 2 + tcache_slots

let create ~words ~threads =
  let nclasses = Size_class.num_classes ~page_words in
  let overhead np = 2 + nclasses + np + (threads * nclasses * tcache_words) in
  let rec fit np =
    if overhead np + (np * page_words) > words then np - 1 else fit (np + 1)
  in
  let num_pages = fit 1 in
  if num_pages < 1 then invalid_arg "Local_jemalloc.create: arena too small";
  let mem = Mem.create ~tier:Latency.Local_numa ~words () in
  {
    mem;
    num_pages;
    central_base = 2;
    page_map_base = 2 + nclasses;
    tcache_base = 2 + nclasses + num_pages;
    pages_base = overhead num_pages;
    nclasses;
    threads;
  }

let thread a tid =
  if tid < 0 || tid >= a.threads then invalid_arg "Local_jemalloc.thread";
  { a; tid; st = Stats.create () }

let stats th = th.st
let serial_stats _ = Stats.create ()

let central_addr a c = a.central_base + c
let tcache_addr a tid c = a.tcache_base + (((tid * a.nclasses) + c) * tcache_words)

(* Carve a fresh page directly into the central bin of class [c]. *)
let refill_central th c =
  let a = th.a in
  let p = Mem.fetch_add a.mem ~st:th.st 1 1 in
  if p >= a.num_pages then raise Out_of_memory;
  Mem.store a.mem ~st:th.st (a.page_map_base + p) (c + 1);
  let bw = Size_class.block_words c in
  let cap = page_words / bw in
  let base = a.pages_base + (p * page_words) in
  (* chain the new blocks, then CAS the chain onto the bin *)
  for i = 0 to cap - 2 do
    Mem.store a.mem ~st:th.st (base + (i * bw)) (base + ((i + 1) * bw))
  done;
  let last = base + ((cap - 1) * bw) in
  let rec splice () =
    let cur = Mem.load a.mem ~st:th.st (central_addr a c) in
    Mem.store a.mem ~st:th.st last cur;
    if not (Mem.cas a.mem ~st:th.st (central_addr a c) ~expected:cur ~desired:base)
    then splice ()
  in
  splice ()

(* Refill the tcache from the thread-local overflow chain; when that is
   empty, swap the whole central bin in with a single CAS (jemalloc batches
   central-bin synchronisation, it never pays a CAS per block). *)
let rec refill_tcache th c =
  let a = th.a in
  let tc = tcache_addr a th.tid c in
  let overflow = tc + 1 in
  let rec swap_central () =
    let cur = Mem.load a.mem ~st:th.st (central_addr a c) in
    if cur = 0 then false
    else if Mem.cas a.mem ~st:th.st (central_addr a c) ~expected:cur ~desired:0
    then begin
      Mem.store a.mem ~st:th.st overflow cur;
      true
    end
    else swap_central ()
  in
  let count = ref (Mem.load a.mem ~st:th.st tc) in
  let target = tcache_slots / 2 in
  let rec fill () =
    if !count < target then begin
      let head = Mem.load a.mem ~st:th.st overflow in
      if head <> 0 then begin
        Mem.store a.mem ~st:th.st overflow (Mem.load a.mem ~st:th.st head);
        Mem.store a.mem ~st:th.st (tc + 2 + !count) head;
        incr count;
        fill ()
      end
      else if swap_central () then fill ()
      else begin
        refill_central th c;
        ignore (swap_central ());
        fill ()
      end
    end
  in
  fill ();
  Mem.store a.mem ~st:th.st tc !count;
  if !count = 0 then refill_tcache th c

let alloc th ~size_bytes =
  let a = th.a in
  let c = Size_class.class_of_bytes ~page_words size_bytes in
  let tc = tcache_addr a th.tid c in
  let count = Mem.load a.mem ~st:th.st tc in
  if count = 0 then begin
    refill_tcache th c;
    let count = Mem.load a.mem ~st:th.st tc in
    let b = Mem.load a.mem ~st:th.st (tc + 1 + count) in
    Mem.store a.mem ~st:th.st tc (count - 1);
    b
  end
  else begin
    let b = Mem.load a.mem ~st:th.st (tc + 1 + count) in
    Mem.store a.mem ~st:th.st tc (count - 1);
    b
  end

let free th b =
  let a = th.a in
  (* Pages are homogeneous; the page map recovers the block's class. *)
  let p = (b - a.pages_base) / page_words in
  let c = Mem.load a.mem ~st:th.st (a.page_map_base + p) - 1 in
  let tc = tcache_addr a th.tid c in
  let count = Mem.load a.mem ~st:th.st tc in
  if count >= tcache_slots - 1 then begin
    (* overflow to the thread-local chain — no synchronisation *)
    let overflow = tc + 1 in
    Mem.store a.mem ~st:th.st b (Mem.load a.mem ~st:th.st overflow);
    Mem.store a.mem ~st:th.st overflow b
  end
  else begin
    Mem.store a.mem ~st:th.st (tc + 2 + count) b;
    Mem.store a.mem ~st:th.st tc (count + 1)
  end

let write_word th b i v = Mem.store th.a.mem ~st:th.st (b + i) v
let read_word th b i = Mem.load th.a.mem ~st:th.st (b + i)
