type client = Rdma_sim.endpoint
type server = Rdma_sim.endpoint

let pair () = Rdma_sim.pair ()

let call ep ~func ~args =
  let req = Serialize.encode { Serialize.func; args } in
  Rdma_sim.send ep req;
  let resp = Rdma_sim.recv ep in
  let e = Serialize.decode resp in
  match e.Serialize.args with [ r ] -> r | _ -> failwith "Rdma_rpc: bad reply"

let send_request ep ~func ~args =
  Rdma_sim.send ep (Serialize.encode { Serialize.func; args })

let try_recv_response ep =
  match Rdma_sim.try_recv ep with
  | None -> None
  | Some resp -> (
      match (Serialize.decode resp).Serialize.args with
      | [ r ] -> Some r
      | _ -> failwith "Rdma_rpc: bad reply")

let serve_one ep ~handler =
  match Rdma_sim.try_recv ep with
  | None -> false
  | Some req ->
      let e = Serialize.decode req in
      let result = handler ~func:e.Serialize.func ~args:e.Serialize.args in
      Rdma_sim.send ep
        (Serialize.encode { Serialize.func = e.Serialize.func; args = [ result ] });
      true

let serve_loop ep ~handler ~stop =
  while not (Atomic.get stop) do
    if not (serve_one ep ~handler) then Domain.cpu_relax ()
  done

let client_modeled_ns = Rdma_sim.modeled_ns
let server_modeled_ns = Rdma_sim.modeled_ns
