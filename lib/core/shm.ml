module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats

type arena = { mem : Mem.t; lay : Layout.t; service : Ctx.t }

(* Resolve the configured backend against the layout: a striped pool with
   stripe_words = 0 stripes at segment granularity, so whole segments map to
   one device and the home-device claim preference is meaningful. The
   resolution recurses through a fault-injection wrapper. *)
let backend_of cfg lay =
  let rec resolve = function
    | Mem.Striped s when s.stripe_words = 0 ->
        Mem.Striped { s with stripe_words = lay.Layout.segment_words }
    | Mem.Faulty f -> Mem.Faulty { f with base = resolve f.base }
    | Mem.Sched b -> Mem.Sched (resolve b)
    | b -> b
  in
  resolve cfg.Config.backend

let mem_of cfg lay =
  Mem.create ~tier:cfg.Config.tier ~backend:(backend_of cfg lay)
    ~words:lay.Layout.total_words ()

let create ?(cfg = Config.default) () =
  let lay = Layout.make cfg in
  let mem = mem_of cfg lay in
  (* The service context acts for other clients (recovery, fsck, scans):
     it must always read shared truth, never a client-local mirror. *)
  let service = Ctx.make ~cache:false ~epoch:false ~mem ~lay ~cid:0 () in
  (* Format the arena header; everything else starts zeroed. *)
  Mem.unsafe_poke mem (Layout.hdr_magic lay) Layout.magic;
  Mem.unsafe_poke mem (Layout.hdr_epoch lay) 1;
  { mem; lay; service }

let mem t = t.mem
let num_devices t = Mem.num_devices t.mem
let layout t = t.lay
let config t = t.lay.Layout.cfg
let service_ctx t = t.service
let join t ?cid () = Client.register ~mem:t.mem ~lay:t.lay ?cid ()
let leave ctx = Client.unregister ctx

let cxl_malloc ctx ~size_bytes ?(emb_cnt = 0) () =
  let data_words =
    Alloc.data_words_for (Ctx.cfg ctx) ~size_bytes ~emb_cnt
  in
  let data_words = max data_words 1 in
  let rr, _obj = Alloc.alloc_obj ctx ~data_words ~emb_cnt in
  Cxl_ref.of_rootref ctx rr

let cxl_malloc_words ctx ~data_words ?(emb_cnt = 0) () =
  if data_words < max emb_cnt 1 then
    invalid_arg "Shm.cxl_malloc_words: data_words too small";
  let rr, _obj = Alloc.alloc_obj ctx ~data_words ~emb_cnt in
  Cxl_ref.of_rootref ctx rr

let validate t = Validate.run t.mem t.lay
let fsck t = Fsck.repair t.service
let set_fault_injection t on = Mem.set_fault_injection t.mem on
let recover t ~failed_cid = Recovery.recover t.service ~failed_cid

let scan_leaking t =
  Reclaim.scan_all t.service ~is_client_alive:(fun cid ->
      Client.is_alive t.service ~cid)

let monitor t ?id () = Monitor.create ~mem:t.mem ~lay:t.lay ?id ()
let evacuate t = Evacuate.run ~mem:t.mem ~lay:t.lay

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Marshal.to_channel oc (config t) [];
      Marshal.to_channel oc (Mem.snapshot t.mem) [])

(* Re-attach without touching anything: no recovery, no leak scan. This is
   what fsck wants — the damage must still be there when it looks. *)
let load_raw ?cfg path =
  let ic = open_in_bin path in
  let saved_cfg, words =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let c : Config.t = Marshal.from_channel ic in
        let w : int array = Marshal.from_channel ic in
        (c, w))
  in
  let cfg = Option.value cfg ~default:saved_cfg in
  let lay = Layout.make cfg in
  if Array.length words <> lay.Layout.total_words then
    invalid_arg "Shm.load: image does not match the configuration";
  let mem = mem_of cfg lay in
  Mem.restore mem words;
  if Mem.unsafe_peek mem (Layout.hdr_magic lay) <> Layout.magic then
    invalid_arg "Shm.load: not a CXL-SHM pool image";
  { mem; lay; service = Ctx.make ~cache:false ~epoch:false ~mem ~lay ~cid:0 () }

let load ?cfg path =
  let t = load_raw ?cfg path in
  let cfg = t.lay.Layout.cfg in
  (* every client recorded alive in the image is gone: reap them *)
  (match Recovery.resume_interrupted t.service with Some _ -> () | None -> ());
  for cid = 0 to cfg.Config.max_clients - 1 do
    if Client.status t.service ~cid <> Client.Slot_free then begin
      Client.declare_failed t.service ~cid;
      ignore (Recovery.recover t.service ~failed_cid:cid)
    end
  done;
  ignore
    (Reclaim.scan_all t.service ~is_client_alive:(fun _ -> false));
  t

let free_segments t =
  let n = (config t).Config.num_segments in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if Segment.owner t.service s = None then incr count
  done;
  !count
