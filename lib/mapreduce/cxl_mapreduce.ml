open Cxlshm
open Cxlshm_rpc
module Mem = Cxlshm_shmem.Mem

type session = {
  arena : Shm.arena;
  master : Ctx.t;
  clients : Cxl_rpc.client array;
  stops : bool Atomic.t;
  domains : unit Domain.t list;
}

let executors s = Array.length s.clients

(* ------------------------------------------------------------------ *)
(* Chunk objects: word 0 = byte length, payload from word 1.           *)
(* ------------------------------------------------------------------ *)

let store_chunk ctx b =
  let len = Bytes.length b in
  let data_words = 1 + Mem.bytes_words len in
  let r = Shm.cxl_malloc_words ctx ~data_words () in
  Cxl_ref.write_word r 0 len;
  let base = Obj_header.data_of_obj (Cxl_ref.obj r) + 1 in
  Mem.write_bytes ctx.Ctx.mem ~st:ctx.Ctx.st base b;
  r

let chunk_bytes v =
  let len = Message.read_word v 0 in
  Message.read_bytes_at v ~word_off:1 ~len

(* ------------------------------------------------------------------ *)

let func_wordcount = 1
let func_kmeans = 2

(* Write [(k, v); ...] into an output view as [n; k1; v1; ...]. *)
let write_pairs out pairs =
  let n = List.length pairs in
  Message.write_word out 0 n;
  List.iteri
    (fun i (k, v) ->
      Message.write_word out (1 + (2 * i)) k;
      Message.write_word out (2 + (2 * i)) v)
    pairs

let read_pairs out =
  let n = Message.read_word out 0 in
  List.init n (fun i ->
      (Message.read_word out (1 + (2 * i)), Message.read_word out (2 + (2 * i))))

let handler ~func ~args ~output =
  match func with
  | f when f = func_wordcount ->
      let chunk =
        match args with [ c ] -> c | _ -> failwith "wordcount: 1 arg expected"
      in
      let job = Mr_job.wordcount ~vocab:max_int in
      let text = chunk_bytes chunk in
      write_pairs output (job.Mr_job.map text)
  | f when f = func_kmeans ->
      let chunk, cents =
        match args with
        | [ c; cc ] -> (c, cc)
        | _ -> failwith "kmeans: 2 args expected"
      in
      let k = Message.read_word cents 0 in
      let dims = Message.read_word cents 1 in
      let centroids =
        Array.init k (fun c ->
            Array.init dims (fun d -> Message.read_word cents (2 + (c * dims) + d)))
      in
      let job = Mr_job.kmeans_assign ~centroids ~dims in
      write_pairs output (job.Mr_job.map (chunk_bytes chunk))
  | f -> failwith (Printf.sprintf "Cxl_mapreduce: unknown function id %d" f)

let task_handler : Cxl_rpc.handler = handler

let start ~arena ~master ~executors:n =
  if n < 1 then invalid_arg "Cxl_mapreduce.start";
  let stops = Atomic.make false in
  let ready = Array.init n (fun _ -> Atomic.make 0) in
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            let ctx = Shm.join arena () in
            Atomic.set ready.(i) (ctx.Ctx.cid + 1);
            let server =
              Cxl_rpc.accept ctx ~client_cid:master.Ctx.cid ~capacity:64
            in
            (* Chunks and the centroid table are master-allocated shared
               objects passed by reference across every executor's channel
               — the attached-shared-heap pattern, not a smuggled pointer. *)
            Cxl_rpc.allow_peer_segments server;
            Cxl_rpc.serve_until server ~handler ~stop:stops;
            Cxl_rpc.close_server server;
            Shm.leave ctx))
  in
  let clients =
    Array.init n (fun i ->
        let rec wait () =
          let c = Atomic.get ready.(i) in
          if c = 0 then (Domain.cpu_relax (); wait ()) else c - 1
        in
        let cid = wait () in
        Cxl_rpc.connect master ~server_cid:cid ~capacity:64)
  in
  { arena; master; clients; stops; domains }

let stop s =
  Atomic.set s.stops true;
  List.iter Domain.join s.domains;
  Array.iter Cxl_rpc.close_client s.clients

(* Dispatch one map task per chunk, round-robin, then merge. *)
let run_maps s ~func ~chunk_args ~output_words ~combine =
  let pendings =
    List.mapi
      (fun i args ->
        let client = s.clients.(i mod Array.length s.clients) in
        Cxl_rpc.call_async client ~func ~args ~output_bytes:(output_words * 7))
      chunk_args
  in
  let merged = Hashtbl.create 1024 in
  List.iter
    (fun p ->
      let out = Cxl_rpc.finish p in
      List.iter
        (fun (k, v) ->
          Hashtbl.replace merged k
            (match Hashtbl.find_opt merged k with
            | Some v0 -> combine v0 v
            | None -> v))
        (read_pairs (Message.view_of_ref out));
      Cxl_ref.drop out)
    pendings;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])

let wordcount s ~chunks ~vocab =
  (* A chunk cannot produce more distinct keys than min(vocab, tokens). *)
  run_maps s ~func:func_wordcount
    ~chunk_args:(List.map (fun c -> [ c ]) chunks)
    ~output_words:(1 + (2 * min vocab 4096))
    ~combine:( + )

let kmeans s ~chunks ~k ~dims ~iters =
  (* Centroids: one shared object, master-written, executor-read. *)
  let cents =
    Shm.cxl_malloc_words s.master ~data_words:(2 + (k * dims)) ()
  in
  Cxl_ref.write_word cents 0 k;
  Cxl_ref.write_word cents 1 dims;
  let centroids =
    Array.init k (fun c -> Array.init dims (fun d -> ((c * 37) + d) * 1000))
  in
  let publish () =
    Array.iteri
      (fun c row ->
        Array.iteri
          (fun d x -> Cxl_ref.write_word cents (2 + (c * dims) + d) x)
          row)
      centroids
  in
  let rec iterate i =
    if i < iters then begin
      publish ();
      let combined =
        run_maps s ~func:func_kmeans
          ~chunk_args:(List.map (fun c -> [ c; cents ]) chunks)
          ~output_words:(1 + (2 * k * (dims + 1)))
          ~combine:( + )
      in
      let moved = Mr_job.kmeans_update ~k ~dims combined centroids in
      if moved then iterate (i + 1)
    end
  in
  iterate 0;
  Cxl_ref.drop cents;
  centroids
