(** Pass-by-value RPC over the simulated RDMA transport (Fig 8 baseline).

    The traditional shape CXL-RPC is compared against: every argument is
    serialised into the wire buffer, copied across the "network", and
    deserialised on the other side; results travel back the same way. *)

type client
type server

val pair : unit -> client * server

val call : client -> func:int -> args:bytes list -> bytes
(** Synchronous request/response. *)

val send_request : client -> func:int -> args:bytes list -> unit
val try_recv_response : client -> bytes option
(** Lockstep driving for single-threaded benchmarks. *)

val serve_one : server -> handler:(func:int -> args:bytes list -> bytes) -> bool
(** Process one pending request; [false] if none waiting. *)

val serve_loop : server -> handler:(func:int -> args:bytes list -> bytes) -> stop:bool Atomic.t -> unit

val client_modeled_ns : client -> float
val server_modeled_ns : server -> float
