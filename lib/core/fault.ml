exception Crashed of string

type point =
  | Alloc_after_rootref
  | Alloc_after_link
  | Alloc_after_advance
  | Alloc_after_header
  | Txn_after_redo
  | Txn_after_cas
  | Txn_after_modify_ref
  | Change_after_first_cas
  | Change_after_first_era
  | Change_after_second_cas
  | Change_after_modify_ref
  | Release_before_reclaim
  | Release_mid_reclaim
  | Send_after_attach
  | Recv_after_attach
  | Recv_after_detach
  | Recv_after_advance
  | Slowpath_after_page_claim
  | Slowpath_after_segment_claim
  | Free_huge_mid_release
  | Free_huge_after_reset
  | Recovery_mid_phases
  | Move_after_link
  | Move_after_clear
  | Retire_after_seal
  | Retire_mid_batch
  | Retire_after_batch
  | Lead_after_acquire
  | Lead_after_depose
  | Evac_after_copy
  | Evac_after_repoint
  | Evac_before_release
  | Park_after_append
  | Adopt_mid_journal
  | Adopt_after_claim
  | Adopt_after_append
  | Rpc_before_status

let point_name = function
  | Alloc_after_rootref -> "alloc-after-rootref"
  | Alloc_after_link -> "alloc-after-link"
  | Alloc_after_advance -> "alloc-after-advance"
  | Alloc_after_header -> "alloc-after-header"
  | Txn_after_redo -> "txn-after-redo"
  | Txn_after_cas -> "txn-after-cas"
  | Txn_after_modify_ref -> "txn-after-modify-ref"
  | Change_after_first_cas -> "change-after-first-cas"
  | Change_after_first_era -> "change-after-first-era"
  | Change_after_second_cas -> "change-after-second-cas"
  | Change_after_modify_ref -> "change-after-modify-ref"
  | Release_before_reclaim -> "release-before-reclaim"
  | Release_mid_reclaim -> "release-mid-reclaim"
  | Send_after_attach -> "send-after-attach"
  | Recv_after_attach -> "recv-after-attach"
  | Recv_after_detach -> "recv-after-detach"
  | Recv_after_advance -> "recv-after-advance"
  | Slowpath_after_page_claim -> "slowpath-after-page-claim"
  | Slowpath_after_segment_claim -> "slowpath-after-segment-claim"
  | Free_huge_mid_release -> "free-huge-mid-release"
  | Free_huge_after_reset -> "free-huge-after-reset"
  | Recovery_mid_phases -> "recovery-mid-phases"
  | Move_after_link -> "move-after-link"
  | Move_after_clear -> "move-after-clear"
  | Retire_after_seal -> "retire-after-seal"
  | Retire_mid_batch -> "retire-mid-batch"
  | Retire_after_batch -> "retire-after-batch"
  | Lead_after_acquire -> "lead-after-acquire"
  | Lead_after_depose -> "lead-after-depose"
  | Evac_after_copy -> "evac-after-copy"
  | Evac_after_repoint -> "evac-after-repoint"
  | Evac_before_release -> "evac-before-release"
  | Park_after_append -> "park-after-append"
  | Adopt_mid_journal -> "adopt-mid-journal"
  | Adopt_after_claim -> "adopt-after-claim"
  | Adopt_after_append -> "adopt-after-append"
  | Rpc_before_status -> "rpc-before-status"

let all_points =
  [
    Alloc_after_rootref;
    Alloc_after_link;
    Alloc_after_advance;
    Alloc_after_header;
    Txn_after_redo;
    Txn_after_cas;
    Txn_after_modify_ref;
    Change_after_first_cas;
    Change_after_first_era;
    Change_after_second_cas;
    Change_after_modify_ref;
    Release_before_reclaim;
    Release_mid_reclaim;
    Send_after_attach;
    Recv_after_attach;
    Recv_after_detach;
    Recv_after_advance;
    Slowpath_after_page_claim;
    Slowpath_after_segment_claim;
    Free_huge_mid_release;
    Free_huge_after_reset;
    Recovery_mid_phases;
    Move_after_link;
    Move_after_clear;
    Retire_after_seal;
    Retire_mid_batch;
    Retire_after_batch;
    Lead_after_acquire;
    Lead_after_depose;
    Evac_after_copy;
    Evac_after_repoint;
    Evac_before_release;
    Park_after_append;
    Adopt_mid_journal;
    Adopt_after_claim;
    Adopt_after_append;
    Rpc_before_status;
  ]

type mode =
  | Never
  | At of point * int
  | Random of Random.State.t * int * float (* state, seed, probability *)
  | Nth of int

type plan = { mode : mode; mutable seen : int; counts : (point, int) Hashtbl.t }

let make mode = { mode; seen = 0; counts = Hashtbl.create 8 }
let none = make Never
let at p ~nth = make (At (p, nth))

let random ~seed ~probability =
  make (Random (Random.State.make [| seed |], seed, probability))

let nth_point ~n = make (Nth n)
let hits plan = plan.seen

(* Scheduler observation hook: the [lib/check] explorer registers here so
   labeled crash points double as named yield points — even under a [Never]
   plan, every critical window becomes a place the cooperative scheduler can
   preempt or kill the running logical client. *)
let on_point : (point -> unit) option ref = ref None

let maybe_crash plan point =
  (match !on_point with Some f -> f point | None -> ());
  plan.seen <- plan.seen + 1;
  let count = (try Hashtbl.find plan.counts point with Not_found -> 0) + 1 in
  Hashtbl.replace plan.counts point count;
  let fire =
    match plan.mode with
    | Never -> false
    | At (p, nth) -> p = point && count = nth
    | Random (st, _, p) -> Random.State.float st 1.0 < p
    | Nth n -> plan.seen = n
  in
  if fire then
    match plan.mode with
    | Random (_, seed, _) ->
        (* A random firing is only useful if it can be replayed: the n-th
           overall hit is exactly what [nth_point ~n] re-fires. *)
        raise
          (Crashed
             (Printf.sprintf "%s (replay: seed=%d, nth_point ~n:%d)"
                (point_name point) seed plan.seen))
    | Never | At _ | Nth _ -> raise (Crashed (point_name point))
