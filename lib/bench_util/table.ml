type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let cell_f v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v

let cell_i = string_of_int

let to_string t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        Buffer.add_string buf (Printf.sprintf "%-*s" w cell);
        if c < ncols - 1 then Buffer.add_string buf "  ")
      row;
    Buffer.add_char buf '\n'
  in
  render t.columns;
  render (List.map (fun w -> String.make w '-') widths);
  List.iter render rows;
  Buffer.contents buf

let print t = print_string (to_string t)
