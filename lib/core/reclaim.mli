(** Reference release and memory reclamation (§5.3).

    Releasing the last reference to an object must also reclaim its block —
    but pushing a block onto a free list is not idempotent, so it can never
    be redone by recovery. The paths here are ordered so that every crash
    window is covered either by transaction resume or by the
    POTENTIAL_LEAKING segment marking plus the asynchronous segment-local
    full scan:

    - when the releasing client holds the {e only} reference (the common
      case), embedded children are detached {e before} the final detach, so
      a crash mid-teardown leaves the parent alive and recoverable;
    - when a concurrent release races the count to zero, the segment is
      marked POTENTIAL_LEAKING before teardown, so nothing is lost if the
      client dies mid-way. *)

val release_obj : Ctx.t -> ref_addr:Cxlshm_shmem.Pptr.t -> obj:Cxlshm_shmem.Pptr.t -> unit
(** Detach [ref_addr] from [obj]; if the count reaches zero, tear down
    embedded references recursively and reclaim the block. *)

val release_rootref : Ctx.t -> Cxlshm_shmem.Pptr.t -> unit
(** Drop one local count from a RootRef; at zero, unlink it from its object
    (era transaction), release the object if that was the last reference,
    and return the RootRef block to its page. With epoch batching on
    ({!Ctx.epoch_enabled}), the zero-count rootref parks in the volatile
    retirement buffer instead; a full buffer triggers {!flush_retired}. *)

val retire_one : Ctx.t -> Cxlshm_shmem.Pptr.t -> unit
(** Fully retire one journaled rootref (redo-free top-level detach, then
    free the rootref — the per-entry completion marker). Exposed for
    {!flush_retired} replay from the recovery service. *)

val flush_retired : Ctx.t -> unit
(** Seal and process the parked retirements ({!Epoch.flush_retired} with
    {!retire_one}): one fence + one journal flush per batch of up to
    [Config.epoch_batch] retirements. Call at era boundaries and before
    detach/unregister. No-op (bar draining deferred write-backs) when the
    buffer is empty. *)

val teardown_children : Ctx.t -> as_cid:int -> obj:Cxlshm_shmem.Pptr.t -> unit
(** Detach every non-null embedded reference of [obj] (recursively releasing
    children that reach zero). Exposed for the recovery service. *)

val mark_leaking_of : Ctx.t -> Cxlshm_shmem.Pptr.t -> unit
(** Mark the segment containing [obj] POTENTIAL_LEAKING (idempotent). *)

val scan_segment : Ctx.t -> int -> bool
(** §5.3 asynchronous segment-local full scan: if every block of the
    segment has reference count zero (computed positions — pages are carved
    into fixed-size blocks), recycle the whole segment. Returns [true] when
    the segment was recycled. Only meaningful for [Leaking] or [Orphaned]
    segments without a live owner. *)

val scan_all : Ctx.t -> is_client_alive:(int -> bool) -> int
(** Run {!scan_segment} over every recyclable segment; returns the number
    recycled. *)
