(** Job definitions shared by CXL-MapReduce and the Phoenix baseline.

    A job maps a byte chunk to (int key, int value) pairs and merges values
    with an associative [combine]. Map results are written into fixed-width
    word buffers ([n, k1, v1, k2, v2, ...]) so the CXL side can store them
    as in-place shared objects (no serialisation — just words). *)

type job = {
  name : string;
  map : bytes -> (int * int) list;
  combine : int -> int -> int;
  output_words : int;  (** buffer bound: 1 + 2 * max distinct keys *)
}

val wordcount : vocab:int -> job
(** Tokenises on spaces; keys are word hashes (vocabulary "w<i>" maps back
    to [i] so results are exact). *)

val kmeans_assign : centroids:int array array -> dims:int -> job
(** One k-means iteration's map: assign each point (consecutive [dims]
    fixed-point words per point, decoded from the chunk) to its nearest
    centroid; emits per-centroid partial sums and counts. Keys encode
    (centroid, dim) pairs; key [c * (dims + 1) + dims] carries counts. *)

val kmeans_update :
  k:int -> dims:int -> (int * int) list -> int array array -> bool
(** Fold the combined map output into new centroid positions; returns
    [true] if any centroid moved. *)

val encode_points : int array array -> bytes
val decode_points : bytes -> dims:int -> int array array
