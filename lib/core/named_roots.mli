(** Persistent named roots (§6.4.1).

    "Some persistent root objects (akin to pmem allocators) are needed if
    users intend to keep alive certain data even if all clients are
    temporarily crashed. This functionality can be implemented by adding a
    special API to CXL-SHM." — this is that API.

    The arena keeps a small well-known directory of name → counted object
    reference. A published object survives the death of {e every} client:
    its directory entry holds a reference of its own, recovery never touches
    completed entries, and a later client can {!lookup} the name to re-hang
    the data. Publication/removal are resumable era transactions: a client
    dying mid-publish leaves a half-claimed slot that its recovery rolls
    back or completes.

    Names are matched by 40-bit hash (collisions raise on [publish]). *)

exception Name_taken of string
exception Directory_full

val publish : Ctx.t -> name:string -> Cxl_ref.t -> unit
(** Register [name] → the handle's object; the directory takes its own
    counted reference (the caller keeps its handle). *)

val lookup : Ctx.t -> name:string -> Cxl_ref.t option
(** Take a fresh counted reference to the named object. *)

val unpublish : Ctx.t -> name:string -> bool
(** Drop the directory's reference (the object dies if that was the last
    one). [false] if the name is not present. *)

val names_hashes : Ctx.t -> int list
(** Hashes of currently published names (introspection). *)

val recover_endpoints : Ctx.t -> failed_cid:int -> unit
(** Roll back / complete half-done publish/unpublish operations of a dead
    client. Completed entries are left alone — that is the point. *)

val directory_refs : Cxlshm_shmem.Mem.t -> Layout.t -> Cxlshm_shmem.Pptr.t list
(** Validator helper: object pointers currently held by the directory. *)

val clear_wild_directory_refs :
  Cxlshm_shmem.Mem.t -> Layout.t -> valid:(Cxlshm_shmem.Pptr.t -> bool) -> int
(** Fsck helper (offline use only): drop every published name whose object
    pointer fails [valid]; returns how many slots were cleared. *)
