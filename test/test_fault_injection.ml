(* §6.2.2 crash-consistency validation: run a randomized multi-client
   workload with a crash injected at every reachable critical point, then
   recover and check the arena for leaks, double frees and wild pointers. *)

open Cxlshm

(* A deterministic workload: clients allocate, clone, link embedded refs,
   re-point them, exchange references through queues, and release — the
   full §5 surface. Returns when [steps] operations ran or a client
   crashed. *)
let run_workload ~seed ~steps ~(plan : int -> Fault.plan) =
  let arena = Shm.create ~cfg:Config.small () in
  let n_clients = 3 in
  let clients = Array.init n_clients (fun _ -> Shm.join arena ()) in
  Array.iteri (fun i c -> c.Ctx.fault <- plan i) clients;
  let rng = Random.State.make [| seed |] in
  let held = Array.make n_clients [] in
  (* Reference counting cannot collect cycles (a limitation the paper
     inherits), so the workload keeps the object graph acyclic: an embedded
     link is only created from an older object to a newer one. *)
  let birth : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let birth_counter = ref 0 in
  let stamp obj = try Hashtbl.find birth obj with Not_found -> max_int in
  let send_queues : (int * int, Transfer.t) Hashtbl.t = Hashtbl.create 8 in
  let recv_queues : (int * int, Transfer.t) Hashtbl.t = Hashtbl.create 8 in
  let crashed = ref None in
  let step who =
    let c = clients.(who) in
    match Random.State.int rng 8 with
    | 0 | 1 ->
        let emb = Random.State.int rng 3 in
        let r = Shm.cxl_malloc c ~size_bytes:(8 + Random.State.int rng 56) ~emb_cnt:emb () in
        incr birth_counter;
        Hashtbl.replace birth (Cxl_ref.obj r) !birth_counter;
        held.(who) <- r :: held.(who)
    | 2 -> (
        match held.(who) with
        | r :: _ -> held.(who) <- Cxl_ref.clone r :: held.(who)
        | [] -> ())
    | 3 -> (
        match held.(who) with
        | r :: rest ->
            held.(who) <- rest;
            Cxl_ref.drop r
        | [] -> ())
    | 4 -> (
        (* link an embedded ref parent -> child *)
        match held.(who) with
        | p :: ch :: _
          when Cxl_ref.emb_cnt p > 0
               && stamp (Cxl_ref.obj p) < stamp (Cxl_ref.obj ch) ->
            let i = Random.State.int rng (Cxl_ref.emb_cnt p) in
            if Cxl_ref.get_emb p i = 0 then Cxl_ref.set_emb p i ch
            else if stamp (Cxl_ref.get_emb p i) < stamp (Cxl_ref.obj ch) then
              Cxl_ref.change_emb p i ch
        | _ -> ())
    | 5 -> (
        match held.(who) with
        | p :: _ when Cxl_ref.emb_cnt p > 0 ->
            Cxl_ref.clear_emb p (Random.State.int rng (Cxl_ref.emb_cnt p))
        | _ -> ())
    | 6 -> (
        (* send to a random other client *)
        let peer = (who + 1 + Random.State.int rng (n_clients - 1)) mod n_clients in
        match held.(who) with
        | r :: _ ->
            let q =
              match Hashtbl.find_opt send_queues (who, peer) with
              | Some q -> q
              | None ->
                  let q = Transfer.connect c ~receiver:clients.(peer).Ctx.cid ~capacity:4 in
                  Hashtbl.replace send_queues (who, peer) q;
                  q
            in
            ignore (Transfer.send q r)
        | [] -> ())
    | 7 -> (
        (* receive from a random sender *)
        let peer = (who + 1 + Random.State.int rng (n_clients - 1)) mod n_clients in
        match Hashtbl.find_opt recv_queues (peer, who) with
        | Some q -> (
            match Transfer.receive q with
            | Transfer.Received r -> held.(who) <- r :: held.(who)
            | Transfer.Empty | Transfer.Drained -> ())
        | None -> (
            match Transfer.open_from c ~sender:clients.(peer).Ctx.cid with
            | Some q -> Hashtbl.replace recv_queues (peer, who) q
            | None -> ()))
    | _ -> ()
  in
  (try
     for s = 0 to steps - 1 do
       (* Every shared-memory effect in a step belongs to the stepping
          client, so a Crashed exception identifies it. *)
       try step (s mod n_clients)
       with Fault.Crashed p -> raise (Fault.Crashed (Printf.sprintf "%d:%s" (s mod n_clients) p))
     done
   with Fault.Crashed tagged ->
     let who = int_of_string (List.hd (String.split_on_char ':' tagged)) in
     crashed := Some who);
  (arena, clients, held, !crashed)

let finish_and_validate ~label (arena, clients, held, crashed) =
  let svc = Shm.service_ctx arena in
  (match crashed with
  | Some who ->
      Client.declare_failed svc ~cid:clients.(who).Ctx.cid;
      ignore (Recovery.recover svc ~failed_cid:clients.(who).Ctx.cid)
  | None -> ());
  (* Survivors exit cleanly: drop everything they hold. *)
  Array.iteri
    (fun i c ->
      if crashed <> Some i then begin
        c.Ctx.fault <- Fault.none;
        List.iter (fun r -> if Cxl_ref.is_live r then Cxl_ref.drop r) held.(i)
      end)
    clients;
  (* Declare everyone else dead too so queue endpoints get reaped; this
     models the end of the run, not additional crashes. *)
  Array.iteri
    (fun i c ->
      if crashed <> Some i then begin
        Client.declare_failed svc ~cid:c.Ctx.cid;
        ignore (Recovery.recover svc ~failed_cid:c.Ctx.cid)
      end)
    clients;
  ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false));
  let v = Shm.validate arena in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s" label
       (String.concat "; " (match v.Validate.errors with [] -> [ "clean" ] | e -> e)))
    true
    (Validate.is_clean v);
  Alcotest.(check int) (label ^ ": nothing left alive") 0 v.Validate.live_objects

let test_no_crash_baseline () =
  let r = run_workload ~seed:42 ~steps:400 ~plan:(fun _ -> Fault.none) in
  finish_and_validate ~label:"baseline" r

let test_crash_sweep () =
  (* For several seeds, crash client 0 at the n-th crash point it reaches,
     sweeping n until the workload completes without crashing. *)
  List.iter
    (fun seed ->
      let rec sweep n =
        if n <= 400 then begin
          let ((_, _, _, crashed) as r) =
            run_workload ~seed ~steps:150 ~plan:(fun i ->
                if i = 0 then Fault.nth_point ~n else Fault.none)
          in
          finish_and_validate
            ~label:(Printf.sprintf "seed %d crash@%d" seed n)
            r;
          if crashed <> None then sweep (n + 7)
        end
      in
      sweep 1)
    [ 1; 2; 3 ]

let test_random_crash_storm () =
  (* Every client can crash with low probability at any point. *)
  List.iter
    (fun seed ->
      let r =
        run_workload ~seed ~steps:300 ~plan:(fun i ->
            Fault.random ~seed:(seed + i) ~probability:0.002)
      in
      finish_and_validate ~label:(Printf.sprintf "storm seed %d" seed) r)
    [ 11; 12; 13; 14; 15 ]

let suite =
  [
    Alcotest.test_case "baseline (no crash)" `Quick test_no_crash_baseline;
    Alcotest.test_case "crash sweep" `Slow test_crash_sweep;
    Alcotest.test_case "random crash storm" `Quick test_random_crash_storm;
  ]
