(** The built-in models: small concurrent protocols whose interleavings
    (and crash points) the explorer enumerates, each paired with the
    oracle that must hold afterwards.

    The arena models ([transfer], [refc]) recover every crashed client the
    way the monitor would, then require a leak-free, count-consistent,
    fsck-clean pool and a causally sane era matrix. *)

val spsc : ?capacity:int -> ?values:int -> unit -> Explore.model
(** Producer pushes [1..values] through a [capacity]-slot ring, consumer
    pops them. Branches at {e every} word access. Oracle: consecutive
    FIFO prefix, head/tail sanity. *)

val transfer :
  ?capacity:int -> ?values:int -> ?batched:bool -> unit -> Explore.model
(** Exactly-once reference handoff between two arena clients through a
    {!Cxlshm.Transfer} queue. Branches at labeled crash points and poll
    yields. With [~batched:true] (model name ["transfer-batch"]) the run
    moves through {!Cxlshm.Transfer.send_batch}/[receive_batch], exploring
    the single-commit-point batch publish. *)

val refc : ?rounds:int -> unit -> Explore.model
(** Two clients churning parent/child object graphs: era refcount
    transactions plus shared-allocator contention. Branches at labeled
    crash points and poll yields. *)

val huge : ?rounds:int -> unit -> Explore.model
(** Two clients allocating and freeing two-segment huge objects on a small
    segment pool: exercises the contiguous-run claim and the tail-first
    [free_huge] release through its crash windows. *)

val epoch_retire : ?rounds:int -> unit -> Explore.model
(** The [refc] workload with [Config.epoch_batch = 2]: zero-count rootrefs
    park in the volatile buffer and every round seals, journals, and
    replays one retirement batch, branching at the three [Retire_*] crash
    points. Model name ["epoch-retire"]. *)

val sharded_alloc : ?values:int -> unit -> Explore.model
(** Three clients over [Config.num_domains = 2]: cross-client frees park
    blocks on domain shard stacks; same-domain pops and cross-domain
    CAS-steals race crashes while parked stamps pin the donor segments.
    Model name ["sharded-alloc"]. *)

val lease : ?passes:int -> unit -> Explore.model
(** One client churning a small graph while a monitor's detection passes
    race its heartbeat renewals: suspicion and self-heal are reachable
    in-run, and the oracle reaps the (hung, never-unregistering) client
    through the lease machinery alone — no [declare_failed] anywhere. *)

val dual_monitor : ?passes:int -> unit -> Explore.model
(** Two monitor replicas race leader election, takeover and recovery of a
    silent worker; crashes land inside the leadership handoff and the
    recovery instruction stream, which the surviving (or settle) replica
    must resume. Oracle also requires exactly one death dump per failure
    incident across all replicas. Model name ["dual-monitor"]. *)

val evacuate : ?rounds:int -> unit -> Explore.model
(** A still-referenced object stranded on a degraded device of a 2-device
    striped pool is drained by an evacuation sweep while its holder's owner
    keeps allocating; crashes land at the [Evac_*] copy/re-point/release
    windows. Oracle: after recovery plus one clean convergence sweep, the
    degraded device holds zero live segments and the payload survived. *)

val kv_serve : unit -> Explore.model
(** A KV writer COW-updates a key, runs a reclamation pass, and reuses the
    record size class, while a reader walks the same bucket chain (every
    record visit is a schedule point). Oracle: the reader observes the old
    or the new value — never a freed record's bytes — and the pool is
    fsck-clean after recovering any crash, including a writer death inside
    [put_cow]. The [mutation_unconditional_quiesce] flag re-introduces
    era-blind reclamation, which this model must catch. *)

val kv_serve_recover : unit -> Explore.model
(** Crash-then-recover variant of [kv_serve] (model name
    ["kv-serve-recover"]): the writer COW-updates and quiesces while a
    reader is pinned mid-bucket-walk, and a third client — playing the
    monitor — recovers any writer crash {e interleaved with} the reader's
    steps, takes over the partition, adopts the journaled parked records
    ([Cxl_kv.adopt_recovered]) and allocates from the record's size class
    (over one shard domain, so an era-blind free is provably reused).
    Oracle: the pinned reader never observes the 0xDEAD decoy. The
    [Recovery.mutation_crash_reap] flag re-introduces the historical
    era-blind reap of the dead writer's parked list, which the
    bounded-exhaustive crash search must catch. *)

val rpc_isolate : unit -> Explore.model
(** An RPC client makes one well-formed in-channel call and one carrying a
    smuggled out-of-channel pointer, a server serves both, and a monitor
    recovers any client crash {e interleaved with} the serving — then
    reuses (with a pin-placed 0xDEAD decoy) any sub-heap segment channel
    revocation returned to the arena. Oracle: the good call's output is
    exactly the handler's write, the smuggled call is rejected without
    running the handler, the handler never reads the decoy, and the pool is
    fsck-clean after recovery. The [Cxl_rpc.mutation_skip_validate] and
    [Cxl_rpc.mutation_unfenced_status] flags re-introduce the historical
    missing validation walk / unfenced completion publish, which this model
    must catch. Model name ["rpc-isolate"]. *)

val all : unit -> Explore.model list

val find : string -> Explore.model
(** Raises [Invalid_argument] for an unknown model name. *)
