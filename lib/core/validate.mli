(** Whole-arena invariant checker (the §6.2.2 post-crash oracle).

    Walks the quiesced arena and cross-checks three independent sources of
    truth: reference holders (in-use RootRefs, embedded slots of live
    objects, queue-directory entries), object headers (reference counts),
    and the free structures (page free chains, segment cross-client
    stacks). It reports:

    - {b wild pointers}: a held reference that does not point at the base
      of a block in an initialised page (or a huge object);
    - {b double frees}: a block present twice in free structures, or both
      free and live;
    - {b count mismatches}: header count ≠ number of holders;
    - {b leaks}: a count-zero block that is in no free structure and whose
      segment is not awaiting the POTENTIAL_LEAKING / orphan scan;
    - {b pending}: count-zero off-list blocks that {e are} covered by a
      pending scan (allowed by design, §5.3).

    Run only on a quiesced arena (no in-flight operations). *)

type t = {
  live_objects : int;  (** live CXLObjs (count > 0) *)
  live_rootrefs : int;  (** in-use RootRef blocks *)
  free_blocks : int;
  pending_scan : int;
  leaks : int;
  double_frees : int;
  wild_pointers : int;
  count_mismatches : int;
  errors : string list;  (** human-readable detail for every failure *)
}

val run : Cxlshm_shmem.Mem.t -> Layout.t -> t
val is_clean : t -> bool
val pp : Format.formatter -> t -> unit

val block_base_ok : Cxlshm_shmem.Mem.t -> Layout.t -> int -> bool
(** Is [p] the base of a block a reference could legally name? Pure
    metadata peeks — range, segment/page bounds, initialised non-rootref
    page kind, block alignment, huge-head special case — and never a
    dereference of [p] itself, so it is safe to ask about arbitrary or
    hostile words. The RPC receive-side validation walk
    ({!Cxlshm_rpc.Cxl_rpc}) uses it to vet embedded pointers before
    touching them. *)
