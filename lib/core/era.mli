(** The M×M era matrix (Fig 4 (a)).

    Era[i][i] is client i's current era, a strictly increasing counter
    advanced after each committed refcount transaction. Era[i][j] (i ≠ j) is
    the largest era of client j that client i has observed in an object
    header. The matrix doubles as a set of distributed vector clocks: during
    recovery of client i, the i-th *column* tells whether i's last
    transaction committed (Condition 2 of §4.3). Rows are single-writer —
    only client i (or recovery acting for dead i) writes row i. *)

val initial : int
(** Eras start at 1 so that era 0 in a header means "never touched". *)

val self : Ctx.t -> int
(** Era[cid][cid] — the client's current era. *)

val read : Ctx.t -> i:int -> j:int -> int
(** Era[i][j], read with this client's stats attribution. *)

val observe : Ctx.t -> saw_cid:int -> saw_era:int -> unit
(** Record "I saw era [saw_era] of client [saw_cid]" (Fig 4 (c) lines 5-6):
    raises Era[cid][saw_cid] to [saw_era] if it is smaller. *)

val advance : Ctx.t -> unit
(** Era[cid][cid]++ — commit-epilogue of a transaction (line 12). *)

val advance_for : Ctx.t -> cid:int -> unit
(** Recovery helper: advance the era of a *dead* client whose instruction
    stream the recovery service is finishing. *)

val observe_for : Ctx.t -> cid:int -> saw_cid:int -> saw_era:int -> unit
(** {!observe} on behalf of a dead client whose stream recovery resumes. *)

val self_of : Ctx.t -> cid:int -> int
(** Era[cid][cid] of an arbitrary client (recovery-side read). *)

val max_seen_by_others : Ctx.t -> cid:int -> int
(** max over j ≠ cid of Era[j][cid] — the right-hand side of Condition 2. *)

val init_row : Ctx.t -> unit
(** Zero the client's row and set Era[cid][cid] to {!initial}; called when a
    client slot is (re)registered. *)
