(** CXLObj header packing (Fig 4 (b)).

    Each allocated object starts with two words:

    - word 0 — the CAS word: last client id ([lcid]), era of the last
      refcount transaction ([lera]) and the reference count ([ref_cnt]),
      packed so the whole triple updates with a single compare-and-swap.
      This is the commit point of every refcount maintenance transaction.
    - word 1 — static metadata: page kind (size class) and the number of
      embedded references ([emb_cnt], §5.4), which recovery uses to DFS into
      an object that must be torn down.

    [lcid] is stored as cid+1 so that the all-zero word of a never-touched
    block reads as "no last client, era 0, count 0". *)

type t = { lcid : int option; lera : int; ref_cnt : int }

val zero : t
val pack : t -> int
val unpack : int -> t

val max_era : int
val max_ref_cnt : int
val max_clients_representable : int

val make : lcid:int -> lera:int -> ref_cnt:int -> int
(** Pack directly from fields; [lcid] is a real client id (not +1). *)

val ref_cnt_of : int -> int
val lera_of : int -> int
val lcid_of : int -> int option

(** {1 Meta word (word 1)} *)

val pack_meta : kind:int -> emb_cnt:int -> data_words:int -> int
val meta_kind : int -> int
val meta_emb_cnt : int -> int
val meta_data_words : int -> int

val max_meta_data_words : int
(** Largest value the meta word's [data_words] field can hold. A huge
    object bigger than this saturates the field and records its true word
    count in the head page's [page_aux2] slot — readers must go through
    {!Alloc.huge_data_words}, not trust a saturated field. *)

(** {1 Addressing} *)

val header_of_obj : Cxlshm_shmem.Pptr.t -> Cxlshm_shmem.Pptr.t
val meta_of_obj : Cxlshm_shmem.Pptr.t -> Cxlshm_shmem.Pptr.t
val data_of_obj : Cxlshm_shmem.Pptr.t -> Cxlshm_shmem.Pptr.t
val emb_slot : Cxlshm_shmem.Pptr.t -> int -> Cxlshm_shmem.Pptr.t
(** Address of the [i]-th embedded reference (first words of the data area). *)
