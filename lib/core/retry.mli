(** Bounded retry/backoff over transient device faults.

    Client-side half of the device-fault story: transient
    {!Cxlshm_shmem.Mem.Device_error}s (poisoned reads, torn writes, short
    offline windows) are re-issued under an exponential-backoff budget;
    persistent faults and exhausted budgets are {e escalated} — counted in
    {!Cxlshm_shmem.Stats}, reported through [on_escalate] (which {!Ctx}
    wires to the shared degraded-device bitmap) and re-raised to the
    caller. *)

type policy = {
  max_attempts : int;  (** total attempts, the first try included *)
  base_backoff_ns : float;  (** simulated delay before the first retry *)
  max_backoff_ns : float;  (** cap on the exponential growth *)
}

val default_policy : policy
(** 5 attempts, 250 ns initial backoff doubling up to 64 µs. *)

val no_retry : policy
(** Single attempt: every fault escalates immediately. *)

val backoff_ns : policy -> int -> float
(** Simulated backoff before retry number [attempt] (1-based). *)

val with_retries :
  ?policy:policy ->
  st:Cxlshm_shmem.Stats.t ->
  on_escalate:(dev:int -> unit) ->
  ((unit -> unit) -> 'a) ->
  'a
(** [with_retries ~st ~on_escalate f] runs [f commit], re-running it on a
    transient {!Cxlshm_shmem.Mem.Device_error} until the policy's attempt
    budget is spent. [f] must call [commit ()] once its effects are visible
    to other clients (a commit point has landed): from then on the section
    is {e never} re-run — a later fault escalates instead, because a re-run
    would double-apply the committed effects. Persistent faults escalate on
    first sight. Escalation calls [on_escalate ~dev] with the faulting
    device and re-raises the fault. Faults, retries, simulated backoff time
    and escalations are accumulated in [st]. *)
