(* Allocation fast/slow path, size classes, huge objects, reclamation. *)

open Cxlshm

let small_arena () = Shm.create ~cfg:Config.small ()

let test_alloc_basic () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  let r = Shm.cxl_malloc a ~size_bytes:64 () in
  Alcotest.(check bool) "live" true (Cxl_ref.is_live r);
  Alcotest.(check int) "refcount 1" 1 (Refc.ref_cnt a (Cxl_ref.obj r));
  Cxl_ref.write_bytes r (Bytes.of_string "payload");
  Alcotest.(check string) "data roundtrip" "payload"
    (Bytes.to_string (Cxl_ref.read_bytes r ~len:7));
  Cxl_ref.drop r;
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat "; " v.Validate.errors) true
    (Validate.is_clean v);
  Alcotest.(check int) "no live objects" 0 v.Validate.live_objects

let test_clone_semantics () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  let r = Shm.cxl_malloc a ~size_bytes:16 () in
  let r2 = Cxl_ref.clone r in
  (* Same-thread clone touches only the RootRef local count (§5.2). *)
  Alcotest.(check int) "obj count still 1" 1 (Refc.ref_cnt a (Cxl_ref.obj r));
  Cxl_ref.drop r;
  Alcotest.(check bool) "r2 still live" true (Cxl_ref.is_live r2);
  Alcotest.(check int) "obj alive" 1 (Refc.ref_cnt a (Cxl_ref.obj r2));
  Cxl_ref.drop r2;
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_double_drop_raises () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  let r = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.drop r;
  Alcotest.check_raises "double drop" (Invalid_argument "Cxl_ref: use after drop")
    (fun () -> Cxl_ref.drop r)

let test_many_allocs_reuse () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  (* Allocate and free far more objects than the arena could hold live:
     blocks must be reused through the free lists. *)
  for _ = 1 to 10_000 do
    let r = Shm.cxl_malloc a ~size_bytes:32 () in
    Cxl_ref.drop r
  done;
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat "; " v.Validate.errors) true
    (Validate.is_clean v)

let test_size_classes () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  let refs =
    List.map
      (fun sz -> (sz, Shm.cxl_malloc a ~size_bytes:sz ()))
      [ 1; 8; 16; 17; 64; 100; 200; 400 ]
  in
  List.iter
    (fun (sz, r) ->
      let b = Bytes.init sz (fun i -> Char.chr (i land 0x7f)) in
      Cxl_ref.write_bytes r b;
      Alcotest.(check bytes)
        (Printf.sprintf "size %d roundtrip" sz)
        b
        (Cxl_ref.read_bytes r ~len:sz))
    refs;
  List.iter (fun (_, r) -> Cxl_ref.drop r) refs;
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_huge_object () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  (* Bigger than the largest size class of the small config. *)
  let words = Config.max_class_data_words Config.small * 4 in
  let r = Shm.cxl_malloc_words a ~data_words:words () in
  Cxl_ref.write_word r (words - 1) 9999;
  Alcotest.(check int) "tail word" 9999 (Cxl_ref.read_word r (words - 1));
  let before = Shm.free_segments arena in
  Cxl_ref.drop r;
  let after = Shm.free_segments arena in
  Alcotest.(check bool) "segments returned" true (after > before);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_out_of_memory () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  let live = ref [] in
  Alcotest.check_raises "oom" Alloc.Out_of_shared_memory (fun () ->
      for _ = 1 to 1_000_000 do
        live := Shm.cxl_malloc a ~size_bytes:400 () :: !live
      done);
  (* Free everything; the arena must be fully usable again. *)
  List.iter Cxl_ref.drop !live;
  let r = Shm.cxl_malloc a ~size_bytes:400 () in
  Cxl_ref.drop r;
  Alcotest.(check bool) "clean after oom" true
    (Validate.is_clean (Shm.validate arena))

let test_cross_client_free () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  (* A allocates; B becomes the last holder and frees into A's segment. *)
  let ra = Shm.cxl_malloc a ~size_bytes:32 () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  Alcotest.(check bool) "sent" true (Transfer.send q ra = Transfer.Sent);
  let rb =
    match
      let qb = Transfer.open_from b ~sender:a.Ctx.cid in
      Option.map Transfer.receive qb
    with
    | Some (Transfer.Received r) -> r
    | _ -> Alcotest.fail "receive failed"
  in
  Cxl_ref.drop ra;
  Alcotest.(check int) "b holds it" 1 (Refc.ref_cnt b (Cxl_ref.obj rb));
  Cxl_ref.drop rb;
  (* The block went to A's segment cross-client stack; A's slow path
     collects it. *)
  Alloc.collect_deferred a;
  let v = Shm.validate arena in
  Alcotest.(check int) "one live object left (queue)" 1 v.Validate.live_objects;
  Alcotest.(check int) "two rootrefs left (queue endpoints)" 2
    v.Validate.live_rootrefs;
  Alcotest.(check bool) ("clean: " ^ String.concat "; " v.Validate.errors) true
    (Validate.is_clean v)

let test_emb_refs_basic () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:2 () in
  let child1 = Shm.cxl_malloc a ~size_bytes:8 () in
  let child2 = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.set_emb parent 0 child1;
  Alcotest.(check int) "child1 count 2" 2 (Refc.ref_cnt a (Cxl_ref.obj child1));
  Cxl_ref.set_emb parent 1 child2;
  (* Drop our handles: children stay alive through the parent. *)
  let c1_obj = Cxl_ref.obj child1 in
  Cxl_ref.drop child1;
  Cxl_ref.drop child2;
  Alcotest.(check int) "child1 kept alive" 1 (Refc.ref_cnt a c1_obj);
  (* Dropping the parent releases the whole subtree. *)
  Cxl_ref.drop parent;
  let v = Shm.validate arena in
  Alcotest.(check int) "all gone" 0 v.Validate.live_objects;
  Alcotest.(check bool) ("clean: " ^ String.concat "; " v.Validate.errors) true
    (Validate.is_clean v)

let test_change_emb () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let x = Shm.cxl_malloc a ~size_bytes:8 () in
  let y = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.set_emb parent 0 x;
  (* §5.4 atomic re-pointing. *)
  Cxl_ref.change_emb parent 0 y;
  Alcotest.(check int) "slot points to y" (Cxl_ref.obj y) (Cxl_ref.get_emb parent 0);
  Alcotest.(check int) "x count back to 1" 1 (Refc.ref_cnt a (Cxl_ref.obj x));
  Alcotest.(check int) "y count 2" 2 (Refc.ref_cnt a (Cxl_ref.obj y));
  List.iter Cxl_ref.drop [ parent; x; y ];
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_word_access_guards () =
  let arena = small_arena () in
  let a = Shm.join arena () in
  let r = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  (try
     ignore (Cxl_ref.read_word r 0);
     Alcotest.fail "reading an emb slot as data must fail"
   with Invalid_argument _ -> ());
  Cxl_ref.drop r

let suite =
  [
    Alcotest.test_case "alloc basic" `Quick test_alloc_basic;
    Alcotest.test_case "clone semantics" `Quick test_clone_semantics;
    Alcotest.test_case "double drop raises" `Quick test_double_drop_raises;
    Alcotest.test_case "many allocs reuse" `Quick test_many_allocs_reuse;
    Alcotest.test_case "size classes" `Quick test_size_classes;
    Alcotest.test_case "huge object" `Quick test_huge_object;
    Alcotest.test_case "out of memory" `Quick test_out_of_memory;
    Alcotest.test_case "cross-client free" `Quick test_cross_client_free;
    Alcotest.test_case "embedded refs basic" `Quick test_emb_refs_basic;
    Alcotest.test_case "change emb (§5.4)" `Quick test_change_emb;
    Alcotest.test_case "word access guards" `Quick test_word_access_guards;
  ]
