type t = int

let null = 0
let is_null p = p = 0

let of_word_offset off =
  if off < 0 then invalid_arg "Pptr.of_word_offset: negative offset";
  off

let to_word_offset p = p
let add p n = p + n

let pp ppf p =
  if is_null p then Format.pp_print_string ppf "<null>"
  else Format.fprintf ppf "@%d" p
