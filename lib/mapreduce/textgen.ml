let generate ~words ~vocab ~seed =
  if words < 0 || vocab < 1 then invalid_arg "Textgen.generate";
  (* Zipf over the vocabulary: word i has weight 1/(i+1). *)
  let weights = Array.init vocab (fun i -> 1.0 /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make vocab 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  let rng = Random.State.make [| seed |] in
  let sample () =
    let u = Random.State.float rng 1.0 in
    let rec bs lo hi = if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then bs lo mid else bs (mid + 1) hi
    in
    bs 0 (vocab - 1)
  in
  let buf = Buffer.create (words * 6) in
  for i = 0 to words - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Printf.sprintf "w%d" (sample ()))
  done;
  Buffer.contents buf

let chunks corpus ~chunk_bytes =
  if chunk_bytes < 1 then invalid_arg "Textgen.chunks";
  let n = String.length corpus in
  let rec go start acc =
    if start >= n then List.rev acc
    else begin
      let stop = min n (start + chunk_bytes) in
      (* extend to the next word boundary *)
      let stop =
        let rec ext i = if i >= n || corpus.[i] = ' ' then i else ext (i + 1) in
        ext stop
      in
      let piece = String.sub corpus start (stop - start) in
      go (stop + 1) (piece :: acc)
    end
  in
  go 0 []
