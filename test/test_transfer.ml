(* Reference-transfer queues (§5.2): capacity, ordering, closing, cleanup,
   directory behaviour. *)

open Cxlshm

let setup () =
  let arena = Shm.create ~cfg:Config.small () in
  (arena, Shm.join arena (), Shm.join arena ())

let mk ctx v =
  let r = Shm.cxl_malloc ctx ~size_bytes:8 () in
  Cxl_ref.write_word r 0 v;
  r

let test_fifo_order () =
  let arena, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:8 in
  let sent = List.init 5 (fun i -> mk a (100 + i)) in
  List.iter (fun r -> assert (Transfer.send q r = Transfer.Sent)) sent;
  List.iter Cxl_ref.drop sent;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  List.iteri
    (fun i _ ->
      match Transfer.receive qb with
      | Transfer.Received r ->
          Alcotest.(check int) (Printf.sprintf "msg %d" i) (100 + i)
            (Cxl_ref.read_word r 0);
          Cxl_ref.drop r
      | Transfer.Empty | Transfer.Drained -> Alcotest.fail "expected message")
    sent;
  Transfer.close q;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_pending_count () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  Alcotest.(check int) "empty" 0 (Transfer.pending q);
  let r = mk a 1 in
  ignore (Transfer.send q r);
  ignore (Transfer.send q r);
  Alcotest.(check int) "two pending" 2 (Transfer.pending q);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  (match Transfer.receive qb with Transfer.Received x -> Cxl_ref.drop x | _ -> ());
  Alcotest.(check int) "one after receive" 1 (Transfer.pending qb);
  Cxl_ref.drop r

let test_capacity_full () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  let r = mk a 1 in
  Alcotest.(check bool) "1" true (Transfer.send q r = Transfer.Sent);
  Alcotest.(check bool) "2" true (Transfer.send q r = Transfer.Sent);
  Alcotest.(check bool) "full" true (Transfer.send q r = Transfer.Full);
  (* consuming makes room *)
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  (match Transfer.receive qb with
  | Transfer.Received x -> Cxl_ref.drop x
  | _ -> Alcotest.fail "recv");
  Alcotest.(check bool) "room again" true (Transfer.send q r = Transfer.Sent);
  Cxl_ref.drop r

let test_send_shares_not_moves () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let r = mk a 7 in
  assert (Transfer.send q r = Transfer.Sent);
  (* the sender's handle is still usable after sending *)
  Alcotest.(check int) "sender still reads" 7 (Cxl_ref.read_word r 0);
  Alcotest.(check int) "count: rootref + queue slot" 2
    (Refc.ref_cnt a (Cxl_ref.obj r));
  Cxl_ref.drop r

let test_receiver_sees_sender_close () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let r = mk a 9 in
  assert (Transfer.send q r = Transfer.Sent);
  Cxl_ref.drop r;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Transfer.close q;
  (* in-flight message still delivered, then Drained *)
  (match Transfer.receive qb with
  | Transfer.Received x -> Cxl_ref.drop x
  | _ -> Alcotest.fail "in-flight message lost");
  (match Transfer.receive qb with
  | Transfer.Drained -> ()
  | _ -> Alcotest.fail "expected Drained");
  Transfer.close qb

let test_sender_sees_receiver_close () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Transfer.close qb;
  let r = mk a 3 in
  Alcotest.(check bool) "closed" true (Transfer.send q r = Transfer.Closed);
  Cxl_ref.drop r;
  Transfer.close q

let test_both_close_frees_everything () =
  let arena, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  (* leave an unconsumed message in the ring *)
  let r = mk a 4 in
  assert (Transfer.send q r = Transfer.Sent);
  Cxl_ref.drop r;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Transfer.close q;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "ring message reclaimed with the queue" 0
    v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

let test_multiple_queues_between_pairs () =
  let arena, a, b = setup () in
  let c = Shm.join arena () in
  let qab = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let qac = Transfer.connect a ~receiver:c.Ctx.cid ~capacity:4 in
  let qba = Transfer.connect b ~receiver:a.Ctx.cid ~capacity:4 in
  let rb = mk a 1 and rc = mk a 2 and ra = mk b 3 in
  assert (Transfer.send qab rb = Transfer.Sent);
  assert (Transfer.send qac rc = Transfer.Sent);
  assert (Transfer.send qba ra = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let qc = Option.get (Transfer.open_from c ~sender:a.Ctx.cid) in
  let qa = Option.get (Transfer.open_from a ~sender:b.Ctx.cid) in
  let recv q =
    match Transfer.receive q with
    | Transfer.Received r ->
        let v = Cxl_ref.read_word r 0 in
        Cxl_ref.drop r;
        v
    | _ -> Alcotest.fail "recv"
  in
  Alcotest.(check int) "a->b" 1 (recv qb);
  Alcotest.(check int) "a->c" 2 (recv qc);
  Alcotest.(check int) "b->a" 3 (recv qa);
  List.iter Cxl_ref.drop [ rb; rc; ra ];
  List.iter Transfer.close [ qab; qac; qba; qb; qc; qa ];
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_directory_exhaustion () =
  let cfg = { Config.small with Config.queue_slots = 2 } in
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let q1 = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  let q2 = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  Alcotest.check_raises "directory full"
    (Failure "Transfer.connect: queue directory full") (fun () ->
      ignore (Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2));
  (* closing a pair frees the slot for reuse *)
  let qb1 = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Transfer.close q1;
  Transfer.close qb1;
  let q3 = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  Transfer.close q2;
  Transfer.close q3

let test_wraparound () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:3 in
  let qb = ref None in
  for round = 1 to 20 do
    let r = mk a round in
    assert (Transfer.send q r = Transfer.Sent);
    Cxl_ref.drop r;
    if !qb = None then qb := Transfer.open_from b ~sender:a.Ctx.cid;
    match Transfer.receive (Option.get !qb) with
    | Transfer.Received x ->
        Alcotest.(check int) (Printf.sprintf "round %d" round) round
          (Cxl_ref.read_word x 0);
        Cxl_ref.drop x
    | _ -> Alcotest.fail "recv"
  done

(* Batched handoff: one publish covers the whole batch, FIFO order and
   exactly-once delivery are preserved, and a partially-accepted batch can
   be resumed from the unsent suffix. *)
let test_batch_roundtrip () =
  let arena, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:8 in
  let refs = List.init 5 (fun i -> mk a (200 + i)) in
  let n, res = Transfer.send_batch q refs in
  Alcotest.(check int) "all sent" 5 n;
  Alcotest.(check bool) "Sent" true (res = Transfer.Sent);
  List.iter Cxl_ref.drop refs;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let drain ~max =
    match Transfer.receive_batch qb ~max with
    | Transfer.Received_batch rs ->
        List.map
          (fun r ->
            let v = Cxl_ref.read_word r 0 in
            Cxl_ref.drop r;
            v)
          rs
    | Transfer.Batch_empty | Transfer.Batch_drained ->
        Alcotest.fail "expected a batch"
  in
  Alcotest.(check (list int)) "first three in order" [ 200; 201; 202 ]
    (drain ~max:3);
  Alcotest.(check (list int)) "rest" [ 203; 204 ] (drain ~max:8);
  (match Transfer.receive_batch qb ~max:8 with
  | Transfer.Batch_empty -> ()
  | _ -> Alcotest.fail "expected Batch_empty");
  Transfer.close q;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "nothing stranded" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

let test_batch_partial_then_resume () =
  let arena, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  let refs = List.init 4 (fun i -> mk a (i + 1)) in
  let n, res = Transfer.send_batch q refs in
  Alcotest.(check int) "room-limited" 2 n;
  Alcotest.(check bool) "Full" true (res = Transfer.Full);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let drain ~max =
    match Transfer.receive_batch qb ~max with
    | Transfer.Received_batch rs ->
        List.map
          (fun r ->
            let v = Cxl_ref.read_word r 0 in
            Cxl_ref.drop r;
            v)
          rs
    | _ -> Alcotest.fail "expected a batch"
  in
  Alcotest.(check (list int)) "accepted prefix" [ 1; 2 ] (drain ~max:8);
  let rest = List.filteri (fun i _ -> i >= 2) refs in
  let n2, res2 = Transfer.send_batch q rest in
  Alcotest.(check int) "suffix sent" 2 n2;
  Alcotest.(check bool) "Sent" true (res2 = Transfer.Sent);
  Alcotest.(check (list int)) "suffix in order" [ 3; 4 ] (drain ~max:8);
  List.iter Cxl_ref.drop refs;
  Transfer.close q;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

(* A sender killed between the per-message attaches and the single batch
   publish has sent nothing: the tail never moved, so the receiver sees
   no partial batch, and recovery reclaims the already-attached slot
   references with the dead client. *)
let test_batch_crash_before_publish () =
  let arena, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:8 in
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let refs = List.init 3 (fun i -> mk a (i + 1)) in
  a.Ctx.fault <- Fault.at Fault.Send_after_attach ~nth:2;
  (try
     ignore (Transfer.send_batch q refs);
     Alcotest.fail "expected crash"
   with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  Alcotest.(check int) "nothing published" 0 (Transfer.pending q);
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  (match Transfer.receive_batch qb ~max:8 with
  | Transfer.Batch_drained -> ()
  | Transfer.Received_batch _ -> Alcotest.fail "unpublished batch leaked out"
  | Transfer.Batch_empty -> Alcotest.fail "expected Drained after recovery");
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "no stranded objects" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

(* Regression for the receive-side ordering fix: the head advance is now
   fenced and flushed before control returns, with a crash point right
   after. A receiver killed there has durably consumed the message — it
   must count as gone immediately and must never be replayed after
   recovery. *)
let test_crash_recv_after_advance () =
  let arena, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let r1 = mk a 1 and r2 = mk a 2 in
  assert (Transfer.send q r1 = Transfer.Sent);
  assert (Transfer.send q r2 = Transfer.Sent);
  Cxl_ref.drop r1;
  Cxl_ref.drop r2;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  b.Ctx.fault <- Fault.at Fault.Recv_after_advance ~nth:1;
  (try
     ignore (Transfer.receive qb);
     Alcotest.fail "expected crash"
   with Fault.Crashed _ -> ());
  b.Ctx.fault <- Fault.none;
  (* Head was published before the crash: exactly one message remains. *)
  Alcotest.(check int) "head durably advanced" 1 (Transfer.pending q);
  Client.declare_failed (Shm.service_ctx arena) ~cid:b.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:b.Ctx.cid);
  Alcotest.(check int) "recovery does not rewind the head" 1
    (Transfer.pending q);
  Transfer.close q;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "no stranded objects" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

(* recover_endpoints with a live peer, sequential flavour: the monitor
   closes the dead sender's half; the surviving receiver must still drain
   every in-flight message in order before seeing Drained. *)
let test_recover_dead_sender_live_receiver () =
  let arena, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:8 in
  for i = 1 to 6 do
    let r = mk a (10 + i) in
    assert (Transfer.send q r = Transfer.Sent);
    Cxl_ref.drop r
  done;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  for i = 1 to 6 do
    match Transfer.receive qb with
    | Transfer.Received r ->
        Alcotest.(check int) (Printf.sprintf "msg %d survives" i) (10 + i)
          (Cxl_ref.read_word r 0);
        Cxl_ref.drop r
    | Transfer.Empty | Transfer.Drained ->
        Alcotest.fail "in-flight message lost to sender recovery"
  done;
  (match Transfer.receive qb with
  | Transfer.Drained -> ()
  | _ -> Alcotest.fail "expected Drained after sender recovery");
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

(* Same scenario, genuinely racing: the receiver drains from the main
   domain while Shm.recover closes the dead sender's endpoint from another
   domain. Whatever the interleaving, the receiver sees all six messages
   in order and then Drained — never a lost or duplicated message. *)
let test_recover_endpoints_races_live_receiver () =
  for _round = 1 to 4 do
    let arena, a, b = setup () in
    let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:8 in
    for i = 1 to 6 do
      let r = mk a (100 + i) in
      assert (Transfer.send q r = Transfer.Sent);
      Cxl_ref.drop r
    done;
    let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
    Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
    let recoverer =
      Domain.spawn (fun () -> ignore (Shm.recover arena ~failed_cid:a.Ctx.cid))
    in
    let got = ref [] in
    let drained = ref false in
    while not !drained do
      match Transfer.receive qb with
      | Transfer.Received r ->
          got := Cxl_ref.read_word r 0 :: !got;
          Cxl_ref.drop r
      | Transfer.Empty -> Domain.cpu_relax ()
      | Transfer.Drained -> drained := true
    done;
    Domain.join recoverer;
    Alcotest.(check (list int)) "all six, in order"
      [ 101; 102; 103; 104; 105; 106 ]
      (List.rev !got);
    Transfer.close qb;
    ignore (Shm.scan_leaking arena);
    let v = Shm.validate arena in
    Alcotest.(check bool)
      ("clean: " ^ String.concat ";" v.Validate.errors)
      true (Validate.is_clean v)
  done

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "pending count" `Quick test_pending_count;
    Alcotest.test_case "capacity / Full" `Quick test_capacity_full;
    Alcotest.test_case "send shares (not moves)" `Quick test_send_shares_not_moves;
    Alcotest.test_case "receiver sees sender close" `Quick test_receiver_sees_sender_close;
    Alcotest.test_case "sender sees receiver close" `Quick test_sender_sees_receiver_close;
    Alcotest.test_case "both close frees all" `Quick test_both_close_frees_everything;
    Alcotest.test_case "multiple queues" `Quick test_multiple_queues_between_pairs;
    Alcotest.test_case "directory exhaustion" `Quick test_directory_exhaustion;
    Alcotest.test_case "ring wraparound" `Quick test_wraparound;
    Alcotest.test_case "batch roundtrip" `Quick test_batch_roundtrip;
    Alcotest.test_case "batch partial then resume" `Quick
      test_batch_partial_then_resume;
    Alcotest.test_case "batch crash before publish" `Quick
      test_batch_crash_before_publish;
    Alcotest.test_case "crash at recv-after-advance" `Quick
      test_crash_recv_after_advance;
    Alcotest.test_case "dead sender, live receiver (sequential)" `Quick
      test_recover_dead_sender_live_receiver;
    Alcotest.test_case "recover_endpoints races live receiver" `Slow
      test_recover_endpoints_races_live_receiver;
  ]
