let epoch_addr (ctx : Ctx.t) = Layout.hdr_epoch ctx.Ctx.lay
let slot (ctx : Ctx.t) cid = Layout.client_hazard ctx.Ctx.lay cid

let enter (ctx : Ctx.t) =
  let e = Ctx.load ctx (epoch_addr ctx) in
  Ctx.store ctx (slot ctx ctx.Ctx.cid) e;
  (* the announcement must be visible before the traversal's loads *)
  Ctx.fence ctx

let exit (ctx : Ctx.t) = Ctx.store ctx (slot ctx ctx.Ctx.cid) 0

let with_protection ctx f =
  enter ctx;
  Fun.protect ~finally:(fun () -> exit ctx) f

let retire_epoch (ctx : Ctx.t) = Ctx.fetch_add ctx (epoch_addr ctx) 1 + 1

let min_announced (ctx : Ctx.t) =
  let m = (Ctx.cfg ctx).Config.max_clients in
  let best = ref max_int in
  for cid = 0 to m - 1 do
    (* announcements from non-alive slots are stale by definition: a dead
       reader must not stall reclamation (§3.2's non-blocking guarantee).
       A Suspected (3) reader is still alive — its suspicion may be a
       false positive it cancels on the next heartbeat — so its hazard
       still pins blocks; only a condemned (Failed) reader is fenced. *)
    let f = Ctx.load ctx (Layout.client_flags ctx.Ctx.lay cid) in
    if f = 1 || f = 3 then begin
      let a = Ctx.load ctx (slot ctx cid) in
      if a <> 0 && a < !best then best := a
    end
  done;
  !best

let announced (ctx : Ctx.t) ~cid = Ctx.load ctx (slot ctx cid)
