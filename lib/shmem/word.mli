(** Bitfield packing helpers for 63-bit shared-memory words.

    CXL-SHM packs several logical fields (client id, era, reference count,
    size class, ...) into a single word so they can be updated with one CAS.
    A {!field} describes one bitfield inside such a word; [get]/[set] extract
    and replace it without disturbing the other fields. *)

type field = private { shift : int; bits : int; mask : int }

val field : shift:int -> bits:int -> field
(** [field ~shift ~bits] describes a bitfield occupying [bits] bits starting
    at bit [shift]. Raises [Invalid_argument] if the field does not fit into
    62 bits (we keep the top bit of the 63-bit OCaml int unused so packed
    words are always non-negative). *)

val get : field -> int -> int
(** [get f w] extracts field [f] from packed word [w]. *)

val set : field -> int -> int -> int
(** [set f w v] returns [w] with field [f] replaced by [v]. Raises
    [Invalid_argument] if [v] does not fit in the field. *)

val fits : field -> int -> bool
(** [fits f v] is true when [v] can be stored in field [f]. *)

val max_value : field -> int
(** Largest value representable by the field. *)
