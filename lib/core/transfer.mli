(** Exactly-once reference transfer between clients (§5.2, Fig 5).

    Network transfer leaves the ownership of an in-flight reference
    ambiguous; CXL-SHM instead moves references through single-producer
    single-consumer ring queues living in the shared pool. The queue itself
    is a CXLObj whose ring slots are {e embedded references}, so:

    - sending attaches the object to the tail slot with the standard era
      transaction, then publishes it by advancing the tail — ownership
      transfers atomically at that store;
    - receiving attaches the head slot's object to a fresh RootRef, detaches
      the slot, then advances the head;
    - every queue is registered in the well-known directory, so the recovery
      service can find them; un-consumed references are owned by the queue
      object itself and die with it, so a crash on either side leaks
      nothing.

    Queues are registered in the arena's queue directory; a slot records
    sender, receiver and a {e counted} reference to the queue object. *)

type endpoint = Sender | Receiver
type t

val capacity : t -> int

val pending : t -> int
(** Messages published but not yet consumed. *)

val endpoint : t -> endpoint
val peer : t -> int
val queue_ref : t -> Cxl_ref.t

val dir_index : t -> int
(** This queue's directory slot (for the channel sub-heap registry). *)

val peer_closed : t -> bool
(** Has the other endpoint closed (or been closed by recovery)? One shared
    load of the queue's flags word. *)

val connect : ?channel_segs:int list -> Ctx.t -> receiver:int -> capacity:int -> t
(** Sender side: allocate a queue for [ctx → receiver], register it in the
    directory. [channel_segs] (an RPC channel's private sub-heap, claimed by
    the caller) is published in the slot's registry words before the slot
    turns active, so the receiver can always read it at open. Raises
    [Failure] if the directory is full. *)

val open_from : Ctx.t -> sender:int -> t option
(** Receiver side: find an active queue [sender → ctx] and take a counted
    reference to it. [None] until the sender has connected. *)

type send_result = Sent | Full | Closed

val send : t -> Cxl_ref.t -> send_result
(** Share the handle's object with the peer. The sender keeps its own
    reference (drop it separately if no longer needed). *)

val send_batch : t -> Cxl_ref.t list -> int * send_result
(** Publish a prefix of the payloads (limited by ring room) under a
    {e single} fence and tail advance — the one tail store is the only
    commit point, so the batch transfers ownership atomically as a dense
    prefix. Returns how many were sent and why it stopped: [Sent] = all,
    [Full] = ring ran out of room, [Closed] = receiver gone (none sent). *)

type recv_result = Received of Cxl_ref.t | Empty | Drained

val receive : t -> recv_result
(** [Drained] = the sender closed (or died) and the ring is empty. *)

type recv_batch = Received_batch of Cxl_ref.t list | Batch_empty | Batch_drained

val receive_batch : t -> max:int -> recv_batch
(** Consume up to [max] messages, releasing all their slots with a single
    fence and head advance. Each message still runs the attach-then-detach
    era transaction, so per-message crash atomicity matches {!receive}. *)

val close : t -> unit
(** Close this endpoint and drop its queue reference. When both endpoints
    are closed the directory slot is reclaimed and the queue object (with
    any never-consumed in-flight references) is released. *)

(** {1 Channel sub-heap registry}

    The four spare words of a queue's directory slot record the segments an
    RPC channel claimed as its private sub-heap (count word + up to
    {!Layout.queue_max_channel_segs} segment ids). Advisory shared state:
    the peer's validation walk and the revocation path read it; cleanup and
    the claim-undo recovery path clear it with the slot. *)

val set_channel_segs : Ctx.t -> int -> int list -> unit
val channel_segs : Ctx.t -> int -> int list
val clear_channel_segs : Ctx.t -> int -> unit

val seg_held_by_live_peer : Ctx.t -> seg:int -> dead_cid:int -> bool
(** True when [seg] is registered as a channel sub-heap on an in-use
    directory slot with an endpoint other than [dead_cid] still alive.
    Recovery must not recycle such a segment — the surviving peer is still
    operating on the sub-heap (frees of reaped messages may be in flight);
    it is orphaned instead, and the peer's channel teardown adopts and
    returns it. *)

(** {1 Recovery hooks} *)

val recover_endpoints : Ctx.t -> failed_cid:int -> unit
(** Close every directory registration of a dead client: abort half-claimed
    slots, mark its endpoints closed, and finish both-ends-dead cleanups —
    all with resumable era transactions under the dead client's identity. *)

val directory_refs : Cxlshm_shmem.Mem.t -> Layout.t -> Cxlshm_shmem.Pptr.t list
(** Validator helper: the queue-object pointers currently held (counted) by
    directory slots. *)

val clear_wild_directory_refs :
  Cxlshm_shmem.Mem.t -> Layout.t -> valid:(Cxlshm_shmem.Pptr.t -> bool) -> int
(** Fsck helper (offline use only): free every occupied directory slot whose
    queue pointer fails [valid] — a wild reference left by corruption —
    and return how many were cleared. *)

val mutation_unfenced_advance : bool ref
(** {b Test-only.} Re-introduces the historical unfenced head advance in
    {!receive} for the model checker's mutation self-check, expressed as the
    reordering the missing fence permitted (head published before the slot
    detach). Must stay [false] outside the explorer's mutation tests. *)
