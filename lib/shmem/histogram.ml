(* Log-bucketed latency histograms keyed by operation class.

   The observability layer measures each core operation's modeled
   nanoseconds (a span opens, the op runs, the span closes with the
   Stats delta priced by the Latency model) and records the duration
   here. Buckets double — bucket 0 holds sub-nanosecond durations,
   bucket i >= 1 holds [2^(i-1), 2^i) ns — so a 64-bucket array spans
   everything the simulator can produce while keeping record() to an
   increment. Quantiles interpolate linearly inside the winning bucket
   and are clamped to the observed min/max, so p50/p95/p99 are exact to
   within one bucket's width. *)

(* ------------------------------------------------------------------ *)
(* Operation classes                                                   *)
(* ------------------------------------------------------------------ *)

type op =
  | Alloc_small
  | Alloc_huge
  | Rootref
  | Refc_attach
  | Refc_detach
  | Transfer_send
  | Transfer_recv
  | Recovery_scan

let num_ops = 8

let op_index = function
  | Alloc_small -> 0
  | Alloc_huge -> 1
  | Rootref -> 2
  | Refc_attach -> 3
  | Refc_detach -> 4
  | Transfer_send -> 5
  | Transfer_recv -> 6
  | Recovery_scan -> 7

let all_ops =
  [
    Alloc_small;
    Alloc_huge;
    Rootref;
    Refc_attach;
    Refc_detach;
    Transfer_send;
    Transfer_recv;
    Recovery_scan;
  ]

let op_of_index i =
  if i < 0 || i >= num_ops then invalid_arg "Histogram.op_of_index";
  List.nth all_ops i

let op_name = function
  | Alloc_small -> "alloc_small"
  | Alloc_huge -> "alloc_huge"
  | Rootref -> "rootref"
  | Refc_attach -> "refc_attach"
  | Refc_detach -> "refc_detach"
  | Transfer_send -> "transfer_send"
  | Transfer_recv -> "transfer_recv"
  | Recovery_scan -> "recovery_scan"

let op_of_name n = List.find_opt (fun o -> op_name o = n) all_ops

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let num_buckets = 64

type t = {
  mutable count : int;
  mutable sum_ns : float;
  mutable min_ns : float;
  mutable max_ns : float;
  buckets : int array;
}

let create () =
  {
    count = 0;
    sum_ns = 0.;
    min_ns = infinity;
    max_ns = 0.;
    buckets = Array.make num_buckets 0;
  }

let reset t =
  t.count <- 0;
  t.sum_ns <- 0.;
  t.min_ns <- infinity;
  t.max_ns <- 0.;
  Array.fill t.buckets 0 num_buckets 0

let bucket_of_ns ns =
  if ns < 1. then 0
  else
    let rec log2 i v = if v < 2. then i else log2 (i + 1) (v /. 2.) in
    min (num_buckets - 1) (1 + log2 0 ns)

(* bucket 0 = [0, 1); bucket i = [2^(i-1), 2^i) *)
let bucket_lo i = if i = 0 then 0. else Float.of_int (1 lsl (i - 1))
let bucket_hi i = Float.of_int (1 lsl i)

let record t ns =
  let ns = Float.max ns 0. in
  t.count <- t.count + 1;
  t.sum_ns <- t.sum_ns +. ns;
  if ns < t.min_ns then t.min_ns <- ns;
  if ns > t.max_ns then t.max_ns <- ns;
  let b = t.buckets.(bucket_of_ns ns) in
  t.buckets.(bucket_of_ns ns) <- b + 1

let count t = t.count
let sum_ns t = t.sum_ns
let min_ns t = if t.count = 0 then 0. else t.min_ns
let max_ns t = t.max_ns
let mean_ns t = if t.count = 0 then 0. else t.sum_ns /. float_of_int t.count

let merge ~into t =
  into.count <- into.count + t.count;
  into.sum_ns <- into.sum_ns +. t.sum_ns;
  if t.count > 0 then begin
    if t.min_ns < into.min_ns then into.min_ns <- t.min_ns;
    if t.max_ns > into.max_ns then into.max_ns <- t.max_ns
  end;
  for i = 0 to num_buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + t.buckets.(i)
  done

let percentile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.percentile";
  if t.count = 0 then 0.
  else begin
    (* rank of the q-th observation, 1-based, at least 1 *)
    let target = Float.max 1. (Float.of_int t.count *. q) in
    let rec walk i cum =
      if i >= num_buckets then t.max_ns
      else
        let n = t.buckets.(i) in
        if Float.of_int (cum + n) >= target && n > 0 then begin
          let lo = Float.max (bucket_lo i) t.min_ns in
          let hi = Float.min (bucket_hi i) t.max_ns in
          let frac = (target -. Float.of_int cum) /. Float.of_int n in
          Float.min t.max_ns (Float.max t.min_ns (lo +. ((hi -. lo) *. frac)))
        end
        else walk (i + 1) (cum + n)
    in
    walk 0 0
  end

let p50 t = percentile t 0.50
let p95 t = percentile t 0.95
let p99 t = percentile t 0.99

(* One histogram per op class, indexed by [op_index]. *)
let create_set () = Array.init num_ops (fun _ -> create ())

let merge_set ~into set =
  Array.iteri (fun i h -> merge ~into:into.(i) h) set

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.1fns p50=%.1f p95=%.1f p99=%.1f max=%.1f"
    t.count (mean_ns t) (p50 t) (p95 t) (p99 t) t.max_ns
