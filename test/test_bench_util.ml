(* Benchmark utilities: table rendering, runner accounting, workload op
   counting. *)

module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency
module Runner = Cxlshm_bench_util.Runner
module Table = Cxlshm_bench_util.Table
module Workloads = Cxlshm_bench_util.Workloads

let test_table_rendering () =
  let t = Table.create ~title:"demo" ~columns:[ "A"; "Blong"; "C" ] in
  Table.add_row t [ "1"; "2"; "3" ];
  Table.add_row t [ "wide-cell"; "x"; "y" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 8 = "== demo ");
  (* all rows render with the same width per column: every line of the
     body has the same length *)
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s) |> List.tl
  in
  let lens = List.map String.length lines in
  List.iter
    (fun l -> Alcotest.(check int) "aligned" (List.hd lens) l)
    (List.tl lens)

let test_cell_formatting () =
  Alcotest.(check string) "integral" "43" (Table.cell_f 43.0);
  Alcotest.(check string) "big" "117.2" (Table.cell_f 117.2);
  Alcotest.(check string) "small" "0.0310" (Table.cell_f 0.031);
  Alcotest.(check string) "unit" "3.14" (Table.cell_f 3.14)

let test_runner_modeled_max () =
  (* two threads with unequal work: modeled time = the slower one *)
  let stats = [| Stats.create (); Stats.create () |] in
  let model = Latency.of_tier Latency.Cxl in
  let r =
    Runner.run_parallel ~threads:2 ~ops_per_thread:10 ~model
      (fun tid -> stats.(tid))
      (fun tid ->
        stats.(tid).Stats.rand_accesses <- (if tid = 0 then 100 else 10))
  in
  Alcotest.(check (float 1.0)) "max of threads" (100.0 *. model.Latency.rand_ns)
    r.Runner.modeled_ns;
  Alcotest.(check int) "total ops" 20 r.Runner.ops

let test_runner_serial_adds () =
  let stats = [| Stats.create () |] in
  let serial = Stats.create () in
  serial.Stats.rand_accesses <- 50;
  let model = Latency.of_tier Latency.Local_numa in
  let r =
    Runner.run_parallel ~threads:1 ~ops_per_thread:1 ~model
      ~serial:(fun () -> serial)
      (fun _ -> stats.(0))
      (fun _ -> stats.(0).Stats.rand_accesses <- 10)
  in
  Alcotest.(check (float 1.0)) "parallel + serial"
    (60.0 *. model.Latency.rand_ns) r.Runner.modeled_ns

let test_workload_op_counts () =
  (* the ops the accounting claims must equal the alloc+free calls made *)
  let allocs = ref 0 and frees = ref 0 in
  Workloads.threadtest
    ~alloc:(fun _ -> incr allocs)
    ~free:(fun () -> incr frees)
    ~write:(fun () -> ())
    ~rounds:7 ~batch:13;
  Alcotest.(check int) "threadtest ops" (Workloads.threadtest_ops ~rounds:7 ~batch:13)
    (!allocs + !frees);
  Alcotest.(check int) "balanced" !allocs !frees;
  let allocs = ref 0 and frees = ref 0 in
  Workloads.shbench
    ~alloc:(fun s ->
      Alcotest.(check bool) "size in range" true (s >= 64 && s <= 400);
      incr allocs)
    ~free:(fun () -> incr frees)
    ~write:(fun () -> ())
    ~seed:3 ~ops:500;
  Alcotest.(check int) "shbench allocs" 500 !allocs;
  Alcotest.(check int) "shbench frees everything" !allocs !frees

let suite =
  [
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "cell formatting" `Quick test_cell_formatting;
    Alcotest.test_case "runner modeled max" `Quick test_runner_modeled_max;
    Alcotest.test_case "runner serial adds" `Quick test_runner_serial_adds;
    Alcotest.test_case "workload op counts" `Quick test_workload_op_counts;
  ]
