exception Refcount_violation of string

let violate fmt = Printf.ksprintf (fun s -> raise (Refcount_violation s)) fmt

let ref_cnt (ctx : Ctx.t) obj =
  Obj_header.ref_cnt_of (Ctx.load ctx (Obj_header.header_of_obj obj))

(* The ModifyRefCnt CAS loop of Fig 4 (c) lines 2-10, run under identity
   [as_cid]. Records the redo entry before each CAS attempt and observes the
   header's (lcid, lera) into the era matrix. Returns the new count. *)
let modify_refcnt (ctx : Ctx.t) ~as_cid ~op ~ref_addr ~refed ~refed2 ~delta =
  let hdr = Obj_header.header_of_obj refed in
  let rec loop () =
    let saved = Ctx.load ctx hdr in
    let u = Obj_header.unpack saved in
    (match u.Obj_header.lcid with
    | Some c when c <> as_cid ->
        Era.observe_for ctx ~cid:as_cid ~saw_cid:c ~saw_era:u.Obj_header.lera
    | Some _ | None -> ());
    let cnt = u.Obj_header.ref_cnt in
    if delta < 0 && cnt + delta < 0 then
      violate "detach of object @%d with ref_cnt %d (double free?)" refed cnt;
    if delta > 0 && cnt = 0 then
      violate "attach to object @%d with ref_cnt 0 (wild pointer?)" refed;
    let cur_era = Era.self_of ctx ~cid:as_cid in
    Redo_log.record_for ctx ~cid:as_cid
      { Redo_log.op; era = cur_era; ref_addr; refed; refed2; saved_cnt = cnt };
    Ctx.crash_point ctx Fault.Txn_after_redo;
    let newh = Obj_header.make ~lcid:as_cid ~lera:cur_era ~ref_cnt:(cnt + delta) in
    if Ctx.cas ctx hdr ~expected:saved ~desired:newh then cnt + delta
    else loop ()
  in
  loop ()

let attach_as (ctx : Ctx.t) ~as_cid ~ref_addr ~refed =
  Trace.with_span ctx Cxlshm_shmem.Histogram.Refc_attach ~addr:refed
  @@ fun () ->
  let _ =
    modify_refcnt ctx ~as_cid ~op:Redo_log.Attach ~ref_addr ~refed ~refed2:0
      ~delta:1
  in
  Ctx.crash_point ctx Fault.Txn_after_cas;
  Ctx.store ctx ref_addr refed;
  Ctx.crash_point ctx Fault.Txn_after_modify_ref;
  Era.advance_for ctx ~cid:as_cid

let detach_as (ctx : Ctx.t) ~as_cid ~ref_addr ~refed =
  Trace.with_span ctx Cxlshm_shmem.Histogram.Refc_detach ~addr:refed
  @@ fun () ->
  let n =
    modify_refcnt ctx ~as_cid ~op:Redo_log.Detach ~ref_addr ~refed ~refed2:0
      ~delta:(-1)
  in
  Ctx.crash_point ctx Fault.Txn_after_cas;
  Ctx.store ctx ref_addr 0;
  Ctx.crash_point ctx Fault.Txn_after_modify_ref;
  Era.advance_for ctx ~cid:as_cid;
  n

let attach (ctx : Ctx.t) ~ref_addr ~refed = attach_as ctx ~as_cid:ctx.cid ~ref_addr ~refed

(* Redo-free detach for epoch-batched retirement: the sealed journal entry
   stands in for the per-attempt redo record, so the CAS loop only
   observes and commits. Recovery decides whether the CAS landed with
   Conditions 1 & 2 against the dead client's current era — sound because
   every competing mutator observes the header tag before its own CAS, so
   a landed decrement is either still tagged (cid, era) or was seen by
   another client. No crash points: the whole window between the journal
   seal and the rootref free belongs to the journal. *)
let detach_batched (ctx : Ctx.t) ~ref_addr ~refed =
  Trace.with_span ctx Cxlshm_shmem.Histogram.Refc_detach ~addr:refed
  @@ fun () ->
  let hdr = Obj_header.header_of_obj refed in
  let rec loop () =
    let saved = Ctx.load ctx hdr in
    let u = Obj_header.unpack saved in
    (match u.Obj_header.lcid with
    | Some c when c <> ctx.cid ->
        Era.observe ctx ~saw_cid:c ~saw_era:u.Obj_header.lera
    | Some _ | None -> ());
    let cnt = u.Obj_header.ref_cnt in
    if cnt - 1 < 0 then
      violate "detach of object @%d with ref_cnt %d (double free?)" refed cnt;
    let cur_era = Era.self ctx in
    let newh = Obj_header.make ~lcid:ctx.cid ~lera:cur_era ~ref_cnt:(cnt - 1) in
    if Ctx.cas ctx hdr ~expected:saved ~desired:newh then begin
      Ctx.store ctx ref_addr 0;
      Era.advance ctx;
      cnt - 1
    end
    else loop ()
  in
  loop ()

(* Count-neutral reference move (epoch-batched transfer receive): the
   object's count held by the queue slot is handed to the fresh RootRef
   without touching the header — no CAS, no fence beyond the redo
   record's. The record plus the destination link make the move
   recoverable: linked means redo (clear the source), unlinked means
   discard (endpoint recovery releases the slot). *)
let move (ctx : Ctx.t) ~ref_addr ~rr ~refed =
  Redo_log.record ctx
    {
      Redo_log.op = Redo_log.Move;
      era = Era.self ctx;
      ref_addr;
      refed;
      refed2 = rr;
      saved_cnt = 0;
    };
  Ctx.crash_point ctx Fault.Txn_after_redo;
  Ctx.store ctx (Rootref.pptr_slot rr) refed;
  Ctx.crash_point ctx Fault.Move_after_link;
  Ctx.store ctx ref_addr 0;
  Ctx.crash_point ctx Fault.Move_after_clear;
  Era.advance ctx

let try_attach (ctx : Ctx.t) ~ref_addr ~refed =
  let hdr = Obj_header.header_of_obj refed in
  let rec loop () =
    let saved = Ctx.load ctx hdr in
    let u = Obj_header.unpack saved in
    if u.Obj_header.ref_cnt = 0 then false
    else begin
      (match u.Obj_header.lcid with
      | Some c when c <> ctx.cid ->
          Era.observe ctx ~saw_cid:c ~saw_era:u.Obj_header.lera
      | Some _ | None -> ());
      let cur_era = Era.self ctx in
      Redo_log.record ctx
        {
          Redo_log.op = Redo_log.Attach;
          era = cur_era;
          ref_addr;
          refed;
          refed2 = 0;
          saved_cnt = u.Obj_header.ref_cnt;
        };
      Ctx.crash_point ctx Fault.Txn_after_redo;
      let newh =
        Obj_header.make ~lcid:ctx.cid ~lera:cur_era
          ~ref_cnt:(u.Obj_header.ref_cnt + 1)
      in
      if Ctx.cas ctx hdr ~expected:saved ~desired:newh then begin
        Ctx.crash_point ctx Fault.Txn_after_cas;
        Ctx.store ctx ref_addr refed;
        Ctx.crash_point ctx Fault.Txn_after_modify_ref;
        Era.advance ctx;
        true
      end
      else loop ()
    end
  in
  loop ()
let detach (ctx : Ctx.t) ~ref_addr ~refed = detach_as ctx ~as_cid:ctx.cid ~ref_addr ~refed

(* Second-phase CAS of the §5.4 change: the redo record must stay intact
   (recovery uses the era distance from the recorded era to identify the
   phase), so this loop does not re-record. *)
let increment_no_record (ctx : Ctx.t) ~as_cid obj =
  let hdr = Obj_header.header_of_obj obj in
  let rec loop () =
    let saved = Ctx.load ctx hdr in
    let u = Obj_header.unpack saved in
    (match u.Obj_header.lcid with
    | Some c when c <> as_cid ->
        Era.observe_for ctx ~cid:as_cid ~saw_cid:c ~saw_era:u.Obj_header.lera
    | Some _ | None -> ());
    if u.Obj_header.ref_cnt = 0 then
      violate "change: attach to dead object @%d" obj;
    let cur_era = Era.self_of ctx ~cid:as_cid in
    let newh =
      Obj_header.make ~lcid:as_cid ~lera:cur_era
        ~ref_cnt:(u.Obj_header.ref_cnt + 1)
    in
    if not (Ctx.cas ctx hdr ~expected:saved ~desired:newh) then loop ()
  in
  loop ()

let change (ctx : Ctx.t) ~ref_addr ~from_obj ~to_obj =
  (* Steps 1-2: record both objects, decrement A (commit point of T1). *)
  let n_a =
    modify_refcnt ctx ~as_cid:ctx.cid ~op:Redo_log.Change ~ref_addr
      ~refed:from_obj ~refed2:to_obj ~delta:(-1)
  in
  Ctx.crash_point ctx Fault.Change_after_first_cas;
  (* Step 3: first era bump separates the two non-idempotent CAS. *)
  Era.advance ctx;
  Ctx.crash_point ctx Fault.Change_after_first_era;
  (* Step 4: increment B (commit point of T2). *)
  increment_no_record ctx ~as_cid:ctx.cid to_obj;
  Ctx.crash_point ctx Fault.Change_after_second_cas;
  (* Step 5: the idempotent ModifyRef. *)
  Ctx.store ctx ref_addr to_obj;
  Ctx.crash_point ctx Fault.Change_after_modify_ref;
  (* Step 6: second era bump. *)
  Era.advance ctx;
  n_a

let committed (ctx : Ctx.t) ~cid ~obj ~era =
  (* Condition 1 strictly before Condition 2 (§4.3, fenced). *)
  let hdr = Ctx.load ctx (Obj_header.header_of_obj obj) in
  let u = Obj_header.unpack hdr in
  if u.Obj_header.lcid = Some cid && u.Obj_header.lera = era then true
  else begin
    Ctx.fence ctx;
    Era.max_seen_by_others ctx ~cid >= era
  end
