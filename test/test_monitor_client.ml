(* Client lifecycle + heartbeat monitor (§3.2). *)

open Cxlshm

let test_register_limits () =
  let cfg = { Config.small with Config.max_clients = 3 } in
  let arena = Shm.create ~cfg () in
  let _a = Shm.join arena () in
  let _b = Shm.join arena () in
  let _c = Shm.join arena () in
  Alcotest.check_raises "no free slot" (Failure "Client.register: no free client slot")
    (fun () -> ignore (Shm.join arena ()))

let test_register_specific_cid () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena ~cid:3 () in
  Alcotest.(check int) "got requested cid" 3 a.Ctx.cid;
  Alcotest.check_raises "slot taken" (Failure "Client.register: no free client slot")
    (fun () -> ignore (Shm.join arena ~cid:3 ()))

let test_clean_exit_releases_segments () =
  let arena = Shm.create ~cfg:Config.small () in
  let before = Shm.free_segments arena in
  let a = Shm.join arena () in
  let r = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.drop r;
  Shm.leave a;
  Alcotest.(check int) "segments all returned" before (Shm.free_segments arena);
  (* the slot is reusable *)
  let a2 = Shm.join arena ~cid:a.Ctx.cid () in
  Shm.leave a2

let test_monitor_detects_silence () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let _ = List.init 5 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  let mon = Shm.monitor arena ~misses:2 () in
  (* b heartbeats, a goes silent *)
  Client.heartbeat a;
  Client.heartbeat b;
  Alcotest.(check (list int)) "nobody suspected yet" [] (Monitor.check_once mon);
  Client.heartbeat b;
  Alcotest.(check (list int)) "one miss tolerated" [] (Monitor.check_once mon);
  Client.heartbeat b;
  Alcotest.(check (list int)) "a suspected after 2 misses" [ a.Ctx.cid ]
    (Monitor.check_once mon);
  Alcotest.(check bool) "a declared failed" true
    (Client.status b ~cid:a.Ctx.cid = Client.Failed);
  let reports = Monitor.recover_suspects mon in
  Alcotest.(check int) "one recovery ran" 1 (List.length reports);
  (match reports with
  | [ (cid, r) ] ->
      Alcotest.(check int) "recovered a" a.Ctx.cid cid;
      Alcotest.(check int) "reaped the rootrefs" 5 r.Recovery.rootrefs_released
  | _ -> Alcotest.fail "expected one report");
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena));
  Alcotest.(check bool) "b still alive" true (Client.is_alive b ~cid:b.Ctx.cid)

let test_monitor_background_domain () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena () in
  let _ = List.init 3 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  let mon = Shm.monitor arena ~misses:1 () in
  let domain, stop = Monitor.run_in_domain mon ~interval:0.01 in
  (* a never heartbeats: the monitor should reap it *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    if Client.status (Shm.service_ctx arena) ~cid:a.Ctx.cid = Client.Slot_free
    then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "monitor never recovered the silent client"
    else begin
      Unix.sleepf 0.01;
      wait ()
    end
  in
  wait ();
  Atomic.set stop true;
  Domain.join domain;
  Alcotest.(check bool) "clean after async recovery" true
    (Validate.is_clean (Shm.validate arena))

let test_monitor_survives_device_faults () =
  (* The monitor is the component everything else relies on for liveness:
     a poisoned read must not silently kill its domain. Drown it in device
     faults, watch it count the failures and keep running, then service
     the devices and check it still reaps a silent client. *)
  let cfg =
    {
      Config.small with
      Config.backend =
        Cxlshm_shmem.Mem.Faulty
          {
            base = Cxlshm_shmem.Mem.Flat;
            fault_spec =
              {
                Cxlshm_shmem.Backend_faulty.seed = 9;
                read_poison = 0.9;
                torn_write = 0.;
                stuck_word = 0.;
                offline = [];
              };
          };
    }
  in
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  let _held = List.init 3 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  Shm.set_fault_injection arena true;
  let mon = Shm.monitor arena ~misses:1 () in
  let handle = Monitor.run_in_domain mon ~interval:0.001 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Monitor.error_count mon < 3 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check bool) "loop iterations raised and were absorbed" true
    (Monitor.error_count mon >= 3);
  (* the devices get serviced; the same domain must still do its job *)
  Shm.set_fault_injection arena false;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    if Client.status (Shm.service_ctx arena) ~cid:a.Ctx.cid = Client.Slot_free
    then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "monitor stopped working after device faults"
    else begin
      Unix.sleepf 0.005;
      wait ()
    end
  in
  wait ();
  (match Monitor.stop_and_join handle mon with
  | Some (Cxlshm_shmem.Mem.Device_error { transient; _ }) ->
      Alcotest.(check bool) "remembered a device error" true transient
  | Some e -> Alcotest.failf "unexpected last error: %s" (Printexc.to_string e)
  | None -> Alcotest.fail "no error remembered despite injected faults");
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean after the storm" true
    (Validate.is_clean (Shm.validate arena))

let test_heartbeat_monotone () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena () in
  let h0 = Client.heartbeat_value a ~cid:a.Ctx.cid in
  Client.heartbeat a;
  Client.heartbeat a;
  Alcotest.(check int) "two beats" (h0 + 2) (Client.heartbeat_value a ~cid:a.Ctx.cid)

let suite =
  [
    Alcotest.test_case "register limits" `Quick test_register_limits;
    Alcotest.test_case "register specific cid" `Quick test_register_specific_cid;
    Alcotest.test_case "clean exit releases segments" `Quick test_clean_exit_releases_segments;
    Alcotest.test_case "monitor detects silence" `Quick test_monitor_detects_silence;
    Alcotest.test_case "monitor background domain" `Quick test_monitor_background_domain;
    Alcotest.test_case "heartbeat monotone" `Quick test_heartbeat_monotone;
    Alcotest.test_case "monitor survives device faults" `Quick test_monitor_survives_device_faults;
  ]
