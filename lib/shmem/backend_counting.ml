(* Non-atomic single-domain backend: a plain int array plus an exact count
   of raw word operations. No Atomic boxes means no per-word indirection and
   no memory-model traffic, so deterministic unit tests and single-threaded
   benches run fast; the op counter gives tests an exact, repeatable measure
   of how many words an algorithm touched.

   Besides the aggregate [ops] (whose semantics are frozen — fault-schedule
   seeds and unit tests depend on it), the backend keeps a per-kind
   breakdown, plus fence/flush counts fed by the [Mem] wrapper (fences never
   reach a backend), so benches can report exactly which shared-word traffic
   a fast path generates.

   NOT safe across domains — concurrent suites must use Backend_flat or
   Backend_striped. *)

type breakdown = {
  loads : int;
  stores : int;
  cass : int;
  faas : int;
  fences : int;
  flushes : int;
}

type t = {
  cells : int array;
  tier : Latency.tier;
  mutable ops : int;
  mutable loads : int;
  mutable stores : int;
  mutable cass : int;
  mutable faas : int;
  mutable fences : int;
  mutable flushes : int;
}

let create ?(tier = Latency.Cxl) ~words () =
  {
    cells = Array.make words 0;
    tier;
    ops = 0;
    loads = 0;
    stores = 0;
    cass = 0;
    faas = 0;
    fences = 0;
    flushes = 0;
  }

let ops t = t.ops

let breakdown t =
  {
    loads = t.loads;
    stores = t.stores;
    cass = t.cass;
    faas = t.faas;
    fences = t.fences;
    flushes = t.flushes;
  }

let note_fence t = t.fences <- t.fences + 1
let note_flush t = t.flushes <- t.flushes + 1
let name _ = "counting-fast"
let words t = Array.length t.cells
let num_devices _ = 1
let device_of _ _ = 0
let device_tier t _ = t.tier

let load t p =
  t.ops <- t.ops + 1;
  t.loads <- t.loads + 1;
  t.cells.(p)

let store t p v =
  t.ops <- t.ops + 1;
  t.stores <- t.stores + 1;
  t.cells.(p) <- v

let cas t p ~expected ~desired =
  t.ops <- t.ops + 1;
  t.cass <- t.cass + 1;
  if t.cells.(p) = expected then begin
    t.cells.(p) <- desired;
    true
  end
  else false

let fetch_add t p n =
  t.ops <- t.ops + 1;
  t.faas <- t.faas + 1;
  let v = t.cells.(p) in
  t.cells.(p) <- v + n;
  v

let fence _ = ()
let flush _ _ = ()

let fill t ~pos ~len v =
  t.ops <- t.ops + len;
  t.stores <- t.stores + len;
  Array.fill t.cells pos len v

let blit t ~src ~dst ~len =
  t.ops <- t.ops + (2 * len);
  t.loads <- t.loads + len;
  t.stores <- t.stores + len;
  (* Array.blit already has memmove semantics for overlapping ranges. *)
  Array.blit t.cells src t.cells dst len

let snapshot t = Array.copy t.cells
let restore t ws = Array.blit ws 0 t.cells 0 (Array.length ws)
