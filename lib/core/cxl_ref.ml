type t = { ctx : Ctx.t; rr : Cxlshm_shmem.Pptr.t; mutable live : bool }

let of_rootref ctx rr = { ctx; rr; live = true }
let ctx t = t.ctx
let rootref t = t.rr
let is_live t = t.live

let check t =
  if not t.live then invalid_arg "Cxl_ref: use after drop"

let obj t =
  check t;
  let o = Rootref.obj t.ctx t.rr in
  if o = 0 then invalid_arg "Cxl_ref.obj: unlinked RootRef";
  o

let clone t =
  check t;
  Rootref.set_local_cnt t.ctx t.rr (Rootref.local_cnt t.ctx t.rr + 1);
  { ctx = t.ctx; rr = t.rr; live = true }

let drop t =
  check t;
  t.live <- false;
  Reclaim.release_rootref t.ctx t.rr

let meta t = Ctx.load t.ctx (Obj_header.meta_of_obj (obj t))
let emb_cnt t = Obj_header.meta_emb_cnt (meta t)

let data_words t =
  let dw = Obj_header.meta_data_words (meta t) in
  (* A saturated field means a huge object wider than the meta word can
     represent: the head page's aux2 slot holds the true count. *)
  if dw = Obj_header.max_meta_data_words then
    let o = obj t in
    if Alloc.is_huge t.ctx o then Alloc.huge_data_words t.ctx o else dw
  else dw

let data_addr t = Obj_header.data_of_obj (obj t)

let check_word t i =
  if i < emb_cnt t || i >= data_words t then
    invalid_arg
      (Printf.sprintf "Cxl_ref: word index %d outside plain data [%d, %d)" i
         (emb_cnt t) (data_words t))

let read_word t i =
  check_word t i;
  Ctx.load t.ctx (data_addr t + i)

let write_word t i v =
  check_word t i;
  Ctx.store t.ctx (data_addr t + i) v

let cas_word t i ~expected ~desired =
  check_word t i;
  Ctx.cas t.ctx (data_addr t + i) ~expected ~desired

let byte_base t = data_addr t + emb_cnt t

let write_bytes t b =
  let room = data_words t - emb_cnt t in
  if Cxlshm_shmem.Mem.bytes_words (Bytes.length b) > room then
    invalid_arg "Cxl_ref.write_bytes: payload too large";
  Cxlshm_shmem.Mem.write_bytes t.ctx.Ctx.mem ~st:t.ctx.Ctx.st (byte_base t) b

let read_bytes t ~len =
  let room = data_words t - emb_cnt t in
  if Cxlshm_shmem.Mem.bytes_words len > room then
    invalid_arg "Cxl_ref.read_bytes: length too large";
  Cxlshm_shmem.Mem.read_bytes t.ctx.Ctx.mem ~st:t.ctx.Ctx.st (byte_base t) ~len

let check_emb t i =
  if i < 0 || i >= emb_cnt t then
    invalid_arg (Printf.sprintf "Cxl_ref: embedded slot %d out of range" i)

let get_emb t i =
  check_emb t i;
  Ctx.load t.ctx (Obj_header.emb_slot (obj t) i)

let set_emb t i target =
  check_emb t i;
  check target;
  let slot = Obj_header.emb_slot (obj t) i in
  if Ctx.load t.ctx slot <> 0 then
    invalid_arg "Cxl_ref.set_emb: slot is already linked (use change_emb)";
  Refc.attach t.ctx ~ref_addr:slot ~refed:(obj target)

let clear_emb t i =
  check_emb t i;
  let slot = Obj_header.emb_slot (obj t) i in
  let child = Ctx.load t.ctx slot in
  if child <> 0 then Reclaim.release_obj t.ctx ~ref_addr:slot ~obj:child

let change_emb t i target =
  check_emb t i;
  check target;
  let slot = Obj_header.emb_slot (obj t) i in
  let from_obj = Ctx.load t.ctx slot in
  if from_obj = 0 then set_emb t i target
  else begin
    let n =
      Refc.change t.ctx ~ref_addr:slot ~from_obj ~to_obj:(obj target)
    in
    if n = 0 then begin
      (* The re-pointing dropped the old target's last reference. *)
      Reclaim.mark_leaking_of t.ctx from_obj;
      Ctx.crash_point t.ctx Fault.Release_before_reclaim;
      Reclaim.teardown_children t.ctx ~as_cid:t.ctx.Ctx.cid ~obj:from_obj;
      Alloc.free_obj_block t.ctx from_obj
    end
  end
