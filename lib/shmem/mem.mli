(** Simulated CXL-attached shared memory.

    The arena is a pool of 63-bit words addressed by global word offset and
    served by a pluggable {e backend} (see {!Mem_intf.S}): a single flat
    device, a sharded multi-device pool striped across N devices, or a fast
    non-atomic single-domain array. Whatever the backend, the wrapper gives
    the exact primitive set the paper requires of the underlying RDSM (§3):
    load, store, CAS, fence and flush over a byte-addressable pool — with
    *real* atomicity and real interleavings across domains on the atomic
    backends, not a replayed trace.

    Every operation is attributed to a caller-supplied {!Stats.t} so modeled
    time can be computed per client; on a multi-device pool, accesses that
    land on a device of a different {!Latency.tier} than the pool's base
    model are re-priced at their device's tier ({!Stats.t.xdev_ns}).
    Out-of-bounds accesses raise {!Wild_pointer} on every backend: in the
    simulator a wild pointer is detected rather than silently corrupting,
    which the correctness tests rely on. *)

exception Wild_pointer of { addr : int; words : int }

(** {1 Device faults}

    Re-exported from {!Backend_faulty}: the [Faulty] backend wrapper raises
    {!Device_error} on injected device faults (poisoned reads, torn writes,
    stuck words, offline windows). Transient faults heal on retry; the
    retry/backoff layer in [lib/core] decides when to give up and mark the
    device degraded. *)

type fault_class = Backend_faulty.fault_class =
  | Read_poison  (** poisoned load; transient, no corruption *)
  | Torn_write  (** store landed partially (low half only); transient *)
  | Stuck_word  (** media dropped the store, address stuck; persistent *)
  | Offline  (** whole device off the switch for an op-count window *)

exception
  Device_error of {
    dev : int;
    addr : int;
    fault : fault_class;
    transient : bool;
  }

val fault_class_name : fault_class -> string
val all_fault_classes : fault_class list

type t

(** {1 Backends} *)

type backend_spec =
  | Flat  (** The seed backend: one flat atomic-word array (one device). *)
  | Striped of { devices : int; stripe_words : int; tiers : Latency.tier array }
      (** Multi-device pool (Fig 1): global addresses interleaved across
          [devices] in stripes of [stripe_words] words. [tiers] gives each
          device its own latency tier ([[||]] = every device at the pool's
          base tier). Atomic across domains, like [Flat]. *)
  | Counting_fast
      (** Non-atomic plain-array backend with an exact op counter
          ({!op_count}) — deterministic and fast, single-domain only. *)
  | Faulty of { base : backend_spec; fault_spec : Backend_faulty.spec }
      (** Any of the above wrapped in seed-scheduled device-fault injection
          (see {!Backend_faulty}). *)
  | Sched of backend_spec
      (** Any of the above wrapped in scheduler instrumentation: every raw
          load/store/CAS/fetch-add/fence/flush first calls
          {!Backend_sched.hook}, the preemption point the [lib/check] model
          checker schedules around. Single-domain only (the hook is global
          process state). *)

val create : ?tier:Latency.tier -> ?backend:backend_spec -> words:int -> unit -> t
(** Fresh zeroed arena of [words] 8-byte words. Default tier is [Cxl];
    default backend is [Flat], which is behavior-identical to the
    pre-backend arena. *)

val backend_name : t -> string
val num_devices : t -> int

val device_of : t -> Pptr.t -> int
(** Device index in [\[0, num_devices)] serving a pool address — the
    segment→device map allocation placement uses. Raises {!Wild_pointer}
    out of bounds. *)

val device_tier : t -> int -> Latency.tier
(** Latency tier of one device. *)

val op_count : t -> int option
(** Exact number of raw word operations executed so far — [Counting_fast]
    backend only ([None] otherwise). *)

val op_breakdown : t -> Backend_counting.breakdown option
(** Per-kind counts behind {!op_count} — loads/stores/CAS/fetch-add words
    plus fences and flushes (counted by this wrapper; they never reach a
    backend). [Counting_fast] backend only. *)

val fault_injector : t -> Backend_faulty.t option
(** The fault-injection wrapper, when the backend spec was [Faulty]. *)

val set_fault_injection : t -> bool -> unit
(** Arm or disarm fault injection. A [Faulty] pool starts {e disarmed} so
    formatting and client registration happen on healthy devices — arm it
    to begin the campaign. Disarming models servicing the device: no new
    faults fire and stuck media is replaced, but values already swallowed
    or torn stay corrupted. No-op on non-faulty backends. *)

val fault_injection_armed : t -> bool

val injected_faults : t -> (fault_class * int) list
(** Per-class injected-fault counts ([[]] on non-faulty backends). *)

val words : t -> int
val tier : t -> Latency.tier
(** The pool's base tier: the cost model accesses are priced at unless their
    device's tier differs. *)

val cost_model : t -> Latency.t

val words_per_line : int
(** Words per simulated 64-byte cache line. *)

(** {1 Primitive operations} *)

val load : t -> st:Stats.t -> Pptr.t -> int
val store : t -> st:Stats.t -> Pptr.t -> int -> unit

val cas : t -> st:Stats.t -> Pptr.t -> expected:int -> desired:int -> bool
(** Single-word compare-and-swap, the primitive the era algorithm builds on. *)

val fetch_add : t -> st:Stats.t -> Pptr.t -> int -> int
(** Atomic fetch-and-add; returns the previous value. *)

val fence : t -> st:Stats.t -> unit
(** Store fence (sfence). Orders this client's prior stores before later
    ones. Atomics already give sequential consistency in OCaml, so the fence
    only needs to be *counted* — but it still matters: the fault-injection
    harness uses fence positions as the boundaries where a crash may observe
    reordered stores. *)

val flush : t -> st:Stats.t -> Pptr.t -> unit
(** Cache-line write-back (clwb) of the line containing the address. *)

(** {1 Bulk operations} *)

val fill : t -> st:Stats.t -> Pptr.t -> len:int -> int -> unit

val write_bytes : t -> st:Stats.t -> Pptr.t -> bytes -> unit
(** Pack a byte string into consecutive words (7 payload bytes per word, so
    every stored word stays non-negative). Use [read_bytes] to recover it. *)

val read_bytes : t -> st:Stats.t -> Pptr.t -> len:int -> bytes

val bytes_words : int -> int
(** Words consumed by [write_bytes] for a payload of [n] bytes. *)

val blit : t -> st:Stats.t -> src:Pptr.t -> dst:Pptr.t -> len:int -> unit
(** Word-wise copy inside the arena, with [memmove] semantics: overlapping
    ranges copy correctly in either direction. *)

(** {1 Validation / introspection (simulator-only, not part of the RDSM)} *)

val unsafe_peek : t -> Pptr.t -> int
(** Read without stats attribution — for validators and debug printers. *)

val unsafe_poke : t -> Pptr.t -> int -> unit

val ctl_peek : t -> Pptr.t -> int
(** Control-plane read: fabric-manager metadata (the degraded-device
    bitmap) travels out of band, so it never faults and does not advance
    the injection schedule. Equivalent to {!unsafe_peek} on non-faulty
    backends. *)

val ctl_poke : t -> Pptr.t -> int -> unit

val snapshot : t -> int array
(** Copy of every word in global address order (quiesced use only) — the
    pool's durable image, portable across backends. *)

val restore : t -> int array -> unit
(** Overwrite the arena with a {!snapshot} of identical size. *)

val in_bounds : t -> Pptr.t -> bool
