module Word = Cxlshm_shmem.Word

(* Per-domain sharded free stacks for the hot size classes.

   With [Config.num_domains] = D > 0, a non-owner free of a class block
   pushes it onto the freeing client's domain stack
   ([Layout.domain_class_head]) instead of the owning segment's
   cross-client stack, and allocation pops the local domain first, then
   CAS-steals from sibling domains, before falling back to the owner page
   scan. The stacks are Treiber stacks with the same packed {tag, pptr}
   head word as [Segment.push_client_free]; the tag bumps on every pop, so
   competing pops (and pop-vs-repush ABA) are defeated.

   A parked block carries a STAMP in its second data word
   ([stamp_slot] = block + header_words + 1, which exists because the
   smallest class block is header + 2 data words): [stamp_of block], a
   magic mixed with the block address. The stamp is the lifetime token of
   a parked entry:

   - while a dead block carries its stamp, the §5.3 leak scan refuses to
     recycle its segment ([pins] below, consulted by
     [Reclaim.page_all_zero]) — so a stack entry's page kind and geometry
     can never change under it, and steals from segments of dead or
     departed owners are safe;
   - the stamp survives the pop: the allocator writes the object header
     (making the block live, which also pins the segment) before clearing
     it, so there is no instant at which the block is dead, unstamped and
     off every free structure;
   - a stamp that does not match marks a foreign or repaired block
     ([Fsck] rebuilds page chains and clears stamps) and the entry is
     discarded, salvaging the valid suffix of the stack.

   Stacks shard by the *freeing* client's domain ([cid mod D]), so a
   client's frees and its next allocations hit the same head word. *)

let f_tag = Word.field ~shift:46 ~bits:16
let f_ptr = Word.field ~shift:0 ~bits:46

let next_slot block = block + Config.header_words
let stamp_slot block = block + Config.header_words + 1
let stamp_magic = 0x5A5D_C0DE
let stamp_of block = stamp_magic lxor block

let enabled (ctx : Ctx.t) = (Ctx.cfg ctx).Config.num_domains > 0
let domain_of (ctx : Ctx.t) = ctx.Ctx.cid mod (Ctx.cfg ctx).Config.num_domains

let pins (ctx : Ctx.t) block =
  enabled ctx && Ctx.load ctx (stamp_slot block) = stamp_of block

let clear_stamp (ctx : Ctx.t) block = Ctx.store ctx (stamp_slot block) 0

(* An address we may dereference a next pointer through: inside some
   initialised page area and block-aligned for that page. *)
let plausible (ctx : Ctx.t) p =
  let lay = ctx.Ctx.lay in
  p >= lay.Layout.segments_base
  && p < lay.Layout.total_words
  &&
  match Layout.page_gid_of_addr lay p with
  | exception Invalid_argument _ -> false
  | gid ->
      let bw = Page.block_words ctx ~gid in
      bw > 0 && (p - Layout.page_area lay ~gid) mod bw = 0

(* An entry we may hand to the allocator as a free block of class [cls]. *)
let valid (ctx : Ctx.t) ~cls p =
  plausible ctx p
  && Page.kind ctx ~gid:(Layout.page_gid_of_addr ctx.Ctx.lay p)
     = Config.kind_of_class cls
  && Ctx.load ctx (stamp_slot p) = stamp_of p
  && (match Segment.state ctx (Layout.segment_of_addr ctx.Ctx.lay p) with
     | Segment.Active | Segment.Leaking | Segment.Orphaned -> true
     | Segment.Free | Segment.Huge_head | Segment.Huge_cont -> false)

let push_into (ctx : Ctx.t) ~d ~cls block =
  let head = Layout.domain_class_head ctx.Ctx.lay d cls in
  Ctx.store ctx (stamp_slot block) (stamp_of block);
  let rec loop () =
    let cur = Ctx.load ctx head in
    Ctx.store ctx (next_slot block) (Word.get f_ptr cur);
    if not (Ctx.cas ctx head ~expected:cur ~desired:(Word.set f_ptr cur block))
    then loop ()
  in
  loop ()

let push (ctx : Ctx.t) ~cls block = push_into ctx ~d:(domain_of ctx) ~cls block

(* Walk a detached chain, keeping the entries that still validate (they
   lost only their stack, not their identity) and dropping the rest. The
   fuel bounds traversal of a corrupted chain. *)
let salvage (ctx : Ctx.t) ~cls chain =
  let rec go q fuel acc =
    if q = 0 || fuel = 0 then acc
    else if valid ctx ~cls q then
      go (Ctx.load ctx (next_slot q)) (fuel - 1) (q :: acc)
    else if plausible ctx q then go (Ctx.load ctx (next_slot q)) (fuel - 1) acc
    else acc
  in
  List.iter
    (fun b -> push_into ctx ~d:(domain_of ctx) ~cls b)
    (go chain 10_000 [])

(* Pop from one domain's stack; [None] when (effectively) empty. The
   returned block still carries its stamp — the caller must initialise the
   object header and only then [clear_stamp], so the block pins its
   segment at every instant. *)
let pop_from (ctx : Ctx.t) ~d ~cls =
  let head = Layout.domain_class_head ctx.Ctx.lay d cls in
  let rec loop () =
    let cur = Ctx.load ctx head in
    let p = Word.get f_ptr cur in
    if p = 0 then None
    else begin
      let tag = (Word.get f_tag cur + 1) land Word.max_value f_tag in
      if valid ctx ~cls p then begin
        let next = Ctx.load ctx (next_slot p) in
        if
          Ctx.cas ctx head ~expected:cur
            ~desired:(Word.set f_tag (Word.set f_ptr cur next) tag)
        then Some p
        else loop ()
      end
      else begin
        (* Stale head (repaired or foreign): detach the whole chain and
           salvage its valid suffix. *)
        if
          Ctx.cas ctx head ~expected:cur
            ~desired:(Word.set f_tag (Word.set f_ptr cur 0) tag)
        then salvage ctx ~cls (Ctx.load ctx (next_slot p));
        loop ()
      end
    end
  in
  loop ()

let pop (ctx : Ctx.t) ~cls =
  let nd = (Ctx.cfg ctx).Config.num_domains in
  let d0 = domain_of ctx in
  let rec go i =
    if i >= nd then None
    else
      match pop_from ctx ~d:((d0 + i) mod nd) ~cls with
      | Some p -> Some p
      | None -> go (i + 1)
  in
  go 0
