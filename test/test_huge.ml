(* Huge objects: contiguous segment runs, §5.1 retry-and-rollback claim,
   sharing, recovery. *)

open Cxlshm

let cfg = Config.small
let setup () =
  let arena = Shm.create ~cfg () in
  (arena, Shm.join arena (), Shm.join arena ())

let huge_words = Config.max_class_data_words cfg + 100

let test_single_segment_huge () =
  let arena, a, _ = setup () in
  let r = Shm.cxl_malloc_words a ~data_words:huge_words () in
  for i = 0 to huge_words - 1 do
    Cxl_ref.write_word r i (i * 3)
  done;
  for i = 0 to huge_words - 1 do
    if Cxl_ref.read_word r i <> i * 3 then Alcotest.fail "payload corrupted"
  done;
  Cxl_ref.drop r;
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_multi_segment_huge () =
  let arena, a, _ = setup () in
  let lay = Shm.layout arena in
  (* warm up so the RootRef-page segment is already claimed *)
  let warm = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.drop warm;
  (* bigger than one segment: spans a contiguous run *)
  let words = lay.Layout.segment_words + 500 in
  let before = Shm.free_segments arena in
  let r = Shm.cxl_malloc_words a ~data_words:words () in
  Alcotest.(check bool) "multiple segments claimed" true
    (before - Shm.free_segments arena >= 2);
  Cxl_ref.write_word r (words - 1) 424242;
  Alcotest.(check int) "last word across segments" 424242
    (Cxl_ref.read_word r (words - 1));
  Cxl_ref.drop r;
  Alcotest.(check int) "segments returned" before (Shm.free_segments arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_huge_shared_across_clients () =
  let arena, a, b = setup () in
  let r = Shm.cxl_malloc_words a ~data_words:huge_words () in
  Cxl_ref.write_word r 5 999;
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  assert (Transfer.send q r = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let rb = match Transfer.receive qb with Transfer.Received x -> x | _ -> assert false in
  Alcotest.(check int) "b reads huge" 999 (Cxl_ref.read_word rb 5);
  Cxl_ref.drop r;
  (* b keeps the huge object alive after a's reference is gone *)
  Alcotest.(check int) "count 1" 1 (Refc.ref_cnt b (Cxl_ref.obj rb));
  Cxl_ref.drop rb;
  Transfer.close q;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "reclaimed" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

let test_huge_owner_crash () =
  let arena, a, _ = setup () in
  let before = Shm.free_segments arena in
  let _r = Shm.cxl_malloc_words a ~data_words:huge_words () in
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check int) "segments recovered" before (Shm.free_segments arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_huge_survives_owner_crash_when_shared () =
  let arena, a, b = setup () in
  let r = Shm.cxl_malloc_words a ~data_words:huge_words () in
  Cxl_ref.write_word r 0 31337;
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  assert (Transfer.send q r = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let rb = match Transfer.receive qb with Transfer.Received x -> x | _ -> assert false in
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  Alcotest.(check int) "huge data intact" 31337 (Cxl_ref.read_word rb 0);
  Cxl_ref.drop rb;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_huge_oom () =
  let arena, a, _ = setup () in
  let lay = Shm.layout arena in
  Alcotest.check_raises "run larger than arena" Alloc.Out_of_shared_memory
    (fun () ->
      ignore
        (Shm.cxl_malloc_words a
           ~data_words:(lay.Layout.segment_words * (cfg.Config.num_segments + 1))
           ()));
  (* a fragmented arena cannot host a full-run huge object *)
  let blockers =
    List.init cfg.Config.num_segments (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ())
  in
  ignore blockers;
  ignore arena

let suite =
  [
    Alcotest.test_case "single-segment huge" `Quick test_single_segment_huge;
    Alcotest.test_case "multi-segment huge" `Quick test_multi_segment_huge;
    Alcotest.test_case "huge shared across clients" `Quick test_huge_shared_across_clients;
    Alcotest.test_case "huge owner crash" `Quick test_huge_owner_crash;
    Alcotest.test_case "huge survives crash when shared" `Quick test_huge_survives_owner_crash_when_shared;
    Alcotest.test_case "huge OOM" `Quick test_huge_oom;
  ]
