(** The asynchronous, stateless, fail-safe recovery service (§3.2, §4.3).

    Recovery of a failed client [i] never blocks live clients and is itself
    restartable at any point (every step is either idempotent or a
    resumable era transaction executed under [i]'s identity):

    + resume the in-flight transaction recorded in [i]'s redo log, using
      Conditions 1 & 2 to decide whether the commit CAS happened; the
      ModifyRefCnt is {e never} redone, the ModifyRef tail is redone at
      least once;
    + finish (or discard) the sealed retirement batch in [i]'s epoch
      journal ({!Epoch}) — before any phase that issues new era-consuming
      transactions for [i], since an unfinished entry's commit is decided
      against [i]'s {e current} era;
    + move [i]'s parked-record registry (era-pinned KV records unlinked by
      the dead writer, {!Layout.park_slot_rr}) into the arena-wide
      adoption journal, retire stamps intact — never freeing era-blind; a
      live successor adopts the entries ([Cxl_kv.adopt_recovered]) or the
      monitor drains them once every announced era has passed
      ({!drain_adopt_journal});
    + close [i]'s transfer-queue endpoints (§5.2);
    + scan [i]'s RootRef pages — the content in and only in those pages —
      releasing every reference the dead client possessed, with the §5.1
      free-pointer guard against blocks whose allocation never completed;
    + drain the persistent worklist: objects whose count hit zero get their
      embedded references detached (depth-first) and their segments marked
      POTENTIAL_LEAKING — reclamation itself is never redone (§5.3);
    + orphan or release [i]'s segments and free the client slot.

    A {!Layout.recovery_lock} serialises recoveries; a fresh recovery first
    finishes any interrupted one it finds under the lock. *)

type report = {
  resumed_txn : bool;  (** an in-flight transaction was resumed *)
  rootrefs_released : int;
  incomplete_allocs : int;  (** §5.1 free-pointer-guard skips *)
  worklist_processed : int;
  segments_orphaned : int;
  segments_released : int;
  leak_marked : int;
  journal_replayed : int;  (** unfinished retirement-journal entries *)
  parked_journaled : int;
      (** parked records moved to the adoption journal *)
}

val pp_report : Format.formatter -> report -> unit

val mutation_crash_reap : bool ref
(** Test-only: re-introduce the historical era-blind reap — recovery frees
    a crashed writer's parked records through the live eager path instead
    of journaling them for adoption. The [kv-crash-reap] explorer mutation;
    the bounded-exhaustive crash-then-recover search must observe the
    resulting use-after-free. *)

val segment_empty : Ctx.t -> int -> bool
(** No live block, no in-use RootRef, no shard-parked stamp anywhere in the
    segment — it can be reset and released. Used by [handle_segments] and by
    the RPC channel-revocation path to return an emptied sub-heap segment to
    the arena. *)

val adopt_pending : Ctx.t -> int
(** Number of occupied adoption-journal slots (awaiting a successor or the
    drain). *)

val drain_adopt_journal : Ctx.t -> int
(** Monitor fallback when no live successor adopts: release every
    unclaimed journal entry whose retire stamp precedes all announced
    reader eras ({!Hazard.min_announced}). Returns the number released.
    Entries claimed by an in-flight adoption or still within an announced
    era are left in place. *)

val recover : Ctx.t -> failed_cid:int -> report
(** Run full recovery of [failed_cid] using [ctx] (any live context — the
    service borrows its stats attribution only; all persistent effects run
    under the dead client's identity). The client must be in [Failed]
    state or already mid-recovery. *)

val resume_interrupted : Ctx.t -> report option
(** If a previous recovery crashed while holding the lock, finish it. *)
