(* The era matrix and commit-detection conditions of §4.3. *)

open Cxlshm

let setup () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  (arena, a, b)

let test_initial_era () =
  let _, a, _ = setup () in
  Alcotest.(check int) "starts at 1" Era.initial (Era.self a)

let test_era_advances_per_txn () =
  let _, a, _ = setup () in
  let r1 = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let r2 = Shm.cxl_malloc a ~size_bytes:8 () in
  let e0 = Era.self a in
  Cxl_ref.set_emb r1 0 r2;
  Alcotest.(check int) "attach advances era" (e0 + 1) (Era.self a);
  Cxl_ref.clear_emb r1 0;
  Alcotest.(check int) "detach advances era" (e0 + 2) (Era.self a);
  Cxl_ref.drop r1;
  Cxl_ref.drop r2

let test_change_advances_twice () =
  let _, a, _ = setup () in
  let p = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let x = Shm.cxl_malloc a ~size_bytes:8 () in
  let y = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.set_emb p 0 x;
  let e0 = Era.self a in
  Cxl_ref.change_emb p 0 y;
  Alcotest.(check int) "change = two eras" (e0 + 2) (Era.self a);
  List.iter Cxl_ref.drop [ p; x; y ]

let test_observation_propagates () =
  let _, a, b = setup () in
  (* A touches an object, then B touches the same object: B must record
     A's era in Era[b][a] (Fig 4 (c) lines 5-6). *)
  let ra = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:2 () in
  let child = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.set_emb ra 0 child;
  let a_era_at_touch = Era.self a - 1 in
  (* B attaches to the same child object via its own rootref. *)
  let rr = Alloc.alloc_rootref b in
  Refc.attach b ~ref_addr:(Rootref.pptr_slot rr) ~refed:(Cxl_ref.obj child);
  let seen = Era.read b ~i:b.Ctx.cid ~j:a.Ctx.cid in
  Alcotest.(check bool)
    (Printf.sprintf "Era[b][a]=%d >= %d" seen a_era_at_touch)
    true (seen >= a_era_at_touch);
  Reclaim.release_rootref b rr;
  Cxl_ref.drop ra;
  Cxl_ref.drop child

let test_committed_condition1 () =
  let _, a, _ = setup () in
  let cidb = 7 in
  (* Simulate: client [cidb]'s CAS committed at era e, header untouched. *)
  let r = Shm.cxl_malloc a ~size_bytes:8 () in
  let obj = Cxl_ref.obj r in
  let hdr = Obj_header.header_of_obj obj in
  Cxlshm_shmem.Mem.unsafe_poke a.Ctx.mem hdr
    (Obj_header.make ~lcid:cidb ~lera:5 ~ref_cnt:2);
  Cxlshm_shmem.Mem.unsafe_poke a.Ctx.mem (Layout.era_cell a.Ctx.lay cidb cidb) 5;
  Alcotest.(check bool) "condition 1 holds" true
    (Refc.committed a ~cid:cidb ~obj ~era:5);
  Alcotest.(check bool) "wrong era does not commit" false
    (Refc.committed a ~cid:cidb ~obj ~era:6);
  (* restore and clean up *)
  Cxlshm_shmem.Mem.unsafe_poke a.Ctx.mem hdr
    (Obj_header.make ~lcid:a.Ctx.cid ~lera:1 ~ref_cnt:1);
  Cxl_ref.drop r

let test_committed_condition2 () =
  let _, a, b = setup () in
  (* B commits at era e on an object, then A overwrites the header; B's
     commit must still be provable through Era[a][b] (Condition 2). *)
  let shared = Shm.cxl_malloc a ~size_bytes:8 () in
  let obj = Cxl_ref.obj shared in
  let e_b = Era.self b in
  let rr_b = Alloc.alloc_rootref b in
  Refc.attach b ~ref_addr:(Rootref.pptr_slot rr_b) ~refed:obj;
  (* A touches the header afterwards (observing B's era). *)
  let rr_a = Alloc.alloc_rootref a in
  Refc.attach a ~ref_addr:(Rootref.pptr_slot rr_a) ~refed:obj;
  (* Header now carries A's lcid; Condition 1 fails for B, Condition 2
     must succeed. *)
  let u = Obj_header.unpack (Ctx.load a (Obj_header.header_of_obj obj)) in
  Alcotest.(check bool) "header overwritten by A" true
    (u.Obj_header.lcid = Some a.Ctx.cid);
  Alcotest.(check bool) "condition 2 proves B's commit" true
    (Refc.committed a ~cid:b.Ctx.cid ~obj ~era:e_b);
  Reclaim.release_rootref a rr_a;
  Reclaim.release_rootref b rr_b;
  Cxl_ref.drop shared

let test_uncommitted_not_proven () =
  let _, a, b = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:8 () in
  let obj = Cxl_ref.obj r in
  (* B never touched this object; no era should prove a commit. *)
  let e_b = Era.self b in
  Alcotest.(check bool) "no phantom commit" false
    (Refc.committed a ~cid:b.Ctx.cid ~obj ~era:e_b);
  Cxl_ref.drop r

let test_refcount_violations_detected () =
  let _, a, _ = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let dead = Shm.cxl_malloc a ~size_bytes:8 () in
  let dead_obj = Cxl_ref.obj dead in
  Cxl_ref.drop dead;
  (* attaching to a freed object must raise *)
  (try
     Refc.attach a ~ref_addr:(Obj_header.emb_slot (Cxl_ref.obj r) 0)
       ~refed:dead_obj;
     Alcotest.fail "expected Refcount_violation"
   with Refc.Refcount_violation _ -> ());
  Cxl_ref.drop r

(* Property: after any interleaved sequence of attach/detach pairs from two
   clients on a shared object, the count equals 1 + (live extra refs), and
   eras are strictly monotone. *)
let prop_refcount_balanced =
  QCheck.Test.make ~name:"refcount balanced under interleaving" ~count:60
    QCheck.(list_of_size Gen.(1 -- 40) (pair bool bool))
    (fun ops ->
      let arena = Shm.create ~cfg:Config.small () in
      let a = Shm.join arena () in
      let b = Shm.join arena () in
      let base = Shm.cxl_malloc a ~size_bytes:8 () in
      let obj = Cxl_ref.obj base in
      let held_a = ref [] and held_b = ref [] in
      List.iter
        (fun (use_a, is_attach) ->
          let ctx = if use_a then a else b in
          let held = if use_a then held_a else held_b in
          if is_attach then begin
            let rr = Alloc.alloc_rootref ctx in
            Refc.attach ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj;
            held := rr :: !held
          end
          else
            match !held with
            | [] -> ()
            | rr :: rest ->
                held := rest;
                ignore
                  (Refc.detach ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj);
                Alloc.free_rootref ctx rr
        )
        ops;
      let expected = 1 + List.length !held_a + List.length !held_b in
      Refc.ref_cnt a obj = expected)

let suite =
  [
    Alcotest.test_case "initial era" `Quick test_initial_era;
    Alcotest.test_case "era advances per txn" `Quick test_era_advances_per_txn;
    Alcotest.test_case "change advances twice" `Quick test_change_advances_twice;
    Alcotest.test_case "observation propagates" `Quick test_observation_propagates;
    Alcotest.test_case "condition 1" `Quick test_committed_condition1;
    Alcotest.test_case "condition 2" `Quick test_committed_condition2;
    Alcotest.test_case "uncommitted not proven" `Quick test_uncommitted_not_proven;
    Alcotest.test_case "violations detected" `Quick test_refcount_violations_detected;
    Generators.to_alcotest prop_refcount_balanced;
  ]
