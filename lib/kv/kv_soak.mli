(** KV control-plane soak: writer killed mid-quiesce, parked records
    adopted by a successor through the arena adoption journal.

    The deterministic drill behind [cxlshm monitor --kill-writer]: a COW
    churn workload on a 4-device striped pool, a reader pinning a hazard
    era mid-walk, the writer killed at the first free inside its
    reclamation pass ({!Cxlshm.Fault.Release_mid_reclaim}), monitor
    condemnation and recovery (registry → adoption journal), successor
    takeover and {!Cxl_kv.adopt_recovered}. A passing run crashed the
    writer, journaled and adopted its parked records, freed no era-pinned
    record, and leaves the arena fsck-clean with counts matching
    reachability. *)

type report = {
  ka_seed : int;
  ka_steps : int;
  ka_writer_cid : int;
  ka_writer_crashed : bool;  (** died at the armed mid-quiesce crash point *)
  ka_journaled : int;  (** registry entries recovery moved to the journal *)
  ka_adopted : int;  (** journal entries the successor re-parked *)
  ka_pinned : int;  (** records still era-pinned when the writer died *)
  ka_pinned_freed : int;  (** pinned records found freed — must be 0 *)
  ka_clean : bool;  (** post-fsck validation *)
}

val writer_kill_adopt : ?steps:int -> seed:int -> unit -> report
(** Deterministic in [seed]; [steps] sizes the steady churn phase. *)

val pp_report : Format.formatter -> report -> unit
