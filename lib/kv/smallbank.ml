type t = { accounts : int; rng : Random.State.t; mutable stamp : int }

let create ~accounts ~seed =
  { accounts; rng = Random.State.make [| seed; 0x5B |]; stamp = 0 }

let checking _t a = a
let savings t a = t.accounts + a

let next t =
  let a = Random.State.int t.rng t.accounts in
  let b = Random.State.int t.rng t.accounts in
  t.stamp <- t.stamp + 1;
  let v = t.stamp in
  let p = Random.State.float t.rng 100.0 in
  if p < 15.0 then (* Balance: read both accounts *)
    [ Kv_intf.Read (checking t a); Kv_intf.Read (savings t a) ]
  else if p < 30.0 then (* DepositChecking *)
    [ Kv_intf.Read (checking t a); Kv_intf.Update (checking t a, v) ]
  else if p < 45.0 then (* TransactSavings *)
    [ Kv_intf.Read (savings t a); Kv_intf.Update (savings t a, v) ]
  else if p < 60.0 then (* Amalgamate: drain a into b *)
    [
      Kv_intf.Read (checking t a);
      Kv_intf.Read (savings t a);
      Kv_intf.Update (checking t a, 0);
      Kv_intf.Update (savings t a, 0);
      Kv_intf.Update (checking t b, v);
    ]
  else if p < 85.0 then (* WriteCheck *)
    [
      Kv_intf.Read (checking t a);
      Kv_intf.Read (savings t a);
      Kv_intf.Update (checking t a, v);
    ]
  else (* SendPayment *)
    [
      Kv_intf.Read (checking t a);
      Kv_intf.Update (checking t a, v);
      Kv_intf.Update (checking t b, v);
    ]

let load_ops t =
  List.concat_map
    (fun a -> [ Kv_intf.Insert (checking t a, 100); Kv_intf.Insert (savings t a, 100) ])
    (List.init t.accounts Fun.id)
