(* Epoch-batched retirement and sharded class heads: parking semantics,
   the fence-per-batch contract, every new crash window, and the
   stamp-pinning that makes cross-domain stealing safe against the §5.3
   segment recycler. *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem

let epoch_cfg ?(batch = 2) () = { Config.small with Config.epoch_batch = batch }
let shard_cfg () = { Config.small with Config.num_domains = 2 }

let check_clean arena label =
  let v = Shm.validate arena in
  Alcotest.(check bool)
    (label ^ " validate: " ^ String.concat "; " v.Validate.errors)
    true (Validate.is_clean v);
  let f = Fsck.check (Shm.mem arena) (Shm.layout arena) in
  Alcotest.(check bool)
    (label ^ " fsck: " ^ String.concat "; " f.Validate.errors)
    true (Validate.is_clean f)

(* A zero-count rootref parks in the volatile buffer: the object stays
   alive until the batch flushes, and a clean leave drains the tail. *)
let test_park_and_flush () =
  let arena = Shm.create ~cfg:(epoch_cfg ()) () in
  let a = Shm.join arena () in
  let r1 = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.drop r1;
  (* One parked retirement: still linked, still counted. *)
  Alcotest.(check int) "parked object still alive" 1
    (Shm.validate arena).Validate.live_objects;
  let r2 = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.drop r2;
  (* Second park fills the batch of 2 and flushes it. *)
  Alcotest.(check int) "batch flush retired both" 0
    (Shm.validate arena).Validate.live_objects;
  let r3 = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.drop r3;
  Shm.leave a;
  Alcotest.(check int) "leave drains the partial batch" 0
    (Shm.validate arena).Validate.live_objects;
  check_clean arena "after leave"

(* The tentpole contract, proved on the counting backend: a steady-state
   alloc+drop loop issues exactly one fence per K-retirement batch. *)
let test_fence_per_batch () =
  let batch = 16 in
  let cfg =
    {
      Config.small with
      Config.backend = Mem.Counting_fast;
      epoch_batch = batch;
    }
  in
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  for _ = 1 to 2 * batch do
    Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:32 ())
  done;
  let mem = Shm.mem arena in
  let b0 = Option.get (Mem.op_breakdown mem) in
  let rounds = 4 * batch in
  for _ = 1 to rounds do
    Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:32 ())
  done;
  let b1 = Option.get (Mem.op_breakdown mem) in
  let fences = b1.Cxlshm_shmem.Backend_counting.fences
               - b0.Cxlshm_shmem.Backend_counting.fences in
  Alcotest.(check int) "one fence per retirement batch" (rounds / batch)
    fences

(* Crash inside [Epoch.flush_retired] at each labeled window; recovery
   must finish exactly the unfinished suffix of the sealed batch. *)
let test_retire_crash_windows () =
  List.iter
    (fun (point, expect_replayed) ->
      let arena = Shm.create ~cfg:(epoch_cfg ()) () in
      let a = Shm.join arena () in
      let r1 = Shm.cxl_malloc a ~size_bytes:32 () in
      let r2 = Shm.cxl_malloc a ~size_bytes:32 () in
      Cxl_ref.drop r1;
      a.Ctx.fault <- Fault.at point ~nth:1;
      (try
         Cxl_ref.drop r2;
         Alcotest.fail "expected crash"
       with Fault.Crashed _ -> ());
      a.Ctx.fault <- Fault.none;
      Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
      let r = Shm.recover arena ~failed_cid:a.Ctx.cid in
      Alcotest.(check int)
        ("journal entries replayed at " ^ Fault.point_name point)
        expect_replayed r.Recovery.journal_replayed;
      ignore (Shm.scan_leaking arena);
      Alcotest.(check int)
        ("nothing alive after " ^ Fault.point_name point)
        0 (Shm.validate arena).Validate.live_objects;
      check_clean arena ("retire crash at " ^ Fault.point_name point))
    [
      (* Sealed, nothing retired yet: both entries replay. *)
      (Fault.Retire_after_seal, 2);
      (* First entry fully retired (its in_use cleared): one replays. *)
      (Fault.Retire_mid_batch, 1);
      (* All retired, only the journal-clear store is missing. *)
      (Fault.Retire_after_batch, 0);
    ]

(* Crash inside the count-neutral [Refc.move] of an epoch-mode transfer
   receive; the Move redo record must resume iff the relink landed. *)
let test_move_crash_windows () =
  List.iter
    (fun (point, expect_resumed) ->
      let arena = Shm.create ~cfg:(epoch_cfg ~batch:4 ()) () in
      let a = Shm.join arena () in
      let b = Shm.join arena () in
      let ra = Shm.cxl_malloc a ~size_bytes:32 () in
      let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
      Alcotest.(check bool) "sent" true (Transfer.send q ra = Transfer.Sent);
      Cxl_ref.drop ra;
      let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
      b.Ctx.fault <- Fault.at point ~nth:1;
      (try
         ignore (Transfer.receive qb);
         Alcotest.fail "expected crash"
       with Fault.Crashed _ -> ());
      b.Ctx.fault <- Fault.none;
      Client.declare_failed (Shm.service_ctx arena) ~cid:b.Ctx.cid;
      let r = Shm.recover arena ~failed_cid:b.Ctx.cid in
      Alcotest.(check bool)
        ("move resumed at " ^ Fault.point_name point)
        expect_resumed r.Recovery.resumed_txn;
      Transfer.close q;
      (* A's own drops parked in its epoch buffer; leaving drains them. *)
      Shm.leave a;
      ignore (Shm.scan_leaking arena);
      Alcotest.(check int)
        ("nothing alive after " ^ Fault.point_name point)
        0 (Shm.validate arena).Validate.live_objects;
      check_clean arena ("move crash at " ^ Fault.point_name point))
    [
      (* Record written, relink not yet: nothing to resume — the queue
         slot still owns the reference and endpoint recovery reaps it. *)
      (Fault.Txn_after_redo, false);
      (* RootRef linked, source slot not yet cleared: resume finishes the
         idempotent clear. *)
      (Fault.Move_after_link, true);
      (* Cleared but the era not advanced: resume consumes the era. *)
      (Fault.Move_after_clear, true);
    ]

(* Non-owner frees park on the freeing client's domain stack and the next
   same-class allocation pops the parked block back. *)
let test_shard_park_and_pop () =
  let arena = Shm.create ~cfg:(shard_cfg ()) () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let ra = Shm.cxl_malloc a ~size_bytes:32 () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  Alcotest.(check bool) "sent" true (Transfer.send q ra = Transfer.Sent);
  Cxl_ref.drop ra;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let rb =
    match Transfer.receive qb with
    | Transfer.Received r -> r
    | _ -> Alcotest.fail "receive"
  in
  let obj = Cxl_ref.obj rb in
  (* B's drop is a non-owner free: the block parks on B's domain stack
     (stamped), and the arena must still validate — the stack walk counts
     parked blocks as free. *)
  Cxl_ref.drop rb;
  check_clean arena "block parked on shard stack";
  (* B's next same-class allocation pops the parked block. *)
  let rb2 = Shm.cxl_malloc b ~size_bytes:32 () in
  Alcotest.(check int) "shard pop returned the parked block" obj
    (Cxl_ref.obj rb2);
  Cxl_ref.drop rb2;
  Transfer.close q;
  Transfer.close qb;
  check_clean arena "after shard round-trip"

(* A parked stamp pins the donor segment: the §5.3 scan must not recycle
   the page under a stealable stack entry, even once the owner is dead —
   and fsck, which drops the stacks and stamps wholesale, unpins it. *)
let test_shard_pin_blocks_recycle () =
  let arena = Shm.create ~cfg:(shard_cfg ()) () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let ra = Shm.cxl_malloc a ~size_bytes:32 () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  Alcotest.(check bool) "sent" true (Transfer.send q ra = Transfer.Sent);
  Cxl_ref.drop ra;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let rb =
    match Transfer.receive qb with
    | Transfer.Received r -> r
    | _ -> Alcotest.fail "receive"
  in
  let obj = Cxl_ref.obj rb in
  let svc = Shm.service_ctx arena in
  let seg = Layout.segment_of_addr (Shm.layout arena) obj in
  Cxl_ref.drop rb;
  Transfer.close qb;
  (* Owner dies with the block parked in its segment. *)
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "parked stamp pins the donor segment" true
    (Segment.state svc seg <> Segment.Free);
  check_clean arena "pinned segment";
  (* A live peer can still steal the parked block out of the dead owner's
     segment — exactly what the pin protects. *)
  let rb2 = Shm.cxl_malloc b ~size_bytes:32 () in
  Alcotest.(check int) "stole the parked block" obj (Cxl_ref.obj rb2);
  Cxl_ref.drop rb2;
  (* B re-parks it on drop; B leaving doesn't drain domain stacks, so the
     segment stays pinned until fsck rebuilds the free structures. *)
  Shm.leave b;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "still pinned after re-park" true
    (Segment.state svc seg <> Segment.Free);
  let rep = Shm.fsck arena in
  Alcotest.(check bool) "fsck clean" true (Fsck.clean rep);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "fsck unpinned; segment recycled" true
    (Segment.state svc seg = Segment.Free)

let suite =
  [
    Alcotest.test_case "park, batch flush, leave drains" `Quick
      test_park_and_flush;
    Alcotest.test_case "one fence per retirement batch" `Quick
      test_fence_per_batch;
    Alcotest.test_case "retirement crash windows" `Quick
      test_retire_crash_windows;
    Alcotest.test_case "move crash windows" `Quick test_move_crash_windows;
    Alcotest.test_case "shard park and pop" `Quick test_shard_park_and_pop;
    Alcotest.test_case "parked stamp pins segment" `Quick
      test_shard_pin_blocks_recycle;
  ]
