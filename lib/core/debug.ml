module Mem = Cxlshm_shmem.Mem

let flags_name = function
  | 0 -> "free"
  | 1 -> "alive"
  | 2 -> "failed"
  | 3 -> "suspected"
  | n -> Printf.sprintf "?%d" n

let pp_clients ppf (mem, lay) =
  let peek = Mem.unsafe_peek mem in
  let m = lay.Layout.cfg.Config.max_clients in
  Format.fprintf ppf "clients (%d slots):@." m;
  for cid = 0 to m - 1 do
    let flags = peek (Layout.client_flags lay cid) in
    if flags <> 0 then
      Format.fprintf ppf "  cid %-3d %-7s era=%-6d heartbeat=%-6d hazard=%d@."
        cid (flags_name flags)
        (peek (Layout.era_cell lay cid cid))
        (peek (Layout.client_heartbeat lay cid))
        (peek (Layout.client_hazard lay cid))
  done

let pp_era_matrix ppf (mem, lay) =
  let peek = Mem.unsafe_peek mem in
  let m = lay.Layout.cfg.Config.max_clients in
  let active =
    List.filter
      (fun cid -> peek (Layout.era_cell lay cid cid) > 0)
      (List.init m Fun.id)
  in
  Format.fprintf ppf "era matrix (rows with activity):@.      ";
  List.iter (fun j -> Format.fprintf ppf "%6d" j) active;
  Format.fprintf ppf "@.";
  List.iter
    (fun i ->
      Format.fprintf ppf "  %3d " i;
      List.iter
        (fun j -> Format.fprintf ppf "%6d" (peek (Layout.era_cell lay i j)))
        active;
      Format.fprintf ppf "@.")
    active

let seg_state_name = function
  | 0 -> "free"
  | 1 -> "active"
  | 2 -> "orphan"
  | 3 -> "leaking"
  | 4 -> "huge"
  | 5 -> "huge+"
  | n -> Printf.sprintf "?%d" n

let pp_segments ppf (mem, lay) =
  let peek = Mem.unsafe_peek mem in
  let cfg = lay.Layout.cfg in
  Format.fprintf ppf "segments (%d x %d words):@." cfg.Config.num_segments
    lay.Layout.segment_words;
  for s = 0 to cfg.Config.num_segments - 1 do
    let occ = peek (Layout.seg_occupied lay s) in
    let st = peek (Layout.seg_state lay s) in
    if occ <> 0 || st <> 0 then begin
      let kinds = Hashtbl.create 8 in
      for p = 0 to cfg.Config.pages_per_segment - 1 do
        let gid = Layout.page_gid lay ~seg:s ~page:p in
        let k = peek (Layout.page_kind lay ~gid) in
        if k <> 0 then
          Hashtbl.replace kinds k (1 + (try Hashtbl.find kinds k with Not_found -> 0))
      done;
      let pages =
        Hashtbl.fold (fun k n acc -> Printf.sprintf "%dx(kind %d)" n k :: acc) kinds []
      in
      Format.fprintf ppf "  seg %-3d %-8s owner=%-4s v%-3d pages: %s@." s
        (seg_state_name st)
        (if occ = 0 then "-" else string_of_int (occ - 1))
        (peek (Layout.seg_version lay s))
        (if pages = [] then "none" else String.concat " " pages)
    end
  done

let pp_queues ppf (mem, lay) =
  let refs = Transfer.directory_refs mem lay in
  Format.fprintf ppf "queue directory: %d active slot(s)@." (List.length refs);
  List.iter (fun q -> Format.fprintf ppf "  queue object @%d@." q) refs

let pp_roots ppf (mem, lay) =
  let refs = Named_roots.directory_refs mem lay in
  Format.fprintf ppf "named roots: %d entr(ies)@." (List.length refs);
  List.iter (fun p -> Format.fprintf ppf "  root object @%d@." p) refs

let pp_arena ppf ml =
  pp_clients ppf ml;
  pp_era_matrix ppf ml;
  pp_segments ppf ml;
  pp_queues ppf ml;
  pp_roots ppf ml

let summary mem lay =
  let peek = Mem.unsafe_peek mem in
  let cfg = lay.Layout.cfg in
  let alive = ref 0 in
  for cid = 0 to cfg.Config.max_clients - 1 do
    if peek (Layout.client_flags lay cid) = 1 then incr alive
  done;
  let owned = ref 0 and carved = ref 0 in
  for s = 0 to cfg.Config.num_segments - 1 do
    if peek (Layout.seg_occupied lay s) <> 0 then incr owned;
    for p = 0 to cfg.Config.pages_per_segment - 1 do
      let gid = Layout.page_gid lay ~seg:s ~page:p in
      if peek (Layout.page_kind lay ~gid) <> 0 then incr carved
    done
  done;
  Printf.sprintf "%d client(s) alive, %d/%d segment(s) owned, %d page(s) carved"
    !alive !owned cfg.Config.num_segments !carved
