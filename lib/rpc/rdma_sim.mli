(** Simulated RDMA RC transport (the Fig 8 baseline's NIC).

    Models a ConnectX-5-class NIC under reliable-connected two-sided verbs,
    as used by Herd-style RPC: each message pays a fixed one-way latency
    (~2 µs) plus serialisation/DMA bandwidth (~12.5 GB/s), and the payload
    is physically copied (pass-by-value). Endpoints are in-process queues
    between domains; the modeled clock accumulates per endpoint. *)

type endpoint

val pair : unit -> endpoint * endpoint
(** A connected QP pair. *)

val send : endpoint -> bytes -> unit
(** Copy + transmit; accounts serialisation and wire time on the sender. *)

val try_recv : endpoint -> bytes option
(** Delivery accounts DMA-copy {e and} deserialisation time on the
    receiver, so both directions of a round trip pay for their bytes. *)

val recv : endpoint -> bytes
(** Blocking receive (spins). *)

val modeled_ns : endpoint -> float
(** Modeled transport time accumulated at this endpoint. *)

val message_latency_ns : float
val bytes_per_ns : float
