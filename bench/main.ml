(* Benchmark harness: one experiment per table/figure of the paper's
   evaluation (§6). Each experiment prints the same rows/series the paper
   reports, under two clocks:

   - modeled time: memory events priced by the Table 1 cost model — the
     clock whose *shape* is comparable with the paper's hardware numbers;
   - wall time: the simulator's real elapsed time (real domains, real CAS).

   Usage:
     dune exec bench/main.exe                 (all experiments, quick sizes)
     dune exec bench/main.exe -- --only fig6-threadtest
     dune exec bench/main.exe -- --full       (larger sweeps)
     dune exec bench/main.exe -- --bechamel   (Bechamel micro-benchmarks)
     dune exec bench/main.exe -- --list                                    *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency
module Histogram = Cxlshm_shmem.Histogram
module Spsc = Cxlshm_spsc.Spsc_queue
module Runner = Cxlshm_bench_util.Runner
module Table = Cxlshm_bench_util.Table
module Workloads = Cxlshm_bench_util.Workloads
module Mim = Cxlshm_allocators.Local_mimalloc
module Jem = Cxlshm_allocators.Local_jemalloc
module Ral = Cxlshm_allocators.Ralloc
module Rpc = Cxlshm_rpc
module Mr = Cxlshm_mapreduce.Cxl_mapreduce
module Mr_job = Cxlshm_mapreduce.Mr_job
module Phoenix = Cxlshm_mapreduce.Phoenix
module Textgen = Cxlshm_mapreduce.Textgen
module Kv = Cxlshm_kv

let full = ref false
let quick n_full n_quick = if !full then n_full else n_quick
(* The modeled clock is computed from per-thread event counts, so sweeps
   beyond the physical core count remain meaningful (the wall-clock column
   degrades, the modeled one does not). *)
let max_threads () = 8
let thread_counts () = List.filter (fun t -> t <= max_threads ()) [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Table 1: memory tier characterisation                               *)
(* ------------------------------------------------------------------ *)

let bench_table1 () =
  let t =
    Table.create ~title:"Table 1: local/remote NUMA vs CXL (8-byte accesses)"
      ~columns:[ "Type"; "Seq MOPS"; "Rand MOPS"; "RandCAS MOPS"; "Latency ns" ]
  in
  List.iter
    (fun tier ->
      let seq, rand, cas = Latency.table1_mops tier in
      Table.add_row t
        [
          Latency.tier_name tier;
          Table.cell_f seq;
          Table.cell_f rand;
          Table.cell_f cas;
          Table.cell_f (Latency.table1_latency_ns tier);
        ])
    Latency.all_tiers;
  Table.print t;
  (* Cross-check: drive the simulator and derive the same numbers from its
     event counters. *)
  let t2 =
    Table.create
      ~title:
        "Table 1 (measured through the simulator; Rand here is a single \
         dependent-access stream, i.e. latency-bound)"
      ~columns:[ "Type"; "Seq MOPS"; "Rand MOPS"; "RandCAS MOPS" ]
  in
  List.iter
    (fun tier ->
      (* region far larger than the modeled CPU cache so random accesses
         actually miss *)
      let region = 1 lsl 21 in
      let mem = Mem.create ~tier ~words:region () in
      let model = Mem.cost_model mem in
      let ops = quick 2_000_000 200_000 in
      let measure f =
        let st = Stats.create () in
        f st;
        float_of_int ops /. (Stats.modeled_ns model st /. 1000.0)
      in
      let rng = Random.State.make [| 5 |] in
      let seq =
        measure (fun st ->
            for i = 0 to ops - 1 do
              ignore (Mem.load mem ~st (i land (region - 1)))
            done)
      in
      let rand =
        measure (fun st ->
            for _ = 1 to ops do
              ignore (Mem.load mem ~st (Random.State.int rng region))
            done)
      in
      let cas =
        measure (fun st ->
            for _ = 1 to ops do
              ignore
                (Mem.cas mem ~st (Random.State.int rng region) ~expected:0
                   ~desired:0)
            done)
      in
      Table.add_row t2
        [
          Latency.tier_name tier;
          Table.cell_f seq;
          Table.cell_f rand;
          Table.cell_f cas;
        ])
    Latency.all_tiers;
  Table.print t2

(* ------------------------------------------------------------------ *)
(* Fig 6: allocator throughput (threadtest & shbench)                  *)
(* ------------------------------------------------------------------ *)

let cxl_shm_cfg threads =
  {
    Config.default with
    Config.max_clients = max 2 (threads + 1);
    num_segments = 96;
    pages_per_segment = 16;
    page_words = 1024;
  }

let tt_rounds () = quick 500 100
let tt_batch = 100
let sh_ops () = quick 50_000 10_000

let workload_ops = function
  | `Threadtest -> Workloads.threadtest_ops ~rounds:(tt_rounds ()) ~batch:tt_batch
  | `Shbench -> Workloads.shbench_ops ~ops:(sh_ops ())

let run_workload ~workload ~seed ~alloc ~free ~write =
  match workload with
  | `Threadtest ->
      Workloads.threadtest ~alloc ~free ~write ~rounds:(tt_rounds ())
        ~batch:tt_batch
  | `Shbench -> Workloads.shbench ~alloc ~free ~write ~seed ~ops:(sh_ops ())

let run_baseline (module A : Cxlshm_allocators.Alloc_intf.S) ~threads ~workload =
  let a = A.create ~words:2_000_000 ~threads in
  let stats = Array.init threads (fun _ -> Stats.create ()) in
  let body tid =
    let th = A.thread a tid in
    run_workload ~workload ~seed:tid
      ~alloc:(fun size -> A.alloc th ~size_bytes:size)
      ~free:(fun b -> A.free th b)
      ~write:(fun b -> A.write_word th b 0 1);
    Stats.add stats.(tid) (A.stats th)
  in
  let model = Latency.of_tier (A.tier a) in
  let r =
    Runner.run_parallel ~threads ~ops_per_thread:(workload_ops workload) ~model
      ~serial:(fun () -> A.serial_stats a)
      (fun tid -> stats.(tid))
      body
  in
  Runner.mops r

let run_cxl_shm ~threads ~workload =
  let arena = Shm.create ~cfg:(cxl_shm_cfg threads) () in
  let stats = Array.init threads (fun _ -> Stats.create ()) in
  let model = Latency.of_tier Latency.Cxl in
  let body tid =
    let ctx = Shm.join arena () in
    run_workload ~workload ~seed:tid
      ~alloc:(fun size -> Shm.cxl_malloc ctx ~size_bytes:size ())
      ~free:Cxl_ref.drop
      ~write:(fun r -> Cxl_ref.write_word r 0 1);
    Stats.add stats.(tid) ctx.Ctx.st;
    Shm.leave ctx
  in
  let r =
    Runner.run_parallel ~threads ~ops_per_thread:(workload_ops workload) ~model
      (fun tid -> stats.(tid))
      body
  in
  (Runner.mops r, stats)

let bench_fig6 workload title () =
  let t =
    Table.create ~title
      ~columns:[ "Threads"; "CXL-SHM"; "Ralloc"; "Jemalloc"; "Mimalloc" ]
  in
  List.iter
    (fun threads ->
      let cxl, _ = run_cxl_shm ~threads ~workload in
      let ral = run_baseline (module Ral) ~threads ~workload in
      let jem = run_baseline (module Jem) ~threads ~workload in
      let mim = run_baseline (module Mim) ~threads ~workload in
      Table.add_row t
        [
          Table.cell_i threads;
          Table.cell_f cxl;
          Table.cell_f ral;
          Table.cell_f jem;
          Table.cell_f mim;
        ])
    (thread_counts ());
  Table.print t;
  print_endline
    "   (MOPS, modeled clock; paper: mimalloc/jemalloc ~1 order above\n\
    \    CXL-SHM; Ralloc comparable to CXL-SHM)"

(* ------------------------------------------------------------------ *)
(* Fig 7: cost breakdown of the CXL-SHM fast path                      *)
(* ------------------------------------------------------------------ *)

let bench_fig7 () =
  let t =
    Table.create ~title:"Fig 7: CXL-SHM fast-path cost breakdown (threadtest)"
      ~columns:[ "Threads"; "Flush %"; "Fence %"; "Alloc %" ]
  in
  let model = Latency.of_tier Latency.Cxl in
  List.iter
    (fun threads ->
      let _, stats = run_cxl_shm ~threads ~workload:`Threadtest in
      let acc = Stats.create () in
      Array.iter (fun s -> Stats.add acc s) stats;
      let access, fence, flush, backoff = Stats.breakdown_ns model acc in
      let total = access +. fence +. flush +. backoff in
      Table.add_row t
        [
          Table.cell_i threads;
          Table.cell_f (100.0 *. flush /. total);
          Table.cell_f (100.0 *. fence /. total);
          Table.cell_f (100.0 *. access /. total);
        ])
    (thread_counts ());
  Table.print t;
  print_endline "   (paper: flush 27-50%, fence <5%, remainder allocation)"

(* ------------------------------------------------------------------ *)
(* §6.2.1: recovery throughput vs Ralloc stop-the-world GC             *)
(* ------------------------------------------------------------------ *)

let bench_recovery () =
  let model = Latency.of_tier Latency.Cxl in
  (* Part A: CXL-SHM recovery rate as the dead client's reference count
     grows — the cost is per-RootRef, so the rate stays flat. *)
  let t =
    Table.create
      ~title:"§6.2.1 (a): CXL-SHM recovery vs refs possessed by the dead client"
      ~columns:[ "RootRefs"; "modeled Mobj/s"; "modeled ms"; "wall ms" ]
  in
  let cxl_1000_ms = ref 0.0 in
  List.iter
    (fun n ->
      let cfg =
        {
          Config.default with
          Config.num_segments = 1024;
          pages_per_segment = 16;
          page_words = 1024;
        }
      in
      let arena = Shm.create ~cfg () in
      let a = Shm.join arena () in
      let _ = List.init n (fun _ -> Shm.cxl_malloc a ~size_bytes:48 ()) in
      let svc = Shm.service_ctx arena in
      Client.declare_failed svc ~cid:a.Ctx.cid;
      Stats.reset svc.Ctx.st;
      let r, wall_ns =
        Runner.time_wall (fun () -> Recovery.recover svc ~failed_cid:a.Ctx.cid)
      in
      assert (r.Recovery.rootrefs_released = n);
      let ns = Stats.modeled_ns model svc.Ctx.st in
      if n = 1_000 then cxl_1000_ms := ns /. 1e6;
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_f (float_of_int n /. (ns /. 1e3));
          Table.cell_f (ns /. 1e6);
          Table.cell_f (wall_ns /. 1e6);
        ])
    (if !full then [ 1_000; 10_000; 50_000 ] else [ 1_000; 5_000 ]);
  Table.print t;
  (* Part B: hold the live set at 1000 objects and grow the carved heap:
     Ralloc's stop-the-world conservative GC scans the whole heap, while
     CXL-SHM's recovery touches only the dead client's RootRef pages. *)
  let t2 =
    Table.create
      ~title:
        "§6.2.1 (b): recovery time vs heap size (1000 live objects fixed)"
      ~columns:
        [ "Heap words"; "Ralloc GC ms (modeled)"; "CXL-SHM ms (modeled)" ]
  in
  List.iter
    (fun heap_words ->
      let ral = Ral.create ~words:heap_words ~threads:1 in
      let th = Ral.thread ral 0 in
      (* carve the whole heap: fill it, then free everything *)
      let rec fill acc =
        match Ral.alloc th ~size_bytes:48 with
        | b -> fill (b :: acc)
        | exception Out_of_memory -> acc
      in
      let everything = fill [] in
      List.iter (fun b -> Ral.free th b) everything;
      let live = Array.init 1_000 (fun _ -> Ral.alloc th ~size_bytes:48) in
      Array.iter
        (fun b -> for w = 0 to 5 do Ral.write_word th b w 0 done)
        live;
      Ral.set_root th live.(0);
      let gc_st = Stats.create () in
      ignore (Ral.recover ral ~st:gc_st);
      let gc_ns = Stats.modeled_ns (Latency.of_tier Latency.Remote_numa) gc_st in
      Table.add_row t2
        [
          Table.cell_i heap_words;
          Table.cell_f (gc_ns /. 1e6);
          Table.cell_f !cxl_1000_ms;
        ])
    (if !full then [ 500_000; 2_000_000; 8_000_000 ]
     else [ 500_000; 2_000_000 ]);
  Table.print t2;
  print_endline
    "   (paper: GC-based pmem recovery is proportional to the whole pool\n\
    \    (10-100 s at scale) while CXL-SHM recovers ~tens of millions of\n\
    \    objects/s independent of pool size)"

let bench_leak_scan () =
  let t =
    Table.create ~title:"§5.3/§6.2.1: POTENTIAL_LEAKING segment-local scan"
      ~columns:[ "Segment words"; "recycled"; "scan wall µs"; "modeled µs" ]
  in
  (* Fill a segment with blocks, free them, mark the segment leaking, then
     time the full block-position scan that recycles it (§5.3). *)
  let cfg = { Config.default with Config.num_segments = 8 } in
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  let blocks = List.init 200 (fun _ -> Shm.cxl_malloc a ~size_bytes:32 ()) in
  List.iter Cxl_ref.drop blocks;
  let svc = Shm.service_ctx arena in
  let seg =
    match Segment.owned_by svc ~cid:a.Ctx.cid with
    | s :: _ -> s
    | [] -> failwith "no segment owned"
  in
  Segment.mark_leaking svc seg;
  Client.declare_failed svc ~cid:a.Ctx.cid;
  Stats.reset svc.Ctx.st;
  let recycled, wall = Runner.time_wall (fun () -> Reclaim.scan_segment svc seg) in
  let modeled = Stats.modeled_ns (Latency.of_tier Latency.Cxl) svc.Ctx.st in
  let lay = Shm.layout arena in
  Table.add_row t
    [
      Table.cell_i lay.Layout.segment_words;
      (if recycled then "yes" else "no");
      Table.cell_f (wall /. 1e3);
      Table.cell_f (modeled /. 1e3);
    ];
  Table.print t;
  print_endline "   (paper: <20 µs per 64 MB segment, amortisable)"

(* ------------------------------------------------------------------ *)
(* Fig 8: CXL-RPC vs RDMA RPC vs raw SPSC                              *)
(* ------------------------------------------------------------------ *)

let rpc_cfg ?(page_words = 1024) ?(num_segments = 128)
    ?(pages_per_segment = 16) pairs =
  {
    Config.default with
    Config.max_clients = max 4 ((2 * pairs) + 2);
    num_segments;
    pages_per_segment;
    page_words;
    queue_slots = max 64 (8 * pairs);
  }

(* Arguments now live inside the channel sub-heap (pointer isolation), so
   the largest payload must fit a size class: pick the page size so the
   payload is a class block, and shrink the arena so big pages don't blow
   up the simulated-memory footprint. *)
let rpc_payload_cfg pairs payload_bytes =
  let words = ((payload_bytes + 7) / 8) + 64 in
  let rec fit p = if p >= words then p else fit (2 * p) in
  let page_words = fit 1024 in
  let scale = page_words / 1024 in
  rpc_cfg ~page_words
    ~num_segments:(max 8 (128 / scale))
    ~pages_per_segment:(if scale >= 8 then 4 else 16)
    pairs

(* One client/server pair exchanging [calls] CXL-RPC calls, driven in
   lockstep from one thread so the modeled clock contains only useful work
   (no idle-poll traffic). Returns the pair's summed memory-event stats. *)
let cxl_rpc_pair arena ~calls ~payload_bytes =
  let c = Shm.join arena () in
  let s = Shm.join arena () in
  let srv = Rpc.Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:32 in
  let client = Rpc.Cxl_rpc.connect c ~server_cid:s.Ctx.cid ~capacity:32 in
  let payload = Rpc.Cxl_rpc.alloc_arg client ~size_bytes:payload_bytes () in
  for _ = 1 to calls do
    let p = Rpc.Cxl_rpc.call_async client ~func:1 ~args:[ payload ] ~output_bytes:8 in
    let served =
      Rpc.Cxl_rpc.serve_one srv ~handler:(fun ~func:_ ~args:_ ~output ->
          Rpc.Message.write_word output 0 1)
    in
    assert served;
    Cxl_ref.drop (Rpc.Cxl_rpc.finish p)
  done;
  Cxl_ref.drop payload;
  Rpc.Cxl_rpc.close_client client;
  Rpc.Cxl_rpc.close_server srv;
  let acc = Stats.copy c.Ctx.st in
  Stats.add acc s.Ctx.st;
  Shm.leave c;
  Shm.leave s;
  acc

let run_rdma ~calls ~payload_bytes =
  let cl, sv = Rpc.Rdma_rpc.pair () in
  let payload = Bytes.create payload_bytes in
  for _ = 1 to calls do
    Rpc.Rdma_rpc.send_request cl ~func:1 ~args:[ payload ];
    let served =
      Rpc.Rdma_rpc.serve_one sv ~handler:(fun ~func:_ ~args:_ -> Bytes.create 8)
    in
    assert served;
    match Rpc.Rdma_rpc.try_recv_response cl with
    | Some _ -> ()
    | None -> assert false
  done;
  Rpc.Rdma_rpc.client_modeled_ns cl +. Rpc.Rdma_rpc.server_modeled_ns sv

let bench_fig8_clients () =
  let t =
    Table.create
      ~title:"Fig 8 (left): RPC throughput vs client/server pairs (64 B)"
      ~columns:[ "Pairs"; "CXL-RPC KOPS"; "SPSC KOPS"; "RDMA KOPS" ]
  in
  let model = Latency.of_tier Latency.Cxl in
  let pairs_list = List.filter (fun p -> 2 * p <= max 2 (max_threads ())) [ 1; 2; 4 ] in
  List.iter
    (fun pairs ->
      let calls = quick 3_000 500 in
      (* Pairs are independent; run them one after another on one arena and
         take the slowest pair's modeled time as the parallel makespan. *)
      let arena = Shm.create ~cfg:(rpc_cfg pairs) () in
      let per_pair =
        List.init pairs (fun _ -> cxl_rpc_pair arena ~calls ~payload_bytes:64)
      in
      let slowest =
        List.fold_left
          (fun acc s -> Float.max acc (Stats.modeled_ns model s))
          0.0 per_pair
      in
      let cxl_kops = float_of_int (pairs * calls) /. (slowest /. 1e6) in
      (* Raw SPSC exchange (the upper bound): one allocator round trip plus
         one push/pop per message, as in the paper's inter-thread test. *)
      let spsc_kops =
        let mem = Mem.create ~tier:Latency.Cxl ~words:4096 () in
        let st = Stats.create () in
        let q = Spsc.create mem ~st ~base:8 ~capacity:64 in
        let arena = Shm.create ~cfg:(rpc_cfg 1) () in
        let ctx = Shm.join arena () in
        for i = 1 to calls do
          let r = Shm.cxl_malloc ctx ~size_bytes:64 () in
          Spsc.push q ~st i;
          ignore (Spsc.pop q ~st);
          Cxl_ref.drop r
        done;
        Stats.add st ctx.Ctx.st;
        float_of_int (pairs * calls) /. (Stats.modeled_ns model st /. 1e6)
      in
      let rdma_ns = run_rdma ~calls ~payload_bytes:64 in
      let rdma_kops = float_of_int (pairs * calls) /. (rdma_ns /. 1e6) in
      Table.add_row t
        [
          Table.cell_i pairs;
          Table.cell_f cxl_kops;
          Table.cell_f spsc_kops;
          Table.cell_f rdma_kops;
        ])
    pairs_list;
  Table.print t;
  print_endline "   (paper: CXL-RPC 3.8-4.6x RDMA at 64 B; about half of raw SPSC)"

let bench_fig8_payload () =
  let t =
    Table.create ~title:"Fig 8 (right): RPC throughput vs payload size (1 pair)"
      ~columns:[ "Bytes"; "CXL-RPC KOPS"; "RDMA KOPS"; "CXL/RDMA" ]
  in
  let model = Latency.of_tier Latency.Cxl in
  let sizes =
    if !full then [ 64; 512; 4096; 32_768; 524_288 ]
    else [ 64; 512; 4096; 32_768 ]
  in
  List.iter
    (fun size ->
      let calls = quick 2_000 300 in
      let arena = Shm.create ~cfg:(rpc_payload_cfg 1 size) () in
      let s = cxl_rpc_pair arena ~calls ~payload_bytes:size in
      let cxl_kops = float_of_int calls /. (Stats.modeled_ns model s /. 1e6) in
      let rdma_ns = run_rdma ~calls ~payload_bytes:size in
      let rdma_kops = float_of_int calls /. (rdma_ns /. 1e6) in
      Table.add_row t
        [
          Table.cell_i size;
          Table.cell_f cxl_kops;
          Table.cell_f rdma_kops;
          Table.cell_f (cxl_kops /. rdma_kops);
        ])
    sizes;
  Table.print t;
  print_endline
    "   (paper: CXL-RPC flat in payload size — only references move —\n\
    \    while pass-by-value RDMA degrades with size)"

(* ------------------------------------------------------------------ *)
(* RPC isolation: zero-copy CXL-RPC vs pass-by-value RDMA              *)
(* ------------------------------------------------------------------ *)

(* Fan-in: [n] clients call one server process; the server owns one
   endpoint per client and serves them round-robin. The makespan is the
   busiest context's modeled clock — with fan-in the server is the shared
   bottleneck. *)
let cxl_rpc_fan_in arena ~n ~calls ~payload_bytes =
  let s = Shm.join arena () in
  let cs = List.init n (fun _ -> Shm.join arena ()) in
  let eps =
    List.map
      (fun c ->
        let srv = Rpc.Cxl_rpc.accept s ~client_cid:c.Ctx.cid ~capacity:32 in
        let cl = Rpc.Cxl_rpc.connect c ~server_cid:s.Ctx.cid ~capacity:32 in
        let payload = Rpc.Cxl_rpc.alloc_arg cl ~size_bytes:payload_bytes () in
        (cl, srv, payload))
      cs
  in
  for _ = 1 to calls do
    let pending =
      List.map
        (fun (cl, _, payload) ->
          Rpc.Cxl_rpc.call_async cl ~func:1 ~args:[ payload ] ~output_bytes:8)
        eps
    in
    List.iter
      (fun (_, srv, _) ->
        let served =
          Rpc.Cxl_rpc.serve_one srv ~handler:(fun ~func:_ ~args:_ ~output ->
              Rpc.Message.write_word output 0 1)
        in
        assert served)
      eps;
    List.iter (fun p -> Cxl_ref.drop (Rpc.Cxl_rpc.finish p)) pending
  done;
  List.iter
    (fun (cl, srv, payload) ->
      Cxl_ref.drop payload;
      Rpc.Cxl_rpc.close_client cl;
      Rpc.Cxl_rpc.close_server srv)
    eps;
  let model = Latency.of_tier Latency.Cxl in
  let makespan =
    List.fold_left
      (fun acc c -> Float.max acc (Stats.modeled_ns model c.Ctx.st))
      (Stats.modeled_ns model s.Ctx.st)
      cs
  in
  List.iter Shm.leave cs;
  Shm.leave s;
  makespan

let rdma_fan_in ~n ~calls ~payload_bytes =
  let pairs = List.init n (fun _ -> Rpc.Rdma_rpc.pair ()) in
  let payload = Bytes.create payload_bytes in
  for _ = 1 to calls do
    List.iter
      (fun (cl, _) -> Rpc.Rdma_rpc.send_request cl ~func:1 ~args:[ payload ])
      pairs;
    List.iter
      (fun (_, sv) ->
        let served =
          Rpc.Rdma_rpc.serve_one sv ~handler:(fun ~func:_ ~args:_ ->
              Bytes.create 8)
        in
        assert served)
      pairs;
    List.iter
      (fun (cl, _) ->
        match Rpc.Rdma_rpc.try_recv_response cl with
        | Some _ -> ()
        | None -> assert false)
      pairs
  done;
  (* One server process handles every pair's server side, so its work adds
     up; clients run in parallel. *)
  let server_ns =
    List.fold_left
      (fun acc (_, sv) -> acc +. Rpc.Rdma_rpc.server_modeled_ns sv)
      0.0 pairs
  in
  let client_ns =
    List.fold_left
      (fun acc (cl, _) -> Float.max acc (Rpc.Rdma_rpc.client_modeled_ns cl))
      0.0 pairs
  in
  Float.max server_ns client_ns

(* Zero-copy RPC vs RDMA across payload sizes and fan-in. The isolation
   walk (validate every embedded reference stays in-channel) is part of
   the measured serve path, so BENCH_rpc.json doubles as a regression
   baseline for its cost. The run aborts if the zero-copy win fails to
   widen monotonically with payload size — references move, bytes don't. *)
let bench_rpc () =
  let model = Latency.of_tier Latency.Cxl in
  let calls = quick 2_000 300 in
  let sizes = [ 64; 1_024; 8_192; 65_536 ] in
  let t =
    Table.create ~title:"RPC isolation: CXL-RPC vs RDMA per call (1 pair)"
      ~columns:[ "Bytes"; "CXL ns/call"; "RDMA ns/call"; "Speedup" ]
  in
  let payload_rows =
    List.map
      (fun size ->
        let arena = Shm.create ~cfg:(rpc_payload_cfg 1 size) () in
        let st = cxl_rpc_pair arena ~calls ~payload_bytes:size in
        let cxl = Stats.modeled_ns model st /. float_of_int calls in
        let rdma = run_rdma ~calls ~payload_bytes:size /. float_of_int calls in
        Table.add_row t
          [
            Table.cell_i size;
            Table.cell_f cxl;
            Table.cell_f rdma;
            Table.cell_f (rdma /. cxl);
          ];
        (size, cxl, rdma))
      sizes
  in
  Table.print t;
  let widens =
    let rec mono = function
      | (_, c1, r1) :: ((_, c2, r2) :: _ as rest) ->
          r1 /. c1 < r2 /. c2 && mono rest
      | _ -> true
    in
    mono payload_rows
  in
  if not widens then
    failwith "rpc bench: zero-copy speedup does not widen with payload size";
  let fanins = [ 1; 2; 4; 8; 16 ] in
  let tf =
    Table.create ~title:"RPC isolation: fan-in to one server (64 B)"
      ~columns:[ "Clients"; "CXL KOPS"; "RDMA KOPS"; "Speedup" ]
  in
  let fan_rows =
    List.map
      (fun n ->
        let arena = Shm.create ~cfg:(rpc_cfg n) () in
        let cxl_ns = cxl_rpc_fan_in arena ~n ~calls ~payload_bytes:64 in
        let rdma_ns = rdma_fan_in ~n ~calls ~payload_bytes:64 in
        let ops = float_of_int (n * calls) in
        let cxl_kops = ops /. (cxl_ns /. 1e6) in
        let rdma_kops = ops /. (rdma_ns /. 1e6) in
        Table.add_row tf
          [
            Table.cell_i n;
            Table.cell_f cxl_kops;
            Table.cell_f rdma_kops;
            Table.cell_f (cxl_kops /. rdma_kops);
          ];
        (n, cxl_kops, rdma_kops))
      fanins
  in
  Table.print tf;
  let oc = open_out "BENCH_rpc.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"rpc\",\n  \"calls\": %d,\n  \"payload\": [\n" calls;
  List.iteri
    (fun i (size, cxl, rdma) ->
      Printf.fprintf oc
        "    {\"bytes\": %d, \"cxl_ns_per_call\": %.2f, \"rdma_ns_per_call\": \
         %.2f, \"speedup\": %.3f}%s\n"
        size cxl rdma (rdma /. cxl)
        (if i = List.length payload_rows - 1 then "" else ","))
    payload_rows;
  Printf.fprintf oc "  ],\n  \"fanin\": [\n";
  List.iteri
    (fun i (n, ck, rk) ->
      Printf.fprintf oc
        "    {\"clients\": %d, \"cxl_kops\": %.2f, \"rdma_kops\": %.2f, \
         \"speedup\": %.3f}%s\n"
        n ck rk (ck /. rk)
        (if i = List.length fan_rows - 1 then "" else ","))
    fan_rows;
  Printf.fprintf oc "  ],\n  \"speedup_widens_with_size\": %b\n}\n" widens;
  close_out oc;
  print_endline "wrote BENCH_rpc.json"

(* ------------------------------------------------------------------ *)
(* Fig 9: CXL-MapReduce vs Phoenix                                     *)
(* ------------------------------------------------------------------ *)

(* Pages sized so a wordcount output (1 + 2*vocab words) fits a size
   class: outputs are carved inside the channel sub-heap now. *)
let mr_cfg executors =
  {
    Config.default with
    Config.max_clients = (2 * executors) + 2;
    num_segments = 64;
    pages_per_segment = 16;
    page_words = 8192;
  }

let mr_execs () = [ 1; 2; 4; 8 ]

(* Virtual-parallel MapReduce round: tasks run in lockstep client/server
   pairs (one per executor) and are timed individually; the reported time
   is the schedule makespan max_e(sum of executor e's task times) plus the
   master-side merge. Sound on any core count — and the only honest way to
   measure scaling on a single-core host. *)
let mr_round ~arena ~master ~executors ~func ~chunk_args ~output_words ~combine =
  let pairs =
    Array.init executors (fun _ ->
        let s = Shm.join arena () in
        let srv = Rpc.Cxl_rpc.accept s ~client_cid:master.Ctx.cid ~capacity:4 in
        (* Chunks (and kmeans' centroid table) are master-allocated shared
           objects passed by reference: the attached-shared-heap pattern. *)
        Rpc.Cxl_rpc.allow_peer_segments srv;
        (s, srv))
  in
  let clients =
    Array.map
      (fun (s, _) -> Rpc.Cxl_rpc.connect master ~server_cid:s.Ctx.cid ~capacity:4)
      pairs
  in
  let exec_ns = Array.make executors 0.0 in
  let merged = Hashtbl.create 1024 in
  let merge_ns = ref 0.0 in
  List.iteri
    (fun i args ->
      let e = i mod executors in
      let out, task_ns =
        Runner.time_wall (fun () ->
            let p =
              Rpc.Cxl_rpc.call_async clients.(e) ~func ~args
                ~output_bytes:(output_words * 7)
            in
            let served =
              Rpc.Cxl_rpc.serve_one (snd pairs.(e)) ~handler:Mr.task_handler
            in
            assert served;
            Rpc.Cxl_rpc.finish p)
      in
      exec_ns.(e) <- exec_ns.(e) +. task_ns;
      let _, m_ns =
        Runner.time_wall (fun () ->
            List.iter
              (fun (k, v) ->
                Hashtbl.replace merged k
                  (match Hashtbl.find_opt merged k with
                  | Some v0 -> combine v0 v
                  | None -> v))
              (let vv = Rpc.Message.view_of_ref out in
               let n = Rpc.Message.read_word vv 0 in
               List.init n (fun j ->
                   ( Rpc.Message.read_word vv (1 + (2 * j)),
                     Rpc.Message.read_word vv (2 + (2 * j)) ))))
      in
      merge_ns := !merge_ns +. m_ns;
      Cxl_ref.drop out)
    chunk_args;
  Array.iter Rpc.Cxl_rpc.close_client clients;
  Array.iter
    (fun (s, srv) ->
      Rpc.Cxl_rpc.close_server srv;
      Shm.leave s)
    pairs;
  let makespan = Array.fold_left Float.max 0.0 exec_ns +. !merge_ns in
  let pairs_out =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])
  in
  (pairs_out, makespan)

(* Phoenix under the same virtual-parallel schedule. *)
let phoenix_round ~executors ~chunks ~job =
  let exec_ns = Array.make executors 0.0 in
  let partials = Hashtbl.create 1024 in
  let merge_ns = ref 0.0 in
  List.iteri
    (fun i chunk ->
      let e = i mod executors in
      let kvs, task_ns = Runner.time_wall (fun () -> job.Mr_job.map chunk) in
      exec_ns.(e) <- exec_ns.(e) +. task_ns;
      let _, m_ns =
        Runner.time_wall (fun () ->
            List.iter
              (fun (k, v) ->
                Hashtbl.replace partials k
                  (match Hashtbl.find_opt partials k with
                  | Some v0 -> job.Mr_job.combine v0 v
                  | None -> v))
              kvs)
      in
      merge_ns := !merge_ns +. m_ns)
    chunks;
  let makespan = Array.fold_left Float.max 0.0 exec_ns +. !merge_ns in
  let pairs =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) partials [])
  in
  (pairs, makespan)

let bench_fig9_wordcount () =
  let t =
    Table.create ~title:"Fig 9 (left): wordcount time vs executors"
      ~columns:[ "Executors"; "CXL-SHM ms"; "Phoenix ms"; "CXL speedup vs e=1" ]
  in
  let corpus = Textgen.generate ~words:(quick 120_000 30_000) ~vocab:2_000 ~seed:11 in
  let raw = List.map Bytes.of_string (Textgen.chunks corpus ~chunk_bytes:4096) in
  let base = ref 0.0 in
  List.iter
    (fun e ->
      let arena = Shm.create ~cfg:(mr_cfg e) () in
      let master = Shm.join arena () in
      let chunks = List.map (Mr.store_chunk master) raw in
      let result, cxl_ns =
        mr_round ~arena ~master ~executors:e ~func:1
          ~chunk_args:(List.map (fun c -> [ c ]) chunks)
          ~output_words:(1 + (2 * 2_000))
          ~combine:( + )
      in
      assert (result <> []);
      List.iter Cxl_ref.drop chunks;
      let _, phoenix_ns =
        phoenix_round ~executors:e ~chunks:raw
          ~job:(Mr_job.wordcount ~vocab:max_int)
      in
      if e = 1 then base := cxl_ns;
      Table.add_row t
        [
          Table.cell_i e;
          Table.cell_f (cxl_ns /. 1e6);
          Table.cell_f (phoenix_ns /. 1e6);
          Table.cell_f (!base /. cxl_ns);
        ])
    (mr_execs ());
  Table.print t;
  print_endline
    "   (paper: near-linear scaling with executors; wordcount's absolute\n\
    \    CXL-vs-Phoenix gap is not apples-to-apples — footnote 2)"

let bench_fig9_kmeans () =
  let t =
    Table.create ~title:"Fig 9 (right): kmeans time vs executors"
      ~columns:[ "Executors"; "CXL-SHM ms"; "Phoenix ms" ]
  in
  (* Paper: 1k clusters, 500k 8-dim points; scaled for the simulator. *)
  let k = quick 64 16 and dims = 8 in
  let npoints = quick 20_000 6_000 in
  let rng = Random.State.make [| 21 |] in
  let points =
    Array.init npoints (fun _ ->
        let c = Random.State.int rng k in
        Array.init dims (fun d -> (c * 1_000) + (d * 37) + Random.State.int rng 100))
  in
  let chunk_size = 500 in
  let raw =
    List.init (npoints / chunk_size) (fun n ->
        Mr_job.encode_points (Array.sub points (n * chunk_size) chunk_size))
  in
  List.iter
    (fun e ->
      let arena = Shm.create ~cfg:(mr_cfg e) () in
      let master = Shm.join arena () in
      let chunks = List.map (Mr.store_chunk master) raw in
      (* centroids object shared by every task *)
      let cents = Shm.cxl_malloc_words master ~data_words:(2 + (k * dims)) () in
      Cxl_ref.write_word cents 0 k;
      Cxl_ref.write_word cents 1 dims;
      let centroids =
        Array.init k (fun c -> Array.init dims (fun d -> ((c * 37) + d) * 1000))
      in
      let cxl_total = ref 0.0 in
      for _ = 1 to 3 do
        Array.iteri
          (fun c row ->
            Array.iteri
              (fun d x -> Cxl_ref.write_word cents (2 + (c * dims) + d) x)
              row)
          centroids;
        let combined, ns =
          mr_round ~arena ~master ~executors:e ~func:2
            ~chunk_args:(List.map (fun c -> [ c; cents ]) chunks)
            ~output_words:(1 + (2 * k * (dims + 1)))
            ~combine:( + )
        in
        cxl_total := !cxl_total +. ns;
        ignore (Mr_job.kmeans_update ~k ~dims combined centroids)
      done;
      Cxl_ref.drop cents;
      List.iter Cxl_ref.drop chunks;
      let phx_total = ref 0.0 in
      let centroids2 =
        Array.init k (fun c -> Array.init dims (fun d -> ((c * 37) + d) * 1000))
      in
      for _ = 1 to 3 do
        let combined, ns =
          phoenix_round ~executors:e ~chunks:raw
            ~job:(Mr_job.kmeans_assign ~centroids:centroids2 ~dims)
        in
        phx_total := !phx_total +. ns;
        ignore (Mr_job.kmeans_update ~k ~dims combined centroids2)
      done;
      Table.add_row t
        [
          Table.cell_i e;
          Table.cell_f (!cxl_total /. 1e6);
          Table.cell_f (!phx_total /. 1e6);
        ])
    (mr_execs ());
  Table.print t;
  print_endline "   (paper: CXL-MapReduce comparable with Phoenix on kmeans)"

(* ------------------------------------------------------------------ *)
(* Fig 10: key-value store                                             *)
(* ------------------------------------------------------------------ *)

let kv_cfg clients =
  {
    Config.default with
    Config.max_clients = clients + 2;
    num_segments = 768;
    pages_per_segment = 16;
    page_words = 1024;
  }

let kv_value_words = 4

let run_cxl_kv ?(cow = false) ~clients ~ops ~mix ~theta ~keys () =
  let arena = Shm.create ~cfg:(kv_cfg clients) () in
  let creator = Shm.join arena () in
  let store, h0 =
    Kv.Cxl_kv.create creator ~buckets:(keys * 2) ~partitions:clients
      ~value_words:kv_value_words
  in
  for p = 0 to clients - 1 do
    ignore (Kv.Cxl_kv.claim_partition h0 p)
  done;
  for key = 0 to keys - 1 do
    Kv.Cxl_kv.put h0 ~key ~value:key
  done;
  Stats.reset creator.Ctx.st;
  let stats = Array.init clients (fun _ -> Stats.create ()) in
  let model = Latency.of_tier Latency.Cxl in
  let body tid =
    let ctx = if tid = 0 then creator else Shm.join arena () in
    let h = if tid = 0 then h0 else Kv.Cxl_kv.open_store ctx store in
    if tid > 0 then ignore (Kv.Cxl_kv.takeover_partition h tid);
    let w = Kv.Ycsb.create ~keys ~write_ratio:mix ~theta ~seed:(tid + 1) in
    for i = 1 to ops do
      (* writers reach a quiescent point periodically, recycling retired
         record versions (hazard-era reclamation stand-in) *)
      if i land 511 = 0 then Kv.Cxl_kv.quiesce h;
      match Kv.Ycsb.next w with
      | Kv.Kv_intf.Read key -> ignore (Kv.Cxl_kv.get h ~key)
      | Kv.Kv_intf.Update (key, v) | Kv.Kv_intf.Insert (key, v) ->
          (* writers stay inside their own partition (single-writer rule) *)
          let key = key - (key mod clients) + tid in
          let key = if key >= keys then tid else key in
          if cow then Kv.Cxl_kv.put_cow h ~key ~value:v
          else Kv.Cxl_kv.put h ~key ~value:v
      | Kv.Kv_intf.Rmw (key, v) ->
          let key = key - (key mod clients) + tid in
          let key = if key >= keys then tid else key in
          ignore (Kv.Cxl_kv.rmw h ~key ~delta:v)
      | Kv.Kv_intf.Delete key -> ignore (Kv.Cxl_kv.get h ~key)
    done;
    Kv.Cxl_kv.quiesce h;
    Stats.add stats.(tid) ctx.Ctx.st;
    if tid > 0 then begin
      Kv.Cxl_kv.close h;
      Shm.leave ctx
    end
  in
  let r =
    Runner.run_parallel ~threads:clients ~ops_per_thread:ops ~model
      (fun tid -> stats.(tid))
      body
  in
  Runner.mops r

let run_tbb_kv ~clients ~ops ~mix ~theta ~keys =
  let s =
    Kv.Tbb_kv.create ~buckets:(keys * 2) ~value_words:kv_value_words
      ~capacity:(keys * 2) ~threads:clients
  in
  let handles = Array.init clients (fun tid -> Kv.Tbb_kv.handle s tid) in
  for key = 0 to keys - 1 do
    Kv.Tbb_kv.put handles.(0) ~key ~value:key
  done;
  Stats.reset (Kv.Tbb_kv.stats handles.(0));
  let model = Latency.of_tier (Kv.Tbb_kv.tier s) in
  let body tid =
    let h = handles.(tid) in
    let w = Kv.Ycsb.create ~keys ~write_ratio:mix ~theta ~seed:(tid + 1) in
    for _ = 1 to ops do
      match Kv.Ycsb.next w with
      | Kv.Kv_intf.Read key -> ignore (Kv.Tbb_kv.get h ~key)
      | Kv.Kv_intf.Update (key, v) | Kv.Kv_intf.Insert (key, v) ->
          Kv.Tbb_kv.put h ~key ~value:v
      | Kv.Kv_intf.Rmw (key, v) ->
          let old = Option.value (Kv.Tbb_kv.get h ~key) ~default:0 in
          Kv.Tbb_kv.put h ~key ~value:(old + v)
      | Kv.Kv_intf.Delete key -> ignore (Kv.Tbb_kv.get h ~key)
    done
  in
  let r =
    Runner.run_parallel ~threads:clients ~ops_per_thread:ops ~model
      (fun tid -> Kv.Tbb_kv.stats handles.(tid))
      body
  in
  Runner.mops r

let run_lightning_kv ~clients ~ops ~mix ~theta ~keys =
  let s =
    Kv.Lightning_kv.create ~buckets:(keys * 2) ~value_words:kv_value_words
      ~words:(max 2_000_000 (keys * 64)) ~threads:clients
  in
  let handles = Array.init clients (fun tid -> Kv.Lightning_kv.handle s tid) in
  for key = 0 to keys - 1 do
    Kv.Lightning_kv.put handles.(0) ~key ~value:key
  done;
  let preload = Stats.copy (Kv.Lightning_kv.serial_stats s) in
  let model = Latency.of_tier (Kv.Lightning_kv.tier s) in
  let body tid =
    let h = handles.(tid) in
    let w = Kv.Ycsb.create ~keys ~write_ratio:mix ~theta ~seed:(tid + 1) in
    for _ = 1 to ops do
      match Kv.Ycsb.next w with
      | Kv.Kv_intf.Read key -> ignore (Kv.Lightning_kv.get h ~key)
      | Kv.Kv_intf.Update (key, v) | Kv.Kv_intf.Insert (key, v) ->
          Kv.Lightning_kv.put h ~key ~value:v
      | Kv.Kv_intf.Rmw (key, v) ->
          let old = Option.value (Kv.Lightning_kv.get h ~key) ~default:0 in
          Kv.Lightning_kv.put h ~key ~value:(old + v)
      | Kv.Kv_intf.Delete key -> ignore (Kv.Lightning_kv.get h ~key)
    done
  in
  let r =
    Runner.run_parallel ~threads:clients ~ops_per_thread:ops ~model
      ~serial:(fun () -> Stats.diff (Kv.Lightning_kv.serial_stats s) preload)
      (fun tid -> Kv.Lightning_kv.stats handles.(tid))
      body
  in
  Runner.mops r

let kv_clients_list () = List.filter (fun c -> c <= max 2 (max_threads ())) [ 1; 2; 4; 8 ]

let bench_fig10a () =
  let t =
    Table.create ~title:"Fig 10a: KV throughput vs clients (50/50 R/W, uniform)"
      ~columns:[ "Clients"; "TBB-KV MOPS"; "CXL-KV MOPS"; "Lightning MOPS" ]
  in
  List.iter
    (fun clients ->
      (* working set far beyond the CPU-cache window: both stores pay
         memory latencies, as on the paper's testbed *)
      let ops = quick 100_000 20_000 and keys = 32_768 in
      let tbb = run_tbb_kv ~clients ~ops ~mix:0.5 ~theta:0.0 ~keys in
      let cxl = run_cxl_kv ~clients ~ops ~mix:0.5 ~theta:0.0 ~keys () in
      let lit = run_lightning_kv ~clients ~ops ~mix:0.5 ~theta:0.0 ~keys in
      Table.add_row t
        [ Table.cell_i clients; Table.cell_f tbb; Table.cell_f cxl; Table.cell_f lit ])
    (kv_clients_list ());
  Table.print t;
  print_endline
    "   (paper: TBB 1.40-2.61x CXL-KV; CXL-KV 1-3 orders above Lightning)"

let bench_fig10b () =
  let t =
    Table.create ~title:"Fig 10b: CXL-KV throughput vs W/R ratio"
      ~columns:[ "W:R"; "CXL-KV MOPS" ]
  in
  let clients = min 8 (max 2 (max_threads ())) in
  (* Skewed accesses (the paper's YCSB runs use zipf): hot keys stay
     cache-resident, so reads are pure loads while writes pay allocation,
     fence and flush. *)
  List.iter
    (fun (label, mix) ->
      let m =
        run_cxl_kv ~cow:true ~clients ~ops:(quick 60_000 10_000) ~mix
          ~theta:0.9 ~keys:4_096 ()
      in
      Table.add_row t [ label; Table.cell_f m ])
    [
      ("1:0", 1.0);
      ("1:1", 0.5);
      ("1:2", 1.0 /. 3.0);
      ("1:3", 0.25);
      ("1:4", 0.2);
      ("1:9", 0.1);
    ];
  Table.print t;
  print_endline "   (paper: 1:9 reaches ~12.6x the all-write 1:0 case at 8 clients)"

let bench_fig10c () =
  let t =
    Table.create ~title:"Fig 10c: CXL-KV under YCSB with different zipf"
      ~columns:[ "Clients"; "uniform"; "zipf=0.5"; "zipf=0.9"; "zipf=0.99" ]
  in
  List.iter
    (fun clients ->
      let run theta =
        run_cxl_kv ~clients ~ops:(quick 60_000 10_000) ~mix:0.1 ~theta
          ~keys:32_768 ()
      in
      Table.add_row t
        [
          Table.cell_i clients;
          Table.cell_f (run 0.0);
          Table.cell_f (run 0.5);
          Table.cell_f (run 0.9);
          Table.cell_f (run 0.99);
        ])
    (kv_clients_list ());
  Table.print t;
  print_endline "   (paper: higher zipf -> higher throughput (cache locality))"

let bench_fig10d () =
  let t =
    Table.create ~title:"Fig 10d: TATP / Smallbank (KTPS)"
      ~columns:
        [ "Clients"; "TATP CXL-KV"; "TATP TBB"; "SB CXL-KV"; "SB TBB" ]
  in
  let txns = quick 30_000 4_000 in
  let run_txn_cxl ~clients ~make_gen ~load ~keyspace =
    let arena = Shm.create ~cfg:(kv_cfg clients) () in
    let creator = Shm.join arena () in
    let store, h0 =
      Kv.Cxl_kv.create creator ~buckets:65_536 ~partitions:1 ~value_words:2
    in
    ignore (Kv.Cxl_kv.claim_partition h0 0);
    ignore keyspace;
    List.iter
      (function
        | Kv.Kv_intf.Insert (key, v) -> Kv.Cxl_kv.put h0 ~key ~value:v
        | Kv.Kv_intf.Read _ | Kv.Kv_intf.Update _ | Kv.Kv_intf.Delete _
        | Kv.Kv_intf.Rmw _ ->
            ())
      load;
    Stats.reset creator.Ctx.st;
    let stats = Array.init clients (fun _ -> Stats.create ()) in
    let model = Latency.of_tier Latency.Cxl in
    let body tid =
      let ctx = if tid = 0 then creator else Shm.join arena () in
      let h = if tid = 0 then h0 else Kv.Cxl_kv.open_store ctx store in
      let gen = make_gen tid in
      (* client 0 is the (single) writer; the rest are the paper's
         shared-everything readers *)
      for i = 1 to txns do
        if tid = 0 && i land 511 = 0 then Kv.Cxl_kv.quiesce h;
        List.iter
          (fun op ->
            match op with
            | Kv.Kv_intf.Read key -> ignore (Kv.Cxl_kv.get h ~key)
            | Kv.Kv_intf.Update (key, v) | Kv.Kv_intf.Insert (key, v) ->
                if tid = 0 then Kv.Cxl_kv.put h ~key ~value:v
                else ignore (Kv.Cxl_kv.get h ~key)
            | Kv.Kv_intf.Rmw (key, v) ->
                if tid = 0 then ignore (Kv.Cxl_kv.rmw h ~key ~delta:v)
                else ignore (Kv.Cxl_kv.get h ~key)
            | Kv.Kv_intf.Delete key ->
                if tid = 0 then ignore (Kv.Cxl_kv.delete h ~key)
                else ignore (Kv.Cxl_kv.get h ~key))
          (gen ())
      done;
      Stats.add stats.(tid) ctx.Ctx.st;
      if tid > 0 then begin
        Kv.Cxl_kv.close h;
        Shm.leave ctx
      end
    in
    let r =
      Runner.run_parallel ~threads:clients ~ops_per_thread:txns ~model
        (fun tid -> stats.(tid))
        body
    in
    float_of_int (clients * txns) /. (r.Runner.modeled_ns /. 1e6)
  in
  let run_txn_tbb ~clients ~make_gen ~load ~keyspace =
    let s =
      Kv.Tbb_kv.create ~buckets:65_536 ~value_words:2 ~capacity:(keyspace * 4)
        ~threads:clients
    in
    let handles = Array.init clients (fun tid -> Kv.Tbb_kv.handle s tid) in
    List.iter
      (function
        | Kv.Kv_intf.Insert (key, v) -> Kv.Tbb_kv.put handles.(0) ~key ~value:v
        | Kv.Kv_intf.Read _ | Kv.Kv_intf.Update _ | Kv.Kv_intf.Delete _
        | Kv.Kv_intf.Rmw _ ->
            ())
      load;
    Stats.reset (Kv.Tbb_kv.stats handles.(0));
    let model = Latency.of_tier (Kv.Tbb_kv.tier s) in
    let body tid =
      let h = handles.(tid) in
      let gen = make_gen tid in
      for _ = 1 to txns do
        List.iter
          (fun op ->
            match op with
            | Kv.Kv_intf.Read key -> ignore (Kv.Tbb_kv.get h ~key)
            | Kv.Kv_intf.Update (key, v) | Kv.Kv_intf.Insert (key, v) ->
                Kv.Tbb_kv.put h ~key ~value:v
            | Kv.Kv_intf.Rmw (key, v) ->
                let old = Option.value (Kv.Tbb_kv.get h ~key) ~default:0 in
                Kv.Tbb_kv.put h ~key ~value:(old + v)
            | Kv.Kv_intf.Delete key -> ignore (Kv.Tbb_kv.delete h ~key))
          (gen ())
      done
    in
    let r =
      Runner.run_parallel ~threads:clients ~ops_per_thread:txns ~model
        (fun tid -> Kv.Tbb_kv.stats handles.(tid))
        body
    in
    float_of_int (clients * txns) /. (r.Runner.modeled_ns /. 1e6)
  in
  List.iter
    (fun clients ->
      let subs = 4_096 in
      let tatp_load = Kv.Tatp.load_ops (Kv.Tatp.create ~subscribers:subs ~seed:31) in
      let tatp_gen tid =
        let g = Kv.Tatp.create ~subscribers:subs ~seed:(31 + tid) in
        fun () -> Kv.Tatp.next g
      in
      let tatp_cxl =
        run_txn_cxl ~clients ~make_gen:tatp_gen ~load:tatp_load ~keyspace:(subs * 50)
      in
      let tatp_tbb =
        run_txn_tbb ~clients ~make_gen:tatp_gen ~load:tatp_load ~keyspace:(subs * 50)
      in
      let accounts = 4_096 in
      let sb_load = Kv.Smallbank.load_ops (Kv.Smallbank.create ~accounts ~seed:32) in
      let sb_gen tid =
        let g = Kv.Smallbank.create ~accounts ~seed:(32 + tid) in
        fun () -> Kv.Smallbank.next g
      in
      let sb_cxl =
        run_txn_cxl ~clients ~make_gen:sb_gen ~load:sb_load ~keyspace:(accounts * 3)
      in
      let sb_tbb =
        run_txn_tbb ~clients ~make_gen:sb_gen ~load:sb_load ~keyspace:(accounts * 3)
      in
      Table.add_row t
        [
          Table.cell_i clients;
          Table.cell_f tatp_cxl;
          Table.cell_f tatp_tbb;
          Table.cell_f sb_cxl;
          Table.cell_f sb_tbb;
        ])
    (kv_clients_list ());
  Table.print t;
  print_endline
    "   (paper: CXL-KV reaches 46-79% of TBB-KV on TATP, 41-70% on Smallbank)"

(* ------------------------------------------------------------------ *)
(* §6.2.2: fault-injection summary                                     *)
(* ------------------------------------------------------------------ *)

let bench_fault () =
  let t =
    Table.create ~title:"§6.2.2: crash-injection validation"
      ~columns:[ "Runs"; "Crashes"; "Leaks"; "Double frees"; "Wild ptrs" ]
  in
  let runs = quick 400 80 in
  let crashes = ref 0 in
  let leaks = ref 0 and dfree = ref 0 and wild = ref 0 in
  for seed = 1 to runs do
    let arena = Shm.create ~cfg:Config.small () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    a.Ctx.fault <- Fault.nth_point ~n:(1 + (seed mod 37));
    let held = ref [] in
    (try
       for i = 1 to 60 do
         let r =
           Shm.cxl_malloc a ~size_bytes:(16 + (i mod 48)) ~emb_cnt:(i mod 3) ()
         in
         held := r :: !held;
         if i mod 3 = 0 then
           match !held with
           | r :: rest ->
               held := rest;
               Cxl_ref.drop r
           | [] -> ()
       done
     with Fault.Crashed _ -> incr crashes);
    let svc = Shm.service_ctx arena in
    Client.declare_failed svc ~cid:a.Ctx.cid;
    ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
    Client.declare_failed svc ~cid:b.Ctx.cid;
    ignore (Recovery.recover svc ~failed_cid:b.Ctx.cid);
    ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false));
    let v = Shm.validate arena in
    leaks := !leaks + v.Validate.leaks;
    dfree := !dfree + v.Validate.double_frees;
    wild := !wild + v.Validate.wild_pointers
  done;
  Table.add_row t
    [
      Table.cell_i runs;
      Table.cell_i !crashes;
      Table.cell_i !leaks;
      Table.cell_i !dfree;
      Table.cell_i !wild;
    ];
  Table.print t;
  print_endline "   (paper: >100k fault-injected executions, zero violations)"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* §4.2 ablation: the era-based non-blocking transactions vs the
   lock-based straw-man. Two facets: common-case throughput (similar, as
   the paper argues) and behaviour when a peer dies holding the lock
   (blocking vs non-blocking — the reason CXL-SHM exists). *)
let bench_ablation_locking () =
  let t =
    Table.create ~title:"Ablation (§4.2): era-based vs lock-based refcounting"
      ~columns:[ "Scheme"; "attach+detach Mops"; "live client blocked by dead peer?" ]
  in
  let ops = quick 200_000 40_000 in
  let run_throughput scheme =
    let arena = Shm.create ~cfg:(cxl_shm_cfg 1) () in
    let a = Shm.join arena () in
    let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
    let child = Shm.cxl_malloc a ~size_bytes:8 () in
    let slot = Obj_header.emb_slot (Cxl_ref.obj parent) 0 in
    let obj = Cxl_ref.obj child in
    Stats.reset a.Ctx.st;
    (match scheme with
    | `Era ->
        for _ = 1 to ops do
          Refc.attach a ~ref_addr:slot ~refed:obj;
          ignore (Refc.detach a ~ref_addr:slot ~refed:obj)
        done
    | `Locked ->
        for _ = 1 to ops do
          Locked_refc.attach a ~ref_addr:slot ~refed:obj;
          ignore (Locked_refc.detach a ~ref_addr:slot ~refed:obj)
        done);
    let ns = Stats.modeled_ns (Latency.of_tier Latency.Cxl) a.Ctx.st in
    float_of_int (2 * ops) /. (ns /. 1e3)
  in
  let blocking scheme =
    (* a dies holding its scheme's "commitment"; can b finish an operation
       on the same object before any recovery runs? *)
    let arena = Shm.create ~cfg:(cxl_shm_cfg 2) () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
    let child = Shm.cxl_malloc a ~size_bytes:8 () in
    let obj = Cxl_ref.obj child in
    let slot = Obj_header.emb_slot (Cxl_ref.obj parent) 0 in
    a.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
    (try
       match scheme with
       | `Era -> Refc.attach a ~ref_addr:slot ~refed:obj
       | `Locked -> Locked_refc.attach a ~ref_addr:slot ~refed:obj
     with Fault.Crashed _ -> ());
    a.Ctx.fault <- Fault.none;
    let parent_b = Shm.cxl_malloc b ~size_bytes:8 ~emb_cnt:1 () in
    let slot_b = Obj_header.emb_slot (Cxl_ref.obj parent_b) 0 in
    match scheme with
    | `Era ->
        Refc.attach b ~ref_addr:slot_b ~refed:obj;
        "no (proceeds immediately)"
    | `Locked ->
        if Locked_refc.attach_bounded b ~ref_addr:slot_b ~refed:obj ~spins:50_000
        then "no"
        else "YES (spins until recovery)"
  in
  Table.add_row t
    [ "era (CXL-SHM)"; Table.cell_f (run_throughput `Era); blocking `Era ];
  Table.add_row t
    [ "lock (Lightning-style)"; Table.cell_f (run_throughput `Locked); blocking `Locked ];
  Table.print t;
  print_endline
    "   (paper §4.2: the lock-based design has comparable speed but blocks\n\
    \    other clients indefinitely when the holder dies)"

(* §6.1 ablation: CXL 2.0 (explicit CLWB of the RootRef line) vs a CXL 3.0
   / eADR platform where hardware flushes caches on failure. *)
let bench_ablation_eadr () =
  let t =
    Table.create ~title:"Ablation (§6.1): CXL 2.0 flush vs CXL 3.0/eADR"
      ~columns:[ "Mode"; "Threadtest MOPS"; "Flush %" ]
  in
  let model = Latency.of_tier Latency.Cxl in
  List.iter
    (fun (label, eadr) ->
      let arena =
        Shm.create ~cfg:{ (cxl_shm_cfg 1) with Config.eadr } ()
      in
      let ctx = Shm.join arena () in
      Workloads.threadtest
        ~alloc:(fun size -> Shm.cxl_malloc ctx ~size_bytes:size ())
        ~free:Cxl_ref.drop
        ~write:(fun r -> Cxl_ref.write_word r 0 1)
        ~rounds:(tt_rounds ()) ~batch:tt_batch;
      let ns = Stats.modeled_ns model ctx.Ctx.st in
      let access, fence, flush, backoff =
        Stats.breakdown_ns model ctx.Ctx.st
      in
      let total = access +. fence +. flush +. backoff in
      Table.add_row t
        [
          label;
          Table.cell_f
            (float_of_int (workload_ops `Threadtest) /. (ns /. 1e3));
          Table.cell_f (100.0 *. flush /. total);
        ])
    [ ("CXL 2.0 (clwb)", false); ("CXL 3.0 / eADR", true) ];
  Table.print t;
  print_endline
    "   (paper §6.1: the flush accounts for 27-50% of the fast path and\n\
    \    'may not be required in a CXL 3.0 based implementation')"

(* §6.4.1: writer failover / repartitioning is one CAS on the writer
   table — no data moves. Contrast with a shared-nothing design where the
   new owner must copy the partition's records. *)
let bench_repartition () =
  let t =
    Table.create
      ~title:"§6.4.1: writer takeover vs copy-based repartitioning"
      ~columns:
        [
          "Records";
          "CXL-KV takeover µs (modeled)";
          "copy-based repartition µs (modeled)";
        ]
  in
  let model = Latency.of_tier Latency.Cxl in
  List.iter
    (fun records ->
      let arena = Shm.create ~cfg:(kv_cfg 2) () in
      let w0 = Shm.join arena () in
      let w1 = Shm.join arena () in
      let store, h0 =
        Kv.Cxl_kv.create w0 ~buckets:(records * 2) ~partitions:2
          ~value_words:kv_value_words
      in
      ignore (Kv.Cxl_kv.claim_partition h0 0);
      ignore (Kv.Cxl_kv.claim_partition h0 1);
      for key = 0 to records - 1 do
        Kv.Cxl_kv.put h0 ~key ~value:key
      done;
      let h1 = Kv.Cxl_kv.open_store w1 store in
      (* the dead writer's partition moves with one CAS *)
      Stats.reset w1.Ctx.st;
      let ok = Kv.Cxl_kv.takeover_partition h1 0 in
      assert ok;
      let takeover_ns = Stats.modeled_ns model w1.Ctx.st in
      (* shared-nothing equivalent: stream the partition's records to the
         new owner (read + write every word) *)
      let copy_st = Stats.create () in
      let mem = Shm.mem arena in
      let words = records / 2 * (2 + kv_value_words) in
      for i = 0 to words - 1 do
        ignore (Mem.load mem ~st:copy_st (1 + (i mod 1024)));
        Mem.store mem ~st:copy_st (1 + ((i + 512) mod 1024)) 0
      done;
      let copy_ns = Stats.modeled_ns model copy_st in
      Table.add_row t
        [
          Table.cell_i records;
          Table.cell_f (takeover_ns /. 1e3);
          Table.cell_f (copy_ns /. 1e3);
        ])
    (if !full then [ 1_000; 10_000; 50_000 ] else [ 1_000; 10_000 ]);
  Table.print t;
  print_endline
    "   (paper: takeover is quick because no copy-based repartitioning is\n\
    \    needed in the shared-everything architecture — only metadata moves)"

(* Ordered index (lib/structures): point ops + range scans over the
   sorted list vs the hash index — the "dynamic data structures with link
   pointers" capability §2.2.2 motivates. *)
let bench_structures () =
  let t =
    Table.create ~title:"Extension: ordered index (sorted list) on CXL-SHM"
      ~columns:[ "Records"; "insert Kops"; "lookup Kops"; "range-100 Kops" ]
  in
  let module Sl = Cxlshm_structures.Sorted_list in
  let model = Latency.of_tier Latency.Cxl in
  List.iter
    (fun n ->
      let arena = Shm.create ~cfg:(cxl_shm_cfg 1) () in
      let a = Shm.join arena () in
      let l = Sl.create a ~value_words:1 in
      let keys = Array.init n (fun i -> i) in
      (* shuffled insertion order *)
      let rng = Random.State.make [| 7 |] in
      for i = n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = keys.(i) in
        keys.(i) <- keys.(j);
        keys.(j) <- tmp
      done;
      Stats.reset a.Ctx.st;
      Array.iter (fun k -> ignore (Sl.insert l ~key:k ~value:k)) keys;
      let ins_ns = Stats.modeled_ns model a.Ctx.st in
      Stats.reset a.Ctx.st;
      let lookups = min n 2_000 in
      for i = 1 to lookups do
        ignore (Sl.find l ~key:(i * (n / lookups) mod n))
      done;
      let look_ns = Stats.modeled_ns model a.Ctx.st in
      Stats.reset a.Ctx.st;
      let ranges = 200 in
      for i = 1 to ranges do
        ignore (Sl.range l ~lo:(i mod n) ~hi:((i mod n) + 100))
      done;
      let range_ns = Stats.modeled_ns model a.Ctx.st in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_f (float_of_int n /. (ins_ns /. 1e6));
          Table.cell_f (float_of_int lookups /. (look_ns /. 1e6));
          Table.cell_f (float_of_int ranges /. (range_ns /. 1e6));
        ];
      Sl.close l)
    (if !full then [ 500; 2_000; 8_000 ] else [ 500; 2_000 ]);
  Table.print t;
  print_endline
    "   (O(n) list ops — a demonstrator for link-pointer structures, not a\n\
    \    tuned index; range scans amortise the traversal)"

(* YCSB standard presets on CXL-KV. *)
let bench_ycsb_presets () =
  let t =
    Table.create ~title:"Extension: YCSB core workloads on CXL-KV (8 clients)"
      ~columns:[ "Workload"; "MOPS" ]
  in
  let clients = min 8 (max 2 (max_threads ())) in
  List.iter
    (fun preset ->
      (* presets fold into the mix/theta driver *)
      let mix, theta =
        match preset with
        | Kv.Ycsb.A -> (0.5, 0.99)
        | Kv.Ycsb.B -> (0.05, 0.99)
        | Kv.Ycsb.C -> (0.0, 0.99)
        | Kv.Ycsb.D -> (0.05, 0.9)
        | Kv.Ycsb.F -> (0.5, 0.99)
      in
      let m =
        run_cxl_kv ~clients ~ops:(quick 60_000 10_000) ~mix ~theta ~keys:32_768 ()
      in
      Table.add_row t [ Kv.Ycsb.preset_name preset; Table.cell_f m ])
    [ Kv.Ycsb.A; Kv.Ycsb.B; Kv.Ycsb.C; Kv.Ycsb.D; Kv.Ycsb.F ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (wall-clock, statistically sampled)       *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let arena = Shm.create ~cfg:(cxl_shm_cfg 1) () in
  let ctx = Shm.join arena () in
  let alloc_free =
    Test.make ~name:"cxl_malloc+drop (64B)"
      (Staged.stage (fun () ->
           let r = Shm.cxl_malloc ctx ~size_bytes:64 () in
           Cxl_ref.drop r))
  in
  let parent = Shm.cxl_malloc ctx ~size_bytes:8 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc ctx ~size_bytes:8 () in
  let attach_detach =
    Test.make ~name:"era attach+detach"
      (Staged.stage (fun () ->
           Cxl_ref.set_emb parent 0 child;
           Cxl_ref.clear_emb parent 0))
  in
  let mem = Mem.create ~tier:Latency.Cxl ~words:1024 () in
  let st = Stats.create () in
  let q = Spsc.create mem ~st ~base:8 ~capacity:64 in
  let spsc =
    Test.make ~name:"spsc push+pop"
      (Staged.stage (fun () ->
           Spsc.push q ~st 1;
           ignore (Spsc.pop q ~st)))
  in
  let mim = Mim.create ~words:300_000 ~threads:1 in
  let mth = Mim.thread mim 0 in
  let mimalloc =
    Test.make ~name:"mimalloc-baseline alloc+free (64B)"
      (Staged.stage (fun () ->
           let b = Mim.alloc mth ~size_bytes:64 in
           Mim.free mth b))
  in
  let tests =
    Test.make_grouped ~name:"cxlshm" [ alloc_free; attach_detach; spsc; mimalloc ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "== Bechamel micro-benchmarks (wall ns/op) ==";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-40s %10.1f ns\n" name est
      | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
    results;
  Cxl_ref.drop parent;
  Cxl_ref.drop child

(* ------------------------------------------------------------------ *)
(* Backends: flat vs striped multi-device pools                        *)
(* ------------------------------------------------------------------ *)

(* One client runs an alloc/write/drop loop on each backend. The single-
   device variants measure the dispatch overhead of the backend seam (their
   modeled clocks must agree); the 4-device variants contrast placement on a
   pool with one DRAM-class device among CXL expanders: the first joiner's
   home device (cid 0 -> device 0) is the near device in one case and a far
   one in the other, with the difference carried by the xdev counters.
   Results also land in BENCH_backends.json for machines to read. *)
let bench_backends () =
  let striped devices tiers = Mem.Striped { devices; stripe_words = 0; tiers } in
  let cases =
    [
      ("flat", Latency.Cxl, Mem.Flat);
      ("striped-1dev", Latency.Cxl, striped 1 [||]);
      ("striped-4dev-uniform", Latency.Cxl, striped 4 [||]);
      ( "striped-4dev-near-home",
        Latency.Local_numa,
        striped 4 [| Latency.Local_numa; Latency.Cxl; Latency.Cxl; Latency.Cxl |]
      );
      ( "striped-4dev-far-home",
        Latency.Local_numa,
        striped 4 [| Latency.Cxl; Latency.Local_numa; Latency.Cxl; Latency.Cxl |]
      );
      ("counting-fast", Latency.Cxl, Mem.Counting_fast);
    ]
  in
  let rounds = quick 30_000 6_000 in
  let run_case ~trace (label, tier, backend) =
    let cfg = { (cxl_shm_cfg 1) with Config.tier; backend; trace } in
    let arena = Shm.create ~cfg () in
    let a = Shm.join arena () in
    let before = Stats.copy a.Ctx.st in
    let (), wall_ns =
      Runner.time_wall (fun () ->
          let held = Array.make 64 None in
          for i = 0 to rounds - 1 do
            let slot = i mod 64 in
            (match held.(slot) with Some r -> Cxl_ref.drop r | None -> ());
            let r = Shm.cxl_malloc a ~size_bytes:64 () in
            Cxl_ref.write_word r 0 i;
            held.(slot) <- Some r
          done;
          Array.iter (function Some r -> Cxl_ref.drop r | None -> ()) held)
    in
    let d = Stats.diff a.Ctx.st before in
    let modeled_ns = Stats.modeled_ns (Latency.of_tier tier) d in
    let name = Mem.backend_name (Shm.mem arena) in
    let hists = a.Ctx.hists in
    Shm.leave a;
    (label, name, wall_ns, modeled_ns, d.Stats.xdev_accesses, d.Stats.xdev_ns,
     hists)
  in
  let rows = List.map (run_case ~trace:false) cases in
  (* Same cases with spans live: the histograms supply the percentiles and
     the modeled clocks must come out identical (ring writes are
     control-plane, never priced). *)
  let rows_on = List.map (run_case ~trace:true) cases in
  let clock_identical =
    List.for_all2
      (fun (_, _, _, m_off, _, _, _) (_, _, _, m_on, _, _, _) ->
        Float.abs (m_off -. m_on) < 1e-6)
      rows rows_on
  in
  (* Disabled-trace overhead, measured rather than asserted: the cost of the
     span branch itself (with_span with tracing off vs a direct call),
     scaled by the spans one alloc/write/drop round actually executes. *)
  let span_branch_ns =
    let arena = Shm.create ~cfg:(cxl_shm_cfg 1) () in
    let a = Shm.join arena () in
    let n = 2_000_000 in
    let f () = Sys.opaque_identity 0 in
    let (), base_ns =
      Runner.time_wall (fun () ->
          for _ = 1 to n do
            ignore (f ())
          done)
    in
    let (), span_ns =
      Runner.time_wall (fun () ->
          for _ = 1 to n do
            ignore (Trace.with_span a Histogram.Rootref f)
          done)
    in
    Shm.leave a;
    Float.max 0. ((span_ns -. base_ns) /. float_of_int n)
  in
  let spans_per_round =
    match rows_on with
    | (_, _, _, _, _, _, hists) :: _ ->
        let total =
          Array.fold_left (fun acc h -> acc + Histogram.count h) 0 hists
        in
        float_of_int total /. float_of_int rounds
    | [] -> 0.
  in
  let wall_off_flat =
    match rows with (_, _, w, _, _, _, _) :: _ -> w | [] -> 1.
  in
  let disabled_overhead_pct =
    span_branch_ns *. spans_per_round
    /. (wall_off_flat /. float_of_int rounds)
    *. 100.
  in
  let enabled_overhead_pct =
    let sum sel l =
      List.fold_left (fun acc r -> acc +. sel r) 0. l
    in
    let w_off = sum (fun (_, _, w, _, _, _, _) -> w) rows in
    let w_on = sum (fun (_, _, w, _, _, _, _) -> w) rows_on in
    (w_on -. w_off) /. w_off *. 100.
  in
  Printf.printf "single client, %d alloc/write/drop rounds\n" rounds;
  Printf.printf "%-24s %-14s %10s %12s %14s\n" "case" "backend" "Mops(wall)"
    "ns/op(model)" "xdev";
  List.iter
    (fun (label, name, wall_ns, modeled_ns, xa, xns, _) ->
      Printf.printf "%-24s %-14s %10.2f %12.1f %8d %+.0fns\n" label name
        (float_of_int rounds /. (wall_ns /. 1e3))
        (modeled_ns /. float_of_int rounds)
        xa xns)
    rows;
  Printf.printf
    "trace: span branch %.2fns x %.1f spans/round -> %.3f%% off-overhead; \
     %+.1f%% wall when enabled; modeled clock identical: %b\n"
    span_branch_ns spans_per_round disabled_overhead_pct enabled_overhead_pct
    clock_identical;
  let percentiles_json hists =
    let parts =
      List.filter_map
        (fun op ->
          let h = hists.(Histogram.op_index op) in
          if Histogram.count h = 0 then None
          else
            Some
              (Printf.sprintf
                 "\"%s\": {\"count\": %d, \"p50\": %.1f, \"p95\": %.1f, \
                  \"p99\": %.1f}"
                 (Histogram.op_name op) (Histogram.count h) (Histogram.p50 h)
                 (Histogram.p95 h) (Histogram.p99 h)))
        Histogram.all_ops
    in
    "{" ^ String.concat ", " parts ^ "}"
  in
  let oc = open_out "BENCH_backends.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"backends\",\n  \"rounds\": %d,\n  \"results\": [\n"
    rounds;
  List.iteri
    (fun i ((label, name, wall_ns, modeled_ns, xa, xns, _),
            (_, _, _, _, _, _, hists_on)) ->
      Printf.fprintf oc
        "    {\"case\": %S, \"backend\": %S, \"ops\": %d, \"wall_ns\": %.0f, \
         \"ops_per_sec\": %.0f, \"modeled_ns\": %.1f, \"modeled_ns_per_op\": \
         %.2f, \"xdev_accesses\": %d, \"xdev_ns\": %.1f, \"percentiles\": \
         %s}%s\n"
        label name rounds wall_ns
        (float_of_int rounds /. (wall_ns /. 1e9))
        modeled_ns
        (modeled_ns /. float_of_int rounds)
        xa xns
        (percentiles_json hists_on)
        (if i = List.length rows - 1 then "" else ","))
    (List.combine rows rows_on);
  Printf.fprintf oc
    "  ],\n\
    \  \"trace\": {\"span_branch_ns\": %.3f, \"spans_per_round\": %.2f, \
     \"disabled_trace_overhead_pct\": %.4f, \"enabled_overhead_pct\": %.2f, \
     \"modeled_clock_identical\": %b}\n\
     }\n"
    span_branch_ns spans_per_round disabled_overhead_pct enabled_overhead_pct
    clock_identical;
  close_out oc;
  Printf.printf "wrote BENCH_backends.json\n"

(* ------------------------------------------------------------------ *)
(* Fast path: client-local cache tier + batched transfer               *)
(* ------------------------------------------------------------------ *)

(* Exact shared-word traffic of the two fast paths (alloc/free and
   reference transfer), measured on the counting backend with the cache
   tier off vs on, and single-message vs batched transfer. Words/op are
   raw backend word operations — deterministic, so the committed
   BENCH_fastpath.json doubles as a regression baseline for CI. *)
let bench_fastpath () =
  let module Bc = Cxlshm_shmem.Backend_counting in
  let model = Latency.of_tier Latency.Cxl in
  let rounds = quick 20_000 4_000 in
  let batch = 16 in
  let msgs = rounds / batch * batch in
  (* [Config.default] now enables epoch batching and sharded class heads;
     the legacy columns pin both off so the cache-tier numbers stay
     comparable with the committed baseline, and the epoch columns measure
     the full fast path (cache + batched retirement + sharding). *)
  let fp_cfg ?(epoch = false) cache =
    let base =
      { (cxl_shm_cfg 2) with Config.backend = Mem.Counting_fast; cache }
    in
    if epoch then base
    else { base with Config.epoch_batch = 0; num_domains = 0 }
  in
  let bd_words (b : Bc.breakdown) = b.loads + b.stores + b.cass + b.faas in
  let bd_sub (a : Bc.breakdown) (b : Bc.breakdown) : Bc.breakdown =
    {
      loads = a.loads - b.loads;
      stores = a.stores - b.stores;
      cass = a.cass - b.cass;
      faas = a.faas - b.faas;
      fences = a.fences - b.fences;
      flushes = a.flushes - b.flushes;
    }
  in
  (* alloc/free fast path: steady-state 64 B alloc + drop *)
  let measure_alloc ?epoch ~cache () =
    let arena = Shm.create ~cfg:(fp_cfg ?epoch cache) () in
    let a = Shm.join arena () in
    let mem = Shm.mem arena in
    for _ = 1 to 64 do
      Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:64 ())
    done;
    let b0 = Option.get (Mem.op_breakdown mem) in
    let st0 = Stats.copy a.Ctx.st in
    for _ = 1 to rounds do
      Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:64 ())
    done;
    let d = bd_sub (Option.get (Mem.op_breakdown mem)) b0 in
    let ns = Stats.modeled_ns model (Stats.diff a.Ctx.st st0) in
    let per c = float_of_int c /. float_of_int rounds in
    (per (bd_words d), per d.Bc.fences, ns /. float_of_int rounds)
  in
  (* transfer fast path: sender publishes, receiver consumes, in lockstep *)
  let measure_transfer ?epoch ~cache ~batched () =
    let arena = Shm.create ~cfg:(fp_cfg ?epoch cache) () in
    let s = Shm.join arena () in
    let r = Shm.join arena () in
    let tx = Transfer.connect s ~receiver:r.Ctx.cid ~capacity:(2 * batch) in
    let rx = Option.get (Transfer.open_from r ~sender:s.Ctx.cid) in
    let payloads =
      List.init batch (fun _ -> Shm.cxl_malloc s ~size_bytes:64 ())
    in
    let p0 = List.hd payloads in
    let drain_one () =
      match Transfer.receive rx with
      | Transfer.Received rr -> Cxl_ref.drop rr
      | Transfer.Empty | Transfer.Drained -> assert false
    in
    for _ = 1 to batch do
      (match Transfer.send tx p0 with Transfer.Sent -> () | _ -> assert false);
      drain_one ()
    done;
    let mem = Shm.mem arena in
    let b0 = Option.get (Mem.op_breakdown mem) in
    let st0s = Stats.copy s.Ctx.st and st0r = Stats.copy r.Ctx.st in
    if batched then
      for _ = 1 to msgs / batch do
        let n, res = Transfer.send_batch tx payloads in
        assert (n = batch && res = Transfer.Sent);
        match Transfer.receive_batch rx ~max:batch with
        | Transfer.Received_batch rs ->
            assert (List.length rs = batch);
            List.iter Cxl_ref.drop rs
        | Transfer.Batch_empty | Transfer.Batch_drained -> assert false
      done
    else
      for _ = 1 to msgs do
        (match Transfer.send tx p0 with
        | Transfer.Sent -> ()
        | _ -> assert false);
        drain_one ()
      done;
    let d = bd_sub (Option.get (Mem.op_breakdown mem)) b0 in
    let acc = Stats.diff s.Ctx.st st0s in
    Stats.add acc (Stats.diff r.Ctx.st st0r);
    let ns = Stats.modeled_ns model acc in
    let per c = float_of_int c /. float_of_int msgs in
    (per (bd_words d), per d.Bc.fences, ns /. float_of_int msgs)
  in
  let aw_off, af_off, ans_off = measure_alloc ~cache:false () in
  let aw_on, af_on, ans_on = measure_alloc ~cache:true () in
  let aw_ep, af_ep, ans_ep = measure_alloc ~epoch:true ~cache:true () in
  let tw_off, tf_off, tns_off =
    measure_transfer ~cache:false ~batched:false ()
  in
  let tw_on, tf_on, tns_on = measure_transfer ~cache:true ~batched:false () in
  let tw_ep, tf_ep, tns_ep =
    measure_transfer ~epoch:true ~cache:true ~batched:false ()
  in
  let bw_on, bf_on, bns_on = measure_transfer ~cache:true ~batched:true () in
  let bw_ep, bf_ep, bns_ep =
    measure_transfer ~epoch:true ~cache:true ~batched:true ()
  in
  let red a b = 100.0 *. (a -. b) /. a in
  let t =
    Table.create ~title:"Fast path: shared-word traffic (counting backend)"
      ~columns:[ "Path"; "words/op"; "fences/op"; "modeled ns/op" ]
  in
  List.iter
    (fun (label, w, f, ns) ->
      Table.add_row t
        [ label; Table.cell_f w; Table.cell_f f; Table.cell_f ns ])
    [
      ("alloc+free, cache off", aw_off, af_off, ans_off);
      ("alloc+free, cache on", aw_on, af_on, ans_on);
      ("alloc+free, epoch on", aw_ep, af_ep, ans_ep);
      ("transfer single, cache off", tw_off, tf_off, tns_off);
      ("transfer single, cache on", tw_on, tf_on, tns_on);
      ("transfer single, epoch on", tw_ep, tf_ep, tns_ep);
      (Printf.sprintf "transfer batch=%d, cache on" batch, bw_on, bf_on, bns_on);
      (Printf.sprintf "transfer batch=%d, epoch on" batch, bw_ep, bf_ep, bns_ep);
    ];
  Table.print t;
  Printf.printf
    "alloc words/op -%.1f%%, transfer single words/op -%.1f%%, batched \
     -%.1f%% (vs cache-off single)\n"
    (red aw_off aw_on) (red tw_off tw_on) (red tw_off bw_on);
  Printf.printf
    "epoch batching: alloc fences/op %.3f -> %.3f, transfer single \
     fences/op %.3f -> %.3f\n"
    af_on af_ep tf_on tf_ep;
  let oc = open_out "BENCH_fastpath.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"fastpath\",\n\
    \  \"rounds\": %d,\n\
    \  \"batch\": %d,\n\
    \  \"alloc\": {\n\
    \    \"cache_off\": {\"words_per_op\": %.3f, \"fences_per_op\": %.3f, \
     \"modeled_ns_per_op\": %.2f},\n\
    \    \"cache_on\": {\"words_per_op\": %.3f, \"fences_per_op\": %.3f, \
     \"modeled_ns_per_op\": %.2f},\n\
    \    \"epoch_on\": {\"words_per_op\": %.3f, \"fences_per_op\": %.3f, \
     \"modeled_ns_per_op\": %.2f},\n\
    \    \"words_reduction_pct\": %.1f\n\
    \  },\n\
    \  \"transfer\": {\n\
    \    \"single_cache_off\": {\"words_per_op\": %.3f, \"fences_per_op\": \
     %.3f, \"modeled_ns_per_op\": %.2f},\n\
    \    \"single_cache_on\": {\"words_per_op\": %.3f, \"fences_per_op\": \
     %.3f, \"modeled_ns_per_op\": %.2f},\n\
    \    \"single_epoch_on\": {\"words_per_op\": %.3f, \"fences_per_op\": \
     %.3f, \"modeled_ns_per_op\": %.2f},\n\
    \    \"batch_cache_on\": {\"words_per_op\": %.3f, \"fences_per_op\": \
     %.3f, \"modeled_ns_per_op\": %.2f},\n\
    \    \"batch_epoch_on\": {\"words_per_op\": %.3f, \"fences_per_op\": \
     %.3f, \"modeled_ns_per_op\": %.2f},\n\
    \    \"words_reduction_pct\": %.1f,\n\
    \    \"batched_words_reduction_pct\": %.1f\n\
    \  }\n\
     }\n"
    rounds batch aw_off af_off ans_off aw_on af_on ans_on aw_ep af_ep ans_ep
    (red aw_off aw_on) tw_off tf_off tns_off tw_on tf_on tns_on tw_ep tf_ep
    tns_ep bw_on bf_on bns_on bw_ep bf_ep bns_ep (red tw_off tw_on)
    (red tw_off bw_on);
  close_out oc;
  Printf.printf "wrote BENCH_fastpath.json\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", bench_table1);
    ("fig6-threadtest", bench_fig6 `Threadtest "Fig 6 (left): Threadtest allocator throughput (MOPS)");
    ("fig6-shbench", bench_fig6 `Shbench "Fig 6 (right): Shbench allocator throughput (MOPS)");
    ("fig7", bench_fig7);
    ("recovery", bench_recovery);
    ("leak-scan", bench_leak_scan);
    ("fig8-clients", bench_fig8_clients);
    ("fig8-payload", bench_fig8_payload);
    ("rpc", bench_rpc);
    ("fig9-wordcount", bench_fig9_wordcount);
    ("fig9-kmeans", bench_fig9_kmeans);
    ("fig10a", bench_fig10a);
    ("fig10b", bench_fig10b);
    ("fig10c", bench_fig10c);
    ("fig10d", bench_fig10d);
    ("fault", bench_fault);
    ("ablation-locking", bench_ablation_locking);
    ("ablation-eadr", bench_ablation_eadr);
    ("repartition", bench_repartition);
    ("structures", bench_structures);
    ("ycsb-presets", bench_ycsb_presets);
    ("backends", bench_backends);
    ("fastpath", bench_fastpath);
  ]

let () =
  let only = ref None in
  let bechamel = ref false in
  let list_only = ref false in
  let args =
    [
      ("--only", Arg.String (fun s -> only := Some s), "ID  run one experiment");
      ("--full", Arg.Set full, " larger parameter sweeps");
      ("--bechamel", Arg.Set bechamel, " run Bechamel micro-benchmarks");
      ("--list", Arg.Set list_only, " list experiment ids");
    ]
  in
  Arg.parse args (fun _ -> ()) "cxlshm benchmark harness";
  if !list_only then List.iter (fun (id, _) -> print_endline id) experiments
  else if !bechamel then bechamel_suite ()
  else begin
    let todo =
      match !only with
      | None -> experiments
      | Some id -> (
          match List.assoc_opt id experiments with
          | Some f -> [ (id, f) ]
          | None ->
              Printf.eprintf "unknown experiment %s; use --list\n" id;
              exit 1)
    in
    List.iter
      (fun (id, f) ->
        Printf.printf "\n---- %s ----\n%!" id;
        let _, ns = Runner.time_wall f in
        Printf.printf "   [%s took %.1f s]\n%!" id (ns /. 1e9))
      todo
  end
