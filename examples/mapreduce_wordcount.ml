(* CXL-MapReduce end-to-end (§6.3.2): distributed wordcount where the
   corpus chunks, the task messages and the partial results all live in
   the shared pool; executors receive chunk *references* and read them in
   place.

   Run: dune exec examples/mapreduce_wordcount.exe *)

open Cxlshm
module Mr = Cxlshm_mapreduce.Cxl_mapreduce
module Textgen = Cxlshm_mapreduce.Textgen

let () =
  let cfg =
    {
      Config.default with
      Config.max_clients = 8;
      num_segments = 256;
      pages_per_segment = 8;
    }
  in
  let arena = Shm.create ~cfg () in
  let master = Shm.join arena () in

  (* a synthetic Zipf corpus standing in for the paper's 1 GB text *)
  let corpus = Textgen.generate ~words:20_000 ~vocab:500 ~seed:7 in
  let chunks_raw = Textgen.chunks corpus ~chunk_bytes:2048 in
  Printf.printf "corpus: %d bytes in %d chunks\n" (String.length corpus)
    (List.length chunks_raw);

  (* store chunks once; executors will read them zero-copy *)
  let chunks = List.map (fun c -> Mr.store_chunk master (Bytes.of_string c)) chunks_raw in

  let session = Mr.start ~arena ~master ~executors:3 in
  let counts = Mr.wordcount session ~chunks ~vocab:500 in
  Mr.stop session;

  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 counts in
  Printf.printf "distinct words: %d, total tokens: %d\n" (List.length counts) total;
  assert (total = 20_000);
  let top =
    List.sort (fun (_, a) (_, b) -> compare b a) counts |> fun l ->
    List.filteri (fun i _ -> i < 5) l
  in
  print_endline "top 5 words:";
  List.iter (fun (w, c) -> Printf.printf "  w%-6d %d\n" w c) top;

  List.iter Cxl_ref.drop chunks;
  Shm.leave master;
  print_endline "mapreduce_wordcount OK"
