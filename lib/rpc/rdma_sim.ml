(* Calibration: the paper's baseline ("similar to Herd RPC under RC mode",
   "Simple RPC protobuf", ConnectX-5) delivers ~110 Kops/s for a single
   client/server pair at 64 B — about 4.5 us per one-way message including
   the RPC stack — with bandwidth-proportional costs dominating for >=32 KB
   payloads. *)
let message_latency_ns = 4_500.0
let bytes_per_ns = 12.5 (* ~12.5 GB/s effective wire + DMA bandwidth *)

type endpoint = {
  inbox : bytes Queue.t;
  inbox_lock : Mutex.t;
  mutable peer : endpoint option;
  mutable clock_ns : float;
}

let make () =
  { inbox = Queue.create (); inbox_lock = Mutex.create (); peer = None;
    clock_ns = 0.0 }

let pair () =
  let a = make () and b = make () in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)

let transfer_ns len =
  message_latency_ns +. (float_of_int len /. bytes_per_ns)

let send ep msg =
  match ep.peer with
  | None -> invalid_arg "Rdma_sim.send: unconnected endpoint"
  | Some peer ->
      (* Sender pays serialisation DMA + posting; the copy is real. *)
      let copy = Bytes.copy msg in
      ep.clock_ns <- ep.clock_ns +. transfer_ns (Bytes.length msg);
      Mutex.lock peer.inbox_lock;
      Queue.push copy peer.inbox;
      Mutex.unlock peer.inbox_lock

let try_recv ep =
  Mutex.lock ep.inbox_lock;
  let m = if Queue.is_empty ep.inbox then None else Some (Queue.pop ep.inbox) in
  Mutex.unlock ep.inbox_lock;
  (match m with
  | Some b ->
      (* Receiver pays the DMA copy out of the ring buffer AND the
         deserialisation pass over the payload. The latter used to be free,
         which flattered the pass-by-value baseline: the sender charged
         serialise+copy but the matching receive-side copy cost nothing, so
         only one direction of every round trip paid for its bytes. *)
      ep.clock_ns <-
        ep.clock_ns +. (2.0 *. float_of_int (Bytes.length b) /. bytes_per_ns)
  | None -> ());
  m

let rec recv ep =
  match try_recv ep with
  | Some m -> m
  | None ->
      Domain.cpu_relax ();
      recv ep

let modeled_ns ep = ep.clock_ns
