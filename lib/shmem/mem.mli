(** Simulated CXL-attached shared memory.

    The arena is a pool of 63-bit words addressed by global word offset and
    served by a pluggable {e backend} (see {!Mem_intf.S}): a single flat
    device, a sharded multi-device pool striped across N devices, or a fast
    non-atomic single-domain array. Whatever the backend, the wrapper gives
    the exact primitive set the paper requires of the underlying RDSM (§3):
    load, store, CAS, fence and flush over a byte-addressable pool — with
    *real* atomicity and real interleavings across domains on the atomic
    backends, not a replayed trace.

    Every operation is attributed to a caller-supplied {!Stats.t} so modeled
    time can be computed per client; on a multi-device pool, accesses that
    land on a device of a different {!Latency.tier} than the pool's base
    model are re-priced at their device's tier ({!Stats.t.xdev_ns}).
    Out-of-bounds accesses raise {!Wild_pointer} on every backend: in the
    simulator a wild pointer is detected rather than silently corrupting,
    which the correctness tests rely on. *)

exception Wild_pointer of { addr : int; words : int }

type t

(** {1 Backends} *)

type backend_spec =
  | Flat  (** The seed backend: one flat atomic-word array (one device). *)
  | Striped of { devices : int; stripe_words : int; tiers : Latency.tier array }
      (** Multi-device pool (Fig 1): global addresses interleaved across
          [devices] in stripes of [stripe_words] words. [tiers] gives each
          device its own latency tier ([[||]] = every device at the pool's
          base tier). Atomic across domains, like [Flat]. *)
  | Counting_fast
      (** Non-atomic plain-array backend with an exact op counter
          ({!op_count}) — deterministic and fast, single-domain only. *)

val create : ?tier:Latency.tier -> ?backend:backend_spec -> words:int -> unit -> t
(** Fresh zeroed arena of [words] 8-byte words. Default tier is [Cxl];
    default backend is [Flat], which is behavior-identical to the
    pre-backend arena. *)

val backend_name : t -> string
val num_devices : t -> int

val device_of : t -> Pptr.t -> int
(** Device index in [\[0, num_devices)] serving a pool address — the
    segment→device map allocation placement uses. Raises {!Wild_pointer}
    out of bounds. *)

val device_tier : t -> int -> Latency.tier
(** Latency tier of one device. *)

val op_count : t -> int option
(** Exact number of raw word operations executed so far — [Counting_fast]
    backend only ([None] otherwise). *)

val words : t -> int
val tier : t -> Latency.tier
(** The pool's base tier: the cost model accesses are priced at unless their
    device's tier differs. *)

val cost_model : t -> Latency.t

val words_per_line : int
(** Words per simulated 64-byte cache line. *)

(** {1 Primitive operations} *)

val load : t -> st:Stats.t -> Pptr.t -> int
val store : t -> st:Stats.t -> Pptr.t -> int -> unit

val cas : t -> st:Stats.t -> Pptr.t -> expected:int -> desired:int -> bool
(** Single-word compare-and-swap, the primitive the era algorithm builds on. *)

val fetch_add : t -> st:Stats.t -> Pptr.t -> int -> int
(** Atomic fetch-and-add; returns the previous value. *)

val fence : t -> st:Stats.t -> unit
(** Store fence (sfence). Orders this client's prior stores before later
    ones. Atomics already give sequential consistency in OCaml, so the fence
    only needs to be *counted* — but it still matters: the fault-injection
    harness uses fence positions as the boundaries where a crash may observe
    reordered stores. *)

val flush : t -> st:Stats.t -> Pptr.t -> unit
(** Cache-line write-back (clwb) of the line containing the address. *)

(** {1 Bulk operations} *)

val fill : t -> st:Stats.t -> Pptr.t -> len:int -> int -> unit

val write_bytes : t -> st:Stats.t -> Pptr.t -> bytes -> unit
(** Pack a byte string into consecutive words (7 payload bytes per word, so
    every stored word stays non-negative). Use [read_bytes] to recover it. *)

val read_bytes : t -> st:Stats.t -> Pptr.t -> len:int -> bytes

val bytes_words : int -> int
(** Words consumed by [write_bytes] for a payload of [n] bytes. *)

val blit : t -> st:Stats.t -> src:Pptr.t -> dst:Pptr.t -> len:int -> unit
(** Word-wise copy inside the arena, with [memmove] semantics: overlapping
    ranges copy correctly in either direction. *)

(** {1 Validation / introspection (simulator-only, not part of the RDSM)} *)

val unsafe_peek : t -> Pptr.t -> int
(** Read without stats attribution — for validators and debug printers. *)

val unsafe_poke : t -> Pptr.t -> int -> unit

val snapshot : t -> int array
(** Copy of every word in global address order (quiesced use only) — the
    pool's durable image, portable across backends. *)

val restore : t -> int array -> unit
(** Overwrite the arena with a {!snapshot} of identical size. *)

val in_bounds : t -> Pptr.t -> bool
