(** CXL-RPC: pass-by-reference RPC over the shared pool (§6.3).

    A call allocates one rpc_msg carrying embedded references to the inputs
    and the output object, then moves a {e single reference} through the
    §5.2 transfer queue. The server reads arguments and writes the result
    in place — zero copies, no serialisation, no I/O stack — then raises
    the message's completion word; the client polls that word directly
    through its own retained reference (no response message).

    Both endpoints inherit CXL-SHM's partial-failure story: if either side
    dies mid-call, the recovery service reaps the in-flight message (and
    through its embedded references the argument/output objects) with no
    leak, double free or wild pointer. *)

type client
type server

val connect : Cxlshm.Ctx.t -> server_cid:int -> capacity:int -> client
val accept : Cxlshm.Ctx.t -> client_cid:int -> capacity:int -> server
(** Call before or concurrently with [connect]. *)

type pending
(** An in-flight call: the client's retained message reference plus the
    output handle. *)

val call_async :
  client -> func:int -> args:Cxlshm.Cxl_ref.t list -> output_bytes:int -> pending
(** Fire a request (spins while the ring is full). The caller keeps
    ownership of the argument handles. *)

val is_done : pending -> bool
(** Poll the completion word (one shared-memory load). *)

val finish : pending -> Cxlshm.Cxl_ref.t
(** Spin until done, release the message, return the caller-owned output. *)

val try_finish : pending -> Cxlshm.Cxl_ref.t option

val call :
  client -> func:int -> args:Cxlshm.Cxl_ref.t list -> output_bytes:int ->
  Cxlshm.Cxl_ref.t
(** [finish (call_async ...)]. *)

type handler = func:int -> args:Message.view list -> output:Message.view -> unit

val serve_one : server -> handler:handler -> bool
(** Handle one pending request; [false] when the ring is empty. *)

val serve_until : server -> handler:handler -> stop:bool Atomic.t -> unit
val close_client : client -> unit
val close_server : server -> unit
