(* Huge objects: contiguous segment runs, §5.1 retry-and-rollback claim,
   sharing, recovery, the true-length slot, and the tail-first free
   protocol's crash windows. *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem

let cfg = Config.small
let setup () =
  let arena = Shm.create ~cfg () in
  (arena, Shm.join arena (), Shm.join arena ())

let huge_words = Config.max_class_data_words cfg + 100

let test_single_segment_huge () =
  let arena, a, _ = setup () in
  let r = Shm.cxl_malloc_words a ~data_words:huge_words () in
  for i = 0 to huge_words - 1 do
    Cxl_ref.write_word r i (i * 3)
  done;
  for i = 0 to huge_words - 1 do
    if Cxl_ref.read_word r i <> i * 3 then Alcotest.fail "payload corrupted"
  done;
  Cxl_ref.drop r;
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_multi_segment_huge () =
  let arena, a, _ = setup () in
  let lay = Shm.layout arena in
  (* warm up so the RootRef-page segment is already claimed *)
  let warm = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.drop warm;
  (* bigger than one segment: spans a contiguous run *)
  let words = lay.Layout.segment_words + 500 in
  let before = Shm.free_segments arena in
  let r = Shm.cxl_malloc_words a ~data_words:words () in
  Alcotest.(check bool) "multiple segments claimed" true
    (before - Shm.free_segments arena >= 2);
  Cxl_ref.write_word r (words - 1) 424242;
  Alcotest.(check int) "last word across segments" 424242
    (Cxl_ref.read_word r (words - 1));
  Cxl_ref.drop r;
  Alcotest.(check int) "segments returned" before (Shm.free_segments arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_huge_shared_across_clients () =
  let arena, a, b = setup () in
  let r = Shm.cxl_malloc_words a ~data_words:huge_words () in
  Cxl_ref.write_word r 5 999;
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  assert (Transfer.send q r = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let rb = match Transfer.receive qb with Transfer.Received x -> x | _ -> assert false in
  Alcotest.(check int) "b reads huge" 999 (Cxl_ref.read_word rb 5);
  Cxl_ref.drop r;
  (* b keeps the huge object alive after a's reference is gone *)
  Alcotest.(check int) "count 1" 1 (Refc.ref_cnt b (Cxl_ref.obj rb));
  Cxl_ref.drop rb;
  Transfer.close q;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "reclaimed" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

let test_huge_owner_crash () =
  let arena, a, _ = setup () in
  let before = Shm.free_segments arena in
  let _r = Shm.cxl_malloc_words a ~data_words:huge_words () in
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check int) "segments recovered" before (Shm.free_segments arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_huge_survives_owner_crash_when_shared () =
  let arena, a, b = setup () in
  let r = Shm.cxl_malloc_words a ~data_words:huge_words () in
  Cxl_ref.write_word r 0 31337;
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  assert (Transfer.send q r = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let rb = match Transfer.receive qb with Transfer.Received x -> x | _ -> assert false in
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  Alcotest.(check int) "huge data intact" 31337 (Cxl_ref.read_word rb 0);
  Cxl_ref.drop rb;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_huge_oom () =
  let arena, a, _ = setup () in
  let lay = Shm.layout arena in
  Alcotest.check_raises "run larger than arena" Alloc.Out_of_shared_memory
    (fun () ->
      ignore
        (Shm.cxl_malloc_words a
           ~data_words:(lay.Layout.segment_words * (cfg.Config.num_segments + 1))
           ()));
  (* a fragmented arena cannot host a full-run huge object *)
  let blockers =
    List.init cfg.Config.num_segments (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ())
  in
  ignore blockers;
  ignore arena

(* ---- the true-length slot (the 2^24-1 truncation bug) ---- *)

(* Regression: data_words used to be truncated to the packed meta field's
   width. A request past [Obj_header.max_meta_data_words] must keep its
   exact size via the head page's aux2 slot — before the fix this test
   failed with a short [data_words] and an out-of-bounds last word. *)
let test_true_length_beyond_meta () =
  let cfg =
    {
      Config.small with
      Config.backend = Mem.Counting_fast;
      (* the run needs 8 of these 8M-word segments; 17 guarantees a
         contiguous 8-run survives wherever the RootRef page's randomly
         placed segment lands *)
      num_segments = 17;
      pages_per_segment = 1;
      page_words = 1 lsl 23;
    }
  in
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  let dw = Obj_header.max_meta_data_words + 9 in
  let r = Shm.cxl_malloc_words a ~data_words:dw () in
  Alcotest.(check int) "exact size survives saturation" dw
    (Cxl_ref.data_words r);
  Cxl_ref.write_word r (dw - 1) 77;
  Cxl_ref.write_word r 0 76;
  Alcotest.(check int) "last word addressable" 77
    (Cxl_ref.read_word r (dw - 1));
  Alcotest.(check int) "first word intact" 76 (Cxl_ref.read_word r 0);
  Cxl_ref.drop r;
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

(* Validate (and so Fsck.check) cross-checks the true-length slot against
   the packed meta word and the claimed run. *)
let test_crosscheck_true_length () =
  let arena, a, _ = setup () in
  let lay = Shm.layout arena in
  let words = lay.Layout.segment_words + 500 in
  let r = Shm.cxl_malloc_words a ~data_words:words () in
  let mem = Shm.mem arena in
  let head = Layout.segment_of_addr lay (Cxl_ref.obj r) in
  let aux2 = Layout.page_aux2 lay ~gid:(Layout.page_gid lay ~seg:head ~page:0) in
  let truth = Mem.unsafe_peek mem aux2 in
  Alcotest.(check int) "slot records the request" words truth;
  Mem.unsafe_poke mem aux2 3;
  Alcotest.(check bool) "fsck flags the lie" false
    (Validate.is_clean (Fsck.check mem lay));
  Mem.unsafe_poke mem aux2 truth;
  Alcotest.(check bool) "clean once restored" true
    (Validate.is_clean (Fsck.check mem lay));
  Cxl_ref.drop r

(* The offline repairer re-derives a sane length from the packed meta
   word when the slot lies. (Repair sweeps every recorded client, so it
   also reclaims everything the test clients held.) *)
let test_fsck_repairs_lying_true_length () =
  let arena, a, _ = setup () in
  let before = Shm.free_segments arena in
  let lay = Shm.layout arena in
  let words = lay.Layout.segment_words + 500 in
  let r = Shm.cxl_malloc_words a ~data_words:words () in
  let head = Segment.owned_by a ~cid:a.Ctx.cid in
  ignore head;
  let seg = Layout.segment_of_addr lay (Cxl_ref.obj r) in
  let aux2 = Layout.page_aux2 lay ~gid:(Layout.page_gid lay ~seg ~page:0) in
  Mem.unsafe_poke (Shm.mem arena) aux2 3;
  let rep = Shm.fsck arena in
  Alcotest.(check bool) "repair verdict clean" true (Fsck.clean rep);
  Alcotest.(check int) "everything reclaimed by the sweep" before
    (Shm.free_segments arena)

(* ---- crash windows of the tail-first free (reset-before-release bug) ---- *)

(* Regression: free_huge used to wipe the head metadata before releasing
   the tail segments, so a crash mid-free left continuation segments that
   nothing could size or find. Now the head stays intact until the tails
   are back; recovery must finish the half-freed run at either window. *)
let crash_free_huge point () =
  let arena, a, _ = setup () in
  let lay = Shm.layout arena in
  let words = lay.Layout.segment_words + 500 in
  let before = Shm.free_segments arena in
  let r = Shm.cxl_malloc_words a ~data_words:words () in
  a.Ctx.fault <- Fault.at point ~nth:1;
  (try
     Cxl_ref.drop r;
     Alcotest.fail "expected crash"
   with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check int) "segments all returned" before
    (Shm.free_segments arena);
  Alcotest.(check bool) "validate clean" true
    (Validate.is_clean (Shm.validate arena));
  Alcotest.(check bool) "fsck clean" true
    (Validate.is_clean (Fsck.check (Shm.mem arena) (Shm.layout arena)))

(* Same half-freed run, but no targeted recovery: the offline repairer
   alone must finish releasing it. *)
let test_fsck_finishes_half_freed_run () =
  let arena, a, _ = setup () in
  let lay = Shm.layout arena in
  let words = lay.Layout.segment_words + 500 in
  let before = Shm.free_segments arena in
  let r = Shm.cxl_malloc_words a ~data_words:words () in
  a.Ctx.fault <- Fault.at Fault.Free_huge_mid_release ~nth:1;
  (try
     Cxl_ref.drop r;
     Alcotest.fail "expected crash"
   with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  let rep = Shm.fsck arena in
  Alcotest.(check bool) "repair verdict clean" true (Fsck.clean rep);
  Alcotest.(check int) "half-freed run fully released" before
    (Shm.free_segments arena)

(* ---- degraded-device placement (claim-order bug) ---- *)

(* Regression: claim_huge_run used to walk the arena head-first ignoring
   the degraded bitmap, so a fresh run could land on a device recovery had
   already given up on. The Healthy pass must now steer whole runs off
   degraded devices whenever such a run exists. *)
let test_huge_run_avoids_degraded_device () =
  let cfg =
    {
      Config.small with
      Config.backend =
        Mem.Striped { devices = 4; stripe_words = 0; tiers = [||] };
    }
  in
  let arena = Shm.create ~cfg () in
  let svc = Shm.service_ctx arena in
  let a = Shm.join arena () in
  (* claim the RootRef-page segment before degrading anything *)
  let warm = Shm.cxl_malloc a ~size_bytes:8 () in
  let owned_before = Segment.owned_by a ~cid:a.Ctx.cid in
  Ctx.mark_degraded svc 2;
  let words = (Shm.layout arena).Layout.segment_words + 500 in
  let r = Shm.cxl_malloc_words a ~data_words:words () in
  List.iter
    (fun s ->
      if not (List.mem s owned_before) then
        Alcotest.(check bool)
          (Printf.sprintf "segment %d of the run avoids the degraded device"
             s)
          true
          (Alloc.segment_device a s <> 2))
    (Segment.owned_by a ~cid:a.Ctx.cid);
  Cxl_ref.drop r;
  Cxl_ref.drop warm;
  Ctx.clear_degraded svc;
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

(* The same windows under the schedule explorer: seeded-random schedules
   of two clients racing two-segment allocate/free cycles, with a crash
   injected at any labeled point (including both free_huge windows),
   recovery, and the full invariant oracle after every schedule. *)
let test_sched_huge_crashes () =
  let module Explore = Cxlshm_check.Explore in
  let m = Cxlshm_check.Scenarios.huge () in
  let r =
    Explore.random ~seed:3 ~schedules:40 ~crash:true ~max_steps:40_000 m
  in
  (match r.Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "%s (replay: %s)" f.Explore.reason
        (Cxlshm_check.Schedule.to_string f.Explore.schedule));
  Alcotest.(check bool) "some schedules actually crashed" true
    (r.Explore.crashes_injected > 0)

(* ---- property: alloc/free round-trips across backends ---- *)

let prop_roundtrip backend name =
  QCheck.Test.make ~name ~count:30 Generators.huge_program (fun prog ->
      let cfg = { Config.small with Config.backend = backend } in
      let arena = Shm.create ~cfg () in
      let a = Shm.join arena () in
      (* warm up so the RootRef-page segment stays claimed throughout *)
      Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:8 ());
      let seg = (Shm.layout arena).Layout.segment_words in
      let before = Shm.free_segments arena in
      let held = ref [] in
      let alloc dw =
        try Some (Shm.cxl_malloc_words a ~data_words:dw ())
        with Alloc.Out_of_shared_memory -> None
      in
      List.iter
        (fun (segs, extra, hold) ->
          let dw = max 1 ((segs * seg) + extra) in
          match alloc dw with
          | None ->
              (* fragmented/full: dropping what we hold must make room *)
              List.iter Cxl_ref.drop !held;
              held := []
          | Some r ->
              Cxl_ref.write_word r 0 42;
              Cxl_ref.write_word r (dw - 1) 43;
              if Cxl_ref.data_words r <> dw then
                Alcotest.failf "data_words %d, want %d" (Cxl_ref.data_words r)
                  dw;
              if hold then held := r :: !held
              else begin
                if Cxl_ref.read_word r 0 <> 42 || Cxl_ref.read_word r (dw - 1) <> 43
                then Alcotest.fail "payload corrupted";
                Cxl_ref.drop r
              end)
        prog;
      List.iter Cxl_ref.drop !held;
      Shm.free_segments arena = before
      && Validate.is_clean (Shm.validate arena)
      && Validate.is_clean (Fsck.check (Shm.mem arena) (Shm.layout arena)))

let prop_roundtrip_flat = prop_roundtrip Mem.Flat "huge roundtrips (flat)"

let prop_roundtrip_striped =
  prop_roundtrip
    (Mem.Striped { devices = 4; stripe_words = 0; tiers = [||] })
    "huge roundtrips (striped)"

let suite =
  [
    Alcotest.test_case "single-segment huge" `Quick test_single_segment_huge;
    Alcotest.test_case "multi-segment huge" `Quick test_multi_segment_huge;
    Alcotest.test_case "huge shared across clients" `Quick test_huge_shared_across_clients;
    Alcotest.test_case "huge owner crash" `Quick test_huge_owner_crash;
    Alcotest.test_case "huge survives crash when shared" `Quick test_huge_survives_owner_crash_when_shared;
    Alcotest.test_case "huge OOM" `Quick test_huge_oom;
    Alcotest.test_case "true length beyond meta saturation" `Quick
      test_true_length_beyond_meta;
    Alcotest.test_case "fsck cross-checks true length" `Quick
      test_crosscheck_true_length;
    Alcotest.test_case "fsck repairs a lying true length" `Quick
      test_fsck_repairs_lying_true_length;
    Alcotest.test_case "crash mid tail release" `Quick
      (crash_free_huge Fault.Free_huge_mid_release);
    Alcotest.test_case "crash after head reset" `Quick
      (crash_free_huge Fault.Free_huge_after_reset);
    Alcotest.test_case "fsck finishes a half-freed run" `Quick
      test_fsck_finishes_half_freed_run;
    Alcotest.test_case "huge run avoids degraded device" `Quick
      test_huge_run_avoids_degraded_device;
    Alcotest.test_case "free windows under the schedule explorer" `Quick
      test_sched_huge_crashes;
    Generators.to_alcotest prop_roundtrip_flat;
    Generators.to_alcotest prop_roundtrip_striped;
  ]
