module Word = Cxlshm_shmem.Word

type state = Free | Active | Orphaned | Leaking | Huge_head | Huge_cont

let state_name = function
  | Free -> "free"
  | Active -> "active"
  | Orphaned -> "orphaned"
  | Leaking -> "potential-leaking"
  | Huge_head -> "huge-head"
  | Huge_cont -> "huge-cont"

let state_to_int = function
  | Free -> 0
  | Active -> 1
  | Orphaned -> 2
  | Leaking -> 3
  | Huge_head -> 4
  | Huge_cont -> 5

let state_of_int = function
  | 0 -> Free
  | 1 -> Active
  | 2 -> Orphaned
  | 3 -> Leaking
  | 4 -> Huge_head
  | 5 -> Huge_cont
  | n -> invalid_arg (Printf.sprintf "Segment.state_of_int: %d" n)

let owner (ctx : Ctx.t) s =
  let v = Ctx.load ctx (Layout.seg_occupied ctx.lay s) in
  if v = 0 then None else Some (v - 1)

let state (ctx : Ctx.t) s = state_of_int (Ctx.load ctx (Layout.seg_state ctx.lay s))
let set_state (ctx : Ctx.t) s st = Ctx.store ctx (Layout.seg_state ctx.lay s) (state_to_int st)
let version (ctx : Ctx.t) s = Ctx.load ctx (Layout.seg_version ctx.lay s)

let bump_version (ctx : Ctx.t) s =
  let v = Layout.seg_version ctx.lay s in
  Ctx.store ctx v (Ctx.load ctx v + 1)

let claim (ctx : Ctx.t) s =
  let occ = Layout.seg_occupied ctx.lay s in
  if Ctx.cas ctx occ ~expected:0 ~desired:(ctx.cid + 1) then begin
    bump_version ctx s;
    set_state ctx s Active;
    Ctx.cache_note_claim ctx s;
    true
  end
  else false

let adopt (ctx : Ctx.t) s =
  match owner ctx s with
  | None -> false
  | Some prev ->
      state ctx s = Orphaned
      && Ctx.cas ctx (Layout.seg_occupied ctx.lay s) ~expected:(prev + 1)
           ~desired:(ctx.cid + 1)
      && begin
           bump_version ctx s;
           set_state ctx s Active;
           Ctx.cache_note_claim ctx s;
           true
         end

let release (ctx : Ctx.t) s =
  (* Drop any parked cross-client frees: the blocks die with the segment
     (release implies every block is count-zero), and a stale entry
     surviving into the next claimant's lifetime would feed the deferred
     drain a pointer into a since-reset page. *)
  Ctx.store ctx (Layout.seg_client_free ctx.lay s) 0;
  set_state ctx s Free;
  bump_version ctx s;
  Ctx.store ctx (Layout.seg_occupied ctx.lay s) 0;
  Ctx.cache_note_release ctx s

let orphan (ctx : Ctx.t) ~cid s =
  match owner ctx s with
  | Some o when o = cid -> set_state ctx s Orphaned
  | Some _ | None -> ()

let mark_leaking (ctx : Ctx.t) s = set_state ctx s Leaking

let find_free (ctx : Ctx.t) =
  let n = (Ctx.cfg ctx).Config.num_segments in
  let rec go s = if s >= n then None else if owner ctx s = None then Some s else go (s + 1) in
  go 0

let owned_by (ctx : Ctx.t) ~cid =
  (* The O(num_segments) shared scan is the price the cache tier removes:
     a client's own ownership set is served from the mirror once populated
     (claims/releases keep it current; [seg_occupied] for this client
     changes only under this client's CAS while it is alive). Queries about
     *other* clients always scan shared memory. *)
  if cid = ctx.Ctx.cid && Ctx.cache_owned_known ctx then
    Ctx.cache_owned_list ctx
  else begin
    let n = (Ctx.cfg ctx).Config.num_segments in
    let rec go s acc =
      if s < 0 then acc
      else go (s - 1) (if owner ctx s = Some cid then s :: acc else acc)
    in
    let segs = go (n - 1) [] in
    if cid = ctx.Ctx.cid then Ctx.cache_install_owned ctx segs;
    segs
  end

(* Cross-client free stack. The head word packs a 16-bit tag with the block
   pointer; the tag increments on every pop-all, defeating ABA between a
   pusher's read of the head and its CAS. A free block's next pointer lives
   in its first data word (the header words stay zero so the §5.3 full scan
   still reads ref_cnt = 0). *)
let f_tag = Word.field ~shift:46 ~bits:16
let f_ptr = Word.field ~shift:0 ~bits:46

let next_slot block = block + Config.header_words

let push_client_free (ctx : Ctx.t) ~seg block =
  let head = Layout.seg_client_free ctx.lay seg in
  let rec loop () =
    let cur = Ctx.load ctx head in
    Ctx.store ctx (next_slot block) (Word.get f_ptr cur);
    let desired = Word.set f_ptr cur block in
    if not (Ctx.cas ctx head ~expected:cur ~desired) then loop ()
  in
  loop ()

let pop_all_client_free (ctx : Ctx.t) ~seg =
  let head = Layout.seg_client_free ctx.lay seg in
  let rec swap () =
    let cur = Ctx.load ctx head in
    if Word.get f_ptr cur = 0 then 0
    else
      let tag = (Word.get f_tag cur + 1) land Word.max_value f_tag in
      let empty = Word.set f_tag (Word.set f_ptr cur 0) tag in
      if Ctx.cas ctx head ~expected:cur ~desired:empty then Word.get f_ptr cur
      else swap ()
  in
  let rec walk p acc =
    if p = 0 then List.rev acc
    else walk (Ctx.load ctx (next_slot p)) (p :: acc)
  in
  walk (swap ()) []
