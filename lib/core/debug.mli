(** Human-readable arena introspection.

    Read-only dumps of the shared pool's management state — client slots,
    the era matrix, the segment vector, page occupancy, queue and root
    directories — for debugging applications and for the CLI. All reads are
    unattributed ({!Cxlshm_shmem.Mem.unsafe_peek}), so dumping does not
    perturb benchmark statistics. *)

val pp_clients : Format.formatter -> Cxlshm_shmem.Mem.t * Layout.t -> unit
val pp_era_matrix : Format.formatter -> Cxlshm_shmem.Mem.t * Layout.t -> unit
val pp_segments : Format.formatter -> Cxlshm_shmem.Mem.t * Layout.t -> unit
val pp_queues : Format.formatter -> Cxlshm_shmem.Mem.t * Layout.t -> unit
val pp_roots : Format.formatter -> Cxlshm_shmem.Mem.t * Layout.t -> unit

val pp_arena : Format.formatter -> Cxlshm_shmem.Mem.t * Layout.t -> unit
(** All of the above. *)

val summary : Cxlshm_shmem.Mem.t -> Layout.t -> string
(** One-line arena summary: clients alive, segments used, pages carved. *)
