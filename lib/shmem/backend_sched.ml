(* Scheduler instrumentation: a wrapper over any other backend that hands
   control to a cooperative scheduler before every raw word operation.

   This is the hook the [lib/check] model checker builds on — following the
   dscheck approach, each shared-memory access is a scheduling point where
   the explorer may preempt the running logical client or inject a crash.
   The wrapper itself knows nothing about fibers or effects: it only calls
   [!hook] (when set) with a description of the access about to happen, then
   delegates to the base backend. The scheduler installs the hook around
   each fiber resumption, so scheduler/checker code running outside a fiber
   reads the pool without yielding to itself.

   A single global hook is intentional: the model checker is single-domain
   by design (fibers are coroutines, never real threads), and threading the
   hook through every [Mem.t] consumer would touch the whole system for a
   test-only concern. Bulk operations (fill/blit/snapshot/restore) are not
   hooked — they are setup/teardown and durable-image paths, not the
   concurrent protocols under test. *)

type access =
  | Load of int
  | Store of int
  | Cas of int
  | Fetch_add of int
  | Fence
  | Flush of int

let access_name = function
  | Load p -> Printf.sprintf "load@%d" p
  | Store p -> Printf.sprintf "store@%d" p
  | Cas p -> Printf.sprintf "cas@%d" p
  | Fetch_add p -> Printf.sprintf "faa@%d" p
  | Fence -> "fence"
  | Flush p -> Printf.sprintf "flush@%d" p

let hook : (access -> unit) option ref = ref None
let note a = match !hook with Some f -> f a | None -> ()

type t = { base : Mem_intf.packed }

let create ~base () = { base }

(* ---- delegation shorthands ---- *)

let b_name t = let (Mem_intf.Packed ((module B), b)) = t.base in B.name b
let words t = let (Mem_intf.Packed ((module B), b)) = t.base in B.words b
let num_devices t = let (Mem_intf.Packed ((module B), b)) = t.base in B.num_devices b
let device_of t p = let (Mem_intf.Packed ((module B), b)) = t.base in B.device_of b p
let device_tier t d = let (Mem_intf.Packed ((module B), b)) = t.base in B.device_tier b d

let name t = "sched+" ^ b_name t

let load t p =
  note (Load p);
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.load b p

let store t p v =
  note (Store p);
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.store b p v

let cas t p ~expected ~desired =
  note (Cas p);
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.cas b p ~expected ~desired

let fetch_add t p n =
  note (Fetch_add p);
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.fetch_add b p n

let fence t =
  note Fence;
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.fence b

let flush t p =
  note (Flush p);
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.flush b p

let fill t ~pos ~len v =
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.fill b ~pos ~len v

let blit t ~src ~dst ~len =
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.blit b ~src ~dst ~len

let snapshot t =
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.snapshot b

let restore t ws =
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.restore b ws
