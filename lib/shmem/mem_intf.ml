(** Pluggable arena backends — the device pool behind {!Mem}.

    The paper's target topology (Fig 1) is a *pool* of CXL devices behind a
    switch, not one flat device. A backend owns the actual word storage of
    the simulated pool and decides how global word addresses map onto
    devices; the {!Mem} wrapper layers bounds checking, byte packing and
    {!Stats} attribution on top, so a backend only implements raw word
    transport plus the address→device map.

    Backend contract:

    - every address passed in is in range [\[0, words)] — the {!Mem}
      wrapper performs the {!Mem.Wild_pointer} bounds check first;
    - [load]/[store]/[cas]/[fetch_add] must be atomic across OCaml domains,
      unless the backend documents itself single-domain
      (see {!Backend_counting});
    - [blit] must behave like [memmove]: overlapping ranges copy correctly
      in either direction;
    - [snapshot]/[restore] use *global* (pool) address order regardless of
      how the backend scatters words across devices, so pool images are
      portable between backends — recovery and {!Mem.Wild_pointer}
      semantics are identical on every backend;
    - [fence]/[flush] order/write back stores on a real (mmap) backend; the
      in-memory simulation backends treat them as no-ops because OCaml
      atomics are already sequentially consistent — {!Mem} still counts
      them for the cost model. *)

module type S = sig
  type t

  val name : t -> string
  (** Short human-readable backend id, e.g. ["flat"] or ["striped-4x8192"]. *)

  val words : t -> int

  (** {2 Device topology} *)

  val num_devices : t -> int
  val device_of : t -> int -> int
  (** Device index in [\[0, num_devices)] holding a global word address. *)

  val device_tier : t -> int -> Latency.tier
  (** Memory tier of one device — the per-device latency class {!Mem} uses
      to charge cross-device accesses. *)

  (** {2 Word transport} *)

  val load : t -> int -> int
  val store : t -> int -> int -> unit
  val cas : t -> int -> expected:int -> desired:int -> bool
  val fetch_add : t -> int -> int -> int
  val fence : t -> unit
  val flush : t -> int -> unit

  (** {2 Bulk operations} *)

  val fill : t -> pos:int -> len:int -> int -> unit
  val blit : t -> src:int -> dst:int -> len:int -> unit
  (** [memmove] semantics: overlapping ranges must copy correctly. *)

  (** {2 Durable image} *)

  val snapshot : t -> int array
  val restore : t -> int array -> unit
  (** [restore] may assume the array length equals [words t]. *)
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed
(** A backend module paired with one of its instances — what a {!Mem.t}
    dispatches through. *)
