(** Standalone failure monitor (§3.2).

    Detects dead clients by watching their heartbeat counters and kicks the
    recovery service asynchronously. Detection is orthogonal to the paper's
    contribution (a hardware RAS feature fences dead clients in the real
    system); here a client that stops heartbeating for [misses] consecutive
    checks is declared failed. Tests may also declare failures directly. *)

type t

val create : mem:Cxlshm_shmem.Mem.t -> lay:Layout.t -> ?misses:int -> unit -> t

val check_once : t -> int list
(** Sample heartbeats; returns the clients newly suspected dead (they are
    declared [Failed] but not yet recovered). Each newly declared failure
    also captures the client's last trace-ring events (see
    {!death_dumps}) before recovery touches the arena. *)

val death_dumps : t -> (int * Trace.event list) list
(** Event-ring dumps captured when clients were declared failed, newest
    first. Empty events lists mean the client wasn't tracing. *)

val recover_suspects : t -> (int * Recovery.report) list
(** Run recovery for every client currently in [Failed] state. *)

val run_in_domain : t -> interval:float -> unit Domain.t * bool Atomic.t
(** Spawn the monitor loop in its own domain; set the returned flag to stop
    it. The loop checks, recovers, and runs the POTENTIAL_LEAKING scan. An
    exception in one iteration (a device fault, a half-recovered client) is
    counted and remembered — see {!error_count}/{!last_error} — and the loop
    keeps running; it never dies silently. *)

val stop_and_join : unit Domain.t * bool Atomic.t -> t -> exn option
(** Stop the loop started by {!run_in_domain}, wait for the domain to
    finish, and return the last error any iteration raised (if any). *)

val ctx : t -> Ctx.t
(** The monitor's service context (useful for validation and fsck). *)

val error_count : t -> int
(** Loop iterations that raised since the monitor was created. *)

val last_error : t -> exn option

val degraded_devices : t -> int list
(** Devices currently marked degraded in the shared bitmap (escalated
    device faults steer allocation away from them). *)
