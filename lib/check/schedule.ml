(* A schedule is the replay token of one explored run: the model's name plus
   the exact decision taken at every branch point, in order. The string form
   is what a failing run prints and what `cxlshm explore --replay` parses —
   it must round-trip bit-identically. *)

type decision = Run of int | Crash of int

type t = { model : string; decisions : decision list }

let decision_to_string = function
  | Run c -> string_of_int c
  | Crash c -> "c" ^ string_of_int c

let to_string t =
  t.model ^ ":" ^ String.concat "," (List.map decision_to_string t.decisions)

let decision_of_string s =
  let fail () = invalid_arg ("Schedule.of_string: bad decision " ^ s) in
  if s = "" then fail ()
  else if s.[0] = 'c' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some c when c >= 0 -> Crash c
    | _ -> fail ()
  else
    match int_of_string_opt s with Some c when c >= 0 -> Run c | _ -> fail ()

let of_string s =
  match String.index_opt s ':' with
  | None -> invalid_arg "Schedule.of_string: missing model prefix (model:d,d,...)"
  | Some i ->
      let model = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let decisions =
        if rest = "" then []
        else List.map decision_of_string (String.split_on_char ',' rest)
      in
      if model = "" then invalid_arg "Schedule.of_string: empty model name";
      { model; decisions }
