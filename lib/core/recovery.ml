type report = {
  resumed_txn : bool;
  rootrefs_released : int;
  incomplete_allocs : int;
  worklist_processed : int;
  segments_orphaned : int;
  segments_released : int;
  leak_marked : int;
  journal_replayed : int;
  parked_journaled : int;
}

let empty_report =
  {
    resumed_txn = false;
    rootrefs_released = 0;
    incomplete_allocs = 0;
    worklist_processed = 0;
    segments_orphaned = 0;
    segments_released = 0;
    leak_marked = 0;
    journal_replayed = 0;
    parked_journaled = 0;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "resumed-txn=%b rootrefs=%d incomplete-allocs=%d worklist=%d orphaned=%d \
     released=%d leak-marked=%d journal=%d parked=%d"
    r.resumed_txn r.rootrefs_released r.incomplete_allocs r.worklist_processed
    r.segments_orphaned r.segments_released r.leak_marked r.journal_replayed
    r.parked_journaled

(* Test-only: re-introduces the historical era-blind reap of a crashed
   writer's parked records (free on sight instead of journaling for
   adoption) — the [kv-crash-reap] explorer mutation. *)
let mutation_crash_reap = ref false

(* ------------------------------------------------------------------ *)
(* Persistent worklist                                                  *)
(* ------------------------------------------------------------------ *)

let wl_push (ctx : Ctx.t) obj =
  let lay = ctx.Ctx.lay in
  let top = Ctx.load ctx (Layout.recovery_wl_top lay) in
  if top >= Layout.recovery_wl_capacity lay then
    (* Bounded worklist: fall back to leak-marking without child teardown;
       the children stay alive until their own references die. *)
    Logs.warn (fun m -> m "recovery worklist overflow; deferring @%d" obj)
  else begin
    Ctx.store ctx (Layout.recovery_wl_slot lay top) obj;
    Ctx.fence ctx;
    Ctx.store ctx (Layout.recovery_wl_top lay) (top + 1)
  end

(* Mark an object dead-for-reclaim: recovery never reclaims the block
   itself (not idempotent); the POTENTIAL_LEAKING scan will (§5.3). *)
let on_zero (ctx : Ctx.t) obj =
  wl_push ctx obj;
  Reclaim.mark_leaking_of ctx obj

(* Detach one embedded child of [obj]; duplicate worklist entries are
   harmless because zeroed slots are skipped and count-nonzero objects are
   not processed. Returns [true] if a child was detached. *)
let detach_one_child (ctx : Ctx.t) ~as_cid obj =
  let emb =
    Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj obj))
  in
  let rec go i =
    if i >= emb then false
    else
      let slot = Obj_header.emb_slot obj i in
      let child = Ctx.load ctx slot in
      if child = 0 then go (i + 1)
      else begin
        let n = Refc.detach_as ctx ~as_cid ~ref_addr:slot ~refed:child in
        if n = 0 then on_zero ctx child;
        true
      end
  in
  go 0

let wl_process (ctx : Ctx.t) ~as_cid =
  let lay = ctx.Ctx.lay in
  let processed = ref 0 in
  let rec loop () =
    let top = Ctx.load ctx (Layout.recovery_wl_top lay) in
    if top > 0 then begin
      let obj = Ctx.load ctx (Layout.recovery_wl_slot lay (top - 1)) in
      if Refc.ref_cnt ctx obj = 0 && detach_one_child ctx ~as_cid obj then
        (* A child was pushed or a slot zeroed; keep digging (LIFO DFS). *)
        loop ()
      else begin
        (* Object fully torn down (or resurrected by a duplicate entry):
           pop. The pop is a plain store; a crash re-processes the entry,
           which is a no-op. *)
        incr processed;
        Ctx.store ctx (Layout.recovery_wl_top lay) (top - 1);
        loop ()
      end
    end
  in
  loop ();
  !processed

(* ------------------------------------------------------------------ *)
(* Phase 1: resume the in-flight transaction                            *)
(* ------------------------------------------------------------------ *)

(* Complete the second ModifyRefCnt of a §5.4 change on behalf of the dead
   client: CAS {i, era, cnt+1} unless Conditions 1/2 already prove it
   committed. Restart-safe: re-runs observe the commit and stop. *)
let complete_increment (ctx : Ctx.t) ~cid obj ~era =
  let hdr = Obj_header.header_of_obj obj in
  let rec loop () =
    if not (Refc.committed ctx ~cid ~obj ~era) then begin
      let saved = Ctx.load ctx hdr in
      let u = Obj_header.unpack saved in
      (match u.Obj_header.lcid with
      | Some c when c <> cid ->
          Era.observe_for ctx ~cid ~saw_cid:c ~saw_era:u.Obj_header.lera
      | Some _ | None -> ());
      let newh =
        Obj_header.make ~lcid:cid ~lera:era ~ref_cnt:(u.Obj_header.ref_cnt + 1)
      in
      if not (Ctx.cas ctx hdr ~expected:saved ~desired:newh) then loop ()
    end
  in
  loop ()

let resume_txn (ctx : Ctx.t) ~cid =
  match Redo_log.read ctx ~cid with
  | None -> false
  | Some r -> (
      let e_now = Era.self_of ctx ~cid in
      match r.Redo_log.op with
      | Redo_log.Locked ->
          (* straw-man records are resumed by Locked_refc.recover *)
          false
      | Redo_log.Attach | Redo_log.Detach ->
          if
            r.Redo_log.era = e_now
            && Refc.committed ctx ~cid ~obj:r.Redo_log.refed ~era:e_now
          then begin
            (* Commit happened; redo the idempotent ModifyRef. *)
            let is_attach = r.Redo_log.op = Redo_log.Attach in
            Ctx.store ctx r.Redo_log.ref_addr
              (if is_attach then r.Redo_log.refed else 0);
            Ctx.flush ctx r.Redo_log.ref_addr;
            if (not is_attach) && r.Redo_log.saved_cnt - 1 = 0 then
              on_zero ctx r.Redo_log.refed;
            Era.advance_for ctx ~cid;
            true
          end
          else false
      | Redo_log.Change ->
          let e = r.Redo_log.era in
          let t1_committed =
            e_now = e && Refc.committed ctx ~cid ~obj:r.Redo_log.refed ~era:e
          in
          if t1_committed then Era.advance_for ctx ~cid;
          let e_now = Era.self_of ctx ~cid in
          if e_now = e + 1 then begin
            (* First decrement committed; finish the increment of B, the
               ModifyRef, and the trailing era bump. *)
            complete_increment ctx ~cid r.Redo_log.refed2 ~era:(e + 1);
            Ctx.store ctx r.Redo_log.ref_addr r.Redo_log.refed2;
            Ctx.flush ctx r.Redo_log.ref_addr;
            if r.Redo_log.saved_cnt - 1 = 0 then on_zero ctx r.Redo_log.refed;
            Era.advance_for ctx ~cid;
            true
          end
          else t1_committed
      | Redo_log.Move ->
          (* Count-neutral move: no CAS decides — the destination link is
             the commit. Linked means the count moved to the RootRef, so
             the idempotent source clear is redone; unlinked means the
             move never happened and the source keeps the count (endpoint
             recovery releases the queue slot). *)
          let rr = r.Redo_log.refed2 in
          if
            r.Redo_log.era = e_now
            && Rootref.in_use ctx rr
            && Ctx.load ctx (Rootref.pptr_slot rr) = r.Redo_log.refed
          then begin
            if Ctx.load ctx r.Redo_log.ref_addr = r.Redo_log.refed then begin
              Ctx.store ctx r.Redo_log.ref_addr 0;
              Ctx.flush ctx r.Redo_log.ref_addr
            end;
            Era.advance_for ctx ~cid;
            true
          end
          else false)

(* ------------------------------------------------------------------ *)
(* Phase 1b: salvage an interrupted race-to-zero teardown               *)
(* ------------------------------------------------------------------ *)

(* [Reclaim.release_held]'s race-to-zero branch detaches first and only
   then tears down the children of the object it zeroed, so a crash inside
   that tail strands a count-zero block with live embedded references the
   redo log does not cover (each child detach overwrites the record). The
   record that IS there — even stale, even uncommitted — still names either
   the zeroed object itself ([refed], crash in the Release_before_reclaim
   window) or one of its embedded slots ([ref_addr], crash inside a child
   detach): enough to find the dead block and queue it on the persistent
   worklist, where [wl_process] finishes the teardown as the dead client.
   Acting on a stale record is sound because the push is gated on the block
   being count-zero, unfreed, AND last-CASed by the dead client itself: the
   decrement that zeroed it was this client's, so the teardown obligation
   died with it. A count-zero block whose header names another client is
   that client's teardown — still running if it is alive, its own
   recovery's if not — and queueing it here would detach the same children
   twice. *)
let salvage_teardown (ctx : Ctx.t) ~cid =
  match Redo_log.read ctx ~cid with
  | None -> ()
  | Some r ->
      let cfg = Ctx.cfg ctx in
      let dead_block addr =
        match Page.block_of_addr ctx addr with
        | exception Invalid_argument _ -> None
        | b, gid ->
            let k = Page.kind ctx ~gid in
            if k = Config.kind_rootref cfg || k = Config.kind_huge cfg then
              None
            else
              let hdr = Ctx.load ctx (Obj_header.header_of_obj b) in
              if
                hdr <> 0
                && Obj_header.ref_cnt_of hdr = 0
                && Obj_header.lcid_of hdr = Some cid
              then Some b
              else None
      in
      let salvage ~as_slot addr =
        if addr <> 0 then
          match dead_block addr with
          | None -> ()
          | Some b ->
              let hit =
                if not as_slot then b = addr
                else
                  let emb =
                    Obj_header.meta_emb_cnt
                      (Ctx.load ctx (Obj_header.meta_of_obj b))
                  in
                  emb > 0
                  && addr >= Obj_header.emb_slot b 0
                  && addr <= Obj_header.emb_slot b (emb - 1)
              in
              if hit then on_zero ctx b
      in
      (match r.Redo_log.op with
      | Redo_log.Attach | Redo_log.Detach | Redo_log.Change ->
          salvage ~as_slot:false r.Redo_log.refed;
          salvage ~as_slot:false r.Redo_log.refed2;
          salvage ~as_slot:true r.Redo_log.ref_addr
      | Redo_log.Locked | Redo_log.Move -> ())

(* ------------------------------------------------------------------ *)
(* Phase 3: RootRef-page scan                                           *)
(* ------------------------------------------------------------------ *)

(* §5.1 double-free guard: a RootRef whose pointer equals the free pointer
   of the page containing the pointed block was linked before the block was
   actually carved; the allocation never completed, so release is skipped. *)
let allocation_incomplete (ctx : Ctx.t) obj =
  match Page.block_of_addr ctx obj with
  | exception Invalid_argument _ -> false
  | _, gid -> Page.free_head ctx ~gid = obj

let release_one_rootref (ctx : Ctx.t) ~cid rr report =
  let obj = Rootref.obj ctx rr in
  if obj = 0 then begin
    Rootref.set_state ctx rr ~in_use:false ~cnt:0;
    report := { !report with incomplete_allocs = !report.incomplete_allocs + 1 }
  end
  else if allocation_incomplete ctx obj then begin
    Ctx.store ctx (Rootref.pptr_slot rr) 0;
    Rootref.set_state ctx rr ~in_use:false ~cnt:0;
    report := { !report with incomplete_allocs = !report.incomplete_allocs + 1 }
  end
  else if Refc.ref_cnt ctx obj = 0 then begin
    (* Allocation died between advancing the free pointer and initialising
       the header: the block is off-list with count zero; the leak scan
       reclaims its segment. A shard-stolen block that died before its
       header write still carries its stamp — drop it, or it would pin the
       segment against that very scan forever. *)
    Ctx.store ctx (Rootref.pptr_slot rr) 0;
    Rootref.set_state ctx rr ~in_use:false ~cnt:0;
    if Shard.pins ctx obj then Shard.clear_stamp ctx obj;
    Reclaim.mark_leaking_of ctx obj;
    report :=
      {
        !report with
        incomplete_allocs = !report.incomplete_allocs + 1;
        leak_marked = !report.leak_marked + 1;
      }
  end
  else begin
    let n = Refc.detach_as ctx ~as_cid:cid ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj in
    if n = 0 then on_zero ctx obj;
    Rootref.set_state ctx rr ~in_use:false ~cnt:0;
    report := { !report with rootrefs_released = !report.rootrefs_released + 1 }
  end

(* ------------------------------------------------------------------ *)
(* Phase 2: retirement-journal replay                                   *)
(* ------------------------------------------------------------------ *)

(* Finish (or discard) a sealed retirement batch the dead client left
   behind. Entries are processed strictly in slot order and each entry's
   rootref was freed ([in_use] cleared) only once fully retired, so the
   still-[in_use] tail is exactly the unfinished work. Because the
   redo-free [Refc.detach_batched] clears the rootref's pointer right
   after its commit CAS, an [in_use] entry resolves against live state:

   - pointer already null: the detach (and any teardown) committed, only
     the rootref free is missing;
   - object count zero with the pointer intact: the client's own
     race-to-zero CAS landed but the unlink didn't — its era was consumed
     iff the header still carries (cid, now);
   - Conditions 1 & 2 prove the decrement at the client's current era:
     redo the idempotent unlink and consume the era;
   - otherwise the decrement never landed: run the full eager ladder.

   Runs AFTER [resume_txn] (a child detach inside the batch may itself be
   in flight, and its resolution fixes the current era) and BEFORE
   endpoint recovery or the rootref scan — both issue new era-consuming
   transactions for [cid], which would advance the era past the
   unfinished entry's and turn its committed decrement into a replayed
   (double) one. *)
let recover_journal (ctx : Ctx.t) ~cid report =
  match Epoch.read_journal ctx ~cid with
  | None -> ()
  | Some slots ->
      Array.iter
        (fun rr ->
          if Rootref.in_use ctx rr then begin
            let e_now = Era.self_of ctx ~cid in
            let obj = Rootref.obj ctx rr in
            if obj = 0 then Rootref.set_state ctx rr ~in_use:false ~cnt:0
            else if Refc.ref_cnt ctx obj = 0 then begin
              (* Only reachable when the final decrement landed but the
                 unlink store was lost: children are already torn down and
                 the segment leak-marked, so [on_zero] is an idempotent
                 re-mark and the §5.3 scan reclaims the block. *)
              let u =
                Obj_header.unpack (Ctx.load ctx (Obj_header.header_of_obj obj))
              in
              Ctx.store ctx (Rootref.pptr_slot rr) 0;
              Rootref.set_state ctx rr ~in_use:false ~cnt:0;
              on_zero ctx obj;
              if u.Obj_header.lcid = Some cid && u.Obj_header.lera = e_now then
                Era.advance_for ctx ~cid
            end
            else if Refc.committed ctx ~cid ~obj ~era:e_now then begin
              let slot = Rootref.pptr_slot rr in
              Ctx.store ctx slot 0;
              Ctx.flush ctx slot;
              Rootref.set_state ctx rr ~in_use:false ~cnt:0;
              Era.advance_for ctx ~cid
            end
            else release_one_rootref ctx ~cid rr report;
            let n = wl_process ctx ~as_cid:cid in
            report :=
              {
                !report with
                worklist_processed = !report.worklist_processed + n;
                journal_replayed = !report.journal_replayed + 1;
              }
          end)
        slots;
      Epoch.clear_journal ctx ~cid

(* ------------------------------------------------------------------ *)
(* Phase 2b: parked-record adoption                                     *)
(* ------------------------------------------------------------------ *)

(* A KV writer parks era-pinned records (unlinked but possibly still read
   by a pinned walker) in its persistent registry. When the writer dies,
   those records must NOT be released era-blind — a reader announced before
   the unlink may still hold a raw pointer. Instead recovery moves every
   occupied registry slot into the arena-wide adoption journal, retire
   stamps intact, for a live successor to adopt ([Cxl_kv.adopt_recovered])
   or for the monitor to drain once all announced eras have passed. *)

let journal_holds (ctx : Ctx.t) rr =
  let lay = ctx.Ctx.lay in
  let rec go k =
    k < Layout.adopt_capacity lay
    && (Ctx.load ctx (Layout.adopt_slot_rr lay k) = rr || go (k + 1))
  in
  go 0

(* Append {rr, stamp} to the adoption journal. The rr word is the commit
   point: stamp and a zero claim are fenced first, so a crash mid-append
   leaves a free (rr = 0) slot. Returns [false] when the journal is full. *)
let journal_append (ctx : Ctx.t) ~stamp rr =
  let lay = ctx.Ctx.lay in
  let rec go k =
    if k >= Layout.adopt_capacity lay then false
    else if Ctx.load ctx (Layout.adopt_slot_rr lay k) = 0 then begin
      Ctx.store ctx (Layout.adopt_slot_stamp lay k) stamp;
      Ctx.store ctx (Layout.adopt_slot_claim lay k) 0;
      Ctx.fence ctx;
      Ctx.store ctx (Layout.adopt_slot_rr lay k) rr;
      true
    end
    else go (k + 1)
  in
  go 0

let adopt_pending (ctx : Ctx.t) =
  let lay = ctx.Ctx.lay in
  let n = ref 0 in
  for k = 0 to Layout.adopt_capacity lay - 1 do
    if Ctx.load ctx (Layout.adopt_slot_rr lay k) <> 0 then incr n
  done;
  !n

(* The rootrefs named by the adoption journal and by every client's parked
   registry are live holders, whatever segment they sit in: the rootref
   scan of a later-failing segment owner must not era-blind-release them. *)
let adoption_holds (ctx : Ctx.t) =
  let lay = ctx.Ctx.lay in
  let cfg = Ctx.cfg ctx in
  let tbl = Hashtbl.create 16 in
  for k = 0 to Layout.adopt_capacity lay - 1 do
    let rr = Ctx.load ctx (Layout.adopt_slot_rr lay k) in
    if rr <> 0 then Hashtbl.replace tbl rr ()
  done;
  for i = 0 to cfg.Config.max_clients - 1 do
    for k = 0 to Layout.park_capacity lay - 1 do
      let rr = Ctx.load ctx (Layout.park_slot_rr lay i k) in
      if rr <> 0 then Hashtbl.replace tbl rr ()
    done
  done;
  tbl

let recover_parked (ctx : Ctx.t) ~cid report =
  let lay = ctx.Ctx.lay in
  (* Resolve adoptions [cid] had in flight as a successor. If its registry
     already holds the journal entry's rr, the move committed — clear the
     journal slot (the entry re-enters the journal from the registry scan
     below, stamp intact). Otherwise the claim is void: release it so
     another successor (or the drain) can take the entry. *)
  let registry_has rr =
    let rec go k =
      k < Layout.park_capacity lay
      && (Ctx.load ctx (Layout.park_slot_rr lay cid k) = rr || go (k + 1))
    in
    go 0
  in
  for k = 0 to Layout.adopt_capacity lay - 1 do
    if Ctx.load ctx (Layout.adopt_slot_claim lay k) = cid + 1 then begin
      let rr = Ctx.load ctx (Layout.adopt_slot_rr lay k) in
      if rr <> 0 && registry_has rr then begin
        Ctx.store ctx (Layout.adopt_slot_rr lay k) 0;
        Ctx.store ctx (Layout.adopt_slot_stamp lay k) 0
      end;
      Ctx.store ctx (Layout.adopt_slot_claim lay k) 0
    end
  done;
  (* Move the dead client's registry into the journal, stamps intact. Each
     move is journal-then-clear so a crash in between leaves the entry in
     both places; [journal_holds] makes the redo idempotent. *)
  for k = 0 to Layout.park_capacity lay - 1 do
    let rr_addr = Layout.park_slot_rr lay cid k in
    let rr = Ctx.load ctx rr_addr in
    if rr <> 0 then
      if !mutation_crash_reap then begin
        (* Era-blind reap: free the parked record through the live eager
           path, ignoring announced reader eras — the bug this subsystem
           exists to prevent. *)
        if Rootref.in_use ctx rr then begin
          Ctx.store ctx rr_addr 0;
          Reclaim.release_rootref ctx rr
        end
        else Ctx.store ctx rr_addr 0
      end
      else if Rootref.in_use ctx rr && Rootref.obj ctx rr <> 0 then begin
        let stamp = Ctx.load ctx (Layout.park_slot_stamp lay cid k) in
        let journaled =
          journal_holds ctx rr
          || journal_append ctx ~stamp rr
          ||
          (* Bounded journal: leave the entry registered to the dead
             client — leaked until a later recovery finds room, never
             freed under a pinned reader. *)
          (Logs.warn (fun m ->
               m "recovery: adoption journal full; rr@%d stays parked on \
                  dead client %d" rr cid);
           false)
        in
        Ctx.crash_point ctx Fault.Adopt_mid_journal;
        if journaled then begin
          Ctx.store ctx rr_addr 0;
          report :=
            { !report with parked_journaled = !report.parked_journaled + 1 }
        end
      end
      else
        (* Half-committed park (no object yet) or already-freed rootref:
           the registry entry is stale bookkeeping. *)
        Ctx.store ctx rr_addr 0
  done

(* Monitor-side fallback when no live successor adopts: release journal
   entries whose retire stamp has passed every announced reader era. The
   slot is cleared (and fenced) before the release — a crash in between
   leaks the record, which is safe; the opposite order could double-free
   on a re-drain. *)
let drain_adopt_journal (ctx : Ctx.t) =
  let lay = ctx.Ctx.lay in
  let safe = Hazard.min_announced ctx in
  let n = ref 0 in
  for k = 0 to Layout.adopt_capacity lay - 1 do
    let rr = Ctx.load ctx (Layout.adopt_slot_rr lay k) in
    if
      rr <> 0
      && Ctx.load ctx (Layout.adopt_slot_claim lay k) = 0
      && Ctx.load ctx (Layout.adopt_slot_stamp lay k) < safe
      && Rootref.in_use ctx rr
    then begin
      Ctx.store ctx (Layout.adopt_slot_rr lay k) 0;
      Ctx.store ctx (Layout.adopt_slot_stamp lay k) 0;
      Ctx.fence ctx;
      Reclaim.release_rootref ctx rr;
      incr n
    end
  done;
  !n

let scan_rootref_pages (ctx : Ctx.t) ~cid report =
  let cfg = Ctx.cfg ctx in
  let rr_kind = Config.kind_rootref cfg in
  let holds = adoption_holds ctx in
  List.iter
    (fun seg ->
      for p = 0 to cfg.Config.pages_per_segment - 1 do
        let gid = Layout.page_gid ctx.Ctx.lay ~seg ~page:p in
        if Page.kind ctx ~gid = rr_kind then begin
          (* An in_use block at the head of the free chain is a RootRef
             allocation that died before advancing the free pointer. *)
          let head = Page.free_head ctx ~gid in
          if head <> 0 && Rootref.in_use ctx head then
            Rootref.set_state ctx head ~in_use:false ~cnt:0;
          List.iter
            (fun rr ->
              if Rootref.in_use ctx rr && not (Hashtbl.mem holds rr) then begin
                release_one_rootref ctx ~cid rr report;
                let n = wl_process ctx ~as_cid:cid in
                report :=
                  {
                    !report with
                    worklist_processed = !report.worklist_processed + n;
                  }
              end)
            (Page.blocks ctx ~gid)
        end
      done)
    (Segment.owned_by ctx ~cid)

(* ------------------------------------------------------------------ *)
(* Phase 5: segments                                                    *)
(* ------------------------------------------------------------------ *)

let segment_empty (ctx : Ctx.t) seg =
  let cfg = Ctx.cfg ctx in
  let rec go p =
    if p >= cfg.Config.pages_per_segment then true
    else
      let gid = Layout.page_gid ctx.Ctx.lay ~seg ~page:p in
      let k = Page.kind ctx ~gid in
      (k = Config.kind_unused
      ||
      if k = Config.kind_rootref cfg then
        List.for_all (fun rr -> not (Rootref.in_use ctx rr)) (Page.blocks ctx ~gid)
      else
        (* A dead block parked on a domain shard stack pins the segment
           (same rule as [Reclaim.page_all_zero]): releasing would reset
           the page under a stealable stack entry. *)
        List.for_all
          (fun b ->
            Obj_header.ref_cnt_of (Ctx.load ctx (Obj_header.header_of_obj b)) = 0
            && not (Shard.pins ctx b))
          (Page.blocks ctx ~gid))
      && go (p + 1)
  in
  go 0

let handle_segments (ctx : Ctx.t) ~cid report =
  let cfg = Ctx.cfg ctx in
  let handle_huge_head seg =
    let obj =
      Layout.segment_base ctx.Ctx.lay seg + ctx.Ctx.lay.Layout.seg_hdr_words
    in
    if Refc.ref_cnt ctx obj = 0 then begin
      Segment.mark_leaking ctx seg;
      if Reclaim.scan_segment ctx seg then
        report :=
          { !report with segments_released = !report.segments_released + 1 }
    end
    else begin
      Segment.orphan ctx ~cid seg;
      report :=
        { !report with segments_orphaned = !report.segments_orphaned + 1 }
    end
  in
  let huge_head seg =
    Page.kind ctx ~gid:(Layout.page_gid ctx.Ctx.lay ~seg ~page:0)
    = Config.kind_huge cfg
  in
  List.iter
    (fun seg ->
      match Segment.state ctx seg with
      | Segment.Huge_head -> handle_huge_head seg
      | Segment.Huge_cont ->
          (* Handled alongside its head; ownership follows the head. *)
          ()
      | (Segment.Active | Segment.Leaking | Segment.Orphaned)
        when huge_head seg ->
          (* A leak-marked huge head: the owner died inside [free_huge]
             (the release path leak-marks before freeing). Finish the
             tail-first run release — the plain-segment path below would
             release the head alone and strand the continuations. *)
          handle_huge_head seg
      | Segment.Active | Segment.Leaking | Segment.Orphaned ->
          if
            segment_empty ctx seg
            && not (Transfer.seg_held_by_live_peer ctx ~seg ~dead_cid:cid)
          then begin
            for p = 0 to cfg.Config.pages_per_segment - 1 do
              Page.reset ctx ~gid:(Layout.page_gid ctx.Ctx.lay ~seg ~page:p)
            done;
            Segment.release ctx seg;
            report :=
              { !report with segments_released = !report.segments_released + 1 }
          end
          else begin
            (* Live blocks may still be referenced from other machines:
               keep the segment, make it adoptable. *)
            Segment.orphan ctx ~cid seg;
            report :=
              { !report with segments_orphaned = !report.segments_orphaned + 1 }
          end
      | Segment.Free -> ())
    (Segment.owned_by ctx ~cid)

(* ------------------------------------------------------------------ *)
(* Orchestration                                                       *)
(* ------------------------------------------------------------------ *)

let run_phases (ctx : Ctx.t) ~cid =
  Trace.with_span ctx Cxlshm_shmem.Histogram.Recovery_scan @@ fun () ->
  let report = ref empty_report in
  Client.declare_failed ctx ~cid;
  let resumed = resume_txn ctx ~cid in
  salvage_teardown ctx ~cid;
  let n = wl_process ctx ~as_cid:cid in
  report :=
    {
      !report with
      resumed_txn = resumed;
      worklist_processed = !report.worklist_processed + n;
    };
  recover_journal ctx ~cid report;
  recover_parked ctx ~cid report;
  Transfer.recover_endpoints ctx ~failed_cid:cid;
  Named_roots.recover_endpoints ctx ~failed_cid:cid;
  let n = wl_process ctx ~as_cid:cid in
  report := { !report with worklist_processed = !report.worklist_processed + n };
  scan_rootref_pages ctx ~cid report;
  let n = wl_process ctx ~as_cid:cid in
  report := { !report with worklist_processed = !report.worklist_processed + n };
  (* The recovery service itself may die mid-recovery; every phase above is
     idempotent and the recovery lock still names [cid], so the next service
     instance resumes via [resume_interrupted]. *)
  Ctx.crash_point ctx Fault.Recovery_mid_phases;
  handle_segments ctx ~cid report;
  Redo_log.clear_for ctx ~cid;
  Client.mark_recovered ctx ~cid;
  !report

let with_lock (ctx : Ctx.t) ~cid f =
  let lay = ctx.Ctx.lay in
  let lock = Layout.recovery_lock lay in
  let rec acquire () =
    let cur = Ctx.load ctx lock in
    if cur = cid + 1 then () (* re-entrant resume of our own recovery *)
    else if cur <> 0 then begin
      (* Finish the interrupted recovery we found, then retry. *)
      let prev = cur - 1 in
      ignore (run_phases ctx ~cid:prev);
      Ctx.store ctx lock 0;
      acquire ()
    end
    else if not (Ctx.cas ctx lock ~expected:0 ~desired:(cid + 1)) then acquire ()
  in
  acquire ();
  Ctx.store ctx (Layout.recovery_failed lay) (cid + 1);
  let r = f () in
  Ctx.store ctx (Layout.recovery_failed lay) 0;
  Ctx.store ctx lock 0;
  r

let recover (ctx : Ctx.t) ~failed_cid =
  with_lock ctx ~cid:failed_cid (fun () -> run_phases ctx ~cid:failed_cid)

let resume_interrupted (ctx : Ctx.t) =
  let lay = ctx.Ctx.lay in
  let cur = Ctx.load ctx (Layout.recovery_lock lay) in
  if cur = 0 then None
  else begin
    let cid = cur - 1 in
    let r = run_phases ctx ~cid in
    Ctx.store ctx (Layout.recovery_failed lay) 0;
    Ctx.store ctx (Layout.recovery_lock lay) 0;
    Some r
  end
