(* The schedule explorer: a deterministic executor over Sched fibers plus
   three exploration strategies (seeded random, PCT, bounded-preemption
   exhaustive) and exact replay.

   Executor model. A run owns one freshly-built model instance. At every
   {e branch point} (a yield the model's [branch] filter accepts) the
   executor asks a chooser for a decision: [Run c] resumes client [c] until
   its next branch point; [Crash c] kills client [c] at its current yield,
   consuming the single crash budget (single-failure model, like the
   paper's fault test). Yields the filter rejects auto-continue the current
   client, so a model can choose its preemption granularity — every word
   access for a tiny lock-free structure, labeled crash points + explicit
   poll yields for full-arena protocols. When no client remains runnable,
   the instance's [check] runs (recovery of crashed clients + invariants);
   any exception it raises is a found bug carrying the full decision list,
   which replays the run bit-identically.

   Crashing only at the *current* client's yield point loses nothing: a
   kill has no shared-memory effect, so killing a suspended client now is
   schedule-equivalent to having killed it at its own last yield — and that
   schedule is explored separately. *)

module Fault = Cxlshm.Fault

type instance = {
  clients : (unit -> unit) array;
  check : crashed:int list -> unit;
      (** Post-run oracle; [crashed] lists client indices killed by the
          schedule, in kill order. Raise to report an invariant violation. *)
}

type model = {
  name : string;
  make : unit -> instance;
  branch : Sched.point -> bool;
      (** Which yield points are scheduling decisions. Non-matching yields
          auto-continue the running client (they still burn fuel). *)
}

type outcome =
  | Pass
  | Fail of string
  | Diverged  (** fuel exhausted — livelock under this schedule, pruned *)

type run = { decisions : Schedule.decision list; outcome : outcome; steps : int }

type choice = {
  step : int;  (** branch-point index within the run, 0-based *)
  current : int option;  (** last-run client, when still runnable *)
  runnable : int list;  (** ascending *)
  crash_used : bool;
}

exception Fuel_exhausted

type fiber_state =
  | Unstarted of (unit -> unit)
  | Suspended of Sched.point * (unit, Sched.run_result) Effect.Deep.continuation
  | Finished

let execute (m : model) ~max_steps ~(choose : choice -> Schedule.decision) : run
    =
  let inst = m.make () in
  let n = Array.length inst.clients in
  let st = Array.map (fun f -> Unstarted f) inst.clients in
  let crashed = ref [] in
  (* reverse order *)
  let decisions = ref [] in
  (* reverse order *)
  let crash_used = ref false in
  let fuel = ref 0 in
  let branch_step = ref 0 in
  let failure = ref None in
  let current = ref None in
  let runnable () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match st.(i) with
      | Unstarted _ | Suspended _ -> acc := i :: !acc
      | Finished -> ()
    done;
    !acc
  in
  (* next runnable strictly after [c], cyclically ([c] itself if alone) *)
  let next_after c rs =
    match List.find_opt (fun x -> x > c) rs with
    | Some x -> x
    | None -> List.hd rs
  in
  let finish i = function
    | Fault.Crashed _ -> st.(i) <- Finished (* killed by a Crash decision *)
    | e ->
        st.(i) <- Finished;
        if !failure = None then
          failure :=
            Some (Printf.sprintf "client %d raised %s" i (Printexc.to_string e))
  in
  (* Run client [i] until it suspends at a branch-eligible yield, finishes,
     or the run's fuel is gone. *)
  let run_quantum i =
    let rec pump = function
      | Sched.Completed -> st.(i) <- Finished
      | Sched.Raised e -> finish i e
      | Sched.Yielded (p, k) ->
          incr fuel;
          if !fuel > max_steps then begin
            st.(i) <- Suspended (p, k);
            raise Fuel_exhausted
          end
          else if m.branch p then st.(i) <- Suspended (p, k)
          else pump (Sched.resume k)
    in
    match st.(i) with
    | Unstarted f -> pump (Sched.start f)
    | Suspended (_, k) -> pump (Sched.resume k)
    | Finished -> invalid_arg "Explore: decision names a finished client"
  in
  (* Unwind a killed fiber to termination; cleanup code may still yield,
     and anything it raises beyond the injected crash is a found bug. *)
  let rec drain c = function
    | Sched.Yielded (_, k) -> drain c (Sched.resume k)
    | Sched.Completed -> ()
    | Sched.Raised (Fault.Crashed _) -> ()
    | Sched.Raised e ->
        if !failure = None then
          failure :=
            Some
              (Printf.sprintf "client %d raised %s while unwinding a crash" c
                 (Printexc.to_string e))
  in
  let diverged = ref false in
  (try
     let running = ref true in
     while !running && !failure = None do
       match runnable () with
       | [] ->
           (try inst.check ~crashed:(List.rev !crashed)
            with e ->
              failure :=
                Some (Printf.sprintf "check: %s" (Printexc.to_string e)));
           running := false
       | rs ->
           let cur =
             match !current with
             | Some c when List.mem c rs -> Some c
             | _ -> None
           in
           (* Voluntary yield: a [Label] point means the client polled and
              made no progress (failed push, empty receive). Spinning there
              is a read-only no-op cycle, so offering it to the chooser
              would only bloat the schedule space — instead the executor
              always hands the quantum to the next runnable client,
              deterministically, for free and unrecorded. *)
           match cur with
           | Some c
             when match st.(c) with
                  | Suspended (Sched.Label _, _) -> true
                  | _ -> false ->
               let nxt = next_after c rs in
               current := Some nxt;
               run_quantum nxt
           | _ ->
           let d =
             choose
               {
                 step = !branch_step;
                 current = cur;
                 runnable = rs;
                 crash_used = !crash_used;
               }
           in
           incr branch_step;
           decisions := d :: !decisions;
           (match d with
           | Schedule.Run c ->
               if not (List.mem c rs) then
                 invalid_arg
                   (Printf.sprintf "Explore: Run %d but runnable = [%s]" c
                      (String.concat ";" (List.map string_of_int rs)));
               current := Some c;
               run_quantum c
           | Schedule.Crash c ->
               if !crash_used then
                 invalid_arg "Explore: second Crash in a single-failure run";
               if not (List.mem c rs) then
                 invalid_arg (Printf.sprintf "Explore: Crash %d not runnable" c);
               crash_used := true;
               crashed := c :: !crashed;
               (match st.(c) with
               | Unstarted _ -> st.(c) <- Finished
               | Suspended (_, k) ->
                   st.(c) <- Finished;
                   drain c (Sched.kill k)
               | Finished -> assert false);
               if !current = Some c then current := None)
     done
   with Fuel_exhausted -> diverged := true);
  let outcome =
    match !failure with
    | Some r -> Fail r
    | None -> if !diverged then Diverged else Pass
  in
  { decisions = List.rev !decisions; outcome; steps = !fuel }

(* ---- reports ---- *)

type failure = { schedule : Schedule.t; reason : string }

type report = {
  model : string;
  mode : string;
  schedules : int;
  passed : int;
  diverged : int;
  crashes_injected : int;
  failure : failure option;  (** first failure; exploration stops on it *)
}

let pp_report ppf r =
  Format.fprintf ppf "model=%s mode=%s schedules=%d passed=%d diverged=%d crashes=%d"
    r.model r.mode r.schedules r.passed r.diverged r.crashes_injected;
  match r.failure with
  | None -> Format.fprintf ppf " result=PASS"
  | Some f ->
      Format.fprintf ppf " result=FAIL@,  reason: %s@,  replay: %s" f.reason
        (Schedule.to_string f.schedule)

let crashed_in decisions =
  List.exists (function Schedule.Crash _ -> true | Schedule.Run _ -> false)
    decisions

(* ---- seeded random exploration ---- *)

(* Every run derives its own RNG from (seed, run index), so any single run
   replays from the schedule string alone — the seed only picks which
   schedules get sampled. *)
let random ?(switch_prob = 0.25) ?(crash_horizon = 256) ~seed ~schedules ~crash
    ~max_steps (m : model) : report =
  let passed = ref 0 and diverged = ref 0 and crashes = ref 0 in
  let failure = ref None in
  let i = ref 0 in
  while !i < schedules && !failure = None do
    let rng = Random.State.make [| 0xc4ec; seed; !i |] in
    let crash_at =
      if crash then Some (Random.State.int rng crash_horizon) else None
    in
    let choose ch =
      if
        (not ch.crash_used)
        && crash_at = Some ch.step
        && ch.current <> None
      then Schedule.Crash (Option.get ch.current)
      else
        match ch.current with
        | Some c when Random.State.float rng 1.0 >= switch_prob ->
            Schedule.Run c
        | _ ->
            let rs = Array.of_list ch.runnable in
            Schedule.Run rs.(Random.State.int rng (Array.length rs))
    in
    let r = execute m ~max_steps ~choose in
    if crashed_in r.decisions then incr crashes;
    (match r.outcome with
    | Pass -> incr passed
    | Diverged -> incr diverged
    | Fail reason ->
        failure :=
          Some
            {
              schedule = { Schedule.model = m.name; decisions = r.decisions };
              reason;
            });
    incr i
  done;
  {
    model = m.name;
    mode = Printf.sprintf "random(seed=%d)" seed;
    schedules = !i;
    passed = !passed;
    diverged = !diverged;
    crashes_injected = !crashes;
    failure = !failure;
  }

(* ---- PCT-style priority exploration ---- *)

(* Probabilistic concurrency testing (Burckhardt et al.): each run assigns
   random client priorities and picks depth-1 random change points; the
   highest-priority runnable client always runs, and at a change point the
   running client's priority drops below everyone. Finds depth-d bugs with
   probability >= 1/(n * k^(d-1)) per run. *)
let pct ?(depth = 3) ?(crash_horizon = 256) ~seed ~schedules ~crash ~max_steps
    (m : model) : report =
  let passed = ref 0 and diverged = ref 0 and crashes = ref 0 in
  let failure = ref None in
  let i = ref 0 in
  while !i < schedules && !failure = None do
    let rng = Random.State.make [| 0x9c7; seed; !i |] in
    let crash_at =
      if crash then Some (Random.State.int rng crash_horizon) else None
    in
    (* priorities.(c) : higher runs first; change points drop the runner *)
    let prio = Array.init 64 (fun _ -> Random.State.int rng 1_000_000) in
    let change =
      Array.init (max 0 (depth - 1)) (fun _ ->
          Random.State.int rng (max 1 crash_horizon))
    in
    let low = ref 0 in
    let choose ch =
      if Array.exists (( = ) ch.step) change then
        Option.iter
          (fun c ->
            decr low;
            prio.(c) <- !low)
          ch.current;
      if
        (not ch.crash_used)
        && crash_at = Some ch.step
        && ch.current <> None
      then Schedule.Crash (Option.get ch.current)
      else
        let best =
          List.fold_left
            (fun acc c ->
              match acc with
              | None -> Some c
              | Some b -> if prio.(c) > prio.(b) then Some c else acc)
            None ch.runnable
        in
        Schedule.Run (Option.get best)
    in
    let r = execute m ~max_steps ~choose in
    if crashed_in r.decisions then incr crashes;
    (match r.outcome with
    | Pass -> incr passed
    | Diverged -> incr diverged
    | Fail reason ->
        failure :=
          Some
            {
              schedule = { Schedule.model = m.name; decisions = r.decisions };
              reason;
            });
    incr i
  done;
  {
    model = m.name;
    mode = Printf.sprintf "pct(seed=%d,depth=%d)" seed depth;
    schedules = !i;
    passed = !passed;
    diverged = !diverged;
    crashes_injected = !crashes;
    failure = !failure;
  }

(* ---- bounded-preemption exhaustive search ---- *)

(* CHESS-style iterative deviation: depth-first over decision prefixes. Each
   run follows its prefix, then extends with the default policy (keep the
   current client running; on a forced switch take the lowest runnable).
   Every default decision's untried legal alternatives — a preemptive switch
   while budget remains, the one crash while unused — are pushed as new
   prefixes, so all schedules with at most [preemptions] preemptions and at
   most one crash are eventually visited, each exactly once. *)
let exhaustive ?(max_schedules = 1_000_000) ~preemptions ~crash ~max_steps
    (m : model) : report =
  let stack = Stack.create () in
  Stack.push [] stack;
  let passed = ref 0 and diverged = ref 0 and crashes = ref 0 in
  let count = ref 0 in
  let failure = ref None in
  while (not (Stack.is_empty stack)) && !failure = None && !count < max_schedules
  do
    let prefix = Array.of_list (Stack.pop stack) in
    let path = ref [] in
    (* reverse of decisions taken so far in this run *)
    let preempted = ref 0 in
    let choose ch =
      let d =
        if ch.step < Array.length prefix then prefix.(ch.step)
        else begin
          let default =
            match ch.current with
            | Some c -> Schedule.Run c
            | None -> Schedule.Run (List.hd ch.runnable)
          in
          (* untried legal alternatives at this choice point *)
          let here = List.rev !path in
          let alt d' = Stack.push (here @ [ d' ]) stack in
          (match ch.current with
          | Some c ->
              if !preempted < preemptions then
                List.iter (fun c' -> if c' <> c then alt (Schedule.Run c')) ch.runnable;
              if crash && not ch.crash_used then alt (Schedule.Crash c)
          | None ->
              (* current finished/crashed: switching is free, not a preemption *)
              List.iter
                (fun c' -> if Schedule.Run c' <> default then alt (Schedule.Run c'))
                ch.runnable);
          default
        end
      in
      (match (d, ch.current) with
      | Schedule.Run c, Some cur when c <> cur -> incr preempted
      | _ -> ());
      path := d :: !path;
      d
    in
    let r = execute m ~max_steps ~choose in
    incr count;
    if crashed_in r.decisions then incr crashes;
    match r.outcome with
    | Pass -> incr passed
    | Diverged -> incr diverged
    | Fail reason ->
        failure :=
          Some
            {
              schedule = { Schedule.model = m.name; decisions = r.decisions };
              reason;
            }
  done;
  {
    model = m.name;
    mode =
      Printf.sprintf "exhaustive(preemptions=%d,crash=%b)" preemptions crash;
    schedules = !count;
    passed = !passed;
    diverged = !diverged;
    crashes_injected = !crashes;
    failure = !failure;
  }

(* ---- exact replay ---- *)

let replay (m : model) ~max_steps (s : Schedule.t) : run =
  if s.Schedule.model <> m.name then
    invalid_arg
      (Printf.sprintf "Explore.replay: schedule is for model %s, not %s"
         s.Schedule.model m.name);
  let prefix = Array.of_list s.Schedule.decisions in
  let choose ch =
    if ch.step < Array.length prefix then prefix.(ch.step)
    else
      match ch.current with
      | Some c -> Schedule.Run c
      | None -> Schedule.Run (List.hd ch.runnable)
  in
  execute m ~max_steps ~choose
