(* Focused unit tests for the small core modules: header packing, redo-log
   round-trips, fault plans, RootRef packing, eras at the edges. *)

open Cxlshm

let small_arena () =
  let arena = Shm.create ~cfg:Config.small () in
  (arena, Shm.join arena ())

(* ---- Obj_header ---- *)

let prop_header_roundtrip =
  QCheck.Test.make ~name:"header pack/unpack roundtrip" ~count:500
    QCheck.(
      triple (option (int_bound (Obj_header.max_clients_representable - 1)))
        (int_bound 100_000) (int_bound 1_000))
    (fun (lcid, lera, ref_cnt) ->
      let h = { Obj_header.lcid; lera; ref_cnt } in
      Obj_header.unpack (Obj_header.pack h) = h)

let test_header_zero () =
  (* an untouched (all-zero) word must read as the zero header *)
  Alcotest.(check bool) "zero word" true (Obj_header.unpack 0 = Obj_header.zero);
  Alcotest.(check int) "cnt" 0 (Obj_header.ref_cnt_of 0);
  Alcotest.(check (option int)) "no lcid" None (Obj_header.lcid_of 0)

let test_header_field_access () =
  let w = Obj_header.make ~lcid:7 ~lera:12345 ~ref_cnt:42 in
  Alcotest.(check int) "cnt" 42 (Obj_header.ref_cnt_of w);
  Alcotest.(check int) "lera" 12345 (Obj_header.lera_of w);
  Alcotest.(check (option int)) "lcid" (Some 7) (Obj_header.lcid_of w);
  Alcotest.(check bool) "non-negative" true (w >= 0)

let prop_meta_roundtrip =
  QCheck.Test.make ~name:"meta pack roundtrip" ~count:500
    QCheck.(triple (int_bound 255) (int_bound 60_000) (int_bound 1_000_000))
    (fun (kind, emb_cnt, data_words) ->
      let m = Obj_header.pack_meta ~kind ~emb_cnt ~data_words in
      Obj_header.meta_kind m = kind
      && Obj_header.meta_emb_cnt m = emb_cnt
      && Obj_header.meta_data_words m = data_words)

let test_emb_slot_addressing () =
  Alcotest.(check int) "slot 0 = data" (Obj_header.data_of_obj 100)
    (Obj_header.emb_slot 100 0);
  Alcotest.(check int) "slot 3" (Obj_header.data_of_obj 100 + 3)
    (Obj_header.emb_slot 100 3);
  Alcotest.check_raises "negative slot"
    (Invalid_argument "Obj_header.emb_slot: negative index") (fun () ->
      ignore (Obj_header.emb_slot 100 (-1)))

(* ---- Redo_log ---- *)

let test_redo_roundtrip () =
  let _, a = small_arena () in
  let r =
    {
      Redo_log.op = Redo_log.Change;
      era = 17;
      ref_addr = 1234;
      refed = 5678;
      refed2 = 9012;
      saved_cnt = 3;
    }
  in
  Redo_log.record a r;
  (match Redo_log.read a ~cid:a.Ctx.cid with
  | Some got ->
      Alcotest.(check bool) "record roundtrips" true (got = r)
  | None -> Alcotest.fail "no record");
  Redo_log.clear_for a ~cid:a.Ctx.cid;
  Alcotest.(check bool) "cleared" true (Redo_log.read a ~cid:a.Ctx.cid = None)

let test_redo_initially_empty () =
  let _, a = small_arena () in
  Alcotest.(check bool) "fresh client has no record" true
    (Redo_log.read a ~cid:a.Ctx.cid = None)

(* ---- Fault plans ---- *)

let test_fault_at_nth () =
  let plan = Fault.at Fault.Txn_after_cas ~nth:3 in
  Fault.maybe_crash plan Fault.Txn_after_cas;
  Fault.maybe_crash plan Fault.Txn_after_redo;
  (* different point: not counted toward the nth *)
  Fault.maybe_crash plan Fault.Txn_after_cas;
  (try
     Fault.maybe_crash plan Fault.Txn_after_cas;
     Alcotest.fail "expected crash at third occurrence"
   with Fault.Crashed p -> Alcotest.(check string) "label" "txn-after-cas" p);
  Alcotest.(check int) "hits counted" 4 (Fault.hits plan)

let test_fault_nth_point () =
  let plan = Fault.nth_point ~n:2 in
  Fault.maybe_crash plan Fault.Alloc_after_link;
  (try
     Fault.maybe_crash plan Fault.Send_after_attach;
     Alcotest.fail "expected crash at second hit"
   with Fault.Crashed _ -> ())

let test_fault_none_never () =
  let plan = Fault.none in
  List.iter (fun p -> Fault.maybe_crash plan p) Fault.all_points;
  List.iter (fun p -> Fault.maybe_crash plan p) Fault.all_points

let test_fault_point_names_unique () =
  let names = List.map Fault.point_name Fault.all_points in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

(* ---- Rootref packing ---- *)

let test_rootref_state () =
  let _, a = small_arena () in
  let rr = Alloc.alloc_rootref a in
  Alcotest.(check bool) "in use" true (Rootref.in_use a rr);
  Alcotest.(check int) "cnt 1" 1 (Rootref.local_cnt a rr);
  Rootref.set_local_cnt a rr 5;
  Alcotest.(check int) "cnt 5" 5 (Rootref.local_cnt a rr);
  Alcotest.(check bool) "still in use" true (Rootref.in_use a rr);
  Rootref.set_state a rr ~in_use:false ~cnt:0;
  Alcotest.(check bool) "cleared" false (Rootref.in_use a rr);
  Alloc.free_rootref a rr

(* ---- Pptr ---- *)

let test_pptr () =
  Alcotest.(check bool) "null" true (Cxlshm_shmem.Pptr.is_null Cxlshm_shmem.Pptr.null);
  Alcotest.(check bool) "non-null" false (Cxlshm_shmem.Pptr.is_null 5);
  Alcotest.(check int) "add" 15 (Cxlshm_shmem.Pptr.add 10 5);
  Alcotest.check_raises "negative offset"
    (Invalid_argument "Pptr.of_word_offset: negative offset") (fun () ->
      ignore (Cxlshm_shmem.Pptr.of_word_offset (-1)))

(* ---- Era edges ---- *)

let test_era_self_vs_others () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  (* nobody has observed anyone yet *)
  Alcotest.(check int) "max seen of a is 0" 0
    (Era.max_seen_by_others a ~cid:a.Ctx.cid);
  (* manual observation *)
  Era.observe b ~saw_cid:a.Ctx.cid ~saw_era:9;
  Alcotest.(check int) "b's observation counts" 9
    (Era.max_seen_by_others a ~cid:a.Ctx.cid);
  (* observations only ratchet upward *)
  Era.observe b ~saw_cid:a.Ctx.cid ~saw_era:4;
  Alcotest.(check int) "no downgrade" 9
    (Era.max_seen_by_others a ~cid:a.Ctx.cid)

let test_debug_dump_smoke () =
  let arena, a = small_arena () in
  let r = Shm.cxl_malloc a ~size_bytes:32 ~emb_cnt:1 () in
  Named_roots.publish a ~name:"dbg" r;
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Debug.pp_arena ppf (Shm.mem arena, Shm.layout arena);
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions clients" true (contains s "clients");
  Alcotest.(check bool) "mentions roots" true (contains s "named roots");
  let summary = Debug.summary (Shm.mem arena) (Shm.layout arena) in
  Alcotest.(check bool) "summary mentions alive" true
    (String.length summary > 0);
  ignore (Named_roots.unpublish a ~name:"dbg");
  Cxl_ref.drop r

let suite =
  [
    Generators.to_alcotest prop_header_roundtrip;
    Alcotest.test_case "header zero" `Quick test_header_zero;
    Alcotest.test_case "header fields" `Quick test_header_field_access;
    Generators.to_alcotest prop_meta_roundtrip;
    Alcotest.test_case "emb slot addressing" `Quick test_emb_slot_addressing;
    Alcotest.test_case "redo roundtrip" `Quick test_redo_roundtrip;
    Alcotest.test_case "redo initially empty" `Quick test_redo_initially_empty;
    Alcotest.test_case "fault at nth" `Quick test_fault_at_nth;
    Alcotest.test_case "fault nth point" `Quick test_fault_nth_point;
    Alcotest.test_case "fault none" `Quick test_fault_none_never;
    Alcotest.test_case "fault names unique" `Quick test_fault_point_names_unique;
    Alcotest.test_case "rootref state" `Quick test_rootref_state;
    Alcotest.test_case "pptr" `Quick test_pptr;
    Alcotest.test_case "era edges" `Quick test_era_self_vs_others;
    Alcotest.test_case "debug dump smoke" `Quick test_debug_dump_smoke;
  ]
