(** Memory-tier cost model.

    The paper's Table 1 characterises three tiers of byte-addressable memory
    (local NUMA, remote NUMA, CXL-attached) by the throughput of sequential
    loads, random loads and random CAS plus the random-access latency. We
    reuse those published numbers to attribute a modeled cost in nanoseconds
    to every memory event counted by {!Stats}. Benchmarks report this modeled
    time alongside wall-clock time: the simulator cannot reproduce the
    authors' absolute hardware numbers, but the modeled time preserves the
    relative shape (who wins, by what factor) of every experiment. *)

type tier =
  | Local_numa   (** DRAM on the local socket. *)
  | Remote_numa  (** DRAM one QPI/UPI hop away. *)
  | Cxl          (** CXL-attached memory across a PCIe 5.0 link. *)

val pp_tier : Format.formatter -> tier -> unit
val tier_name : tier -> string
val all_tiers : tier list

type t = {
  hit_ns : float;    (** CPU-cache hit — CXL memory is cacheable, so hot
                         lines (page metas, era rows, reused blocks) cost
                         an L1/L2 access, not a link round trip *)
  seq_ns : float;    (** cost of one sequential 8-byte access *)
  rand_ns : float;   (** dependent random access = Table 1's latency column *)
  rand_tp_ns : float;
      (** amortised random access under memory-level parallelism = what
          Table 1's "Rand" MOPS column measures *)
  cas_ns : float;    (** CAS on a cold/contended line (Table 1: ~3.3 MOPS) *)
  cas_hit_ns : float;
      (** uncontended CAS on a line already in this client's cache — a
          local atomic, no link round trip *)
  fence_ns : float;  (** cost of an sfence *)
  flush_ns : float;  (** cost of a clwb cache-line write-back *)
}

val of_tier : tier -> t
(** Cost model for a tier, calibrated to Table 1 of the paper. *)

val table1_mops : tier -> float * float * float
(** [(seq, rand, cas)] throughput in million operations per second implied by
    the model — the exact quantities Table 1 reports. *)

val table1_latency_ns : tier -> float
(** Random-access latency column of Table 1. *)
