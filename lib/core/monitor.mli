(** Replicated failure monitor (§3.2).

    Detection is lease-based and leaderless: every replica advances the
    shared logical lease clock ({!Lease.tick}) once per pass and CASes
    expired clients [Alive → Suspected → Failed], so any surviving replica
    detects hung or dead clients — no per-monitor heartbeat history, which
    is what lets a fresh replica take over with no warm-up. A client that
    still runs but stopped heartbeating (hung, not dead) expires the same
    way; its own next heartbeat cancels a [Suspected] verdict but cannot
    rescue it once condemned.

    Recovery, evacuation and the leak scan are {e leader-only}: replicas
    race one CAS on a lease-guarded leader word and the losers shadow-check.
    A leader that dies keeps the word, but its lease expires and the next
    replica deposes it, resuming any interrupted recovery mid-flight
    (see the [dual-monitor] explorer model). *)

type t

val create : mem:Cxlshm_shmem.Mem.t -> lay:Layout.t -> ?id:int -> unit -> t
(** A monitor replica. [id] (default 0) is its leader-election identity
    and must be distinct per replica sharing an arena. *)

val check_once : t -> int list
(** One detection pass: advance the lease clock, suspect expired [Alive]
    clients, condemn [Suspected] ones whose grace also ran out. Returns the
    clients this pass condemned. Condemnations (including failures declared
    externally) capture the client's last trace-ring events exactly once
    per failure incident across all replicas — see {!death_dumps}. *)

val death_dumps : t -> (int * Trace.event list) list
(** Event-ring dumps this replica captured at condemnation, newest first.
    Empty events lists mean the client wasn't tracing. The shared
    dump-claim word guarantees one capture per failure incident across
    replicas, keyed by the slot's lease grant era. *)

val recover_suspects : t -> (int * Recovery.report) list
(** Contend for leadership; as leader (or on takeover from an expired
    leader), resume any interrupted recovery, then recover every client
    currently [Failed]. Followers return [[]] without touching the arena. *)

val evacuate_degraded : t -> Evacuate.report option
(** Leader-only: drain live data off degraded devices ({!Evacuate.run}).
    [None] when follower or when no device is degraded. *)

val run_in_domain : t -> interval:float -> unit Domain.t * bool Atomic.t
(** Spawn the replica loop in its own domain; set the returned flag to stop
    it. Each pass checks, contends/recovers, and — as leader — evacuates
    degraded devices and runs the POTENTIAL_LEAKING scan. An exception in
    one iteration (a device fault, a half-recovered client) is counted and
    remembered — see {!error_count}/{!last_error} — and the loop keeps
    running; it never dies silently. *)

val stop_and_join : unit Domain.t * bool Atomic.t -> t -> exn option
(** Stop the loop started by {!run_in_domain}, wait for the domain to
    finish, abdicate leadership (so a surviving replica takes over without
    waiting out the lease), and return the last error any iteration raised
    (if any). *)

val ctx : t -> Ctx.t
(** The monitor's service context (useful for validation and fsck). *)

val id : t -> int

val is_leader : t -> bool
(** Did the last {!recover_suspects} pass hold leadership? *)

val leader : t -> (int * int) option
(** Current [(leader id, lease deadline)] from the shared leader word. *)

val abdicate : t -> unit
(** Release leadership if held (clean shutdown / tests forcing a
    failover). A replica that merely stops calling {!recover_suspects}
    is deposed anyway once its leader lease expires. *)

val error_count : t -> int
(** Loop iterations that raised since the monitor was created. *)

val last_error : t -> exn option

val degraded_devices : t -> int list
(** Devices currently marked degraded in the shared bitmap (escalated
    device faults steer allocation away from them). *)
