exception Lock_abandoned of int

let stripe_of (_ctx : Ctx.t) obj =
  ((obj * 0x2545F4914F6CDD1D) land max_int) mod Layout.lock_stripes

let lock_addr (ctx : Ctx.t) s = Layout.lock_stripe ctx.Ctx.lay s

let try_acquire (ctx : Ctx.t) s =
  Ctx.cas ctx (lock_addr ctx s) ~expected:0 ~desired:(ctx.Ctx.cid + 1)

let release (ctx : Ctx.t) s = Ctx.store ctx (lock_addr ctx s) 0

let holder (ctx : Ctx.t) obj =
  let v = Ctx.load ctx (lock_addr ctx (stripe_of ctx obj)) in
  if v = 0 then None else Some (v - 1)

(* The critical section: read the count, log the ABSOLUTE new count (that
   is what makes replay idempotent — Lightning's trick), apply both writes,
   unlock. No CAS on the header is needed: the lock serialises writers. *)
let locked_op (ctx : Ctx.t) ~ref_addr ~refed ~delta =
  let hdr = Obj_header.header_of_obj refed in
  let cnt = Obj_header.ref_cnt_of (Ctx.load ctx hdr) in
  if cnt + delta < 0 then
    raise (Refc.Refcount_violation "locked detach below zero");
  let new_cnt = cnt + delta in
  let s = stripe_of ctx refed in
  Redo_log.record ctx
    {
      Redo_log.op = Redo_log.Locked;
      era = s;
      ref_addr;
      refed;
      refed2 = (if delta > 0 then 1 else 0);
      saved_cnt = new_cnt;
    };
  Ctx.crash_point ctx Fault.Txn_after_redo;
  Ctx.store ctx hdr
    (Obj_header.pack { Obj_header.lcid = None; lera = 0; ref_cnt = new_cnt });
  Ctx.crash_point ctx Fault.Txn_after_cas;
  Ctx.store ctx ref_addr (if delta > 0 then refed else 0);
  Ctx.crash_point ctx Fault.Txn_after_modify_ref;
  new_cnt

(* NB: a simulated crash must leave the lock held — a dead process runs no
   cleanup. Only genuine exceptions release it. *)
let with_stripe (ctx : Ctx.t) refed f =
  let s = stripe_of ctx refed in
  let rec spin () = if not (try_acquire ctx s) then spin () in
  spin ();
  match f () with
  | v ->
      release ctx s;
      v
  | exception (Fault.Crashed _ as e) -> raise e
  | exception e ->
      release ctx s;
      raise e

let attach (ctx : Ctx.t) ~ref_addr ~refed =
  with_stripe ctx refed (fun () ->
      ignore (locked_op ctx ~ref_addr ~refed ~delta:1))

let detach (ctx : Ctx.t) ~ref_addr ~refed =
  with_stripe ctx refed (fun () -> locked_op ctx ~ref_addr ~refed ~delta:(-1))

let attach_bounded (ctx : Ctx.t) ~ref_addr ~refed ~spins =
  let s = stripe_of ctx refed in
  let rec spin k = k < spins && (try_acquire ctx s || spin (k + 1)) in
  if spin 0 then begin
    (match locked_op ctx ~ref_addr ~refed ~delta:1 with
    | _ -> release ctx s
    | exception (Fault.Crashed _ as e) -> raise e
    | exception e ->
        release ctx s;
        raise e);
    true
  end
  else false

let recover (ctx : Ctx.t) ~failed_cid =
  let released = ref 0 in
  let redo = Redo_log.read ctx ~cid:failed_cid in
  for s = 0 to Layout.lock_stripes - 1 do
    if Ctx.load ctx (lock_addr ctx s) = failed_cid + 1 then begin
      (match redo with
      | Some r when r.Redo_log.op = Redo_log.Locked && r.Redo_log.era = s ->
          (* Replay the logged operation: idempotent because the count is
             absolute and the dead holder cannot race us. *)
          let hdr = Obj_header.header_of_obj r.Redo_log.refed in
          Ctx.store ctx hdr
            (Obj_header.pack
               { Obj_header.lcid = None; lera = 0; ref_cnt = r.Redo_log.saved_cnt });
          Ctx.store ctx r.Redo_log.ref_addr
            (if r.Redo_log.refed2 = 1 then r.Redo_log.refed else 0)
      | Some _ | None -> ());
      Ctx.store ctx (lock_addr ctx s) 0;
      incr released
    end
  done;
  !released
