module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats

(* Client-local volatile cache tier (DRAM mirror of shared words).

   Mirroring rule: a shared word may live here only while this context is
   its *sole mutator* — the client's own class heads and segment cursor,
   page metadata of segments this client currently owns — or while it is
   immutable (segment→device mapping). Every mirror update is paired with
   the write-through store, so shared memory always holds the truth and a
   crash loses nothing. The cache starts empty (a fresh attach) and is
   filled lazily; [cache_drop] returns it to that state, which is how
   recovery proves the tier is reconstructible. *)
type cache = {
  enabled : bool;
  heads : int array;  (* class-head mirror, -1 = unknown *)
  mutable cur_seg : int;  (* current-segment cursor mirror, -1 = unknown *)
  mutable owned_valid : bool;
  owned : bool array;  (* this client's segment-ownership set *)
  pm : int array;  (* page-meta mirror: [gid * pm_slots + slot] *)
  pmv : bool array;  (* per-word validity for [pm] *)
  seg_dev : int array;  (* segment -> device, -1 = unknown (immutable) *)
}

(* Epoch-batched retirement state (volatile, per client).

   [ebuf] accumulates rootrefs whose local count dropped to zero; they stay
   linked and in_use in shared memory until the batch flush seals them into
   the persistent retirement journal and tears them down under one fence.
   [dirty] is the companion write-back queue: hot-path stores whose flush
   can ride the next batch boundary instead of paying a per-op clwb. *)
type epoch = {
  e_enabled : bool;
  ebuf : int array;
  mutable elen : int;
  dirty : int array; (* line-deduped addresses awaiting write-back *)
  mutable dlen : int;
}

type t = {
  mem : Mem.t;
  lay : Layout.t;
  cid : int;
  home_dev : int;
  st : Stats.t;
  mutable fault : Fault.plan;
  mutable retry : Retry.policy;
  rng : Random.State.t;
  mutable trace_on : bool;
  hists : Cxlshm_shmem.Histogram.t array;
  cache : cache;
  epoch : epoch;
  mutable degraded_hint : int;
  mutable alloc_pin : int list;
  mutable alloc_exclude : int list;
}

(* Mirrored page-meta slots: kind, block_words, capacity, free, used.
   [page_aux]/[page_aux2] are huge-object slow-path words and stay
   uncached. *)
let pm_slots = 5

let dirty_capacity = 64

let make ?cache ?epoch ~mem ~lay ~cid () =
  if cid < 0 || cid >= lay.Layout.cfg.Config.max_clients then
    invalid_arg "Ctx.make: cid out of range";
  let enabled =
    match cache with Some b -> b | None -> lay.Layout.cfg.Config.cache
  in
  let batch = lay.Layout.cfg.Config.epoch_batch in
  let e_enabled =
    batch > 0 && match epoch with Some b -> b | None -> true
  in
  let nseg = lay.Layout.cfg.Config.num_segments in
  let npages = Layout.num_pages_total lay in
  {
    mem;
    lay;
    cid;
    home_dev = cid mod Mem.num_devices mem;
    st = Stats.create ();
    fault = Fault.none;
    retry = Retry.default_policy;
    rng = Random.State.make [| 0x5eed; cid |];
    trace_on = lay.Layout.cfg.Config.trace;
    hists = Cxlshm_shmem.Histogram.create_set ();
    cache =
      {
        enabled;
        heads = Array.make (lay.Layout.num_classes + 1) (-1);
        cur_seg = -1;
        owned_valid = false;
        owned = Array.make nseg false;
        pm = Array.make (npages * pm_slots) 0;
        pmv = Array.make (npages * pm_slots) false;
        seg_dev = Array.make nseg (-1);
      };
    epoch =
      {
        e_enabled;
        ebuf = Array.make (max 1 batch) 0;
        elen = 0;
        dirty = Array.make dirty_capacity 0;
        dlen = 0;
      };
    degraded_hint = Mem.ctl_peek mem (Layout.hdr_dev_degraded lay);
    alloc_pin = [];
    alloc_exclude = [];
  }

let cfg t = t.lay.Layout.cfg

(* {1 Channel sub-heap placement (RPCool isolation)}

   Both lists are volatile client-local policy, not shared state: a crash
   simply loses them, and recovery of the dead client's segments does not
   care where its allocations were steered. *)

let pin_active t = t.alloc_pin <> []
let pinned_segments t = t.alloc_pin

let with_pin t segs f =
  let saved = t.alloc_pin in
  t.alloc_pin <- segs;
  Fun.protect ~finally:(fun () -> t.alloc_pin <- saved) f

let exclude_segment t s =
  if not (List.mem s t.alloc_exclude) then
    t.alloc_exclude <- s :: t.alloc_exclude

let unexclude_segment t s =
  t.alloc_exclude <- List.filter (fun x -> x <> s) t.alloc_exclude

let segment_excluded t s = List.mem s t.alloc_exclude

let seg_allowed t s =
  match t.alloc_pin with
  | [] -> not (List.mem s t.alloc_exclude)
  | pins -> List.mem s pins

(* Degraded-device bitmap (arena header): shared fault-status word the
   escalation path sets and allocation placement reads. The word itself
   lives on some device, so every access is best-effort — a pool that can't
   even serve its header word is beyond steering. Accesses bypass the
   injection/stats wrappers: marking a device bad must not itself retry. *)

let max_degradable_devices = 62 (* bits of a 63-bit non-negative word *)

let degraded_bitmap t = Mem.ctl_peek t.mem (Layout.hdr_dev_degraded t.lay)

let device_degraded t dev =
  dev < max_degradable_devices && (degraded_bitmap t lsr dev) land 1 = 1

let degraded_devices t =
  let bits = degraded_bitmap t in
  List.filter
    (fun d -> (bits lsr d) land 1 = 1)
    (List.init (min (Mem.num_devices t.mem) max_degradable_devices) Fun.id)

let mark_degraded t dev =
  if dev >= 0 && dev < max_degradable_devices then begin
    let p = Layout.hdr_dev_degraded t.lay in
    Mem.ctl_poke t.mem p (Mem.ctl_peek t.mem p lor (1 lsl dev));
    t.degraded_hint <- t.degraded_hint lor (1 lsl dev)
  end

let clear_degraded t =
  Mem.ctl_poke t.mem (Layout.hdr_dev_degraded t.lay) 0;
  t.degraded_hint <- 0

(* The hint is a volatile mirror of the bitmap consulted on the allocation
   fast path, where a per-op [ctl_peek] would charge every alloc a shared
   read for a word that is almost always zero. Staleness only delays
   placement steering (evacuation mops up misplaced blocks); it is
   refreshed at attach, on every heartbeat, and at evacuation entry. *)
let refresh_degraded_hint t = t.degraded_hint <- degraded_bitmap t
let any_degraded_hint t = t.degraded_hint <> 0

let on_escalate t ~dev = mark_degraded t dev

let with_retries t f =
  Retry.with_retries ~policy:t.retry ~st:t.st ~on_escalate:(on_escalate t) f

(* A single word primitive has no interior commit point, so re-issuing it
   after a transient fault is always safe — the commit marker is unused. *)
let prim t f = with_retries t (fun _commit -> f ())

let load t p = prim t (fun () -> Mem.load t.mem ~st:t.st p)
let store t p v = prim t (fun () -> Mem.store t.mem ~st:t.st p v)

let cas t p ~expected ~desired =
  prim t (fun () -> Mem.cas t.mem ~st:t.st p ~expected ~desired)

let fetch_add t p n = prim t (fun () -> Mem.fetch_add t.mem ~st:t.st p n)
let fence t = Mem.fence t.mem ~st:t.st
let flush t p = prim t (fun () -> Mem.flush t.mem ~st:t.st p)
let crash_point t point = Fault.maybe_crash t.fault point

(* {1 Epoch batching} *)

let epoch_enabled t = t.epoch.e_enabled
let epoch_capacity t = t.lay.Layout.cfg.Config.epoch_batch

(* Queue a write-back to ride the next retirement-batch boundary. Safe only
   for stores whose durability deadline is the era advance that could free
   the line's contents — exactly the fast-path rootref/index lines. The
   batch flush drains the queue; overflow degrades to an immediate flush of
   the overflowing line so the queue stays bounded. *)
let flush_deferred t p =
  let e = t.epoch in
  if not e.e_enabled then flush t p
  else begin
    t.st.Stats.deferred_flushes <- t.st.Stats.deferred_flushes + 1;
    let line = p / Mem.words_per_line in
    let dup = ref false in
    for i = 0 to e.dlen - 1 do
      if e.dirty.(i) / Mem.words_per_line = line then dup := true
    done;
    if not !dup then
      if e.dlen < dirty_capacity then begin
        e.dirty.(e.dlen) <- p;
        e.dlen <- e.dlen + 1;
        (* The modeled write-back cost belongs to the op that dirtied the
           line, not to whichever op happens to hit the batch boundary —
           charge the flush to this op's stats now; [drain_dirty] issues
           the device flush against scratch stats so it is never counted
           twice. *)
        t.st.Stats.flushes <- t.st.Stats.flushes + 1
      end
      else flush t p
  end

let drain_dirty t =
  let e = t.epoch in
  if e.dlen > 0 then begin
    let scratch = Stats.create () in
    for i = 0 to e.dlen - 1 do
      let p = e.dirty.(i) in
      prim t (fun () -> Mem.flush t.mem ~st:scratch p)
    done;
    e.dlen <- 0
  end

(* {1 Cache tier} *)

let cache_enabled t = t.cache.enabled

let cache_drop t =
  let c = t.cache in
  Array.fill c.heads 0 (Array.length c.heads) (-1);
  c.cur_seg <- -1;
  c.owned_valid <- false;
  Array.fill c.pmv 0 (Array.length c.pmv) false;
  Array.fill c.seg_dev 0 (Array.length c.seg_dev) (-1)

(* Class heads and the segment cursor: written only by this client while it
   is alive (recovery rewrites them only for dead clients, whose contexts
   are gone), so they are always mirrorable. *)

let load_class_head t k =
  let c = t.cache in
  if c.enabled && c.heads.(k) >= 0 then c.heads.(k)
  else
    let v = load t (Layout.class_head t.lay t.cid k) in
    if c.enabled then c.heads.(k) <- v;
    v

let store_class_head t k v =
  store t (Layout.class_head t.lay t.cid k) v;
  if t.cache.enabled then t.cache.heads.(k) <- v

let load_cur_segment t =
  let c = t.cache in
  if c.enabled && c.cur_seg >= 0 then c.cur_seg
  else
    let v = load t (Layout.client_cur_segment t.lay t.cid) in
    if c.enabled then c.cur_seg <- v;
    v

let store_cur_segment t v =
  store t (Layout.client_cur_segment t.lay t.cid) v;
  if t.cache.enabled then t.cache.cur_seg <- v

(* Segment-ownership set. Maintained by [Segment.claim]/[adopt]/[release];
   [orphan] leaves [seg_occupied] (and thus the set) unchanged. *)

let cache_owned_known t = t.cache.enabled && t.cache.owned_valid

let cache_owned_list t =
  let c = t.cache in
  let acc = ref [] in
  for s = Array.length c.owned - 1 downto 0 do
    if c.owned.(s) then acc := s :: !acc
  done;
  !acc

let cache_install_owned t segs =
  let c = t.cache in
  if c.enabled then begin
    Array.fill c.owned 0 (Array.length c.owned) false;
    List.iter (fun s -> c.owned.(s) <- true) segs;
    c.owned_valid <- true
  end

let cache_invalidate_pages t seg =
  let c = t.cache in
  let pps = t.lay.Layout.cfg.Config.pages_per_segment in
  Array.fill c.pmv (seg * pps * pm_slots) (pps * pm_slots) false

let cache_note_claim t seg =
  let c = t.cache in
  if c.enabled then begin
    (* Page metadata cached under a previous tenancy of this segment is
       dead; the entries were already dropped at release, but clearing here
       keeps claim self-sufficient. *)
    cache_invalidate_pages t seg;
    if c.owned_valid then c.owned.(seg) <- true
  end

let cache_note_release t seg =
  let c = t.cache in
  if c.enabled then begin
    cache_invalidate_pages t seg;
    if c.owned_valid then c.owned.(seg) <- false
  end

(* Page metadata: mirrorable only while this client owns the segment — a
   non-owned page's meta has another live mutator (its owner), so reads
   and writes outside the ownership set go straight to shared memory and
   drop any stale mirror entry. *)

let cache_owns t seg =
  let c = t.cache in
  c.enabled && c.owned_valid && c.owned.(seg)

let load_pm t ~gid ~slot addr =
  let seg = gid / t.lay.Layout.cfg.Config.pages_per_segment in
  if cache_owns t seg then begin
    let c = t.cache in
    let i = (gid * pm_slots) + slot in
    if c.pmv.(i) then c.pm.(i)
    else begin
      let v = load t addr in
      c.pm.(i) <- v;
      c.pmv.(i) <- true;
      v
    end
  end
  else load t addr

let store_pm t ~gid ~slot addr v =
  store t addr v;
  if t.cache.enabled then begin
    let c = t.cache in
    let seg = gid / t.lay.Layout.cfg.Config.pages_per_segment in
    let i = (gid * pm_slots) + slot in
    if cache_owns t seg then begin
      c.pm.(i) <- v;
      c.pmv.(i) <- true
    end
    else c.pmv.(i) <- false
  end

(* Segment -> device: pure layout arithmetic in the backend, hence
   immutable and always mirrorable. *)
let segment_device t seg =
  let c = t.cache in
  if c.enabled && c.seg_dev.(seg) >= 0 then c.seg_dev.(seg)
  else
    let d = Mem.device_of t.mem (Layout.segment_base t.lay seg) in
    if c.enabled then c.seg_dev.(seg) <- d;
    d
