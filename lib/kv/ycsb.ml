type t = {
  keys : int;
  write_ratio : float;
  zipf : Zipf.t;
  rng : Random.State.t;
  mutable counter : int;
}

let create ~keys ~write_ratio ~theta ~seed =
  if write_ratio < 0.0 || write_ratio > 1.0 then
    invalid_arg "Ycsb.create: write_ratio in [0,1]";
  {
    keys;
    write_ratio;
    zipf = Zipf.create ~n:keys ~theta ~seed;
    rng = Random.State.make [| seed; 0xCB |];
    counter = 0;
  }

let next t =
  let key = Zipf.sample t.zipf in
  t.counter <- t.counter + 1;
  if Random.State.float t.rng 1.0 < t.write_ratio then
    Kv_intf.Update (key, t.counter)
  else Kv_intf.Read key

let load_ops t = List.init t.keys (fun k -> Kv_intf.Insert (k, k))

type preset = A | B | C | D | F

let preset_name = function
  | A -> "YCSB-A (50% update, zipf .99)"
  | B -> "YCSB-B (5% update, zipf .99)"
  | C -> "YCSB-C (read only, zipf .99)"
  | D -> "YCSB-D (5% insert, latest-ish)"
  | F -> "YCSB-F (50% RMW, zipf .99)"

let of_preset ~keys ~seed = function
  | A -> create ~keys ~write_ratio:0.5 ~theta:0.99 ~seed
  | B -> create ~keys ~write_ratio:0.05 ~theta:0.99 ~seed
  | C -> create ~keys ~write_ratio:0.0 ~theta:0.99 ~seed
  | D -> create ~keys ~write_ratio:0.05 ~theta:0.9 ~seed
  | F -> create ~keys ~write_ratio:0.5 ~theta:0.99 ~seed
