(* Shared QCheck plumbing and generators for the test suite.

   Every property test runs from one deterministic seed so a failure on any
   machine reproduces everywhere. The seed comes from the QCHECK_SEED
   environment variable when set; a failing run prints the exact
   [QCHECK_SEED=n] needed to replay it inside the Alcotest failure. *)

let default_seed = 0xc4ec

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | None | Some "" -> default_seed
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> invalid_arg ("QCHECK_SEED is not an integer: " ^ s))

(* Replacement for [QCheck_alcotest.to_alcotest]: same shape, but seeded
   from [QCHECK_SEED] and failures carry the replay seed. *)
let to_alcotest (QCheck2.Test.Test cell) =
  let name = QCheck.Test.get_name cell in
  Alcotest.test_case name `Quick (fun () ->
      let rand = Random.State.make [| seed |] in
      try QCheck.Test.check_cell_exn ~rand cell
      with e ->
        Alcotest.failf "%s@\n(replay with QCHECK_SEED=%d)@\n%s" name seed
          (Printexc.to_string e))

(* ---- generators shared across suites ---- *)

(* Durations spanning the histogram's log buckets: sub-ns noise up to
   seconds, plus the exact powers of two that sit on bucket edges. *)
let duration_ns =
  QCheck.(
    oneof
      [
        map float_of_int (int_bound 1_000_000_000);
        map (fun i -> Float.of_int (1 lsl i)) (int_bound 30);
        map (fun f -> f /. 1000.) (map float_of_int (int_bound 10_000));
      ])

let duration_list = QCheck.list_of_size (QCheck.Gen.int_range 0 200) duration_ns

(* Quantiles in [0, 1]. *)
let quantile = QCheck.(map (fun n -> float_of_int n /. 1000.) (int_bound 1000))

(* Huge-object workloads: a short program of allocate/free steps. Each
   step requests [segs] segments' worth of data plus a small signed
   [extra] so sizes straddle segment boundaries in both directions, and
   [hold] decides whether the object outlives the step (forcing later
   claims to work around held runs) or is freed immediately. *)
let huge_program =
  let open QCheck.Gen in
  let step =
    let* segs = int_range 1 3 in
    let* extra = int_range (-8) 8 in
    let* hold = bool in
    return (segs, extra, hold)
  in
  let gen = list_size (int_range 1 6) step in
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (fun (s, e, h) -> Printf.sprintf "(%d segs %+d, hold=%b)" s e h)
           l))
    gen

(* (words, src, dst, len) with both ranges in bounds and possibly
   overlapping — for memmove-semantics properties over [Mem.blit]. *)
let blit_spec =
  let open QCheck.Gen in
  let gen =
    let* words = int_range 8 64 in
    let* len = int_range 0 (words / 2) in
    let* src = int_range 0 (words - len) in
    let* dst = int_range 0 (words - len) in
    return (words, src, dst, len)
  in
  QCheck.make
    ~print:(fun (w, s, d, l) ->
      Printf.sprintf "words=%d src=%d dst=%d len=%d" w s d l)
    gen
