(** CXL-KV: the shared-everything distributed key-value store (§6.4).

    One latch-free fixed-size hash index lives in the shared pool; its
    buckets are embedded references to chains of key-value records (hash
    collisions as linked lists, §6.4.1). Readers from any client walk the
    whole store directly — no sharding of reads. Writers own disjoint key
    partitions (single-writer-multi-reader, required by the era algorithm);
    a partition can be taken over with one CAS on the writer table —
    repartitioning without data movement, because the data never moves.

    Record reclamation after delete/COW is deferred to {!quiesce} under the
    hazard-era scheme (§5.4, {!Cxlshm.Hazard}): every traversal announces
    an era, every displaced record is parked behind a counted reference
    with a retire-epoch stamp, and {!quiesce} only recycles records whose
    stamp every announced reader has moved past. A displaced record keeps
    its next-link until it is actually reclaimed, so a reader paused on it
    still reaches the live chain tail. Concurrent readers may transiently
    miss entries deleted mid-walk — standard latch-free list semantics.

    Parking is {e persistent}: every parked record is mirrored into the
    client's registry ({!Cxlshm.Layout.park_slot_rr}), so a writer crash
    cannot turn the deferred list into an era-blind reap — recovery moves
    the registry into the arena adoption journal and a successor re-parks
    the records via {!adopt_recovered}, retire stamps intact. The registry
    is per-client: open at most one writing handle per [Ctx.t]. *)

type store = {
  index_obj : Cxlshm_shmem.Pptr.t;
  buckets : int;
  partitions : int;
  value_words : int;
}
(** Plain descriptor, shareable across domains. *)

type handle

val name : string

val create :
  Cxlshm.Ctx.t -> buckets:int -> partitions:int -> value_words:int ->
  store * handle
(** Allocate the index; the creator's handle holds a counted reference. *)

val open_store : Cxlshm.Ctx.t -> store -> handle
(** Attach another client to the store. *)

val close : handle -> unit
(** Drop every parked record reference (quiesced use only — no concurrent
    readers; a departing writer with live readers hands its parked records
    to a successor first, see {!handoff_deferred}) and this client's index
    reference; the index (and every record) is reclaimed when the last
    handle closes. A store meant to outlive its current clients should
    either keep a standby handle open or publish the index as a
    {!Cxlshm.Named_roots} entry. *)

val claim_partition : handle -> int -> bool
(** Become the writer of a partition (CAS on the writer table). *)

val takeover_partition : handle -> int -> bool
(** §6.4.1 writer failover: steal the partition whatever its current
    writer — no data transfer, one metadata CAS. *)

val writer_of_partition : handle -> int -> int option
val partition_of_key : store -> int -> int

val get : handle -> key:int -> int option
val get_all_words : handle -> key:int -> int array option
val put : handle -> key:int -> value:int -> unit
(** Insert-or-update; raises [Failure] if this client does not hold the
    key's partition. Existing keys are updated {e in place} (§2.2.2's
    "atomic in-place updates" — atomic per value word; multi-word values
    may be observed torn by concurrent readers). *)

val put_cow : handle -> key:int -> value:int -> unit
(** Copy-on-write variant: every write allocates a fresh record and swaps
    it into the chain atomically (§5.4 change), so readers never observe a
    torn multi-word value; the replaced record is parked until {!quiesce}.
    Costs an allocation (fence + flush) per write. *)

val rmw : handle -> key:int -> delta:int -> int option
(** Read-modify-write (YCSB-F): read the current first value word, write
    [old + delta] back across the value width, return the old value
    ([None] = key absent, in which case [delta] is inserted). Writer-only,
    like {!put}. *)

val delete : handle -> key:int -> bool

val quiesce : handle -> unit
(** Reclaim records parked by this handle's deletes and COW replacements —
    but only those whose retire stamp is below every announced reader era
    ({!Cxlshm.Hazard.min_announced}); the rest stay parked for a later
    pass. A crashed reader stops pinning as soon as it is condemned. *)

val deferred_count : handle -> int
(** Records currently parked awaiting a quiescent era. *)

val handoff_deferred : handle -> Cxlshm.Transfer.t -> int
(** Planned shard handoff: publish this handle's parked records to a
    successor through a §5.2 transfer queue — one
    {!Cxlshm.Transfer.send_batch}, single fence, dense-prefix atomicity —
    and drop the local references for the prefix that was accepted (the
    ring may run out of room; the remainder stays parked here). Returns
    how many records were handed off. *)

val adopt_deferred : handle -> Cxlshm.Transfer.t -> max:int -> int
(** Successor side of {!handoff_deferred}: consume up to [max] parked
    records from the queue and re-park them under this handle with a fresh
    retire stamp (conservatively later than the original, so reader
    protection survives the handoff). Returns how many were adopted. *)

val adopt_recovered : handle -> int
(** Crash-adoption successor side: claim every unclaimed entry of the
    arena-wide adoption journal — parked records a {e crashed} writer left
    behind, moved there by recovery with their original retire stamps —
    and re-park them under this handle, stamps intact, so recycling stays
    gated on {!Cxlshm.Hazard.min_announced} exactly as if the dead writer
    had quiesced them itself. Idempotent and crash-resumable (claim CAS,
    registry re-append and journal clear are separate labeled crash
    points). Returns how many records were adopted. Typically called after
    {!takeover_partition} of the dead writer's partitions. *)

val size_estimate : handle -> int
(** Walks every bucket (reader-side full scan — legal in the
    shared-everything design). *)

val iter : handle -> (key:int -> value:int -> unit) -> unit
(** Reader-side scan of the whole store (§6.4: "readers can directly read
    the entire store"). Concurrent single-writer mutations may be partially
    observed, as with any latch-free traversal. *)

val keys : handle -> int list

(** {1 Test hooks} *)

val walk_hook : (unit -> unit) ref
(** {b Test-only.} Called once per record visited by any chain walk; the
    model checker points it at [Sched.yield] so traversals interleave with
    writer retirement. Must stay a no-op outside the explorer. *)

val mutation_unconditional_quiesce : bool ref
(** {b Test-only.} Re-introduces the historical bug where {!quiesce} freed
    parked records unconditionally, ignoring announced reader eras — for
    the [kv-serve] model's mutation self-check. Must stay [false]
    otherwise. *)
