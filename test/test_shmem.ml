(* Unit + property tests for the shared-memory substrate. *)

open Cxlshm_shmem

let st () = Stats.create ()

let test_word_roundtrip () =
  let f = Word.field ~shift:10 ~bits:8 in
  let w = Word.set f 0 255 in
  Alcotest.(check int) "get back" 255 (Word.get f w);
  let g = Word.field ~shift:0 ~bits:10 in
  let w = Word.set g w 1023 in
  Alcotest.(check int) "field f intact" 255 (Word.get f w);
  Alcotest.(check int) "field g" 1023 (Word.get g w)

let test_word_bounds () =
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Word.set: value 256 does not fit in 8 bits") (fun () ->
      ignore (Word.set (Word.field ~shift:0 ~bits:8) 0 256));
  Alcotest.check_raises "field too wide"
    (Invalid_argument "Word.field: shift=60 bits=8 exceeds 62 usable bits")
    (fun () -> ignore (Word.field ~shift:60 ~bits:8))

let test_mem_basic () =
  let m = Mem.create ~words:64 () in
  let s = st () in
  Mem.store m ~st:s 3 42;
  Alcotest.(check int) "load back" 42 (Mem.load m ~st:s 3);
  Alcotest.(check bool) "cas ok" true
    (Mem.cas m ~st:s 3 ~expected:42 ~desired:7);
  Alcotest.(check bool) "cas stale" false
    (Mem.cas m ~st:s 3 ~expected:42 ~desired:9);
  Alcotest.(check int) "after cas" 7 (Mem.load m ~st:s 3)

let test_mem_bounds () =
  let m = Mem.create ~words:8 () in
  let s = st () in
  (try
     ignore (Mem.load m ~st:s 8);
     Alcotest.fail "expected Wild_pointer"
   with Mem.Wild_pointer { addr; words } ->
     Alcotest.(check int) "addr" 8 addr;
     Alcotest.(check int) "words" 8 words);
  (try
     ignore (Mem.store m ~st:s (-1) 0);
     Alcotest.fail "expected Wild_pointer"
   with Mem.Wild_pointer _ -> ())

let test_mem_bytes_roundtrip () =
  let m = Mem.create ~words:64 () in
  let s = st () in
  let payload = Bytes.of_string "hello, CXL shared memory!" in
  Mem.write_bytes m ~st:s 5 payload;
  let back = Mem.read_bytes m ~st:s 5 ~len:(Bytes.length payload) in
  Alcotest.(check string) "roundtrip" (Bytes.to_string payload)
    (Bytes.to_string back)

let test_fetch_add () =
  let m = Mem.create ~words:8 () in
  let s = st () in
  Alcotest.(check int) "prev 0" 0 (Mem.fetch_add m ~st:s 0 5);
  Alcotest.(check int) "prev 5" 5 (Mem.fetch_add m ~st:s 0 2);
  Alcotest.(check int) "now 7" 7 (Mem.load m ~st:s 0)

let test_stats_counting () =
  let m = Mem.create ~words:64 () in
  let s = st () in
  ignore (Mem.load m ~st:s 0);
  (* line 0: prefetch-adjacent to the initial state -> seq *)
  ignore (Mem.load m ~st:s 1);
  (* same line -> seq (streaming) *)
  ignore (Mem.load m ~st:s 32);
  (* line 4: non-adjacent cold line -> rand *)
  ignore (Mem.load m ~st:s 3);
  (* back to line 0: non-adjacent but cached -> hit *)
  ignore (Mem.cas m ~st:s 5 ~expected:0 ~desired:1);
  (* line 0 is cached, so this is a local (hit) CAS *)
  ignore (Mem.cas m ~st:s 48 ~expected:0 ~desired:1);
  (* line 6 is cold: a coherence round trip *)
  Mem.fence m ~st:s;
  Mem.flush m ~st:s 0;
  Alcotest.(check int) "seq" 2 s.Stats.seq_accesses;
  Alcotest.(check int) "hit" 1 s.Stats.cache_hits;
  Alcotest.(check int) "rand" 1 s.Stats.rand_accesses;
  Alcotest.(check int) "cas cold" 1 s.Stats.cas_ops;
  Alcotest.(check int) "cas hit" 1 s.Stats.cas_hit_ops;
  Alcotest.(check int) "fence" 1 s.Stats.fences;
  Alcotest.(check int) "flush" 1 s.Stats.flushes

let test_cache_filter () =
  let s = st () in
  Alcotest.(check bool) "first touch misses" false (Cxlshm_shmem.Stats.note_line s 7);
  Alcotest.(check bool) "second touch hits" true (Cxlshm_shmem.Stats.note_line s 7);
  (* conflict: same direct-mapped slot *)
  Alcotest.(check bool) "conflicting line evicts" false
    (Cxlshm_shmem.Stats.note_line s (7 + Cxlshm_shmem.Stats.cache_lines));
  Alcotest.(check bool) "original line evicted" false
    (Cxlshm_shmem.Stats.note_line s 7)

let test_latency_table1 () =
  (* The model must reproduce Table 1's ordering and magnitudes. *)
  let seq_l, rand_l, cas_l = Latency.table1_mops Latency.Local_numa in
  let seq_c, rand_c, cas_c = Latency.table1_mops Latency.Cxl in
  Alcotest.(check bool) "seq local > cxl" true (seq_l > seq_c);
  Alcotest.(check bool) "rand local > cxl" true (rand_l > rand_c);
  Alcotest.(check (float 0.1)) "cas flat" cas_l cas_c;
  Alcotest.(check (float 1.0)) "local latency" 110.0
    (Latency.table1_latency_ns Latency.Local_numa);
  Alcotest.(check (float 1.0)) "cxl latency" 390.0
    (Latency.table1_latency_ns Latency.Cxl)

let test_modeled_time_monotone () =
  let s = st () in
  s.Stats.rand_accesses <- 100;
  let local = Stats.modeled_ns (Latency.of_tier Latency.Local_numa) s in
  let cxl = Stats.modeled_ns (Latency.of_tier Latency.Cxl) s in
  Alcotest.(check bool) "cxl slower" true (cxl > local)

(* Property: byte payloads of arbitrary content round-trip. *)
let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"mem bytes roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun payload ->
      let m = Mem.create ~words:64 () in
      let s = st () in
      let b = Bytes.of_string payload in
      Mem.write_bytes m ~st:s 2 b;
      Bytes.to_string (Mem.read_bytes m ~st:s 2 ~len:(Bytes.length b))
      = payload)

(* Property: packing fields never bleeds between them. *)
let prop_word_fields_independent =
  QCheck.Test.make ~name:"word fields independent" ~count:500
    QCheck.(triple (int_bound 1023) (int_bound 0xFFFF) (int_bound 0xFF))
    (fun (a, b, c) ->
      let fa = Word.field ~shift:0 ~bits:10 in
      let fb = Word.field ~shift:10 ~bits:16 in
      let fc = Word.field ~shift:26 ~bits:8 in
      let w = Word.set fc (Word.set fb (Word.set fa 0 a) b) c in
      Word.get fa w = a && Word.get fb w = b && Word.get fc w = c && w >= 0)

(* Property: concurrent CAS from two domains never loses an increment. *)
let prop_cas_atomic_across_domains =
  QCheck.Test.make ~name:"cas atomic across domains" ~count:5
    QCheck.(int_range 100 1000)
    (fun n ->
      let m = Mem.create ~words:8 () in
      let bump () =
        let s = st () in
        for _ = 1 to n do
          let rec loop () =
            let v = Mem.load m ~st:s 0 in
            if not (Mem.cas m ~st:s 0 ~expected:v ~desired:(v + 1)) then loop ()
          in
          loop ()
        done
      in
      let d1 = Domain.spawn bump and d2 = Domain.spawn bump in
      Domain.join d1;
      Domain.join d2;
      Mem.load m ~st:(st ()) 0 = 2 * n)

let suite =
  [
    Alcotest.test_case "word roundtrip" `Quick test_word_roundtrip;
    Alcotest.test_case "word bounds" `Quick test_word_bounds;
    Alcotest.test_case "mem basic" `Quick test_mem_basic;
    Alcotest.test_case "mem bounds" `Quick test_mem_bounds;
    Alcotest.test_case "mem bytes roundtrip" `Quick test_mem_bytes_roundtrip;
    Alcotest.test_case "fetch_add" `Quick test_fetch_add;
    Alcotest.test_case "stats counting" `Quick test_stats_counting;
    Alcotest.test_case "cache filter" `Quick test_cache_filter;
    Alcotest.test_case "latency table1" `Quick test_latency_table1;
    Alcotest.test_case "modeled time monotone" `Quick test_modeled_time_monotone;
    QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
    QCheck_alcotest.to_alcotest prop_word_fields_independent;
    QCheck_alcotest.to_alcotest prop_cas_atomic_across_domains;
  ]
