(** Phoenix-like baseline: single-machine shared-memory MapReduce
    (Ranger et al., HPCA'07), the comparison system of Fig 9.

    Chunks live in OCaml memory; one domain per executor runs the map
    function; the master merges the partial results. No shared pool, no
    failure resilience, no multi-machine scale-out. *)

val run :
  executors:int -> chunks:bytes list -> job:Mr_job.job -> (int * int) list
(** Combined (key, value) pairs, sorted by key. *)
