(** RootRef blocks (§5.1, Fig 2).

    Every [cxl_malloc] implicitly allocates a RootRef in a dedicated size
    class so that, after a failure, recovery can find every reference the
    dead client possessed by scanning those pages and only those pages.
    A RootRef is two words:

    - word 0 — [in_use] bit plus the *local* reference count (how many
      CXLRef handles of the owning thread alias this RootRef). Local counts
      are maintained with plain load/store — no atomics, no flush (§5.2
      "two-tiered reference count").
    - word 1 — process-independent pointer to the CXLObj, or the free-list
      next pointer while the block is free. *)

val words : int

val in_use : Ctx.t -> Cxlshm_shmem.Pptr.t -> bool
val local_cnt : Ctx.t -> Cxlshm_shmem.Pptr.t -> int
val set_state : Ctx.t -> Cxlshm_shmem.Pptr.t -> in_use:bool -> cnt:int -> unit
val set_local_cnt : Ctx.t -> Cxlshm_shmem.Pptr.t -> int -> unit

val pptr_slot : Cxlshm_shmem.Pptr.t -> Cxlshm_shmem.Pptr.t
(** Address of word 1 — the ModifyRef target of RootRef link/unlink
    transactions. *)

val obj : Ctx.t -> Cxlshm_shmem.Pptr.t -> Cxlshm_shmem.Pptr.t
(** The CXLObj this RootRef points to ([Pptr.null] if unlinked). *)

(** Simulator-side unattributed reads for validators. *)
val peek_in_use : Cxlshm_shmem.Mem.t -> Cxlshm_shmem.Pptr.t -> bool
val peek_obj : Cxlshm_shmem.Mem.t -> Cxlshm_shmem.Pptr.t -> Cxlshm_shmem.Pptr.t

val well_formed : int -> bool
(** Does the state word carry only the [in_use] and local-count fields?
    Stray bits mean a torn store landed (fsck clears such RootRefs). *)
