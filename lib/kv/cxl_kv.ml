open Cxlshm

type store = {
  index_obj : int;
  buckets : int;
  partitions : int;
  value_words : int;
}

type handle = {
  ctx : Ctx.t;
  store : store;
  index_rr : int;  (** our RootRef keeping the index alive *)
  mutable deferred : (int * int * Cxl_ref.t) list;
      (** displaced records awaiting a quiescent era: retire-epoch stamp,
          persistent-registry slot ([-1] = volatile-only overflow), and the
          counted reference that keeps the block from being recycled under
          a concurrent reader *)
  mutable park_free : int list;
      (** free slots of this client's persistent parked-record registry *)
}

let name = "CXL-KV"

let mutation_unconditional_quiesce = ref false

let walk_hook : (unit -> unit) ref = ref (fun () -> ())

(* Index data layout (after the [buckets] embedded slots):
   +0 partitions, +1 value_words, +2.. writer table (cid+1 per partition).
   Record: emb slot 0 = next; data words +1 = key, +2.. = value. *)
let idx_word store i = Obj_header.data_of_obj store.index_obj + store.buckets + i
let writer_word store p = idx_word store (2 + p)
let bucket_slot store b = Obj_header.emb_slot store.index_obj b
let rec_next r = Obj_header.emb_slot r 0
let rec_key r = Obj_header.data_of_obj r + 1
let rec_val r i = Obj_header.data_of_obj r + 2 + i

(* Fibonacci hashing spreads dense integer keys. *)
let hash key = (key * 0x2545F4914F6CDD1D) land max_int

let bucket_of store key = hash key mod store.buckets
let partition_of_key store key = key mod store.partitions

(* ------------------------------------------------------------------ *)
(* Persistent parked-record registry. Every parked record is mirrored
   into the client's [Layout.park_slot_*] registry (stamp fenced first,
   the rr word is the commit point) so a writer crash cannot orphan the
   volatile deferred list: recovery moves the registry into the adoption
   journal ({!Cxlshm.Recovery}), retire stamps intact, for a successor to
   adopt. One writing handle per client — the registry is per-cid. *)

let scan_park_free (ctx : Ctx.t) =
  let lay = ctx.Ctx.lay in
  let cid = ctx.Ctx.cid in
  let free = ref [] in
  for k = Layout.park_capacity lay - 1 downto 0 do
    if Ctx.load ctx (Layout.park_slot_rr lay cid k) = 0 then free := k :: !free
  done;
  !free

let park_register h ~stamp rr =
  match h.park_free with
  | [] ->
      (* Bounded registry: the record stays parked volatile-only — correct
         while this client lives, unrecoverable for adoption if it dies. *)
      Logs.warn (fun m ->
          m "%s: parked-record registry full (client %d); parking \
             volatile-only" name h.ctx.Ctx.cid);
      -1
  | k :: rest ->
      let lay = h.ctx.Ctx.lay in
      let cid = h.ctx.Ctx.cid in
      Ctx.store h.ctx (Layout.park_slot_stamp lay cid k) stamp;
      Ctx.fence h.ctx;
      Ctx.store h.ctx (Layout.park_slot_rr lay cid k) rr;
      h.park_free <- rest;
      Ctx.crash_point h.ctx Fault.Park_after_append;
      k

let park_clear h slot =
  if slot >= 0 then begin
    Ctx.store h.ctx (Layout.park_slot_rr h.ctx.Ctx.lay h.ctx.Ctx.cid slot) 0;
    h.park_free <- slot :: h.park_free
  end

let create ctx ~buckets ~partitions ~value_words =
  if buckets < 1 || partitions < 1 || value_words < 1 then
    invalid_arg "Cxl_kv.create";
  let data_words = buckets + 2 + partitions in
  let r = Shm.cxl_malloc_words ctx ~data_words ~emb_cnt:buckets () in
  let store =
    { index_obj = Cxl_ref.obj r; buckets; partitions; value_words }
  in
  Ctx.store ctx (idx_word store 0) partitions;
  Ctx.store ctx (idx_word store 1) value_words;
  for p = 0 to partitions - 1 do
    Ctx.store ctx (writer_word store p) 0
  done;
  let handle =
    {
      ctx;
      store;
      index_rr = Cxl_ref.rootref r;
      deferred = [];
      park_free = scan_park_free ctx;
    }
  in
  (store, handle)

let open_store ctx store =
  let rr = Alloc.alloc_rootref ctx in
  Refc.attach ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:store.index_obj;
  { ctx; store; index_rr = rr; deferred = []; park_free = scan_park_free ctx }

(* Hazard-era quiesce (§5.4): a parked record may only be recycled once
   every announced reader era has moved past its retire stamp — otherwise
   a reader paused on the record could observe the block reused for an
   unrelated object. Dead readers do not pin: [Hazard.min_announced]
   ignores announcements of condemned clients. *)
let quiesce h =
  let safe = Hazard.min_announced h.ctx in
  let keep, free =
    if !mutation_unconditional_quiesce then ([], h.deferred)
    else List.partition (fun (stamp, _, _) -> stamp >= safe) h.deferred
  in
  List.iter
    (fun (_, slot, pref) ->
      (* Registry entry first, reference second: a crash in between leaves
         an unregistered live rootref for the rootref scan — already past
         its quiescent era, so the scan's release is safe. *)
      park_clear h slot;
      Cxl_ref.drop pref)
    free;
  h.deferred <- keep

let deferred_count h = List.length h.deferred

let close h =
  (* Quiesced use only: force-drops whatever is still parked, so no reader
     may be mid-walk. A departing writer with live readers hands its parked
     records to a successor first (see {!handoff_deferred}). *)
  List.iter
    (fun (_, slot, pref) ->
      park_clear h slot;
      Cxl_ref.drop pref)
    h.deferred;
  h.deferred <- [];
  Reclaim.release_rootref h.ctx h.index_rr

let claim_partition h p =
  Ctx.cas h.ctx (writer_word h.store p) ~expected:0 ~desired:(h.ctx.Ctx.cid + 1)

let takeover_partition h p =
  let w = writer_word h.store p in
  let rec loop () =
    let cur = Ctx.load h.ctx w in
    cur = h.ctx.Ctx.cid + 1
    || Ctx.cas h.ctx w ~expected:cur ~desired:(h.ctx.Ctx.cid + 1)
    || loop ()
  in
  loop ()

let writer_of_partition h p =
  let v = Ctx.load h.ctx (writer_word h.store p) in
  if v = 0 then None else Some (v - 1)

let check_writer h key =
  let p = partition_of_key h.store key in
  if Ctx.load h.ctx (writer_word h.store p) <> h.ctx.Ctx.cid + 1 then
    failwith
      (Printf.sprintf "Cxl_kv: client %d is not the writer of partition %d"
         h.ctx.Ctx.cid p)

let find h key =
  let rec walk r =
    if r = 0 then None
    else begin
      !walk_hook ();
      if Ctx.load h.ctx (rec_key r) = key then Some r
      else walk (Ctx.load h.ctx (rec_next r))
    end
  in
  walk (Ctx.load h.ctx (bucket_slot h.store (bucket_of h.store key)))

let get h ~key =
  Hazard.with_protection h.ctx (fun () ->
      match find h key with
      | None -> None
      | Some r -> Some (Ctx.load h.ctx (rec_val r 0)))

let get_all_words h ~key =
  Hazard.with_protection h.ctx (fun () ->
      match find h key with
      | None -> None
      | Some r ->
          Some
            (Array.init h.store.value_words (fun i ->
                 Ctx.load h.ctx (rec_val r i))))

let write_value h r value =
  (* Full value width is written, modelling YCSB-size payload traffic. *)
  for i = 0 to h.store.value_words - 1 do
    Ctx.store h.ctx (rec_val r i) (value + i)
  done

let find_with_prev h key =
  let slot0 = bucket_slot h.store (bucket_of h.store key) in
  let rec walk prev_slot r =
    if r = 0 then None
    else begin
      !walk_hook ();
      if Ctx.load h.ctx (rec_key r) = key then Some (prev_slot, r)
      else walk (rec_next r) (Ctx.load h.ctx (rec_next r))
    end
  in
  walk slot0 (Ctx.load h.ctx slot0)

(* Park a soon-to-be-unlinked record behind a fresh counted reference.
   Must run BEFORE the unlink: the park reference is what guarantees the
   unlink can never drop the record to count zero while a reader may still
   hold it. The record keeps its own next-link until it is finally
   reclaimed, so a reader paused on it still reaches the chain tail. *)
let park_record h r =
  let rr = Alloc.alloc_rootref h.ctx in
  Refc.attach h.ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:r;
  let stamp = Hazard.retire_epoch h.ctx in
  let slot = park_register h ~stamp rr in
  h.deferred <- (stamp, slot, Cxl_ref.of_rootref h.ctx rr) :: h.deferred

(* Insert a freshly allocated record for [key], either replacing [old]
   in-chain (§5.4 change) or prepending at the bucket. *)
let insert_fresh h ~key ~value ~existing =
  let rr, fresh =
    Alloc.alloc_obj h.ctx ~data_words:(2 + h.store.value_words) ~emb_cnt:1
  in
  Ctx.store h.ctx (rec_key fresh) key;
  write_value h fresh value;
  (match existing with
  | Some (prev_slot, old) ->
      park_record h old;
      let next = Ctx.load h.ctx (rec_next old) in
      if next <> 0 then Refc.attach h.ctx ~ref_addr:(rec_next fresh) ~refed:next;
      ignore (Refc.change h.ctx ~ref_addr:prev_slot ~from_obj:old ~to_obj:fresh)
  | None ->
      let slot = bucket_slot h.store (bucket_of h.store key) in
      let head = Ctx.load h.ctx slot in
      if head = 0 then Refc.attach h.ctx ~ref_addr:slot ~refed:fresh
      else begin
        Refc.attach h.ctx ~ref_addr:(rec_next fresh) ~refed:head;
        ignore (Refc.change h.ctx ~ref_addr:slot ~from_obj:head ~to_obj:fresh)
      end);
  (* The index keeps the record alive; drop our RootRef. *)
  Reclaim.release_rootref h.ctx rr

let put h ~key ~value =
  check_writer h key;
  Hazard.with_protection h.ctx (fun () ->
      match find h key with
      | Some r -> write_value h r value
      | None -> insert_fresh h ~key ~value ~existing:None)

let put_cow h ~key ~value =
  check_writer h key;
  Hazard.with_protection h.ctx (fun () ->
      insert_fresh h ~key ~value ~existing:(find_with_prev h key))

let rmw h ~key ~delta =
  check_writer h key;
  Hazard.with_protection h.ctx (fun () ->
      match find h key with
      | Some r ->
          let old = Ctx.load h.ctx (rec_val r 0) in
          write_value h r (old + delta);
          Some old
      | None ->
          insert_fresh h ~key ~value:delta ~existing:None;
          None)

let delete h ~key =
  check_writer h key;
  Hazard.with_protection h.ctx (fun () ->
      let slot0 = bucket_slot h.store (bucket_of h.store key) in
      let rec walk prev_slot r =
        if r = 0 then false
        else begin
          !walk_hook ();
          if Ctx.load h.ctx (rec_key r) = key then begin
            park_record h r;
            let next = Ctx.load h.ctx (rec_next r) in
            ignore
              (if next = 0 then Refc.detach h.ctx ~ref_addr:prev_slot ~refed:r
               else
                 Refc.change h.ctx ~ref_addr:prev_slot ~from_obj:r ~to_obj:next);
            true
          end
          else walk (rec_next r) (Ctx.load h.ctx (rec_next r))
        end
      in
      walk slot0 (Ctx.load h.ctx slot0))

(* ------------------------------------------------------------------ *)
(* Shard handoff (planned leave): the departing writer's parked records
   ride the §5.2 batched transfer queue to a successor, which re-parks
   them under its own identity. Reader protection survives the handoff:
   the queue slot holds a counted reference for the flight, and the
   adopter re-stamps with a fresh (larger) retire epoch, so no reader
   protected against the original retirement can be exposed. *)

let handoff_deferred h q =
  match h.deferred with
  | [] -> 0
  | parked ->
      let sent, _why =
        Transfer.send_batch q (List.map (fun (_, _, pref) -> pref) parked)
      in
      (* Dense-prefix semantics: exactly the first [sent] entries moved.
         Drop the local reference and registry slot for those — the
         successor re-registers them under its own identity — and keep the
         retained suffix with its ORIGINAL retire stamps and registry
         slots. Re-stamping (or re-registering) the suffix here would
         double-handle a partial send: the record would appear both
         re-parked and in-flight, and a fresh stamp would not widen safety
         while a stale slot clear could orphan the entry. *)
      List.iteri
        (fun i (_, slot, pref) ->
          if i < sent then begin
            park_clear h slot;
            Cxl_ref.drop pref
          end)
        parked;
      h.deferred <- List.filteri (fun i _ -> i >= sent) parked;
      sent

let adopt_deferred h q ~max =
  match Transfer.receive_batch q ~max with
  | Transfer.Batch_empty | Transfer.Batch_drained -> 0
  | Transfer.Received_batch refs ->
      let stamp = Hazard.retire_epoch h.ctx in
      List.iter
        (fun pref ->
          let slot = park_register h ~stamp (Cxl_ref.rootref pref) in
          h.deferred <- (stamp, slot, pref) :: h.deferred)
        refs;
      List.length refs

(* Successor side of crash adoption: claim unclaimed adoption-journal
   entries (recovery parked them there from the dead writer's registry,
   original retire stamps intact) and re-park them under this handle. The
   claim CAS, the registry re-append and the journal clear are separated
   by labeled crash points; {!Cxlshm.Recovery} resolves a successor that
   dies between any two (registry presence decides whether the move
   committed). *)
let adopt_recovered h =
  let ctx = h.ctx in
  let lay = ctx.Ctx.lay in
  let cid = ctx.Ctx.cid in
  let n = ref 0 in
  for k = 0 to Layout.adopt_capacity lay - 1 do
    let rr_addr = Layout.adopt_slot_rr lay k in
    let claim_addr = Layout.adopt_slot_claim lay k in
    let rr = Ctx.load ctx rr_addr in
    if
      rr <> 0
      && Ctx.load ctx claim_addr = 0
      && Ctx.cas ctx claim_addr ~expected:0 ~desired:(cid + 1)
    then begin
      Ctx.crash_point ctx Fault.Adopt_after_claim;
      if Rootref.in_use ctx rr then begin
        let stamp = Ctx.load ctx (Layout.adopt_slot_stamp lay k) in
        let slot = park_register h ~stamp rr in
        if slot < 0 then
          (* No registry room: release the claim, leave the entry for
             another successor or the monitor drain. *)
          Ctx.store ctx claim_addr 0
        else begin
          Ctx.crash_point ctx Fault.Adopt_after_append;
          h.deferred <- (stamp, slot, Cxl_ref.of_rootref ctx rr) :: h.deferred;
          Ctx.store ctx rr_addr 0;
          Ctx.store ctx (Layout.adopt_slot_stamp lay k) 0;
          Ctx.store ctx claim_addr 0;
          incr n
        end
      end
      else begin
        (* Stale entry (rootref already freed elsewhere): clear it. *)
        Ctx.store ctx rr_addr 0;
        Ctx.store ctx (Layout.adopt_slot_stamp lay k) 0;
        Ctx.store ctx claim_addr 0
      end
    end
  done;
  !n

let iter h f =
  Hazard.with_protection h.ctx (fun () ->
      for b = 0 to h.store.buckets - 1 do
        let rec walk r =
          if r <> 0 then begin
            !walk_hook ();
            f ~key:(Ctx.load h.ctx (rec_key r))
              ~value:(Ctx.load h.ctx (rec_val r 0));
            walk (Ctx.load h.ctx (rec_next r))
          end
        in
        walk (Ctx.load h.ctx (bucket_slot h.store b))
      done)

let keys h =
  let acc = ref [] in
  iter h (fun ~key ~value:_ -> acc := key :: !acc);
  List.sort compare !acc

let size_estimate h =
  let total = ref 0 in
  Hazard.with_protection h.ctx (fun () ->
      for b = 0 to h.store.buckets - 1 do
        let rec walk r =
          if r <> 0 then (incr total; walk (Ctx.load h.ctx (rec_next r)))
        in
        walk (Ctx.load h.ctx (bucket_slot h.store b))
      done);
  !total
