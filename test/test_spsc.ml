(* SPSC ring: FIFO order, capacity, cross-domain safety. *)

open Cxlshm_shmem
module Spsc = Cxlshm_spsc.Spsc_queue

let test_fifo () =
  let mem = Mem.create ~words:64 () in
  let st = Stats.create () in
  let q = Spsc.create mem ~st ~base:8 ~capacity:4 in
  Alcotest.(check bool) "push 1" true (Spsc.try_push q ~st 10);
  Alcotest.(check bool) "push 2" true (Spsc.try_push q ~st 20);
  Alcotest.(check (option int)) "pop 1" (Some 10) (Spsc.try_pop q ~st);
  Alcotest.(check bool) "push 3" true (Spsc.try_push q ~st 30);
  Alcotest.(check (option int)) "pop 2" (Some 20) (Spsc.try_pop q ~st);
  Alcotest.(check (option int)) "pop 3" (Some 30) (Spsc.try_pop q ~st);
  Alcotest.(check (option int)) "empty" None (Spsc.try_pop q ~st)

let test_capacity () =
  let mem = Mem.create ~words:64 () in
  let st = Stats.create () in
  let q = Spsc.create mem ~st ~base:8 ~capacity:2 in
  Alcotest.(check bool) "1" true (Spsc.try_push q ~st 1);
  Alcotest.(check bool) "2" true (Spsc.try_push q ~st 2);
  Alcotest.(check bool) "full" false (Spsc.try_push q ~st 3);
  ignore (Spsc.try_pop q ~st);
  Alcotest.(check bool) "room again" true (Spsc.try_push q ~st 3)

let test_attach () =
  let mem = Mem.create ~words:64 () in
  let st = Stats.create () in
  let _q = Spsc.create mem ~st ~base:8 ~capacity:4 in
  let q2 = Spsc.attach mem ~st ~base:8 in
  Alcotest.(check int) "capacity via attach" 4 (Spsc.capacity q2);
  Alcotest.check_raises "attach elsewhere fails"
    (Invalid_argument "Spsc_queue.attach: no queue at this address") (fun () ->
      ignore (Spsc.attach mem ~st ~base:32))

(* Regression: a header whose magic survived but whose capacity word was
   damaged to 0 used to attach fine and then die with Division_by_zero on
   the first push/pop; attach must reject it up front. *)
let test_attach_corrupt_capacity () =
  let mem = Mem.create ~words:64 () in
  let st = Stats.create () in
  let _q = Spsc.create mem ~st ~base:8 ~capacity:4 in
  Mem.store mem ~st 9 0;
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Spsc_queue.attach: corrupt capacity") (fun () ->
      ignore (Spsc.attach mem ~st ~base:8));
  Mem.store mem ~st 9 (-3);
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Spsc_queue.attach: corrupt capacity") (fun () ->
      ignore (Spsc.attach mem ~st ~base:8))

(* Regression: try_pop used to store the new head with no fence after the
   slot load, so the consumer's slot read could be ordered past the store
   that hands the slot back to the producer. The modeled clock must now
   charge a fence per successful pop, exactly like push. *)
let test_pop_charges_fence () =
  let mem = Mem.create ~words:64 () in
  let st = Stats.create () in
  let q = Spsc.create mem ~st ~base:8 ~capacity:4 in
  assert (Spsc.try_push q ~st 1);
  let fences_before = st.Stats.fences in
  Alcotest.(check (option int)) "popped" (Some 1) (Spsc.try_pop q ~st);
  Alcotest.(check int) "pop fenced" (fences_before + 1) st.Stats.fences;
  (* an empty pop does not fence (no slot was read) *)
  let fences_before = st.Stats.fences in
  Alcotest.(check (option int)) "empty" None (Spsc.try_pop q ~st);
  Alcotest.(check int) "no fence when empty" fences_before st.Stats.fences

(* Batched push/pop: FIFO preserved across batches, room-limited partial
   acceptance, and the empty/full edges. *)
let test_batch_fifo_partial () =
  let mem = Mem.create ~words:64 () in
  let st = Stats.create () in
  let q = Spsc.create mem ~st ~base:8 ~capacity:4 in
  Alcotest.(check int) "empty batch" 0 (Spsc.try_push_n q ~st []);
  Alcotest.(check int) "all fit" 3 (Spsc.try_push_n q ~st [ 1; 2; 3 ]);
  Alcotest.(check int) "room-limited" 1 (Spsc.try_push_n q ~st [ 4; 5 ]);
  Alcotest.(check int) "full" 0 (Spsc.try_push_n q ~st [ 6 ]);
  Alcotest.(check (list int)) "pop two" [ 1; 2 ] (Spsc.try_pop_n q ~st ~max:2);
  Alcotest.(check (list int)) "pop rest" [ 3; 4 ] (Spsc.try_pop_n q ~st ~max:8);
  Alcotest.(check (list int)) "empty" [] (Spsc.try_pop_n q ~st ~max:8);
  Alcotest.(check (list int)) "max 0" [] (Spsc.try_pop_n q ~st ~max:0)

(* The point of the batch entry points: one fence and one index store
   publish the whole batch. The counting backend sees the raw protocol
   (no Refc noise), so the fence count per batch must be exactly 1 on
   each side, however many values move. *)
let test_batch_single_fence () =
  let mem = Mem.create ~backend:Mem.Counting_fast ~words:64 () in
  let st = Stats.create () in
  let q = Spsc.create mem ~st ~base:8 ~capacity:8 in
  let fences () =
    (Option.get (Mem.op_breakdown mem)).Backend_counting.fences
  in
  let before = fences () in
  Alcotest.(check int) "pushed six" 6
    (Spsc.try_push_n q ~st [ 1; 2; 3; 4; 5; 6 ]);
  Alcotest.(check int) "one fence per batch push" (before + 1) (fences ());
  let before = fences () in
  Alcotest.(check (list int)) "popped six" [ 1; 2; 3; 4; 5; 6 ]
    (Spsc.try_pop_n q ~st ~max:6);
  Alcotest.(check int) "one fence per batch pop" (before + 1) (fences ());
  (* the degenerate cases publish nothing and must not fence *)
  Alcotest.(check int) "fill" 8 (Spsc.try_push_n q ~st (List.init 8 succ));
  let before = fences () in
  Alcotest.(check int) "full push" 0 (Spsc.try_push_n q ~st [ 99 ]);
  Alcotest.(check int) "empty batch" 0 (Spsc.try_push_n q ~st []);
  Alcotest.(check int) "no fence without a publish" before (fences ());
  ignore (Spsc.try_pop_n q ~st ~max:8);
  let before = fences () in
  Alcotest.(check (list int)) "empty pop" [] (Spsc.try_pop_n q ~st ~max:4);
  Alcotest.(check int) "no fence on empty pop" before (fences ())

(* Property: interleaved batch pushes/pops track the FIFO model exactly,
   including room-limited partial batches. *)
let prop_batch_fifo_model =
  QCheck.Test.make ~name:"spsc batch ops match queue model" ~count:200
    QCheck.(list (pair bool (int_bound 5)))
    (fun ops ->
      let mem = Mem.create ~words:128 () in
      let st = Stats.create () in
      let q = Spsc.create mem ~st ~base:8 ~capacity:8 in
      let model = Queue.create () in
      let counter = ref 0 in
      List.for_all
        (fun (is_push, n) ->
          if is_push then begin
            let vs = List.init n (fun i -> !counter + i + 1) in
            let pushed = Spsc.try_push_n q ~st vs in
            let room = 8 - Queue.length model in
            let expect = if n = 0 || room <= 0 then 0 else min n room in
            List.iteri (fun i v -> if i < pushed then Queue.push v model) vs;
            counter := !counter + pushed;
            pushed = expect
          end
          else
            let got = Spsc.try_pop_n q ~st ~max:n in
            let want =
              List.init
                (min n (Queue.length model))
                (fun _ -> Queue.pop model)
            in
            got = want)
        ops)

(* The tiny-ring race, deterministically: the schedule explorer interleaves
   a producer and consumer at every word access of a capacity-1 ring,
   exhaustively up to 2 preemptions. With every slot reused constantly, a
   producer racing past the (now fenced) pop-side publication reorders or
   duplicates a value — which the FIFO-prefix oracle catches on a schedule
   this mode provably visits (see the mutation self-check in
   test_check.ml). Replaces a 20k-iteration wall-clock race that could
   only lose by luck. *)
let test_sched_tiny_ring () =
  let module Explore = Cxlshm_check.Explore in
  let m = Cxlshm_check.Scenarios.spsc ~capacity:1 ~values:2 () in
  let r = Explore.exhaustive ~preemptions:2 ~crash:false ~max_steps:5_000 m in
  match r.Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "%s (replay: %s)" f.Explore.reason
        (Cxlshm_check.Schedule.to_string f.Explore.schedule)

let test_cross_domain () =
  let mem = Mem.create ~words:128 () in
  let st0 = Stats.create () in
  let q = Spsc.create mem ~st:st0 ~base:8 ~capacity:8 in
  let n = 50_000 in
  let producer =
    Domain.spawn (fun () ->
        let st = Stats.create () in
        let q = Spsc.attach mem ~st ~base:8 in
        for i = 1 to n do
          Spsc.push q ~st i
        done)
  in
  let sum = ref 0 in
  let st = Stats.create () in
  for _ = 1 to n do
    sum := !sum + Spsc.pop q ~st
  done;
  Domain.join producer;
  Alcotest.(check int) "all values, in total" (n * (n + 1) / 2) !sum

(* Property: any push/pop interleaving from one thread behaves like a
   FIFO. *)
let prop_fifo_model =
  QCheck.Test.make ~name:"spsc matches queue model" ~count:200
    QCheck.(list (pair bool (int_bound 1000)))
    (fun ops ->
      let mem = Mem.create ~words:128 () in
      let st = Stats.create () in
      let q = Spsc.create mem ~st ~base:8 ~capacity:8 in
      let model = Queue.create () in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            let ok = Spsc.try_push q ~st v in
            let model_ok = Queue.length model < 8 in
            if model_ok then Queue.push v model;
            ok = model_ok
          end
          else
            match (Spsc.try_pop q ~st, Queue.take_opt model) with
            | Some a, Some b -> a = b
            | None, None -> true
            | Some _, None | None, Some _ -> false)
        ops)

let suite =
  [
    Alcotest.test_case "fifo" `Quick test_fifo;
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "attach" `Quick test_attach;
    Alcotest.test_case "attach rejects corrupt capacity" `Quick
      test_attach_corrupt_capacity;
    Alcotest.test_case "pop charges a fence" `Quick test_pop_charges_fence;
    Alcotest.test_case "batch push/pop fifo + partial" `Quick
      test_batch_fifo_partial;
    Alcotest.test_case "batch publishes under one fence" `Quick
      test_batch_single_fence;
    Generators.to_alcotest prop_batch_fifo_model;
    Alcotest.test_case "tiny ring under the schedule explorer" `Quick
      test_sched_tiny_ring;
    Alcotest.test_case "cross-domain" `Quick test_cross_domain;
    Generators.to_alcotest prop_fifo_model;
  ]
