(* Unit + property tests for the shared-memory substrate. *)

open Cxlshm_shmem

let st () = Stats.create ()

let test_word_roundtrip () =
  let f = Word.field ~shift:10 ~bits:8 in
  let w = Word.set f 0 255 in
  Alcotest.(check int) "get back" 255 (Word.get f w);
  let g = Word.field ~shift:0 ~bits:10 in
  let w = Word.set g w 1023 in
  Alcotest.(check int) "field f intact" 255 (Word.get f w);
  Alcotest.(check int) "field g" 1023 (Word.get g w)

let test_word_bounds () =
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Word.set: value 256 does not fit in 8 bits") (fun () ->
      ignore (Word.set (Word.field ~shift:0 ~bits:8) 0 256));
  Alcotest.check_raises "field too wide"
    (Invalid_argument "Word.field: shift=60 bits=8 exceeds 62 usable bits")
    (fun () -> ignore (Word.field ~shift:60 ~bits:8))

let test_mem_basic () =
  let m = Mem.create ~words:64 () in
  let s = st () in
  Mem.store m ~st:s 3 42;
  Alcotest.(check int) "load back" 42 (Mem.load m ~st:s 3);
  Alcotest.(check bool) "cas ok" true
    (Mem.cas m ~st:s 3 ~expected:42 ~desired:7);
  Alcotest.(check bool) "cas stale" false
    (Mem.cas m ~st:s 3 ~expected:42 ~desired:9);
  Alcotest.(check int) "after cas" 7 (Mem.load m ~st:s 3)

let test_mem_bounds () =
  let m = Mem.create ~words:8 () in
  let s = st () in
  (try
     ignore (Mem.load m ~st:s 8);
     Alcotest.fail "expected Wild_pointer"
   with Mem.Wild_pointer { addr; words } ->
     Alcotest.(check int) "addr" 8 addr;
     Alcotest.(check int) "words" 8 words);
  (try
     ignore (Mem.store m ~st:s (-1) 0);
     Alcotest.fail "expected Wild_pointer"
   with Mem.Wild_pointer _ -> ())

let test_mem_bytes_roundtrip () =
  let m = Mem.create ~words:64 () in
  let s = st () in
  let payload = Bytes.of_string "hello, CXL shared memory!" in
  Mem.write_bytes m ~st:s 5 payload;
  let back = Mem.read_bytes m ~st:s 5 ~len:(Bytes.length payload) in
  Alcotest.(check string) "roundtrip" (Bytes.to_string payload)
    (Bytes.to_string back)

let test_fetch_add () =
  let m = Mem.create ~words:8 () in
  let s = st () in
  Alcotest.(check int) "prev 0" 0 (Mem.fetch_add m ~st:s 0 5);
  Alcotest.(check int) "prev 5" 5 (Mem.fetch_add m ~st:s 0 2);
  Alcotest.(check int) "now 7" 7 (Mem.load m ~st:s 0)

let test_stats_counting () =
  let m = Mem.create ~words:64 () in
  let s = st () in
  ignore (Mem.load m ~st:s 0);
  (* line 0: prefetch-adjacent to the initial state -> seq *)
  ignore (Mem.load m ~st:s 1);
  (* same line -> seq (streaming) *)
  ignore (Mem.load m ~st:s 32);
  (* line 4: non-adjacent cold line -> rand *)
  ignore (Mem.load m ~st:s 3);
  (* back to line 0: non-adjacent but cached -> hit *)
  ignore (Mem.cas m ~st:s 5 ~expected:0 ~desired:1);
  (* line 0 is cached, so this is a local (hit) CAS *)
  ignore (Mem.cas m ~st:s 48 ~expected:0 ~desired:1);
  (* line 6 is cold: a coherence round trip *)
  Mem.fence m ~st:s;
  Mem.flush m ~st:s 0;
  Alcotest.(check int) "seq" 2 s.Stats.seq_accesses;
  Alcotest.(check int) "hit" 1 s.Stats.cache_hits;
  Alcotest.(check int) "rand" 1 s.Stats.rand_accesses;
  Alcotest.(check int) "cas cold" 1 s.Stats.cas_ops;
  Alcotest.(check int) "cas hit" 1 s.Stats.cas_hit_ops;
  Alcotest.(check int) "fence" 1 s.Stats.fences;
  Alcotest.(check int) "flush" 1 s.Stats.flushes

let test_blit_overlap () =
  (* Regression: a forward word-by-word copy corrupts when src < dst and the
     ranges overlap — blit must behave like memmove on every backend. *)
  let backends =
    [
      ("flat", Mem.Flat);
      ("striped", Mem.Striped { devices = 3; stripe_words = 5; tiers = [||] });
      ("counting", Mem.Counting_fast);
    ]
  in
  List.iter
    (fun (name, backend) ->
      let m = Mem.create ~backend ~words:64 () in
      let s = st () in
      for i = 0 to 7 do
        Mem.store m ~st:s (10 + i) (100 + i)
      done;
      (* overlapping, src < dst: must copy backward *)
      Mem.blit m ~st:s ~src:10 ~dst:14 ~len:8;
      for i = 0 to 7 do
        Alcotest.(check int)
          (Printf.sprintf "%s fwd-overlap word %d" name i)
          (100 + i)
          (Mem.unsafe_peek m (14 + i))
      done;
      (* overlapping, src > dst: forward copy is correct *)
      let m2 = Mem.create ~backend ~words:64 () in
      for i = 0 to 7 do
        Mem.store m2 ~st:s (20 + i) (200 + i)
      done;
      Mem.blit m2 ~st:s ~src:20 ~dst:17 ~len:8;
      for i = 0 to 7 do
        Alcotest.(check int)
          (Printf.sprintf "%s bwd-overlap word %d" name i)
          (200 + i)
          (Mem.unsafe_peek m2 (17 + i))
      done;
      (* disjoint ranges still work *)
      let m3 = Mem.create ~backend ~words:64 () in
      for i = 0 to 3 do
        Mem.store m3 ~st:s i (300 + i)
      done;
      Mem.blit m3 ~st:s ~src:0 ~dst:40 ~len:4;
      for i = 0 to 3 do
        Alcotest.(check int)
          (Printf.sprintf "%s disjoint word %d" name i)
          (300 + i)
          (Mem.unsafe_peek m3 (40 + i))
      done)
    backends

let test_cache_filter () =
  let s = st () in
  Alcotest.(check bool) "first touch misses" false (Cxlshm_shmem.Stats.note_line s 7);
  Alcotest.(check bool) "second touch hits" true (Cxlshm_shmem.Stats.note_line s 7);
  (* conflict: same direct-mapped slot *)
  Alcotest.(check bool) "conflicting line evicts" false
    (Cxlshm_shmem.Stats.note_line s (7 + Cxlshm_shmem.Stats.cache_lines));
  Alcotest.(check bool) "original line evicted" false
    (Cxlshm_shmem.Stats.note_line s 7)

let test_latency_table1 () =
  (* The model must reproduce Table 1's ordering and magnitudes. *)
  let seq_l, rand_l, cas_l = Latency.table1_mops Latency.Local_numa in
  let seq_c, rand_c, cas_c = Latency.table1_mops Latency.Cxl in
  Alcotest.(check bool) "seq local > cxl" true (seq_l > seq_c);
  Alcotest.(check bool) "rand local > cxl" true (rand_l > rand_c);
  Alcotest.(check (float 0.1)) "cas flat" cas_l cas_c;
  Alcotest.(check (float 1.0)) "local latency" 110.0
    (Latency.table1_latency_ns Latency.Local_numa);
  Alcotest.(check (float 1.0)) "cxl latency" 390.0
    (Latency.table1_latency_ns Latency.Cxl)

let test_modeled_time_monotone () =
  let s = st () in
  s.Stats.rand_accesses <- 100;
  let local = Stats.modeled_ns (Latency.of_tier Latency.Local_numa) s in
  let cxl = Stats.modeled_ns (Latency.of_tier Latency.Cxl) s in
  Alcotest.(check bool) "cxl slower" true (cxl > local)

(* Exercise *every* Stats counter through real memory traffic, so the
   round-trip checks below cover a counter the moment it exists. The striped
   two-tier pool is what drives the xdev pair. *)
let populated_stats () =
  let m =
    Mem.create ~tier:Latency.Local_numa
      ~backend:
        (Mem.Striped
           {
             devices = 2;
             stripe_words = 8;
             tiers = [| Latency.Local_numa; Latency.Cxl |];
           })
      ~words:256 ()
  in
  let s = st () in
  ignore (Mem.load m ~st:s 0) (* seq *);
  ignore (Mem.load m ~st:s 1) (* seq *);
  ignore (Mem.load m ~st:s 32) (* rand *);
  ignore (Mem.load m ~st:s 3) (* hit *);
  ignore (Mem.cas m ~st:s 5 ~expected:0 ~desired:1) (* cas hit *);
  ignore (Mem.cas m ~st:s 48 ~expected:9 ~desired:1) (* cas cold + failure *);
  Mem.fence m ~st:s;
  Mem.flush m ~st:s 0;
  ignore (Mem.load m ~st:s 8) (* device 1: rand + xdev *);
  (m, s)

let check_all_counters_nonzero s =
  Alcotest.(check bool) "seq populated" true (s.Stats.seq_accesses > 0);
  Alcotest.(check bool) "rand populated" true (s.Stats.rand_accesses > 0);
  Alcotest.(check bool) "hit populated" true (s.Stats.cache_hits > 0);
  Alcotest.(check bool) "cas populated" true (s.Stats.cas_ops > 0);
  Alcotest.(check bool) "cas-hit populated" true (s.Stats.cas_hit_ops > 0);
  Alcotest.(check bool) "cas-fail populated" true (s.Stats.cas_failures > 0);
  Alcotest.(check bool) "fence populated" true (s.Stats.fences > 0);
  Alcotest.(check bool) "flush populated" true (s.Stats.flushes > 0);
  Alcotest.(check bool) "xdev populated" true (s.Stats.xdev_accesses > 0);
  Alcotest.(check bool) "xdev ns populated" true (s.Stats.xdev_ns > 0.0)

let test_stats_add_diff_roundtrip () =
  let m, s = populated_stats () in
  check_all_counters_nonzero s;
  (* acc = 0 + s + s; diff (acc) (s) must reproduce s exactly, counter for
     counter. A counter missed by add or diff breaks one of the checks:
     the per-field equality, the pp rendering, or the modeled total. *)
  let acc = Stats.create () in
  Stats.add acc s;
  Stats.add acc s;
  let d = Stats.diff acc s in
  let fields x =
    [
      x.Stats.cache_hits;
      x.Stats.seq_accesses;
      x.Stats.rand_accesses;
      x.Stats.cas_ops;
      x.Stats.cas_hit_ops;
      x.Stats.cas_failures;
      x.Stats.fences;
      x.Stats.flushes;
      x.Stats.xdev_accesses;
    ]
  in
  Alcotest.(check (list int)) "counters round-trip" (fields s) (fields d);
  Alcotest.(check (float 1e-9)) "xdev ns round-trips" s.Stats.xdev_ns d.Stats.xdev_ns;
  let render x = Format.asprintf "%a" Stats.pp x in
  Alcotest.(check string) "pp round-trips" (render s) (render d);
  let model = Mem.cost_model m in
  Alcotest.(check (float 1e-6)) "modeled time round-trips"
    (Stats.modeled_ns model s) (Stats.modeled_ns model d);
  Alcotest.(check (float 1e-6)) "add doubles modeled time"
    (2.0 *. Stats.modeled_ns model s)
    (Stats.modeled_ns model acc)

let test_stats_copy_independent () =
  let _, s = populated_stats () in
  let c = Stats.copy s in
  (* counters are independent *)
  s.Stats.cache_hits <- s.Stats.cache_hits + 1000;
  Alcotest.(check bool) "counter copy independent" true
    (c.Stats.cache_hits <> s.Stats.cache_hits);
  (* cache_tags is a deep copy: touching a fresh line in the original must
     not make it appear cached in the copy *)
  let line = 4242 in
  Alcotest.(check bool) "line cold in original" false (Stats.note_line s line);
  Alcotest.(check bool) "line still cold in copy" false (Stats.note_line c line);
  (* ... and vice versa, with a line the copy has now cached *)
  Alcotest.(check bool) "copy caches it" true (Stats.note_line c line);
  let line2 = 777 in
  Alcotest.(check bool) "cold in copy" false (Stats.note_line c line2);
  Alcotest.(check bool) "still cold in original" false (Stats.note_line s line2)

let test_striped_roundtrip () =
  (* Odd device count / stripe size / total so the last stripe is partial. *)
  let backend = Mem.Striped { devices = 3; stripe_words = 5; tiers = [||] } in
  let m = Mem.create ~backend ~words:64 () in
  let s = st () in
  Alcotest.(check string) "name" "striped-3x5" (Mem.backend_name m);
  Alcotest.(check int) "devices" 3 (Mem.num_devices m);
  for p = 0 to 63 do
    Mem.store m ~st:s p (1000 + p)
  done;
  for p = 0 to 63 do
    Alcotest.(check int) (Printf.sprintf "word %d" p) (1000 + p)
      (Mem.load m ~st:s p)
  done;
  (* every device serves some address, and the mapping is stripe-periodic *)
  let seen = Array.make 3 false in
  for p = 0 to 63 do
    let d = Mem.device_of m p in
    seen.(d) <- true;
    Alcotest.(check int) "stripe map" (p / 5 mod 3) d
  done;
  Array.iteri
    (fun d hit -> Alcotest.(check bool) (Printf.sprintf "device %d used" d) true hit)
    seen;
  (* snapshots are in global order: restoring into a flat pool matches *)
  let flat = Mem.create ~words:64 () in
  Mem.restore flat (Mem.snapshot m);
  for p = 0 to 63 do
    Alcotest.(check int) "portable image" (1000 + p) (Mem.unsafe_peek flat p)
  done;
  (* Wild_pointer carries the same payload as on the flat backend *)
  (try
     ignore (Mem.load m ~st:s 64);
     Alcotest.fail "expected Wild_pointer"
   with Mem.Wild_pointer { addr; words } ->
     Alcotest.(check int) "addr" 64 addr;
     Alcotest.(check int) "words" 64 words)

let test_counting_backend () =
  let m = Mem.create ~backend:Mem.Counting_fast ~words:32 () in
  let s = st () in
  Alcotest.(check (option int)) "fresh count" (Some 0) (Mem.op_count m);
  Mem.store m ~st:s 4 9;
  Alcotest.(check int) "load back" 9 (Mem.load m ~st:s 4);
  Alcotest.(check bool) "cas ok" true (Mem.cas m ~st:s 4 ~expected:9 ~desired:2);
  Alcotest.(check bool) "cas stale" false
    (Mem.cas m ~st:s 4 ~expected:9 ~desired:3);
  Alcotest.(check int) "fetch_add prev" 2 (Mem.fetch_add m ~st:s 4 5);
  Alcotest.(check (option int)) "exactly 5 raw ops" (Some 5) (Mem.op_count m);
  Alcotest.(check (option int)) "flat has no op count" None
    (Mem.op_count (Mem.create ~words:8 ()))

let test_xdev_latency () =
  (* 2 devices, stripe 8 words: even stripes (addresses 0-7, 16-23, ...) on
     the near Local_numa device, odd stripes on the far CXL device. The same
     access pattern aimed at the far device must cost more modeled time. *)
  let m =
    Mem.create ~tier:Latency.Local_numa
      ~backend:
        (Mem.Striped
           {
             devices = 2;
             stripe_words = 8;
             tiers = [| Latency.Local_numa; Latency.Cxl |];
           })
      ~words:4096 ()
  in
  let run base =
    let s = st () in
    let p = ref base in
    while !p < 4096 do
      ignore (Mem.load m ~st:s !p);
      p := !p + 16 (* stride two lines: every access random, same device *)
    done;
    s
  in
  (* start past line 0: an access to line 0 right after reset would count
     as sequential (last_line starts at -1) *)
  let home = run 32 and far = run 40 in
  Alcotest.(check int) "same rand volume" home.Stats.rand_accesses
    far.Stats.rand_accesses;
  Alcotest.(check int) "home pays no xdev" 0 home.Stats.xdev_accesses;
  Alcotest.(check int) "far is all xdev" far.Stats.rand_accesses
    far.Stats.xdev_accesses;
  let model = Mem.cost_model m in
  let home_ns = Stats.modeled_ns model home
  and far_ns = Stats.modeled_ns model far in
  Alcotest.(check bool) "cross-device access is dearer" true (far_ns > home_ns);
  (* the far accesses are priced exactly at the CXL tier *)
  let cxl = Latency.of_tier Latency.Cxl in
  Alcotest.(check (float 1e-6)) "far = CXL pricing"
    (float_of_int far.Stats.rand_accesses *. cxl.Latency.rand_ns)
    far_ns

(* Property: byte payloads of arbitrary content round-trip. *)
let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"mem bytes roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun payload ->
      let m = Mem.create ~words:64 () in
      let s = st () in
      let b = Bytes.of_string payload in
      Mem.write_bytes m ~st:s 2 b;
      Bytes.to_string (Mem.read_bytes m ~st:s 2 ~len:(Bytes.length b))
      = payload)

(* Property: packing fields never bleeds between them. *)
let prop_word_fields_independent =
  QCheck.Test.make ~name:"word fields independent" ~count:500
    QCheck.(triple (int_bound 1023) (int_bound 0xFFFF) (int_bound 0xFF))
    (fun (a, b, c) ->
      let fa = Word.field ~shift:0 ~bits:10 in
      let fb = Word.field ~shift:10 ~bits:16 in
      let fc = Word.field ~shift:26 ~bits:8 in
      let w = Word.set fc (Word.set fb (Word.set fa 0 a) b) c in
      Word.get fa w = a && Word.get fb w = b && Word.get fc w = c && w >= 0)

(* Real-domain smoke: concurrent CAS from two domains never loses an
   increment. One round only — the interleaving coverage lives in the
   deterministic [test_sched_cas_bump] below. *)
let prop_cas_atomic_across_domains =
  QCheck.Test.make ~name:"cas atomic across domains" ~count:1
    QCheck.(int_range 100 1000)
    (fun n ->
      let m = Mem.create ~words:8 () in
      let bump () =
        let s = st () in
        for _ = 1 to n do
          let rec loop () =
            let v = Mem.load m ~st:s 0 in
            if not (Mem.cas m ~st:s 0 ~expected:v ~desired:(v + 1)) then loop ()
          in
          loop ()
        done
      in
      let d1 = Domain.spawn bump and d2 = Domain.spawn bump in
      Domain.join d1;
      Domain.join d2;
      Mem.load m ~st:(st ()) 0 = 2 * n)

(* Property: blit behaves like memmove for any in-bounds src/dst/len,
   overlapping or not, on every backend. The model is a plain array copy
   through a scratch buffer. *)
let prop_blit_memmove =
  QCheck.Test.make ~name:"blit is memmove for any overlap" ~count:300
    QCheck.(
      pair Generators.blit_spec
        (oneofl
           [
             Mem.Flat;
             Mem.Striped { devices = 3; stripe_words = 5; tiers = [||] };
             Mem.Counting_fast;
           ]))
    (fun ((words, src, dst, len), backend) ->
      let m = Mem.create ~backend ~words () in
      let s = st () in
      for i = 0 to words - 1 do
        Mem.store m ~st:s i (1000 + i)
      done;
      let model = Array.init words (fun i -> 1000 + i) in
      Array.blit model src model dst len;
      Mem.blit m ~st:s ~src ~dst ~len;
      let ok = ref true in
      for i = 0 to words - 1 do
        if Mem.load m ~st:s i <> model.(i) then ok := false
      done;
      !ok)

(* The same lost-increment race as the domain property above, but explored
   deterministically: two cooperative clients interleaved at every word
   access by the model-checking scheduler, across a fixed set of seeded
   schedules. Fails the same way the wall-clock version would if CAS (or
   the load/CAS retry loop) lost an update — without depending on the
   machine's timing. *)
let test_sched_cas_bump () =
  let module Explore = Cxlshm_check.Explore in
  let n = 4 in
  let model =
    {
      Explore.name = "cas-bump";
      make =
        (fun () ->
          let m = Mem.create ~backend:(Mem.Sched Mem.Flat) ~words:8 () in
          let bump () =
            let s = st () in
            for _ = 1 to n do
              let rec loop () =
                let v = Mem.load m ~st:s 0 in
                if not (Mem.cas m ~st:s 0 ~expected:v ~desired:(v + 1)) then
                  loop ()
              in
              loop ()
            done
          in
          let check ~crashed:_ =
            let got = Mem.unsafe_peek m 0 in
            if got <> 2 * n then
              Alcotest.failf "lost increments: %d of %d survived" got (2 * n)
          in
          { Explore.clients = [| bump; bump |]; check });
      branch = (fun _ -> true);
    }
  in
  let r =
    Explore.random ~seed:Generators.seed ~schedules:200 ~crash:false
      ~max_steps:5_000 model
  in
  match r.Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "%s (replay: %s)" f.Explore.reason
        (Cxlshm_check.Schedule.to_string f.Explore.schedule)

let suite =
  [
    Alcotest.test_case "word roundtrip" `Quick test_word_roundtrip;
    Alcotest.test_case "word bounds" `Quick test_word_bounds;
    Alcotest.test_case "mem basic" `Quick test_mem_basic;
    Alcotest.test_case "mem bounds" `Quick test_mem_bounds;
    Alcotest.test_case "mem bytes roundtrip" `Quick test_mem_bytes_roundtrip;
    Alcotest.test_case "fetch_add" `Quick test_fetch_add;
    Alcotest.test_case "stats counting" `Quick test_stats_counting;
    Alcotest.test_case "blit overlap (memmove)" `Quick test_blit_overlap;
    Alcotest.test_case "cache filter" `Quick test_cache_filter;
    Alcotest.test_case "stats add/diff roundtrip" `Quick
      test_stats_add_diff_roundtrip;
    Alcotest.test_case "stats copy independent" `Quick
      test_stats_copy_independent;
    Alcotest.test_case "striped backend roundtrip" `Quick test_striped_roundtrip;
    Alcotest.test_case "counting backend" `Quick test_counting_backend;
    Alcotest.test_case "cross-device latency" `Quick test_xdev_latency;
    Alcotest.test_case "latency table1" `Quick test_latency_table1;
    Alcotest.test_case "modeled time monotone" `Quick test_modeled_time_monotone;
    Generators.to_alcotest prop_bytes_roundtrip;
    Generators.to_alcotest prop_word_fields_independent;
    Generators.to_alcotest prop_cas_atomic_across_domains;
    Generators.to_alcotest prop_blit_memmove;
    Alcotest.test_case "cas bump under the schedule explorer" `Quick
      test_sched_cas_bump;
  ]
