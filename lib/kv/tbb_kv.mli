(** TBB-KV: single-process multi-thread concurrent hash map baseline
    (Fig 10 a/d) in the spirit of [tbb::concurrent_hash_map].

    Runs on local-DRAM latencies with per-bucket spinlocks for writers and
    lock-free reads; multi-writer (no partitioning needed — it is not
    failure resilient and shares nothing across processes). The paper's
    CXL-KV lands within 1.40-2.61× of this. *)

type store
type handle

val name : string

val create : buckets:int -> value_words:int -> capacity:int -> threads:int -> store
val handle : store -> int -> handle
val stats : handle -> Cxlshm_shmem.Stats.t
val tier : store -> Cxlshm_shmem.Latency.tier

val get : handle -> key:int -> int option
val put : handle -> key:int -> value:int -> unit
val delete : handle -> key:int -> bool
