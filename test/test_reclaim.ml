(* §5.3 reclamation: POTENTIAL_LEAKING scans, orphan adoption, deferred
   cross-client frees. *)

open Cxlshm

let setup () =
  let arena = Shm.create ~cfg:Config.small () in
  (arena, Shm.join arena (), Shm.join arena ())

let test_scan_skips_live_blocks () =
  let arena, a, _ = setup () in
  let keep = Shm.cxl_malloc a ~size_bytes:32 () in
  let dead = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.drop dead;
  let svc = Shm.service_ctx arena in
  let seg = Layout.segment_of_addr (Shm.layout arena) (Cxl_ref.obj keep) in
  Segment.mark_leaking svc seg;
  (* a live block in the segment: the full scan must NOT recycle it *)
  Alcotest.(check bool) "not recycled" false (Reclaim.scan_segment svc seg);
  Alcotest.(check bool) "still live" true (Refc.ref_cnt a (Cxl_ref.obj keep) = 1);
  (* after the last reference dies, the scan recycles *)
  Cxl_ref.drop keep;
  Client.declare_failed svc ~cid:a.Ctx.cid;
  Alcotest.(check bool) "recycled when empty" true (Reclaim.scan_segment svc seg)

let test_scan_all_respects_live_owner () =
  let arena, a, _ = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.drop r;
  let svc = Shm.service_ctx arena in
  let seg = Segment.owned_by svc ~cid:a.Ctx.cid |> List.hd in
  Segment.mark_leaking svc seg;
  (* the owner is alive: scan_all must leave its segment alone *)
  Alcotest.(check int) "no recycling under a live owner" 0
    (Reclaim.scan_all svc ~is_client_alive:(fun cid -> cid = a.Ctx.cid));
  (* owner declared dead: now it recycles *)
  Alcotest.(check bool) "recycles once owner is dead" true
    (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false) >= 1)

let test_leaked_block_recovered_via_scan () =
  (* A client dies between the decrement-to-zero and the reclaim: the
     block is off every list with count 0 — only the §5.3 scan gets it. *)
  let arena, a, _ = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:32 () in
  a.Ctx.fault <- Fault.at Fault.Release_before_reclaim ~nth:1;
  (try Cxl_ref.drop r with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "no pending blocks left" 0 v.Validate.pending_scan;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

let test_orphan_adoption () =
  let arena, a, b = setup () in
  (* a allocates, shares with b, then exits cleanly without freeing the
     shared object — its segment is orphaned, not freed *)
  let ra = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.write_word ra 0 777;
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  assert (Transfer.send q ra = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let rb =
    match Transfer.receive qb with
    | Transfer.Received r -> r
    | _ -> Alcotest.fail "recv"
  in
  Transfer.close q;
  Cxl_ref.drop ra;
  let seg = Layout.segment_of_addr (Shm.layout arena) (Cxl_ref.obj rb) in
  Shm.leave a;
  Alcotest.(check bool) "segment orphaned" true
    (Segment.state (Shm.service_ctx arena) seg = Segment.Orphaned);
  (* b adopts the orphan through the allocation slow path *)
  Alcotest.(check bool) "adopted" true (Segment.adopt b seg);
  Alcotest.(check int) "data intact after adoption" 777 (Cxl_ref.read_word rb 0);
  Transfer.close qb;
  Cxl_ref.drop rb

let test_deferred_free_returns_blocks () =
  let arena, a, b = setup () in
  (* b frees a block living in a's segment: it lands on the cross-client
     stack until a's slow path collects it *)
  let ra = Shm.cxl_malloc a ~size_bytes:32 () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  assert (Transfer.send q ra = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let rb = match Transfer.receive qb with Transfer.Received r -> r | _ -> assert false in
  Cxl_ref.drop ra;
  Cxl_ref.drop rb;
  (* block is in a's client_free stack; collect and verify it is reusable *)
  Alloc.collect_deferred a;
  let again = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.drop again;
  Transfer.close q;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_release_rootref_double_raise () =
  let _, a, _ = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:16 () in
  let rr = Cxl_ref.rootref r in
  Cxl_ref.drop r;
  Alcotest.check_raises "double release detected"
    (Refc.Refcount_violation "release_rootref: local count already 0")
    (fun () -> Reclaim.release_rootref a rr)

(* Property: interleaved alloc/free across two clients with shared blocks
   always validates clean after quiesce + scan. *)
let prop_reclaim_clean =
  QCheck.Test.make ~name:"reclaim always clean after quiesce" ~count:30
    QCheck.(list_of_size Gen.(1 -- 60) (int_bound 3))
    (fun ops ->
      let arena, a, b = setup () in
      let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:8 in
      let qb = ref None in
      let mine = ref [] and theirs = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 -> mine := Shm.cxl_malloc a ~size_bytes:24 () :: !mine
          | 1 -> (
              match !mine with
              | r :: rest ->
                  mine := rest;
                  Cxl_ref.drop r
              | [] -> ())
          | 2 -> (
              match !mine with
              | r :: _ -> if Transfer.send q r = Transfer.Sent then () else ()
              | [] -> ())
          | _ -> (
              if !qb = None then qb := Transfer.open_from b ~sender:a.Ctx.cid;
              match !qb with
              | Some queue -> (
                  match Transfer.receive queue with
                  | Transfer.Received r -> theirs := r :: !theirs
                  | Transfer.Empty | Transfer.Drained -> ())
              | None -> ()))
        ops;
      List.iter (fun r -> if Cxl_ref.is_live r then Cxl_ref.drop r) !mine;
      List.iter (fun r -> if Cxl_ref.is_live r then Cxl_ref.drop r) !theirs;
      Transfer.close q;
      (* the receiver must close its end too or the directory keeps the
         queue alive (by design) *)
      (if !qb = None then qb := Transfer.open_from b ~sender:a.Ctx.cid);
      (match !qb with Some queue -> Transfer.close queue | None -> ());
      Alloc.collect_deferred a;
      Alloc.collect_deferred b;
      ignore (Shm.scan_leaking arena);
      let v = Shm.validate arena in
      Validate.is_clean v && v.Validate.live_objects = 0)

let suite =
  [
    Alcotest.test_case "scan skips live blocks" `Quick test_scan_skips_live_blocks;
    Alcotest.test_case "scan_all respects live owner" `Quick test_scan_all_respects_live_owner;
    Alcotest.test_case "leaked block via scan" `Quick test_leaked_block_recovered_via_scan;
    Alcotest.test_case "orphan adoption" `Quick test_orphan_adoption;
    Alcotest.test_case "deferred free returns blocks" `Quick test_deferred_free_returns_blocks;
    Alcotest.test_case "double rootref release raises" `Quick test_release_rootref_double_raise;
    Generators.to_alcotest prop_reclaim_clean;
  ]
