(* CXL-MapReduce vs sequential oracle and the Phoenix baseline. *)

open Cxlshm
module Mr = Cxlshm_mapreduce.Cxl_mapreduce
module Mr_job = Cxlshm_mapreduce.Mr_job
module Phoenix = Cxlshm_mapreduce.Phoenix
module Textgen = Cxlshm_mapreduce.Textgen

let mr_cfg =
  {
    Config.default with
    Config.num_segments = 128;
    pages_per_segment = 8;
    page_words = 512;
    max_clients = 16;
  }

let sequential_wordcount chunks =
  let job = Mr_job.wordcount ~vocab:max_int in
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun c ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace tbl k (v + (try Hashtbl.find tbl k with Not_found -> 0)))
        (job.Mr_job.map c))
    chunks;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let test_textgen () =
  let corpus = Textgen.generate ~words:500 ~vocab:50 ~seed:1 in
  let tokens = String.split_on_char ' ' corpus in
  Alcotest.(check int) "word count" 500 (List.length tokens);
  List.iter
    (fun t -> Alcotest.(check bool) ("token " ^ t) true (t.[0] = 'w'))
    tokens;
  let chunks = Textgen.chunks corpus ~chunk_bytes:256 in
  Alcotest.(check bool) "several chunks" true (List.length chunks > 1);
  (* No token is split across chunks: re-joining gives the same corpus. *)
  Alcotest.(check string) "chunks rejoin" corpus (String.concat " " chunks)

let test_phoenix_wordcount () =
  let corpus = Textgen.generate ~words:2_000 ~vocab:100 ~seed:2 in
  let chunks = List.map Bytes.of_string (Textgen.chunks corpus ~chunk_bytes:512) in
  let expected = sequential_wordcount chunks in
  let got = Phoenix.run ~executors:4 ~chunks ~job:(Mr_job.wordcount ~vocab:max_int) in
  Alcotest.(check (list (pair int int))) "phoenix = oracle" expected got

let test_cxl_wordcount () =
  let arena = Shm.create ~cfg:mr_cfg () in
  let master = Shm.join arena () in
  let corpus = Textgen.generate ~words:2_000 ~vocab:100 ~seed:3 in
  let raw = List.map Bytes.of_string (Textgen.chunks corpus ~chunk_bytes:512) in
  let expected = sequential_wordcount raw in
  let session = Mr.start ~arena ~master ~executors:3 in
  let chunks = List.map (Mr.store_chunk master) raw in
  let got = Mr.wordcount session ~chunks ~vocab:200 in
  Mr.stop session;
  Alcotest.(check (list (pair int int))) "cxl-mapreduce = oracle" expected got;
  List.iter Cxl_ref.drop chunks;
  Shm.leave master;
  (* All executor clients left cleanly; reap leftover queue state. *)
  let svc = Shm.service_ctx arena in
  for cid = 0 to mr_cfg.Config.max_clients - 1 do
    if Client.status svc ~cid <> Client.Slot_free then begin
      Client.declare_failed svc ~cid;
      ignore (Recovery.recover svc ~failed_cid:cid)
    end
  done;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

let test_kmeans_points_roundtrip () =
  let points = Array.init 20 (fun i -> Array.init 4 (fun d -> (i * 10) + d)) in
  let decoded = Mr_job.decode_points (Mr_job.encode_points points) ~dims:4 in
  Alcotest.(check bool) "points roundtrip" true (points = decoded)

let test_cxl_kmeans_converges () =
  let arena = Shm.create ~cfg:mr_cfg () in
  let master = Shm.join arena () in
  (* Two well-separated clusters in 2-D. *)
  let rng = Random.State.make [| 9 |] in
  let points =
    Array.init 200 (fun i ->
        let cx = if i mod 2 = 0 then 10_000 else 90_000 in
        Array.init 2 (fun _ -> cx + Random.State.int rng 1000))
  in
  let chunk_pts n = Array.sub points (n * 50) 50 in
  let raw = List.init 4 (fun n -> Mr_job.encode_points (chunk_pts n)) in
  let session = Mr.start ~arena ~master ~executors:2 in
  let chunks = List.map (Mr.store_chunk master) raw in
  let centroids = Mr.kmeans session ~chunks ~k:2 ~dims:2 ~iters:20 in
  Mr.stop session;
  List.iter Cxl_ref.drop chunks;
  let sorted = Array.copy centroids in
  Array.sort compare sorted;
  Alcotest.(check bool)
    (Printf.sprintf "centroid 0 near 10500 (got %d)" sorted.(0).(0))
    true
    (abs (sorted.(0).(0) - 10_500) < 1_500);
  Alcotest.(check bool)
    (Printf.sprintf "centroid 1 near 90500 (got %d)" sorted.(1).(0))
    true
    (abs (sorted.(1).(0) - 90_500) < 1_500)

let test_phoenix_kmeans_matches () =
  (* One iteration of the assign step must agree between Phoenix and the
     sequential oracle. *)
  let centroids = [| [| 0; 0 |]; [| 100; 100 |] |] in
  let points = Array.init 40 (fun i -> [| i * 5; i * 5 |]) in
  let job = Mr_job.kmeans_assign ~centroids ~dims:2 in
  let chunks =
    [ Mr_job.encode_points (Array.sub points 0 20);
      Mr_job.encode_points (Array.sub points 20 20) ]
  in
  let seq =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun c ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace tbl k (v + (try Hashtbl.find tbl k with Not_found -> 0)))
          (job.Mr_job.map c))
      chunks;
    List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) tbl [])
  in
  let par = Phoenix.run ~executors:2 ~chunks ~job in
  Alcotest.(check (list (pair int int))) "phoenix kmeans = oracle" seq par

let suite =
  [
    Alcotest.test_case "textgen" `Quick test_textgen;
    Alcotest.test_case "phoenix wordcount" `Quick test_phoenix_wordcount;
    Alcotest.test_case "cxl wordcount" `Quick test_cxl_wordcount;
    Alcotest.test_case "kmeans points roundtrip" `Quick test_kmeans_points_roundtrip;
    Alcotest.test_case "cxl kmeans converges" `Quick test_cxl_kmeans_converges;
    Alcotest.test_case "phoenix kmeans = oracle" `Quick test_phoenix_kmeans_matches;
  ]
