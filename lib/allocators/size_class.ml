(** Shared size-class arithmetic for the segment/page-based baselines. *)

let min_block_words = 2
let num_classes ~page_words =
  let rec count n sz = if sz > page_words then n else count (n + 1) (sz * 2) in
  count 0 min_block_words

let block_words c = min_block_words lsl c

let class_of_bytes ~page_words size_bytes =
  let words = max 1 ((size_bytes + 7) / 8) in
  let rec find c =
    if block_words c > page_words then
      invalid_arg "Size_class.class_of_bytes: too large"
    else if block_words c >= words then c
    else find (c + 1)
  in
  ignore (num_classes ~page_words);
  find 0
