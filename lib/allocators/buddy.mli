(** Lock-based buddy allocator — Lightning's memory manager (§4.2, Fig 10).

    Lightning [Zhuo et al., VLDB'22] manages its object store with "a simple
    lock-based buddy system"; the paper attributes the one-to-three
    orders-of-magnitude throughput gap between Lightning and CXL-KV largely
    to it. All operations run under a single global spinlock, so every
    memory event lands in {!serial_stats} and serialises across threads. *)

include Alloc_intf.S
