(* Shared-everything KV with writer failover (§2.2.2, §6.4).

   Two writer clients own disjoint key partitions; a reader client reads
   the whole store directly. Writer 0 dies mid-operation; the recovery
   service repairs the pool without blocking anyone, and writer 1 takes
   over the orphaned partition with a single CAS — no data moves.

   Run: dune exec examples/kv_cluster.exe *)

open Cxlshm
module Kv = Cxlshm_kv.Cxl_kv

let () =
  let arena = Shm.create () in
  let w0 = Shm.join arena () in
  let w1 = Shm.join arena () in
  let reader = Shm.join arena () in

  let store, h0 = Kv.create w0 ~buckets:256 ~partitions:2 ~value_words:2 in
  let h1 = Kv.open_store w1 store in
  let hr = Kv.open_store reader store in
  assert (Kv.claim_partition h0 0);
  assert (Kv.claim_partition h1 1);

  (* each writer populates its own partition *)
  for k = 0 to 99 do
    let h = if Kv.partition_of_key store k = 0 then h0 else h1 in
    Kv.put h ~key:k ~value:(1000 + k)
  done;
  Printf.printf "store holds %d records\n" (Kv.size_estimate hr);

  (* the reader reads everything, regardless of who wrote it *)
  assert (Kv.get hr ~key:13 = Some 1013);
  assert (Kv.get hr ~key:42 = Some 1042);
  print_endline "reader sees both partitions (shared-everything)";

  (* writer 0 crashes mid-put: the fault plan kills it right after the
     commit CAS of a refcount transaction *)
  w0.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
  (try Kv.put h0 ~key:14 ~value:9999 with Fault.Crashed p ->
    Printf.printf "writer 0 crashed at %s\n" p);

  (* recovery is asynchronous and non-blocking: the reader keeps reading
     while it runs *)
  Client.declare_failed (Shm.service_ctx arena) ~cid:w0.Ctx.cid;
  assert (Kv.get hr ~key:42 = Some 1042);
  let report = Shm.recover arena ~failed_cid:w0.Ctx.cid in
  Format.printf "recovery: %a@." Recovery.pp_report report;
  assert (Kv.get hr ~key:13 = Some 1013);
  print_endline "data survived the writer crash";

  (* writer 1 takes over partition 0 — one CAS, no data transfer *)
  assert (Kv.takeover_partition h1 0);
  Kv.put h1 ~key:14 ~value:7777;
  Printf.printf "after takeover, key 14 = %d\n"
    (Option.get (Kv.get hr ~key:14));

  (* tidy shutdown *)
  Kv.close h1;
  Kv.close hr;
  Shm.leave w1;
  Shm.leave reader;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  assert (Validate.is_clean v);
  print_endline "kv_cluster OK"
