open Cxlshm

type client = { ctx : Ctx.t; req : Transfer.t (* client → server *) }

type server = {
  sctx : Ctx.t;
  client_cid : int;
  mutable sreq : Transfer.t option;  (** opened lazily once the client connects *)
}

let connect ctx ~server_cid ~capacity =
  { ctx; req = Transfer.connect ctx ~receiver:server_cid ~capacity }

let accept sctx ~client_cid ~capacity =
  ignore capacity;
  { sctx; client_cid; sreq = None }

let rec server_req s =
  match s.sreq with
  | Some q -> q
  | None -> (
      match Transfer.open_from s.sctx ~sender:s.client_cid with
      | Some q ->
          s.sreq <- Some q;
          q
      | None ->
          Domain.cpu_relax ();
          server_req s)

type pending = { msg : Cxl_ref.t; output : Cxl_ref.t }

let send_retry q r =
  let rec go () =
    match Transfer.send q r with
    | Transfer.Sent -> true
    | Transfer.Full ->
        Domain.cpu_relax ();
        go ()
    | Transfer.Closed -> false
  in
  go ()

let call_async c ~func ~args ~output_bytes =
  let output = Shm.cxl_malloc c.ctx ~size_bytes:output_bytes () in
  let msg = Message.build c.ctx ~func ~args ~output in
  if not (send_retry c.req msg) then begin
    Cxl_ref.drop msg;
    Cxl_ref.drop output;
    failwith "Cxl_rpc.call: server closed"
  end;
  (* We keep our reference to the message: its status word is the
     completion channel the client polls. *)
  { msg; output }

let is_done p = Message.status (Message.view_of_ref p.msg) <> 0

let finish_now p =
  (* Dropping the message releases its embedded references to the
     arguments and the output; we still hold our own handles. *)
  Cxl_ref.drop p.msg;
  p.output

let try_finish p = if is_done p then Some (finish_now p) else None

let rec finish p =
  if is_done p then finish_now p
  else begin
    Domain.cpu_relax ();
    finish p
  end

let call c ~func ~args ~output_bytes = finish (call_async c ~func ~args ~output_bytes)

type handler = func:int -> args:Message.view list -> output:Message.view -> unit

let serve_one s ~handler =
  match Transfer.receive (server_req s) with
  | Transfer.Received msg ->
      let v = Message.view_of_ref msg in
      let n = Message.nargs v in
      let args = List.init n (Message.arg v) in
      handler ~func:(Message.func v) ~args ~output:(Message.output v);
      (* Publish the in-place results, then drop the server's reference. *)
      Ctx.fence s.sctx;
      Message.set_status v 1;
      Cxl_ref.drop msg;
      true
  | Transfer.Empty | Transfer.Drained -> false

let serve_until s ~handler ~stop =
  while not (Atomic.get stop) do
    if not (serve_one s ~handler) then Domain.cpu_relax ()
  done

let close_client c = Transfer.close c.req

let close_server s =
  match s.sreq with Some q -> Transfer.close q | None -> ()
