(** Live segment evacuation off degraded devices.

    When device faults escalate ({!Ctx.mark_degraded}), the data already on
    the device is still readable but no longer trusted. Evacuation drains it
    under traffic: per live object, attach a {e guard} RootRef (the count can
    no longer race to zero), allocate a replacement through the placement
    ladder (which steers off degraded devices), copy the payload, re-point
    every holder with §5.4 ChangeRef transactions, then release the guard —
    the old block's count falls to zero and it is reclaimed normally.

    Crash-resumability: the guard and the replacement's bootstrap RootRef
    are ordinary rootrefs of the evacuator's client slot, and every
    re-pointing is an era transaction, so an evacuator crash at any point
    (see [Fault.Evac_*]) is cleaned by standard client recovery: both blocks
    keep consistent counts. Object {e identity} survives too: the re-point
    phase runs under a persistent migration journal
    ({!Layout.hdr_evac_from}/[to]/[guard]), so the next sweep re-points the
    remaining holders at the {e same} replacement instead of cloning a
    second copy and splitting the holders between two blocks.

    Sweeps are serialised by a claim word ({!Layout.hdr_evac_claim}):
    monitor-side sweeps, client relocations and direct {!evacuate_obj}
    calls never interleave re-point phases; a claim whose holder died is
    broken by the next claimant after draining the journal.

    The single-writer caveat: ChangeRef rewrites holder reference {e words},
    so the evacuator must not race the holder's own writes to those exact
    words. Live owners therefore relocate their own RootRefs
    ({!relocate_own}); the monitor-side sweep ({!run}) moves data blocks —
    whose embedded slots are quiescent unless the application is actively
    rewriting that specific object's graph — and leaves in-use RootRefs of
    live owners in place (reported as pinned). *)

module Pptr = Cxlshm_shmem.Pptr

type outcome =
  | Moved of Pptr.t  (** the replacement object *)
  | Pinned of string  (** held by a queue/root directory; not movable here *)
  | Dead  (** count reached zero before the guard attached *)
  | No_space  (** nothing healthy claimable for the replacement *)
  | Busy  (** another live evacuator holds the sweep claim; retry later *)

type report = {
  mutable moved : int;
  mutable pinned : int;
  mutable dead : int;
  mutable no_space : int;
  mutable busy : int;
  mutable moved_rootrefs : int;
  mutable remapped : (Pptr.t * Pptr.t) list;
      (** [(old_rr, new_rr)] pairs from {!relocate_own}; the application
          patches its CXLRef handles with these. *)
  mutable drained_segments : int;
  mutable recycled_segments : int;
  mutable errors : string list;
}

val empty_report : unit -> report
val pp_report : Format.formatter -> report -> unit

val evacuate_obj : Ctx.t -> obj:Pptr.t -> outcome
(** Move one live object off its current segment through the guard
    protocol above. The destination is wherever the allocator's placement
    ladder lands — callers invoke this for objects on degraded devices, and
    the ladder avoids those. *)

val live_segments_on : Ctx.t -> dev:int -> int list
(** Non-free segments on [dev] still holding at least one live block (a
    data block with a positive count, an in-use RootRef, or a live huge
    run). The evacuation goal is making this list empty. *)

val run : mem:Cxlshm_shmem.Mem.t -> lay:Layout.t -> report
(** Monitor-side sweep: register a fresh client slot (so a crash mid-sweep
    is recovered like any client death), move every live data block off
    every degraded device, recycle segments drained empty, unregister.
    In-use RootRefs of live owners are left (pinned); dead owners' RootRefs
    belong to recovery. No-op when no device is degraded. *)

val relocate_own : Ctx.t -> report
(** Client-side relocation: flush parked retirements, steer the allocator's
    cursors off degraded devices, move the client's own live objects, then
    move its RootRef blocks (count-neutral {!Refc.move}, redo-covered) and
    release emptied segments. Returns the RootRef remap list in
    [remapped] — existing [Cxl_ref] handles alias the old addresses and
    must be patched by the caller. *)
