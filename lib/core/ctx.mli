(** Per-client execution context.

    A [Ctx.t] bundles what every core operation needs: the shared arena, the
    layout, the client id, the client's {!Cxlshm_shmem.Stats} accumulator and
    its fault-injection plan. It is the OCaml-heap ("local memory") half of a
    client — everything that is lost when the client crashes. *)

type t = {
  mem : Cxlshm_shmem.Mem.t;
  lay : Layout.t;
  cid : int;
  home_dev : int;
      (** The client's home device in the pool ([cid mod num_devices]) —
          segment claims prefer segments served by it before spilling. *)
  st : Cxlshm_shmem.Stats.t;
  mutable fault : Fault.plan;
  mutable retry : Retry.policy;
      (** retry/backoff budget for transient device faults; defaults to
          {!Retry.default_policy}, set {!Retry.no_retry} to fail fast *)
  rng : Random.State.t;  (** client-local randomness (segment probing) *)
  mutable trace_on : bool;
      (** observability switch, seeded from [Config.trace]; when off every
          {!Trace.with_span} is a single branch *)
  hists : Cxlshm_shmem.Histogram.t array;
      (** per-op latency histograms (local memory), indexed by
          {!Cxlshm_shmem.Histogram.op_index}; fed by spans when tracing *)
}

val make : mem:Cxlshm_shmem.Mem.t -> lay:Layout.t -> cid:int -> t

val cfg : t -> Config.t

(** {1 Degraded devices}

    Escalated device faults set the device's bit in a shared arena-header
    bitmap ({!Layout.hdr_dev_degraded}); segment claims steer away from
    degraded devices and the monitor reports them. Cleared when the pool is
    serviced ({!clear_degraded}). *)

val device_degraded : t -> int -> bool
val degraded_devices : t -> int list
val mark_degraded : t -> int -> unit
val clear_degraded : t -> unit

val with_retries : t -> ((unit -> unit) -> 'a) -> 'a
(** Run a section under this context's retry policy (see
    {!Retry.with_retries}); escalations mark the faulting device degraded
    in the shared bitmap. The section receives the commit marker and must
    call it once its effects are visible to other clients — retries never
    cross a commit point. *)

(** {1 Shared-memory shorthands} (attributed to this client's stats)

    Each primitive is a single word operation with no interior commit
    point, so it is re-issued under the context's retry policy when the
    device faults transiently; persistent faults and exhausted budgets
    escalate as {!Cxlshm_shmem.Mem.Device_error}. *)

val load : t -> Cxlshm_shmem.Pptr.t -> int
val store : t -> Cxlshm_shmem.Pptr.t -> int -> unit
val cas : t -> Cxlshm_shmem.Pptr.t -> expected:int -> desired:int -> bool
val fetch_add : t -> Cxlshm_shmem.Pptr.t -> int -> int
val fence : t -> unit
val flush : t -> Cxlshm_shmem.Pptr.t -> unit
val crash_point : t -> Fault.point -> unit
