(* Baseline allocators: correctness (no overlap, reuse), Ralloc recovery,
   buddy coalescing. *)

module Stats = Cxlshm_shmem.Stats

module Check (A : Cxlshm_allocators.Alloc_intf.S) = struct
  (* Allocate a batch, write distinct patterns, verify none overlap. *)
  let no_overlap ~words ~count ~size () =
    let a = A.create ~words ~threads:2 in
    let th = A.thread a 0 in
    let blocks = Array.init count (fun _ -> A.alloc th ~size_bytes:size) in
    Array.iteri (fun i b -> A.write_word th b 0 (1000 + i)) blocks;
    Array.iteri
      (fun i b ->
        Alcotest.(check int)
          (Printf.sprintf "%s block %d pattern" A.name i)
          (1000 + i) (A.read_word th b 0))
      blocks;
    Array.iter (fun b -> A.free th b) blocks

  let reuse ~words () =
    let a = A.create ~words ~threads:1 in
    let th = A.thread a 0 in
    (* Churn far more than the arena holds: frees must recycle. *)
    for i = 1 to 20_000 do
      let b = A.alloc th ~size_bytes:64 in
      A.write_word th b 0 i;
      A.free th b
    done

  let cases ~words =
    [
      Alcotest.test_case (A.name ^ " no overlap") `Quick
        (no_overlap ~words ~count:100 ~size:64);
      Alcotest.test_case (A.name ^ " reuse") `Quick (reuse ~words);
    ]
end

module M = Check (Cxlshm_allocators.Local_mimalloc)
module J = Check (Cxlshm_allocators.Local_jemalloc)
module R = Check (Cxlshm_allocators.Ralloc)
module B = Check (Cxlshm_allocators.Buddy)

let test_ralloc_recovery () =
  let module R = Cxlshm_allocators.Ralloc in
  let a = R.create ~words:200_000 ~threads:1 in
  let th = R.thread a 0 in
  (* A root object pointing at a child; plus garbage that must be swept. *)
  (* Zero whole payloads: freshly carved blocks contain stale free-chain
     pointers, which a conservative scan would (legitimately) retain. *)
  let zero b = for w = 0 to 7 do R.write_word th b w 0 done in
  let root = R.alloc th ~size_bytes:64 in
  let child = R.alloc th ~size_bytes:64 in
  zero root;
  zero child;
  R.write_word th root 0 child;
  R.set_root th root;
  let garbage = List.init 200 (fun _ -> R.alloc th ~size_bytes:64) in
  List.iter zero garbage;
  (* crash: nothing freed; recover *)
  let st = Stats.create () in
  let live, swept = R.recover a ~st in
  Alcotest.(check int) "two blocks reachable" 2 live;
  Alcotest.(check bool) "garbage swept" true (swept >= 200);
  (* The sweep visits every carved block (heap-proportional), unlike
     CXL-SHM's recovery which visits only the dead client's RootRefs. *)
  Alcotest.(check bool) "recovery cost is heap-proportional" true
    (R.words_scanned a > 200);
  (* allocator still usable; swept blocks recycle *)
  let b = R.alloc th ~size_bytes:64 in
  R.write_word th b 0 42;
  Alcotest.(check int) "usable after recovery" 42 (R.read_word th b 0)

let test_buddy_coalesce () =
  let module B = Cxlshm_allocators.Buddy in
  let a = B.create ~words:8_192 ~threads:1 in
  let th = B.thread a 0 in
  (* Fill the heap with small blocks, free all, then a maximal block must
     fit again — proving buddies re-merge. *)
  let rec grab acc =
    match B.alloc th ~size_bytes:64 with
    | b -> grab (b :: acc)
    | exception Out_of_memory -> acc
  in
  let all = grab [] in
  Alcotest.(check bool) "heap was filled" true (List.length all > 10);
  List.iter (fun b -> B.free th b) all;
  let big = B.alloc th ~size_bytes:(8 * 1024) in
  B.write_word th big 0 7;
  Alcotest.(check int) "merged big block" 7 (B.read_word th big 0);
  B.free th big

let test_buddy_double_free_detected () =
  let module B = Cxlshm_allocators.Buddy in
  let a = B.create ~words:4_096 ~threads:1 in
  let th = B.thread a 0 in
  let b = B.alloc th ~size_bytes:64 in
  B.free th b;
  Alcotest.check_raises "double free" (Invalid_argument "Buddy.free: double free")
    (fun () -> B.free th b)

let test_buddy_serialises () =
  let module B = Cxlshm_allocators.Buddy in
  let a = B.create ~words:16_384 ~threads:2 in
  let per = 200 in
  let body tid () =
    let th = B.thread a tid in
    for _ = 1 to per do
      let b = B.alloc th ~size_bytes:64 in
      B.free th b
    done
  in
  let d = Domain.spawn (body 1) in
  body 0 ();
  Domain.join d;
  let s = B.serial_stats a in
  Alcotest.(check bool) "all traffic serialised" true
    (Stats.total_accesses s > 2 * per)

let test_variable_sizes_all () =
  (* Cross-allocator: mixed sizes roundtrip their payloads. *)
  let check (module A : Cxlshm_allocators.Alloc_intf.S) =
    let a = A.create ~words:300_000 ~threads:1 in
    let th = A.thread a 0 in
    let sizes = [ 8; 16; 64; 100; 200; 400 ] in
    let blocks = List.map (fun s -> (s, A.alloc th ~size_bytes:s)) sizes in
    List.iteri (fun i (_, b) -> A.write_word th b 0 i) blocks;
    List.iteri
      (fun i (s, b) ->
        Alcotest.(check int)
          (Printf.sprintf "%s size %d" A.name s)
          i (A.read_word th b 0))
      blocks;
    List.iter (fun (_, b) -> A.free th b) blocks
  in
  List.iter check
    [
      (module Cxlshm_allocators.Local_mimalloc);
      (module Cxlshm_allocators.Local_jemalloc);
      (module Cxlshm_allocators.Ralloc);
      (module Cxlshm_allocators.Buddy);
    ]

let suite =
  M.cases ~words:300_000 @ J.cases ~words:300_000 @ R.cases ~words:300_000
  @ B.cases ~words:65_536
  @ [
      Alcotest.test_case "ralloc STW recovery" `Quick test_ralloc_recovery;
      Alcotest.test_case "buddy coalesce" `Quick test_buddy_coalesce;
      Alcotest.test_case "buddy double free" `Quick test_buddy_double_free_detected;
      Alcotest.test_case "buddy serialises" `Quick test_buddy_serialises;
      Alcotest.test_case "variable sizes (all)" `Quick test_variable_sizes_all;
    ]
