(** Allocation paths of CXL-SHM (§5.1).

    The fast path preserves mimalloc's no-cross-thread-synchronisation
    property: a client allocates from pages of segments it owns exclusively,
    so only plain loads/stores plus one fence and one flush are needed. The
    four §5.1 steps run in a strict order so every crash window is
    recoverable:

    + allocate a RootRef from a dedicated RootRef page, set [in_use];
    + link: write the data block's address into the RootRef (plus the CLWB
      of the RootRef cache line), then a fence;
    + advance the page's free pointer;
    + initialise the CXLObj header (ref_cnt = 1) — no CAS needed, the block
      is invisible to other clients until its reference is shared.

    The slow path claims pages and segments (CAS on the segment vector) and
    drains cross-client free stacks. Objects too large for any size class
    take the huge path: a run of contiguous segments claimed with
    retry-and-rollback. *)

exception Out_of_shared_memory

val data_words_for : Config.t -> size_bytes:int -> emb_cnt:int -> int
(** Payload words for an object with [emb_cnt] embedded reference slots
    followed by [size_bytes] of byte data. *)

val alloc_obj :
  Ctx.t -> data_words:int -> emb_cnt:int -> Cxlshm_shmem.Pptr.t * Cxlshm_shmem.Pptr.t
(** [(rootref, obj)] — a fresh CXLObj with ref_cnt 1, linked from a fresh
    in-use RootRef with local count 1. Raises {!Out_of_shared_memory}. *)

val alloc_rootref : Ctx.t -> Cxlshm_shmem.Pptr.t
(** A fresh unlinked RootRef (in_use, local count 1, null pptr) — used by
    the receive path (§5.2), which links it with an era transaction. *)

val free_rootref : Ctx.t -> Cxlshm_shmem.Pptr.t -> unit
(** Return a RootRef block to its page (owner or cross-client). *)

val free_obj_block : Ctx.t -> Cxlshm_shmem.Pptr.t -> unit
(** Reclaim a data block whose ref_cnt reached zero: zero its header and
    push it to the page free list (owner) or the segment's cross-client
    stack. Huge objects release their segment run instead. *)

val collect_deferred : Ctx.t -> unit
(** Drain the cross-client free stacks of this client's segments back into
    their pages (slow-path housekeeping). *)

val is_huge : Ctx.t -> Cxlshm_shmem.Pptr.t -> bool
val huge_span : Ctx.t -> head_seg:int -> int
(** Number of segments occupied by the huge object headed at [head_seg]. *)

val huge_data_words : Ctx.t -> Cxlshm_shmem.Pptr.t -> int
(** True payload word count of a huge object, from the head page's
    [page_aux2] slot — the packed meta word saturates at
    {!Obj_header.max_meta_data_words} and must not be trusted for sizes
    beyond it. Falls back to the meta word for pre-[page_aux2] images. *)

val obj_page : Ctx.t -> Cxlshm_shmem.Pptr.t -> int
(** Global page id of the page containing an object. *)

val segment_device : Ctx.t -> int -> int
(** Pool device serving a segment (the device of its base word) — the
    segment→device map SegmentAllocationVec claims use to prefer the
    client's home device before spilling. *)
