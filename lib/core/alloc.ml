exception Out_of_shared_memory

module Histogram = Cxlshm_shmem.Histogram

let data_words_for _cfg ~size_bytes ~emb_cnt =
  if size_bytes < 0 || emb_cnt < 0 then
    invalid_arg "Alloc.data_words_for: negative size";
  emb_cnt + Cxlshm_shmem.Mem.bytes_words size_bytes

(* ------------------------------------------------------------------ *)
(* Current-page table                                                  *)
(* ------------------------------------------------------------------ *)

(* Kind-table index: size class c at index c, RootRef class at index NC.
   Reads are served from the client-local cache tier (a client's heads have
   no other live mutator); writes go through shared memory. *)
let current_page ctx idx =
  let v = Ctx.load_class_head ctx idx in
  if v = 0 then None else Some (v - 1)

let set_current_page ctx idx gid = Ctx.store_class_head ctx idx (gid + 1)

(* ------------------------------------------------------------------ *)
(* Slow path: segments and pages                                       *)
(* ------------------------------------------------------------------ *)

let segment_device = Ctx.segment_device

let claim_any_segment (ctx : Ctx.t) =
  let n = (Ctx.cfg ctx).Config.num_segments in
  (* Randomised start index spreads concurrent claimers apart. *)
  let start = Random.State.int ctx.rng n in
  (* On a multi-device pool, prefer fresh segments served by the client's
     home device before spilling to remote devices; adopting orphans stays
     the last resort on every topology. Devices marked degraded (escalated
     faults, see Ctx) are avoided until nothing else is claimable — a
     degraded device still works, it just isn't trusted with new data. *)
  let any_degraded = Ctx.degraded_devices ctx <> [] in
  let passes =
    if Cxlshm_shmem.Mem.num_devices ctx.Ctx.mem > 1 then
      if any_degraded then [ `Home_healthy; `Healthy; `Any; `Adopt ]
      else [ `Home; `Any; `Adopt ]
    else [ `Any; `Adopt ]
  in
  let try_pass pass =
    let rec go k =
      if k >= n then None
      else
        let s = (start + k) mod n in
        let healthy () = not (Ctx.device_degraded ctx (segment_device ctx s)) in
        let ok =
          match pass with
          | `Home ->
              segment_device ctx s = ctx.Ctx.home_dev && Segment.claim ctx s
          | `Home_healthy ->
              segment_device ctx s = ctx.Ctx.home_dev
              && healthy () && Segment.claim ctx s
          | `Healthy -> healthy () && Segment.claim ctx s
          | `Any -> Segment.claim ctx s
          | `Adopt -> Segment.adopt ctx s
        in
        if ok then Some s else go (k + 1)
    in
    go 0
  in
  match List.find_map try_pass passes with
  | Some s ->
      Ctx.crash_point ctx Fault.Slowpath_after_segment_claim;
      Ctx.store_cur_segment ctx (s + 1);
      Some s
  | None -> None

let find_unused_page ctx seg =
  let pps = (Ctx.cfg ctx).Config.pages_per_segment in
  let rec go p =
    if p >= pps then None
    else
      let gid = Layout.page_gid ctx.Ctx.lay ~seg ~page:p in
      if Page.kind ctx ~gid = Config.kind_unused then Some gid else go (p + 1)
  in
  go 0

let init_page_for ctx ~kind ~block_words gid =
  Page.init ctx ~gid ~kind ~block_words;
  Ctx.crash_point ctx Fault.Slowpath_after_page_claim

let collect_deferred (ctx : Ctx.t) =
  let drain seg =
    let blocks = Segment.pop_all_client_free ctx ~seg in
    List.iter
      (fun b ->
        (* A push racing the segment's release can strand an entry from the
           previous lifetime; its page has been reset, so drop it — the
           block died with that lifetime. *)
        match Page.block_of_addr ctx b with
        | exception Invalid_argument _ -> ()
        | _, gid ->
            let cfg = Ctx.cfg ctx in
            let rootref = Page.kind ctx ~gid = Config.kind_rootref cfg in
            Page.push_free ctx ~gid ~rootref b)
      blocks
  in
  List.iter drain (Segment.owned_by ctx ~cid:ctx.cid)

(* A client keeps allocating from segments it owns even after one of them
   was marked POTENTIAL_LEAKING (the marking only gates recycling, §5.3). *)
let usable_state = function
  | Segment.Active | Segment.Leaking -> true
  | Segment.Free | Segment.Orphaned | Segment.Huge_head | Segment.Huge_cont ->
      false

(* Find (or make) a page of [kind] with free blocks and make it current.
   When any device is degraded, placement runs [strict] first: only pages
   on healthy devices qualify. The segment-claim ladder alone cannot steer
   a client that already owns a page with free blocks on a degraded device
   — reuse would keep landing fresh data on untrusted media. Degraded
   pages become acceptable only once nothing healthy is claimable
   anywhere. *)
let rec ensure_page_at (ctx : Ctx.t) ~strict ~idx ~kind ~block_words ~fuel =
  if fuel = 0 then raise Out_of_shared_memory;
  let seg_ok s =
    (* Channel sub-heap discipline first (a hard placement rule), then the
       degraded-device steering (a preference [strict] can drop). *)
    Ctx.seg_allowed ctx s
    && ((not strict) || not (Ctx.device_degraded ctx (segment_device ctx s)))
  in
  match current_page ctx idx with
  | Some gid
    when Page.kind ctx ~gid = kind
         && Page.free_head ctx ~gid <> 0
         && seg_ok (fst (Layout.page_of_gid ctx.lay gid)) ->
      gid
  | _ -> (
      (* Scan owned segments for a usable page of this kind. *)
      let owned = Segment.owned_by ctx ~cid:ctx.cid in
      let usable gid = Page.kind ctx ~gid = kind && Page.free_head ctx ~gid <> 0 in
      let pps = (Ctx.cfg ctx).Config.pages_per_segment in
      let scan_usable () =
        List.find_map
          (fun seg ->
            let rec go p =
              if p >= pps then None
              else
                let gid = Layout.page_gid ctx.lay ~seg ~page:p in
                if
                  usable_state (Segment.state ctx seg)
                  && seg_ok seg && usable gid
                then Some gid
                else go (p + 1)
            in
            go 0)
          owned
      in
      match scan_usable () with
      | Some gid ->
          set_current_page ctx idx gid;
          gid
      | None -> (
          (* Drain deferred frees, which may refill a page. *)
          collect_deferred ctx;
          match scan_usable () with
          | Some gid ->
              set_current_page ctx idx gid;
              gid
          | None -> (
              (* Fresh page in an owned segment, else claim a segment. *)
              let fresh =
                List.find_map
                  (fun seg ->
                    if usable_state (Segment.state ctx seg) && seg_ok seg then
                      find_unused_page ctx seg
                    else None)
                  owned
              in
              match fresh with
              | Some gid ->
                  init_page_for ctx ~kind ~block_words gid;
                  set_current_page ctx idx gid;
                  gid
              | None when Ctx.pin_active ctx ->
                  (* A pinned allocation never claims new segments: the
                     channel sub-heap is a fixed set, and exhausting it is
                     the caller's out-of-memory, not a license to grow. *)
                  if strict then
                    ensure_page_at ctx ~strict:false ~idx ~kind ~block_words
                      ~fuel:(fuel - 1)
                  else raise Out_of_shared_memory
              | None -> (
                  match claim_any_segment ctx with
                  | Some s when seg_ok s ->
                      ensure_page_at ctx ~strict ~idx ~kind ~block_words
                        ~fuel:(fuel - 1)
                  | Some _ ->
                      (* The ladder spilled onto a degraded device: nothing
                         healthy is claimable, so degraded pages are the
                         last resort after all. *)
                      ensure_page_at ctx ~strict:false ~idx ~kind ~block_words
                        ~fuel:(fuel - 1)
                  | None ->
                      if strict then
                        ensure_page_at ctx ~strict:false ~idx ~kind
                          ~block_words ~fuel:(fuel - 1)
                      else raise Out_of_shared_memory))))

let ensure_page (ctx : Ctx.t) ~idx ~kind ~block_words ~fuel =
  ensure_page_at ctx
    ~strict:(Ctx.any_degraded_hint ctx)
    ~idx ~kind ~block_words ~fuel

(* ------------------------------------------------------------------ *)
(* RootRef allocation (§5.1 step 1)                                    *)
(* ------------------------------------------------------------------ *)

let alloc_rootref (ctx : Ctx.t) =
  Trace.with_span ctx Histogram.Rootref @@ fun () ->
  let cfg = Ctx.cfg ctx in
  let kind = Config.kind_rootref cfg in
  let idx = Layout.(ctx.lay.num_classes) in
  let gid =
    ensure_page ctx ~idx ~kind ~block_words:Config.rootref_words
      ~fuel:(cfg.Config.num_segments + 1)
  in
  let rr = Page.free_head ctx ~gid in
  assert (rr <> 0);
  let next = Ctx.load ctx (rr + 1) in
  (* in_use is set while the block is still the list head; if we die before
     advancing, recovery sees an in_use list head and simply clears it.
     That guard is state-based — it needs no ordering — so epoch mode
     elides the fence (the retirement batch boundary is the path's only
     ordering point). *)
  Rootref.set_state ctx rr ~in_use:true ~cnt:1;
  if not (Ctx.epoch_enabled ctx) then Ctx.fence ctx;
  Page.set_free_head ctx ~gid next;
  Ctx.store ctx (rr + 1) 0;
  Page.incr_used ctx ~gid;
  rr

let free_rootref (ctx : Ctx.t) rr =
  Rootref.set_state ctx rr ~in_use:false ~cnt:0;
  let _, gid = Page.block_of_addr ctx rr in
  let seg = Layout.segment_of_addr ctx.lay rr in
  if Segment.owner ctx seg = Some ctx.cid then
    Page.push_free ctx ~gid ~rootref:true rr
  else Segment.push_client_free ctx ~seg rr

(* ------------------------------------------------------------------ *)
(* Huge objects: contiguous segment runs with retry-and-rollback       *)
(* ------------------------------------------------------------------ *)

let segs_needed (ctx : Ctx.t) total_words =
  let lay = ctx.lay in
  let head_capacity = lay.Layout.segment_words - lay.Layout.seg_hdr_words in
  if total_words <= head_capacity then 1
  else
    1
    + ((total_words - head_capacity + lay.Layout.segment_words - 1)
       / lay.Layout.segment_words)

let claim_huge_run (ctx : Ctx.t) n =
  let num = (Ctx.cfg ctx).Config.num_segments in
  if n > num then None
  else begin
    let starts = num - n + 1 in
    (* Same discipline as [claim_any_segment]: a randomised start keeps
       concurrent huge allocators from colliding at the arena head, and the
       pass order prefers runs on the client's home device and off degraded
       devices before taking anything claimable. (No adopt pass — orphaned
       segments hold live blocks and can never join a fresh run.) *)
    let start = Random.State.int ctx.rng starts in
    let any_degraded = Ctx.degraded_devices ctx <> [] in
    let passes =
      if Cxlshm_shmem.Mem.num_devices ctx.Ctx.mem > 1 then
        if any_degraded then [ `Home_healthy; `Healthy; `Any ]
        else [ `Home; `Any ]
      else [ `Any ]
    in
    let healthy head =
      let rec go k =
        k >= n
        || ((not (Ctx.device_degraded ctx (segment_device ctx (head + k))))
           && go (k + 1))
      in
      go 0
    in
    let run_ok pass head =
      match pass with
      | `Home -> segment_device ctx head = ctx.Ctx.home_dev
      | `Home_healthy ->
          segment_device ctx head = ctx.Ctx.home_dev && healthy head
      | `Healthy -> healthy head
      | `Any -> true
    in
    let try_candidate head =
      let rec grab k =
        if k >= n then n
        else if Segment.claim ctx (head + k) then grab (k + 1)
        else k
      in
      let got = grab 0 in
      got = n
      ||
      begin
        (* rollback the prefix we won *)
        for k = 0 to got - 1 do
          Segment.release ctx (head + k)
        done;
        false
      end
    in
    let try_pass pass =
      let rec go i =
        if i >= starts then None
        else
          let head = (start + i) mod starts in
          if run_ok pass head && try_candidate head then Some head
          else go (i + 1)
      in
      go 0
    in
    List.find_map try_pass passes
  end

let alloc_huge (ctx : Ctx.t) ~data_words ~emb_cnt =
  let total = Config.header_words + data_words in
  let n = segs_needed ctx total in
  match claim_huge_run ctx n with
  | None -> raise Out_of_shared_memory
  | Some head ->
      let lay = ctx.Ctx.lay in
      Segment.set_state ctx head Segment.Huge_head;
      for k = 1 to n - 1 do
        Segment.set_state ctx (head + k) Segment.Huge_cont
      done;
      let pps = (Ctx.cfg ctx).Config.pages_per_segment in
      let kind = Config.kind_huge (Ctx.cfg ctx) in
      for p = 0 to pps - 1 do
        let gid = Layout.page_gid lay ~seg:head ~page:p in
        Ctx.store_pm ctx ~gid ~slot:0 (Layout.page_kind lay ~gid) kind;
        Ctx.store_pm ctx ~gid ~slot:3 (Layout.page_free lay ~gid) 0;
        Ctx.store_pm ctx ~gid ~slot:2 (Layout.page_capacity lay ~gid)
          (if p = 0 then 1 else 0);
        Ctx.store_pm ctx ~gid ~slot:4 (Layout.page_used lay ~gid)
          (if p = 0 then 1 else 0);
        Ctx.store_pm ctx ~gid ~slot:1 (Layout.page_block_words lay ~gid)
          (if p = 0 then total else 0);
        Ctx.store ctx (Layout.page_aux lay ~gid) (if p = 0 then n else 0);
        (* The meta word's data_words field is narrower than a maximal run,
           so the head page records the true length in its second spare
           slot; readers go through [huge_data_words]. *)
        Ctx.store ctx (Layout.page_aux2 lay ~gid) (if p = 0 then data_words else 0)
      done;
      let obj = Layout.segment_base lay head + lay.Layout.seg_hdr_words in
      Ctx.store ctx (Obj_header.meta_of_obj obj)
        (Obj_header.pack_meta ~kind ~emb_cnt
           ~data_words:(min data_words Obj_header.max_meta_data_words));
      for i = 0 to emb_cnt - 1 do
        Ctx.store ctx (Obj_header.emb_slot obj i) 0
      done;
      obj

let is_huge (ctx : Ctx.t) obj =
  let seg = Layout.segment_of_addr ctx.lay obj in
  match Segment.state ctx seg with
  | Segment.Huge_head | Segment.Huge_cont -> true
  | Segment.Free | Segment.Active | Segment.Orphaned | Segment.Leaking ->
      (* A leaking huge head keeps its page kind. *)
      let gid = Layout.page_gid ctx.lay ~seg ~page:0 in
      Page.kind ctx ~gid = Config.kind_huge (Ctx.cfg ctx)

let huge_span (ctx : Ctx.t) ~head_seg =
  let gid = Layout.page_gid ctx.Ctx.lay ~seg:head_seg ~page:0 in
  Ctx.load ctx (Layout.page_aux ctx.Ctx.lay ~gid)

let huge_data_words (ctx : Ctx.t) obj =
  let head = Layout.segment_of_addr ctx.Ctx.lay obj in
  let gid = Layout.page_gid ctx.Ctx.lay ~seg:head ~page:0 in
  let true_dw = Ctx.load ctx (Layout.page_aux2 ctx.Ctx.lay ~gid) in
  if true_dw > 0 then true_dw
  else
    (* Pre-[page_aux2] image (or a repaired one): the packed field is all
       we have. *)
    Obj_header.meta_data_words (Ctx.load ctx (Obj_header.meta_of_obj obj))

let free_huge (ctx : Ctx.t) obj =
  let head = Layout.segment_of_addr ctx.Ctx.lay obj in
  let n = huge_span ctx ~head_seg:head in
  (* Tail-first: continuation segments go back to the arena while the head
     metadata (page kind + span) still sizes the run, so a crash anywhere
     in this loop leaves a run that Recovery/Fsck can finish releasing. The
     head — the only segment the rest of the run is discoverable from — is
     wiped and released last. *)
  for k = n - 1 downto 1 do
    Segment.release ctx (head + k);
    Ctx.crash_point ctx Fault.Free_huge_mid_release
  done;
  let pps = (Ctx.cfg ctx).Config.pages_per_segment in
  for p = 0 to pps - 1 do
    Page.reset ctx ~gid:(Layout.page_gid ctx.Ctx.lay ~seg:head ~page:p)
  done;
  Ctx.crash_point ctx Fault.Free_huge_after_reset;
  Segment.release ctx head

(* ------------------------------------------------------------------ *)
(* Object allocation (§5.1 steps 2-4)                                  *)
(* ------------------------------------------------------------------ *)

(* The RootRef-line flush and the link/advance fence are elided in epoch
   mode: allocation-crash recovery is state-based (the §5.1 free-pointer
   guard, the in_use-at-free-head check) and the retirement batch boundary
   is the path's single ordering + durability point — the same trade the
   [eadr] knob makes, argued in docs/ALGORITHM.md §9. *)
let rr_flush_elided (ctx : Ctx.t) =
  (Ctx.cfg ctx).Config.eadr || Ctx.epoch_enabled ctx

let link_and_carve (ctx : Ctx.t) rr ~idx ~kind ~block_words ~data_words ~emb_cnt =
  let cfg = Ctx.cfg ctx in
  (* Sharded fast path: when the current page can't serve the class, steal
     a parked block from the domain stacks before paying the page scan. *)
  let from_shard =
    (* Under a channel pin the domain stacks are off-limits: a stolen block
       could live in any segment, and the message must stay in-channel. *)
    if Shard.enabled ctx && not (Ctx.pin_active ctx) then
      let ready =
        match current_page ctx idx with
        | Some gid -> Page.kind ctx ~gid = kind && Page.free_head ctx ~gid <> 0
        | None -> false
      in
      if ready then None
      else
        match Config.class_of_kind cfg kind with
        | Some cls -> Shard.pop ctx ~cls
        | None -> None
    else None
  in
  match from_shard with
  | Some blk ->
      (* The block came off a domain stack, not a page chain: no free
         pointer to advance, no used count to bump (the non-owner free
         that parked it never decremented [used]). The stamp stays set
         until the header makes the block live, so it pins its segment
         against recycling at every instant (see Shard). *)
      Ctx.store ctx (Rootref.pptr_slot rr) blk;
      if not (rr_flush_elided ctx) then Ctx.flush ctx rr;
      Ctx.crash_point ctx Fault.Alloc_after_link;
      if not (Ctx.epoch_enabled ctx) then Ctx.fence ctx;
      Ctx.store ctx
        (Obj_header.header_of_obj blk)
        (Obj_header.pack { Obj_header.lcid = None; lera = 0; ref_cnt = 1 });
      Ctx.store ctx (Obj_header.meta_of_obj blk)
        (Obj_header.pack_meta ~kind ~emb_cnt ~data_words);
      for i = 0 to emb_cnt - 1 do
        Ctx.store ctx (Obj_header.emb_slot blk i) 0
      done;
      Shard.clear_stamp ctx blk;
      Ctx.crash_point ctx Fault.Alloc_after_header;
      blk
  | None ->
  let gid =
    ensure_page ctx ~idx ~kind ~block_words ~fuel:(cfg.Config.num_segments + 1)
  in
  let blk = Page.free_head ctx ~gid in
  assert (blk <> 0);
  let next = Ctx.load ctx (blk + Config.header_words) in
  (* Step 2: link first — the RootRef must reach the block before the free
     pointer moves, else a crash leaks the block (§5.1). The CLWB of the
     RootRef line is the flush Fig 7 attributes 27-50% of the fast path to. *)
  Ctx.store ctx (Rootref.pptr_slot rr) blk;
  if not (rr_flush_elided ctx) then Ctx.flush ctx rr;
  Ctx.crash_point ctx Fault.Alloc_after_link;
  if not (Ctx.epoch_enabled ctx) then Ctx.fence ctx;
  (* Step 3: advance the thread-exclusive free pointer. *)
  Page.set_free_head ctx ~gid next;
  Page.incr_used ctx ~gid;
  Ctx.crash_point ctx Fault.Alloc_after_advance;
  (* Step 4: initialise the object. No CAS: the block is still private. *)
  Ctx.store ctx (Obj_header.meta_of_obj blk)
    (Obj_header.pack_meta ~kind ~emb_cnt ~data_words);
  for i = 0 to emb_cnt - 1 do
    Ctx.store ctx (Obj_header.emb_slot blk i) 0
  done;
  (* lcid/lera stay "never touched": writing the current era here would
     make Condition 1 spuriously true for an uncommitted transaction whose
     redo record happens to target this fresh object. Allocation crashes
     are covered by the §5.1 free-pointer guard instead. *)
  Ctx.store ctx
    (Obj_header.header_of_obj blk)
    (Obj_header.pack { Obj_header.lcid = None; lera = 0; ref_cnt = 1 });
  Ctx.crash_point ctx Fault.Alloc_after_header;
  blk

let alloc_obj (ctx : Ctx.t) ~data_words ~emb_cnt =
  if emb_cnt > data_words then
    invalid_arg "Alloc.alloc_obj: emb_cnt exceeds data_words";
  let cfg = Ctx.cfg ctx in
  let cls = Config.class_of_data_words cfg data_words in
  let op =
    match cls with
    | Some _ -> Histogram.Alloc_small
    | None -> Histogram.Alloc_huge
  in
  Trace.with_span ctx op @@ fun () ->
  let rr = alloc_rootref ctx in
  Ctx.crash_point ctx Fault.Alloc_after_rootref;
  match cls with
  | Some c ->
      let obj =
        link_and_carve ctx rr ~idx:c ~kind:(Config.kind_of_class c)
          ~block_words:(Config.class_block_words cfg c)
          ~data_words ~emb_cnt
      in
      (rr, obj)
  | None ->
      if Ctx.pin_active ctx then
        (* Huge objects claim whole segment runs — they can never live
           inside a fixed channel sub-heap. *)
        raise Out_of_shared_memory;
      let obj = alloc_huge ctx ~data_words ~emb_cnt in
      Ctx.store ctx (Rootref.pptr_slot rr) obj;
      if not (rr_flush_elided ctx) then Ctx.flush ctx rr;
      Ctx.crash_point ctx Fault.Alloc_after_link;
      if not (Ctx.epoch_enabled ctx) then Ctx.fence ctx;
      Ctx.store ctx
        (Obj_header.header_of_obj obj)
        (Obj_header.pack { Obj_header.lcid = None; lera = 0; ref_cnt = 1 });
      Ctx.crash_point ctx Fault.Alloc_after_header;
      (rr, obj)

let obj_page (ctx : Ctx.t) obj = snd (Page.block_of_addr ctx obj)

let free_obj_block (ctx : Ctx.t) obj =
  if is_huge ctx obj then free_huge ctx obj
  else
    match Page.block_of_addr ctx obj with
    | exception Invalid_argument _ ->
        (* The segment was recovered out from under this free: every block
           in it was already count-zero (ours included, the detach landed
           before we got here), so the whole page went back with the
           segment — nothing left to give back. *)
        ()
    | blk, gid ->
    assert (blk = obj);
    let seg = Layout.segment_of_addr ctx.lay blk in
    let ver = Segment.version ctx seg in
    (* Zero the header so scans and reuse observe count 0. *)
    Ctx.store ctx (Obj_header.header_of_obj blk) 0;
    Ctx.store ctx (Obj_header.meta_of_obj blk) 0;
    Ctx.crash_point ctx Fault.Release_mid_reclaim;
    if Segment.version ctx seg <> ver then
      (* Segment recycled between the zeroing and the list push (recovery
         saw all counts at zero): the block died with the old lifetime, and
         pushing it would seed the next lifetime's free list with a stale
         pointer. *)
      ()
    else if Segment.owner ctx seg = Some ctx.cid then
      Page.push_free ctx ~gid ~rootref:false blk
    else
      (* Non-owner free: park class blocks on the domain shard for any
         allocator to steal; other kinds keep the per-segment stack the
         owner drains. Channel sub-heap blocks (excluded segments) also
         keep the per-segment stack — parking them on a global shard would
         let a third client carve private objects out of the channel. *)
      match Config.class_of_kind (Ctx.cfg ctx) (Page.kind ctx ~gid) with
      | Some cls when Shard.enabled ctx && not (Ctx.segment_excluded ctx seg)
        ->
          Shard.push ctx ~cls blk
      | Some _ | None -> Segment.push_client_free ctx ~seg blk
