(* SPSC ring: FIFO order, capacity, cross-domain safety. *)

open Cxlshm_shmem
module Spsc = Cxlshm_spsc.Spsc_queue

let test_fifo () =
  let mem = Mem.create ~words:64 () in
  let st = Stats.create () in
  let q = Spsc.create mem ~st ~base:8 ~capacity:4 in
  Alcotest.(check bool) "push 1" true (Spsc.try_push q ~st 10);
  Alcotest.(check bool) "push 2" true (Spsc.try_push q ~st 20);
  Alcotest.(check (option int)) "pop 1" (Some 10) (Spsc.try_pop q ~st);
  Alcotest.(check bool) "push 3" true (Spsc.try_push q ~st 30);
  Alcotest.(check (option int)) "pop 2" (Some 20) (Spsc.try_pop q ~st);
  Alcotest.(check (option int)) "pop 3" (Some 30) (Spsc.try_pop q ~st);
  Alcotest.(check (option int)) "empty" None (Spsc.try_pop q ~st)

let test_capacity () =
  let mem = Mem.create ~words:64 () in
  let st = Stats.create () in
  let q = Spsc.create mem ~st ~base:8 ~capacity:2 in
  Alcotest.(check bool) "1" true (Spsc.try_push q ~st 1);
  Alcotest.(check bool) "2" true (Spsc.try_push q ~st 2);
  Alcotest.(check bool) "full" false (Spsc.try_push q ~st 3);
  ignore (Spsc.try_pop q ~st);
  Alcotest.(check bool) "room again" true (Spsc.try_push q ~st 3)

let test_attach () =
  let mem = Mem.create ~words:64 () in
  let st = Stats.create () in
  let _q = Spsc.create mem ~st ~base:8 ~capacity:4 in
  let q2 = Spsc.attach mem ~st ~base:8 in
  Alcotest.(check int) "capacity via attach" 4 (Spsc.capacity q2);
  Alcotest.check_raises "attach elsewhere fails"
    (Invalid_argument "Spsc_queue.attach: no queue at this address") (fun () ->
      ignore (Spsc.attach mem ~st ~base:32))

let test_cross_domain () =
  let mem = Mem.create ~words:128 () in
  let st0 = Stats.create () in
  let q = Spsc.create mem ~st:st0 ~base:8 ~capacity:8 in
  let n = 50_000 in
  let producer =
    Domain.spawn (fun () ->
        let st = Stats.create () in
        let q = Spsc.attach mem ~st ~base:8 in
        for i = 1 to n do
          Spsc.push q ~st i
        done)
  in
  let sum = ref 0 in
  let st = Stats.create () in
  for _ = 1 to n do
    sum := !sum + Spsc.pop q ~st
  done;
  Domain.join producer;
  Alcotest.(check int) "all values, in total" (n * (n + 1) / 2) !sum

(* Property: any push/pop interleaving from one thread behaves like a
   FIFO. *)
let prop_fifo_model =
  QCheck.Test.make ~name:"spsc matches queue model" ~count:200
    QCheck.(list (pair bool (int_bound 1000)))
    (fun ops ->
      let mem = Mem.create ~words:128 () in
      let st = Stats.create () in
      let q = Spsc.create mem ~st ~base:8 ~capacity:8 in
      let model = Queue.create () in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            let ok = Spsc.try_push q ~st v in
            let model_ok = Queue.length model < 8 in
            if model_ok then Queue.push v model;
            ok = model_ok
          end
          else
            match (Spsc.try_pop q ~st, Queue.take_opt model) with
            | Some a, Some b -> a = b
            | None, None -> true
            | Some _, None | None, Some _ -> false)
        ops)

let suite =
  [
    Alcotest.test_case "fifo" `Quick test_fifo;
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "attach" `Quick test_attach;
    Alcotest.test_case "cross-domain" `Quick test_cross_domain;
    QCheck_alcotest.to_alcotest prop_fifo_model;
  ]
