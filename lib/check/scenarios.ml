(* The built-in models: small concurrent protocols whose every interleaving
   (and every crash point) the explorer can enumerate, each paired with the
   oracle that must hold afterwards.

   Model sizing is deliberate: exhaustive search cost is roughly
   C(branch points, preemptions) x clients^preemptions x crash positions,
   so the defaults keep the branch-point count small — the SPSC model
   branches at every word access of a tiny ring, the arena models branch at
   labeled crash points and explicit poll yields (the paper's critical
   windows), which is where the protocols' ordering decisions live. *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Spsc = Cxlshm_spsc.Spsc_queue

let fail fmt = Printf.ksprintf failwith fmt

(* [1; 2; ...; m] consecutive-prefix oracle: FIFO queues may lose a suffix
   to a crash but must never reorder, duplicate, or skip. *)
let check_prefix ~what ~complete ~total got =
  List.iteri
    (fun i v ->
      if v <> i + 1 then
        fail "%s: position %d holds %d, want %d (reorder/dup/loss)" what i v
          (i + 1))
    got;
  if complete && List.length got <> total then
    fail "%s: received %d of %d with no crash" what (List.length got) total

(* ---- spsc: the raw ring, every access a branch point ---- *)

let spsc ?(capacity = 2) ?(values = 3) () : Explore.model =
  let make () =
    let words = Spsc.words_needed ~capacity + 8 in
    let mem = Mem.create ~backend:(Mem.Sched Mem.Flat) ~words () in
    let st_setup = Stats.create () in
    let q = Spsc.create mem ~st:st_setup ~base:0 ~capacity in
    let popped = ref [] in
    let producer_alive = ref true and consumer_alive = ref true in
    let producer () =
      Fun.protect ~finally:(fun () -> producer_alive := false) @@ fun () ->
      let st = Stats.create () in
      try
        for v = 1 to values do
          while not (Spsc.try_push q ~st v) do
            Sched.yield "push-full";
            if not !consumer_alive then raise Exit
          done
        done
      with Exit -> ()
    in
    let consumer () =
      Fun.protect ~finally:(fun () -> consumer_alive := false) @@ fun () ->
      let st = Stats.create () in
      let got = ref 0 in
      let looping = ref true in
      while !looping do
        match Spsc.try_pop q ~st with
        | Some v ->
            popped := v :: !popped;
            incr got;
            if !got = values then looping := false
        | None ->
            if (not !producer_alive) && Spsc.length q ~st = 0 then
              looping := false
            else Sched.yield "pop-empty"
      done
    in
    let check ~crashed =
      let got = List.rev !popped in
      check_prefix ~what:"spsc" ~complete:(crashed = []) ~total:values got;
      let head = Mem.unsafe_peek mem 2 and tail = Mem.unsafe_peek mem 3 in
      if head > tail then fail "spsc: head %d ahead of tail %d" head tail;
      if tail - head > capacity then
        fail "spsc: %d in flight exceeds capacity %d" (tail - head) capacity;
      (* head only advances on pops; a consumer crash can consume without
         recording, so the recorded list is a lower bound *)
      if head < List.length got then
        fail "spsc: popped %d values but head is %d" (List.length got) head
    in
    { Explore.clients = [| producer; consumer |]; check }
  in
  { Explore.name = "spsc"; make; branch = (fun _ -> true) }

(* ---- shared bits of the arena models ---- *)

let arena_cfg = { Config.small with backend = Mem.Sched Mem.Flat }

(* Post-run oracle for full-arena models: recover every crashed client the
   way the monitor would, then require a leak-free, count-consistent,
   fsck-clean pool and a causally-sane era matrix. *)
let arena_check arena ~cids ~crashed =
  let svc = Shm.service_ctx arena in
  List.iter
    (fun idx ->
      let cid = cids.(idx) in
      Client.declare_failed svc ~cid;
      ignore (Shm.recover arena ~failed_cid:cid))
    crashed;
  ignore (Shm.scan_leaking arena);
  (* Era causality: nobody can have observed an era a client never reached. *)
  let everyone = 0 :: Array.to_list cids in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          let seen = Era.read svc ~i ~j and self = Era.self_of svc ~cid:j in
          if seen > self then
            fail "era: Era[%d][%d]=%d exceeds Era[%d][%d]=%d" i j seen j j self)
        everyone)
    everyone;
  let detail v =
    Format.asprintf "%a%s" Validate.pp v
      (match v.Validate.errors with
      | [] -> ""
      | es -> " [" ^ String.concat "; " es ^ "]")
  in
  let v = Shm.validate arena in
  if not (Validate.is_clean v) then fail "validate: %s" (detail v);
  let f = Fsck.check (Shm.mem arena) (Shm.layout arena) in
  if not (Validate.is_clean f) then fail "fsck: %s" (detail f)

let arena_branch = function
  | Sched.Crash_point _ | Sched.Label _ -> true
  | Sched.Access _ -> false

(* ---- transfer: exactly-once reference handoff through the ring ---- *)

let transfer ?(capacity = 1) ?(values = 2) ?(batched = false) () :
    Explore.model =
  let name = if batched then "transfer-batch" else "transfer" in
  let make () =
    let arena = Shm.create ~cfg:arena_cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    (* endpoint setup is part of the environment, not the explored race *)
    let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity in
    let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
    let received = ref [] in
    let a_alive = ref true and b_alive = ref true in
    let sender_single () =
      try
        for v = 1 to values do
          let r = Shm.cxl_malloc a ~size_bytes:8 () in
          Cxl_ref.write_word r 0 v;
          let rec go () =
            match Transfer.send q r with
            | Transfer.Sent -> ()
            | Transfer.Full ->
                if !b_alive then begin
                  Sched.yield "send-full";
                  go ()
                end
                else raise Exit
            | Transfer.Closed -> raise Exit
          in
          let sent = (try go (); true with Exit -> Cxl_ref.drop r; false) in
          if not sent then raise Exit;
          Cxl_ref.drop r
        done
      with Exit -> ()
    in
    (* Batched variant: the whole run is published through [send_batch],
       retrying the unsent suffix when the ring is full — exercising every
       crash window of the single-commit-point batch publish. *)
    let sender_batched () =
      let refs =
        List.init values (fun i ->
            let r = Shm.cxl_malloc a ~size_bytes:8 () in
            Cxl_ref.write_word r 0 (i + 1);
            r)
      in
      let rec go rest =
        match rest with
        | [] -> ()
        | _ -> (
            let n, res = Transfer.send_batch q rest in
            let rest = List.filteri (fun i _ -> i >= n) rest in
            match res with
            | Transfer.Sent -> go rest
            | Transfer.Full ->
                if !b_alive then begin
                  Sched.yield "send-full";
                  go rest
                end
                else raise Exit
            | Transfer.Closed -> raise Exit)
      in
      let ok = (try go refs; true with Exit -> false) in
      List.iter Cxl_ref.drop refs;
      ignore ok
    in
    let sender () =
      Fun.protect ~finally:(fun () -> a_alive := false) @@ fun () ->
      if batched then sender_batched () else sender_single ()
    in
    let record r =
      received := Cxl_ref.read_word r 0 :: !received;
      Cxl_ref.drop r
    in
    let receiver () =
      Fun.protect ~finally:(fun () -> b_alive := false) @@ fun () ->
      try
        let got = ref 0 in
        while !got < values do
          if batched then
            match Transfer.receive_batch qb ~max:values with
            | Transfer.Received_batch rs ->
                got := !got + List.length rs;
                List.iter record rs
            | Transfer.Batch_empty ->
                if !a_alive then Sched.yield "recv-empty" else raise Exit
            | Transfer.Batch_drained -> raise Exit
          else
            match Transfer.receive qb with
            | Transfer.Received r ->
                incr got;
                record r
            | Transfer.Empty ->
                if !a_alive then Sched.yield "recv-empty" else raise Exit
            | Transfer.Drained -> raise Exit
        done
      with Exit -> ()
    in
    let check ~crashed =
      check_prefix ~what:name ~complete:(crashed = []) ~total:values
        (List.rev !received);
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| sender; receiver |]; check }
  in
  { Explore.name = name; make; branch = arena_branch }

(* ---- refc: era refcount transactions + allocator contention ---- *)

let refc ?(rounds = 2) () : Explore.model =
  let make () =
    let arena = Shm.create ~cfg:arena_cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    (* Each client churns its own two-object graph: allocate a parent with
       an embedded slot, link a child (era attach), unlink it (era detach +
       reclaim), release both. Both clients hammer the shared allocator
       (segment/page claims) and advance eras concurrently; a crash lands in
       any labeled window of alloc / txn / release / reclaim. *)
    let client ctx () =
      for _ = 1 to rounds do
        let parent = Shm.cxl_malloc ctx ~size_bytes:8 ~emb_cnt:1 () in
        let child = Shm.cxl_malloc ctx ~size_bytes:8 () in
        Cxl_ref.write_word child 0 7;
        Cxl_ref.set_emb parent 0 child;
        Cxl_ref.drop child;
        Cxl_ref.clear_emb parent 0;
        Cxl_ref.drop parent
      done
    in
    let check ~crashed =
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| client a; client b |]; check }
  in
  { Explore.name = "refc"; make; branch = arena_branch }

(* ---- huge: multi-segment object lifecycle under crashes ---- *)

let huge ?(rounds = 1) () : Explore.model =
  let make () =
    let arena = Shm.create ~cfg:arena_cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    (* Each object spans two segments (data_words = segment_words always
       overflows the head segment's capacity), so every free walks the
       tail-first release protocol through its [Free_huge_mid_release] /
       [Free_huge_after_reset] crash windows while the peer races claims
       on the same small segment pool. *)
    let span_words = (Shm.layout arena).Layout.segment_words in
    let client ctx () =
      for i = 1 to rounds do
        let r = Shm.cxl_malloc_words ctx ~data_words:span_words () in
        Cxl_ref.write_word r 0 i;
        Cxl_ref.write_word r (span_words - 1) (i * 7);
        if Cxl_ref.read_word r 0 <> i then fail "huge: head word corrupted";
        Cxl_ref.drop r
      done
    in
    let check ~crashed =
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| client a; client b |]; check }
  in
  { Explore.name = "huge"; make; branch = arena_branch }

(* ---- epoch-retire: batched rootref retirement through the journal ---- *)

let epoch_retire ?(rounds = 2) () : Explore.model =
  let make () =
    (* Batch of 2: every round parks exactly two retirements (child drop +
       parent drop), so each round seals and replays one journal batch —
       the explorer branches at [Retire_after_seal] / [Retire_mid_batch] /
       [Retire_after_batch] and a crash leaves a sealed journal for
       [Recovery.recover_journal] to finish against the current era. *)
    let cfg = { arena_cfg with Config.epoch_batch = 2 } in
    let arena = Shm.create ~cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    let client ctx () =
      for _ = 1 to rounds do
        let parent = Shm.cxl_malloc ctx ~size_bytes:8 ~emb_cnt:1 () in
        let child = Shm.cxl_malloc ctx ~size_bytes:8 () in
        Cxl_ref.write_word child 0 7;
        Cxl_ref.set_emb parent 0 child;
        Cxl_ref.drop child;
        Cxl_ref.clear_emb parent 0;
        Cxl_ref.drop parent
      done
    in
    let check ~crashed =
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| client a; client b |]; check }
  in
  { Explore.name = "epoch-retire"; make; branch = arena_branch }

(* ---- sharded-alloc: domain free stacks under cross-client frees ---- *)

let sharded_alloc ?(values = 2) () : Explore.model =
  let make () =
    (* Three clients, two domains (cids 1,2,3 -> domains 1,0,1): [a] sends
       its blocks to [b], whose drop is a non-owner free that parks them on
       domain 0's shard stack; [b]'s own fresh allocations pop the local
       domain, while [c] (domain 1, empty) must CAS-steal from domain 0.
       Crashes land between push, pop, and the header write that unpins the
       stolen block — the stamp must keep the donor segment unrecycled
       throughout. *)
    let cfg = { arena_cfg with Config.num_domains = 2 } in
    let arena = Shm.create ~cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    let c = Shm.join arena () in
    let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:1 in
    let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
    let received = ref [] in
    let a_alive = ref true and b_alive = ref true in
    let sender () =
      Fun.protect ~finally:(fun () -> a_alive := false) @@ fun () ->
      try
        for v = 1 to values do
          let r = Shm.cxl_malloc a ~size_bytes:8 () in
          Cxl_ref.write_word r 0 v;
          let rec go () =
            match Transfer.send q r with
            | Transfer.Sent -> ()
            | Transfer.Full ->
                if !b_alive then begin
                  Sched.yield "send-full";
                  go ()
                end
                else raise Exit
            | Transfer.Closed -> raise Exit
          in
          let sent = (try go (); true with Exit -> Cxl_ref.drop r; false) in
          if not sent then raise Exit;
          Cxl_ref.drop r
        done
      with Exit -> ()
    in
    let receiver () =
      Fun.protect ~finally:(fun () -> b_alive := false) @@ fun () ->
      try
        let got = ref 0 in
        while !got < values do
          match Transfer.receive qb with
          | Transfer.Received r ->
              incr got;
              received := Cxl_ref.read_word r 0 :: !received;
              (* Non-owner free: parks the block on domain 0's stack. *)
              Cxl_ref.drop r;
              (* Local-domain pop: may reclaim the block just parked. *)
              let own = Shm.cxl_malloc b ~size_bytes:8 () in
              Cxl_ref.write_word own 0 (- !got);
              Cxl_ref.drop own
          | Transfer.Empty ->
              if !a_alive then Sched.yield "recv-empty" else raise Exit
          | Transfer.Drained -> raise Exit
        done
      with Exit -> ()
    in
    let stealer () =
      for i = 1 to values do
        Sched.yield "steal-wait";
        let r = Shm.cxl_malloc c ~size_bytes:8 () in
        Cxl_ref.write_word r 0 (100 + i);
        Cxl_ref.drop r
      done
    in
    let check ~crashed =
      check_prefix ~what:"sharded-alloc" ~complete:(crashed = [])
        ~total:values
        (List.rev !received);
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid; c.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| sender; receiver; stealer |]; check }
  in
  { Explore.name = "sharded-alloc"; make; branch = arena_branch }

(* ---- registry ---- *)

let all () =
  [ spsc (); transfer (); transfer ~batched:true (); refc (); huge ();
    epoch_retire (); sharded_alloc () ]

let find name =
  match List.find_opt (fun m -> m.Explore.name = name) (all ()) with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "unknown model %s (have: %s)" name
           (String.concat ", "
              (List.map (fun m -> m.Explore.name) (all ()))))
