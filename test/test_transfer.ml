(* Reference-transfer queues (§5.2): capacity, ordering, closing, cleanup,
   directory behaviour. *)

open Cxlshm

let setup () =
  let arena = Shm.create ~cfg:Config.small () in
  (arena, Shm.join arena (), Shm.join arena ())

let mk ctx v =
  let r = Shm.cxl_malloc ctx ~size_bytes:8 () in
  Cxl_ref.write_word r 0 v;
  r

let test_fifo_order () =
  let arena, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:8 in
  let sent = List.init 5 (fun i -> mk a (100 + i)) in
  List.iter (fun r -> assert (Transfer.send q r = Transfer.Sent)) sent;
  List.iter Cxl_ref.drop sent;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  List.iteri
    (fun i _ ->
      match Transfer.receive qb with
      | Transfer.Received r ->
          Alcotest.(check int) (Printf.sprintf "msg %d" i) (100 + i)
            (Cxl_ref.read_word r 0);
          Cxl_ref.drop r
      | Transfer.Empty | Transfer.Drained -> Alcotest.fail "expected message")
    sent;
  Transfer.close q;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_pending_count () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  Alcotest.(check int) "empty" 0 (Transfer.pending q);
  let r = mk a 1 in
  ignore (Transfer.send q r);
  ignore (Transfer.send q r);
  Alcotest.(check int) "two pending" 2 (Transfer.pending q);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  (match Transfer.receive qb with Transfer.Received x -> Cxl_ref.drop x | _ -> ());
  Alcotest.(check int) "one after receive" 1 (Transfer.pending qb);
  Cxl_ref.drop r

let test_capacity_full () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  let r = mk a 1 in
  Alcotest.(check bool) "1" true (Transfer.send q r = Transfer.Sent);
  Alcotest.(check bool) "2" true (Transfer.send q r = Transfer.Sent);
  Alcotest.(check bool) "full" true (Transfer.send q r = Transfer.Full);
  (* consuming makes room *)
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  (match Transfer.receive qb with
  | Transfer.Received x -> Cxl_ref.drop x
  | _ -> Alcotest.fail "recv");
  Alcotest.(check bool) "room again" true (Transfer.send q r = Transfer.Sent);
  Cxl_ref.drop r

let test_send_shares_not_moves () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let r = mk a 7 in
  assert (Transfer.send q r = Transfer.Sent);
  (* the sender's handle is still usable after sending *)
  Alcotest.(check int) "sender still reads" 7 (Cxl_ref.read_word r 0);
  Alcotest.(check int) "count: rootref + queue slot" 2
    (Refc.ref_cnt a (Cxl_ref.obj r));
  Cxl_ref.drop r

let test_receiver_sees_sender_close () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let r = mk a 9 in
  assert (Transfer.send q r = Transfer.Sent);
  Cxl_ref.drop r;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Transfer.close q;
  (* in-flight message still delivered, then Drained *)
  (match Transfer.receive qb with
  | Transfer.Received x -> Cxl_ref.drop x
  | _ -> Alcotest.fail "in-flight message lost");
  (match Transfer.receive qb with
  | Transfer.Drained -> ()
  | _ -> Alcotest.fail "expected Drained");
  Transfer.close qb

let test_sender_sees_receiver_close () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Transfer.close qb;
  let r = mk a 3 in
  Alcotest.(check bool) "closed" true (Transfer.send q r = Transfer.Closed);
  Cxl_ref.drop r;
  Transfer.close q

let test_both_close_frees_everything () =
  let arena, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  (* leave an unconsumed message in the ring *)
  let r = mk a 4 in
  assert (Transfer.send q r = Transfer.Sent);
  Cxl_ref.drop r;
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Transfer.close q;
  Transfer.close qb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "ring message reclaimed with the queue" 0
    v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

let test_multiple_queues_between_pairs () =
  let arena, a, b = setup () in
  let c = Shm.join arena () in
  let qab = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  let qac = Transfer.connect a ~receiver:c.Ctx.cid ~capacity:4 in
  let qba = Transfer.connect b ~receiver:a.Ctx.cid ~capacity:4 in
  let rb = mk a 1 and rc = mk a 2 and ra = mk b 3 in
  assert (Transfer.send qab rb = Transfer.Sent);
  assert (Transfer.send qac rc = Transfer.Sent);
  assert (Transfer.send qba ra = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let qc = Option.get (Transfer.open_from c ~sender:a.Ctx.cid) in
  let qa = Option.get (Transfer.open_from a ~sender:b.Ctx.cid) in
  let recv q =
    match Transfer.receive q with
    | Transfer.Received r ->
        let v = Cxl_ref.read_word r 0 in
        Cxl_ref.drop r;
        v
    | _ -> Alcotest.fail "recv"
  in
  Alcotest.(check int) "a->b" 1 (recv qb);
  Alcotest.(check int) "a->c" 2 (recv qc);
  Alcotest.(check int) "b->a" 3 (recv qa);
  List.iter Cxl_ref.drop [ rb; rc; ra ];
  List.iter Transfer.close [ qab; qac; qba; qb; qc; qa ];
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_directory_exhaustion () =
  let cfg = { Config.small with Config.queue_slots = 2 } in
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let q1 = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  let q2 = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  Alcotest.check_raises "directory full"
    (Failure "Transfer.connect: queue directory full") (fun () ->
      ignore (Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2));
  (* closing a pair frees the slot for reuse *)
  let qb1 = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  Transfer.close q1;
  Transfer.close qb1;
  let q3 = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  Transfer.close q2;
  Transfer.close q3

let test_wraparound () =
  let _, a, b = setup () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:3 in
  let qb = ref None in
  for round = 1 to 20 do
    let r = mk a round in
    assert (Transfer.send q r = Transfer.Sent);
    Cxl_ref.drop r;
    if !qb = None then qb := Transfer.open_from b ~sender:a.Ctx.cid;
    match Transfer.receive (Option.get !qb) with
    | Transfer.Received x ->
        Alcotest.(check int) (Printf.sprintf "round %d" round) round
          (Cxl_ref.read_word x 0);
        Cxl_ref.drop x
    | _ -> Alcotest.fail "recv"
  done

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "pending count" `Quick test_pending_count;
    Alcotest.test_case "capacity / Full" `Quick test_capacity_full;
    Alcotest.test_case "send shares (not moves)" `Quick test_send_shares_not_moves;
    Alcotest.test_case "receiver sees sender close" `Quick test_receiver_sees_sender_close;
    Alcotest.test_case "sender sees receiver close" `Quick test_sender_sees_receiver_close;
    Alcotest.test_case "both close frees all" `Quick test_both_close_frees_everything;
    Alcotest.test_case "multiple queues" `Quick test_multiple_queues_between_pairs;
    Alcotest.test_case "directory exhaustion" `Quick test_directory_exhaustion;
    Alcotest.test_case "ring wraparound" `Quick test_wraparound;
  ]
