(* Failure drill: exercise every §4.3/§5 crash window on demand and watch
   the recovery service repair each one.

   For every labelled crash point in the core, a fresh arena runs a small
   workload with a client rigged to die exactly there; recovery runs; the
   whole-arena validator then checks for leaks, double frees and wild
   pointers. The §6.2.2 experiment, as a guided tour.

   Run: dune exec examples/failure_drill.exe *)

open Cxlshm

let drill point =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  a.Ctx.fault <- Fault.at point ~nth:1;
  let crashed = ref false in
  (try
     (* a workload touching every crash surface: alloc, clone, embedded
        links, §5.4 change, release, and queue transfer *)
     let parent = Shm.cxl_malloc a ~size_bytes:16 ~emb_cnt:2 () in
     let x = Shm.cxl_malloc a ~size_bytes:16 () in
     let y = Shm.cxl_malloc a ~size_bytes:16 () in
     Cxl_ref.set_emb parent 0 x;
     Cxl_ref.change_emb parent 0 y;
     Cxl_ref.clear_emb parent 0;
     let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
     ignore (Transfer.send q x);
     (match Transfer.open_from b ~sender:a.Ctx.cid with
     | Some qb -> (
         match Transfer.receive qb with
         | Transfer.Received r -> Cxl_ref.drop r
         | Transfer.Empty | Transfer.Drained -> ())
     | None -> ());
     List.iter Cxl_ref.drop [ parent; x; y ]
   with Fault.Crashed _ -> crashed := true);
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  let report = Recovery.recover svc ~failed_cid:a.Ctx.cid in
  Client.declare_failed svc ~cid:b.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:b.Ctx.cid);
  ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false));
  let v = Shm.validate arena in
  Printf.printf "%-32s %-9s resumed=%-5b -> %s\n"
    (Fault.point_name point)
    (if !crashed then "crashed" else "missed")
    report.Recovery.resumed_txn
    (if Validate.is_clean v && v.Validate.live_objects = 0 then "clean"
     else "VIOLATION: " ^ String.concat "; " v.Validate.errors);
  Validate.is_clean v

let () =
  print_endline "crash point                      outcome   txn-resume  verdict";
  print_endline "----------------------------------------------------------------";
  let ok = List.for_all drill Fault.all_points in
  print_endline "----------------------------------------------------------------";
  if ok then print_endline "all crash windows recovered cleanly"
  else begin
    print_endline "SOME WINDOWS LEAKED — see above";
    exit 1
  end
