(* Extension features: the §4.2 lock-based straw-man (and why it loses),
   §6.4.1 persistent named roots, §5.4 hazard-era reclamation, and the
   CXL 3.0 / eADR flush ablation. *)

open Cxlshm

let setup () =
  let arena = Shm.create ~cfg:Config.small () in
  (arena, Shm.join arena (), Shm.join arena ())

(* ---- Locked_refc (§4.2 straw-man) ---- *)

let test_locked_basic () =
  let _, a, _ = setup () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:8 () in
  let slot = Obj_header.emb_slot (Cxl_ref.obj parent) 0 in
  Locked_refc.attach a ~ref_addr:slot ~refed:(Cxl_ref.obj child);
  Alcotest.(check int) "count 2" 2 (Refc.ref_cnt a (Cxl_ref.obj child));
  Alcotest.(check int) "linked" (Cxl_ref.obj child) (Ctx.load a slot);
  let n = Locked_refc.detach a ~ref_addr:slot ~refed:(Cxl_ref.obj child) in
  Alcotest.(check int) "back to 1" 1 n;
  Alcotest.(check int) "unlinked" 0 (Ctx.load a slot)

let test_locked_blocks_on_crash () =
  (* The §4.2 punchline: a dead lock holder stalls everyone else until
     recovery runs; the era algorithm does not. *)
  let _, a, b = setup () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:8 () in
  let obj = Cxl_ref.obj child in
  let slot = Obj_header.emb_slot (Cxl_ref.obj parent) 0 in
  (* a crashes inside the critical section *)
  a.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
  (try Locked_refc.attach a ~ref_addr:slot ~refed:obj with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  Alcotest.(check (option int)) "lock abandoned by a" (Some a.Ctx.cid)
    (Locked_refc.holder b obj);
  (* b cannot make progress on the same stripe *)
  let parent_b = Shm.cxl_malloc b ~size_bytes:8 ~emb_cnt:1 () in
  let slot_b = Obj_header.emb_slot (Cxl_ref.obj parent_b) 0 in
  Alcotest.(check bool) "b is blocked" false
    (Locked_refc.attach_bounded b ~ref_addr:slot_b ~refed:obj ~spins:10_000);
  (* the blocking design's recovery releases the lock and replays the log *)
  let released = Locked_refc.recover b ~failed_cid:a.Ctx.cid in
  Alcotest.(check int) "one stripe released" 1 released;
  Alcotest.(check int) "a's logged increment was replayed" 2 (Refc.ref_cnt b obj);
  Alcotest.(check int) "a's link was replayed" obj (Ctx.load b slot);
  (* now b proceeds *)
  Alcotest.(check bool) "b unblocked after recovery" true
    (Locked_refc.attach_bounded b ~ref_addr:slot_b ~refed:obj ~spins:10_000);
  Alcotest.(check int) "count now 3" 3 (Refc.ref_cnt b obj)

let test_locked_replay_is_idempotent () =
  (* If the dead client had already executed the logged stores, replay must
     not change anything (the absolute-count trick). *)
  let _, a, b = setup () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:8 () in
  let obj = Cxl_ref.obj child in
  let slot = Obj_header.emb_slot (Cxl_ref.obj parent) 0 in
  a.Ctx.fault <- Fault.at Fault.Txn_after_modify_ref ~nth:1;
  (try Locked_refc.attach a ~ref_addr:slot ~refed:obj with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  (* both effects already applied; count is 2 *)
  Alcotest.(check int) "already 2" 2 (Refc.ref_cnt b obj);
  ignore (Locked_refc.recover b ~failed_cid:a.Ctx.cid);
  Alcotest.(check int) "replay left 2" 2 (Refc.ref_cnt b obj);
  Alcotest.(check int) "link intact" obj (Ctx.load b slot)

let test_era_does_not_block_on_crash () =
  (* the era counterpart of test_locked_blocks_on_crash: b proceeds
     immediately, before any recovery *)
  let _, a, b = setup () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:8 () in
  let obj = Cxl_ref.obj child in
  a.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
  (try
     Cxl_ref.set_emb parent 0 child
   with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  (* no recovery has run; b attaches anyway *)
  let rr = Alloc.alloc_rootref b in
  Refc.attach b ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj;
  Alcotest.(check bool) "b made progress without recovery" true
    (Refc.ref_cnt b obj >= 2);
  Reclaim.release_rootref b rr

(* ---- Named_roots (§6.4.1) ---- *)

let test_named_roots_survive_all_clients () =
  let arena, a, b = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.write_bytes r (Bytes.of_string "durable!");
  Named_roots.publish a ~name:"config" r;
  Cxl_ref.drop r;
  (* every client dies *)
  let svc = Shm.service_ctx arena in
  List.iter
    (fun (c : Ctx.t) ->
      Client.declare_failed svc ~cid:c.Ctx.cid;
      ignore (Recovery.recover svc ~failed_cid:c.Ctx.cid))
    [ a; b ];
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v);
  Alcotest.(check int) "the named object survived" 1 v.Validate.live_objects;
  (* a brand new client finds the data *)
  let c = Shm.join arena () in
  (match Named_roots.lookup c ~name:"config" with
  | Some r2 ->
      Alcotest.(check string) "data intact" "durable!"
        (Bytes.to_string (Cxl_ref.read_bytes r2 ~len:8));
      Cxl_ref.drop r2
  | None -> Alcotest.fail "named root lost");
  (* unpublish releases the last reference *)
  Alcotest.(check bool) "unpublish" true (Named_roots.unpublish c ~name:"config");
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "now reclaimed" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

let test_named_roots_conflicts () =
  let _, a, _ = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:8 () in
  Named_roots.publish a ~name:"x" r;
  Alcotest.check_raises "duplicate name" (Named_roots.Name_taken "x") (fun () ->
      Named_roots.publish a ~name:"x" r);
  Alcotest.(check bool) "lookup other name misses" true
    (Named_roots.lookup a ~name:"y" = None);
  Alcotest.(check bool) "unpublish missing" false
    (Named_roots.unpublish a ~name:"y");
  Alcotest.(check int) "one name listed" 1
    (List.length (Named_roots.names_hashes a));
  ignore (Named_roots.unpublish a ~name:"x");
  Cxl_ref.drop r

let test_named_roots_crash_mid_publish () =
  let arena, a, _ = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:8 () in
  (* die after the directory's attach commits but before phase=published *)
  a.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
  (try Named_roots.publish a ~name:"half" r with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  let c = Shm.join arena () in
  Alcotest.(check bool) "half-published name rolled back" true
    (Named_roots.lookup c ~name:"half" = None);
  let v = Shm.validate arena in
  Alcotest.(check int) "nothing leaked" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

(* ---- Hazard eras (§5.4) ---- *)

let test_hazard_protects_reader () =
  let _, a, b = setup () in
  (* b announces; a retires something afterwards: not yet safe *)
  Hazard.enter b;
  let e = Hazard.retire_epoch a in
  Alcotest.(check bool) "reader epoch blocks reclamation" true
    (Hazard.min_announced a <= e);
  Hazard.exit b;
  Alcotest.(check bool) "safe after reader leaves" true
    (Hazard.min_announced a > e)

let test_hazard_dead_reader_ignored () =
  let arena, a, b = setup () in
  Hazard.enter b;
  let e = Hazard.retire_epoch a in
  Alcotest.(check bool) "blocked while b lives" true (Hazard.min_announced a <= e);
  (* b dies mid-read: its announcement must stop counting *)
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:b.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:b.Ctx.cid);
  Alcotest.(check bool) "dead reader cannot stall reclamation" true
    (Hazard.min_announced a > e);
  ignore arena

let test_hazard_with_protection () =
  let _, a, _ = setup () in
  Alcotest.(check int) "protected result" 42
    (Hazard.with_protection a (fun () ->
         Alcotest.(check bool) "announced inside" true
           (Hazard.announced a ~cid:a.Ctx.cid > 0);
         42));
  Alcotest.(check int) "cleared outside" 0 (Hazard.announced a ~cid:a.Ctx.cid)

(* ---- eADR ablation ---- *)

let test_eadr_removes_flush () =
  let run eadr =
    let arena = Shm.create ~cfg:{ Config.small with Config.eadr } () in
    let a = Shm.join arena () in
    for _ = 1 to 100 do
      let r = Shm.cxl_malloc a ~size_bytes:32 () in
      Cxl_ref.drop r
    done;
    a.Ctx.st.Cxlshm_shmem.Stats.flushes
  in
  let with_flush = run false and without = run true in
  Alcotest.(check bool)
    (Printf.sprintf "eADR eliminates alloc flushes (%d -> %d)" with_flush without)
    true
    (without < with_flush)

let suite =
  [
    Alcotest.test_case "locked: basic" `Quick test_locked_basic;
    Alcotest.test_case "locked: blocks on crash (§4.2)" `Quick test_locked_blocks_on_crash;
    Alcotest.test_case "locked: replay idempotent" `Quick test_locked_replay_is_idempotent;
    Alcotest.test_case "era: does NOT block on crash" `Quick test_era_does_not_block_on_crash;
    Alcotest.test_case "named roots survive all clients" `Quick test_named_roots_survive_all_clients;
    Alcotest.test_case "named roots conflicts" `Quick test_named_roots_conflicts;
    Alcotest.test_case "named roots crash mid-publish" `Quick test_named_roots_crash_mid_publish;
    Alcotest.test_case "hazard protects reader" `Quick test_hazard_protects_reader;
    Alcotest.test_case "hazard ignores dead reader" `Quick test_hazard_dead_reader_ignored;
    Alcotest.test_case "hazard with_protection" `Quick test_hazard_with_protection;
    Alcotest.test_case "eADR removes flush" `Quick test_eadr_removes_flush;
  ]
