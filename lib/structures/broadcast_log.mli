(** Single-writer broadcast log: one publisher, any number of independent
    subscribers (§2.2's shared-everything reading, in log form).

    A bounded ring of embedded references published by one writer. Each
    subscriber keeps only a private cursor; catching up is pure reads of
    the shared pool — no per-subscriber queues, no copies, no coordination
    between subscribers. A slow subscriber that falls more than
    [capacity] entries behind observes [`Lagged] and resumes from the
    oldest retained entry (the usual bounded-log contract).

    The writer retires overwritten entries through the era transactions,
    so subscribers holding references to old entries keep them alive —
    the log overwrites its *slots*, never the objects readers still see. *)

type writer
type cursor

val create : Cxlshm.Ctx.t -> capacity:int -> writer
val log_ref : writer -> Cxlshm.Cxl_ref.t
(** Share this to let subscribers {!subscribe}. *)

val publish : writer -> Cxlshm.Cxl_ref.t -> int
(** Append the handle's object; returns its sequence number. The publisher
    keeps its own handle (drop separately). *)

val close_writer : writer -> unit

val subscribe : Cxlshm.Ctx.t -> Cxlshm.Cxl_ref.t -> cursor
(** Start from the oldest retained entry. *)

val poll : cursor -> [ `Entry of int * Cxlshm.Cxl_ref.t | `Empty | `Lagged of int ]
(** Next entry (sequence number + caller-owned reference); [`Lagged n]
    reports [n] skipped entries after the cursor fell off the ring. *)

val close_cursor : cursor -> unit
