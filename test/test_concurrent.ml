(* Real-parallelism stress: multiple domains hammering the same arena.
   These tests exercise the lock-free claims with genuine interleavings
   (CAS races, cross-client frees, recovery running concurrently with
   live allocation). *)

open Cxlshm

let stress_cfg =
  {
    Config.default with
    Config.max_clients = 8;
    num_segments = 128;
    pages_per_segment = 8;
    page_words = 512;
  }

let test_parallel_allocators () =
  (* N domains allocate and free without any sharing: the fast path must
     never interfere across clients. *)
  let arena = Shm.create ~cfg:stress_cfg () in
  let n = 4 and per = 2_000 in
  let worker () =
    let ctx = Shm.join arena () in
    for i = 1 to per do
      let r = Shm.cxl_malloc ctx ~size_bytes:(8 + (i mod 64)) () in
      Cxl_ref.write_word r 0 i;
      if Cxl_ref.read_word r 0 <> i then failwith "corruption";
      Cxl_ref.drop r
    done;
    Shm.leave ctx;
    true
  in
  let ds = List.init n (fun _ -> Domain.spawn worker) in
  Alcotest.(check bool) "all domains ok" true
    (List.for_all Fun.id (List.map Domain.join ds));
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v);
  Alcotest.(check int) "nothing left" 0 v.Validate.live_objects

let test_parallel_refcount_storm () =
  (* Domains race attach/detach on one shared object: the count must end
     exactly where it started and every era transaction must commit. *)
  let arena = Shm.create ~cfg:stress_cfg () in
  let owner = Shm.join arena () in
  let base = Shm.cxl_malloc owner ~size_bytes:8 () in
  let obj = Cxl_ref.obj base in
  let n = 3 and per = 1_500 in
  let worker () =
    let ctx = Shm.join arena () in
    for _ = 1 to per do
      let rr = Alloc.alloc_rootref ctx in
      Refc.attach ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj;
      Reclaim.release_rootref ctx rr
    done;
    Shm.leave ctx;
    true
  in
  let ds = List.init n (fun _ -> Domain.spawn worker) in
  Alcotest.(check bool) "workers ok" true
    (List.for_all Fun.id (List.map Domain.join ds));
  Alcotest.(check int) "count back to 1" 1 (Refc.ref_cnt owner obj);
  Cxl_ref.drop base;
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_recovery_does_not_block_live_clients () =
  (* The §3.2 claim: while one client's recovery runs, another client keeps
     allocating and reading successfully. *)
  let arena = Shm.create ~cfg:stress_cfg () in
  let dead = Shm.join arena () in
  let _ = List.init 3_000 (fun _ -> Shm.cxl_malloc dead ~size_bytes:32 ()) in
  Client.declare_failed (Shm.service_ctx arena) ~cid:dead.Ctx.cid;
  let live_done = Atomic.make false in
  let live_progress = Atomic.make 0 in
  let live =
    Domain.spawn (fun () ->
        let ctx = Shm.join arena () in
        let ok = ref true in
        for i = 1 to 3_000 do
          let r = Shm.cxl_malloc ctx ~size_bytes:16 () in
          Cxl_ref.write_word r 0 i;
          if Cxl_ref.read_word r 0 <> i then ok := false;
          Cxl_ref.drop r;
          Atomic.incr live_progress
        done;
        Shm.leave ctx;
        Atomic.set live_done true;
        !ok)
  in
  let report = Shm.recover arena ~failed_cid:dead.Ctx.cid in
  Alcotest.(check int) "recovery reaped everything" 3_000
    report.Recovery.rootrefs_released;
  Alcotest.(check bool) "live client made progress during recovery" true
    (Atomic.get live_progress > 0);
  Alcotest.(check bool) "live client unaffected" true (Domain.join live);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_parallel_transfer_pipeline () =
  (* producer -> consumer across domains through the §5.2 queue, with the
     consumer freeing into the producer's segments (cross-client stack). *)
  let arena = Shm.create ~cfg:stress_cfg () in
  let producer_ctx = Shm.join arena () in
  let n = 3_000 in
  let consumer =
    Domain.spawn (fun () ->
        let ctx = Shm.join arena () in
        let rec open_q () =
          match Transfer.open_from ctx ~sender:producer_ctx.Ctx.cid with
          | Some q -> q
          | None ->
              Domain.cpu_relax ();
              open_q ()
        in
        let q = open_q () in
        let sum = ref 0 in
        let rec drain received =
          if received < n then
            match Transfer.receive q with
            | Transfer.Received r ->
                sum := !sum + Cxl_ref.read_word r 0;
                Cxl_ref.drop r;
                drain (received + 1)
            | Transfer.Empty ->
                Domain.cpu_relax ();
                drain received
            | Transfer.Drained -> received |> ignore
          else ()
        in
        drain 0;
        Transfer.close q;
        Shm.leave ctx;
        !sum)
  in
  let q = Transfer.connect producer_ctx ~receiver:(producer_ctx.Ctx.cid + 1) ~capacity:32 in
  (* NB: consumer cid is producer cid + 1 because it joined second *)
  for i = 1 to n do
    let r = Shm.cxl_malloc producer_ctx ~size_bytes:8 () in
    Cxl_ref.write_word r 0 i;
    let rec push () =
      match Transfer.send q r with
      | Transfer.Sent -> ()
      | Transfer.Full ->
          Domain.cpu_relax ();
          push ()
      | Transfer.Closed -> failwith "closed early"
    in
    push ();
    Cxl_ref.drop r;
    (* reclaim blocks the consumer freed into our segments *)
    if i mod 256 = 0 then Alloc.collect_deferred producer_ctx
  done;
  let sum = Domain.join consumer in
  Alcotest.(check int) "all values arrived exactly once" (n * (n + 1) / 2) sum;
  Transfer.close q;
  Alloc.collect_deferred producer_ctx;
  Shm.leave producer_ctx;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

let test_parallel_kv_readers_during_writes () =
  let arena = Shm.create ~cfg:stress_cfg () in
  let w = Shm.join arena () in
  let store, h = Cxlshm_kv.Cxl_kv.create w ~buckets:128 ~partitions:1 ~value_words:1 in
  assert (Cxlshm_kv.Cxl_kv.claim_partition h 0);
  for k = 0 to 199 do
    Cxlshm_kv.Cxl_kv.put h ~key:k ~value:k
  done;
  let stop = Atomic.make false in
  let progress = Array.init 2 (fun _ -> Atomic.make 0) in
  let reader i () =
    let ctx = Shm.join arena () in
    let hr = Cxlshm_kv.Cxl_kv.open_store ctx store in
    let bad = ref 0 in
    let reads = ref 0 in
    while not (Atomic.get stop) do
      let k = !reads mod 200 in
      (match Cxlshm_kv.Cxl_kv.get hr ~key:k with
      | Some v when v = k || v >= 1_000 -> () (* original or updated *)
      | Some _ -> incr bad
      | None -> incr bad (* in-place updates never unlink *));
      incr reads;
      Atomic.set progress.(i) !reads
    done;
    Cxlshm_kv.Cxl_kv.close hr;
    Shm.leave ctx;
    (!bad, !reads)
  in
  let readers = List.init 2 (fun i -> Domain.spawn (reader i)) in
  (* writer keeps updating in place until every reader has made progress
     (the host may have a single core; readers need timeslices) *)
  let deadline = Unix.gettimeofday () +. 20.0 in
  let round = ref 0 in
  let all_progressed () =
    Array.for_all (fun p -> Atomic.get p > 100) progress
  in
  while (not (all_progressed ())) && Unix.gettimeofday () < deadline do
    incr round;
    for k = 0 to 199 do
      Cxlshm_kv.Cxl_kv.put h ~key:k ~value:(1_000 + (!round * 200) + k)
    done
  done;
  Atomic.set stop true;
  List.iter
    (fun d ->
      let bad, reads = Domain.join d in
      Alcotest.(check int) "no torn/missing reads" 0 bad;
      Alcotest.(check bool) "reader made progress" true (reads > 0))
    readers;
  Cxlshm_kv.Cxl_kv.close h;
  Shm.leave w;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

(* Recovery races live transactions on the very object the dead client was
   touching: the resume path's Conditions must coexist with concurrent
   commits from a live peer (the §4.3 "rare corner case"). *)
let test_recovery_races_live_txns () =
  for seed = 1 to 8 do
    let arena = Shm.create ~cfg:stress_cfg () in
    let dead = Shm.join arena () in
    let live = Shm.join arena () in
    let base = Shm.cxl_malloc live ~size_bytes:8 () in
    let obj = Cxl_ref.obj base in
    (* dead client crashes mid-attach on the shared object *)
    let parent = Shm.cxl_malloc dead ~size_bytes:8 ~emb_cnt:1 () in
    dead.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
    (try Cxl_ref.set_emb parent 0 base with Fault.Crashed _ -> ());
    dead.Ctx.fault <- Fault.none;
    Client.declare_failed (Shm.service_ctx arena) ~cid:dead.Ctx.cid;
    (* live client hammers the same object while recovery runs *)
    let stop = Atomic.make false in
    let hammer =
      Domain.spawn (fun () ->
          let n = ref 0 in
          while not (Atomic.get stop) do
            let rr = Alloc.alloc_rootref live in
            Refc.attach live ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj;
            Reclaim.release_rootref live rr;
            incr n
          done;
          !n)
    in
    ignore (Shm.recover arena ~failed_cid:dead.Ctx.cid);
    Atomic.set stop true;
    let spins = Domain.join hammer in
    ignore seed;
    Alcotest.(check bool) "hammer ran" true (spins >= 0);
    (* the hammer's releases may still sit parked in the live client's
       retirement buffer; quiescence means after the batch drains *)
    Reclaim.flush_retired live;
    Alcotest.(check int) "count settled to exactly ours" 1
      (Refc.ref_cnt live obj);
    Cxl_ref.drop base;
    ignore (Shm.scan_leaking arena);
    let v = Shm.validate arena in
    Alcotest.(check bool)
      ("clean: " ^ String.concat ";" v.Validate.errors)
      true (Validate.is_clean v)
  done

let suite =
  [
    Alcotest.test_case "recovery races live txns" `Slow test_recovery_races_live_txns;
    Alcotest.test_case "parallel allocators" `Slow test_parallel_allocators;
    Alcotest.test_case "parallel refcount storm" `Slow test_parallel_refcount_storm;
    Alcotest.test_case "recovery does not block" `Slow test_recovery_does_not_block_live_clients;
    Alcotest.test_case "parallel transfer pipeline" `Slow test_parallel_transfer_pipeline;
    Alcotest.test_case "kv readers during writes" `Slow test_parallel_kv_readers_during_writes;
  ]
