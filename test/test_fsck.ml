(* The offline verify-and-repair pipeline: hand-crafted device damage
   (torn headers, wild references, broken page geometry) must fail
   verification, and one Fsck.repair must restore every structural
   invariant — idempotently, preserving what the durable roots anchor.
   Ends with the full soak matrix: every crash point x every fault
   schedule x both backends, zero post-fsck failures. *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem

let mem_lay arena = (Shm.mem arena, Shm.layout arena)

let check_clean arena = Validate.is_clean (Fsck.check (Shm.mem arena) (Shm.layout arena))

let repair arena = Shm.fsck arena

(* A published object survives fsck (the durable root anchors it); the
   publishing client's slot does not — fsck treats every recorded client
   as dead, which offline they are. *)
let test_clean_arena_nothing_to_fix () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena () in
  let keep = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.write_word keep 0 4242;
  Named_roots.publish a ~name:"keep" keep;
  Cxl_ref.drop keep;
  let scratch = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.drop scratch;
  Alcotest.(check bool) "pre-check clean" true (check_clean arena);
  let r = repair arena in
  Alcotest.(check bool) "repair verdict clean" true (Fsck.clean r);
  Alcotest.(check int) "client swept" 1 r.Fsck.clients_swept;
  Alcotest.(check int) "nothing quarantined" 0 r.Fsck.pages_quarantined;
  Alcotest.(check int) "no torn headers" 0 r.Fsck.torn_headers_cleared;
  Alcotest.(check int) "no wild refs" 0 r.Fsck.wild_refs_cleared;
  Alcotest.(check int) "nothing freed" 0 r.Fsck.unreachable_freed;
  let b = Shm.join arena () in
  match Named_roots.lookup b ~name:"keep" with
  | None -> Alcotest.fail "published object lost by a no-op repair"
  | Some k ->
      Alcotest.(check int) "payload intact" 4242 (Cxl_ref.read_word k 0);
      Cxl_ref.drop k

let test_torn_header_repaired () =
  let arena = Shm.create ~cfg:Config.small () in
  let mem, _lay = mem_lay arena in
  let a = Shm.join arena () in
  let keep = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.write_word keep 0 777;
  Named_roots.publish a ~name:"keep" keep;
  let obj = Cxl_ref.obj keep in
  Cxl_ref.drop keep;
  Shm.leave a;
  (* a stuck word left a stale header: refcount 9, a dead client's mark *)
  Mem.unsafe_poke mem
    (Obj_header.header_of_obj obj)
    (Obj_header.make ~lcid:3 ~lera:77 ~ref_cnt:9);
  Alcotest.(check bool) "damage detected" false (check_clean arena);
  let r = repair arena in
  Alcotest.(check bool) "repaired" true (Fsck.clean r);
  Alcotest.(check bool) "a count was rewritten" true (r.Fsck.counts_fixed >= 1);
  let b = Shm.join arena () in
  (match Named_roots.lookup b ~name:"keep" with
  | None -> Alcotest.fail "anchored object lost"
  | Some k ->
      Alcotest.(check int) "payload intact" 777 (Cxl_ref.read_word k 0);
      Cxl_ref.drop k);
  Alcotest.(check bool) "still clean" true (check_clean arena)

let test_wild_ref_cleared_unreachable_freed () =
  let arena = Shm.create ~cfg:Config.small () in
  let mem, lay = mem_lay arena in
  let a = Shm.join arena () in
  let parent = Shm.cxl_malloc a ~size_bytes:16 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.set_emb parent 0 child;
  Cxl_ref.drop child;
  Named_roots.publish a ~name:"parent" parent;
  let pobj = Cxl_ref.obj parent in
  Cxl_ref.drop parent;
  Shm.leave a;
  (* the embedded reference word goes wild: it now points into an
     uninitialised page area. The child keeps its count but lost its only
     holder. *)
  Mem.unsafe_poke mem
    (Obj_header.emb_slot pobj 0)
    (Layout.segment_base lay (Config.small.Config.num_segments - 1) + 5);
  Alcotest.(check bool) "damage detected" false (check_clean arena);
  let r = repair arena in
  Alcotest.(check bool) "repaired" true (Fsck.clean r);
  Alcotest.(check bool) "wild ref cleared" true (r.Fsck.wild_refs_cleared >= 1);
  Alcotest.(check bool) "orphaned child freed" true (r.Fsck.unreachable_freed >= 1);
  let b = Shm.join arena () in
  (match Named_roots.lookup b ~name:"parent" with
  | None -> Alcotest.fail "anchored parent lost"
  | Some p ->
      Alcotest.(check int) "wild slot now empty" 0 (Cxl_ref.get_emb p 0);
      Cxl_ref.drop p);
  Alcotest.(check bool) "still clean" true (check_clean arena)

let test_broken_geometry_quarantined () =
  let arena = Shm.create ~cfg:Config.small () in
  let mem, lay = mem_lay arena in
  let a = Shm.join arena () in
  let r1 = Shm.cxl_malloc a ~size_bytes:32 () in
  let _, gid = Page.block_of_addr a (Cxl_ref.obj r1) in
  Named_roots.publish a ~name:"doomed" r1;
  Cxl_ref.drop r1;
  Shm.leave a;
  (* the page's block-size word no longer matches its size class: its
     geometry is unusable, nothing on it can be trusted *)
  Mem.unsafe_poke mem (Layout.page_block_words lay ~gid) 3;
  Alcotest.(check bool) "damage detected" false (check_clean arena);
  let rep = repair arena in
  Alcotest.(check bool) "repaired" true (Fsck.clean rep);
  Alcotest.(check bool) "page quarantined" true (rep.Fsck.pages_quarantined >= 1);
  let b = Shm.join arena () in
  Alcotest.(check int) "page marked quarantined"
    (Config.kind_quarantined Config.small)
    (Page.kind b ~gid);
  (* the object lived on the quarantined page: its anchor must be gone,
     not dangling *)
  (match Named_roots.lookup b ~name:"doomed" with
  | None -> ()
  | Some _ -> Alcotest.fail "root still points into a quarantined page");
  (* allocation keeps working and never lands on the quarantined page *)
  let held = List.init 50 (fun _ -> Shm.cxl_malloc b ~size_bytes:32 ()) in
  List.iter
    (fun r ->
      let _, g = Page.block_of_addr b (Cxl_ref.obj r) in
      Alcotest.(check bool) "quarantined page never reused" true (g <> gid))
    held;
  List.iter Cxl_ref.drop held;
  Shm.leave b;
  Alcotest.(check bool) "still clean" true (check_clean arena)

let test_repair_idempotent () =
  let arena = Shm.create ~cfg:Config.small () in
  let mem, _lay = mem_lay arena in
  let a = Shm.join arena () in
  let parent = Shm.cxl_malloc a ~size_bytes:16 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.set_emb parent 0 child;
  Cxl_ref.drop child;
  Named_roots.publish a ~name:"parent" parent;
  let pobj = Cxl_ref.obj parent in
  Cxl_ref.drop parent;
  (* two kinds of damage at once, with the client still recorded *)
  Mem.unsafe_poke mem (Obj_header.emb_slot pobj 0) 1;
  Mem.unsafe_poke mem
    (Obj_header.header_of_obj pobj)
    (Obj_header.make ~lcid:2 ~lera:5 ~ref_cnt:6);
  Alcotest.(check bool) "damage detected" false (check_clean arena);
  let r1 = repair arena in
  Alcotest.(check bool) "first repair clean" true (Fsck.clean r1);
  let r2 = repair arena in
  Alcotest.(check bool) "second repair clean" true (Fsck.clean r2);
  Alcotest.(check int) "nothing left: quarantines" 0 r2.Fsck.pages_quarantined;
  Alcotest.(check int) "nothing left: torn headers" 0 r2.Fsck.torn_headers_cleared;
  Alcotest.(check int) "nothing left: wild refs" 0 r2.Fsck.wild_refs_cleared;
  Alcotest.(check int) "nothing left: frees" 0 r2.Fsck.unreachable_freed;
  Alcotest.(check int) "nothing left: counts" 0 r2.Fsck.counts_fixed;
  Alcotest.(check int) "nothing left: clients" 0 r2.Fsck.clients_swept

let tmp = Filename.temp_file "cxlshm_fsck" ".pool"

let test_damaged_image_roundtrip () =
  let arena = Shm.create ~cfg:Config.small () in
  let mem, _lay = mem_lay arena in
  let a = Shm.join arena () in
  let keep = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.write_word keep 0 31337;
  Named_roots.publish a ~name:"keep" keep;
  let obj = Cxl_ref.obj keep in
  Cxl_ref.drop keep;
  Mem.unsafe_poke mem
    (Obj_header.header_of_obj obj)
    (Obj_header.make ~lcid:1 ~lera:2 ~ref_cnt:5);
  Shm.save arena tmp;
  (* load_raw presents the image as saved: the damage must survive the
     round trip for fsck to see it *)
  let loaded = Shm.load_raw tmp in
  Alcotest.(check bool) "damage survived the image" false (check_clean loaded);
  let r = Shm.fsck loaded in
  Alcotest.(check bool) "repaired" true (Fsck.clean r);
  let b = Shm.join loaded () in
  match Named_roots.lookup b ~name:"keep" with
  | None -> Alcotest.fail "anchored object lost across save/fsck"
  | Some k -> Alcotest.(check int) "payload intact" 31337 (Cxl_ref.read_word k 0)

(* The headline guarantee: every crash point x every device-fault
   schedule x both backends recovers to a clean arena. *)
let test_soak_matrix () =
  let runs = Soak.run_matrix ~seed:20250806 ~steps:150 () in
  Alcotest.(check int) "full matrix size"
    (2 * List.length Soak.default_schedules * (1 + List.length Fault.all_points))
    (List.length runs);
  List.iter
    (fun r ->
      if not r.Soak.clean then
        Alcotest.failf "unclean run: %s/%s/%s seed=%d" r.Soak.backend
          r.Soak.schedule r.Soak.point r.Soak.seed)
    runs;
  (* faults actually flowed through the pipeline somewhere in the sweep *)
  Alcotest.(check bool) "faults injected" true
    (List.exists (fun r -> r.Soak.dev_faults > 0) runs);
  Alcotest.(check bool) "retries exercised" true
    (List.exists (fun r -> r.Soak.retries > 0) runs);
  Alcotest.(check bool) "escalations exercised" true
    (List.exists (fun r -> r.Soak.escalations > 0) runs);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let json = Soak.matrix_to_json ~seed:20250806 runs in
  Alcotest.(check bool) "json has totals" true
    (String.length json > 0
    && json.[0] = '{'
    && contains json "\"failures\":0")

(* Damaged adoption state: a dangling journal rootref, a stale claim and
   registry residue of a freed client slot must fail verification, and one
   repair pass must clear all three (pass 2.7). *)
let test_adoption_journal_repaired () =
  let arena = Shm.create ~cfg:Config.small () in
  let mem, lay = mem_lay arena in
  let a = Shm.join arena () in
  (* a live durable root alongside the damage, to prove repair stays scoped *)
  let keep = Shm.cxl_malloc a ~size_bytes:32 () in
  Named_roots.publish a ~name:"keep" keep;
  Cxl_ref.drop keep;
  Shm.leave a;
  Alcotest.(check bool) "pre-damage clean" true (check_clean arena);
  (* dangling journal entry: rr word that is no valid live rootref *)
  Mem.unsafe_poke mem (Layout.adopt_slot_stamp lay 0) 7;
  Mem.unsafe_poke mem (Layout.adopt_slot_rr lay 0) 12345;
  (* stale claim on an empty slot, naming a freed client *)
  Mem.unsafe_poke mem (Layout.adopt_slot_claim lay 1) 3;
  (* registry residue on a client slot that is free *)
  Mem.unsafe_poke mem (Layout.park_slot_stamp lay 2 0) 9;
  Mem.unsafe_poke mem (Layout.park_slot_rr lay 2 0) 54321;
  Alcotest.(check bool) "damage detected" false (check_clean arena);
  let r = repair arena in
  Alcotest.(check bool) "repaired" true (Fsck.clean r);
  Alcotest.(check bool) "adoption entries cleared" true (r.Fsck.adopt_fixed >= 3);
  Alcotest.(check int) "journal slot zeroed" 0
    (Mem.unsafe_peek mem (Layout.adopt_slot_rr lay 0));
  Alcotest.(check int) "claim zeroed" 0
    (Mem.unsafe_peek mem (Layout.adopt_slot_claim lay 1));
  Alcotest.(check int) "registry residue zeroed" 0
    (Mem.unsafe_peek mem (Layout.park_slot_rr lay 2 0));
  let r2 = repair arena in
  Alcotest.(check int) "idempotent" 0 r2.Fsck.adopt_fixed

let suite =
  [
    Alcotest.test_case "clean arena: nothing to fix" `Quick test_clean_arena_nothing_to_fix;
    Alcotest.test_case "adoption journal repaired" `Quick test_adoption_journal_repaired;
    Alcotest.test_case "torn header repaired" `Quick test_torn_header_repaired;
    Alcotest.test_case "wild ref cleared, orphan freed" `Quick test_wild_ref_cleared_unreachable_freed;
    Alcotest.test_case "broken geometry quarantined" `Quick test_broken_geometry_quarantined;
    Alcotest.test_case "repair is idempotent" `Quick test_repair_idempotent;
    Alcotest.test_case "damaged image round-trip" `Quick test_damaged_image_roundtrip;
    Alcotest.test_case "soak matrix all clean" `Quick test_soak_matrix;
  ]
