(* The seed backend: one flat atomic-word array — a single CXL device.
   Behavior-identical to the pre-backend-refactor arena. *)

type t = { cells : int Atomic.t array; tier : Latency.tier }

let create ?(tier = Latency.Cxl) ~words () =
  { cells = Array.init words (fun _ -> Atomic.make 0); tier }

let name _ = "flat"
let words t = Array.length t.cells
let num_devices _ = 1
let device_of _ _ = 0
let device_tier t _ = t.tier
let load t p = Atomic.get t.cells.(p)
let store t p v = Atomic.set t.cells.(p) v

let cas t p ~expected ~desired =
  Atomic.compare_and_set t.cells.(p) expected desired

let fetch_add t p n = Atomic.fetch_and_add t.cells.(p) n
let fence _ = ()
let flush _ _ = ()

let fill t ~pos ~len v =
  for i = pos to pos + len - 1 do
    Atomic.set t.cells.(i) v
  done

(* memmove: copy backward when the destination overlaps past the source. *)
let blit t ~src ~dst ~len =
  if src < dst && src + len > dst then
    for i = len - 1 downto 0 do
      Atomic.set t.cells.(dst + i) (Atomic.get t.cells.(src + i))
    done
  else
    for i = 0 to len - 1 do
      Atomic.set t.cells.(dst + i) (Atomic.get t.cells.(src + i))
    done

let snapshot t = Array.map Atomic.get t.cells
let restore t ws = Array.iteri (fun i v -> Atomic.set t.cells.(i) v) ws
