(** Aligned plain-text tables for the benchmark harness output. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
val cell_f : float -> string
(** Format a float compactly ("43.2", "0.031", "117.2"). *)

val cell_i : int -> string
val print : t -> unit
val to_string : t -> string
