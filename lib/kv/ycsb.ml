type dist = Zipfian | Latest | Uniform

type mix = { read : float; update : float; insert : float; rmw : float }

type t = {
  mutable keys : int;  (** current population; [Insert]s append fresh keys *)
  mix : mix;
  dist : dist;
  zipf : Zipf.t;
  rng : Random.State.t;
  mutable counter : int;
}

let check_fraction name v =
  if v < 0.0 || v > 1.0 then
    invalid_arg (Printf.sprintf "Ycsb: %s must be in [0,1]" name)

let create_mix ~keys ~mix ~dist ~theta ~seed =
  if keys < 1 then invalid_arg "Ycsb: keys must be positive";
  check_fraction "read" mix.read;
  check_fraction "update" mix.update;
  check_fraction "insert" mix.insert;
  check_fraction "rmw" mix.rmw;
  let total = mix.read +. mix.update +. mix.insert +. mix.rmw in
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg "Ycsb: op mix must sum to 1";
  {
    keys;
    mix;
    dist;
    zipf = Zipf.create ~n:keys ~theta ~seed;
    rng = Random.State.make [| seed; 0xCB |];
    counter = 0;
  }

let create ~keys ~write_ratio ~theta ~seed =
  if write_ratio < 0.0 || write_ratio > 1.0 then
    invalid_arg "Ycsb.create: write_ratio in [0,1]";
  create_mix ~keys
    ~mix:{ read = 1.0 -. write_ratio; update = write_ratio;
           insert = 0.0; rmw = 0.0 }
    ~dist:Zipfian ~theta ~seed

let keys t = t.keys
let mix t = t.mix
let dist t = t.dist

let expected_writes t = t.mix.update +. t.mix.insert +. t.mix.rmw

let sample_key t =
  let rank = Zipf.sample t.zipf in
  match t.dist with
  | Zipfian -> rank
  | Uniform -> Random.State.int t.rng t.keys
  | Latest ->
      (* Rank 0 is the hottest — map it to the most recently inserted key,
         so the skew tracks the growing population instead of a static id
         range (YCSB-D's "latest" request distribution). *)
      let k = t.keys - 1 - rank in
      if k < 0 then 0 else k

let next t =
  t.counter <- t.counter + 1;
  let m = t.mix in
  let u = Random.State.float t.rng 1.0 in
  if u < m.read then Kv_intf.Read (sample_key t)
  else if u < m.read +. m.update then Kv_intf.Update (sample_key t, t.counter)
  else if u < m.read +. m.update +. m.insert then begin
    let k = t.keys in
    t.keys <- t.keys + 1;
    Kv_intf.Insert (k, t.counter)
  end
  else Kv_intf.Rmw (sample_key t, t.counter)

(* The load phase streams: a million-key population must not materialise a
   million-cell OCaml list before the first insert lands. *)
let load_iter t f =
  for k = 0 to t.keys - 1 do
    f (Kv_intf.Insert (k, k))
  done

let load_seq t = Seq.init t.keys (fun k -> Kv_intf.Insert (k, k))
let load_ops t = List.of_seq (load_seq t)

type preset = A | B | C | D | F

let preset_name = function
  | A -> "YCSB-A (50% update, zipf .99)"
  | B -> "YCSB-B (5% update, zipf .99)"
  | C -> "YCSB-C (read only, zipf .99)"
  | D -> "YCSB-D (5% insert, latest)"
  | F -> "YCSB-F (50% read-modify-write, zipf .99)"

let of_preset ~keys ~seed = function
  | A -> create ~keys ~write_ratio:0.5 ~theta:0.99 ~seed
  | B -> create ~keys ~write_ratio:0.05 ~theta:0.99 ~seed
  | C -> create ~keys ~write_ratio:0.0 ~theta:0.99 ~seed
  | D ->
      create_mix ~keys
        ~mix:{ read = 0.95; update = 0.0; insert = 0.05; rmw = 0.0 }
        ~dist:Latest ~theta:0.9 ~seed
  | F ->
      create_mix ~keys
        ~mix:{ read = 0.5; update = 0.0; insert = 0.0; rmw = 0.5 }
        ~dist:Zipfian ~theta:0.99 ~seed
