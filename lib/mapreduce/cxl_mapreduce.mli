(** CXL-MapReduce (§6.3.2): a Phoenix-style MapReduce where input chunks,
    task messages and partial results are all shared CXLObjs.

    Executors are CXL-SHM clients in their own domains serving CXL-RPC;
    the master dispatches pass-by-reference map tasks (a task argument is
    the chunk {e reference}, never the data) and merges partial results.
    Both phases touch the same shared region — no copying — and executor
    failure is survivable by construction: the in-flight task message and
    its chunk are reaped by the recovery service.

    Against the paper: scalability with executors (Fig 9's 8-9× from 2→64)
    comes from genuine domain parallelism here; the Phoenix comparison is
    run by the benchmark harness with the same [Mr_job] jobs. *)

type session

val start : arena:Cxlshm.Shm.arena -> master:Cxlshm.Ctx.t -> executors:int -> session
(** Spawn executor clients (one domain each) serving the built-in job
    handlers. *)

val stop : session -> unit
val executors : session -> int

(** {1 Shared chunk storage} *)

val store_chunk : Cxlshm.Ctx.t -> bytes -> Cxlshm.Cxl_ref.t
(** Write a byte chunk into the pool ([word 0] = length, bytes after). *)

val chunk_bytes : Cxlshm_rpc.Message.view -> bytes

(** {1 Jobs} *)

val task_handler : Cxlshm_rpc.Cxl_rpc.handler
(** The executor-side dispatcher (wordcount + kmeans map functions) — also
    usable by lockstep/virtual-parallel harnesses. *)

val wordcount : session -> chunks:Cxlshm.Cxl_ref.t list -> vocab:int -> (int * int) list
(** Distributed wordcount; returns (word-id, count) sorted by key. *)

val kmeans :
  session ->
  chunks:Cxlshm.Cxl_ref.t list ->
  k:int ->
  dims:int ->
  iters:int ->
  int array array
(** Distributed k-means over point chunks ({!Mr_job.encode_points}
    encoding); centroids live in one shared object updated in place by the
    master (single writer) and read zero-copy by every executor. *)
