(* Device-level fault injection and the retry/backoff escalation path:
   backend determinism, the four fault classes, arm/disarm servicing
   semantics, Ctx-level retries, commit-point escalation, and degraded-
   device allocation steering. *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem
module Bf = Cxlshm_shmem.Backend_faulty
module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency

let spec ?(seed = 1) ?(rp = 0.) ?(tw = 0.) ?(sw = 0.) ?(offline = []) () =
  { Bf.seed; read_poison = rp; torn_write = tw; stuck_word = sw; offline }

let raw_mem ?(base = Mem.Flat) ?(words = 1024) fault_spec =
  let m =
    Mem.create ~tier:Latency.Cxl
      ~backend:(Mem.Faulty { base; fault_spec })
      ~words ()
  in
  Mem.set_fault_injection m true;
  m

let faulty_cfg ?(base = Mem.Flat) fault_spec =
  { Config.small with Config.backend = Mem.Faulty { base; fault_spec } }

(* ---- backend-level behaviour ---- *)

let test_determinism () =
  let trace m =
    let st = Stats.create () in
    let faults = ref [] in
    for i = 0 to 499 do
      let addr = 17 * i mod 512 in
      try
        if i mod 2 = 0 then ignore (Mem.load m ~st addr)
        else Mem.store m ~st addr i
      with Mem.Device_error { addr; fault; transient; _ } ->
        faults := (i, addr, fault, transient) :: !faults
    done;
    (List.rev !faults, Mem.injected_faults m)
  in
  let s = spec ~seed:42 ~rp:0.02 ~tw:0.01 ~sw:0.005 ~offline:[ (0, 100, 120) ] () in
  let t1, c1 = trace (raw_mem s) in
  let t2, c2 = trace (raw_mem s) in
  Alcotest.(check bool) "some faults fired" true (t1 <> []);
  Alcotest.(check bool) "identical fault traces" true (t1 = t2);
  Alcotest.(check bool) "identical per-class counts" true (c1 = c2);
  let t3, _ = trace (raw_mem { s with Bf.seed = 43 }) in
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t3)

let test_read_poison () =
  let m = raw_mem (spec ~rp:1.0 ()) in
  let st = Stats.create () in
  (match Mem.load m ~st 5 with
  | _ -> Alcotest.fail "poisoned load returned data"
  | exception Mem.Device_error { fault; transient; _ } ->
      Alcotest.(check bool) "class" true (fault = Mem.Read_poison);
      Alcotest.(check bool) "transient" true transient);
  (* nothing corrupted: the data is fine once the line is healthy *)
  Mem.set_fault_injection m false;
  Alcotest.(check int) "memory intact" 0 (Mem.unsafe_peek m 5)

let test_torn_write () =
  let m = raw_mem (spec ~tw:1.0 ()) in
  let st = Stats.create () in
  Mem.set_fault_injection m false;
  Mem.unsafe_poke m 7 0xABCD00000005;
  Mem.set_fault_injection m true;
  (match Mem.store m ~st 7 0x1111 with
  | () -> Alcotest.fail "torn store reported success"
  | exception Mem.Device_error { fault; transient; _ } ->
      Alcotest.(check bool) "class" true (fault = Mem.Torn_write);
      Alcotest.(check bool) "transient" true transient);
  Mem.set_fault_injection m false;
  (* low half of the new value, high half of the old: the tear IS in memory *)
  Alcotest.(check int) "torn word" 0xABCD00001111 (Mem.unsafe_peek m 7);
  (* a retry overwrites the tear *)
  Mem.store m ~st 7 0x2222;
  Alcotest.(check int) "retry heals" 0x2222 (Mem.unsafe_peek m 7)

let test_stuck_word () =
  let m = raw_mem (spec ~sw:1.0 ()) in
  let st = Stats.create () in
  (match Mem.store m ~st 9 55 with
  | () -> Alcotest.fail "stuck store reported success"
  | exception Mem.Device_error { fault; transient; _ } ->
      Alcotest.(check bool) "class" true (fault = Mem.Stuck_word);
      Alcotest.(check bool) "persistent" false transient);
  (* the store was dropped and the address stays stuck *)
  (match Mem.store m ~st 9 56 with
  | () -> Alcotest.fail "second store to stuck word succeeded"
  | exception Mem.Device_error { fault; _ } ->
      Alcotest.(check bool) "still stuck" true (fault = Mem.Stuck_word));
  (* servicing the device replaces the stuck media: the swallowed values
     are gone, but stores land again *)
  Mem.set_fault_injection m false;
  Alcotest.(check int) "stores were dropped" 0 (Mem.unsafe_peek m 9);
  Mem.store m ~st 9 57;
  Alcotest.(check int) "post-service store lands" 57 (Mem.unsafe_peek m 9)

let test_offline_window () =
  let m = raw_mem (spec ~offline:[ (0, 0, 3) ] ()) in
  let st = Stats.create () in
  for i = 1 to 3 do
    match Mem.load m ~st 0 with
    | _ -> Alcotest.failf "op %d inside the window succeeded" i
    | exception Mem.Device_error { fault; transient; _ } ->
        Alcotest.(check bool) "offline" true (fault = Mem.Offline);
        Alcotest.(check bool) "transient" true transient
  done;
  (* the window has passed: the device is back *)
  Alcotest.(check int) "post-window load" 0 (Mem.load m ~st 0)

let test_disarmed_is_quiet () =
  let m =
    Mem.create ~tier:Latency.Cxl
      ~backend:(Mem.Faulty { base = Mem.Flat; fault_spec = spec ~rp:1.0 ~tw:1.0 ~sw:1.0 () })
      ~words:256 ()
  in
  (* a Faulty pool starts disarmed: setup traffic never faults *)
  Alcotest.(check bool) "starts disarmed" false (Mem.fault_injection_armed m);
  let st = Stats.create () in
  for i = 0 to 63 do
    Mem.store m ~st i i;
    Alcotest.(check int) "quiet round-trip" i (Mem.load m ~st i)
  done;
  Alcotest.(check bool) "nothing injected" true
    (List.for_all (fun (_, n) -> n = 0) (Mem.injected_faults m))

(* ---- the retry/backoff layer ---- *)

let dev_err ~transient =
  Mem.Device_error
    {
      dev = 3;
      addr = 0;
      fault = (if transient then Mem.Read_poison else Mem.Stuck_word);
      transient;
    }

let test_retry_transient_heals () =
  let st = Stats.create () in
  let escalated = ref None in
  let calls = ref 0 in
  let v =
    Retry.with_retries ~st ~on_escalate:(fun ~dev -> escalated := Some dev)
      (fun _commit ->
        incr calls;
        if !calls < 3 then raise (dev_err ~transient:true) else 7)
  in
  Alcotest.(check int) "result" 7 v;
  Alcotest.(check int) "attempts" 3 !calls;
  Alcotest.(check int) "faults counted" 2 st.Stats.dev_faults;
  Alcotest.(check int) "retries counted" 2 st.Stats.retries;
  Alcotest.(check bool) "backoff accumulated" true (st.Stats.backoff_ns > 0.);
  Alcotest.(check int) "no escalation" 0 st.Stats.fault_escalations;
  Alcotest.(check bool) "no device blamed" true (!escalated = None)

let test_retry_exhaustion_escalates () =
  let st = Stats.create () in
  let escalated = ref None in
  let calls = ref 0 in
  let policy = { Retry.default_policy with Retry.max_attempts = 3 } in
  (match
     Retry.with_retries ~policy ~st
       ~on_escalate:(fun ~dev -> escalated := Some dev)
       (fun _commit ->
         incr calls;
         raise (dev_err ~transient:true))
   with
  | _ -> Alcotest.fail "exhausted retries must re-raise"
  | exception Mem.Device_error _ -> ());
  Alcotest.(check int) "bounded attempts" 3 !calls;
  Alcotest.(check int) "escalated once" 1 st.Stats.fault_escalations;
  Alcotest.(check (option int)) "device blamed" (Some 3) !escalated

let test_retry_persistent_escalates_immediately () =
  let st = Stats.create () in
  let calls = ref 0 in
  (match
     Retry.with_retries ~st ~on_escalate:(fun ~dev:_ -> ())
       (fun _commit ->
         incr calls;
         raise (dev_err ~transient:false))
   with
  | _ -> Alcotest.fail "persistent fault must re-raise"
  | exception Mem.Device_error { transient; _ } ->
      Alcotest.(check bool) "persistent" false transient);
  Alcotest.(check int) "no retry" 1 !calls;
  Alcotest.(check int) "no retries counted" 0 st.Stats.retries

let test_retry_never_crosses_commit () =
  let st = Stats.create () in
  let calls = ref 0 in
  (match
     Retry.with_retries ~st ~on_escalate:(fun ~dev:_ -> ())
       (fun commit ->
         incr calls;
         commit ();
         (* transient, but the transaction committed: re-running would
            apply it twice, so this must escalate instead *)
         raise (dev_err ~transient:true))
   with
  | _ -> Alcotest.fail "post-commit fault must re-raise"
  | exception Mem.Device_error _ -> ());
  Alcotest.(check int) "not re-run" 1 !calls;
  Alcotest.(check int) "escalated" 1 st.Stats.fault_escalations

(* Regression: with_retries used to spin through its exponential backoff
   without charging the stall to the modeled clock, so a fault-ridden run
   reported the same modeled time as a clean one. backoff_ns must now be a
   first-class component of the Fig 7 breakdown and of modeled_ns. *)
let test_backoff_charged_to_modeled_clock () =
  let st = Stats.create () in
  let calls = ref 0 in
  ignore
    (Retry.with_retries ~st ~on_escalate:(fun ~dev:_ -> ())
       (fun _commit ->
         incr calls;
         if !calls < 4 then raise (dev_err ~transient:true) else 0));
  let model = Latency.of_tier Latency.Cxl in
  let access, fence, flush, backoff = Stats.breakdown_ns model st in
  Alcotest.(check bool) "backoff component present" true (backoff > 0.);
  Alcotest.(check bool) "backoff equals the accumulated stall" true
    (Float.abs (backoff -. st.Stats.backoff_ns) < 1e-9);
  let total = Stats.modeled_ns model st in
  Alcotest.(check bool) "breakdown sums to modeled_ns" true
    (Float.abs (total -. (access +. fence +. flush +. backoff)) < 1e-6);
  (* the same fault-free work is strictly cheaper: the stall is real time *)
  Alcotest.(check bool) "modeled clock includes the stall" true
    (total >= st.Stats.backoff_ns)

let test_ctx_retries_absorb_poison () =
  let cfg = faulty_cfg (spec ~seed:5 ~rp:0.2 ()) in
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  Shm.set_fault_injection arena true;
  let r = Shm.cxl_malloc a ~size_bytes:32 () in
  for i = 0 to 199 do
    Cxl_ref.write_word r 0 i;
    Alcotest.(check int) "read back through poison" i (Cxl_ref.read_word r 0)
  done;
  Alcotest.(check bool) "faults were injected" true (a.Ctx.st.Stats.dev_faults > 0);
  Alcotest.(check bool) "retries absorbed them" true (a.Ctx.st.Stats.retries > 0);
  Alcotest.(check int) "nothing escalated" 0 a.Ctx.st.Stats.fault_escalations;
  Shm.set_fault_injection arena false;
  Cxl_ref.drop r;
  Shm.leave a;
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_escalation_marks_degraded () =
  let cfg =
    faulty_cfg
      ~base:(Mem.Striped { devices = 4; stripe_words = 0; tiers = [||] })
      (spec ~sw:1.0 ())
  in
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  Shm.set_fault_injection arena true;
  let failed_dev =
    match Shm.cxl_malloc a ~size_bytes:16 () with
    | _ -> Alcotest.fail "allocation on all-stuck media succeeded"
    | exception Mem.Device_error { dev; transient; _ } ->
        Alcotest.(check bool) "persistent" false transient;
        dev
  in
  Alcotest.(check bool) "escalation recorded" true
    (a.Ctx.st.Stats.fault_escalations > 0);
  Alcotest.(check bool) "device marked degraded" true
    (Ctx.device_degraded a failed_dev);
  Alcotest.(check (list int)) "bitmap readable from any ctx" [ failed_dev ]
    (Ctx.degraded_devices (Shm.service_ctx arena));
  (* the client fail-stops; service the device and recover it *)
  Shm.set_fault_injection arena false;
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false));
  Ctx.clear_degraded svc;
  Alcotest.(check (list int)) "bitmap cleared" [] (Ctx.degraded_devices svc);
  Alcotest.(check bool) "clean after recovery" true
    (Validate.is_clean (Shm.validate arena))

let test_degraded_steering () =
  let cfg =
    {
      Config.small with
      Config.backend = Mem.Striped { devices = 4; stripe_words = 0; tiers = [||] };
    }
  in
  let arena = Shm.create ~cfg () in
  let svc = Shm.service_ctx arena in
  let a = Shm.join arena ~cid:2 () in
  Alcotest.(check int) "home device" 2 a.Ctx.home_dev;
  Ctx.mark_degraded svc 2;
  let held = List.init 30 (fun _ -> Shm.cxl_malloc a ~size_bytes:48 ()) in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "segment %d steered off degraded device" s)
        true
        (Alloc.segment_device a s <> 2))
    (Segment.owned_by a ~cid:a.Ctx.cid);
  List.iter Cxl_ref.drop held;
  Ctx.clear_degraded svc;
  Shm.leave a;
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let suite =
  [
    Alcotest.test_case "deterministic schedule" `Quick test_determinism;
    Alcotest.test_case "read poison" `Quick test_read_poison;
    Alcotest.test_case "torn write" `Quick test_torn_write;
    Alcotest.test_case "stuck word" `Quick test_stuck_word;
    Alcotest.test_case "offline window" `Quick test_offline_window;
    Alcotest.test_case "disarmed is quiet" `Quick test_disarmed_is_quiet;
    Alcotest.test_case "retry: transient heals" `Quick test_retry_transient_heals;
    Alcotest.test_case "retry: exhaustion escalates" `Quick test_retry_exhaustion_escalates;
    Alcotest.test_case "retry: persistent escalates" `Quick test_retry_persistent_escalates_immediately;
    Alcotest.test_case "retry: never crosses commit" `Quick test_retry_never_crosses_commit;
    Alcotest.test_case "backoff charged to modeled clock" `Quick
      test_backoff_charged_to_modeled_clock;
    Alcotest.test_case "ctx retries absorb poison" `Quick test_ctx_retries_absorb_poison;
    Alcotest.test_case "escalation marks degraded" `Quick test_escalation_marks_degraded;
    Alcotest.test_case "degraded steering" `Quick test_degraded_steering;
  ]
