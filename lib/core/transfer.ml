module Mem = Cxlshm_shmem.Mem
module Histogram = Cxlshm_shmem.Histogram

type endpoint = Sender | Receiver

type t = {
  ctx : Ctx.t;
  qref : Cxl_ref.t;
  dir_idx : int;
  endpoint : endpoint;
  capacity : int;
}

let capacity t = t.capacity
let endpoint t = t.endpoint
let queue_ref t = t.qref
let dir_index t = t.dir_idx

(* Test-only: see the mutation comment in [receive]. *)
let mutation_unfenced_advance = ref false

(* Queue-object data layout: ring slots are the emb slots [0..cap-1];
   plain words after them hold the queue header fields of Fig 5. *)
let w_capacity = 0
let w_head = 1
let w_tail = 2
let w_sender = 3
let w_receiver = 4
let w_flags = 5
let extra_words = 6
let flag_sender_closed = 1
let flag_receiver_closed = 2

let qword (_ctx : Ctx.t) qobj ~cap i =
  Obj_header.data_of_obj qobj + cap + i

let qload t i = Ctx.load t.ctx (qword t.ctx (Cxl_ref.obj t.qref) ~cap:t.capacity i)
let qstore t i v = Ctx.store t.ctx (qword t.ctx (Cxl_ref.obj t.qref) ~cap:t.capacity i) v

let peer t = if t.endpoint = Sender then qload t w_receiver - 1 else qload t w_sender - 1
let pending t = qload t w_tail - qload t w_head

let peer_closed t =
  let bit =
    if t.endpoint = Sender then flag_receiver_closed else flag_sender_closed
  in
  qload t w_flags land bit <> 0

(* Directory slot: +0 state {phase:4, owner_cid+1:10}, +1 sender cid+1,
   +2 receiver cid+1, +3 counted queue pointer. *)
let phase_free = 0
let phase_claiming = 1
let phase_active = 2
let phase_cleaning = 3

let pack_state ~phase ~owner = phase lor ((owner + 1) lsl 4)
let phase_of s = s land 0xf
let owner_of s = (s lsr 4) - 1

let slot_state lay q = Layout.queue_slot lay q
let slot_sender lay q = Layout.queue_slot lay q + 1
let slot_receiver lay q = Layout.queue_slot lay q + 2
let slot_qptr lay q = Layout.queue_slot lay q + 3

(* Channel sub-heap registry: the directory slot's four spare words record
   which segments an RPC channel carved out as its private sub-heap, so the
   peer (validation walk) and recovery (revocation) can find them without
   any out-of-band state. *)
let set_channel_segs (ctx : Ctx.t) q segs =
  let lay = ctx.Ctx.lay in
  let n = List.length segs in
  if n > Layout.queue_max_channel_segs then
    invalid_arg "Transfer.set_channel_segs: too many segments";
  List.iteri
    (fun k s -> Ctx.store ctx (Layout.queue_slot_seg lay q k) (s + 1))
    segs;
  Ctx.store ctx (Layout.queue_slot_nsegs lay q) n;
  Ctx.fence ctx

let channel_segs (ctx : Ctx.t) q =
  let lay = ctx.Ctx.lay in
  let n =
    min
      (Ctx.load ctx (Layout.queue_slot_nsegs lay q))
      Layout.queue_max_channel_segs
  in
  List.filter_map
    (fun k ->
      let v = Ctx.load ctx (Layout.queue_slot_seg lay q k) in
      if v = 0 then None else Some (v - 1))
    (List.init (max n 0) Fun.id)

let clear_channel_segs (ctx : Ctx.t) q =
  let lay = ctx.Ctx.lay in
  Ctx.store ctx (Layout.queue_slot_nsegs lay q) 0;
  for k = 0 to Layout.queue_max_channel_segs - 1 do
    Ctx.store ctx (Layout.queue_slot_seg lay q k) 0
  done

(* True when [seg] is registered as a channel sub-heap on some in-use
   directory slot with an endpoint other than [dead_cid] still alive.
   Recovery consults this before recycling a dead claimant's segment: the
   surviving peer is still operating on the sub-heap — frees of reaped
   messages may be in flight — so the segment must stay (orphaned) until
   that peer revokes the channel or dies in turn. *)
let seg_held_by_live_peer (ctx : Ctx.t) ~seg ~dead_cid =
  let lay = ctx.Ctx.lay in
  let nslots = lay.Layout.cfg.Config.queue_slots in
  let live c = c >= 0 && c <> dead_cid && Client.is_alive ctx ~cid:c in
  let rec go q =
    if q >= nslots then false
    else
      let st = Ctx.load ctx (slot_state lay q) in
      (phase_of st <> phase_free
      && List.mem seg (channel_segs ctx q)
      && (live (owner_of st)
         || live (Ctx.load ctx (slot_sender lay q) - 1)
         || live (Ctx.load ctx (slot_receiver lay q) - 1)))
      || go (q + 1)
  in
  go 0

let connect ?(channel_segs = []) (ctx : Ctx.t) ~receiver ~capacity:cap =
  if cap < 1 then invalid_arg "Transfer.connect: capacity must be positive";
  if List.length channel_segs > Layout.queue_max_channel_segs then
    invalid_arg "Transfer.connect: too many channel segments";
  let lay = ctx.Ctx.lay in
  let nslots = (Ctx.cfg ctx).Config.queue_slots in
  let rec claim q =
    if q >= nslots then failwith "Transfer.connect: queue directory full"
    else if
      Ctx.cas ctx (slot_state lay q) ~expected:phase_free
        ~desired:(pack_state ~phase:phase_claiming ~owner:ctx.cid)
    then q
    else claim (q + 1)
  in
  let q = claim 0 in
  let rr, qobj = Alloc.alloc_obj ctx ~data_words:(cap + extra_words) ~emb_cnt:cap in
  let qref = Cxl_ref.of_rootref ctx rr in
  Ctx.store ctx (slot_sender lay q) (ctx.cid + 1);
  Ctx.store ctx (slot_receiver lay q) (receiver + 1);
  (* The directory holds a counted reference so the queue survives either
     endpoint — attached with the standard era transaction. *)
  Refc.attach ctx ~ref_addr:(slot_qptr lay q) ~refed:qobj;
  let qw = qword ctx qobj ~cap in
  Ctx.store ctx (qw w_capacity) cap;
  Ctx.store ctx (qw w_head) 0;
  Ctx.store ctx (qw w_tail) 0;
  Ctx.store ctx (qw w_sender) (ctx.cid + 1);
  Ctx.store ctx (qw w_receiver) (receiver + 1);
  Ctx.store ctx (qw w_flags) 0;
  (* The sub-heap registry must be in place before the slot turns active:
     the receiver reads it exactly once, at open. *)
  if channel_segs <> [] then set_channel_segs ctx q channel_segs;
  Ctx.fence ctx;
  Ctx.store ctx (slot_state lay q) (pack_state ~phase:phase_active ~owner:ctx.cid);
  { ctx; qref; dir_idx = q; endpoint = Sender; capacity = cap }

let open_from (ctx : Ctx.t) ~sender =
  let lay = ctx.Ctx.lay in
  let nslots = (Ctx.cfg ctx).Config.queue_slots in
  let rec find q =
    if q >= nslots then None
    else if
      phase_of (Ctx.load ctx (slot_state lay q)) = phase_active
      && Ctx.load ctx (slot_sender lay q) = sender + 1
      && Ctx.load ctx (slot_receiver lay q) = ctx.cid + 1
    then Some q
    else find (q + 1)
  in
  match find 0 with
  | None -> None
  | Some q ->
      let qobj = Ctx.load ctx (slot_qptr lay q) in
      if qobj = 0 then None
      else begin
        let rr = Alloc.alloc_rootref ctx in
        Refc.attach ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:qobj;
        let qref = Cxl_ref.of_rootref ctx rr in
        (* The ring capacity is the queue object's embedded-slot count. *)
        let cap =
          Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj qobj))
        in
        assert (Ctx.load ctx (qword ctx qobj ~cap w_capacity) = cap);
        Some { ctx; qref; dir_idx = q; endpoint = Receiver; capacity = cap }
      end

type send_result = Sent | Full | Closed

let send t payload =
  assert (t.endpoint = Sender);
  Trace.with_span t.ctx Histogram.Transfer_send ~addr:(Cxl_ref.obj t.qref)
  @@ fun () ->
  let flags = qload t w_flags in
  if flags land flag_receiver_closed <> 0 then Closed
  else begin
    let tail = qload t w_tail in
    let head = qload t w_head in
    if tail - head >= t.capacity then Full
    else begin
      let qobj = Cxl_ref.obj t.qref in
      let slot = Obj_header.emb_slot qobj (tail mod t.capacity) in
      Refc.attach t.ctx ~ref_addr:slot ~refed:(Cxl_ref.obj payload);
      Ctx.crash_point t.ctx Fault.Send_after_attach;
      Ctx.fence t.ctx;
      (* Ownership transfers to the receiver here (§5.2). Under epoch
         batching the tail-line write-back rides the next batch boundary
         ({!Ctx.flush_deferred}) — the tail value itself is already
         recoverable from the attached slots, the flush only bounds how
         much a post-crash receiver re-sees. *)
      qstore t w_tail (tail + 1);
      let tail_line = qword t.ctx qobj ~cap:t.capacity w_tail in
      if Ctx.epoch_enabled t.ctx then Ctx.flush_deferred t.ctx tail_line
      else Ctx.flush t.ctx tail_line;
      Sent
    end
  end

(* Batched send: attach up to [room] payloads to consecutive tail slots,
   then publish the whole prefix with ONE fence and ONE tail store. The
   single tail advance is the only commit point, so the receiver either
   sees none of the batch or a dense prefix of it — per-message
   exactly-once semantics are untouched. A crash between an attach and the
   tail store leaves the extra slot references owned by the queue object,
   exactly like a crashed single [send]. *)
let send_batch t payloads =
  assert (t.endpoint = Sender);
  Trace.with_span t.ctx Histogram.Transfer_send ~addr:(Cxl_ref.obj t.qref)
  @@ fun () ->
  let flags = qload t w_flags in
  if flags land flag_receiver_closed <> 0 then (0, Closed)
  else begin
    let tail = qload t w_tail in
    let head = qload t w_head in
    let room = t.capacity - (tail - head) in
    if room <= 0 then (0, Full)
    else begin
      let qobj = Cxl_ref.obj t.qref in
      let n = ref 0 in
      List.iteri
        (fun i p ->
          if i < room then begin
            let slot = Obj_header.emb_slot qobj ((tail + i) mod t.capacity) in
            Refc.attach t.ctx ~ref_addr:slot ~refed:(Cxl_ref.obj p);
            Ctx.crash_point t.ctx Fault.Send_after_attach;
            incr n
          end)
        payloads;
      Ctx.fence t.ctx;
      (* Ownership of all [!n] messages transfers here. *)
      qstore t w_tail (tail + !n);
      let tail_line = qword t.ctx qobj ~cap:t.capacity w_tail in
      if Ctx.epoch_enabled t.ctx then Ctx.flush_deferred t.ctx tail_line
      else Ctx.flush t.ctx tail_line;
      (!n, if !n = List.length payloads then Sent else Full)
    end
  end

type recv_result = Received of Cxl_ref.t | Empty | Drained

let receive t =
  assert (t.endpoint = Receiver);
  Trace.with_span t.ctx Histogram.Transfer_recv ~addr:(Cxl_ref.obj t.qref)
  @@ fun () ->
  let head = qload t w_head in
  let tail = qload t w_tail in
  if head = tail then
    if qload t w_flags land flag_sender_closed <> 0 then Drained else Empty
  else begin
    let qobj = Cxl_ref.obj t.qref in
    let slot = Obj_header.emb_slot qobj (head mod t.capacity) in
    let obj = Ctx.load t.ctx slot in
    assert (obj <> 0);
    (* Mutation self-check switch: re-introduces the pre-fix unfenced head
       advance. As with [Spsc_queue.mutation_unfenced_pop], the simulator's
       atomics are sequentially consistent, so the mutation applies the
       reordering the missing fence permitted on hardware — the head store
       becomes visible before the slot detach, handing the slot back to the
       sender while it still holds the old counted reference. *)
    if !mutation_unfenced_advance then qstore t w_head (head + 1);
    let rr = Alloc.alloc_rootref t.ctx in
    if Ctx.epoch_enabled t.ctx then
      (* Count-neutral receive: one Move era transaction relinks the
         counted reference from the queue slot to the fresh RootRef — the
         attach/detach CAS pair (two header CASes, two redo records)
         collapses into two plain stores under a single redo record. The
         object's count never moves, so it never transits zero. *)
      Refc.move t.ctx ~ref_addr:slot ~rr ~refed:obj
    else begin
      (* Attach-then-detach keeps the object's count >= 1 throughout. *)
      Refc.attach t.ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj;
      Ctx.crash_point t.ctx Fault.Recv_after_attach;
      let n = Refc.detach t.ctx ~ref_addr:slot ~refed:obj in
      assert (n >= 1);
      Ctx.crash_point t.ctx Fault.Recv_after_detach
    end;
    (* The slot clear must be visible before the head store publishes the
       slot back to the sender — and the head must be persistent before we
       hand the result out, mirroring [send]'s fence + tail flush. Without
       the fence a sender sees the advanced head while the slot still holds
       the old reference; without the flush a crash here replays a message
       the caller already consumed. Epoch mode defers the head-line
       write-back to the batch boundary: replaying an already-consumed
       message is count-safe there because the slot detach is a recoverable
       Move, not a committed decrement. *)
    if not !mutation_unfenced_advance then begin
      Ctx.fence t.ctx;
      qstore t w_head (head + 1);
      let head_line = qword t.ctx qobj ~cap:t.capacity w_head in
      if Ctx.epoch_enabled t.ctx then Ctx.flush_deferred t.ctx head_line
      else Ctx.flush t.ctx head_line
    end;
    Ctx.crash_point t.ctx Fault.Recv_after_advance;
    Received (Cxl_ref.of_rootref t.ctx rr)
  end

(* Final teardown of a directory slot once both endpoints are closed: the
   [as_cid] identity performs the resumable detach of the directory's
   counted reference. Idempotent: a re-run sees qptr = 0 and just frees the
   slot. *)
let cleanup_slot (ctx : Ctx.t) ~as_cid q =
  let lay = ctx.Ctx.lay in
  let qptr = Ctx.load ctx (slot_qptr lay q) in
  if qptr <> 0 then begin
    let n = Refc.detach_as ctx ~as_cid ~ref_addr:(slot_qptr lay q) ~refed:qptr in
    if n = 0 then begin
      Reclaim.mark_leaking_of ctx qptr;
      Reclaim.teardown_children ctx ~as_cid ~obj:qptr;
      Alloc.free_obj_block ctx qptr
    end
  end;
  clear_channel_segs ctx q;
  Ctx.store ctx (slot_sender lay q) 0;
  Ctx.store ctx (slot_receiver lay q) 0;
  Ctx.fence ctx;
  Ctx.store ctx (slot_state lay q) phase_free

let try_cleanup (ctx : Ctx.t) ~as_cid q =
  let lay = ctx.Ctx.lay in
  let st = Ctx.load ctx (slot_state lay q) in
  if
    phase_of st = phase_active
    && Ctx.cas ctx (slot_state lay q) ~expected:st
         ~desired:(pack_state ~phase:phase_cleaning ~owner:as_cid)
  then cleanup_slot ctx ~as_cid q

let set_flag t bit =
  let qobj = Cxl_ref.obj t.qref in
  let addr = qword t.ctx qobj ~cap:t.capacity w_flags in
  let rec loop () =
    let cur = Ctx.load t.ctx addr in
    if cur land bit = 0 then
      if not (Ctx.cas t.ctx addr ~expected:cur ~desired:(cur lor bit)) then
        loop ()
  in
  loop ()

let close t =
  let bit = if t.endpoint = Sender then flag_sender_closed else flag_receiver_closed in
  set_flag t bit;
  let flags = qload t w_flags in
  if
    flags land flag_sender_closed <> 0
    && flags land flag_receiver_closed <> 0
  then try_cleanup t.ctx ~as_cid:t.ctx.Ctx.cid t.dir_idx;
  Cxl_ref.drop t.qref

type recv_batch = Received_batch of Cxl_ref.t list | Batch_empty | Batch_drained

(* Batched receive: consume up to [max] messages, handing their slots back
   to the sender with ONE fence and ONE head store. Each message still runs
   the full attach-then-detach era transaction (count never drops below 1),
   and a crash mid-batch is indistinguishable from a crash mid-[receive]:
   messages whose slot was detached are owned by this client's fresh
   RootRefs (reaped with the client), the rest stay owned by the queue. *)
let receive_batch t ~max =
  assert (t.endpoint = Receiver);
  Trace.with_span t.ctx Histogram.Transfer_recv ~addr:(Cxl_ref.obj t.qref)
  @@ fun () ->
  let head = qload t w_head in
  let tail = qload t w_tail in
  if head = tail then
    if qload t w_flags land flag_sender_closed <> 0 then Batch_drained
    else Batch_empty
  else begin
    let n = min max (tail - head) in
    if n <= 0 then Batch_empty
    else begin
      let qobj = Cxl_ref.obj t.qref in
      let out = ref [] in
      for i = 0 to n - 1 do
        let slot = Obj_header.emb_slot qobj ((head + i) mod t.capacity) in
        let obj = Ctx.load t.ctx slot in
        assert (obj <> 0);
        let rr = Alloc.alloc_rootref t.ctx in
        if Ctx.epoch_enabled t.ctx then
          (* Count-neutral per-message relink — see [receive]. *)
          Refc.move t.ctx ~ref_addr:slot ~rr ~refed:obj
        else begin
          Refc.attach t.ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj;
          Ctx.crash_point t.ctx Fault.Recv_after_attach;
          let c = Refc.detach t.ctx ~ref_addr:slot ~refed:obj in
          assert (c >= 1);
          Ctx.crash_point t.ctx Fault.Recv_after_detach
        end;
        out := Cxl_ref.of_rootref t.ctx rr :: !out
      done;
      (* All slot detaches must be visible before the one head store that
         returns the slots to the sender; the head must be persistent
         before the results are handed out (mirrors [receive]). *)
      Ctx.fence t.ctx;
      qstore t w_head (head + n);
      let head_line = qword t.ctx qobj ~cap:t.capacity w_head in
      if Ctx.epoch_enabled t.ctx then Ctx.flush_deferred t.ctx head_line
      else Ctx.flush t.ctx head_line;
      Ctx.crash_point t.ctx Fault.Recv_after_advance;
      Received_batch (List.rev !out)
    end
  end

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let queue_flags_addr (ctx : Ctx.t) qobj =
  let cap =
    Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj qobj))
  in
  qword ctx qobj ~cap w_flags

let set_flag_raw (ctx : Ctx.t) addr bit =
  let rec loop () =
    let cur = Ctx.load ctx addr in
    if cur land bit = 0 then
      if not (Ctx.cas ctx addr ~expected:cur ~desired:(cur lor bit)) then loop ()
  in
  loop ()

let recover_endpoints (ctx : Ctx.t) ~failed_cid =
  let lay = ctx.Ctx.lay in
  let nslots = lay.Layout.cfg.Config.queue_slots in
  for q = 0 to nslots - 1 do
    let st = Ctx.load ctx (slot_state lay q) in
    let phase = phase_of st in
    if phase = phase_claiming && owner_of st = failed_cid then begin
      (* Half-built registration: undo it. *)
      let qptr = Ctx.load ctx (slot_qptr lay q) in
      if qptr <> 0 then
        ignore
          (Refc.detach_as ctx ~as_cid:failed_cid
             ~ref_addr:(slot_qptr lay q) ~refed:qptr);
      clear_channel_segs ctx q;
      Ctx.store ctx (slot_state lay q) phase_free
    end
    else if phase = phase_cleaning && owner_of st = failed_cid then
      (* The dead client crashed mid-cleanup: finish it. *)
      cleanup_slot ctx ~as_cid:failed_cid q
    else if phase = phase_active then begin
      let sender = Ctx.load ctx (slot_sender lay q) - 1 in
      let receiver = Ctx.load ctx (slot_receiver lay q) - 1 in
      if sender = failed_cid || receiver = failed_cid then begin
        let qptr = Ctx.load ctx (slot_qptr lay q) in
        if qptr <> 0 then begin
          let flags_addr = queue_flags_addr ctx qptr in
          if sender = failed_cid then set_flag_raw ctx flags_addr flag_sender_closed;
          if receiver = failed_cid then
            set_flag_raw ctx flags_addr flag_receiver_closed;
          let flags = Ctx.load ctx flags_addr in
          if
            flags land flag_sender_closed <> 0
            && flags land flag_receiver_closed <> 0
          then try_cleanup ctx ~as_cid:failed_cid q
        end
      end
    end
  done

let directory_refs mem lay =
  let nslots = lay.Layout.cfg.Config.queue_slots in
  let rec go q acc =
    if q >= nslots then List.rev acc
    else
      let st = Mem.unsafe_peek mem (slot_state lay q) in
      if phase_of st = phase_free then go (q + 1) acc
      else
        let qptr = Mem.unsafe_peek mem (slot_qptr lay q) in
        go (q + 1) (if qptr = 0 then acc else qptr :: acc)
  in
  go 0 []

let clear_wild_directory_refs mem lay ~valid =
  let nslots = lay.Layout.cfg.Config.queue_slots in
  let cleared = ref 0 in
  for q = 0 to nslots - 1 do
    let st = Mem.unsafe_peek mem (slot_state lay q) in
    if phase_of st <> phase_free then begin
      let qptr = Mem.unsafe_peek mem (slot_qptr lay q) in
      if qptr <> 0 && not (valid qptr) then begin
        Mem.unsafe_poke mem (slot_qptr lay q) 0;
        Mem.unsafe_poke mem (slot_state lay q) phase_free;
        incr cleared
      end
    end
  done;
  !cleared
