(* The built-in models: small concurrent protocols whose every interleaving
   (and every crash point) the explorer can enumerate, each paired with the
   oracle that must hold afterwards.

   Model sizing is deliberate: exhaustive search cost is roughly
   C(branch points, preemptions) x clients^preemptions x crash positions,
   so the defaults keep the branch-point count small — the SPSC model
   branches at every word access of a tiny ring, the arena models branch at
   labeled crash points and explicit poll yields (the paper's critical
   windows), which is where the protocols' ordering decisions live. *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Spsc = Cxlshm_spsc.Spsc_queue

let fail fmt = Printf.ksprintf failwith fmt

(* [1; 2; ...; m] consecutive-prefix oracle: FIFO queues may lose a suffix
   to a crash but must never reorder, duplicate, or skip. *)
let check_prefix ~what ~complete ~total got =
  List.iteri
    (fun i v ->
      if v <> i + 1 then
        fail "%s: position %d holds %d, want %d (reorder/dup/loss)" what i v
          (i + 1))
    got;
  if complete && List.length got <> total then
    fail "%s: received %d of %d with no crash" what (List.length got) total

(* ---- spsc: the raw ring, every access a branch point ---- *)

let spsc ?(capacity = 2) ?(values = 3) () : Explore.model =
  let make () =
    let words = Spsc.words_needed ~capacity + 8 in
    let mem = Mem.create ~backend:(Mem.Sched Mem.Flat) ~words () in
    let st_setup = Stats.create () in
    let q = Spsc.create mem ~st:st_setup ~base:0 ~capacity in
    let popped = ref [] in
    let producer_alive = ref true and consumer_alive = ref true in
    let producer () =
      Fun.protect ~finally:(fun () -> producer_alive := false) @@ fun () ->
      let st = Stats.create () in
      try
        for v = 1 to values do
          while not (Spsc.try_push q ~st v) do
            Sched.yield "push-full";
            if not !consumer_alive then raise Exit
          done
        done
      with Exit -> ()
    in
    let consumer () =
      Fun.protect ~finally:(fun () -> consumer_alive := false) @@ fun () ->
      let st = Stats.create () in
      let got = ref 0 in
      let looping = ref true in
      while !looping do
        match Spsc.try_pop q ~st with
        | Some v ->
            popped := v :: !popped;
            incr got;
            if !got = values then looping := false
        | None ->
            if (not !producer_alive) && Spsc.length q ~st = 0 then
              looping := false
            else Sched.yield "pop-empty"
      done
    in
    let check ~crashed =
      let got = List.rev !popped in
      check_prefix ~what:"spsc" ~complete:(crashed = []) ~total:values got;
      let head = Mem.unsafe_peek mem 2 and tail = Mem.unsafe_peek mem 3 in
      if head > tail then fail "spsc: head %d ahead of tail %d" head tail;
      if tail - head > capacity then
        fail "spsc: %d in flight exceeds capacity %d" (tail - head) capacity;
      (* head only advances on pops; a consumer crash can consume without
         recording, so the recorded list is a lower bound *)
      if head < List.length got then
        fail "spsc: popped %d values but head is %d" (List.length got) head
    in
    { Explore.clients = [| producer; consumer |]; check }
  in
  { Explore.name = "spsc"; make; branch = (fun _ -> true) }

(* ---- shared bits of the arena models ---- *)

let arena_cfg = { Config.small with backend = Mem.Sched Mem.Flat }

(* Shared oracle tail: a leak-free, count-consistent, fsck-clean pool and a
   causally-sane era matrix. *)
let arena_audit arena ~cids =
  let svc = Shm.service_ctx arena in
  ignore (Shm.scan_leaking arena);
  (* Era causality: nobody can have observed an era a client never reached. *)
  let everyone = 0 :: Array.to_list cids in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          let seen = Era.read svc ~i ~j and self = Era.self_of svc ~cid:j in
          if seen > self then
            fail "era: Era[%d][%d]=%d exceeds Era[%d][%d]=%d" i j seen j j self)
        everyone)
    everyone;
  let detail v =
    Format.asprintf "%a%s" Validate.pp v
      (match v.Validate.errors with
      | [] -> ""
      | es -> " [" ^ String.concat "; " es ^ "]")
  in
  let v = Shm.validate arena in
  if not (Validate.is_clean v) then fail "validate: %s" (detail v);
  let f = Fsck.check (Shm.mem arena) (Shm.layout arena) in
  if not (Validate.is_clean f) then fail "fsck: %s" (detail f)

(* Post-run oracle for full-arena models: recover every crashed client the
   way the monitor would, then audit. *)
let arena_check arena ~cids ~crashed =
  let svc = Shm.service_ctx arena in
  List.iter
    (fun idx ->
      let cid = cids.(idx) in
      Client.declare_failed svc ~cid;
      ignore (Shm.recover arena ~failed_cid:cid))
    crashed;
  arena_audit arena ~cids

let arena_branch = function
  | Sched.Crash_point _ | Sched.Label _ -> true
  | Sched.Access _ -> false

(* ---- transfer: exactly-once reference handoff through the ring ---- *)

let transfer ?(capacity = 1) ?(values = 2) ?(batched = false) () :
    Explore.model =
  let name = if batched then "transfer-batch" else "transfer" in
  let make () =
    let arena = Shm.create ~cfg:arena_cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    (* endpoint setup is part of the environment, not the explored race *)
    let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity in
    let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
    let received = ref [] in
    let a_alive = ref true and b_alive = ref true in
    let sender_single () =
      try
        for v = 1 to values do
          let r = Shm.cxl_malloc a ~size_bytes:8 () in
          Cxl_ref.write_word r 0 v;
          let rec go () =
            match Transfer.send q r with
            | Transfer.Sent -> ()
            | Transfer.Full ->
                if !b_alive then begin
                  Sched.yield "send-full";
                  go ()
                end
                else raise Exit
            | Transfer.Closed -> raise Exit
          in
          let sent = (try go (); true with Exit -> Cxl_ref.drop r; false) in
          if not sent then raise Exit;
          Cxl_ref.drop r
        done
      with Exit -> ()
    in
    (* Batched variant: the whole run is published through [send_batch],
       retrying the unsent suffix when the ring is full — exercising every
       crash window of the single-commit-point batch publish. *)
    let sender_batched () =
      let refs =
        List.init values (fun i ->
            let r = Shm.cxl_malloc a ~size_bytes:8 () in
            Cxl_ref.write_word r 0 (i + 1);
            r)
      in
      let rec go rest =
        match rest with
        | [] -> ()
        | _ -> (
            let n, res = Transfer.send_batch q rest in
            let rest = List.filteri (fun i _ -> i >= n) rest in
            match res with
            | Transfer.Sent -> go rest
            | Transfer.Full ->
                if !b_alive then begin
                  Sched.yield "send-full";
                  go rest
                end
                else raise Exit
            | Transfer.Closed -> raise Exit)
      in
      let ok = (try go refs; true with Exit -> false) in
      List.iter Cxl_ref.drop refs;
      ignore ok
    in
    let sender () =
      Fun.protect ~finally:(fun () -> a_alive := false) @@ fun () ->
      if batched then sender_batched () else sender_single ()
    in
    let record r =
      received := Cxl_ref.read_word r 0 :: !received;
      Cxl_ref.drop r
    in
    let receiver () =
      Fun.protect ~finally:(fun () -> b_alive := false) @@ fun () ->
      try
        let got = ref 0 in
        while !got < values do
          if batched then
            match Transfer.receive_batch qb ~max:values with
            | Transfer.Received_batch rs ->
                got := !got + List.length rs;
                List.iter record rs
            | Transfer.Batch_empty ->
                if !a_alive then Sched.yield "recv-empty" else raise Exit
            | Transfer.Batch_drained -> raise Exit
          else
            match Transfer.receive qb with
            | Transfer.Received r ->
                incr got;
                record r
            | Transfer.Empty ->
                if !a_alive then Sched.yield "recv-empty" else raise Exit
            | Transfer.Drained -> raise Exit
        done
      with Exit -> ()
    in
    let check ~crashed =
      check_prefix ~what:name ~complete:(crashed = []) ~total:values
        (List.rev !received);
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| sender; receiver |]; check }
  in
  { Explore.name = name; make; branch = arena_branch }

(* ---- refc: era refcount transactions + allocator contention ---- *)

let refc ?(rounds = 2) () : Explore.model =
  let make () =
    let arena = Shm.create ~cfg:arena_cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    (* Each client churns its own two-object graph: allocate a parent with
       an embedded slot, link a child (era attach), unlink it (era detach +
       reclaim), release both. Both clients hammer the shared allocator
       (segment/page claims) and advance eras concurrently; a crash lands in
       any labeled window of alloc / txn / release / reclaim. *)
    let client ctx () =
      for _ = 1 to rounds do
        let parent = Shm.cxl_malloc ctx ~size_bytes:8 ~emb_cnt:1 () in
        let child = Shm.cxl_malloc ctx ~size_bytes:8 () in
        Cxl_ref.write_word child 0 7;
        Cxl_ref.set_emb parent 0 child;
        Cxl_ref.drop child;
        Cxl_ref.clear_emb parent 0;
        Cxl_ref.drop parent
      done
    in
    let check ~crashed =
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| client a; client b |]; check }
  in
  { Explore.name = "refc"; make; branch = arena_branch }

(* ---- huge: multi-segment object lifecycle under crashes ---- *)

let huge ?(rounds = 1) () : Explore.model =
  let make () =
    let arena = Shm.create ~cfg:arena_cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    (* Each object spans two segments (data_words = segment_words always
       overflows the head segment's capacity), so every free walks the
       tail-first release protocol through its [Free_huge_mid_release] /
       [Free_huge_after_reset] crash windows while the peer races claims
       on the same small segment pool. *)
    let span_words = (Shm.layout arena).Layout.segment_words in
    let client ctx () =
      for i = 1 to rounds do
        let r = Shm.cxl_malloc_words ctx ~data_words:span_words () in
        Cxl_ref.write_word r 0 i;
        Cxl_ref.write_word r (span_words - 1) (i * 7);
        if Cxl_ref.read_word r 0 <> i then fail "huge: head word corrupted";
        Cxl_ref.drop r
      done
    in
    let check ~crashed =
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| client a; client b |]; check }
  in
  { Explore.name = "huge"; make; branch = arena_branch }

(* ---- epoch-retire: batched rootref retirement through the journal ---- *)

let epoch_retire ?(rounds = 2) () : Explore.model =
  let make () =
    (* Batch of 2: every round parks exactly two retirements (child drop +
       parent drop), so each round seals and replays one journal batch —
       the explorer branches at [Retire_after_seal] / [Retire_mid_batch] /
       [Retire_after_batch] and a crash leaves a sealed journal for
       [Recovery.recover_journal] to finish against the current era. *)
    let cfg = { arena_cfg with Config.epoch_batch = 2 } in
    let arena = Shm.create ~cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    let client ctx () =
      for _ = 1 to rounds do
        let parent = Shm.cxl_malloc ctx ~size_bytes:8 ~emb_cnt:1 () in
        let child = Shm.cxl_malloc ctx ~size_bytes:8 () in
        Cxl_ref.write_word child 0 7;
        Cxl_ref.set_emb parent 0 child;
        Cxl_ref.drop child;
        Cxl_ref.clear_emb parent 0;
        Cxl_ref.drop parent
      done
    in
    let check ~crashed =
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| client a; client b |]; check }
  in
  { Explore.name = "epoch-retire"; make; branch = arena_branch }

(* ---- sharded-alloc: domain free stacks under cross-client frees ---- *)

let sharded_alloc ?(values = 2) () : Explore.model =
  let make () =
    (* Three clients, two domains (cids 1,2,3 -> domains 1,0,1): [a] sends
       its blocks to [b], whose drop is a non-owner free that parks them on
       domain 0's shard stack; [b]'s own fresh allocations pop the local
       domain, while [c] (domain 1, empty) must CAS-steal from domain 0.
       Crashes land between push, pop, and the header write that unpins the
       stolen block — the stamp must keep the donor segment unrecycled
       throughout. *)
    let cfg = { arena_cfg with Config.num_domains = 2 } in
    let arena = Shm.create ~cfg () in
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    let c = Shm.join arena () in
    let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:1 in
    let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
    let received = ref [] in
    let a_alive = ref true and b_alive = ref true in
    let sender () =
      Fun.protect ~finally:(fun () -> a_alive := false) @@ fun () ->
      try
        for v = 1 to values do
          let r = Shm.cxl_malloc a ~size_bytes:8 () in
          Cxl_ref.write_word r 0 v;
          let rec go () =
            match Transfer.send q r with
            | Transfer.Sent -> ()
            | Transfer.Full ->
                if !b_alive then begin
                  Sched.yield "send-full";
                  go ()
                end
                else raise Exit
            | Transfer.Closed -> raise Exit
          in
          let sent = (try go (); true with Exit -> Cxl_ref.drop r; false) in
          if not sent then raise Exit;
          Cxl_ref.drop r
        done
      with Exit -> ()
    in
    let receiver () =
      Fun.protect ~finally:(fun () -> b_alive := false) @@ fun () ->
      try
        let got = ref 0 in
        while !got < values do
          match Transfer.receive qb with
          | Transfer.Received r ->
              incr got;
              received := Cxl_ref.read_word r 0 :: !received;
              (* Non-owner free: parks the block on domain 0's stack. *)
              Cxl_ref.drop r;
              (* Local-domain pop: may reclaim the block just parked. *)
              let own = Shm.cxl_malloc b ~size_bytes:8 () in
              Cxl_ref.write_word own 0 (- !got);
              Cxl_ref.drop own
          | Transfer.Empty ->
              if !a_alive then Sched.yield "recv-empty" else raise Exit
          | Transfer.Drained -> raise Exit
        done
      with Exit -> ()
    in
    let stealer () =
      for i = 1 to values do
        Sched.yield "steal-wait";
        let r = Shm.cxl_malloc c ~size_bytes:8 () in
        Cxl_ref.write_word r 0 (100 + i);
        Cxl_ref.drop r
      done
    in
    let check ~crashed =
      check_prefix ~what:"sharded-alloc" ~complete:(crashed = [])
        ~total:values
        (List.rev !received);
      arena_check arena ~cids:[| a.Ctx.cid; b.Ctx.cid; c.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| sender; receiver; stealer |]; check }
  in
  { Explore.name = "sharded-alloc"; make; branch = arena_branch }

(* ---- control-plane models: leases, replicated monitors, evacuation ---- *)

(* Drive a fresh monitor replica until every client slot outside [keep] has
   been reaped through the lease machinery (tick -> suspect -> condemn ->
   recover). This is the oracle's stand-in for "some replica survives the
   run": whatever mess the explored schedule left behind — a hung client, a
   leader dead mid-recovery, a crashed evacuator with its guard still
   attached — must be fully absorbed within a bounded number of passes,
   with no client ever declared failed by hand. Returns the settle replica
   (its death dumps count toward the exactly-once oracle). *)
let lease_settle arena ~keep =
  let mon = Shm.monitor arena ~id:7 () in
  let svc = Shm.service_ctx arena in
  let cfg = Shm.config arena in
  let keep_cids = List.map (fun (ctx : Ctx.t) -> ctx.Ctx.cid) keep in
  let stable () =
    let ok = ref true in
    for cid = 0 to cfg.Config.max_clients - 1 do
      if
        (not (List.mem cid keep_cids))
        && Client.status svc ~cid <> Client.Slot_free
      then ok := false
    done;
    !ok
  in
  let budget = 6 * (cfg.Config.lease_ttl + 2) in
  let rec go n =
    if not (stable ()) then begin
      if n = 0 then fail "settle: client slots still occupied after %d passes" budget;
      List.iter Client.heartbeat keep;
      ignore (Monitor.check_once mon);
      ignore (Monitor.recover_suspects mon);
      go (n - 1)
    end
  in
  go budget;
  mon

(* ---- lease: detection races renewal, a hung client is reaped ---- *)

let lease ?(passes = 4) () : Explore.model =
  let make () =
    (* ttl 2 with one monitor and [passes] ticks keeps in-run condemnation
       out of reach (needs 2*ttl+1 = 5 ticks past the last renewal), so the
       worker's own operations can never race its recovery; suspicion and
       heartbeat self-heal stay reachable from tick ttl+1 = 3 on. *)
    let cfg = { arena_cfg with Config.lease_ttl = 2 } in
    let arena = Shm.create ~cfg () in
    let a = Shm.join arena () in
    let m = Shm.monitor arena () in
    let worker () =
      let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
      let child = Shm.cxl_malloc a ~size_bytes:8 () in
      Cxl_ref.write_word child 0 7;
      Cxl_ref.set_emb parent 0 child;
      Client.heartbeat a;
      Sched.yield "w-work";
      Cxl_ref.drop child;
      Cxl_ref.clear_emb parent 0;
      Client.heartbeat a;
      Cxl_ref.drop parent
      (* ... and goes silent without unregistering: only lease expiry can
         free the slot. *)
    in
    let monitor () =
      for _ = 1 to passes do
        ignore (Monitor.check_once m);
        ignore (Monitor.recover_suspects m);
        Sched.yield "mon-pass"
      done
    in
    let check ~crashed:_ =
      (* No declare_failed anywhere: crashed or hung, the worker must fall
         to the lease machinery alone. *)
      ignore (lease_settle arena ~keep:[]);
      arena_audit arena ~cids:[| a.Ctx.cid |]
    in
    { Explore.clients = [| worker; monitor |]; check }
  in
  { Explore.name = "lease"; make; branch = arena_branch }

(* ---- dual-monitor: leader failover with crashes inside the handoff ---- *)

let dual_monitor ?(passes = 3) () : Explore.model =
  let make () =
    let cfg = { arena_cfg with Config.lease_ttl = 1 } in
    let arena = Shm.create ~cfg () in
    let w = Shm.join arena () in
    (* Environment: the worker leaks a parent/child graph before the run;
       in-run it only heartbeats (guarded, branch-point-free, hence atomic
       to the explorer) and then goes silent, so its in-run condemnation —
       ttl 1 makes that reachable from tick 3 — never races its own
       recovery. Crashes land in the monitors instead: inside election
       ([Lead_after_acquire]), takeover ([Lead_after_depose]) and the
       recovery instruction stream, which the surviving replica (or the
       settle replica) must resume mid-flight. *)
    let parent = Shm.cxl_malloc w ~size_bytes:8 ~emb_cnt:1 () in
    let child = Shm.cxl_malloc w ~size_bytes:8 () in
    Cxl_ref.write_word child 0 7;
    Cxl_ref.set_emb parent 0 child;
    Cxl_ref.drop child;
    let m0 = Shm.monitor arena () in
    let m1 = Shm.monitor arena ~id:1 () in
    let worker () =
      for _ = 1 to 2 do
        if Client.is_alive w ~cid:w.Ctx.cid then Client.heartbeat w;
        Sched.yield "w-heartbeat"
      done
    in
    (* m1 activates only once m0 is finished or crashed. A *live* leader
       stalled mid-recovery past its whole lease is indistinguishable from
       a dead one (the unclosable lease-fencing window, see FAULTS.md), so
       the model keeps replicas sequentially active — what it proves is
       takeover from a leader that crashed anywhere, including inside
       election, deposition, and the recovery instruction stream. *)
    let m0_running = ref true in
    let mon0 () =
      Fun.protect ~finally:(fun () -> m0_running := false) @@ fun () ->
      for _ = 1 to passes do
        ignore (Monitor.check_once m0);
        ignore (Monitor.recover_suspects m0);
        Sched.yield "mon-pass"
      done
    in
    let mon1 () =
      while !m0_running do
        Sched.yield "m1-wait"
      done;
      for _ = 1 to passes do
        ignore (Monitor.check_once m1);
        ignore (Monitor.recover_suspects m1);
        Sched.yield "mon-pass"
      done
    in
    let check ~crashed:_ =
      let smon = lease_settle arena ~keep:[] in
      (* Exactly one death dump for the worker's single failure incident,
         no matter which replica condemned it or how many saw it Failed. *)
      let dumps =
        List.fold_left
          (fun n m -> n + List.length (Monitor.death_dumps m))
          0 [ m0; m1; smon ]
      in
      if dumps <> 1 then
        fail "dual-monitor: %d death dumps for one failure incident" dumps;
      arena_audit arena ~cids:[| w.Ctx.cid |]
    in
    { Explore.clients = [| worker; mon0; mon1 |]; check }
  in
  { Explore.name = "dual-monitor"; make; branch = arena_branch }

(* ---- evacuate: live data drains off a degraded device ---- *)

let evacuate ?(rounds = 2) () : Explore.model =
  let make () =
    let cfg =
      { Config.small with
        backend =
          Mem.Sched (Mem.Striped { devices = 2; stripe_words = 0; tiers = [||] });
        lease_ttl = 1 }
    in
    let arena = Shm.create ~cfg () in
    let svc = Shm.service_ctx arena in
    let lay = Shm.layout arena in
    (* Environment: client [a] (home device 0) allocates a child that
       client [b] (home device 1) links into its own parent; [a] then
       leaves cleanly, stranding the still-referenced child in an orphaned
       segment — and device 0 goes degraded. *)
    let a = Shm.join arena () in
    let b = Shm.join arena () in
    let child = Shm.cxl_malloc a ~size_bytes:16 () in
    Cxl_ref.write_word child 0 48879;
    let parent = Shm.cxl_malloc b ~size_bytes:8 ~emb_cnt:1 () in
    Cxl_ref.set_emb parent 0 child;
    let child_obj = Cxl_ref.obj child in
    Cxl_ref.drop child;
    Shm.leave a;
    let dev = Alloc.segment_device svc (Layout.segment_of_addr lay child_obj) in
    let seg_of r = Layout.segment_of_addr lay r in
    if
      Alloc.segment_device svc (seg_of (Cxl_ref.obj parent)) = dev
      || Alloc.segment_device svc (seg_of (Cxl_ref.rootref parent)) = dev
    then fail "evacuate: holder landed on the to-be-degraded device";
    Ctx.mark_degraded svc dev;
    (* In-run: [b] keeps allocating (and heartbeating) while the evacuation
       sweep runs — crashes land at the [Evac_*] windows (after copy, after
       each re-point, before release) and anywhere in the sweep's
       allocator/refcount traffic. *)
    let b_traffic () =
      for i = 1 to rounds do
        Client.heartbeat b;
        let r = Shm.cxl_malloc b ~size_bytes:8 () in
        Cxl_ref.write_word r 0 i;
        Cxl_ref.drop r;
        Sched.yield "b-work"
      done
    in
    let evacuator () = ignore (Shm.evacuate arena) in
    let check ~crashed =
      let b_alive = not (List.mem 0 crashed) in
      ignore (lease_settle arena ~keep:(if b_alive then [ b ] else []));
      (* Convergence: one clean sweep after recovery must finish whatever
         the crashed one left half-moved. *)
      ignore (Shm.evacuate arena);
      (match Evacuate.live_segments_on svc ~dev with
      | [] -> ()
      | segs ->
          fail "evacuate: %d live segments left on degraded device %d"
            (List.length segs) dev);
      if b_alive then begin
        let c = Cxl_ref.get_emb parent 0 in
        if c = 0 then fail "evacuate: parent lost its child reference";
        if Mem.unsafe_peek (Shm.mem arena) (Obj_header.data_of_obj c) <> 48879
        then fail "evacuate: child payload lost in the move"
      end;
      arena_audit arena ~cids:[| a.Ctx.cid; b.Ctx.cid |]
    in
    { Explore.clients = [| b_traffic; evacuator |]; check }
  in
  { Explore.name = "evacuate"; make; branch = arena_branch }

(* ---- kv-serve: COW retirement racing a concurrent reader walk ---- *)

let kv_serve () : Explore.model =
  let module Kv = Cxlshm_kv.Cxl_kv in
  let make () =
    let arena = Shm.create ~cfg:arena_cfg () in
    let w = Shm.join arena () in
    let r = Shm.join arena () in
    let store, hw = Kv.create w ~buckets:1 ~partitions:1 ~value_words:1 in
    if not (Kv.claim_partition hw 0) then fail "kv-serve: claim failed";
    (* environment: two keys in the one bucket so the walk has depth *)
    Kv.put hw ~key:0 ~value:100;
    Kv.put hw ~key:1 ~value:101;
    let hr = Kv.open_store r store in
    (* every record visited during the run becomes a schedule point, so
       the reader can pause mid-chain across the writer's whole
       retire/quiesce/reuse sequence *)
    Kv.walk_hook := (fun () -> Sched.yield "kv-walk");
    let observed = ref None in
    let writer () =
      (* COW-update key 1: the displaced record is parked behind a
         counted ref, stamped with the retire epoch *)
      Kv.put_cow hw ~key:1 ~value:201;
      (* reclamation pass: must defer the parked record while the
         reader's era announcement pins it *)
      Kv.quiesce hw;
      (* decoy from the record's size class: if quiesce freed the parked
         record under the reader, this reuses its block and plants a
         poisoned key/value exactly where the reader is standing *)
      let d = Shm.cxl_malloc_words w ~data_words:3 ~emb_cnt:1 () in
      Cxl_ref.write_word d 1 1;
      Cxl_ref.write_word d 2 0xDEAD;
      Cxl_ref.drop d
    in
    let reader () = observed := Some (Kv.get hr ~key:1) in
    let check ~crashed =
      Kv.walk_hook := (fun () -> ());
      (match !observed with
      | Some (Some v) when v <> 101 && v <> 201 ->
          fail "kv-serve: reader observed 0x%x (read of a freed record)" v
      | Some None -> fail "kv-serve: reader lost key 1 mid-walk"
      | Some (Some _) | None -> ());
      if not (List.mem 0 crashed) then begin
        Kv.quiesce hw;
        Kv.close hw
      end;
      if not (List.mem 1 crashed) then Kv.close hr;
      arena_check arena ~cids:[| w.Ctx.cid; r.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| writer; reader |]; check }
  in
  { Explore.name = "kv-serve"; make; branch = arena_branch }

(* ---- kv-serve-recover: writer crash, adoption racing the pinned walk ---- *)

let kv_serve_recover () : Explore.model =
  let module Kv = Cxlshm_kv.Cxl_kv in
  let make () =
    (* One shard domain: a non-owner free of the dead writer's record block
       (exactly what the era-blind reap mutation performs) parks it on the
       shared domain stack, and the recoverer's next same-class allocation
       pops that very block — so the decoy below provably lands in the
       freed record if, and only if, recovery freed it under the reader. *)
    let cfg = { arena_cfg with Config.num_domains = 1 } in
    let arena = Shm.create ~cfg () in
    let w = Shm.join arena () in
    let r = Shm.join arena () in
    let s = Shm.join arena () in
    let store, hw = Kv.create w ~buckets:1 ~partitions:1 ~value_words:1 in
    if not (Kv.claim_partition hw 0) then
      fail "kv-serve-recover: claim failed";
    Kv.put hw ~key:0 ~value:100;
    Kv.put hw ~key:1 ~value:101;
    let hr = Kv.open_store r store in
    let hs = Kv.open_store s store in
    Kv.walk_hook := (fun () -> Sched.yield "kv-walk");
    let observed = ref None in
    let w_done = ref false and w_clean = ref false in
    let w_recovered = ref false in
    let writer () =
      Fun.protect ~finally:(fun () -> w_done := true) @@ fun () ->
      Kv.put_cow hw ~key:1 ~value:201;
      Kv.quiesce hw;
      w_clean := true
    in
    let reader () = observed := Some (Kv.get hr ~key:1) in
    (* The successor plays the monitor: once the writer is done (or dead)
       it recovers the crash, takes over the partition, adopts whatever
       recovery journaled — original retire stamps intact — and then
       allocates from the record's size class. Recovery and adoption run
       interleaved with the reader's paused walk; under the [kv-crash-reap]
       mutation the era-blind reap frees the parked record, this decoy
       reuses its block, and the pinned reader observes 0xDEAD. *)
    let decoys = ref [] in
    let recoverer () =
      while not !w_done do
        Sched.yield "rec-wait"
      done;
      if not !w_clean then begin
        let svc = Shm.service_ctx arena in
        Client.declare_failed svc ~cid:w.Ctx.cid;
        (* Recovery runs under the successor's own identity: a monitor is
           never the owner of the dead writer's segment, so the mutated
           era-blind free must take the cross-client shard path — the one
           the decoy allocation below pops from. *)
        ignore (Recovery.recover s ~failed_cid:w.Ctx.cid);
        w_recovered := true
      end;
      ignore (Kv.takeover_partition hs 0);
      ignore (Kv.adopt_recovered hs);
      (* Two decoys, dropped only in the check (a drop would overwrite the
         poison with allocator metadata before the paused reader resumes):
         an era-blind reap can cascade — the parked record's teardown frees
         its chain tail too — and only the *second* pop reaches the block
         the reader is standing on. *)
      for _ = 1 to 2 do
        let d = Shm.cxl_malloc_words s ~data_words:3 ~emb_cnt:1 () in
        decoys := d :: !decoys;
        Cxl_ref.write_word d 1 1;
        Cxl_ref.write_word d 2 0xDEAD
      done
    in
    let check ~crashed =
      Kv.walk_hook := (fun () -> ());
      (match !observed with
      | Some (Some v) when v <> 101 && v <> 201 ->
          fail "kv-serve-recover: reader observed 0x%x (read of a freed \
                record)" v
      | Some None -> fail "kv-serve-recover: reader lost key 1 mid-walk"
      | Some (Some _) | None -> ());
      if not (List.mem 2 crashed) then List.iter Cxl_ref.drop !decoys;
      if not (List.mem 0 crashed) then begin
        Kv.quiesce hw;
        Kv.close hw
      end;
      if not (List.mem 1 crashed) then Kv.close hr;
      if not (List.mem 2 crashed) then Kv.close hs;
      (* The in-run recovery already condemned and recovered the writer;
         the oracle must not declare it failed a second time. *)
      let crashed =
        if !w_recovered then List.filter (fun i -> i <> 0) crashed
        else crashed
      in
      arena_check arena ~cids:[| w.Ctx.cid; r.Ctx.cid; s.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| writer; reader; recoverer |]; check }
  in
  { Explore.name = "kv-serve-recover"; make; branch = arena_branch }

(* ---- rpc-isolate: pointer isolation + channel revocation under crash ---- *)

let rpc_isolate () : Explore.model =
  let module Rpc = Cxlshm_rpc.Cxl_rpc in
  let module Message = Cxlshm_rpc.Message in
  let make () =
    let arena = Shm.create ~cfg:arena_cfg () in
    let c = Shm.join arena () in
    let s = Shm.join arena () in
    let m = Shm.join arena () in
    (* endpoint + sub-heap setup is environment, not the explored race *)
    let server = Rpc.accept s ~client_cid:c.Ctx.cid ~capacity:2 in
    let client = Rpc.connect c ~server_cid:s.Ctx.cid ~capacity:2 in
    let c_alive = ref true and s_alive = ref true in
    let c_done = ref false and c_clean = ref false in
    let c_recovered = ref false in
    let good = ref None and bad = ref None in
    let handler_poison = ref false in
    let leftovers = ref [] in
    (* wait for a pending without the library's cpu_relax spin: the
       explorer needs a yield per poll so it can preempt the waiter *)
    let rec await p =
      match Rpc.try_finish p with
      | Some out -> Some out
      | None ->
          if !s_alive then begin
            Sched.yield "rpc-wait";
            await p
          end
          else begin
            Rpc.discard p;
            None
          end
    in
    let client_fn () =
      Fun.protect
        ~finally:(fun () ->
          c_alive := false;
          c_done := true)
      @@ fun () ->
      (* call 1: a well-formed in-channel call — its output must be exactly
         the handler's write (catches a pre-handler completion publish) *)
      let arg = Rpc.alloc_arg client ~size_bytes:8 () in
      leftovers := arg :: !leftovers;
      Cxl_ref.write_word arg 0 7;
      let p = Rpc.call_async client ~func:3 ~args:[ arg ] ~output_bytes:8 in
      Sched.yield "rpc-sent";
      (match await p with
      | Some out ->
          good := Some (Cxl_ref.read_word out 0);
          Cxl_ref.drop out
      | None -> ());
      (* call 2: a smuggled out-of-channel pointer — the server's walk must
         reject it without running the handler *)
      if !s_alive then begin
        let smug = Shm.cxl_malloc c ~size_bytes:8 () in
        leftovers := smug :: !leftovers;
        Cxl_ref.write_word smug 0 0xBEEF;
        let p2 =
          Rpc.call_async client ~func:1 ~args:[ smug ] ~output_bytes:8
        in
        match await p2 with
        | Some out ->
            bad := Some `Accepted;
            Cxl_ref.drop out
        | None -> ()
        | exception Rpc.Call_rejected _ -> bad := Some `Rejected
      end;
      c_clean := true
    in
    let handler ~func ~args ~output =
      (* a schedule point between the (possibly mutated-early) completion
         publish and the in-place output write *)
      Sched.yield "rpc-handler";
      match args with
      | [ a ] ->
          let v = Message.read_word a 0 in
          if v = 0xDEAD then handler_poison := true;
          Message.write_word output 0 (v + func)
      | _ -> fail "rpc-isolate: handler saw %d args" (List.length args)
    in
    let server_fn () =
      Fun.protect ~finally:(fun () -> s_alive := false) @@ fun () ->
      let consumed = ref 0 in
      (try
         while !consumed < 2 do
           if Rpc.serve_one server ~handler then incr consumed
           else if !c_alive then Sched.yield "serve-empty"
           else raise Exit
         done
       with Exit -> ())
    in
    (* The monitor recovers a client crash interleaved with the server's
       serving, then reuses any sub-heap segment the revocation returned to
       the arena: a pin-placed decoy lands exactly inside the freed segment,
       so if revocation freed memory the server still stands on, the
       handler provably reads 0xDEAD. *)
    let decoys = ref [] in
    let monitor_fn () =
      while not !c_done do
        Sched.yield "mon-wait"
      done;
      if not !c_clean then begin
        let svc = Shm.service_ctx arena in
        Client.declare_failed svc ~cid:c.Ctx.cid;
        ignore (Recovery.recover m ~failed_cid:c.Ctx.cid);
        c_recovered := true;
        List.iter
          (fun seg ->
            if Segment.state m seg = Segment.Free && Segment.claim m seg
            then begin
              let d =
                Ctx.with_pin m [ seg ] (fun () ->
                    Shm.cxl_malloc m ~size_bytes:16 ())
              in
              decoys := d :: !decoys;
              Cxl_ref.write_word d 0 0xDEAD;
              Cxl_ref.write_word d 1 0xDEAD
            end)
          (Rpc.channel_segments client)
      end
    in
    let check ~crashed =
      if !handler_poison then
        fail "rpc-isolate: handler read 0xDEAD (revoked sub-heap reused \
              under the server)";
      (match !good with
      | Some v when v <> 7 + 3 ->
          fail "rpc-isolate: good call returned %d, not %d (completion \
                published before the output write)" v (7 + 3)
      | Some _ | None -> ());
      (match !bad with
      | Some `Accepted ->
          fail "rpc-isolate: smuggled out-of-channel pointer reached the \
                handler"
      | Some `Rejected | None -> ());
      if not (List.mem 0 crashed) then begin
        List.iter Cxl_ref.drop !leftovers;
        Rpc.close_client client
      end;
      if not (List.mem 1 crashed) then Rpc.close_server server;
      if not (List.mem 2 crashed) then List.iter Cxl_ref.drop !decoys;
      (* the in-run recovery already condemned and recovered the client *)
      let crashed =
        if !c_recovered then List.filter (fun i -> i <> 0) crashed
        else crashed
      in
      arena_check arena ~cids:[| c.Ctx.cid; s.Ctx.cid; m.Ctx.cid |] ~crashed
    in
    { Explore.clients = [| client_fn; server_fn; monitor_fn |]; check }
  in
  { Explore.name = "rpc-isolate"; make; branch = arena_branch }

(* ---- registry ---- *)

let all () =
  [ spsc (); transfer (); transfer ~batched:true (); refc (); huge ();
    epoch_retire (); sharded_alloc (); lease (); dual_monitor ();
    evacuate (); kv_serve (); kv_serve_recover (); rpc_isolate () ]

let find name =
  match List.find_opt (fun m -> m.Explore.name = name) (all ()) with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "unknown model %s (have: %s)" name
           (String.concat ", "
              (List.map (fun m -> m.Explore.name) (all ()))))
