(* Quickstart: the §3.1 / Fig 2 walk-through.

   Two clients share one CXL arena. Client A allocates an object, clones a
   reference in-thread, and sends the reference to client B through a
   shared-memory queue; B maps the same object and reads it directly —
   zero copies. Then A crashes without cleaning up, and the recovery
   service reaps everything A still possessed while B's data stays intact.

   Run: dune exec examples/quickstart.exe *)

open Cxlshm

let () =
  (* The shared CXL-attached memory pool, mapped by every client. *)
  let arena = Shm.create () in

  (* Clients are free to join (POSIX shm/mmap in the real system). *)
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  Printf.printf "client A = cid %d, client B = cid %d\n" a.Ctx.cid b.Ctx.cid;

  (* 1. Allocation of an object (cxl_malloc). *)
  let ref1 = Shm.cxl_malloc a ~size_bytes:64 () in
  Cxl_ref.write_bytes ref1 (Bytes.of_string "hello from client A");

  (* 2. Clone a reference in the same thread — local count only, no
     atomics, no flush. *)
  let ref2 = Cxl_ref.clone ref1 in

  (* 3. Send the reference to another client via a shared memory queue. *)
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:8 in
  (match Transfer.send q ref1 with
  | Transfer.Sent -> print_endline "A: reference sent"
  | Transfer.Full | Transfer.Closed -> failwith "queue unavailable");

  (* 4. Receive the reference on client B. *)
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let ref3 =
    match Transfer.receive qb with
    | Transfer.Received r -> r
    | Transfer.Empty | Transfer.Drained -> failwith "nothing received"
  in

  (* 5./6. Raw access from both sides — the same bytes, no copy. *)
  Printf.printf "B reads: %S\n"
    (Bytes.to_string (Cxl_ref.read_bytes ref3 ~len:19));
  Printf.printf "object refcount (A's RootRef + B's RootRef): %d\n"
    (Refc.ref_cnt b (Cxl_ref.obj ref3));

  (* A now crashes without dropping ref1/ref2 or closing its queue. *)
  print_endline "A crashes...";
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  let report = Shm.recover arena ~failed_cid:a.Ctx.cid in
  Format.printf "recovery: %a@." Recovery.pp_report report;

  (* B's reference still works — no wild pointer, no premature free. *)
  Printf.printf "B still reads: %S\n"
    (Bytes.to_string (Cxl_ref.read_bytes ref3 ~len:19));

  (* B finishes; everything is reclaimed. *)
  Transfer.close qb;
  Cxl_ref.drop ref3;
  Shm.leave b;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Format.printf "final validation: %a@." Validate.pp v;
  assert (Validate.is_clean v);
  ignore ref2;
  print_endline "quickstart OK"
