module Word = Cxlshm_shmem.Word
module Mem = Cxlshm_shmem.Mem

let words = Config.rootref_words
let f_in_use = Word.field ~shift:48 ~bits:1
let f_cnt = Word.field ~shift:0 ~bits:32

let in_use ctx rr = Word.get f_in_use (Ctx.load ctx rr) = 1
let local_cnt ctx rr = Word.get f_cnt (Ctx.load ctx rr)

let set_state ctx rr ~in_use ~cnt =
  Ctx.store ctx rr
    (Word.set f_in_use (Word.set f_cnt 0 cnt) (if in_use then 1 else 0))

let set_local_cnt ctx rr cnt =
  Ctx.store ctx rr (Word.set f_cnt (Ctx.load ctx rr) cnt)

let pptr_slot rr = rr + 1
let obj ctx rr = Ctx.load ctx (pptr_slot rr)
let peek_in_use mem rr = Word.get f_in_use (Mem.unsafe_peek mem rr) = 1
let peek_obj mem rr = Mem.unsafe_peek mem (rr + 1)

let well_formed w =
  w = Word.set f_in_use (Word.set f_cnt 0 (Word.get f_cnt w)) (Word.get f_in_use w)
