(* Full-stack suites on the striped multi-device backend, plus cross-backend
   equivalence: the backend seam must be invisible to allocation, transfer,
   recovery and fault injection. *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem
module Latency = Cxlshm_shmem.Latency

let striped_backend ?(tiers = [||]) devices =
  (* stripe_words = 0: Shm.create resolves to segment-granular stripes *)
  Mem.Striped { devices; stripe_words = 0; tiers }

let striped_cfg = { Config.small with Config.backend = striped_backend 4 }

let test_alloc_free_validate () =
  let arena = Shm.create ~cfg:striped_cfg () in
  Alcotest.(check int) "four devices" 4 (Shm.num_devices arena);
  let a = Shm.join arena () in
  let held =
    List.init 40 (fun i ->
        let r = Shm.cxl_malloc a ~size_bytes:(8 + (i mod 5 * 24)) () in
        Cxl_ref.write_word r 0 (i * 7);
        r)
  in
  List.iteri
    (fun i r ->
      Alcotest.(check int) (Printf.sprintf "payload %d" i) (i * 7)
        (Cxl_ref.read_word r 0))
    held;
  (* huge path: too large for any size class of the small geometry *)
  let huge = Shm.cxl_malloc_words a ~data_words:200 () in
  Cxl_ref.write_word huge 150 99;
  Alcotest.(check int) "huge payload" 99 (Cxl_ref.read_word huge 150);
  Cxl_ref.drop huge;
  List.iter Cxl_ref.drop held;
  Shm.leave a;
  let v = Shm.validate arena in
  Alcotest.(check bool) "striped arena clean" true (Validate.is_clean v)

let test_home_device_preference () =
  let arena = Shm.create ~cfg:striped_cfg () in
  let a = Shm.join arena () in
  Alcotest.(check int) "home device" (a.Ctx.cid mod 4) a.Ctx.home_dev;
  let r = Shm.cxl_malloc a ~size_bytes:32 () in
  let owned = Segment.owned_by a ~cid:a.Ctx.cid in
  Alcotest.(check bool) "claimed something" true (owned <> []);
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "segment %d on home device" s)
        a.Ctx.home_dev
        (Alloc.segment_device a s))
    owned;
  Cxl_ref.drop r;
  Shm.leave a

let test_transfer_crash_recover () =
  let arena = Shm.create ~cfg:striped_cfg () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:8 in
  let qb = ref None in
  let received = ref 0 in
  for i = 1 to 30 do
    let r = Shm.cxl_malloc a ~size_bytes:32 () in
    Cxl_ref.write_word r 0 i;
    (match Transfer.send q r with
    | Transfer.Sent -> ()
    | Transfer.Full | Transfer.Closed -> Alcotest.fail "send failed");
    Cxl_ref.drop r;
    if !qb = None then qb := Transfer.open_from b ~sender:a.Ctx.cid;
    match !qb with
    | Some queue -> (
        match Transfer.receive queue with
        | Transfer.Received rb ->
            incr received;
            Cxl_ref.drop rb
        | Transfer.Empty | Transfer.Drained -> ())
    | None -> ()
  done;
  Alcotest.(check bool) "received some" true (!received > 0);
  (* client A dies with the queue open; recovery must repair the pool *)
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  (match !qb with Some queue -> Transfer.close queue | None -> ());
  Shm.leave b;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) "clean after crash+recover" true (Validate.is_clean v)

let test_fault_drill_all_points () =
  List.iter
    (fun point ->
      let arena = Shm.create ~cfg:striped_cfg () in
      let a = Shm.join arena () in
      a.Ctx.fault <- Fault.at point ~nth:1;
      (try
         let p = Shm.cxl_malloc a ~size_bytes:16 ~emb_cnt:1 () in
         let c = Shm.cxl_malloc a ~size_bytes:16 () in
         Cxl_ref.set_emb p 0 c;
         Cxl_ref.clear_emb p 0;
         Cxl_ref.drop c;
         Cxl_ref.drop p
       with Fault.Crashed _ -> ());
      let svc = Shm.service_ctx arena in
      Client.declare_failed svc ~cid:a.Ctx.cid;
      ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
      ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false));
      let v = Shm.validate arena in
      Alcotest.(check bool)
        (Printf.sprintf "clean after crash at %s" (Fault.point_name point))
        true (Validate.is_clean v))
    Fault.all_points

(* The same scripted single-client workload must leave bit-identical pool
   images on every single-device backend: Flat, one-device Striped and
   Counting_fast are interchangeable transports. *)
let scripted_image cfg =
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  let rng = Random.State.make [| 77 |] in
  let held = ref [] in
  for _ = 1 to 300 do
    match Random.State.int rng 3 with
    | 0 ->
        held :=
          Shm.cxl_malloc a ~size_bytes:(8 + Random.State.int rng 64) ()
          :: !held
    | 1 -> (
        match !held with
        | r :: rest ->
            held := rest;
            Cxl_ref.drop r
        | [] -> ())
    | _ -> (
        match !held with
        | r :: _ -> Cxl_ref.write_word r 0 (Random.State.int rng 1000)
        | [] -> ())
  done;
  List.iter Cxl_ref.drop !held;
  Mem.snapshot (Shm.mem arena)

let test_single_device_backends_agree () =
  let flat = scripted_image Config.small in
  let striped1 =
    scripted_image { Config.small with Config.backend = striped_backend 1 }
  in
  let counting =
    scripted_image { Config.small with Config.backend = Mem.Counting_fast }
  in
  Alcotest.(check bool) "flat = striped-1" true (flat = striped1);
  Alcotest.(check bool) "flat = counting-fast" true (flat = counting)

let test_save_load_striped () =
  let path = Filename.temp_file "cxlshm_striped" ".pool" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let arena = Shm.create ~cfg:striped_cfg () in
      let a = Shm.join arena () in
      let r = Shm.cxl_malloc a ~size_bytes:32 () in
      Cxl_ref.write_word r 0 4242;
      Shm.save arena path;
      (* the image carries the backend spec: reload onto a striped pool *)
      let arena2 = Shm.load path in
      Alcotest.(check int) "backend survives the image" 4
        (Shm.num_devices arena2);
      let v = Shm.validate arena2 in
      Alcotest.(check bool) "loaded pool clean" true (Validate.is_clean v);
      Cxl_ref.drop r;
      Shm.leave a)

let suite =
  [
    Alcotest.test_case "striped alloc/free/validate" `Quick
      test_alloc_free_validate;
    Alcotest.test_case "home-device claim preference" `Quick
      test_home_device_preference;
    Alcotest.test_case "striped transfer+crash+recover" `Quick
      test_transfer_crash_recover;
    Alcotest.test_case "striped fault drill (all points)" `Quick
      test_fault_drill_all_points;
    Alcotest.test_case "single-device backends agree" `Quick
      test_single_device_backends_agree;
    Alcotest.test_case "striped save/load" `Quick test_save_load_striped;
  ]
