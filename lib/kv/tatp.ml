(* Key-space mapping: table id in the two top decimal digits.
   1: subscriber, 2: access_info, 3: special_facility, 4: call_forwarding. *)
type t = { subs : int; rng : Random.State.t; mutable stamp : int }

let create ~subscribers ~seed =
  { subs = subscribers; rng = Random.State.make [| seed; 0x7A7 |]; stamp = 0 }

let sub_key t s = (1 * t.subs * 10) + s
let access_key t s = (2 * t.subs * 10) + s
let facility_key t s = (3 * t.subs * 10) + s
let fwd_key t s = (4 * t.subs * 10) + s

let read_fraction = 0.80

let next t =
  let s = Random.State.int t.rng t.subs in
  t.stamp <- t.stamp + 1;
  let p = Random.State.float t.rng 100.0 in
  if p < 35.0 then (* GET_SUBSCRIBER_DATA *)
    [ Kv_intf.Read (sub_key t s) ]
  else if p < 45.0 then (* GET_NEW_DESTINATION *)
    [ Kv_intf.Read (facility_key t s); Kv_intf.Read (fwd_key t s) ]
  else if p < 80.0 then (* GET_ACCESS_DATA *)
    [ Kv_intf.Read (access_key t s) ]
  else if p < 82.0 then (* UPDATE_SUBSCRIBER_DATA *)
    [ Kv_intf.Update (sub_key t s, t.stamp);
      Kv_intf.Update (facility_key t s, t.stamp) ]
  else if p < 96.0 then (* UPDATE_LOCATION *)
    [ Kv_intf.Update (sub_key t s, t.stamp) ]
  else if p < 98.0 then (* INSERT_CALL_FORWARDING *)
    [ Kv_intf.Read (sub_key t s); Kv_intf.Insert (fwd_key t s, t.stamp) ]
  else (* DELETE_CALL_FORWARDING *)
    [ Kv_intf.Delete (fwd_key t s) ]

let load_ops t =
  List.concat_map
    (fun s ->
      [
        Kv_intf.Insert (sub_key t s, s);
        Kv_intf.Insert (access_key t s, s);
        Kv_intf.Insert (facility_key t s, s);
        Kv_intf.Insert (fwd_key t s, s);
      ])
    (List.init t.subs Fun.id)
