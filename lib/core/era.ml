let initial = 1

let cell (ctx : Ctx.t) i j = Layout.era_cell ctx.lay i j
let self ctx = Ctx.load ctx (cell ctx ctx.Ctx.cid ctx.Ctx.cid)
let read ctx ~i ~j = Ctx.load ctx (cell ctx i j)

let observe (ctx : Ctx.t) ~saw_cid ~saw_era =
  let c = cell ctx ctx.cid saw_cid in
  if Ctx.load ctx c < saw_era then Ctx.store ctx c saw_era

let advance (ctx : Ctx.t) =
  let c = cell ctx ctx.cid ctx.cid in
  Ctx.store ctx c (Ctx.load ctx c + 1)

let advance_for (ctx : Ctx.t) ~cid =
  let c = cell ctx cid cid in
  Ctx.store ctx c (Ctx.load ctx c + 1)

let observe_for (ctx : Ctx.t) ~cid ~saw_cid ~saw_era =
  let c = cell ctx cid saw_cid in
  if Ctx.load ctx c < saw_era then Ctx.store ctx c saw_era

let self_of ctx ~cid = Ctx.load ctx (cell ctx cid cid)

let max_seen_by_others (ctx : Ctx.t) ~cid =
  let m = (Ctx.cfg ctx).Config.max_clients in
  let best = ref 0 in
  for j = 0 to m - 1 do
    if j <> cid then begin
      let v = Ctx.load ctx (cell ctx j cid) in
      if v > !best then best := v
    end
  done;
  !best

(* The diagonal must stay monotone across reincarnations of the same slot:
   resetting it would let Condition 2 mistake a previous incarnation's
   observed era for a commit of the new one. *)
let init_row (ctx : Ctx.t) =
  let m = (Ctx.cfg ctx).Config.max_clients in
  let prev = Ctx.load ctx (cell ctx ctx.cid ctx.cid) in
  let seen = max_seen_by_others ctx ~cid:ctx.cid in
  for j = 0 to m - 1 do
    Ctx.store ctx (cell ctx ctx.cid j) 0
  done;
  Ctx.store ctx (cell ctx ctx.cid ctx.cid) (max initial (max prev seen + 1))
