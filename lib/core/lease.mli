(** Lease protocol over the shared logical lease clock.

    Replaces "the monitor counted heartbeat misses" with a protocol any
    peer can run from shared state alone. The clock
    ({!Layout.hdr_lease_clock}) is a monotone tick counter advanced by
    every monitor pass — never wall time, so expiry is deterministic under
    the [lib/check] explorer and a dead monitor's own lease still expires
    as long as any other monitor ticks.

    {b Client leases.} Registration grants a lease
    ([deadline = now + Config.lease_ttl], grant-era bumped);
    {!Client.heartbeat} renews it. A peer observing [now > deadline] may
    CAS the slot [Alive → Suspected] ({!try_suspect}); a slot still
    unrenewed one further TTL later may be condemned
    [Suspected → Failed] ({!try_condemn}), which is what finally catches
    {e hung} clients — live processes whose progress stalled — and not
    just silent ones. A heartbeat from a falsely-suspected client cancels
    the suspicion ([Suspected → Alive], {!self_heal}); once condemned, the
    client is fenced and must re-register. Every transition is a CAS on
    the flags word, so rescue and condemnation cannot both win.

    {b Leader lease.} Monitors elect a leader by CAS on the packed
    {!Layout.hdr_leader} word; the winner's lease uses the same clock and
    TTL. A follower observing the leader's deadline expired deposes it
    with the same single CAS ({!try_lead} returns [Took_over]) and takes
    over recovery mid-flight — [Recovery.with_lock] already finishes any
    interrupted recovery first, so handoff composes with the idempotent
    phase machine. *)

val now : Ctx.t -> int
(** Current tick of the shared lease clock. *)

val tick : Ctx.t -> int
(** Advance the clock by one tick (fetch-and-add); returns the new [now].
    Called once per monitor pass by every monitor. *)

val ttl : Ctx.t -> int
(** [Config.lease_ttl]. *)

(** {1 Client leases} *)

val deadline : Ctx.t -> cid:int -> int
(** The client's lease deadline tick (0 = no lease). *)

val era : Ctx.t -> cid:int -> int
(** The client's lease grant era (bumped once per registration). *)

val grant : Ctx.t -> cid:int -> int
(** Bump the grant era and set a fresh deadline; returns the new era.
    Called by {!Client.init_slot} for the registering client. *)

val renew : Ctx.t -> cid:int -> unit
(** Extend the lease to [now + ttl] (owner only, via heartbeat). *)

val release : Ctx.t -> cid:int -> unit
(** Clear the deadline (clean unregister) so a recycled slot cannot be
    instantly re-suspected by a stale deadline. *)

val expired : Ctx.t -> cid:int -> bool
(** A lease exists and [now > deadline]. *)

val try_suspect : Ctx.t -> cid:int -> bool
(** If expired, CAS [Alive → Suspected]. True iff this caller made the
    transition. Callable by any peer, not just a monitor. *)

val try_condemn : Ctx.t -> cid:int -> bool
(** If still expired one further TTL past the deadline, CAS
    [Suspected → Failed]. True iff this caller condemned the client (the
    winner owns the failure incident: dump claim, recovery kick). *)

val self_heal : Ctx.t -> cid:int -> bool
(** CAS [Suspected → Alive] — a live client cancelling a false positive.
    False when the slot was not suspected (already condemned or never
    suspected). *)

(** {1 Monitor leader lease} *)

(** Outcome of a {!try_lead} attempt. *)
type lead =
  | Follower  (** someone else holds an unexpired lease *)
  | Leader  (** this id is leader (fresh election or renewal) *)
  | Took_over
      (** this id deposed an {e expired} leader — the caller must resume
          any recovery the dead leader left mid-flight *)

val leader : Ctx.t -> (int * int) option
(** [(monitor id, deadline tick)] of the current leader word, if any. *)

val try_lead : Ctx.t -> id:int -> lead
(** One election/renewal/deposition step: claim a free leader word, renew
    an own lease, or depose an expired leader — each a single CAS (a lost
    race returns [Follower]; call again next pass). Winning paths cross
    the [Lead_after_acquire] crash point {e before} returning, so the
    explorer can kill a monitor that won leadership but did nothing yet. *)

val abdicate : Ctx.t -> id:int -> unit
(** Release the leader word if this id holds it (clean monitor shutdown). *)
