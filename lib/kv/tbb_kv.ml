module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency

let name = "TBB-KV"

(* Arena layout: +0 bump, +1 free-stack head, +2.. bucket words
   {lock:1, head:shifted}, then records [next][key][value..]. *)
type store = {
  mem : Mem.t;
  buckets : int;
  value_words : int;
  rec_words : int;
  heap_base : int;
  heap_end : int;
  threads : int;
}

type handle = { s : store; st : Stats.t }

let tier _ = Latency.Local_numa

let create ~buckets ~value_words ~capacity ~threads =
  let rec_words = 2 + value_words in
  let heap_base = 2 + buckets in
  let words = heap_base + (capacity * rec_words) in
  let mem = Mem.create ~tier:Latency.Local_numa ~words () in
  {
    mem;
    buckets;
    value_words;
    rec_words;
    heap_base;
    heap_end = words;
    threads;
  }

let handle s tid =
  if tid < 0 || tid >= s.threads then invalid_arg "Tbb_kv.handle";
  { s; st = Stats.create () }

let stats h = h.st
let hash key = (key * 0x2545F4914F6CDD1D) land max_int
let bucket_addr _s b = 2 + b

(* Bucket word packs {head:48, lock:1}. *)
let lock_bit = 1
let head_of w = w lsr 1
let pack_bucket ~locked head = (head lsl 1) lor (if locked then lock_bit else 0)

let lock_bucket h b =
  let a = bucket_addr h.s b in
  let rec spin () =
    let w = Mem.load h.s.mem ~st:h.st a in
    if
      w land lock_bit <> 0
      || not
           (Mem.cas h.s.mem ~st:h.st a ~expected:w
              ~desired:(w lor lock_bit))
    then begin
      Domain.cpu_relax ();
      spin ()
    end
  in
  spin ()

let unlock_bucket h b head =
  Mem.store h.s.mem ~st:h.st (bucket_addr h.s b) (pack_bucket ~locked:false head)

let alloc_record h =
  (* try the free stack, then the bump pointer *)
  let rec pop () =
    let top = Mem.load h.s.mem ~st:h.st 1 in
    if top = 0 then None
    else
      let next = Mem.load h.s.mem ~st:h.st top in
      if Mem.cas h.s.mem ~st:h.st 1 ~expected:top ~desired:next then Some top
      else pop ()
  in
  match pop () with
  | Some r -> r
  | None ->
      let off = Mem.fetch_add h.s.mem ~st:h.st 0 h.s.rec_words in
      let r = h.s.heap_base + off in
      if r + h.s.rec_words > h.s.heap_end then raise Out_of_memory;
      r

let free_record h r =
  let rec push () =
    let top = Mem.load h.s.mem ~st:h.st 1 in
    Mem.store h.s.mem ~st:h.st r top;
    if not (Mem.cas h.s.mem ~st:h.st 1 ~expected:top ~desired:r) then push ()
  in
  push ()

let get h ~key =
  let b = hash key mod h.s.buckets in
  let rec walk r =
    if r = 0 then None
    else if Mem.load h.s.mem ~st:h.st (r + 1) = key then
      Some (Mem.load h.s.mem ~st:h.st (r + 2))
    else walk (Mem.load h.s.mem ~st:h.st r)
  in
  walk (head_of (Mem.load h.s.mem ~st:h.st (bucket_addr h.s b)))

let put h ~key ~value =
  let b = hash key mod h.s.buckets in
  lock_bucket h b;
  let head = head_of (Mem.load h.s.mem ~st:h.st (bucket_addr h.s b)) in
  let rec find r =
    if r = 0 then None
    else if Mem.load h.s.mem ~st:h.st (r + 1) = key then Some r
    else find (Mem.load h.s.mem ~st:h.st r)
  in
  (match find head with
  | Some r ->
      for i = 0 to h.s.value_words - 1 do
        Mem.store h.s.mem ~st:h.st (r + 2 + i) (value + i)
      done;
      unlock_bucket h b head
  | None ->
      let r = alloc_record h in
      Mem.store h.s.mem ~st:h.st (r + 1) key;
      for i = 0 to h.s.value_words - 1 do
        Mem.store h.s.mem ~st:h.st (r + 2 + i) (value + i)
      done;
      Mem.store h.s.mem ~st:h.st r head;
      unlock_bucket h b r)

let delete h ~key =
  let b = hash key mod h.s.buckets in
  lock_bucket h b;
  let head = head_of (Mem.load h.s.mem ~st:h.st (bucket_addr h.s b)) in
  let rec remove prev r =
    if r = 0 then (head, false)
    else if Mem.load h.s.mem ~st:h.st (r + 1) = key then begin
      let next = Mem.load h.s.mem ~st:h.st r in
      (if prev = 0 then (* new head *) ()
       else Mem.store h.s.mem ~st:h.st prev next);
      let new_head = if prev = 0 then next else head in
      free_record h r;
      (new_head, true)
    end
    else remove r (Mem.load h.s.mem ~st:h.st r)
  in
  let new_head, found = remove 0 head in
  unlock_bucket h b new_head;
  found
