(* Cycle collection (§4.1 future work) and pool persistence (save/load). *)

open Cxlshm

let setup () =
  let arena = Shm.create ~cfg:Config.small () in
  (arena, Shm.join arena ())

(* Build an unreachable 3-cycle through embedded references. *)
let make_cycle ctx =
  let a = Shm.cxl_malloc ctx ~size_bytes:8 ~emb_cnt:1 () in
  let b = Shm.cxl_malloc ctx ~size_bytes:8 ~emb_cnt:1 () in
  let c = Shm.cxl_malloc ctx ~size_bytes:8 ~emb_cnt:1 () in
  Cxl_ref.set_emb a 0 b;
  Cxl_ref.set_emb b 0 c;
  Cxl_ref.set_emb c 0 a;
  (* drop the handles: the cycle keeps itself alive *)
  List.iter Cxl_ref.drop [ a; b; c ]

let test_cycle_leaks_without_gc () =
  let arena, a = setup () in
  make_cycle a;
  let v = Shm.validate arena in
  Alcotest.(check int) "cycle is alive" 3 v.Validate.live_objects;
  Alcotest.(check bool) "but the arena is consistent" true (Validate.is_clean v)

let test_gc_collects_cycle () =
  let arena, a = setup () in
  make_cycle a;
  (* reachable data must survive the collection *)
  let keep = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.write_word child 0 777;
  Cxl_ref.set_emb keep 0 child;
  Cxl_ref.drop child;
  let r = Cycle_gc.collect (Shm.service_ctx arena) in
  Alcotest.(check int) "three cycle members collected" 3 r.Cycle_gc.collected;
  Alcotest.(check bool) "live data marked" true (r.Cycle_gc.marked >= 2);
  Alcotest.(check int) "reachable child intact" 777
    (Ctx.load a (Obj_header.data_of_obj (Cxl_ref.get_emb keep 0)));
  Cxl_ref.drop keep;
  Alloc.collect_deferred a;
  let v = Shm.validate arena in
  Alcotest.(check int) "all reclaimed" 0 v.Validate.live_objects;
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v)

let test_gc_traces_through_queues_and_roots () =
  let arena, a = setup () in
  let b = Shm.join arena () in
  (* in-flight queue message and a named root: both must be GC roots *)
  let msg = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.write_word msg 0 1;
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  assert (Transfer.send q msg = Transfer.Sent);
  Cxl_ref.drop msg;
  let rooted = Shm.cxl_malloc a ~size_bytes:8 () in
  Named_roots.publish a ~name:"gc-root" rooted;
  Cxl_ref.drop rooted;
  let r = Cycle_gc.collect (Shm.service_ctx arena) in
  Alcotest.(check int) "nothing falsely collected" 0 r.Cycle_gc.collected;
  (* the in-flight message is still deliverable *)
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  (match Transfer.receive qb with
  | Transfer.Received x ->
      Alcotest.(check int) "message survived gc" 1 (Cxl_ref.read_word x 0);
      Cxl_ref.drop x
  | _ -> Alcotest.fail "message lost");
  ignore (Named_roots.unpublish b ~name:"gc-root");
  Transfer.close q;
  Transfer.close qb

let prop_gc_never_touches_reachable =
  QCheck.Test.make ~name:"gc never collects reachable objects" ~count:25
    QCheck.(pair (int_bound 1000) (int_bound 10))
    (fun (seed, cycles) ->
      let arena, a = setup () in
      let rng = Random.State.make [| seed |] in
      (* reachable working set *)
      let live =
        List.init 10 (fun i ->
            let r = Shm.cxl_malloc a ~size_bytes:8 () in
            Cxl_ref.write_word r 0 (i * 100 + Random.State.int rng 10);
            r)
      in
      let expected = List.map (fun r -> Cxl_ref.read_word r 0) live in
      for _ = 1 to cycles do
        make_cycle a
      done;
      let rep = Cycle_gc.collect (Shm.service_ctx arena) in
      let ok_counts = rep.Cycle_gc.collected = 3 * cycles in
      let ok_data =
        List.for_all2 (fun r e -> Cxl_ref.read_word r 0 = e) live expected
      in
      List.iter Cxl_ref.drop live;
      Alloc.collect_deferred a;
      ok_counts && ok_data && Validate.is_clean (Shm.validate arena))

(* ---- persistence ---- *)

let tmp = Filename.temp_file "cxlshm" ".pool"

let test_save_load_roundtrip () =
  let arena, a = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.write_bytes r (Bytes.of_string "persisted");
  Named_roots.publish a ~name:"state" r;
  Cxl_ref.drop r;
  (* the whole cluster powers off; the pool (own PSU) keeps its contents *)
  Shm.save arena tmp;
  let arena2 = Shm.load tmp in
  let v = Shm.validate arena2 in
  Alcotest.(check bool) ("clean after load: " ^ String.concat ";" v.Validate.errors)
    true (Validate.is_clean v);
  Alcotest.(check int) "rooted object survived the blackout" 1
    v.Validate.live_objects;
  let c = Shm.join arena2 () in
  (match Named_roots.lookup c ~name:"state" with
  | Some r2 ->
      Alcotest.(check string) "bytes intact" "persisted"
        (Bytes.to_string (Cxl_ref.read_bytes r2 ~len:9));
      Cxl_ref.drop r2
  | None -> Alcotest.fail "named root lost across restart");
  Sys.remove tmp

let test_load_reaps_stale_clients () =
  let arena, a = setup () in
  (* a holds unrooted data and is "alive" at snapshot time *)
  let _leak = List.init 10 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  Shm.save arena tmp;
  let arena2 = Shm.load tmp in
  (* the stale client was reaped on load; its garbage is gone *)
  let v = Shm.validate arena2 in
  Alcotest.(check int) "stale client data reaped" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v);
  (* its slot is reusable *)
  let c = Shm.join arena2 ~cid:a.Ctx.cid () in
  let r = Shm.cxl_malloc c ~size_bytes:8 () in
  Cxl_ref.drop r;
  Sys.remove tmp

let test_load_rejects_garbage () =
  let oc = open_out_bin tmp in
  Marshal.to_channel oc Config.small [];
  Marshal.to_channel oc (Array.make (Layout.make Config.small).Layout.total_words 0) [];
  close_out oc;
  Alcotest.check_raises "bad magic"
    (Invalid_argument "Shm.load: not a CXL-SHM pool image") (fun () ->
      ignore (Shm.load tmp));
  Sys.remove tmp

let suite =
  [
    Alcotest.test_case "cycle leaks without gc" `Quick test_cycle_leaks_without_gc;
    Alcotest.test_case "gc collects cycle" `Quick test_gc_collects_cycle;
    Alcotest.test_case "gc roots: queues + named" `Quick test_gc_traces_through_queues_and_roots;
    Generators.to_alcotest prop_gc_never_touches_reachable;
    Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "load reaps stale clients" `Quick test_load_reaps_stale_clients;
    Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
  ]
