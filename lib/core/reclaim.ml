let mark_leaking_of (ctx : Ctx.t) obj =
  let seg = Layout.segment_of_addr ctx.lay obj in
  Segment.mark_leaking ctx seg

let emb_count (ctx : Ctx.t) obj =
  Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj obj))

let rec teardown_children (ctx : Ctx.t) ~as_cid ~obj =
  let n = emb_count ctx obj in
  for i = 0 to n - 1 do
    let slot = Obj_header.emb_slot obj i in
    let child = Ctx.load ctx slot in
    if child <> 0 then release_held ctx ~as_cid ~ref_addr:slot ~obj:child
  done

(* Release a reference we know is held (count >= 1). When we hold the sole
   reference, children are detached first so that a crash mid-teardown
   leaves the object alive and fully recoverable from its remaining
   reference. Once the final detach lands the count is zero and nothing
   reaches the block any more, so the segment is leak-marked first: a crash
   anywhere between the decrement and the free then leaves the block in a
   POTENTIAL_LEAKING segment for the §5.3 scan instead of leaking it in an
   Active segment no recovery path revisits (the redo log cannot cover the
   tail of this window — freeing zeroes the header, which breaks the
   Condition 1 commit check). The rare race-to-zero path below does the
   same. *)
and release_held (ctx : Ctx.t) ~as_cid ~ref_addr ~obj =
  if Refc.ref_cnt ctx obj = 1 then begin
    teardown_children ctx ~as_cid ~obj;
    mark_leaking_of ctx obj;
    let n = Refc.detach_as ctx ~as_cid ~ref_addr ~refed:obj in
    Ctx.crash_point ctx Fault.Release_before_reclaim;
    if n = 0 then Alloc.free_obj_block ctx obj
    else
      (* Unreachable under the attach-requires-a-reference invariant. *)
      raise (Refc.Refcount_violation "release: count rose from 1")
  end
  else begin
    let n = Refc.detach_as ctx ~as_cid ~ref_addr ~refed:obj in
    if n = 0 then begin
      (* Concurrent holders raced us to zero: cover the crash window by
         leak-marking before the non-idempotent teardown + reclaim. *)
      mark_leaking_of ctx obj;
      Ctx.crash_point ctx Fault.Release_before_reclaim;
      teardown_children ctx ~as_cid ~obj;
      Alloc.free_obj_block ctx obj
    end
  end

let release_obj (ctx : Ctx.t) ~ref_addr ~obj =
  release_held ctx ~as_cid:ctx.cid ~ref_addr ~obj

(* Retire one journaled rootref: [release_held] with the top-level detach
   swapped for the redo-free {!Refc.detach_batched} — the sealed journal
   entry is the recovery record for that window. Freeing the rootref is
   last: clearing [in_use] is the per-entry completion marker
   [Recovery.recover_journal] keys on. *)
let retire_one (ctx : Ctx.t) rr =
  let obj = Rootref.obj ctx rr in
  let ref_addr = Rootref.pptr_slot rr in
  (if obj <> 0 then
     if Refc.ref_cnt ctx obj = 1 then begin
       teardown_children ctx ~as_cid:ctx.cid ~obj;
       mark_leaking_of ctx obj;
       let n = Refc.detach_batched ctx ~ref_addr ~refed:obj in
       Ctx.crash_point ctx Fault.Release_before_reclaim;
       if n = 0 then Alloc.free_obj_block ctx obj
       else raise (Refc.Refcount_violation "retire: count rose from 1")
     end
     else begin
       let n = Refc.detach_batched ctx ~ref_addr ~refed:obj in
       if n = 0 then begin
         mark_leaking_of ctx obj;
         Ctx.crash_point ctx Fault.Release_before_reclaim;
         teardown_children ctx ~as_cid:ctx.cid ~obj;
         Alloc.free_obj_block ctx obj
       end
     end);
  Alloc.free_rootref ctx rr

let flush_retired (ctx : Ctx.t) =
  Epoch.flush_retired ctx ~retire_one:(retire_one ctx)

let release_rootref (ctx : Ctx.t) rr =
  let cnt = Rootref.local_cnt ctx rr in
  if cnt <= 0 then
    raise (Refc.Refcount_violation "release_rootref: local count already 0");
  (* Local tier of the two-tiered count: plain store, no atomics (§5.2). *)
  Rootref.set_local_cnt ctx rr (cnt - 1);
  if cnt - 1 = 0 then
    if Ctx.epoch_enabled ctx then begin
      (* Park for batched retirement: the rootref stays linked and in_use,
         so a crash before the flush just leaves an allocated rootref for
         the dead-client scan. *)
      Epoch.enqueue ctx rr;
      if Epoch.is_full ctx then flush_retired ctx
    end
    else begin
      let obj = Rootref.obj ctx rr in
      if obj <> 0 then release_obj ctx ~ref_addr:(Rootref.pptr_slot rr) ~obj;
      Alloc.free_rootref ctx rr
    end

(* ------------------------------------------------------------------ *)
(* §5.3 asynchronous segment-local full scan                           *)
(* ------------------------------------------------------------------ *)

let page_all_zero (ctx : Ctx.t) ~gid =
  let cfg = Ctx.cfg ctx in
  let k = Page.kind ctx ~gid in
  if k = Config.kind_unused then true
  else if k = Config.kind_rootref cfg then
    List.for_all (fun rr -> not (Rootref.in_use ctx rr)) (Page.blocks ctx ~gid)
  else
    (* Block positions are computable because pages hold fixed-size blocks
       (§5.3) — no heap walk needed. A dead block parked on a domain shard
       stack pins the segment ({!Shard.pins}): recycling would reformat
       the page under a stealable stack entry. *)
    List.for_all
      (fun b ->
        Obj_header.ref_cnt_of (Ctx.load ctx (Obj_header.header_of_obj b)) = 0
        && not (Shard.pins ctx b))
      (Page.blocks ctx ~gid)

let recycle_plain_segment (ctx : Ctx.t) seg =
  let pps = (Ctx.cfg ctx).Config.pages_per_segment in
  for p = 0 to pps - 1 do
    Page.reset ctx ~gid:(Layout.page_gid ctx.lay ~seg ~page:p)
  done;
  Segment.release ctx seg

let scan_segment (ctx : Ctx.t) seg =
  let cfg = Ctx.cfg ctx in
  let pps = cfg.Config.pages_per_segment in
  let gid0 = Layout.page_gid ctx.lay ~seg ~page:0 in
  if Page.kind ctx ~gid:gid0 = Config.kind_huge cfg then begin
    (* Huge object: a single computable header decides the whole span. *)
    let obj = Layout.segment_base ctx.lay seg + ctx.lay.Layout.seg_hdr_words in
    if Obj_header.ref_cnt_of (Ctx.load ctx (Obj_header.header_of_obj obj)) = 0
    then begin
      let n = Alloc.huge_span ctx ~head_seg:seg in
      (* Finish (or perform) the tail-first release order of
         [Alloc.free_huge]: if the owner died mid-free, some continuation
         segments are already back in the arena — and may have been
         re-claimed by a live peer — so only segments still [Huge_cont]
         under the run's owner belong to it. Tails first; the head page
         metadata (the only thing that sizes the run) is wiped last, so a
         crash here leaves a rerunnable state. *)
      let owner0 = Segment.owner ctx seg in
      for k = n - 1 downto 1 do
        let s = seg + k in
        if
          s < cfg.Config.num_segments
          && Segment.state ctx s = Segment.Huge_cont
          && Segment.owner ctx s = owner0
        then Segment.release ctx s
      done;
      for p = 0 to pps - 1 do
        Page.reset ctx ~gid:(Layout.page_gid ctx.lay ~seg ~page:p)
      done;
      Segment.release ctx seg;
      true
    end
    else false
  end
  else begin
    let all_zero = ref true in
    for p = 0 to pps - 1 do
      if not (page_all_zero ctx ~gid:(Layout.page_gid ctx.lay ~seg ~page:p))
      then all_zero := false
    done;
    if !all_zero then begin
      recycle_plain_segment ctx seg;
      true
    end
    else false
  end

let scan_all (ctx : Ctx.t) ~is_client_alive =
  Trace.with_span ctx Cxlshm_shmem.Histogram.Recovery_scan @@ fun () ->
  let cfg = Ctx.cfg ctx in
  let recycled = ref 0 in
  for seg = 0 to cfg.Config.num_segments - 1 do
    let owner_live =
      match Segment.owner ctx seg with
      | None -> false
      | Some cid -> is_client_alive cid
    in
    (match Segment.state ctx seg with
    | Segment.Leaking | Segment.Orphaned ->
        if (not owner_live) && scan_segment ctx seg then incr recycled
    | Segment.Free | Segment.Active | Segment.Huge_head | Segment.Huge_cont ->
        ())
  done;
  !recycled
