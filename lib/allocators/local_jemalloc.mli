(** jemalloc-like volatile allocator baseline (Fig 6).

    Arena/bin design: per-thread caches (tcache) refilled from central
    per-class bins protected by a CAS lock, on local-DRAM latencies. A bit
    more bookkeeping per operation than the mimalloc baseline, with rare
    central-bin synchronisation — matching the two curves' proximity in
    Fig 6. *)

include Alloc_intf.S
