open Cxlshm

exception Peer_failed of string
exception Call_rejected of string

(* Test-only mutation switches (docs/TESTING.md "Mutation self-check"). *)
let mutation_skip_validate = ref false
let mutation_unfenced_status = ref false

let status_pending = 0
let status_done = 1
let status_rejected = 2

type client = {
  ctx : Ctx.t;
  server_cid : int;
  req : Transfer.t; (* client → server *)
  chan_segs : int list; (* the channel's private sub-heap, client-owned *)
  mutable cclosed : bool;
}

type server = {
  mutable peer_segs_ok : bool;
      (* RPCool's attached-shared-heap escape hatch: also accept blocks
         homed in segments the peer client itself owns (see mli). *)
  sctx : Ctx.t;
  client_cid : int;
  mutable sreq : Transfer.t option;  (** opened lazily once the client connects *)
  mutable chan : int list; (* sub-heap read from the slot registry at open *)
  mutable rejected : int;
}

(* A peer is gone when the membership layer says so: declared failed, or its
   lease lapsed without renewal. Checking the lease word directly (rather
   than waiting for a monitor to condemn the peer) bounds every spin below
   by the lease term even when no monitor is running. *)
let peer_alive ctx ~cid = Client.is_alive ctx ~cid && not (Lease.expired ctx ~cid)

(* Poll pacing from the context's Retry ladder: spin [backoff/base] relaxes
   at rung [attempt] (capped at the policy's last rung), so liveness
   re-checks decay geometrically exactly like transient-fault retries do. *)
let relax_ladder (ctx : Ctx.t) attempt =
  let policy = ctx.Ctx.retry in
  let ns = Retry.backoff_ns policy (min attempt policy.Retry.max_attempts) in
  let spins = int_of_float (ns /. Float.max policy.Retry.base_backoff_ns 1.0) in
  for _ = 1 to max 1 spins do
    Domain.cpu_relax ()
  done

(* ------------------------------------------------------------------ *)
(* Channel setup: queue + private sub-heap                             *)
(* ------------------------------------------------------------------ *)

let claim_sub_heap (ctx : Ctx.t) n =
  let num = (Ctx.cfg ctx).Config.num_segments in
  let rec go s acc k =
    if k = n then List.rev acc
    else if s >= num then begin
      List.iter (fun seg -> Segment.release ctx seg) acc;
      raise Alloc.Out_of_shared_memory
    end
    else if Segment.claim ctx s then go (s + 1) (s :: acc) (k + 1)
    else go (s + 1) acc k
  in
  go 0 [] 0

let connect ?(sub_heap_segments = 1) ctx ~server_cid ~capacity =
  if sub_heap_segments < 1 || sub_heap_segments > Layout.queue_max_channel_segs
  then invalid_arg "Cxl_rpc.connect: sub_heap_segments out of range";
  let chan_segs = claim_sub_heap ctx sub_heap_segments in
  (* Exclude before the queue object is allocated: the queue must live in
     the ordinary heap — a dead client's sub-heap segments must never be
     pinned by the directory slot's counted queue pointer. *)
  List.iter (Ctx.exclude_segment ctx) chan_segs;
  let req =
    try Transfer.connect ~channel_segs:chan_segs ctx ~receiver:server_cid ~capacity
    with
    | Fault.Crashed _ as e ->
        (* A dead client runs no compensation: recovery reclaims the
           sub-heap through the failure path. *)
        raise e
    | e ->
      List.iter
        (fun seg ->
          Ctx.unexclude_segment ctx seg;
          Segment.release ctx seg)
        chan_segs;
      raise e
  in
  { ctx; server_cid; req; chan_segs; cclosed = false }

let channel_segments c = c.chan_segs

let accept sctx ~client_cid ~capacity =
  ignore capacity;
  { peer_segs_ok = false; sctx; client_cid; sreq = None; chan = []; rejected = 0 }

let rejected_calls s = s.rejected

let allow_peer_segments s = s.peer_segs_ok <- true

let rec server_req s =
  match s.sreq with
  | Some q -> q
  | None -> (
      match Transfer.open_from s.sctx ~sender:s.client_cid with
      | Some q ->
          s.sreq <- Some q;
          (* The registry is published before the slot turns active, so this
             one read fixes the channel's sub-heap for its lifetime. *)
          let segs = Transfer.channel_segs s.sctx (Transfer.dir_index q) in
          s.chan <- segs;
          List.iter (Ctx.exclude_segment s.sctx) segs;
          q
      | None ->
          if not (peer_alive s.sctx ~cid:s.client_cid) then
            raise (Peer_failed "Cxl_rpc.serve: client failed before connecting");
          Domain.cpu_relax ();
          server_req s)

(* ------------------------------------------------------------------ *)
(* Client: in-channel allocation and bounded calls                     *)
(* ------------------------------------------------------------------ *)

let check_open c =
  if c.cclosed then invalid_arg "Cxl_rpc: client channel is closed"

let alloc_arg c ~size_bytes ?(emb_cnt = 0) () =
  check_open c;
  Ctx.with_pin c.ctx c.chan_segs (fun () ->
      Shm.cxl_malloc c.ctx ~size_bytes ~emb_cnt ())

type pending = {
  pc : client;
  msg : Cxl_ref.t;
  output : Cxl_ref.t;
  mutable finished : bool;
}

(* Bounded send: a full ring under a live server is back-pressure, but a
   full ring whose server is dead used to spin forever. Every retry
   re-reads the server's membership and lease words, so the wait is bounded
   by failure detection, not by luck. *)
let send_bounded c msg output =
  let fail reason =
    Cxl_ref.drop msg;
    Cxl_ref.drop output;
    raise (Peer_failed reason)
  in
  let rec go attempt =
    match Transfer.send c.req msg with
    | Transfer.Sent -> ()
    | Transfer.Closed -> fail "Cxl_rpc.call: server closed the channel"
    | Transfer.Full ->
        if not (peer_alive c.ctx ~cid:c.server_cid) then
          fail "Cxl_rpc.call: server failed (ring full, lease lapsed)";
        relax_ladder c.ctx attempt;
        go (attempt + 1)
  in
  go 1

let call_async c ~func ~args ~output_bytes =
  check_open c;
  (* Everything the message closure reaches is carved inside the channel's
     sub-heap — the pin turns any placement that cannot stay in-channel
     (e.g. a huge payload) into Out_of_shared_memory at the caller. *)
  let output, msg =
    Ctx.with_pin c.ctx c.chan_segs (fun () ->
        let output = Shm.cxl_malloc c.ctx ~size_bytes:output_bytes () in
        match Message.build c.ctx ~func ~args ~output with
        | msg -> (output, msg)
        | exception (Fault.Crashed _ as e) ->
            (* Dead clients run no compensation — the half-built message is
               the recovery service's to reap, and dropping here would
               overwrite the redo record of the very transaction recovery
               must resume. *)
            raise e
        | exception e ->
            Cxl_ref.drop output;
            raise e)
  in
  send_bounded c msg output;
  (* We keep our reference to the message: its status word is the
     completion channel the client polls. *)
  { pc = c; msg; output; finished = false }

let check_unfinished p =
  if p.finished then invalid_arg "Cxl_rpc.finish: pending already finished"

let is_done p =
  let s = Message.status (Message.view_of_ref p.msg) in
  if s = status_pending then false
  else begin
    (* Acquire side of the completion handshake: order the status read
       before the caller's in-place output reads, pairing with the server's
       pre-status release fence. Without it the caller can observe the
       raised completion word yet read pre-call output bytes. *)
    Ctx.fence p.pc.ctx;
    true
  end

let finish_now p =
  p.finished <- true;
  let st = Message.status (Message.view_of_ref p.msg) in
  (* Dropping the message releases its embedded references to the
     arguments and the output; the caller keeps its own handles. *)
  Cxl_ref.drop p.msg;
  if st = status_rejected then begin
    Cxl_ref.drop p.output;
    raise
      (Call_rejected
         "Cxl_rpc: server rejected the call (out-of-channel or wild pointer)")
  end;
  p.output

let try_finish p =
  check_unfinished p;
  if is_done p then Some (finish_now p) else None

let discard p =
  if not p.finished then begin
    p.finished <- true;
    Cxl_ref.drop p.msg;
    Cxl_ref.drop p.output
  end

let abandon p reason =
  p.finished <- true;
  Cxl_ref.drop p.msg;
  Cxl_ref.drop p.output;
  raise (Peer_failed reason)

let finish p =
  check_unfinished p;
  let c = p.pc in
  let rec go attempt =
    if is_done p then finish_now p
    else if
      Transfer.peer_closed c.req || not (peer_alive c.ctx ~cid:c.server_cid)
    then
      (* One last look: the server may have raised the completion word
         right before dying or closing. *)
      if is_done p then finish_now p
      else abandon p "Cxl_rpc.finish: server failed mid-call"
    else begin
      relax_ladder c.ctx attempt;
      go (attempt + 1)
    end
  in
  go 1

let call c ~func ~args ~output_bytes =
  finish (call_async c ~func ~args ~output_bytes)

(* ------------------------------------------------------------------ *)
(* Server: pointer-isolation walk + serve loop                         *)
(* ------------------------------------------------------------------ *)

type handler = func:int -> args:Message.view list -> output:Message.view -> unit

let in_channel lay chan addr =
  match Layout.segment_of_addr lay addr with
  | exception Invalid_argument _ -> false
  | seg -> List.mem seg chan

(* The opt-in trust extension: a block is also acceptable when it is homed
   in a segment the peer client itself owns (never a third party's, never
   a free segment). The walk still recurses through it, so a peer-owned
   object cannot launder a reference into someone else's heap. *)
let peer_owned (s : server) addr =
  s.peer_segs_ok
  &&
  match Layout.segment_of_addr s.sctx.Ctx.lay addr with
  | exception Invalid_argument _ -> false
  | seg -> Segment.owner s.sctx seg = Some s.client_cid

(* The RPCool receive-side walk: every reference the message closure can
   reach must be the base of a live block inside the channel's sub-heap.
   Discipline: a node's embedded slots are read only after the node itself
   passed {!Validate.block_base_ok} (pure metadata peeks), so a hostile
   word is never dereferenced. Wild slots are collected so disposal can
   neutralise them before any teardown walk would chase them. *)
let validate_message (s : server) msg_obj =
  let ctx = s.sctx in
  let mem = ctx.Ctx.mem and lay = ctx.Ctx.lay in
  let ok = ref true in
  let wild = ref [] in
  let seen = Hashtbl.create 8 in
  let rec walk obj depth =
    if depth > 64 || Hashtbl.mem seen obj then ()
    else begin
      Hashtbl.add seen obj ();
      let emb =
        Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj obj))
      in
      for i = 0 to emb - 1 do
        let slot = Obj_header.emb_slot obj i in
        let w = Ctx.load ctx slot in
        if w <> 0 then
          if not (Validate.block_base_ok mem lay w) then begin
            (* Not the base of any live block: following it would be a wild
               dereference. Record the slot for neutralisation. *)
            ok := false;
            wild := slot :: !wild
          end
          else if in_channel lay s.chan w || peer_owned s w then
            walk w (depth + 1)
          else
            (* A structurally valid block outside the sub-heap (and outside
               any opted-in peer-owned segment): a smuggled pointer into
               someone else's heap. Reject without recursing — its closure
               is not ours to walk, and the slot itself is counted
               (Message.build attached it), so the teardown detach at
               disposal is safe. *)
            ok := false
      done
    end
  in
  if not (Validate.block_base_ok mem lay msg_obj && in_channel lay s.chan msg_obj)
  then (false, [])
  else begin
    walk msg_obj 0;
    (!ok, !wild)
  end

let serve_one s ~handler =
  match Transfer.receive (server_req s) with
  | Transfer.Received msg ->
      let v = Message.view_of_ref msg in
      let valid, wild =
        if !mutation_skip_validate then (true, [])
        else validate_message s (Cxl_ref.obj msg)
      in
      if not valid then begin
        s.rejected <- s.rejected + 1;
        (* Neutralise wild slots with raw stores — they name no block, so no
           count is owed — or the drop's teardown walk would chase them. *)
        List.iter (fun slot -> Ctx.store s.sctx slot 0) wild;
        Ctx.fence s.sctx;
        (* Error completion: raise the client's poll word to the rejected
           state. Nothing in the closure was dereferenced. *)
        Message.set_status v status_rejected;
        Cxl_ref.drop msg;
        true
      end
      else begin
        (* Mutation self-check switch: the historical unfenced completion
           publish. The simulator's memory is sequentially consistent, so
           the mutation applies the reordering the missing release/acquire
           pair permitted on hardware — the completion word becomes visible
           before the handler's in-place output writes. *)
        if !mutation_unfenced_status then Message.set_status v status_done;
        let n = Message.nargs v in
        let args = List.init n (Message.arg v) in
        handler ~func:(Message.func v) ~args ~output:(Message.output v);
        (* Release: publish the in-place results before raising the
           completion word the client polls. *)
        Ctx.fence s.sctx;
        Ctx.crash_point s.sctx Fault.Rpc_before_status;
        if not !mutation_unfenced_status then Message.set_status v status_done;
        Cxl_ref.drop msg;
        true
      end
  | Transfer.Empty | Transfer.Drained -> false

let serve_until s ~handler ~stop =
  while not (Atomic.get stop) do
    if not (serve_one s ~handler) then Domain.cpu_relax ()
  done

(* ------------------------------------------------------------------ *)
(* Teardown / revocation                                               *)
(* ------------------------------------------------------------------ *)

(* Return emptied sub-heap segments to the arena. Era-safe: batched
   retirements are flushed first so dead channel blocks actually reach
   count zero, and only provably empty segments (no live block, no in-use
   RootRef, no shard stamp — {!Recovery.segment_empty}) are reset. A
   segment something still references (an undrained in-flight message, a
   caller-retained output) simply stays claimed until those references
   die. *)
let release_sub_heap (ctx : Ctx.t) segs =
  if Ctx.epoch_enabled ctx then Reclaim.flush_retired ctx;
  List.iter
    (fun seg ->
      if
        Segment.owner ctx seg = Some ctx.Ctx.cid
        && Recovery.segment_empty ctx seg
      then begin
        let pps = (Ctx.cfg ctx).Config.pages_per_segment in
        for p = 0 to pps - 1 do
          Page.reset ctx ~gid:(Layout.page_gid ctx.Ctx.lay ~seg ~page:p)
        done;
        Segment.release ctx seg
      end)
    segs

let close_client c =
  if not c.cclosed then begin
    c.cclosed <- true;
    Transfer.close c.req;
    List.iter (fun seg -> Ctx.unexclude_segment c.ctx seg) c.chan_segs;
    release_sub_heap c.ctx c.chan_segs
  end

let close_server s =
  match s.sreq with
  | Some q ->
      (* The queue teardown reaps any never-consumed in-flight messages
         while the sub-heap is still excluded on this side, so freed channel
         blocks park on their own segments' stacks, never on global
         shards. *)
      Transfer.close q;
      let segs = s.chan in
      List.iter (fun seg -> Ctx.unexclude_segment s.sctx seg) segs;
      s.chan <- [];
      s.sreq <- None;
      (* Revoke a dead claimant's sub-heap. While this side held the
         channel, recovery of the dead client left its segments orphaned
         rather than recycling them under our in-flight frees (and our own
         reap of its messages may have re-marked them leaking); now that
         the queue is torn down and nothing else touches the sub-heap,
         recycle whatever is empty. A live claimant keeps ownership and
         releases in [close_client] instead. *)
      List.iter
        (fun seg ->
          match Segment.owner s.sctx seg with
          | Some owner
            when owner <> s.sctx.Ctx.cid
                 && (not (Client.is_alive s.sctx ~cid:owner))
                 && (match Segment.state s.sctx seg with
                    | Segment.Orphaned | Segment.Leaking -> true
                    | _ -> false) ->
              ignore (Reclaim.scan_segment s.sctx seg)
          | Some _ | None -> ())
        segs
  | None -> ()
