(** The two allocator benchmarks of Fig 6, generic over the allocator.

    - {b Threadtest} (Hoard): each thread repeatedly allocates a batch of
      64-byte objects and frees them all — fixed-size churn, no sharing.
    - {b Shbench} (MicroQuill): variable-size objects (64-400 bytes) with a
      random working set — a stress test for small-size allocation and
      reclamation.

    Each function is the per-thread body; callers run one per domain. *)

val threadtest :
  alloc:(int -> 'h) -> free:('h -> unit) -> write:('h -> unit) ->
  rounds:int -> batch:int -> unit
(** [alloc size_bytes], [free h]; [write] touches the allocation. Total
    operations = [rounds * batch * 2] (an alloc and a free each count). *)

val threadtest_ops : rounds:int -> batch:int -> int

val shbench :
  alloc:(int -> 'h) -> free:('h -> unit) -> write:('h -> unit) ->
  seed:int -> ops:int -> unit
(** Keeps a bounded working set; each step allocates a 64-400-byte object
    and frees a random victim once the set is full. *)

val shbench_ops : ops:int -> int
