(** Per-client execution context.

    A [Ctx.t] bundles what every core operation needs: the shared arena, the
    layout, the client id, the client's {!Cxlshm_shmem.Stats} accumulator and
    its fault-injection plan. It is the OCaml-heap ("local memory") half of a
    client — everything that is lost when the client crashes. *)

type cache
(** Client-local volatile cache tier: a DRAM-side mirror of shared words
    whose sole mutator is this client (class heads, segment cursor, owned
    segments' page metadata, the ownership set) or that are immutable
    (segment→device mapping). Write-through — shared memory always holds
    the truth — and reconstructible: dropped on attach/recovery and
    refilled lazily from shared state. *)

type epoch = {
  e_enabled : bool;
  ebuf : int array;  (** rootrefs awaiting batched retirement *)
  mutable elen : int;
  dirty : int array;  (** line-deduped addresses awaiting write-back *)
  mutable dlen : int;
}
(** Epoch-batched retirement state (volatile). [ebuf] holds rootrefs whose
    local count hit zero; they stay linked and [in_use] in shared memory
    until {!Reclaim.flush_retired} seals them into the persistent journal
    and tears them down under one fence. [dirty] queues hot-path
    write-backs to ride the same batch boundary. Lost on crash by design:
    an unflushed buffer just means those rootrefs are still allocated, and
    the dead client's rootref scan releases them. *)

type t = {
  mem : Cxlshm_shmem.Mem.t;
  lay : Layout.t;
  cid : int;
  home_dev : int;
      (** The client's home device in the pool ([cid mod num_devices]) —
          segment claims prefer segments served by it before spilling. *)
  st : Cxlshm_shmem.Stats.t;
  mutable fault : Fault.plan;
  mutable retry : Retry.policy;
      (** retry/backoff budget for transient device faults; defaults to
          {!Retry.default_policy}, set {!Retry.no_retry} to fail fast *)
  rng : Random.State.t;  (** client-local randomness (segment probing) *)
  mutable trace_on : bool;
      (** observability switch, seeded from [Config.trace]; when off every
          {!Trace.with_span} is a single branch *)
  hists : Cxlshm_shmem.Histogram.t array;
      (** per-op latency histograms (local memory), indexed by
          {!Cxlshm_shmem.Histogram.op_index}; fed by spans when tracing *)
  cache : cache;  (** client-local cache tier (see {!type:cache}) *)
  epoch : epoch;  (** epoch-batched retirement state (see {!type:epoch}) *)
  mutable degraded_hint : int;
      (** volatile mirror of the degraded-device bitmap, read on the
          allocation fast path instead of the shared word; refreshed at
          attach, heartbeat, and evacuation entry
          ({!refresh_degraded_hint}) *)
  mutable alloc_pin : int list;
      (** when non-empty, the allocator places objects only inside these
          segments and never claims new ones — the RPC channel sub-heap
          discipline (see {!with_pin}) *)
  mutable alloc_exclude : int list;
      (** owned segments ordinary allocation must stay out of (a channel's
          private sub-heap) *)
}

val make :
  ?cache:bool ->
  ?epoch:bool ->
  mem:Cxlshm_shmem.Mem.t ->
  lay:Layout.t ->
  cid:int ->
  unit ->
  t
(** [?cache] overrides [Config.cache]; service/monitor contexts pass
    [~cache:false] so repair paths always read shared truth. [?epoch]
    (default true) can force epoch batching off even when
    [Config.epoch_batch > 0] — service contexts pass [~epoch:false] so they
    never enqueue retirements they would not flush. *)

val cfg : t -> Config.t

(** {1 Channel sub-heap placement (RPCool isolation)}

    Volatile placement policy for zero-copy RPC: while a pin is active the
    allocator carves only from the pinned segments (and raises
    [Out_of_shared_memory] instead of claiming more — the sub-heap stays
    bounded); excluded segments are invisible to ordinary allocation, so a
    client's private objects never land inside a channel it owns. *)

val pin_active : t -> bool
val pinned_segments : t -> int list

val with_pin : t -> int list -> (unit -> 'a) -> 'a
(** Run [f] with allocation pinned to [segs]; always restores the previous
    pin, even on exception. *)

val exclude_segment : t -> int -> unit
val unexclude_segment : t -> int -> unit
val segment_excluded : t -> int -> bool

val seg_allowed : t -> int -> bool
(** May the allocator place an object in segment [s] right now? Pin list
    when pinned, complement of the exclusion list otherwise. *)

(** {1 Degraded devices}

    Escalated device faults set the device's bit in a shared arena-header
    bitmap ({!Layout.hdr_dev_degraded}); segment claims steer away from
    degraded devices and the monitor reports them. Cleared when the pool is
    serviced ({!clear_degraded}). *)

val device_degraded : t -> int -> bool
val degraded_devices : t -> int list
val mark_degraded : t -> int -> unit
val clear_degraded : t -> unit

val refresh_degraded_hint : t -> unit
(** Re-read the shared bitmap into [degraded_hint]. Placement steering is
    a hint — a stale mirror only means some allocations land on a device
    that was just marked (evacuation relocates them later), so refreshes
    ride existing slow points rather than charging every alloc a shared
    read. *)

val any_degraded_hint : t -> bool
(** [degraded_hint <> 0] — zero-cost "is any device degraded?" check for
    the allocation fast path. *)

val with_retries : t -> ((unit -> unit) -> 'a) -> 'a
(** Run a section under this context's retry policy (see
    {!Retry.with_retries}); escalations mark the faulting device degraded
    in the shared bitmap. The section receives the commit marker and must
    call it once its effects are visible to other clients — retries never
    cross a commit point. *)

(** {1 Shared-memory shorthands} (attributed to this client's stats)

    Each primitive is a single word operation with no interior commit
    point, so it is re-issued under the context's retry policy when the
    device faults transiently; persistent faults and exhausted budgets
    escalate as {!Cxlshm_shmem.Mem.Device_error}. *)

val load : t -> Cxlshm_shmem.Pptr.t -> int
val store : t -> Cxlshm_shmem.Pptr.t -> int -> unit
val cas : t -> Cxlshm_shmem.Pptr.t -> expected:int -> desired:int -> bool
val fetch_add : t -> Cxlshm_shmem.Pptr.t -> int -> int
val fence : t -> unit
val flush : t -> Cxlshm_shmem.Pptr.t -> unit
val crash_point : t -> Fault.point -> unit

(** {1 Epoch batching} *)

val epoch_enabled : t -> bool
val epoch_capacity : t -> int

val flush_deferred : t -> Cxlshm_shmem.Pptr.t -> unit
(** Queue a write-back to ride the next retirement-batch boundary instead
    of paying a per-op flush (counted in [Stats.deferred_flushes]; the
    eventual write-back is priced on the op that drains the batch). Falls
    back to an immediate {!flush} when batching is off or the queue is
    full. Only for stores whose durability deadline is the era advance
    that could recycle the line — the fast-path rootref/index lines. *)

val drain_dirty : t -> unit
(** Issue every queued write-back now (batch boundary or quiesce). *)

(** {1 Client-local cache tier}

    Strict mirroring rules: only words whose sole mutator is this client
    (its class heads and segment cursor; page metadata of segments it
    owns) or immutable facts (segment→device) may be mirrored; every
    mirror write happens alongside the write-through store; the whole
    tier drops to empty on attach/recovery and refills lazily. *)

val cache_enabled : t -> bool

val cache_drop : t -> unit
(** Forget everything — the post-attach/post-recovery state. *)

val load_class_head : t -> int -> int
(** Cached read of this client's class-head word [k] (write-through pair:
    {!store_class_head}). *)

val store_class_head : t -> int -> int -> unit
val load_cur_segment : t -> int
val store_cur_segment : t -> int -> unit

val cache_owned_known : t -> bool
(** The ownership set is populated (a shared scan can be skipped). *)

val cache_owned_list : t -> int list
(** Owned segments in ascending order; meaningful only when
    {!cache_owned_known}. *)

val cache_install_owned : t -> int list -> unit
(** Install the result of a shared ownership scan. *)

val cache_note_claim : t -> int -> unit
(** This client just claimed/adopted the segment. *)

val cache_note_release : t -> int -> unit
(** This client just released the segment (drops its page mirrors). *)

val cache_owns : t -> int -> bool
(** The mirror knows this client owns the segment (false when the set is
    unpopulated — callers then fall back to shared reads). *)

val load_pm : t -> gid:int -> slot:int -> Cxlshm_shmem.Pptr.t -> int
(** Cached read of page-meta slot [slot] (0 = kind … 4 = used) of page
    [gid] at shared address [addr]; mirrors only pages of owned
    segments. *)

val store_pm : t -> gid:int -> slot:int -> Cxlshm_shmem.Pptr.t -> int -> unit
(** Write-through page-meta store; drops the mirror entry instead of
    updating it when the segment is not (known to be) owned. *)

val segment_device : t -> int -> int
(** Device serving a segment (immutable layout fact, cached). *)
