(** Lock-free single-producer single-consumer ring on shared memory.

    The plain-word cousin of the reference-transfer queue (§5.2): it moves
    uncounted 63-bit words (typically process-independent pointers whose
    lifetime is managed elsewhere). Used as the communication channel of the
    inter-thread baseline in Fig 8 ("pure SPSC reference exchange") and by
    the RPC layer for completion notifications.

    Lamport's classic algorithm: the producer owns [tail], the consumer owns
    [head]; both are plain word slots in the shared arena, so two domains on
    two simulated "machines" can use one queue. *)

type t

val words_needed : capacity:int -> int
(** Shared words to reserve for a queue of [capacity] slots. *)

val create :
  Cxlshm_shmem.Mem.t ->
  st:Cxlshm_shmem.Stats.t ->
  base:Cxlshm_shmem.Pptr.t ->
  capacity:int ->
  t
(** Format a queue at [base] (words [base, base + words_needed)). *)

val attach :
  Cxlshm_shmem.Mem.t -> st:Cxlshm_shmem.Stats.t -> base:Cxlshm_shmem.Pptr.t -> t
(** Open an existing queue (the peer's side). *)

val capacity : t -> int
val try_push : t -> st:Cxlshm_shmem.Stats.t -> int -> bool
val try_pop : t -> st:Cxlshm_shmem.Stats.t -> int option
val try_push_n : t -> st:Cxlshm_shmem.Stats.t -> int list -> int
(** Push a prefix of the list limited by the free room, publishing all of
    it with a {e single} fence and tail store; returns how many were
    pushed (0 when the ring is full or the list is empty). *)

val try_pop_n : t -> st:Cxlshm_shmem.Stats.t -> max:int -> int list
(** Pop up to [max] elements, releasing all their slots with a single
    fence and head store; [[]] when the ring is empty. *)

val push : t -> st:Cxlshm_shmem.Stats.t -> int -> unit
(** Spin until there is room. *)

val pop : t -> st:Cxlshm_shmem.Stats.t -> int
(** Spin until an element arrives. *)

val length : t -> st:Cxlshm_shmem.Stats.t -> int

val mutation_unfenced_pop : bool ref
(** {b Test-only.} Re-introduces the historical missing-fence [try_pop] bug
    for the model checker's mutation self-check, expressed as the store
    reordering the missing fence permits (head published before the slot
    read). Must stay [false] outside the explorer's mutation tests. *)
