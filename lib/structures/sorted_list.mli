(** Ordered map: a sorted linked list of shared records (§2.2.2).

    The second dynamic data structure the paper's RDSM pitch enables —
    "the capability of atomically modifying link pointers embedded in
    shared objects". Nodes are CXLObjs whose single embedded reference is
    the [next] pointer; insertion splices with the Fig 4 attach/§5.4
    change transactions, so every intermediate state a latch-free reader
    can observe is a consistent list. Single writer, any number of
    readers; ordered iteration and range queries come for free.

    Like CXL-KV, a node unlinked by the writer is parked until
    {!quiesce} so concurrent readers never step on recycled memory. *)

type t

val create : Cxlshm.Ctx.t -> value_words:int -> t
(** Allocate the list head (a sentinel). The creator's handle owns a
    counted reference; {!attach} shares it. *)

val handle_ref : t -> Cxlshm.Cxl_ref.t
(** The sentinel's reference — share it (queues / named roots) and
    {!attach} on the other side. *)

val attach : Cxlshm.Ctx.t -> Cxlshm.Cxl_ref.t -> t
(** Wrap a received sentinel reference as a (reader or writer) handle. *)

val close : t -> unit

val insert : t -> key:int -> value:int -> bool
(** [false] if the key already exists (use {!replace}). Writer only. *)

val replace : t -> key:int -> value:int -> unit
(** Insert or atomically replace (§5.4 change on the predecessor's next).
    Writer only. *)

val delete : t -> key:int -> bool
val find : t -> key:int -> int option
val min_binding : t -> (int * int) option
val iter : t -> (key:int -> value:int -> unit) -> unit
val range : t -> lo:int -> hi:int -> (int * int) list
(** Bindings with [lo <= key < hi], ascending. *)

val length : t -> int
val quiesce : t -> unit
