type field = { shift : int; bits : int; mask : int }

let max_word_bits = 62

let field ~shift ~bits =
  if shift < 0 || bits <= 0 || shift + bits > max_word_bits then
    invalid_arg
      (Printf.sprintf "Word.field: shift=%d bits=%d exceeds %d usable bits"
         shift bits max_word_bits);
  { shift; bits; mask = (1 lsl bits) - 1 }

let get f w = (w lsr f.shift) land f.mask
let max_value f = f.mask
let fits f v = v >= 0 && v <= f.mask

let set f w v =
  if not (fits f v) then
    invalid_arg
      (Printf.sprintf "Word.set: value %d does not fit in %d bits" v f.bits);
  w land lnot (f.mask lsl f.shift) lor (v lsl f.shift)
