(** Per-domain sharded free stacks for the hot size classes.

    With [Config.num_domains] > 0, non-owner frees of class blocks park on
    the freeing client's domain stack and allocation pops the local domain
    first, CAS-stealing from siblings, before the owner page scan. Parked
    blocks carry a stamp that pins their segment against §5.3 recycling
    (see {!pins}), which is what makes stealing from dead owners'
    segments safe. See [shard.ml] for the full protocol. *)

val enabled : Ctx.t -> bool
val domain_of : Ctx.t -> int

val push : Ctx.t -> cls:int -> Cxlshm_shmem.Pptr.t -> unit
(** Park a dead class block (header and meta already zeroed) on this
    client's domain stack: stamps it, then a Treiber push. *)

val pop : Ctx.t -> cls:int -> Cxlshm_shmem.Pptr.t option
(** Steal a parked block of class [cls] — local domain first, then
    siblings. The block is returned still stamped: the caller must write
    the object header (making it live) {e before} calling {!clear_stamp},
    so the block pins its segment at every instant. Entries that no longer
    validate (repaired by fsck, foreign data) are purged, salvaging the
    stack's valid suffix. *)

val clear_stamp : Ctx.t -> Cxlshm_shmem.Pptr.t -> unit

val pins : Ctx.t -> Cxlshm_shmem.Pptr.t -> bool
(** The block carries a parked stamp, so its segment must not be recycled
    (consulted by the §5.3 scan's all-zero check; false when sharding is
    off). *)

val stamp_slot : Cxlshm_shmem.Pptr.t -> Cxlshm_shmem.Pptr.t
(** Word holding a block's stamp ([block + header_words + 1]); exposed for
    the offline checkers ([Validate] walks stacks, [Fsck] clears stamps
    when it rebuilds page chains). *)

val stamp_of : Cxlshm_shmem.Pptr.t -> int
(** The stamp value a parked block at this address carries. *)
