(** Simulated CXL-attached shared memory.

    The arena is an array of 63-bit words, each an [Atomic.t], shared by all
    OCaml domains of the process. This gives the exact primitive set the
    paper requires of the underlying RDSM (§3): load, store, CAS, fence and
    flush over a byte-addressable pool — with *real* atomicity and real
    interleavings across domains, not a replayed trace.

    Every operation is attributed to a caller-supplied {!Stats.t} so modeled
    time can be computed per client. Out-of-bounds accesses raise
    {!Wild_pointer}: in the simulator a wild pointer is detected rather than
    silently corrupting, which the correctness tests rely on. *)

exception Wild_pointer of { addr : int; words : int }

type t

val create : ?tier:Latency.tier -> words:int -> unit -> t
(** Fresh zeroed arena of [words] 8-byte words. Default tier is [Cxl]. *)

val words : t -> int
val tier : t -> Latency.tier
val cost_model : t -> Latency.t

val words_per_line : int
(** Words per simulated 64-byte cache line. *)

(** {1 Primitive operations} *)

val load : t -> st:Stats.t -> Pptr.t -> int
val store : t -> st:Stats.t -> Pptr.t -> int -> unit

val cas : t -> st:Stats.t -> Pptr.t -> expected:int -> desired:int -> bool
(** Single-word compare-and-swap, the primitive the era algorithm builds on. *)

val fetch_add : t -> st:Stats.t -> Pptr.t -> int -> int
(** Atomic fetch-and-add; returns the previous value. *)

val fence : t -> st:Stats.t -> unit
(** Store fence (sfence). Orders this client's prior stores before later
    ones. Atomics already give sequential consistency in OCaml, so the fence
    only needs to be *counted* — but it still matters: the fault-injection
    harness uses fence positions as the boundaries where a crash may observe
    reordered stores. *)

val flush : t -> st:Stats.t -> Pptr.t -> unit
(** Cache-line write-back (clwb) of the line containing the address. *)

(** {1 Bulk operations} *)

val fill : t -> st:Stats.t -> Pptr.t -> len:int -> int -> unit
val load_bytes_word : int -> int  (** words needed to store [n] bytes *)

val write_bytes : t -> st:Stats.t -> Pptr.t -> bytes -> unit
(** Pack a byte string into consecutive words (7 payload bytes per word, so
    every stored word stays non-negative). Use [read_bytes] to recover it. *)

val read_bytes : t -> st:Stats.t -> Pptr.t -> len:int -> bytes
val bytes_words : int -> int
(** Words consumed by [write_bytes] for a payload of [n] bytes. *)

val blit : t -> st:Stats.t -> src:Pptr.t -> dst:Pptr.t -> len:int -> unit
(** Word-wise copy inside the arena. *)

(** {1 Validation / introspection (simulator-only, not part of the RDSM)} *)

val unsafe_peek : t -> Pptr.t -> int
(** Read without stats attribution — for validators and debug printers. *)

val unsafe_poke : t -> Pptr.t -> int -> unit

val snapshot : t -> int array
(** Copy of every word (quiesced use only) — the pool's durable image. *)

val restore : t -> int array -> unit
(** Overwrite the arena with a {!snapshot} of identical size. *)

val in_bounds : t -> Pptr.t -> bool
