(* Live segment evacuation off degraded devices.

   The unit of work is one live CXLObj: allocate a replacement on a healthy
   device, copy the payload, re-point every reference word from the old
   block to the new one (§5.4 ChangeRef), then let the old block's count
   fall to zero. Every step is guarded so a crash at any point leaves both
   blocks consistent and a later pass converges:

   - a *guard* RootRef is attached to the old object first, so its count
     cannot race to zero (and the object cannot be recycled) while holders
     are being migrated;
   - the replacement is reachable from its own fresh RootRef, so a crash
     before any holder moved just leaks a fully-initialised copy that
     recovery releases normally;
   - each holder moves with one ChangeRef transaction (two ModifyRefCnt
     commits + one idempotent ModifyRef), so a crash mid-holder resumes
     from the redo log, and a crash between holders leaves counts split
     between old and new — both positive, both reachable, both released
     correctly by the dead evacuator's recovery (guard and replacement
     RootRef are ordinary rootrefs of its slot). *)

module Pptr = Cxlshm_shmem.Pptr

type outcome =
  | Moved of Pptr.t
  | Pinned of string  (** held by a directory the evacuator must not edit *)
  | Dead              (** count raced to zero before the guard attached *)
  | No_space          (** no healthy destination *)
  | Busy              (** another live evacuator holds the sweep claim *)

type report = {
  mutable moved : int;
  mutable pinned : int;
  mutable dead : int;
  mutable no_space : int;
  mutable busy : int;
  mutable moved_rootrefs : int;
  mutable remapped : (Pptr.t * Pptr.t) list;
      (** client-side rootref relocation: (old_rr, new_rr) for handle patching *)
  mutable drained_segments : int;
  mutable recycled_segments : int;
  mutable errors : string list;
}

let empty_report () =
  { moved = 0; pinned = 0; dead = 0; no_space = 0; busy = 0;
    moved_rootrefs = 0; remapped = []; drained_segments = 0;
    recycled_segments = 0; errors = [] }

let pp_report ppf r =
  Format.fprintf ppf
    "moved=%d rootrefs=%d pinned=%d dead=%d no-space=%d busy=%d drained=%d \
     recycled=%d errors=%d"
    r.moved r.moved_rootrefs r.pinned r.dead r.no_space r.busy
    r.drained_segments r.recycled_segments (List.length r.errors)

(* ------------------------------------------------------------------ *)
(* Arena enumeration (attributed loads — this runs online)             *)
(* ------------------------------------------------------------------ *)

let seg_on_degraded (ctx : Ctx.t) seg =
  Ctx.device_degraded ctx (Alloc.segment_device ctx seg)

(* A huge run lives on a degraded device if ANY of its segments does: the
   payload spills through the continuation segments. *)
let huge_run_degraded (ctx : Ctx.t) ~head_seg =
  let n = Alloc.huge_span ctx ~head_seg in
  let rec go k = k < n && (seg_on_degraded ctx (head_seg + k) || go (k + 1)) in
  go 0

let huge_head_obj (ctx : Ctx.t) seg =
  Layout.segment_base ctx.Ctx.lay seg + ctx.Ctx.lay.Layout.seg_hdr_words

let is_huge_head (ctx : Ctx.t) seg =
  match Segment.state ctx seg with
  | Segment.Huge_head -> true
  | Segment.Huge_cont | Segment.Free -> false
  | Segment.Active | Segment.Orphaned | Segment.Leaking ->
      (* A leaking huge head keeps its page kind (cf. Alloc.is_huge). *)
      Page.kind ctx ~gid:(Layout.page_gid ctx.Ctx.lay ~seg ~page:0)
      = Config.kind_huge (Ctx.cfg ctx)

let is_huge_cont (ctx : Ctx.t) seg = Segment.state ctx seg = Segment.Huge_cont

(* Iterate [f block] over every block base of the segment's class pages
   (RootRef and huge pages excluded). *)
let iter_class_blocks (ctx : Ctx.t) seg f =
  let cfg = Ctx.cfg ctx in
  let rr_kind = Config.kind_rootref cfg in
  let huge_kind = Config.kind_huge cfg in
  if not (is_huge_head ctx seg || is_huge_cont ctx seg) then
    for p = 0 to cfg.Config.pages_per_segment - 1 do
      let gid = Layout.page_gid ctx.Ctx.lay ~seg ~page:p in
      let k = Page.kind ctx ~gid in
      if k <> Config.kind_unused && k <> rr_kind && k <> huge_kind then
        List.iter f (Page.blocks ctx ~gid)
    done

let iter_rootrefs (ctx : Ctx.t) seg f =
  let cfg = Ctx.cfg ctx in
  let rr_kind = Config.kind_rootref cfg in
  if not (is_huge_head ctx seg || is_huge_cont ctx seg) then
    for p = 0 to cfg.Config.pages_per_segment - 1 do
      let gid = Layout.page_gid ctx.Ctx.lay ~seg ~page:p in
      if Page.kind ctx ~gid = rr_kind then List.iter f (Page.blocks ctx ~gid)
    done

let live_obj (ctx : Ctx.t) obj =
  Obj_header.ref_cnt_of (Ctx.load ctx (Obj_header.header_of_obj obj)) > 0

(* Every reference word in the arena currently pointing at [obj]:
   in-use RootRef pptr slots and embedded slots of live objects. Mirrors
   the fsck enumeration (Validate.run) with attributed loads. *)
let holders_of (ctx : Ctx.t) ~obj =
  let cfg = Ctx.cfg ctx in
  let acc = ref [] in
  let emb_slots_of o =
    let emb = Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj o)) in
    for i = 0 to emb - 1 do
      if Ctx.load ctx (Obj_header.emb_slot o i) = obj then
        acc := Obj_header.emb_slot o i :: !acc
    done
  in
  for seg = 0 to cfg.Config.num_segments - 1 do
    if is_huge_head ctx seg then begin
      let h = huge_head_obj ctx seg in
      if live_obj ctx h then emb_slots_of h
    end
    else begin
      iter_rootrefs ctx seg (fun rr ->
          if Rootref.in_use ctx rr && Rootref.obj ctx rr = obj then
            acc := Rootref.pptr_slot rr :: !acc);
      iter_class_blocks ctx seg (fun b -> if live_obj ctx b then emb_slots_of b)
    end
  done;
  !acc

let in_directories (ctx : Ctx.t) obj =
  List.mem obj (Transfer.directory_refs ctx.Ctx.mem ctx.Ctx.lay)
  || List.mem obj (Named_roots.directory_refs ctx.Ctx.mem ctx.Ctx.lay)

(* ------------------------------------------------------------------ *)
(* Sweep claim + migration journal                                     *)
(* ------------------------------------------------------------------ *)

(* One evacuation sweep at a time: the claim word serialises the monitor
   leader against clients relocating their own data (and against a second
   monitor replica in the unclosable lease-fencing window). A claim whose
   holder is no longer a live client is broken — the breaker inherits, and
   must resume, the in-flight migration journal. *)
let rec try_claim (ctx : Ctx.t) =
  let addr = Layout.hdr_evac_claim ctx.Ctx.lay in
  let cur = Ctx.load ctx addr in
  if cur = ctx.Ctx.cid + 1 then `Held
  else if cur = 0 then
    if Ctx.cas ctx addr ~expected:0 ~desired:(ctx.Ctx.cid + 1) then `Acquired
    else try_claim ctx
  else if Client.is_alive ctx ~cid:(cur - 1) then `Busy
  else if Ctx.cas ctx addr ~expected:cur ~desired:(ctx.Ctx.cid + 1) then
    `Acquired
  else try_claim ctx

let release_claim (ctx : Ctx.t) =
  let addr = Layout.hdr_evac_claim ctx.Ctx.lay in
  if Ctx.load ctx addr = ctx.Ctx.cid + 1 then Ctx.store ctx addr 0

(* A dead evacuator can leave the re-point phase half done: some holders
   already reference the copy, the rest still reference the old block.
   Cloning again would fork object identity (two live blocks, holders
   split), so the journal names the copy and the successor re-points the
   remaining holders at exactly it. The dead evacuator's guard rootref
   (journaled too) is the one holder left alone — its owner's recovery
   releases it against the old block, which is what finally lets the old
   count fall. *)
let resume_migration (ctx : Ctx.t) =
  let lay = ctx.Ctx.lay in
  let obj = Ctx.load ctx (Layout.hdr_evac_from lay) in
  if obj <> 0 then begin
    let nobj = Ctx.load ctx (Layout.hdr_evac_to lay) in
    let guard_slot = Ctx.load ctx (Layout.hdr_evac_guard lay) in
    if live_obj ctx nobj then begin
      let emb =
        Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj obj))
      in
      let obj_data = Obj_header.data_of_obj obj in
      let own_slot a = a >= obj_data && a < obj_data + emb in
      List.iter
        (fun ref_addr ->
          if ref_addr <> guard_slot && not (own_slot ref_addr) then begin
            let n = Refc.change ctx ~ref_addr ~from_obj:obj ~to_obj:nobj in
            Ctx.crash_point ctx Fault.Evac_after_repoint;
            if n = 0 then begin
              (* The dead evacuator's guard is already gone (its recovery
                 ran first) and we just moved the last holder: tear the
                 old block down the way a sole-reference release would. *)
              Reclaim.mark_leaking_of ctx obj;
              Reclaim.teardown_children ctx ~as_cid:ctx.Ctx.cid ~obj;
              Alloc.free_obj_block ctx obj
            end
          end)
        (holders_of ctx ~obj)
    end;
    (* [from] first: a crash here leaves a cleared journal, and whatever
       references remain are count-consistent either way. *)
    Ctx.store ctx (Layout.hdr_evac_from lay) 0;
    Ctx.store ctx (Layout.hdr_evac_guard lay) 0;
    Ctx.store ctx (Layout.hdr_evac_to lay) 0
  end

(* ------------------------------------------------------------------ *)
(* Moving one object                                                   *)
(* ------------------------------------------------------------------ *)

let evacuate_obj_locked (ctx : Ctx.t) ~obj =
  (* 1. Guard: pin the old object so no concurrent release can recycle it
     while holders migrate. The guard is an ordinary rootref of this
     client, so an evacuator crash releases it through standard recovery. *)
  let guard = Alloc.alloc_rootref ctx in
  let guard_slot = Rootref.pptr_slot guard in
  match Refc.attach ctx ~ref_addr:guard_slot ~refed:obj with
  | exception Refc.Refcount_violation _ ->
      (* Count already zero: the block died before we got here. *)
      Alloc.free_rootref ctx guard;
      Dead
  | () ->
      if in_directories ctx obj then begin
        (* Directory words are owned by their subsystems (queue slots carry
           in-flight transfer protocol state); leave those objects where
           they are. *)
        Reclaim.release_rootref ctx guard;
        Pinned "directory"
      end
      else begin
        let meta = Ctx.load ctx (Obj_header.meta_of_obj obj) in
        let emb = Obj_header.meta_emb_cnt meta in
        let dw =
          if Alloc.is_huge ctx obj then Alloc.huge_data_words ctx obj
          else Obj_header.meta_data_words meta
        in
        match Alloc.alloc_obj ctx ~data_words:dw ~emb_cnt:emb with
        | exception Alloc.Out_of_shared_memory ->
            Reclaim.release_rootref ctx guard;
            No_space
        | nrr, nobj ->
            let dest_seg = Layout.segment_of_addr ctx.Ctx.lay nobj in
            let dest_degraded =
              (* a huge replacement is a run: it must dodge degraded
                 devices with every segment, not just its head *)
              if Alloc.is_huge ctx nobj then
                huge_run_degraded ctx ~head_seg:dest_seg
              else seg_on_degraded ctx dest_seg
            in
            if dest_degraded then begin
              (* The placement ladder spilled back onto a degraded device —
                 nothing healthy is claimable. Moving would churn, not
                 evacuate. *)
              Reclaim.release_rootref ctx nrr;
              Reclaim.release_rootref ctx guard;
              No_space
            end
            else begin
              (* 2. Copy the payload beyond the embedded slots. Huge data
                 runs are contiguous through their continuation segments
                 (the continuation header areas are part of the run), so a
                 plain word loop covers both shapes. *)
              let src = Obj_header.data_of_obj obj in
              let dst = Obj_header.data_of_obj nobj in
              for i = emb to dw - 1 do
                Ctx.store ctx (dst + i) (Ctx.load ctx (src + i))
              done;
              Ctx.crash_point ctx Fault.Evac_after_copy;
              (* 3. Attach the copy to the old object's children, so the
                 old block's teardown (guard release below) nets the child
                 counts to exactly where they started. A self-reference
                 re-points to the copy itself. *)
              for i = 0 to emb - 1 do
                let c = Ctx.load ctx (Obj_header.emb_slot obj i) in
                if c <> 0 then
                  Refc.attach ctx
                    ~ref_addr:(Obj_header.emb_slot nobj i)
                    ~refed:(if c = obj then nobj else c)
              done;
              (* Publish the migration journal before the first re-point:
                 from here on, a successor finishes moving holders to THIS
                 copy instead of cloning another ([resume_migration]). [to]
                 and [guard] land before [from] arms the journal. *)
              let lay = ctx.Ctx.lay in
              Ctx.store ctx (Layout.hdr_evac_to lay) nobj;
              Ctx.store ctx (Layout.hdr_evac_guard lay) guard_slot;
              Ctx.store ctx (Layout.hdr_evac_from lay) obj;
              (* 4. Re-point every holder. The old object's own embedded
                 slots (a self-reference) die with it; the guard slot is
                 released, not moved. *)
              let obj_data = Obj_header.data_of_obj obj in
              let own_slot a = a >= obj_data && a < obj_data + emb in
              List.iter
                (fun ref_addr ->
                  if ref_addr <> guard_slot && not (own_slot ref_addr) then begin
                    ignore
                      (Refc.change ctx ~ref_addr ~from_obj:obj ~to_obj:nobj);
                    Ctx.crash_point ctx Fault.Evac_after_repoint
                  end)
                (holders_of ctx ~obj);
              (* Every holder moved: identity now lives at the copy, so the
                 journal retires before the old block is let go. *)
              Ctx.store ctx (Layout.hdr_evac_from lay) 0;
              Ctx.store ctx (Layout.hdr_evac_guard lay) 0;
              Ctx.store ctx (Layout.hdr_evac_to lay) 0;
              Ctx.crash_point ctx Fault.Evac_before_release;
              (* 5. Drop the guard — the old block's count falls to our
                 guard reference (plus a self-reference, which the
                 sole-holder teardown detaches first), so this release
                 frees it. Then drop the bootstrap reference to the copy:
                 its count settles at exactly the number of holders
                 migrated. *)
              Reclaim.release_rootref ctx guard;
              Reclaim.release_rootref ctx nrr;
              Moved nobj
            end
      end

(* Standalone entry: claims the sweep word for the single move (re-entrant
   under a caller's sweep-wide claim), draining any inherited migration
   journal first. *)
let evacuate_obj (ctx : Ctx.t) ~obj =
  Ctx.refresh_degraded_hint ctx;
  match try_claim ctx with
  | `Busy -> Busy
  | (`Held | `Acquired) as c -> (
      if c = `Acquired then resume_migration ctx;
      match evacuate_obj_locked ctx ~obj with
      | out ->
          if c = `Acquired then release_claim ctx;
          out
      | exception (Fault.Crashed _ as e) ->
          (* Simulated death: a real crash releases nothing — the next
             claimant breaks the claim and resumes the journal. *)
          raise e)

(* ------------------------------------------------------------------ *)
(* Segment-level draining                                              *)
(* ------------------------------------------------------------------ *)

let live_blocks_on (ctx : Ctx.t) seg =
  let n = ref 0 in
  if is_huge_head ctx seg then begin
    if live_obj ctx (huge_head_obj ctx seg) then incr n
  end
  else if is_huge_cont ctx seg then begin
    (* Alive iff its head is: find the head by walking back. *)
    let rec head s = if is_huge_head ctx s then s else head (s - 1) in
    let h = head seg in
    if Alloc.huge_span ctx ~head_seg:h > seg - h && live_obj ctx (huge_head_obj ctx h)
    then incr n
  end
  else begin
    iter_class_blocks ctx seg (fun b -> if live_obj ctx b then incr n);
    iter_rootrefs ctx seg (fun rr -> if Rootref.in_use ctx rr then incr n)
  end;
  !n

let live_segments_on (ctx : Ctx.t) ~dev =
  let cfg = Ctx.cfg ctx in
  List.filter
    (fun seg ->
      Alloc.segment_device ctx seg = dev
      && Segment.state ctx seg <> Segment.Free
      && live_blocks_on ctx seg > 0)
    (List.init cfg.Config.num_segments Fun.id)

let record r = function
  | Moved _ -> r.moved <- r.moved + 1
  | Pinned _ -> r.pinned <- r.pinned + 1
  | Dead -> r.dead <- r.dead + 1
  | No_space -> r.no_space <- r.no_space + 1
  | Busy -> r.busy <- r.busy + 1

(* Move every live data block off the degraded devices. [owned_only]
   restricts the sweep to segments owned by [ctx] (the client-side
   relocation path); the monitor-side sweep takes everything except
   in-use RootRefs, which only their owner (alive) or recovery (dead) may
   touch. *)
let drain_data (ctx : Ctx.t) r ~owned_only =
  let cfg = Ctx.cfg ctx in
  let mine seg = Segment.owner ctx seg = Some ctx.Ctx.cid in
  for seg = 0 to cfg.Config.num_segments - 1 do
    if (not owned_only) || mine seg then begin
      if is_huge_head ctx seg then begin
        if huge_run_degraded ctx ~head_seg:seg then begin
          let h = huge_head_obj ctx seg in
          if live_obj ctx h then begin
            record r (evacuate_obj ctx ~obj:h);
            Client.heartbeat ctx
          end
        end
      end
      else if seg_on_degraded ctx seg && Segment.state ctx seg <> Segment.Free
      then
        iter_class_blocks ctx seg (fun b ->
            if live_obj ctx b then begin
              record r (evacuate_obj ctx ~obj:b);
              (* Long sweeps must not let the evacuator's own lease lapse. *)
              Client.heartbeat ctx
            end)
    end
  done

(* ------------------------------------------------------------------ *)
(* Monitor-side evacuation                                             *)
(* ------------------------------------------------------------------ *)

let run ~mem ~lay =
  let r = empty_report () in
  match Client.register ~mem ~lay () with
  | exception Failure m ->
      r.errors <- ("register: " ^ m) :: r.errors;
      r
  | reg ->
      (* Work through an eager context: evacuation must not park guard
         releases in an epoch buffer — a drained segment has to read empty
         the moment the sweep finishes. *)
      let ctx =
        Ctx.make ~cache:false ~epoch:false ~mem ~lay ~cid:reg.Ctx.cid ()
      in
      let degraded = Ctx.degraded_devices ctx in
      if degraded = [] then begin
        Client.unregister ctx;
        r
      end
      else if try_claim ctx = `Busy then begin
        (* A live evacuator (a client relocating its own data, or a stalled
           ex-leader) holds the sweep; the next monitor pass retries. *)
        r.busy <- r.busy + 1;
        Client.unregister ctx;
        r
      end
      else begin
        resume_migration ctx;
        drain_data ctx r ~owned_only:false;
        (* In-use rootrefs of live owners are their owner's to relocate
           (Cxl_ref handles alias them by address); dead owners' rootrefs
           belong to recovery. Count what is left behind. *)
        let cfg = Ctx.cfg ctx in
        for seg = 0 to cfg.Config.num_segments - 1 do
          if seg_on_degraded ctx seg then
            iter_rootrefs ctx seg (fun rr ->
                if Rootref.in_use ctx rr then r.pinned <- r.pinned + 1)
        done;
        (* Recycle what is now empty: unowned Orphaned/Leaking segments go
           through the §5.3 full scan; an owned segment is its owner's to
           release. *)
        for seg = 0 to cfg.Config.num_segments - 1 do
          if
            seg_on_degraded ctx seg
            && Segment.state ctx seg <> Segment.Free
            && live_blocks_on ctx seg = 0
          then begin
            r.drained_segments <- r.drained_segments + 1;
            match Segment.owner ctx seg with
            | None ->
                if Reclaim.scan_segment ctx seg then
                  r.recycled_segments <- r.recycled_segments + 1
            | Some o when o = ctx.Ctx.cid ->
                (* The evacuator never allocates on a degraded device; an
                   owned-by-us empty segment here means the ladder had
                   nothing healthy. Give it straight back. *)
                for p = 0 to cfg.Config.pages_per_segment - 1 do
                  Page.reset ctx ~gid:(Layout.page_gid lay ~seg ~page:p)
                done;
                Segment.release ctx seg;
                r.recycled_segments <- r.recycled_segments + 1
            | Some o ->
                (* Orphaned/Leaking leftovers of a departed owner go through
                   the §5.3 scan; a live owner's segment is theirs. *)
                if
                  (not (Client.is_alive ctx ~cid:o))
                  && (match Segment.state ctx seg with
                     | Segment.Orphaned | Segment.Leaking -> true
                     | _ -> false)
                  && Reclaim.scan_segment ctx seg
                then r.recycled_segments <- r.recycled_segments + 1
          end
        done;
        release_claim ctx;
        Client.unregister ctx;
        r
      end

(* ------------------------------------------------------------------ *)
(* Client-side relocation                                              *)
(* ------------------------------------------------------------------ *)

let reset_degraded_cursors (ctx : Ctx.t) =
  let lay = ctx.Ctx.lay in
  let pps = (Ctx.cfg ctx).Config.pages_per_segment in
  for k = 0 to lay.Layout.num_classes do
    let v = Ctx.load_class_head ctx k in
    if v <> 0 && seg_on_degraded ctx ((v - 1) / pps) then
      Ctx.store_class_head ctx k 0
  done;
  let cur = Ctx.load_cur_segment ctx in
  if cur <> 0 && seg_on_degraded ctx (cur - 1) then Ctx.store_cur_segment ctx 0

let segment_empty (ctx : Ctx.t) seg =
  let cfg = Ctx.cfg ctx in
  let rec go p =
    if p >= cfg.Config.pages_per_segment then true
    else
      let gid = Layout.page_gid ctx.Ctx.lay ~seg ~page:p in
      (Page.kind ctx ~gid = Config.kind_unused || Page.used ctx ~gid = 0)
      && go (p + 1)
  in
  go 0

let relocate_own (ctx : Ctx.t) =
  let r = empty_report () in
  Ctx.refresh_degraded_hint ctx;
  if Ctx.degraded_devices ctx = [] then r
  else if try_claim ctx = `Busy then begin
    r.busy <- r.busy + 1;
    r.errors <- "another evacuator holds the sweep claim" :: r.errors;
    r
  end
  else begin
    resume_migration ctx;
    (* Anything parked must land first: a parked retirement may hold the
       last count of a block we are about to enumerate. *)
    Reclaim.flush_retired ctx;
    Alloc.collect_deferred ctx;
    (* Stop the allocator from handing out degraded pages mid-relocation:
       fresh claims re-steer through the placement ladder. *)
    reset_degraded_cursors ctx;
    drain_data ctx r ~owned_only:true;
    (* The guard releases above may have parked again under epoch mode. *)
    Reclaim.flush_retired ctx;
    (* Relocate this client's own RootRef blocks: copy the local count,
       move the counted link (count-neutral, redo-covered), free the old
       block. Callers patch their CXLRef handles from [remapped]. *)
    List.iter
      (fun seg ->
        if seg_on_degraded ctx seg then
          iter_rootrefs ctx seg (fun rr1 ->
              if Rootref.in_use ctx rr1 then begin
                let rr2 = Alloc.alloc_rootref ctx in
                if seg_on_degraded ctx (Layout.segment_of_addr ctx.Ctx.lay rr2)
                then begin
                  Alloc.free_rootref ctx rr2;
                  r.errors <-
                    Printf.sprintf "rootref @%d: no healthy destination" rr1
                    :: r.errors
                end
                else begin
                  Rootref.set_local_cnt ctx rr2 (Rootref.local_cnt ctx rr1);
                  let o = Rootref.obj ctx rr1 in
                  if o <> 0 then
                    Refc.move ctx ~ref_addr:(Rootref.pptr_slot rr1) ~rr:rr2
                      ~refed:o;
                  Alloc.free_rootref ctx rr1;
                  r.moved_rootrefs <- r.moved_rootrefs + 1;
                  r.remapped <- (rr1, rr2) :: r.remapped
                end
              end))
      (Segment.owned_by ctx ~cid:ctx.Ctx.cid);
    (* Hand back what is now empty. *)
    List.iter
      (fun seg ->
        if seg_on_degraded ctx seg then
          match Segment.state ctx seg with
          | Segment.Active | Segment.Leaking when segment_empty ctx seg ->
              let cfg = Ctx.cfg ctx in
              for p = 0 to cfg.Config.pages_per_segment - 1 do
                Page.reset ctx ~gid:(Layout.page_gid ctx.Ctx.lay ~seg ~page:p)
              done;
              Segment.release ctx seg;
              r.recycled_segments <- r.recycled_segments + 1
          | _ -> ())
      (Segment.owned_by ctx ~cid:ctx.Ctx.cid);
    release_claim ctx;
    r
  end
