(* Epoch-batched retirement journal.

   The eager release path pays a fence plus a rootref-line flush for every
   rootref whose local count drops to zero. With batching on
   ([Config.epoch_batch] = K > 0), releases instead park the rootref in the
   context's volatile buffer ([Ctx.epoch]); the rootref stays linked and
   [in_use] in shared memory, so a crash before the flush loses nothing —
   the dead client's rootref scan releases the parked refs like any others.

   [flush_retired] drains the buffer: it seals the batch into the client's
   persistent retirement journal (era + slots, one fence, then the count
   word as commit point), retires every entry, drains the deferred
   write-back queue, and clears the journal. One fence and two flushes per
   batch of up to K retirements, versus one fence + one flush per
   retirement on the eager path.

   Crash windows (see Recovery.recover_journal for the replay):
   - before the count store is durable: no batch exists; parked refs are
     still in_use and the rootref scan releases them.
   - after the seal: entries are processed strictly in slot order and each
     entry's rootref is freed (in_use cleared) only once fully retired, so
     the still-in_use tail is exactly the unfinished work. At most the
     first such entry can have a committed-but-unfinished count decrement.
   - after the batch, before the clear: every entry's rootref has in_use
     clear, so replay is a no-op walk.

   The final clear is flushed eagerly: if the cleared count were allowed to
   linger in a volatile cache, a crash could resurrect the sealed journal
   after its rootrefs were re-allocated, and replay would release live
   objects. *)

let enqueue ctx rr =
  let e = ctx.Ctx.epoch in
  e.Ctx.ebuf.(e.Ctx.elen) <- rr;
  e.Ctx.elen <- e.Ctx.elen + 1

let is_full ctx =
  let e = ctx.Ctx.epoch in
  e.Ctx.elen >= Ctx.epoch_capacity ctx

let pending ctx = ctx.Ctx.epoch.Ctx.elen

let flush_retired ctx ~retire_one =
  let e = ctx.Ctx.epoch in
  let n = e.Ctx.elen in
  if n = 0 then Ctx.drain_dirty ctx
  else begin
    let lay = ctx.Ctx.lay and cid = ctx.Ctx.cid in
    Ctx.store ctx (Layout.retire_era lay cid) (Era.self ctx);
    for k = 0 to n - 1 do
      Ctx.store ctx (Layout.retire_slot lay cid k) e.Ctx.ebuf.(k)
    done;
    Ctx.fence ctx;
    let cnt = Layout.retire_count lay cid in
    Ctx.store ctx cnt n;
    Ctx.flush ctx cnt;
    Ctx.crash_point ctx Fault.Retire_after_seal;
    for k = 0 to n - 1 do
      retire_one e.Ctx.ebuf.(k);
      Ctx.crash_point ctx Fault.Retire_mid_batch
    done;
    Ctx.drain_dirty ctx;
    Ctx.crash_point ctx Fault.Retire_after_batch;
    Ctx.store ctx cnt 0;
    Ctx.flush ctx cnt;
    e.Ctx.elen <- 0
  end

(* Recovery-side view of a dead client's journal. *)

let read_journal ctx ~cid =
  let lay = ctx.Ctx.lay in
  let k = (Ctx.cfg ctx).Config.epoch_batch in
  if k = 0 then None
  else
    let n = Ctx.load ctx (Layout.retire_count lay cid) in
    if n < 1 || n > k then None
    else
      Some (Array.init n (fun i -> Ctx.load ctx (Layout.retire_slot lay cid i)))

let clear_journal ctx ~cid =
  let cnt = Layout.retire_count ctx.Ctx.lay cid in
  Ctx.store ctx cnt 0;
  Ctx.flush ctx cnt
