(* Observability layer: spans around hot-path operations feed the client's
   in-heap latency histograms and a per-client event ring in shared memory.

   Ring writes use the control-plane primitives (Mem.ctl_peek/ctl_poke):
   they bypass fault injection and the stats accumulator, so tracing never
   perturbs the modeled clock and keeps working while the data plane is
   faulting. That is the point — the ring is forensic state. A client killed
   at a crash point leaves its Begin (and possibly Err) event in shared
   memory, where the monitor and [cxlshm trace] can read it back. *)

module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Histogram = Cxlshm_shmem.Histogram

type phase = Begin | End | Err

let phase_index = function Begin -> 0 | End -> 1 | Err -> 2
let phase_of_index = function 0 -> Begin | 1 -> End | _ -> Err
let phase_name = function Begin -> "begin" | End -> "end" | Err -> "err"

(* Slot word 0 packs op and phase: tag = op_index * 4 + phase. Two spare
   tag values per op (phase 3 unused) keep decoding strict enough that
   fsck can tell a torn slot from a real one. *)
let tag_of ~op ~phase = (Histogram.op_index op * 4) + phase_index phase

let decode_tag tag =
  if tag < 0 || tag >= Histogram.num_ops * 4 then None
  else
    let p = tag land 3 in
    if p > 2 then None
    else Some (Histogram.op_of_index (tag lsr 2), phase_of_index p)

let set ctx on = ctx.Ctx.trace_on <- on

let emit ctx ~op ~phase ~addr ~dur_ns =
  let mem = ctx.Ctx.mem and lay = ctx.Ctx.lay and cid = ctx.Ctx.cid in
  let cfg = lay.Layout.cfg in
  let cur_p = Layout.trace_cursor lay cid in
  let n = Mem.ctl_peek mem cur_p in
  let n = if n < 0 then 0 else n in
  let slot = Layout.trace_slot lay cid (n mod cfg.Config.trace_slots) in
  let era = Mem.ctl_peek mem (Layout.era_cell lay cid cid) in
  let t_ns =
    int_of_float (Stats.modeled_ns (Mem.cost_model mem) ctx.Ctx.st)
  in
  Mem.ctl_poke mem slot (tag_of ~op ~phase);
  Mem.ctl_poke mem (slot + 1) addr;
  Mem.ctl_poke mem (slot + 2) era;
  Mem.ctl_poke mem (slot + 3) (int_of_float (Float.max 0. dur_ns));
  Mem.ctl_poke mem (slot + 4) t_ns;
  (* Cursor last: a torn crash leaves a stale slot outside the published
     window, never a published slot with garbage. *)
  Mem.ctl_poke mem cur_p (n + 1)

let with_span ctx op ?(addr = 0) f =
  if not ctx.Ctx.trace_on then f ()
  else begin
    let model = Mem.cost_model ctx.Ctx.mem in
    let before = Stats.probe ctx.Ctx.st in
    emit ctx ~op ~phase:Begin ~addr ~dur_ns:0.;
    match f () with
    | v ->
        let dur_ns = Stats.probe_ns model ctx.Ctx.st ~since:before in
        Histogram.record ctx.Ctx.hists.(Histogram.op_index op) dur_ns;
        emit ctx ~op ~phase:End ~addr ~dur_ns;
        v
    | exception e ->
        let dur_ns = Stats.probe_ns model ctx.Ctx.st ~since:before in
        emit ctx ~op ~phase:Err ~addr ~dur_ns;
        raise e
  end

(* {1 Reading rings back} *)

type event = {
  seq : int;
  op : Histogram.op;
  phase : phase;
  addr : int;
  era : int;
  dur_ns : int;
  t_ns : int;
}

let dump mem lay ~cid ?last () =
  let cfg = lay.Layout.cfg in
  let slots = cfg.Config.trace_slots in
  let n = Mem.ctl_peek mem (Layout.trace_cursor lay cid) in
  if n <= 0 then []
  else begin
    let avail = min n slots in
    let want = match last with None -> avail | Some k -> min k avail in
    let first = n - want in
    let out = ref [] in
    for seq = n - 1 downto first do
      let slot = Layout.trace_slot lay cid (seq mod slots) in
      let tag = Mem.ctl_peek mem slot in
      match decode_tag tag with
      | None -> () (* torn/corrupt slot: skip, fsck repairs the ring *)
      | Some (op, phase) ->
          out :=
            {
              seq;
              op;
              phase;
              addr = Mem.ctl_peek mem (slot + 1);
              era = Mem.ctl_peek mem (slot + 2);
              dur_ns = Mem.ctl_peek mem (slot + 3);
              t_ns = Mem.ctl_peek mem (slot + 4);
            }
            :: !out
    done;
    !out
  end

let pp_event ppf e =
  Format.fprintf ppf "#%-6d %-13s %-5s addr=%-8d era=%-4d dur=%6dns t=%dns"
    e.seq (Histogram.op_name e.op) (phase_name e.phase) e.addr e.era e.dur_ns
    e.t_ns
