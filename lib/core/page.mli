(** Page metadata and intrusive free lists (Fig 3, §3.3).

    A page is dedicated to one size class. Free blocks form an intrusive
    singly-linked list: the page meta's [free] word points at the first free
    block and each free block's next pointer points at the following one —
    exactly the structure §5.1's recovery guard relies on. Pages are
    single-writer (owned by the segment's client), so page meta updates are
    plain stores; crash windows are covered by write ordering (the page
    [kind] is written last during initialisation, so [kind <> unused] implies
    a complete page). *)

val next_slot_offset : kind_rootref:bool -> int
(** Where a free block stores its next pointer: word 1 for RootRef blocks,
    the first data word (after the header) otherwise. *)

val init : Ctx.t -> gid:int -> kind:int -> block_words:int -> unit
(** Build the free chain and publish the page under [kind]. *)

val reset : Ctx.t -> gid:int -> unit
(** Return the page to [kind_unused] (recovery / segment recycling). *)

val kind : Ctx.t -> gid:int -> int
val block_words : Ctx.t -> gid:int -> int
val capacity : Ctx.t -> gid:int -> int
val free_head : Ctx.t -> gid:int -> Cxlshm_shmem.Pptr.t

val set_free_head : Ctx.t -> gid:int -> Cxlshm_shmem.Pptr.t -> unit
(** Owner-side store of the free-list head ([Alloc] interleaves it with
    RootRef linking per §5.1); write-through via the cache tier. *)

val used : Ctx.t -> gid:int -> int
val set_used : Ctx.t -> gid:int -> int -> unit
val incr_used : Ctx.t -> gid:int -> unit
val decr_used : Ctx.t -> gid:int -> unit

val pop_free : Ctx.t -> gid:int -> rootref:bool -> Cxlshm_shmem.Pptr.t option
(** Owner-side pop of the free-list head (reads the head's next pointer and
    advances [free]). Used for plain block allocation where no RootRef
    linking interleaves; [Alloc] re-implements the interleaved §5.1 order
    itself. *)

val push_free : Ctx.t -> gid:int -> rootref:bool -> Cxlshm_shmem.Pptr.t -> unit
(** Owner-side push of a freed block. *)

val blocks : Ctx.t -> gid:int -> Cxlshm_shmem.Pptr.t list
(** Addresses of every block slot in the page (by capacity), for scans. *)

val block_of_addr : Ctx.t -> Cxlshm_shmem.Pptr.t -> Cxlshm_shmem.Pptr.t * int
(** [(block_base, gid)] of the block containing [addr]. Raises
    [Invalid_argument] if [addr] is not inside an initialised page. *)
