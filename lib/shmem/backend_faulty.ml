(* Device-fault injection: a wrapper over any other backend that makes the
   pool misbehave the way real CXL devices do — on a deterministic,
   seed-driven schedule.

   Four fault classes, after "Towards CXL Resilience to CPU Failures" and
   the media-error concerns of the CXL memory-sharing literature:

   - {b read poison}: a load hits a poisoned line and the (simulated)
     hardware raises a machine-check instead of returning data. Transient:
     the retry re-reads a healthy copy. No state is corrupted.
   - {b torn write}: a store lands only partially — the low 32 bits of the
     new value, the high bits of the old — and faults. The partial value
     IS in memory; a successful retry overwrites it, a client that dies
     first leaves a torn word (e.g. a torn object header) for fsck.
   - {b stuck word}: the media at one address stops accepting writes; the
     store is dropped and every further store to that address faults too.
     Persistent until the device is serviced ([arm t false]).
   - {b offline window}: a whole device drops off the switch for a window
     of the operation sequence; every access to it faults until the window
     passes. Transient on the scale of a bounded-backoff retry loop iff the
     window is short.

   Scheduling is deterministic: one [Random.State] seeded from [spec.seed]
   is advanced once per armed load/store/CAS, so a given (seed, operation
   sequence) always injects the same faults — the soak harness prints the
   seed of any failing run and it replays exactly. *)

type fault_class = Read_poison | Torn_write | Stuck_word | Offline

let fault_class_name = function
  | Read_poison -> "read-poison"
  | Torn_write -> "torn-write"
  | Stuck_word -> "stuck-word"
  | Offline -> "offline"

let all_fault_classes = [ Read_poison; Torn_write; Stuck_word; Offline ]

exception
  Device_error of {
    dev : int;
    addr : int;
    fault : fault_class;
    transient : bool;
  }

(** Pure-data fault schedule (safe to embed in a marshalled [Config.t]).
    Probabilities are per raw word operation; [offline] windows are
    [(device, first_op, last_op)] inclusive ranges over the backend's raw
    operation counter. *)
type spec = {
  seed : int;
  read_poison : float;
  torn_write : float;
  stuck_word : float;
  offline : (int * int * int) list;
}

let quiet = { seed = 0; read_poison = 0.; torn_write = 0.; stuck_word = 0.; offline = [] }

type t = {
  base : Mem_intf.packed;
  spec : spec;
  rng : Random.State.t;
  mutable ops : int;
  stuck : (int, unit) Hashtbl.t;
  mutable armed : bool;
  injected : int array; (* per fault_class injection counts *)
}

let class_index = function
  | Read_poison -> 0
  | Torn_write -> 1
  | Stuck_word -> 2
  | Offline -> 3

let create ?(armed = true) ~base ~spec () =
  {
    base;
    spec;
    rng = Random.State.make [| 0xfa017; spec.seed |];
    ops = 0;
    stuck = Hashtbl.create 16;
    armed;
    injected = Array.make 4 0;
  }

let arm t on =
  t.armed <- on;
  (* Disarming models servicing the device: stuck media is replaced, so
     writes land again — but the values the stuck words swallowed are
     gone; that logical corruption is fsck's problem. *)
  if not on then Hashtbl.reset t.stuck

let is_armed t = t.armed
let op_count t = t.ops
let injected t = List.map (fun c -> (c, t.injected.(class_index c))) all_fault_classes
let injected_total t = Array.fold_left ( + ) 0 t.injected
let stuck_addrs t = Hashtbl.fold (fun a () acc -> a :: acc) t.stuck []

(* ---- delegation shorthands ---- *)

let b_name t = let (Mem_intf.Packed ((module B), b)) = t.base in B.name b
let words t = let (Mem_intf.Packed ((module B), b)) = t.base in B.words b
let num_devices t = let (Mem_intf.Packed ((module B), b)) = t.base in B.num_devices b
let device_of t p = let (Mem_intf.Packed ((module B), b)) = t.base in B.device_of b p
let device_tier t d = let (Mem_intf.Packed ((module B), b)) = t.base in B.device_tier b d
let b_load t p = let (Mem_intf.Packed ((module B), b)) = t.base in B.load b p
let b_store t p v = let (Mem_intf.Packed ((module B), b)) = t.base in B.store b p v

let name t = "faulty+" ^ b_name t

(* ---- injection core ---- *)

let fire t fault ~addr ~transient =
  t.injected.(class_index fault) <- t.injected.(class_index fault) + 1;
  raise (Device_error { dev = device_of t addr; addr; fault; transient })

let check_offline t addr =
  let dev = device_of t addr in
  if
    List.exists
      (fun (d, first, last) -> d = dev && t.ops >= first && t.ops <= last)
      t.spec.offline
  then fire t Offline ~addr ~transient:true

let draw t = Random.State.float t.rng 1.0

(* Every armed load/store/CAS advances both the op counter (offline windows)
   and the RNG (probabilistic classes), keeping the schedule a pure function
   of the operation sequence. *)
let tick t = t.ops <- t.ops + 1

let load t p =
  tick t;
  if t.armed then begin
    check_offline t p;
    if t.spec.read_poison > 0. && draw t < t.spec.read_poison then
      fire t Read_poison ~addr:p ~transient:true
  end;
  b_load t p

let store t p v =
  tick t;
  if t.armed then begin
    check_offline t p;
    if Hashtbl.mem t.stuck p then fire t Stuck_word ~addr:p ~transient:false;
    let d = draw t in
    if t.spec.stuck_word > 0. && d < t.spec.stuck_word then begin
      (* The word goes stuck at its current value: this store is dropped
         and every later one faults immediately. *)
      Hashtbl.replace t.stuck p ();
      fire t Stuck_word ~addr:p ~transient:false
    end;
    if t.spec.torn_write > 0. && d < t.spec.stuck_word +. t.spec.torn_write
    then begin
      (* Torn 8-byte store: only the low half lands. *)
      let old = b_load t p in
      b_store t p (old land lnot 0xffffffff lor (v land 0xffffffff));
      fire t Torn_write ~addr:p ~transient:true
    end
  end;
  b_store t p v

let cas t p ~expected ~desired =
  tick t;
  if t.armed then begin
    check_offline t p;
    if Hashtbl.mem t.stuck p then fire t Stuck_word ~addr:p ~transient:false;
    if t.spec.read_poison > 0. && draw t < t.spec.read_poison then
      fire t Read_poison ~addr:p ~transient:true
  end;
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.cas b p ~expected ~desired

let fetch_add t p n =
  tick t;
  if t.armed then begin
    check_offline t p;
    if Hashtbl.mem t.stuck p then fire t Stuck_word ~addr:p ~transient:false
  end;
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.fetch_add b p n

let fence t = let (Mem_intf.Packed ((module B), b)) = t.base in B.fence b

let flush t p =
  tick t;
  if t.armed then check_offline t p;
  let (Mem_intf.Packed ((module B), b)) = t.base in
  B.flush b p

let fill t ~pos ~len v =
  for i = pos to pos + len - 1 do
    store t i v
  done

let blit t ~src ~dst ~len =
  (* A torn blit stops mid-copy: the prefix has moved, the suffix has not.
     Drawn once per bulk copy, before any word moves. *)
  let teared =
    if t.armed && len > 1 && t.spec.torn_write > 0. && draw t < t.spec.torn_write
    then len / 2
    else len
  in
  let copy i = b_store t (dst + i) (b_load t (src + i)) in
  (if src < dst && src + len > dst then
     for i = teared - 1 downto 0 do copy (len - teared + i) done
   else for i = 0 to teared - 1 do copy i done);
  if teared < len then fire t Torn_write ~addr:dst ~transient:true

(* Control-plane access: fabric-manager metadata (e.g. the degraded-device
   bitmap) travels out of band, not over the faulted media path — these
   never inject and don't advance the schedule. *)
let pristine_load t p = b_load t p
let pristine_store t p v = b_store t p v

(* Maintenance paths: snapshot/restore model the pool's independent power
   domain and bypass injection entirely. *)
let snapshot t = let (Mem_intf.Packed ((module B), b)) = t.base in B.snapshot b
let restore t ws = let (Mem_intf.Packed ((module B), b)) = t.base in B.restore b ws
