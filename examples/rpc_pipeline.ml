(* Pass-by-reference RPC (§2.2.1, §6.3): a two-stage microservice pipeline.

   A "gateway" client calls a "tokeniser" service, whose output object is
   then passed — by reference, never copied — to a "scorer" service. The
   intermediate object moves between three isolation domains without a
   single serialisation step. Each service runs in its own domain, like a
   microservice in its own failure domain.

   Run: dune exec examples/rpc_pipeline.exe *)

open Cxlshm
open Cxlshm_rpc

let tokenise_func = 1
let score_func = 2

let service_body arena ~gateway_cid ~announce =
  let ctx = Shm.join arena () in
  announce ctx.Ctx.cid;
  let server = Cxl_rpc.accept ctx ~client_cid:gateway_cid ~capacity:8 in
  let handled = ref 0 in
  let handler ~func ~args ~output =
    match (func, args) with
    | f, [ text ] when f = tokenise_func ->
        (* split into words, store count + first-word hash in the output *)
        let len = Message.read_word text 0 in
        let s = Bytes.to_string (Message.read_bytes_at text ~word_off:1 ~len) in
        let words = List.filter (( <> ) "") (String.split_on_char ' ' s) in
        Message.write_word output 0 (List.length words);
        Message.write_word output 1
          (match words with w :: _ -> Hashtbl.hash w land 0xFFFF | [] -> 0)
    | f, [ tokens ] when f = score_func ->
        (* score = 10 * word count + hash fragment — reads the tokeniser's
           output object in place *)
        let count = Message.read_word tokens 0 in
        let h = Message.read_word tokens 1 in
        Message.write_word output 0 ((10 * count) + (h land 0xF))
    | _ -> failwith "unknown function"
  in
  while !handled < 3 do
    if Cxl_rpc.serve_one server ~handler then incr handled
    else Domain.cpu_relax ()
  done;
  Cxl_rpc.close_server server;
  Shm.leave ctx

let () =
  let arena = Shm.create () in
  let gateway = Shm.join arena () in
  let tok_cid = Atomic.make (-1) and score_cid = Atomic.make (-1) in
  let tok_domain =
    Domain.spawn (fun () ->
        service_body arena ~gateway_cid:gateway.Ctx.cid
          ~announce:(Atomic.set tok_cid))
  in
  let score_domain =
    Domain.spawn (fun () ->
        service_body arena ~gateway_cid:gateway.Ctx.cid
          ~announce:(Atomic.set score_cid))
  in
  let rec wait cell =
    match Atomic.get cell with
    | -1 ->
        Domain.cpu_relax ();
        wait cell
    | c -> c
  in
  let tokeniser = Cxl_rpc.connect gateway ~server_cid:(wait tok_cid) ~capacity:8 in
  let scorer = Cxl_rpc.connect gateway ~server_cid:(wait score_cid) ~capacity:8 in

  List.iter
    (fun sentence ->
      (* stage 0: put the request payload in the pool *)
      let text =
        Shm.cxl_malloc gateway ~size_bytes:(8 + String.length sentence) ()
      in
      Cxl_ref.write_word text 0 (String.length sentence);
      Cxlshm_shmem.Mem.write_bytes gateway.Ctx.mem ~st:gateway.Ctx.st
        (Obj_header.data_of_obj (Cxl_ref.obj text) + 1)
        (Bytes.of_string sentence);
      (* stage 1: tokenise *)
      let tokens =
        Cxl_rpc.call tokeniser ~func:tokenise_func ~args:[ text ]
          ~output_bytes:16
      in
      (* stage 2: score — the tokeniser's OUTPUT object is the argument,
         passed by reference *)
      let score =
        Cxl_rpc.call scorer ~func:score_func ~args:[ tokens ] ~output_bytes:8
      in
      Printf.printf "%-28s -> %d words, score %d\n" sentence
        (Cxl_ref.read_word tokens 0)
        (Cxl_ref.read_word score 0);
      List.iter Cxl_ref.drop [ text; tokens; score ])
    [ "memory wants to be shared"; "no copies were made"; "references travel light" ];

  (* the tokeniser handled 3 calls, the scorer handled 3 calls *)
  Domain.join tok_domain;
  Domain.join score_domain;
  Cxl_rpc.close_client tokeniser;
  Cxl_rpc.close_client scorer;
  Shm.leave gateway;
  let v = Shm.validate arena in
  assert (Validate.is_clean v);
  print_endline "pipeline OK — three isolation domains, zero copies"
