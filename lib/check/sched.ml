(* Effect-based cooperative fibers — the mechanism under the explorer.

   A logical client is an ordinary [unit -> unit] function run under a deep
   effect handler. Two hooks turn its shared-memory footprint into scheduling
   points: [Backend_sched.hook] fires before every raw word operation of a
   [Mem.Sched]-wrapped pool, and [Fault.on_point] fires at every labeled
   crash point — both perform the [Yield] effect, suspending the fiber and
   handing its continuation to whoever called [start]/[resume].

   The hooks are installed only while fiber code is actually on the stack
   (set on entry to [start]/[resume]/[kill], cleared when control comes
   back), so scheduler and invariant-checker code reads the same pool
   without yielding to itself. Everything here is single-domain by design:
   fibers are coroutines, never real threads, which is exactly what makes
   schedules enumerable and replayable. *)

module Backend_sched = Cxlshm_shmem.Backend_sched
module Fault = Cxlshm.Fault

type point =
  | Access of Backend_sched.access  (* raw word op on the Sched-wrapped pool *)
  | Crash_point of Fault.point  (* labeled critical window in lib/core *)
  | Label of string  (* explicit model yield, e.g. a poll-retry loop *)

let point_name = function
  | Access a -> Backend_sched.access_name a
  | Crash_point p -> Fault.point_name p
  | Label s -> s

type _ Effect.t += Yield : point -> unit Effect.t

let yield label = Effect.perform (Yield (Label label))

type run_result =
  | Yielded of point * (unit, run_result) Effect.Deep.continuation
      (** Suspended {e before} executing the access at [point]. *)
  | Completed
  | Raised of exn

let install () =
  Backend_sched.hook := Some (fun a -> Effect.perform (Yield (Access a)));
  Fault.on_point := Some (fun p -> Effect.perform (Yield (Crash_point p)))

let uninstall () =
  Backend_sched.hook := None;
  Fault.on_point := None

let handler : (unit, run_result) Effect.Deep.handler =
  {
    retc = (fun () -> Completed);
    exnc = (fun e -> Raised e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield p ->
            Some
              (fun (k : (a, run_result) Effect.Deep.continuation) ->
                Yielded (p, k))
        | _ -> None);
  }

let start f =
  install ();
  let r = Effect.Deep.match_with f () handler in
  uninstall ();
  r

let resume k =
  install ();
  let r = Effect.Deep.continue k () in
  uninstall ();
  r

(* The injected exception is [Fault.Crashed], the same exception a labeled
   crash plan raises, so model code and recovery treat scheduler-injected
   deaths exactly like plan-injected ones. *)
let kill k =
  install ();
  let r = Effect.Deep.discontinue k (Fault.Crashed "sched: injected crash") in
  uninstall ();
  r
