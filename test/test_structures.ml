(* Sorted-list ordered map and the broadcast log (lib/structures). *)

open Cxlshm
module Sl = Cxlshm_structures.Sorted_list
module Bl = Cxlshm_structures.Broadcast_log

let setup () =
  let arena = Shm.create ~cfg:Config.small () in
  (arena, Shm.join arena (), Shm.join arena ())

(* ---- sorted list ---- *)

let test_sl_basic () =
  let arena, a, _ = setup () in
  let l = Sl.create a ~value_words:1 in
  Alcotest.(check bool) "insert 5" true (Sl.insert l ~key:5 ~value:50);
  Alcotest.(check bool) "insert 1" true (Sl.insert l ~key:1 ~value:10);
  Alcotest.(check bool) "insert 9" true (Sl.insert l ~key:9 ~value:90);
  Alcotest.(check bool) "dup rejected" false (Sl.insert l ~key:5 ~value:55);
  Alcotest.(check (option int)) "find 5" (Some 50) (Sl.find l ~key:5);
  Alcotest.(check (option int)) "find 2" None (Sl.find l ~key:2);
  Alcotest.(check (option (pair int int))) "min" (Some (1, 10)) (Sl.min_binding l);
  Alcotest.(check int) "length" 3 (Sl.length l);
  (* ordered iteration *)
  let seen = ref [] in
  Sl.iter l (fun ~key ~value -> seen := (key, value) :: !seen);
  Alcotest.(check (list (pair int int))) "ascending" [ (1, 10); (5, 50); (9, 90) ]
    (List.rev !seen);
  Sl.close l;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "all reclaimed" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

let test_sl_replace_delete () =
  let arena, a, _ = setup () in
  let l = Sl.create a ~value_words:2 in
  Sl.replace l ~key:3 ~value:30;
  Sl.replace l ~key:3 ~value:33;
  Alcotest.(check (option int)) "replaced" (Some 33) (Sl.find l ~key:3);
  Sl.replace l ~key:7 ~value:70;
  Alcotest.(check bool) "delete 3" true (Sl.delete l ~key:3);
  Alcotest.(check bool) "delete 3 again" false (Sl.delete l ~key:3);
  Alcotest.(check (option int)) "gone" None (Sl.find l ~key:3);
  Alcotest.(check (option int)) "7 intact" (Some 70) (Sl.find l ~key:7);
  Sl.quiesce l;
  Sl.close l;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_sl_range () =
  let _, a, _ = setup () in
  let l = Sl.create a ~value_words:1 in
  List.iter (fun k -> ignore (Sl.insert l ~key:k ~value:(k * 10)))
    [ 4; 1; 8; 2; 16; 32 ];
  Alcotest.(check (list (pair int int))) "range [2,16)"
    [ (2, 20); (4, 40); (8, 80) ]
    (Sl.range l ~lo:2 ~hi:16);
  Alcotest.(check (list (pair int int))) "empty range" [] (Sl.range l ~lo:9 ~hi:10);
  Sl.close l

let test_sl_shared_reader () =
  let arena, a, b = setup () in
  let l = Sl.create a ~value_words:1 in
  List.iter (fun k -> ignore (Sl.insert l ~key:k ~value:k)) [ 1; 2; 3 ];
  (* share the sentinel through a queue; b reads the same list *)
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:2 in
  assert (Transfer.send q (Sl.handle_ref l) = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let shared = match Transfer.receive qb with Transfer.Received r -> r | _ -> assert false in
  let lb = Sl.attach b shared in
  Alcotest.(check (option int)) "remote find" (Some 2) (Sl.find lb ~key:2);
  (* a's mutation becomes visible to b with no copy *)
  ignore (Sl.insert l ~key:10 ~value:100);
  Alcotest.(check (option int)) "remote sees new key" (Some 100)
    (Sl.find lb ~key:10);
  Sl.close lb;
  Transfer.close q;
  Transfer.close qb;
  Sl.close l;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_sl_writer_crash () =
  let arena, a, _ = setup () in
  let l = Sl.create a ~value_words:1 in
  List.iter (fun k -> ignore (Sl.insert l ~key:k ~value:k)) [ 1; 2; 3 ];
  (* crash mid-splice: after the commit CAS, before ModifyRef *)
  a.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
  (try ignore (Sl.insert l ~key:99 ~value:99) with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  let svc = Shm.service_ctx arena in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  ignore (Recovery.recover svc ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check bool) ("clean: " ^ String.concat ";" v.Validate.errors) true
    (Validate.is_clean v);
  Alcotest.(check int) "everything reaped with the writer" 0
    v.Validate.live_objects

(* model-based property *)
let prop_sl_matches_map =
  QCheck.Test.make ~name:"sorted list matches stdlib Map" ~count:30
    QCheck.(list_of_size Gen.(1 -- 80) (pair (int_bound 40) (int_bound 2)))
    (fun ops ->
      let arena, a, _ = setup () in
      let l = Sl.create a ~value_words:1 in
      let module M = Map.Make (Int) in
      let m = ref M.empty in
      List.iter
        (fun (key, kind) ->
          match kind with
          | 0 ->
              Sl.replace l ~key ~value:(key * 7);
              m := M.add key (key * 7) !m
          | 1 ->
              let got = Sl.delete l ~key in
              let expect = M.mem key !m in
              m := M.remove key !m;
              assert (got = expect)
          | _ -> assert (Sl.find l ~key = M.find_opt key !m))
        ops;
      (* full-order check *)
      let got = ref [] in
      Sl.iter l (fun ~key ~value -> got := (key, value) :: !got);
      let ok = List.rev !got = M.bindings !m in
      Sl.close l;
      ignore (Shm.scan_leaking arena);
      ok && Validate.is_clean (Shm.validate arena))

(* ---- broadcast log ---- *)

let mk ctx v =
  let r = Shm.cxl_malloc ctx ~size_bytes:8 () in
  Cxl_ref.write_word r 0 v;
  r

let test_bl_fanout () =
  let arena, a, b = setup () in
  let c = Shm.join arena () in
  let w = Bl.create a ~capacity:8 in
  let cb = Bl.subscribe b (Bl.log_ref w) in
  let cc = Bl.subscribe c (Bl.log_ref w) in
  for i = 1 to 5 do
    let p = mk a (i * 10) in
    ignore (Bl.publish w p);
    Cxl_ref.drop p
  done;
  let drain cur =
    let rec go acc =
      match Bl.poll cur with
      | `Entry (_, r) ->
          let v = Cxl_ref.read_word r 0 in
          Cxl_ref.drop r;
          go (v :: acc)
      | `Empty -> List.rev acc
      | `Lagged _ -> go acc
    in
    go []
  in
  Alcotest.(check (list int)) "b sees all" [ 10; 20; 30; 40; 50 ] (drain cb);
  Alcotest.(check (list int)) "c sees all independently" [ 10; 20; 30; 40; 50 ]
    (drain cc);
  Bl.close_cursor cb;
  Bl.close_cursor cc;
  Bl.close_writer w;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "log reclaimed" 0 v.Validate.live_objects;
  Alcotest.(check bool) "clean" true (Validate.is_clean v)

let test_bl_lag () =
  let arena, a, b = setup () in
  let w = Bl.create a ~capacity:4 in
  let cur = Bl.subscribe b (Bl.log_ref w) in
  for i = 1 to 10 do
    let p = mk a i in
    ignore (Bl.publish w p);
    Cxl_ref.drop p
  done;
  (* capacity 4, 10 published: the cursor must lag to entry 6 *)
  (match Bl.poll cur with
  | `Lagged n -> Alcotest.(check int) "skipped" 6 n
  | _ -> Alcotest.fail "expected lag");
  let rec drain acc =
    match Bl.poll cur with
    | `Entry (_, r) ->
        let v = Cxl_ref.read_word r 0 in
        Cxl_ref.drop r;
        drain (v :: acc)
    | `Empty -> List.rev acc
    | `Lagged _ -> drain acc
  in
  Alcotest.(check (list int)) "retained window" [ 7; 8; 9; 10 ] (drain []);
  Bl.close_cursor cur;
  Bl.close_writer w;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_bl_subscriber_keeps_entry_alive () =
  let arena, a, b = setup () in
  let w = Bl.create a ~capacity:2 in
  let cur = Bl.subscribe b (Bl.log_ref w) in
  let p = mk a 111 in
  ignore (Bl.publish w p);
  Cxl_ref.drop p;
  let held =
    match Bl.poll cur with
    | `Entry (_, r) -> r
    | _ -> Alcotest.fail "no entry"
  in
  (* overwrite the whole ring: the held entry must survive *)
  for i = 1 to 6 do
    let q = mk a i in
    ignore (Bl.publish w q);
    Cxl_ref.drop q
  done;
  Alcotest.(check int) "held entry alive after overwrite" 111
    (Cxl_ref.read_word held 0);
  Cxl_ref.drop held;
  Bl.close_cursor cur;
  Bl.close_writer w;
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let suite =
  [
    Alcotest.test_case "sorted list basic" `Quick test_sl_basic;
    Alcotest.test_case "sorted list replace/delete" `Quick test_sl_replace_delete;
    Alcotest.test_case "sorted list range" `Quick test_sl_range;
    Alcotest.test_case "sorted list shared reader" `Quick test_sl_shared_reader;
    Alcotest.test_case "sorted list writer crash" `Quick test_sl_writer_crash;
    Generators.to_alcotest prop_sl_matches_map;
    Alcotest.test_case "broadcast fan-out" `Quick test_bl_fanout;
    Alcotest.test_case "broadcast lag" `Quick test_bl_lag;
    Alcotest.test_case "broadcast holds entries" `Quick test_bl_subscriber_keeps_entry_alive;
  ]
