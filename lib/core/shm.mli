(** CXL-SHM facade — the public entry point (§3.1).

    {[
      let arena = Shm.create () in
      let a = Shm.join arena () in                    (* client A *)
      let r1 = Shm.cxl_malloc a ~size_bytes:64 () in  (* CXLRef *)
      let r2 = Cxl_ref.clone r1 in                    (* same-thread clone *)
      let q = Transfer.connect a ~receiver:(Shm.cid b) ~capacity:64 in
      ignore (Transfer.send q r1);                    (* cxl_send_to *)
      (* ... on client B: Transfer.open_from + Transfer.receive ... *)
      Cxl_ref.drop r1; Cxl_ref.drop r2
    ]} *)

type arena

val create : ?cfg:Config.t -> unit -> arena
(** Build and format a fresh shared arena (the mmap'd CXL device). *)

val mem : arena -> Cxlshm_shmem.Mem.t
val num_devices : arena -> int
(** Devices in the pool behind this arena (1 on the flat backend). *)

val layout : arena -> Layout.t
val config : arena -> Config.t

val join : arena -> ?cid:int -> unit -> Ctx.t
(** Register a client (POSIX shm/mmap attach in the real system). *)

val leave : Ctx.t -> unit

val cxl_malloc : Ctx.t -> size_bytes:int -> ?emb_cnt:int -> unit -> Cxl_ref.t
(** Allocate a CXLObj with [emb_cnt] embedded-reference slots followed by
    [size_bytes] of byte-addressable payload; returns the owning CXLRef. *)

val cxl_malloc_words : Ctx.t -> data_words:int -> ?emb_cnt:int -> unit -> Cxl_ref.t
(** Word-granularity variant ([data_words] includes the emb slots). *)

(** {1 Operations} *)

val validate : arena -> Validate.t

val fsck : arena -> Fsck.report
(** Offline verify-and-repair (see {!Fsck.repair}); disarms fault
    injection first. *)

val set_fault_injection : arena -> bool -> unit
(** Arm/disarm the [Faulty] backend wrapper, if the arena has one
    (no-op otherwise). *)

val recover : arena -> failed_cid:int -> Recovery.report
val scan_leaking : arena -> int
(** Run the §5.3 asynchronous scan over recyclable segments. *)

val monitor : arena -> ?id:int -> unit -> Monitor.t
(** A failure-monitor replica ([id] defaults to 0; give each replica of the
    same arena a distinct id — see {!Monitor.create}). *)

val evacuate : arena -> Evacuate.report
(** One monitor-side evacuation sweep ({!Evacuate.run}): drain live data
    off every degraded device. No-op when nothing is degraded. *)

(** {1 Introspection} *)

val free_segments : arena -> int

val save : arena -> string -> unit
(** Persist the pool image to a file (quiesced use only). Models the CXL
    device's independent power domain: the pool's contents outlive every
    compute node. *)

val load : ?cfg:Config.t -> string -> arena
(** Re-attach to a persisted pool image. All client slots found alive in
    the image are declared failed and recovered (they are gone by
    definition); named roots and their object graphs survive. *)

val load_raw : ?cfg:Config.t -> string -> arena
(** Re-attach without running recovery or the leak scan — the image is
    presented exactly as saved. This is the loader fsck uses: whatever
    damage the image carries must still be observable. *)

val service_ctx : arena -> Ctx.t
(** A context for maintenance operations (stats attribution only). *)
