type t = {
  max_clients : int;
  num_segments : int;
  pages_per_segment : int;
  page_words : int;
  queue_slots : int;
  worklist_words : int;
  tier : Cxlshm_shmem.Latency.tier;
  backend : Cxlshm_shmem.Mem.backend_spec;
  eadr : bool;
  trace : bool;
  trace_slots : int;
  cache : bool;
  epoch_batch : int;
      (* K > 0 batches up to K rootref retirements per client behind one
         fence + one journal flush; 0 keeps the eager per-release path. *)
  num_domains : int;
      (* > 0 shards the hot size-class free heads across that many domains;
         0 keeps the single per-owner free structure. *)
  lease_ttl : int;
      (* Client lease lifetime in lease-clock ticks: a heartbeat extends the
         client's lease to now + lease_ttl; a lease observed expired makes
         the client Suspected, a second full TTL of silence condemns it. *)
  park_slots : int;
      (* Per-client persistent parked-record registry capacity: each KV
         writer records its deferred (retire-epoch-stamped) rootrefs here
         so a crash-recovery pass can adopt them instead of reaping. *)
  adopt_slots : int;
      (* Arena-wide adoption-journal capacity: entries a recovery pass
         parked on behalf of a dead writer, awaiting a successor. *)
}

let default =
  {
    max_clients = 16;
    num_segments = 64;
    pages_per_segment = 16;
    page_words = 1024;
    queue_slots = 64;
    worklist_words = 1024;
    tier = Cxlshm_shmem.Latency.Cxl;
    backend = Cxlshm_shmem.Mem.Flat;
    eadr = false;
    trace = false;
    trace_slots = 256;
    cache = true;
    epoch_batch = 16;
    num_domains = 4;
    lease_ttl = 4;
    park_slots = 256;
    adopt_slots = 512;
  }

let small =
  {
    max_clients = 8;
    num_segments = 8;
    pages_per_segment = 4;
    page_words = 128;
    queue_slots = 16;
    worklist_words = 128;
    tier = Cxlshm_shmem.Latency.Cxl;
    backend = Cxlshm_shmem.Mem.Flat;
    eadr = false;
    trace = false;
    trace_slots = 128;
    cache = true;
    (* unit tests and explorer models rely on the eager, unsharded paths
       being schedule-identical to earlier releases *)
    epoch_batch = 0;
    num_domains = 0;
    lease_ttl = 4;
    park_slots = 16;
    adopt_slots = 16;
  }

let header_words = 2
let min_block_words = 4
let rootref_words = 2

let validate t =
  let fail msg = invalid_arg ("Config.validate: " ^ msg) in
  if t.max_clients < 2 || t.max_clients > 1023 then
    fail "max_clients must be in [2, 1023]";
  if t.num_segments < 1 then fail "num_segments must be positive";
  if t.pages_per_segment < 1 then fail "pages_per_segment must be positive";
  if t.page_words < 2 * min_block_words then fail "page_words too small";
  if t.page_words land (t.page_words - 1) <> 0 then
    fail "page_words must be a power of two";
  if t.queue_slots < 1 then fail "queue_slots must be positive";
  if t.worklist_words < 16 then fail "worklist_words must be >= 16";
  if t.trace_slots < 16 || t.trace_slots > 1 lsl 20 then
    fail "trace_slots must be in [16, 2^20]";
  if t.epoch_batch < 0 || t.epoch_batch > 64 then
    fail "epoch_batch must be in [0, 64]";
  (* More domains than clients just leaves some stacks empty — allowed, so
     [default]'s domain count survives small [max_clients] overrides. *)
  if t.num_domains < 0 || t.num_domains > 1024 then
    fail "num_domains must be in [0, 1024]";
  (* The leader word packs {monitor id, deadline tick}; the deadline field
     is 48 bits wide, so cap the TTL well below that. *)
  if t.lease_ttl < 1 || t.lease_ttl > 1 lsl 20 then
    fail "lease_ttl must be in [1, 2^20]";
  if t.park_slots < 1 || t.park_slots > 1 lsl 16 then
    fail "park_slots must be in [1, 2^16]";
  if t.adopt_slots < 1 || t.adopt_slots > 1 lsl 16 then
    fail "adopt_slots must be in [1, 2^16]";
  let prob name p =
    if p < 0. || p > 1. then fail (name ^ " must be a probability in [0, 1]")
  in
  let rec check_backend = function
    | Cxlshm_shmem.Mem.Flat | Cxlshm_shmem.Mem.Counting_fast -> ()
    | Cxlshm_shmem.Mem.Striped { devices; stripe_words; tiers } ->
        if devices < 1 || devices > 1024 then
          fail "backend devices must be in [1, 1024]";
        if stripe_words < 0 then fail "stripe_words must be >= 0";
        if Array.length tiers <> 0 && Array.length tiers <> devices then
          fail "device tiers must be empty or one per device"
    | Cxlshm_shmem.Mem.Faulty { base; fault_spec } ->
        (match base with
        | Cxlshm_shmem.Mem.Faulty _ -> fail "nested Faulty backends"
        | _ -> ());
        prob "read_poison" fault_spec.Cxlshm_shmem.Backend_faulty.read_poison;
        prob "torn_write" fault_spec.Cxlshm_shmem.Backend_faulty.torn_write;
        prob "stuck_word" fault_spec.Cxlshm_shmem.Backend_faulty.stuck_word;
        List.iter
          (fun (d, first, last) ->
            if d < 0 || first < 0 || last < first then
              fail "offline windows must be (dev >= 0, first <= last)")
          fault_spec.Cxlshm_shmem.Backend_faulty.offline;
        check_backend base
    | Cxlshm_shmem.Mem.Sched base ->
        (match base with
        | Cxlshm_shmem.Mem.Sched _ -> fail "nested Sched backends"
        | _ -> ());
        check_backend base
  in
  check_backend t.backend

let num_devices t =
  let rec devs = function
    | Cxlshm_shmem.Mem.Striped { devices; _ } -> devices
    | Cxlshm_shmem.Mem.Flat | Cxlshm_shmem.Mem.Counting_fast -> 1
    | Cxlshm_shmem.Mem.Faulty { base; _ } -> devs base
    | Cxlshm_shmem.Mem.Sched base -> devs base
  in
  devs t.backend

let num_classes t =
  let rec count n sz =
    if sz > t.page_words then n else count (n + 1) (sz * 2)
  in
  count 0 min_block_words

let class_block_words t i =
  if i < 0 || i >= num_classes t then invalid_arg "Config.class_block_words";
  min_block_words lsl i

let max_class_data_words t =
  class_block_words t (num_classes t - 1) - header_words

let class_of_data_words t data_words =
  if data_words < 0 then invalid_arg "Config.class_of_data_words";
  let need = data_words + header_words in
  let rec find i =
    if i >= num_classes t then None
    else if class_block_words t i >= need then Some i
    else find (i + 1)
  in
  find 0

let kind_unused = 0
let kind_of_class c = c + 1

let class_of_kind t k =
  if k >= 1 && k <= num_classes t then Some (k - 1) else None

let kind_rootref t = num_classes t + 1
let kind_huge t = num_classes t + 2
let kind_quarantined t = num_classes t + 3
