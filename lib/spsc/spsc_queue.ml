module Mem = Cxlshm_shmem.Mem

(* Layout: +0 magic, +1 capacity, +2 head, +3 tail, +8.. slots.
   Head/tail are monotonically increasing; slot = index mod capacity. *)
let magic = 0x5053_5143 (* "SPSC" *)
let hdr_words = 8

type t = { mem : Mem.t; base : int; cap : int }

let words_needed ~capacity = hdr_words + capacity

let create mem ~st ~base ~capacity =
  if capacity < 1 then invalid_arg "Spsc_queue.create: capacity must be >= 1";
  Mem.store mem ~st (base + 1) capacity;
  Mem.store mem ~st (base + 2) 0;
  Mem.store mem ~st (base + 3) 0;
  Mem.fence mem ~st;
  Mem.store mem ~st base magic;
  { mem; base; cap = capacity }

let attach mem ~st ~base =
  if Mem.load mem ~st base <> magic then
    invalid_arg "Spsc_queue.attach: no queue at this address";
  let cap = Mem.load mem ~st (base + 1) in
  (* A corrupt header with the magic intact would otherwise surface later
     as Division_by_zero in [slot]. *)
  if cap < 1 then invalid_arg "Spsc_queue.attach: corrupt capacity";
  { mem; base; cap }

let capacity t = t.cap
let head t ~st = Mem.load t.mem ~st (t.base + 2)
let tail t ~st = Mem.load t.mem ~st (t.base + 3)
let slot t i = t.base + hdr_words + (i mod t.cap)

let try_push t ~st v =
  let tl = tail t ~st in
  if tl - head t ~st >= t.cap then false
  else begin
    Mem.store t.mem ~st (slot t tl) v;
    Mem.fence t.mem ~st;
    Mem.store t.mem ~st (t.base + 3) (tl + 1);
    true
  end

(* Mutation self-check switch: re-introduces the missing-fence pop bug this
   queue shipped with for two PRs. OCaml atomics are sequentially
   consistent, so simply deleting the fence below would change nothing in
   simulation — instead the mutation applies the reordering the missing
   fence *permits* on real hardware: the head store is issued before the
   slot read, so the producer can reuse the slot while the consumer still
   holds a stale value. Test-only; never set outside the explorer. *)
let mutation_unfenced_pop = ref false

let try_pop t ~st =
  let hd = head t ~st in
  if hd = tail t ~st then None
  else if !mutation_unfenced_pop then begin
    Mem.store t.mem ~st (t.base + 2) (hd + 1);
    Some (Mem.load t.mem ~st (slot t hd))
  end
  else begin
    let v = Mem.load t.mem ~st (slot t hd) in
    (* The slot read must complete before the head store publishes the slot
       back to the producer, mirroring the fence in [try_push]; without it
       the producer may overwrite the slot while we still hold a stale [v]. *)
    Mem.fence t.mem ~st;
    Mem.store t.mem ~st (t.base + 2) (hd + 1);
    Some v
  end

(* Multi-slot variants: same protocol, one fence and one index store for
   the whole batch. The single fence is sufficient because the slots are
   filled (resp. read) strictly before the one tail (resp. head) store that
   publishes them — a consumer can never observe a slot the fence has not
   ordered. *)

let try_push_n t ~st vs =
  match vs with
  | [] -> 0
  | _ ->
      let tl = tail t ~st in
      let room = t.cap - (tl - head t ~st) in
      if room <= 0 then 0
      else begin
        let n = ref 0 in
        List.iteri
          (fun i v ->
            if i < room then begin
              Mem.store t.mem ~st (slot t (tl + i)) v;
              incr n
            end)
          vs;
        Mem.fence t.mem ~st;
        Mem.store t.mem ~st (t.base + 3) (tl + !n);
        !n
      end

let try_pop_n t ~st ~max =
  if max <= 0 then []
  else
    let hd = head t ~st in
    let n = min max (tail t ~st - hd) in
    if n <= 0 then []
    else begin
      let vs = List.init n (fun i -> Mem.load t.mem ~st (slot t (hd + i))) in
      Mem.fence t.mem ~st;
      Mem.store t.mem ~st (t.base + 2) (hd + n);
      vs
    end

let rec push t ~st v =
  if not (try_push t ~st v) then begin
    Domain.cpu_relax ();
    push t ~st v
  end

let rec pop t ~st =
  match try_pop t ~st with
  | Some v -> v
  | None ->
      Domain.cpu_relax ();
      pop t ~st

let length t ~st = tail t ~st - head t ~st
