(* Rejection-free zipf sampler after Gray et al., "Quickly generating
   billion-record synthetic databases" (SIGMOD'94) — the same generator
   YCSB uses. State is O(1): the old CDF-array version cost O(n) time and
   memory per generator instance, which at a millions-of-keys population
   and one generator per client dominated harness startup. *)

type t = {
  n : int;
  theta : float;
  alpha : float;  (** 1 / (1 - theta); unused when [theta = 0] *)
  zetan : float;  (** generalized harmonic H(n, theta) *)
  eta : float;
  half_pow_theta : float;  (** 0.5^theta, the rank-1 threshold *)
  rng : Random.State.t;
}

(* H(m, theta) = sum_{i=1}^{m} i^-theta in O(1): the first [k] terms
   exactly, the tail by the midpoint (Euler-Maclaurin) integral
   approximation — relative error < 1e-5 at k = 64 for any theta in
   [0, 1). *)
let harmonic ~m ~theta =
  let k = min m 64 in
  let exact = ref 0.0 in
  for i = 1 to k do
    exact := !exact +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  if k = m then !exact
  else
    let lo = float_of_int k +. 0.5 and hi = float_of_int m +. 0.5 in
    let tail =
      if Float.abs (theta -. 1.0) < 1e-9 then log (hi /. lo)
      else (Float.pow hi (1.0 -. theta) -. Float.pow lo (1.0 -. theta))
           /. (1.0 -. theta)
    in
    !exact +. tail

let create ~n ~theta ~seed =
  if n < 1 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  if theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be < 1 (Gray et al. sampler)";
  let zetan = harmonic ~m:n ~theta in
  let zeta2 = harmonic ~m:(min n 2) ~theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    if n = 1 then 1.0
    else
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
  in
  {
    n;
    theta;
    alpha;
    zetan;
    eta;
    half_pow_theta = Float.pow 0.5 theta;
    rng = Random.State.make [| seed |];
  }

let n t = t.n
let theta t = t.theta
let expected_top1_mass t = 1.0 /. t.zetan

let sample t =
  if t.n = 1 then 0
  else begin
    let u = Random.State.float t.rng 1.0 in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.half_pow_theta then 1
    else begin
      let r =
        int_of_float
          (float_of_int t.n
          *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
      in
      if r < 0 then 0 else if r >= t.n then t.n - 1 else r
    end
  end
